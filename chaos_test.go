package stateslice_test

// Chaos suite: every fault class the containment layer guards against —
// panicking sinks and result handlers, panicking replicas and merge/assembly
// workers, failing and panicking sources, cancellation mid-stream and
// mid-barrier — injected across the executor matrix (sequential, sharded
// p∈{1,4}) × (query-level merge, slice-merge fast path). Each case asserts
// the fault surfaces as a classified error (errors.Is / errors.As), the
// process survives, the session stays sticky-failed, and every spawned
// goroutine is released. The whole file runs under -race in CI.

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"stateslice"
	"stateslice/internal/fault"
)

// chaosWorkload is unfiltered with distinct windows, so it is eligible for
// every topology in the matrix, including the slice-merge fast path.
func chaosWorkload() stateslice.Workload {
	return stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Q1", Window: 2 * stateslice.Second},
			{Name: "Q2", Window: 8 * stateslice.Second},
		},
		Join: stateslice.Equijoin{},
	}
}

func chaosInput(t testing.TB) []*stateslice.Tuple {
	t.Helper()
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 20 * stateslice.Second, KeyDomain: 12, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

// topology is one executor shape of the chaos matrix. WithMigratable forces
// the query-level merge on sharded plans (migratable chains are ineligible
// for the slice-merge fast path), so both merge topologies are exercised
// over the same workload.
type topology struct {
	name    string
	sharded bool
	fast    bool // slice-merge fast path (sharded only)
	opts    []stateslice.Option
}

func chaosTopologies() []topology {
	return []topology{
		{name: "sequential"},
		{name: "shards=1/query-merge", sharded: true,
			opts: []stateslice.Option{stateslice.WithShards(1), stateslice.WithMigratable()}},
		{name: "shards=4/query-merge", sharded: true,
			opts: []stateslice.Option{stateslice.WithShards(4), stateslice.WithMigratable()}},
		{name: "shards=1/slice-merge", sharded: true, fast: true,
			opts: []stateslice.Option{stateslice.WithShards(1)}},
		{name: "shards=4/slice-merge", sharded: true, fast: true,
			opts: []stateslice.Option{stateslice.WithShards(4)}},
	}
}

// runChaos builds the topology's plan with the extra options, drives the
// whole input through a session, and returns the first classified error —
// from Consume or from Finish's Result.Err — plus the Finish result. The
// session is always finished and closed, so a passing test also proves the
// unwind completes (no deadlock) and the partial statistics survive.
func runChaos(t *testing.T, tp topology, input []*stateslice.Tuple, extra ...stateslice.Option) (error, *stateslice.Result) {
	t.Helper()
	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, append(tp.opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	consumeErr := sess.Consume(stateslice.SliceSource(input))
	res := sess.Finish()
	if res == nil {
		t.Fatal("Finish returned no statistics after a fault")
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sess.Close(closeCtx)
	if consumeErr != nil {
		return consumeErr, res
	}
	return res.Err, res
}

// assertPanicErr asserts err classifies as a *PanicError with a stack and,
// when wantOp is non-empty, the expected containment boundary.
func assertPanicErr(t *testing.T, err error, wantOp string) {
	t.Helper()
	if err == nil {
		t.Fatal("fault never surfaced as an error")
	}
	var pe *stateslice.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not classify as a PanicError", err)
	}
	if wantOp != "" && pe.Op != wantOp {
		t.Errorf("panic contained at %q, want %q", pe.Op, wantOp)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
}

// TestChaosPanicInSink drives a panicking WithSink callback through every
// topology: the panic must be contained into a PanicError instead of
// crashing the process, and the session must fail sticky.
func TestChaosPanicInSink(t *testing.T) {
	input := chaosInput(t)
	for _, tp := range chaosTopologies() {
		t.Run(tp.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			var emitted atomic.Int64
			sink := stateslice.SinkFunc(func(*stateslice.Tuple) {
				if emitted.Add(1) == 5 {
					panic("chaos: sink blew up")
				}
			})
			err, _ := runChaos(t, tp, input, stateslice.WithSink(0, sink))
			assertPanicErr(t, err, "")
		})
	}
}

// TestChaosPanicInResultHandler is the WithResultHandler variant of the sink
// case (concurrent plans reject the handler, so the matrix covers the
// sequential and sharded topologies).
func TestChaosPanicInResultHandler(t *testing.T) {
	input := chaosInput(t)
	for _, tp := range chaosTopologies() {
		t.Run(tp.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			var emitted atomic.Int64
			handler := func(stateslice.QueryID, *stateslice.Tuple) {
				if emitted.Add(1) == 5 {
					panic("chaos: handler blew up")
				}
			}
			err, _ := runChaos(t, tp, input, stateslice.WithResultHandler(handler))
			assertPanicErr(t, err, "")
		})
	}
}

// TestChaosPanicInReplica injects a panic into a replica runner's feed path
// on every sharded topology: the replica must fail — publishing a PanicError
// that names its shard — while the process and the driver survive.
func TestChaosPanicInReplica(t *testing.T) {
	input := chaosInput(t)
	for _, tp := range chaosTopologies() {
		if !tp.sharded {
			continue
		}
		t.Run(tp.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			var fed atomic.Int64
			restore := fault.Inject(fault.ReplicaFeed, func(int) error {
				if fed.Add(1) == 40 {
					panic("chaos: replica blew up")
				}
				return nil
			})
			defer restore()
			err, _ := runChaos(t, tp, input)
			assertPanicErr(t, err, "replica runner")
			var pe *stateslice.PanicError
			errors.As(err, &pe)
			if pe.Shard < 0 {
				t.Errorf("replica PanicError carries shard %d, want >= 0", pe.Shard)
			}
		})
	}
}

// TestChaosPanicInMergeLayer injects a panic into the merge layer — a merge
// worker on the query-level path, an assembly worker on the slice-merge fast
// path — and asserts the classified containment on each.
func TestChaosPanicInMergeLayer(t *testing.T) {
	input := chaosInput(t)
	for _, tp := range chaosTopologies() {
		if !tp.sharded {
			continue
		}
		t.Run(tp.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			point, wantOp := fault.MergeApply, "merge worker"
			if tp.fast {
				point, wantOp = fault.AssembleApply, "assembly worker"
			}
			var applied atomic.Int64
			restore := fault.Inject(point, func(int) error {
				if applied.Add(1) == 3 {
					panic("chaos: merge layer blew up")
				}
				return nil
			})
			defer restore()
			err, _ := runChaos(t, tp, input)
			assertPanicErr(t, err, wantOp)
		})
	}
}

// failingSource yields the wrapped tuples, then fails with err.
type failingSource struct {
	tuples []*stateslice.Tuple
	err    error
	i      int
}

func (s *failingSource) Next() (*stateslice.Tuple, error) {
	if s.i >= len(s.tuples) {
		return nil, s.err
	}
	s.i++
	return s.tuples[s.i-1], nil
}

// TestChaosFailingSource pins the user-callback boundary at Source.Next:
// an error return surfaces wrapped (errors.Is-able) from Consume, and a
// panicking source is contained into a PanicError — on every topology.
func TestChaosFailingSource(t *testing.T) {
	input := chaosInput(t)
	broken := errors.New("chaos: source broke")
	for _, tp := range chaosTopologies() {
		t.Run(tp.name+"/error", func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, tp.opts...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := p.NewSession(stateslice.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Consume(&failingSource{tuples: input[:100], err: broken}); !errors.Is(err, broken) {
				t.Fatalf("Consume returned %v, want the source error", err)
			}
			if err := sess.Close(context.Background()); err != nil && !errors.Is(err, broken) {
				t.Fatalf("Close after a source error returned %v", err)
			}
		})
		t.Run(tp.name+"/panic", func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, tp.opts...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := p.NewSession(stateslice.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			src := &failingSource{tuples: input[:100]}
			src.err = nil // Next past the slice panics via nil map below
			consumeErr := sess.Consume(panicSource{inner: src})
			assertPanicErr(t, consumeErr, "source pull")
			res := sess.Finish()
			if res.Err == nil {
				t.Error("Result.Err dropped the contained source panic")
			}
			sess.Close(context.Background())
		})
	}
}

// panicSource panics once its inner source is exhausted.
type panicSource struct{ inner *failingSource }

func (s panicSource) Next() (*stateslice.Tuple, error) {
	t, err := s.inner.Next()
	if err == nil && t != nil {
		return t, nil
	}
	panic("chaos: source blew up")
}

// cancellingSource cancels the bound context after n pulls, then keeps
// yielding — the feed loop, not the source, must stop the run.
type cancellingSource struct {
	tuples []*stateslice.Tuple
	cancel context.CancelFunc
	n, i   int
}

func (s *cancellingSource) Next() (*stateslice.Tuple, error) {
	if s.i == s.n {
		s.cancel()
	}
	if s.i >= len(s.tuples) {
		return nil, io.EOF
	}
	s.i++
	return s.tuples[s.i-1], nil
}

// TestChaosCancelMidStream cancels a WithContext-bound session in the middle
// of Consume on every topology: the feed loop must stop between tuples with
// a context.Canceled-classified error, the session must refuse further
// feeds, and Finish must classify the aborted run on Result.Err.
func TestChaosCancelMidStream(t *testing.T) {
	input := chaosInput(t)
	for _, tp := range chaosTopologies() {
		t.Run(tp.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
				append(tp.opts, stateslice.WithContext(ctx))...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := p.NewSession(stateslice.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			src := &cancellingSource{tuples: input, cancel: cancel, n: len(input) / 2}
			if err := sess.Consume(src); !errors.Is(err, context.Canceled) {
				t.Fatalf("Consume returned %v, want a context.Canceled-classified abort", err)
			}
			if err := sess.Close(context.Background()); err != nil {
				t.Errorf("Close after a context abort returned %v, want nil (a cancellation is not a fault)", err)
			}
			if err := sess.Feed(input[len(input)-1]); err == nil {
				t.Error("Feed after the abort must fail")
			}
			res := sess.Finish()
			if !errors.Is(res.Err, context.Canceled) && !errors.Is(res.Err, stateslice.ErrClosed) {
				t.Errorf("Result.Err = %v, want the abort classification", res.Err)
			}
		})
	}
}

// TestChaosCloseMidBarrier blocks every replica inside a Migrate barrier,
// Closes the session from another goroutine, and asserts: the in-flight
// Migrate aborts with an ErrClosed-classified error instead of deadlocking,
// Close with a too-short context reports the deadline while the teardown
// keeps unwinding, and once the replicas unblock everything is released and
// a clean Close verdict (no fault) comes back.
func TestChaosCloseMidBarrier(t *testing.T) {
	defer assertGoroutinesReleased(t, goroutineBase())
	input := chaosInput(t)
	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithMigratable())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	restore := fault.Inject(fault.BarrierApply, func(int) error {
		entered <- struct{}{}
		<-release
		return nil
	})
	defer restore()

	migErr := make(chan error, 1)
	go func() { migErr <- p.Migrate([]stateslice.Time{8 * stateslice.Second}) }()
	<-entered // at least one replica is now blocked mid-barrier

	// Close cannot finish while the replicas sit in the blocking hook: it
	// must report the context deadline, not deadlock.
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err = sess.Close(shortCtx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close against blocked replicas returned %v, want the context deadline", err)
	}

	if err := <-migErr; !errors.Is(err, stateslice.ErrClosed) {
		t.Fatalf("in-flight Migrate returned %v, want an ErrClosed-classified abort", err)
	}
	close(release) // let the replicas finish the barrier and unwind

	// A later Close returns ErrClosed (idempotence), never a second teardown.
	if err := sess.Close(context.Background()); !errors.Is(err, stateslice.ErrClosed) {
		t.Fatalf("second Close returned %v, want ErrClosed", err)
	}
	res := sess.Finish()
	if !errors.Is(res.Err, stateslice.ErrClosed) {
		t.Errorf("Result.Err = %v, want the ErrClosed abort classification", res.Err)
	}
}

// TestChaosCancelMidMigration is the external-cancellation variant of the
// mid-barrier abort: the WithContext context is cancelled while every
// replica is blocked applying a Migrate barrier. The migration must abandon
// with a context.Canceled-classified error, and Close must then report the
// abandoned barrier (an abort mid-restructure leaves the replicas possibly
// diverged — that is a recorded failure, unlike a plain cancellation).
func TestChaosCancelMidMigration(t *testing.T) {
	defer assertGoroutinesReleased(t, goroutineBase())
	input := chaosInput(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithMigratable(), stateslice.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	restore := fault.Inject(fault.BarrierApply, func(int) error {
		entered <- struct{}{}
		<-release
		return nil
	})
	defer restore()

	migErr := make(chan error, 1)
	go func() { migErr <- p.Migrate([]stateslice.Time{8 * stateslice.Second}) }()
	<-entered
	cancel()
	if err := <-migErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Migrate returned %v, want a context.Canceled-classified abort", err)
	}
	close(release)
	if err := sess.Close(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after an abandoned barrier returned %v, want the recorded abandonment", err)
	}
}

// TestChaosConcurrentPipeline covers the WithConcurrency executor's
// containment: a panicking sink inside a merger goroutine and a cancelled
// run must both come back as classified errors from Run, not crash or hang.
func TestChaosConcurrentPipeline(t *testing.T) {
	input := chaosInput(t)
	t.Run("panic-in-sink", func(t *testing.T) {
		defer assertGoroutinesReleased(t, goroutineBase())
		var emitted atomic.Int64
		sink := stateslice.SinkFunc(func(*stateslice.Tuple) {
			if emitted.Add(1) == 5 {
				panic("chaos: concurrent sink blew up")
			}
		})
		p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
			stateslice.WithConcurrency(), stateslice.WithSink(0, sink))
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		assertPanicErr(t, runErr, "")
	})
	t.Run("cancel-mid-stream", func(t *testing.T) {
		defer assertGoroutinesReleased(t, goroutineBase())
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
			stateslice.WithConcurrency(), stateslice.WithContext(ctx))
		if err != nil {
			t.Fatal(err)
		}
		src := &cancellingSource{tuples: input, cancel: cancel, n: len(input) / 2}
		if _, err := p.Run(src, stateslice.RunConfig{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled concurrent Run returned %v, want context.Canceled", err)
		}
	})
	t.Run("panic-in-source", func(t *testing.T) {
		defer assertGoroutinesReleased(t, goroutineBase())
		p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, stateslice.WithConcurrency())
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := p.Run(panicSource{inner: &failingSource{tuples: input[:100]}}, stateslice.RunConfig{})
		assertPanicErr(t, runErr, "source pull")
	})
}

// TestChaosErrorTaxonomy pins the exported sentinels on their misuse paths,
// so callers can rely on errors.Is across the whole API surface.
func TestChaosErrorTaxonomy(t *testing.T) {
	input := chaosInput(t)
	for _, tp := range []topology{
		{name: "sequential"},
		{name: "sharded", sharded: true, opts: []stateslice.Option{stateslice.WithShards(2)}},
	} {
		t.Run(tp.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, tp.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Migrate([]stateslice.Time{8 * stateslice.Second}); !errors.Is(err, stateslice.ErrNotMigratable) {
				t.Errorf("Migrate on a non-migratable plan: %v, want ErrNotMigratable", err)
			}
			sess, err := p.NewSession(stateslice.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Attach(stateslice.Query{Window: 2 * stateslice.Second}); !errors.Is(err, stateslice.ErrNotMigratable) {
				t.Errorf("Attach on a non-migratable plan: %v, want ErrNotMigratable", err)
			}
			if err := sess.Feed(input[10]); err != nil {
				t.Fatal(err)
			}
			if err := sess.Feed(input[0]); !errors.Is(err, stateslice.ErrOutOfOrder) {
				t.Errorf("out-of-order Feed: %v, want ErrOutOfOrder", err)
			}
			res := sess.Finish()
			if res.Err != nil {
				t.Errorf("an out-of-order rejection must not fail the session: %v", res.Err)
			}
			if err := sess.Feed(input[10]); !errors.Is(err, stateslice.ErrSessionFinished) {
				t.Errorf("Feed after Finish: %v, want ErrSessionFinished", err)
			}
			if err := sess.Close(context.Background()); err != nil && !errors.Is(err, stateslice.ErrSessionFinished) {
				t.Errorf("Close after Finish: %v", err)
			}
		})
	}
	t.Run("migrate-without-session", func(t *testing.T) {
		p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, stateslice.WithMigratable())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Migrate([]stateslice.Time{8 * stateslice.Second}); !errors.Is(err, stateslice.ErrNoSession) {
			t.Errorf("Migrate without a session: %v, want ErrNoSession", err)
		}
	})
	t.Run("nil-context-option", func(t *testing.T) {
		if _, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, stateslice.WithContext(nil)); err == nil {
			t.Error("WithContext(nil) must fail at Build")
		}
	})
}

// skewedChaosInput remaps the chaos feed onto a quadratic key skew so a
// rebalance plan actually moves state (a balanced feed legally no-ops before
// any fault point fires).
func skewedChaosInput(t testing.TB) []*stateslice.Tuple {
	input := chaosInput(t)
	for _, tp := range input {
		tp.Key = (tp.Key * tp.Key) / 12
	}
	return input
}

// TestChaosPanicInRebalanceApply injects a panic into the rebalance rebuild
// on both sharded merge topologies: the fault must surface from Rebalance as
// a PanicError contained at the replica barrier, the session must fail
// sticky, and the teardown must release every goroutine — a crash halfway
// through a state move may leave replicas diverged, so fail-fast is the only
// safe verdict.
func TestChaosPanicInRebalanceApply(t *testing.T) {
	w := bandWorkloadAPI(1)
	input := skewedChaosInput(t)
	for _, tp := range []topology{
		{name: "query-merge", opts: []stateslice.Option{
			stateslice.WithShards(4), stateslice.WithMigratable(), stateslice.WithKeyRange(0, 11)}},
		{name: "slice-merge", opts: []stateslice.Option{
			stateslice.WithShards(4), stateslice.WithKeyRange(0, 11)}},
	} {
		t.Run(tp.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			restore := fault.Inject(fault.RebalanceApply, func(int) error {
				panic("chaos: rebalance apply blew up")
			})
			defer restore()
			p, err := stateslice.Build(w, stateslice.MemOpt, tp.opts...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := p.NewSession(stateslice.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
				t.Fatal(err)
			}
			moved, rebErr := sess.Rebalance(context.Background())
			assertPanicErr(t, rebErr, "replica barrier")
			if moved {
				t.Error("Rebalance reported moved state after a failed rebuild")
			}
			if err := sess.Feed(input[len(input)-1]); err == nil {
				t.Error("Feed after a failed rebalance must fail sticky")
			}
			res := sess.Finish()
			if res.Err == nil {
				t.Error("Result.Err dropped the contained rebalance panic")
			}
			sess.Close(context.Background())
		})
	}
}

// TestChaosRecoveryAcrossRebalance crosses WithRecovery with a mid-stream
// Rebalance: a replica crash after the move must restart from a snapshot
// that carries the learned cuts, and a crash healed before the move must not
// spoil the rebalance — byte-identical output either way.
func TestChaosRecoveryAcrossRebalance(t *testing.T) {
	w := bandWorkloadAPI(1)
	input := skewedChaosInput(t)
	ref := sequentialReference(t, w, input)
	run := func(t *testing.T, crashAt int64) {
		defer assertGoroutinesReleased(t, goroutineBase())
		var fed atomic.Int64
		restore := fault.Inject(fault.ReplicaFeed, func(int) error {
			if fed.Add(1) == crashAt {
				panic("chaos: replica crash around a rebalance")
			}
			return nil
		})
		defer restore()
		p, err := stateslice.Build(w, stateslice.MemOpt,
			stateslice.WithShards(4), stateslice.WithKeyRange(0, 11), stateslice.WithCollect(),
			stateslice.WithRecovery(testRestart(6)))
		if err != nil {
			t.Fatal(err)
		}
		sess, err := p.NewSession(stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close(context.Background())
		third := len(input) / 3
		if err := sess.Consume(stateslice.SliceSource(input[:third])); err != nil {
			t.Fatal(err)
		}
		moved, err := sess.Rebalance(context.Background())
		if err != nil {
			t.Fatalf("Rebalance: %v", err)
		}
		if !moved {
			t.Fatal("Rebalance refused to move state on the skewed feed; the crash interaction is vacuous")
		}
		if err := sess.Consume(stateslice.SliceSource(input[third:])); err != nil {
			t.Fatal(err)
		}
		res := sess.Finish()
		if res.Err != nil {
			t.Fatalf("supervised session error: %v", res.Err)
		}
		if res.Recovery == nil || res.Recovery.Restarts == 0 {
			t.Fatalf("Result.Recovery = %+v, want a healed restart; the crash never fired", res.Recovery)
		}
		if got := renderResults(res.Results); got != ref {
			t.Error("recovered+rebalanced output differs from the sequential engine")
		}
	}
	// The per-replica feed counter passes ~1/8 of the stream to each of the 4
	// replicas' counters combined per consumed tuple pair; the absolute counts
	// below land the crash before and after the 1/3-point rebalance.
	t.Run("crash-before-rebalance", func(t *testing.T) { run(t, 40) })
	t.Run("crash-after-rebalance", func(t *testing.T) { run(t, int64(len(input)/2)) })
}
