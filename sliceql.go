package stateslice

// This file is the public face of SliceQL, the declarative front-end: a
// query set written as text compiles through exactly the same optimizer pass
// pipeline and Build call as a hand-built Workload, so the two paths produce
// byte-identical plans and identical Explain traces (the equivalence tests
// in sliceql_test.go pin this). The grammar:
//
//	[name:] SELECT * FROM <streamA> JOIN <streamB>
//	        ON <a.col> = <b.col> | BAND(<a.col>, <b.col>, <width>)
//	        [WHERE <stream.value> >= <x> [AND ...]]
//	        WINDOW <n> <us|ms|s|min>
//	        [KEYS <min>..<max>] ;
//
// Every statement must read the same stream pair through the same join —
// the sharing scenario the paper optimizes. WHERE thresholds become
// Threshold selections (value is uniform on [0,1), so "value >= x" has
// selectivity 1-x), queries are sorted into chain order, and a KEYS clause
// declares the key domain the optimizer's shard-inference pass uses.

import (
	"fmt"

	"stateslice/internal/sliceql"
	"stateslice/internal/stream"
)

// ParseWorkload parses a SliceQL query set into a Workload, sorted into
// chain order (ascending windows). Use it when you want to compose Build
// options yourself; CompileQuery additionally wires the declared KEYS domain
// into the build. Errors carry the 1-based line:column of the offending
// clause.
func ParseWorkload(src string) (Workload, error) {
	b, err := parseAndBind(src)
	if err != nil {
		return Workload{}, err
	}
	return b.Workload, nil
}

// CompileQuery parses a SliceQL query set and builds it under the given
// strategy — the front-end's one-call path from text to Plan. The parsed
// declarations feed the optimizer: a KEYS domain becomes the band
// partitioner's key range when the build shards (WithShards or
// WithAutoShards), and caps the inferred shard count under WithAutoShards.
// Explicit options compose after the inferred ones and win conflicts the
// usual way (Build rejects incompatible combinations).
func CompileQuery(src string, s Strategy, opts ...Option) (Plan, error) {
	b, err := parseAndBind(src)
	if err != nil {
		return nil, err
	}
	if b.Keys != nil {
		// Peek at the caller's options to decide whether the declared
		// domain participates: WithKeyRange is only valid on a sharded
		// band-partitioned build, and under WithAutoShards the inference
		// pass wants the domain even for hash-partitioned joins (it caps
		// the count; Build drops it again before the partitioner).
		var probe buildOptions
		for _, opt := range opts {
			opt(&probe)
		}
		_, bandOK := stream.PartitionableByBand(b.Workload.Join)
		bandSharded := probe.shardsSet && bandOK && !stream.PartitionableByKey(b.Workload.Join)
		if !probe.keyRangeSet && (probe.autoShards || bandSharded) {
			opts = append(opts, WithKeyRange(b.Keys.Min, b.Keys.Max))
		}
	}
	return Build(b.Workload, s, opts...)
}

// ParseQuery parses exactly one SliceQL statement into a Query — the
// admission path: hand the result to Session.Attach (or use AttachQuery).
// The cross-statement checks of a query set do not apply; the running plan
// validates the query against its own roster and slice layout.
func ParseQuery(src string) (Query, error) {
	qs, err := sliceql.Parse(src)
	if err != nil {
		return Query{}, err
	}
	if len(qs.Stmts) != 1 {
		return Query{}, fmt.Errorf("stateslice: ParseQuery takes exactly one statement, got %d (compile a query set with CompileQuery or ParseWorkload)", len(qs.Stmts))
	}
	return sliceql.BindStmt(qs.Stmts[0])
}

// AttachQuery parses one SliceQL statement and admits it to the running
// session at a feed barrier — the query-string form of Session.Attach, with
// the same preconditions (a migratable chain, an unfiltered workload and
// query, a window within the chain).
func AttachQuery(s Session, src string) (QueryID, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return 0, err
	}
	return s.Attach(q)
}

// parseAndBind runs the front-end: parse, then bind the query set against
// the stream model.
func parseAndBind(src string) (*sliceql.Bound, error) {
	qs, err := sliceql.Parse(src)
	if err != nil {
		return nil, err
	}
	return sliceql.Bind(qs)
}
