package stateslice

import (
	"errors"
	"fmt"

	"stateslice/internal/plan"
	rec "stateslice/internal/recover"
	"stateslice/internal/shard"
)

// Checkpoint is a barrier-consistent snapshot of a running session: the
// per-slice window contents of every chain (or chain replica, for sharded
// sessions), the feed frontiers and the query roster — everything a fresh
// plan built with WithRestore needs to continue the run exactly where the
// snapshot was taken. Take one with Session.Checkpoint; serialize it with
// Bytes and read it back with DecodeCheckpoint.
//
// Predicates are code and never travel in a checkpoint: WithRestore pairs
// the snapshot with the founding workload, which is validated slot-by-slot
// against the snapshot's roster. Queries admitted mid-stream (Attach) are
// always unfiltered and are re-synthesized from the roster alone.
//
// A checkpoint is independent of the session it was taken from — the
// session keeps running unaffected, and the restored plan re-produces only
// results of tuples fed after the restore point.
type Checkpoint struct {
	chain *plan.ChainCheckpoint
	shard *shard.Checkpoint
}

// Restart is the supervised-restart policy WithRecovery installs on a
// sharded plan: a replica that dies with a contained crash (PanicError) is
// rebuilt from its last runner-local checkpoint and fed the missing delta
// from a replay ring, up to MaxRestarts times per replica with exponential
// backoff, instead of failing the session. The merged output stream is
// byte-identical to an uninterrupted run. The zero value selects every
// default; exhausting the budget degrades to the fail-fast teardown.
type Restart = rec.Restart

// RecoveryStats aggregates what supervised restart did during a session:
// successful restarts, replayed feed slabs, exhausted budgets and the
// cumulative rebuild time. Finish carries it on Result.Recovery for sessions
// built with WithRecovery.
type RecoveryStats = rec.Stats

// Sharded reports whether the snapshot was taken from a sharded session
// (WithShards); such a snapshot restores only into a sharded plan with the
// same shard count and partitioning.
func (c *Checkpoint) Sharded() bool { return c.shard != nil }

// Shards returns the shard count the snapshot was taken with (1 for a
// sequential session).
func (c *Checkpoint) Shards() int {
	if c.shard != nil {
		return c.shard.Shards
	}
	return 1
}

// Fed returns how many source tuples had been fed when the snapshot was
// taken.
func (c *Checkpoint) Fed() int {
	if c.shard != nil {
		return c.shard.Fed
	}
	return c.chain.Fed
}

// LastTime returns the timestamp of the latest tuple fed before the
// snapshot.
func (c *Checkpoint) LastTime() Time {
	if c.shard != nil {
		return c.shard.LastTime
	}
	return c.chain.LastTime
}

// StateTuples returns the total number of window-state tuples the snapshot
// holds — its dominant size component.
func (c *Checkpoint) StateTuples() int {
	if c.shard != nil {
		return c.shard.StateTuples()
	}
	return c.chain.StateTuples()
}

// Bytes serializes the checkpoint into the versioned binary blob format
// DecodeCheckpoint reads.
func (c *Checkpoint) Bytes() ([]byte, error) {
	switch {
	case c.shard != nil:
		return c.shard.Encode()
	case c.chain != nil:
		return c.chain.AppendTo(nil)
	default:
		return nil, errors.New("stateslice: empty checkpoint")
	}
}

// DecodeCheckpoint reads a checkpoint blob produced by Bytes, accepting
// both the sequential chain form and the sharded composite form.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) >= 7 && data[6] == plan.KindSharded {
		cp, err := shard.DecodeCheckpoint(data)
		if err != nil {
			return nil, err
		}
		return &Checkpoint{shard: cp}, nil
	}
	cp, rest, err := plan.DecodeChainCheckpoint(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("stateslice: checkpoint blob has %d trailing bytes", len(rest))
	}
	return &Checkpoint{chain: cp}, nil
}

// validateRestoreShape checks WithRestore against the build shape early, so
// a snapshot/plan mismatch fails at Build time with a specific message
// instead of surfacing as a replica error when goroutines start.
func validateRestoreShape(o buildOptions) error {
	cp := o.restore
	if cp.chain == nil && cp.shard == nil {
		return errors.New("stateslice: WithRestore got an empty checkpoint")
	}
	if o.concurrent {
		return errors.New("stateslice: WithRestore resumes engine-backed sessions; the concurrent pipeline is single-shot and cannot be combined with it")
	}
	if cp.Sharded() {
		if !o.shardsSet {
			return fmt.Errorf("stateslice: the checkpoint was taken from a sharded session; restore it with WithShards(%d)", cp.Shards())
		}
		if o.shards != cp.Shards() {
			return fmt.Errorf("stateslice: the checkpoint was taken with %d shards but the plan is built with %d — per-replica states are partition-shaped and cannot be re-sharded", cp.Shards(), o.shards)
		}
		return nil
	}
	if o.shardsSet {
		return errors.New("stateslice: the checkpoint was taken from a sequential session and cannot seed sharded replicas; build without WithShards (or checkpoint a sharded session)")
	}
	return nil
}
