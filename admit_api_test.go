package stateslice_test

// Tests of live query admission through the public API: Session.Attach and
// Session.Detach on running chains — suffix byte-identicality against
// built-in queries across execution modes and merge topologies, detach under
// key skew, validation, the restructuring guard, and the live Explain
// surface.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"stateslice"
)

// renderTuples renders one query's result sequence for byte-for-byte
// comparison (renderResults compares whole result sets, but admission runs
// and their built-in references index the same query differently).
func renderTuples(rs []*stateslice.Tuple) string {
	var b strings.Builder
	for _, t := range rs {
		fmt.Fprintf(&b, " %s@%s#%d", t, t.Time, t.Seq)
	}
	return b.String()
}

// sinceSeq filters a result sequence to tuples whose probing male arrived at
// or after the given sequence number — the post-admission suffix.
func sinceSeq(rs []*stateslice.Tuple, seq uint64) []*stateslice.Tuple {
	var out []*stateslice.Tuple
	for _, t := range rs {
		if t.Seq >= seq {
			out = append(out, t)
		}
	}
	return out
}

// beforeSeq filters a result sequence to tuples whose probing male arrived
// before the given sequence number — the pre-detach prefix.
func beforeSeq(rs []*stateslice.Tuple, seq uint64) []*stateslice.Tuple {
	var out []*stateslice.Tuple
	for _, t := range rs {
		if t.Seq < seq {
			out = append(out, t)
		}
	}
	return out
}

// TestAdmitSuffixByteIdentical attaches a query mid-stream — sequential and
// sharded at p ∈ {1,4}, over both merge topologies (hash-partitioned
// equijoin and band partitioning with boundary replication) — and compares
// its results byte-for-byte against the post-admission suffix of the same
// query built in from the start. The pre-existing query's full sequence must
// be untouched by the admission.
func TestAdmitSuffixByteIdentical(t *testing.T) {
	input := keyedInput(t)
	half := len(input) / 2
	cutSeq := input[half].Seq
	attached := stateslice.Query{Name: "Qnew", Window: 3 * stateslice.Second}

	for _, topo := range []struct {
		name string
		join stateslice.JoinPredicate
		opts []stateslice.Option // partitioning extras for sharded builds
	}{
		{"equijoin", stateslice.Equijoin{}, nil},
		{"band", stateslice.BandJoin{B: 1}, []stateslice.Option{stateslice.WithKeyRange(0, 11)}},
	} {
		base := stateslice.Workload{
			Queries: []stateslice.Query{{Name: "Qbig", Window: 8 * stateslice.Second}},
			Join:    topo.join,
		}
		full := stateslice.Workload{
			Queries: []stateslice.Query{attached, {Name: "Qbig", Window: 8 * stateslice.Second}},
			Join:    topo.join,
		}
		// Reference 1: the attached query built in from the start — the
		// admitted query must reproduce its post-admission suffix byte for
		// byte. (The full sequences of the two chains are not comparable:
		// within one probing male, pair order depends on the slice layout,
		// and the layouts only coincide from the admission's split on.)
		ref, err := stateslice.Build(full, stateslice.MemOpt, stateslice.WithCollect())
		if err != nil {
			t.Fatal(err)
		}
		refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		wantNewSuffix := renderTuples(sinceSeq(refRes.Results[0], cutSeq))
		if wantNewSuffix == "" {
			t.Fatalf("%s: built-in reference has no post-admission results; the suffix check is vacuous", topo.name)
		}
		// Reference 2: the base workload run with no admission at all —
		// the pre-existing query's whole sequence must be untouched by
		// the mid-stream attach.
		baseRef, err := stateslice.Build(base, stateslice.MemOpt, stateslice.WithCollect())
		if err != nil {
			t.Fatal(err)
		}
		baseRes, err := baseRef.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		wantBig := renderTuples(baseRes.Results[0])

		for _, mode := range []struct {
			name   string
			shards int
		}{
			{"sequential", 0}, {"p=1", 1}, {"p=4", 4},
		} {
			opts := []stateslice.Option{stateslice.WithCollect(), stateslice.WithMigratable()}
			if mode.shards > 0 {
				opts = append(opts, stateslice.WithShards(mode.shards))
				opts = append(opts, topo.opts...)
			}
			p, err := stateslice.Build(base, stateslice.MemOpt, opts...)
			if err != nil {
				t.Fatalf("%s/%s: %v", topo.name, mode.name, err)
			}
			sess, err := p.NewSession(stateslice.RunConfig{})
			if err != nil {
				t.Fatalf("%s/%s: %v", topo.name, mode.name, err)
			}
			if err := sess.Consume(stateslice.SliceSource(input[:half])); err != nil {
				t.Fatalf("%s/%s: %v", topo.name, mode.name, err)
			}
			id, err := sess.Attach(attached)
			if err != nil {
				t.Fatalf("%s/%s: Attach: %v", topo.name, mode.name, err)
			}
			if id != 1 {
				t.Fatalf("%s/%s: Attach returned ID %d, want 1", topo.name, mode.name, id)
			}
			// The admission split the single (0,8s] slice at the new
			// query's window.
			if ends := p.Ends(); len(ends) != 2 || ends[0] != 3*stateslice.Second {
				t.Fatalf("%s/%s: chain after Attach is %v, want [3s 8s]", topo.name, mode.name, ends)
			}
			if err := sess.Consume(stateslice.SliceSource(input[half:])); err != nil {
				t.Fatalf("%s/%s: %v", topo.name, mode.name, err)
			}
			res := sess.Finish()
			if res.Err != nil {
				t.Fatalf("%s/%s: session error: %v", topo.name, mode.name, res.Err)
			}
			if res.OrderViolations != 0 {
				t.Errorf("%s/%s: %d order violations", topo.name, mode.name, res.OrderViolations)
			}
			if got := renderTuples(res.Results[0]); got != wantBig {
				t.Errorf("%s/%s: the admission changed the pre-existing query's results", topo.name, mode.name)
			}
			if got := renderTuples(res.Results[1]); got != wantNewSuffix {
				t.Errorf("%s/%s: attached query's results differ from the built-in query's post-admission suffix", topo.name, mode.name)
			}
		}
	}
}

// TestAdmitDetachUnderSkew detaches the largest-window query mid-stream
// under heavy key skew (3 keys across 4 shards: idle replicas, concentrated
// state). The surviving query must match a static reference byte-for-byte,
// the detached query must keep exactly its pre-detach prefix, and the chain
// must garbage-collect the slices only the detached query read.
func TestAdmitDetachUnderSkew(t *testing.T) {
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 30 * stateslice.Second, KeyDomain: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := len(input) / 2
	cutSeq := input[half].Seq
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Qshort", Window: 2 * stateslice.Second},
			{Name: "Qlong", Window: 8 * stateslice.Second},
		},
		Join: stateslice.Equijoin{},
	}
	ref, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantShort := renderTuples(refRes.Results[0])
	wantLongPrefix := renderTuples(beforeSeq(refRes.Results[1], cutSeq))
	if wantLongPrefix == "" || len(refRes.Results[1]) == len(beforeSeq(refRes.Results[1], cutSeq)) {
		t.Fatal("reference prefix is vacuous: the detached query needs results on both sides of the cut")
	}

	for _, mode := range []struct {
		name   string
		shards int
	}{
		{"sequential", 0}, {"p=4", 4},
	} {
		opts := []stateslice.Option{stateslice.WithCollect(), stateslice.WithMigratable()}
		if mode.shards > 0 {
			opts = append(opts, stateslice.WithShards(mode.shards))
		}
		p, err := stateslice.Build(w, stateslice.MemOpt, opts...)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		sess, err := p.NewSession(stateslice.RunConfig{})
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if err := sess.Consume(stateslice.SliceSource(input[:half])); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if err := sess.Detach(1); err != nil {
			t.Fatalf("%s: Detach: %v", mode.name, err)
		}
		// The (2s,8s] slice served only the detached query and must be
		// garbage-collected.
		if ends := p.Ends(); len(ends) != 1 || ends[0] != 2*stateslice.Second {
			t.Fatalf("%s: chain after Detach is %v, want [2s]", mode.name, ends)
		}
		if err := sess.Detach(1); err == nil {
			t.Errorf("%s: detaching an already-detached query must fail", mode.name)
		}
		if err := sess.Consume(stateslice.SliceSource(input[half:])); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		res := sess.Finish()
		if res.Err != nil {
			t.Fatalf("%s: session error: %v", mode.name, res.Err)
		}
		if res.OrderViolations != 0 {
			t.Errorf("%s: %d order violations", mode.name, res.OrderViolations)
		}
		if got := renderTuples(res.Results[0]); got != wantShort {
			t.Errorf("%s: the detach changed the surviving query's results", mode.name)
		}
		if got := renderTuples(res.Results[1]); got != wantLongPrefix {
			t.Errorf("%s: detached query's results differ from its pre-detach prefix", mode.name)
		}
	}
}

// TestAdmitDuringMigrateRejected pins the restructuring guard: a result sink
// fired from inside a live migration's drain must not be able to start an
// admission on the half-restructured chain.
func TestAdmitDuringMigrateRejected(t *testing.T) {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 2 * stateslice.Second},
			{Window: 8 * stateslice.Second},
		},
		Join: stateslice.Equijoin{},
	}
	var (
		sess      stateslice.Session
		attempted bool
		attachErr error
	)
	p, err := stateslice.Build(w, stateslice.MemOpt,
		stateslice.WithMigratable(),
		stateslice.WithBatchSize(-1), // buffer everything until the migration drains
		stateslice.WithSink(1, stateslice.SinkFunc(func(*stateslice.Tuple) {
			if !attempted {
				attempted = true
				_, attachErr = sess.Attach(stateslice.Query{Window: 3 * stateslice.Second})
			}
		})))
	if err != nil {
		t.Fatal(err)
	}
	sess, err = p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	input := keyedInput(t)
	if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}
	if err := p.Migrate([]stateslice.Time{8 * stateslice.Second}); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if !attempted {
		t.Fatal("the migration's drain delivered no result; the reentrancy check is vacuous")
	}
	if attachErr == nil {
		t.Fatal("Attach from inside a live migration must fail")
	}
	if !strings.Contains(attachErr.Error(), "restructured") {
		t.Errorf("guard error %q does not name the restructuring conflict", attachErr)
	}
	if _, err := sess.Attach(stateslice.Query{Window: 3 * stateslice.Second}); err != nil {
		t.Errorf("Attach after the migration completed must succeed: %v", err)
	}
}

// TestAdmitValidation pins the admission error surface.
func TestAdmitValidation(t *testing.T) {
	unfiltered := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 2 * stateslice.Second},
			{Window: 8 * stateslice.Second},
		},
		Join: stateslice.Equijoin{},
	}
	newSession := func(t *testing.T, w stateslice.Workload, s stateslice.Strategy, opts ...stateslice.Option) stateslice.Session {
		t.Helper()
		p, err := stateslice.Build(w, s, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := p.NewSession(stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	sess := newSession(t, unfiltered, stateslice.MemOpt, stateslice.WithMigratable())
	for _, tc := range []struct {
		name    string
		q       stateslice.Query
		wantSub string
	}{
		{"filtered query", stateslice.Query{Window: 3 * stateslice.Second, Filter: stateslice.Threshold{S: 0.5}}, "unfiltered"},
		{"zero window", stateslice.Query{}, "non-positive"},
		{"window beyond the chain", stateslice.Query{Window: 9 * stateslice.Second}, "exceeds"},
	} {
		if _, err := sess.Attach(tc.q); err == nil {
			t.Errorf("%s: Attach must fail", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
	if err := sess.Detach(5); err == nil {
		t.Error("Detach out of range must fail")
	}
	if err := sess.Detach(-1); err == nil {
		t.Error("Detach of a negative ID must fail")
	}
	if err := sess.Detach(0); err != nil {
		t.Fatalf("Detach(0): %v", err)
	}
	if err := sess.Detach(1); err == nil {
		t.Error("detaching the last live query must fail")
	} else if !strings.Contains(err.Error(), "no live query") {
		t.Errorf("error %q does not name the last-query rule", err)
	}

	attach := stateslice.Query{Window: 3 * stateslice.Second}
	if _, err := newSession(t, unfiltered, stateslice.MemOpt).Attach(attach); err == nil {
		t.Error("Attach on a non-migratable chain must fail")
	} else if !strings.Contains(err.Error(), "WithMigratable") {
		t.Errorf("error %q does not point at WithMigratable", err)
	}
	if _, err := newSession(t, unfiltered, stateslice.PullUp).Attach(attach); err == nil {
		t.Error("Attach on a pull-up plan must fail")
	} else if !strings.Contains(err.Error(), "admission") {
		t.Errorf("error %q does not name admission", err)
	}
	if _, err := newSession(t, equijoinWorkload(), stateslice.MemOpt, stateslice.WithMigratable()).Attach(attach); err == nil {
		t.Error("Attach on a filtered workload must fail")
	} else if !strings.Contains(err.Error(), "unfiltered workload") {
		t.Errorf("error %q does not name the unfiltered restriction", err)
	}
	if _, err := newSession(t, unfiltered, stateslice.MemOpt, stateslice.WithShards(2)).Attach(attach); err == nil {
		t.Error("Attach on a non-migratable sharded plan must fail")
	} else if !strings.Contains(err.Error(), "WithMigratable") {
		t.Errorf("error %q does not point at WithMigratable", err)
	}
	if _, err := stateslice.Build(unfiltered, stateslice.MemOpt,
		stateslice.WithConcurrency(),
		stateslice.WithResultHandler(func(stateslice.QueryID, *stateslice.Tuple) {})); err == nil {
		t.Error("WithResultHandler with WithConcurrency must be rejected at Build")
	}
	if _, err := stateslice.Build(unfiltered, stateslice.MemOpt, stateslice.WithResultHandler(nil)); err == nil {
		t.Error("a nil result handler must be rejected at Build")
	}
}

// TestAdmitExplainLive asserts Explain renders the live query set: attached
// queries appear, detached queries are marked, and the chain layout follows
// the admission's splits and garbage collection.
func TestAdmitExplainLive(t *testing.T) {
	base := stateslice.Workload{
		Queries: []stateslice.Query{{Name: "Qbig", Window: 8 * stateslice.Second}},
		Join:    stateslice.Equijoin{},
	}
	for _, mode := range []struct {
		name   string
		shards int
	}{
		{"sequential", 0}, {"p=2", 2},
	} {
		opts := []stateslice.Option{stateslice.WithMigratable()}
		if mode.shards > 0 {
			opts = append(opts, stateslice.WithShards(mode.shards))
		}
		p, err := stateslice.Build(base, stateslice.MemOpt, opts...)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		sess, err := p.NewSession(stateslice.RunConfig{})
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if s := p.Explain(); !strings.Contains(s, "Qbig") || strings.Contains(s, "Qnew") {
			t.Errorf("%s: Explain before admission:\n%s", mode.name, s)
		}
		if _, err := sess.Attach(stateslice.Query{Name: "Qnew", Window: 3 * stateslice.Second}); err != nil {
			t.Fatalf("%s: Attach: %v", mode.name, err)
		}
		if s := p.Explain(); !strings.Contains(s, "Qnew: window 3s") {
			t.Errorf("%s: Explain does not list the attached query:\n%s", mode.name, s)
		} else if strings.Contains(s, "(detached)") {
			t.Errorf("%s: Explain marks a live query detached:\n%s", mode.name, s)
		}
		if err := sess.Detach(0); err != nil {
			t.Fatalf("%s: Detach: %v", mode.name, err)
		}
		s := p.Explain()
		if !strings.Contains(s, "(detached)") || !strings.Contains(s, "Qbig") {
			t.Errorf("%s: Explain does not mark the detached query:\n%s", mode.name, s)
		}
		if !strings.Contains(s, "(0s,3s]") || strings.Contains(s, "8s]") {
			t.Errorf("%s: Explain chain did not follow the garbage collection:\n%s", mode.name, s)
		}
		sess.Finish()
	}
}

// TestAdmitResultHandler asserts WithResultHandler streams every query's
// results with the right ID — including a query admitted after Build, which
// WithSink cannot address.
func TestAdmitResultHandler(t *testing.T) {
	input := keyedInput(t)
	half := len(input) / 2
	base := stateslice.Workload{
		Queries: []stateslice.Query{{Name: "Qbig", Window: 8 * stateslice.Second}},
		Join:    stateslice.Equijoin{},
	}
	for _, mode := range []struct {
		name   string
		shards int
	}{
		{"sequential", 0}, {"p=2", 2},
	} {
		var mu sync.Mutex
		counts := map[stateslice.QueryID]uint64{}
		opts := []stateslice.Option{
			stateslice.WithMigratable(),
			stateslice.WithResultHandler(func(id stateslice.QueryID, _ *stateslice.Tuple) {
				mu.Lock()
				counts[id]++
				mu.Unlock()
			}),
		}
		if mode.shards > 0 {
			opts = append(opts, stateslice.WithShards(mode.shards))
		}
		p, err := stateslice.Build(base, stateslice.MemOpt, opts...)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		sess, err := p.NewSession(stateslice.RunConfig{})
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if err := sess.Consume(stateslice.SliceSource(input[:half])); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		id, err := sess.Attach(stateslice.Query{Name: "Qnew", Window: 3 * stateslice.Second})
		if err != nil {
			t.Fatalf("%s: Attach: %v", mode.name, err)
		}
		if err := sess.Consume(stateslice.SliceSource(input[half:])); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		res := sess.Finish()
		if res.Err != nil {
			t.Fatalf("%s: session error: %v", mode.name, res.Err)
		}
		mu.Lock()
		if counts[id] == 0 {
			t.Errorf("%s: the handler saw no results of the attached query", mode.name)
		}
		for qi, want := range res.SinkCounts {
			if got := counts[stateslice.QueryID(qi)]; got != want {
				t.Errorf("%s: handler saw %d results of query %d, sink delivered %d", mode.name, got, qi, want)
			}
		}
		mu.Unlock()
	}
}
