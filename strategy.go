package stateslice

import (
	"context"
	"errors"
	"fmt"
)

// Strategy selects the sharing paradigm a Build call compiles the workload
// into. The paper's contribution is that one shared state-slice chain
// subsumes the baselines; the enum makes the choice a runtime parameter
// instead of five unrelated constructors.
type Strategy int

const (
	// MemOpt builds the memory-optimal state-slice chain: one sliced
	// join per distinct query window (Section 5.1; Theorems 3 and 4).
	MemOpt Strategy = iota
	// CPUOpt builds the CPU-optimal state-slice chain: adjacent slices
	// merged by Dijkstra's algorithm over the slice-merge graph whenever
	// saved purge and scheduling overhead outweighs added routing
	// (Section 5.2). Tune the model with WithCostParams.
	CPUOpt
	// PullUp builds the naive shared baseline with selection pull-up:
	// one largest-window join plus a router (Section 3.1).
	PullUp
	// PushDown builds the stream-partition baseline with selection
	// push-down: split, per-partition joins, router and union
	// (Section 3.2).
	PushDown
	// Unshared builds one independent plan per query (Figure 2).
	Unshared
	// Auto builds whichever state-slice chain — Mem-Opt or CPU-Opt — the
	// analytic cost model prices cheaper in comparisons for this workload
	// (ties go to Mem-Opt, the smaller state). The optimizer's sharing
	// pass makes the choice; the built plan reports the resolved concrete
	// strategy, and Explain's pass trace records both candidates' costs.
	Auto
)

// Strategies lists every concrete build strategy, in a stable order
// convenient for sweeps and tests. Auto is not listed: it resolves to one of
// these at Build time.
func Strategies() []Strategy { return []Strategy{MemOpt, CPUOpt, PullUp, PushDown, Unshared} }

// String names the strategy as used in plan names and CLI flags.
func (s Strategy) String() string {
	switch s {
	case MemOpt:
		return "mem-opt"
	case CPUOpt:
		return "cpu-opt"
	case PullUp:
		return "pull-up"
	case PushDown:
		return "push-down"
	case Unshared:
		return "unshared"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a strategy name as produced by String, including
// "auto".
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range append(Strategies(), Auto) {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("stateslice: unknown strategy %q (want one of %v or auto)", name, Strategies())
}

// sliced reports whether the strategy builds a state-slice chain.
func (s Strategy) sliced() bool { return s == MemOpt || s == CPUOpt || s == Auto }

// Cost-model defaults, the Section 7.1 experiment settings. DefaultCostModel
// starts from these; WithCostParams never substitutes them silently.
const (
	// DefaultJoinSelectivity is the middle S1 setting of Table 3.
	DefaultJoinSelectivity = 0.1
	// DefaultCsys is the per-tuple-per-operator scheduling overhead, in
	// comparisons, used throughout the paper's CPU-Opt evaluation.
	DefaultCsys = 3.0
	// DefaultRate is the middle per-stream arrival rate of the sweeps,
	// in tuples/sec.
	DefaultRate = 50.0
	// DefaultTupleKB is the modelled tuple size Mt in KB.
	DefaultTupleKB = 1.0
)

// CostModel carries the inputs of the analytic cost model (Table 1): it
// parameterizes the CPU-Opt chain optimizer and Plan.EstimatedCost.
//
// A CostModel is taken verbatim: an
// explicit Csys of 0 means zero scheduling overhead (every slice boundary
// is then free, so CPU-Opt degenerates to Mem-Opt) and is honored, not
// rewritten to a default. Fields that cannot meaningfully be zero
// (the rates, JoinSelectivity, TupleKB) are rejected by Validate with an
// explicit error instead of being silently defaulted; start from
// DefaultCostModel and override what you know.
type CostModel struct {
	// RateA and RateB are the expected stream arrival rates in
	// tuples/sec. Must be positive.
	RateA, RateB float64
	// JoinSelectivity is S1, the join output over the Cartesian product.
	// Must lie in (0, 1]: a zero-selectivity join produces nothing and
	// has no meaningful plan to optimize.
	JoinSelectivity float64
	// Csys is the per-tuple-per-operator overhead factor in comparisons.
	// Must be non-negative; zero is a valid, honored setting.
	Csys float64
	// TupleKB is the tuple size Mt in KB, used for memory estimates.
	// Must be positive.
	TupleKB float64
}

// DefaultCostModel returns the paper's Section 7.1 settings. Override
// individual fields before passing the model to WithCostParams.
func DefaultCostModel() CostModel {
	return CostModel{
		RateA:           DefaultRate,
		RateB:           DefaultRate,
		JoinSelectivity: DefaultJoinSelectivity,
		Csys:            DefaultCsys,
		TupleKB:         DefaultTupleKB,
	}
}

// Validate reports the first invalid field, if any.
func (m CostModel) Validate() error {
	if m.RateA <= 0 || m.RateB <= 0 {
		return fmt.Errorf("stateslice: cost model rates must be positive (got A=%g, B=%g)", m.RateA, m.RateB)
	}
	if m.JoinSelectivity <= 0 || m.JoinSelectivity > 1 {
		return fmt.Errorf("stateslice: cost model join selectivity must lie in (0,1], got %g (a zero-output join has nothing to optimize; use DefaultJoinSelectivity %g for the paper's setting)",
			m.JoinSelectivity, DefaultJoinSelectivity)
	}
	if m.Csys < 0 {
		return fmt.Errorf("stateslice: cost model Csys must be non-negative, got %g (0 is valid and means no scheduling overhead)", m.Csys)
	}
	if m.TupleKB <= 0 {
		return fmt.Errorf("stateslice: cost model tuple size must be positive, got %g KB", m.TupleKB)
	}
	return nil
}

// buildOptions accumulates the functional options of Build.
type buildOptions struct {
	name            string
	collect         bool
	migratable      bool
	disableLineage  bool
	hashProbing     bool
	concurrent      bool
	shards          int
	shardsSet       bool
	autoShards      bool
	assemblyWorkers int
	assemblySet     bool
	keyMin, keyMax  int64
	keyRangeSet     bool
	ends            []Time
	model           CostModel
	modelSet        bool
	sinks           map[int]Sink
	resultHandler   func(QueryID, *Tuple)
	batchSize       int
	batchSet        bool
	ctx             context.Context
	restore         *Checkpoint
	recovery        *Restart
	rebalance       *Rebalance
	err             error
}

// Option customizes a Build call. Options compose left to right; an invalid
// option or an option incompatible with the chosen strategy surfaces as a
// Build error.
type Option func(*buildOptions)

// WithName overrides the plan name shown in results and Explain output.
func WithName(name string) Option {
	return func(o *buildOptions) { o.name = name }
}

// WithCollect makes every query sink retain its result tuples, exposed via
// Result.Results after a run.
func WithCollect() Option {
	return func(o *buildOptions) { o.collect = true }
}

// WithEnds pins explicit slice end-window boundaries (ascending, the last
// equal to the largest query window) instead of the optimizer's choice.
// Valid only with the MemOpt strategy, which it turns into a custom chain.
func WithEnds(ends ...Time) Option {
	return func(o *buildOptions) { o.ends = append([]Time(nil), ends...) }
}

// WithCostParams supplies the analytic cost model consumed by the CPU-Opt
// optimizer and by Plan.EstimatedCost. The model is validated by
// CostModel.Validate and then used verbatim — see the CostModel docs for
// the zero-value semantics. Without this option, CPUOpt and EstimatedCost
// fall back to DefaultCostModel.
func WithCostParams(m CostModel) Option {
	return func(o *buildOptions) {
		if err := m.Validate(); err != nil && o.err == nil {
			o.err = err
		}
		o.model = m
		o.modelSet = true
	}
}

// WithMigratable wires the chain uniformly (a union per query) so that
// Plan.Migrate can merge and split slices while a session runs (Section
// 5.3). Valid only with the chain strategies MemOpt and CPUOpt.
func WithMigratable() Option {
	return func(o *buildOptions) { o.migratable = true }
}

// WithoutLineage switches pushed-down selections from lineage marking
// (Section 6.1) to plain re-evaluation at every slice gate — the ablation
// baseline. Valid only with the chain strategies.
func WithoutLineage() Option {
	return func(o *buildOptions) { o.disableLineage = true }
}

// WithHashProbing switches every regular window join in the plan from
// nested-loop probing (the paper's cost model) to hash-index probing (Kang
// et al. [14]). It requires an equijoin workload and a plan that actually
// contains eligible joins: state-slice chains use sliced joins, which are
// never hash-probed, so Build reports an error instead of silently
// succeeding.
func WithHashProbing() Option {
	return func(o *buildOptions) { o.hashProbing = true }
}

// WithConcurrency executes the chain with one goroutine per sliced join
// connected by channels (the asynchronous regime of Lemma 1 / Section 9)
// instead of the sequential engine. Valid only with MemOpt over an
// unfiltered workload; such plans run via Plan.Run but do not support
// sessions or migration.
//
// Exactly one executor drives a plan, so WithConcurrency cannot be combined
// with WithShards (a different parallel executor) or with WithBatchSize
// (which tunes the sequential engine the pipeline replaces): Build reports
// an error for either combination instead of letting one option silently
// win.
func WithConcurrency() Option {
	return func(o *buildOptions) { o.concurrent = true }
}

// WithShards executes the chain as p independent full replicas, the input
// hash-partitioned by the equijoin key (Tuple.Key): tuples with equal keys
// always land on the same replica, so every replica computes exactly the
// results of its own key range on its own goroutine — driven by the
// unmodified batched sequential engine — and an order-preserving per-query
// merge reassembles the global (Time, Seq) output order. Results are
// byte-identical to the unsharded engine at every p; service rate scales
// with the shard count both by parallelism and because each replica's
// window states (and therefore its nested-loop probe spans) shrink by the
// partitioning factor.
//
// Keys are spread by a splitmix64 mixing hash before the modulo, so
// clustered or consecutive key values still distribute across shards;
// per-key frequency skew is irreducible — a hot key's entire window state
// lives on one shard and caps the achievable speedup (results stay
// byte-identical; only the balance degrades). The cross-replica merge layer
// runs on a pool of assembly workers, tunable with WithAssemblyWorkers.
//
// WithShards requires a chain strategy (MemOpt or CPUOpt) and a join
// predicate the partitioner can reason about: either key-partitionable (an
// Equijoin workload, hash-partitioned as above) or band-partitionable (a
// BandJoin workload, |A.Key - B.Key| <= B, which additionally needs
// WithKeyRange — see that option for the contiguous range partitioning and
// boundary replication it selects). For any other predicate a pair of
// matching tuples could be split across replicas and silently lost, so
// Build reports an error. Sharded plans support sessions,
// WithSink streaming (sink callbacks run on assembly-worker goroutines, so
// sinks of queries owned by different workers may fire concurrently), and WithMigratable
// migration, which fans out to every replica at the same stream position.
// WithBatchSize composes: it tunes each replica's engine micro-batch.
// WithShards(1) runs the full sharded machinery with one replica,
// measuring the feed/merge overhead against the plain engine. It cannot be
// combined with WithConcurrency (one executor per plan) or WithHashProbing
// (sliced chains are always nested-loop).
func WithShards(p int) Option {
	return func(o *buildOptions) {
		if p < 1 && o.err == nil {
			o.err = fmt.Errorf("stateslice: WithShards needs at least 1 shard, got %d", p)
		}
		o.shards = p
		o.shardsSet = true
	}
}

// WithAutoShards lets the optimizer's shard-inference pass pick the shard
// count instead of an explicit WithShards(p): the host parallelism
// (GOMAXPROCS), capped at 16 and by the declared key domain — an equijoin
// cannot use more shards than it has keys, and a band join wants roughly 4B
// keys per shard before boundary replication dominates. The inferred count
// appears in Explain's pass trace. Everything else follows WithShards
// semantics: a chain strategy and a partitionable join are required, and a
// band join still needs a declared key domain (WithKeyRange, or KEYS in a
// SliceQL query). Cannot be combined with WithShards (the explicit request
// would win silently) or WithConcurrency.
//
// The inferred count depends on the host, so plans built with WithAutoShards
// are reproducible in results (sharding is byte-identical at every p) but
// not in shape across machines; sweeps that pin p should use WithShards.
func WithAutoShards() Option {
	return func(o *buildOptions) { o.autoShards = true }
}

// WithKeyRange declares the inclusive [min, max] key domain of the input
// streams for a band-partitioned sharded build: WithShards over a
// band-partitionable join predicate (such as BandJoin) splits the declared
// domain into p contiguous owner ranges, feeds every tuple to each replica
// whose range lies within the band width B of its key, and suppresses the
// boundary duplicates on the merge side, so results stay byte-identical to
// the sequential engine at every shard count. Keys outside the declared
// range are clamped onto the edge shards — correct, but they concentrate
// load there, so declare the real domain.
//
// Unlike the hash partitioner, contiguous ranges do not mix key values:
// keys clustered inside one range land on one shard, and keys clustered at
// a range boundary replicate to the neighbor too. Both degrade balance and
// feed volume (the replication factor is roughly 1 + 2B/rangeWidth for
// uniform keys), never correctness.
//
// WithKeyRange is required for, and only valid with, a band-partitionable
// join under WithShards: key-partitionable joins are hash-partitioned and
// ignore the domain, so Build rejects the combination instead of silently
// dropping the option.
func WithKeyRange(min, max int64) Option {
	return func(o *buildOptions) {
		if min > max && o.err == nil {
			o.err = fmt.Errorf("stateslice: WithKeyRange needs min <= max, got [%d, %d]", min, max)
		}
		o.keyMin, o.keyMax = min, max
		o.keyRangeSet = true
	}
}

// WithAssemblyWorkers sets how many goroutines a sharded plan's merge
// layer runs (n >= 1, capped at the query count): the stage that
// reassembles the global per-query output order from the replica streams.
// Without the option the executor picks automatically — on the query-level
// merge path one worker per query, so every query's merger runs
// concurrently; on the slice-merge fast path roughly half of GOMAXPROCS
// (the replicas need the other half), at most 4. Results are byte-identical
// at every worker count; the knob only moves where the reassembly work
// runs, trading cross-goroutine traffic against assembly parallelism on
// multi-core hosts. Valid only together with WithShards.
func WithAssemblyWorkers(n int) Option {
	return func(o *buildOptions) {
		if n < 1 && o.err == nil {
			o.err = fmt.Errorf("stateslice: WithAssemblyWorkers needs at least 1 worker, got %d (omit the option for the automatic default)", n)
		}
		o.assemblyWorkers = n
		o.assemblySet = true
	}
}

// WithBatchSize sets the engine's micro-batch size K for every run and
// session of the built plan: the operator graph is scheduled once per K
// arrivals instead of after every tuple, amortizing the per-tuple scheduling
// pass. Per-query results are identical for every K (operators drain FIFO
// queues in arrival order regardless of when the scheduler runs); K only
// trades intra-batch latency and queue memory against scheduling overhead.
// K = 1 is the default and reproduces the paper's tuple-at-a-time CAPE
// schedule exactly; negative K means unbounded (drain only at Finish or a
// migration flush), which is usually a pessimisation — see EXPERIMENTS.md.
// A RunConfig carrying its own non-zero BatchSize overrides this option.
//
// WithBatchSize tunes whichever plan runs on the sequential engine: plain
// chains and baselines directly, sharded chains (WithShards) through each
// replica's engine. It is not valid with WithConcurrency — the pipeline
// batches by channel slab instead, and Build reports the conflict rather
// than picking a winner.
func WithBatchSize(k int) Option {
	return func(o *buildOptions) {
		if k == 0 && o.err == nil {
			o.err = errors.New("stateslice: WithBatchSize needs a positive batch size (or negative for unbounded); the default without the option is 1, the paper-faithful per-tuple schedule")
		}
		o.batchSize = k
		o.batchSet = true
	}
}

// WithContext bounds every run and session of the built plan by ctx: once
// the context is done, Consume feed loops stop between tuples, barrier waits
// (migration and admission on sharded plans) abandon, and blocked cross-
// goroutine sends release — the same unwind Session.Close performs, with the
// context's cause reported instead of ErrClosed. Cancellation never
// interrupts one tuple's processing halfway; it takes effect at the next
// tuple or batch boundary. A RunConfig carrying its own non-nil Ctx
// overrides the option for that run.
func WithContext(ctx context.Context) Option {
	return func(o *buildOptions) {
		if ctx == nil && o.err == nil {
			o.err = errors.New("stateslice: WithContext needs a non-nil context (omit the option for an unbounded run)")
		}
		o.ctx = ctx
	}
}

// WithRestore resumes the plan from a checkpoint taken by
// Session.Checkpoint instead of a fresh start: the chain (or every chain
// replica, for sharded snapshots) is rebuilt with the snapshot's slice
// layout, window contents and query roster, the feed frontiers are seeded,
// and feeding continues where the snapshot was taken — the restored session
// produces exactly the results of the tuples fed after the restore point.
// The workload must be the one the checkpointed plan was built from
// (validated window-by-window; predicates are code and travel with the
// build, not the blob), and a sharded snapshot needs the same shard count
// and partitioning. Valid with the chain strategies MemOpt and CPUOpt.
func WithRestore(cp *Checkpoint) Option {
	return func(o *buildOptions) {
		if cp == nil && o.err == nil {
			o.err = errors.New("stateslice: WithRestore needs a non-nil checkpoint (omit the option for a fresh start)")
		}
		o.restore = cp
	}
}

// WithRecovery arms supervised replica restart on a sharded plan (requires
// WithShards): a replica that dies with a contained crash — a panicking
// operator or callback, surfaced as a PanicError — is rebuilt from a
// periodic runner-local checkpoint and fed the missing input delta from a
// replay ring, while the other replicas and the merge layer keep running.
// Replayed results are suppressed by count, so the merged output stays
// byte-identical to an uninterrupted run. The policy bounds restarts per
// replica and backs off exponentially between attempts; an exhausted budget
// — and every non-crash failure class — degrades to the default fail-fast
// teardown, so supervision never hides a fault. Build errors and driver
// misuse are never retried.
func WithRecovery(pol Restart) Option {
	return func(o *buildOptions) {
		p := pol
		o.recovery = &p
	}
}

// Rebalance configures the automatic load-adaptive rebalance trigger of
// WithRebalance. Zero or negative fields select the documented defaults, so
// the zero value Rebalance{} is a complete, conservative policy.
type Rebalance struct {
	// Threshold is the max/mean per-replica delivery ratio of an
	// evaluation window that counts as imbalanced (a perfectly balanced
	// window measures 1.0). <= 0 selects 1.5.
	Threshold float64
	// CheckEvery is how many fed tuples pass between imbalance
	// evaluations. <= 0 selects 4096.
	CheckEvery int
	// Sustained is how many consecutive imbalanced evaluations trigger a
	// rebalance — a burst shorter than Sustained windows never moves
	// state. <= 0 selects 2.
	Sustained int
	// MinGain is the minimum predicted improvement factor (measured
	// imbalance over the learned cuts' predicted imbalance) a rebalance
	// must offer; skews no boundary change can improve — a single hot key
	// — predict no gain and are skipped instead of thrashed on. <= 0
	// selects 1.2.
	MinGain float64
}

// WithRebalance arms automatic load-adaptive shard rebalancing on a sharded
// plan (requires WithShards): the session monitors the observed key
// distribution and the per-replica delivery balance on the feed path, and
// after sustained imbalance it re-cuts ownership to learned equi-depth
// boundaries — contiguous key ranges holding near-equal observed mass under
// band partitioning (WithKeyRange), hash-space intervals under hash
// partitioning — moving the affected window state between the existing
// replicas at a feed barrier. All tuples fed so far are processed before the
// move, no later tuple overtakes it on any shard, and the merged output is
// byte-identical across the boundary at every shard count. The policy only
// automates the trigger; Session.Rebalance performs the same move on demand
// without this option.
func WithRebalance(pol Rebalance) Option {
	return func(o *buildOptions) {
		p := pol
		o.rebalance = &p
	}
}

// WithSink registers a streaming callback for one query (0-based workload
// index): the sink receives every result tuple of that query as it is
// produced, before the run finishes.
func WithSink(query int, s Sink) Option {
	return func(o *buildOptions) {
		if o.sinks == nil {
			o.sinks = make(map[int]Sink)
		}
		o.sinks[query] = s
	}
}

// WithResultHandler registers one streaming callback receiving every result
// tuple of every query together with the query's ID — the 0-based workload
// index for built-in queries, or the ID Session.Attach returned for queries
// admitted mid-stream. Unlike WithSink it needs no per-query registration,
// which is what makes it fit a churning subscriber set: queries that do not
// exist yet at Build time still stream through it. It composes with WithSink
// (the handler fires first, then the query's sink, on the same goroutine —
// the session driver for sequential plans, an assembly worker for sharded
// ones; under WithShards different queries' callbacks run on different
// workers and may fire concurrently, so guard any state they share).
func WithResultHandler(fn func(QueryID, *Tuple)) Option {
	return func(o *buildOptions) {
		if fn == nil && o.err == nil {
			o.err = errors.New("stateslice: WithResultHandler needs a non-nil handler")
		}
		o.resultHandler = fn
	}
}
