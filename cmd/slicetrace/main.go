// Command slicetrace replays the execution trace of Table 2 in the
// State-Slice paper: a chain of two sliced one-way window joins
// (A[0,2s] |>< B and A[2s,4s] |>< B) under Cartesian-product semantics, one
// tuple arriving per second and one operator run per second.
//
// Usage:
//
//	slicetrace [-selfpurge]
//
// Without flags the trace uses pure cross-purge and matches the paper's rows
// 1-8 exactly. With -selfpurge, arriving A tuples also purge the A state
// (footnote 1 of the paper), which is the only reading that makes the
// published rows 9-10 consistent; see EXPERIMENTS.md for the discussion.
package main

import (
	"flag"
	"fmt"
	"os"

	"stateslice/internal/bench"
)

func main() {
	selfPurge := flag.Bool("selfpurge", false, "enable self-purge on A arrivals (reproduces the paper's rows 9-10)")
	flag.Parse()

	fmt.Println("Table 2: execution of the chain J1 = A[0,2s] |>< B, J2 = A[2s,4s] |>< B")
	fmt.Printf("(cartesian product; one arrival and one operator run per second; self-purge %v)\n\n", *selfPurge)
	rows, err := bench.Table2Trace(*selfPurge)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicetrace:", err)
		os.Exit(1)
	}
	fmt.Println(" T arr. OP  state-J1              queue                  state-J2         output")
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Println("\nStates and queue are printed newest-first, as in the paper.")
	if !*selfPurge {
		fmt.Println("Rows 1-8 match Table 2 verbatim; rerun with -selfpurge for the paper's rows 9-10.")
	} else {
		fmt.Println("Rows 9-10 match Table 2 verbatim; row 8 shows a3 already purged at arrival time.")
	}
}
