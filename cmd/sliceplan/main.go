// Command sliceplan explores chain layouts for a query workload: it prints
// the Mem-Opt chain (Section 5.1 of the State-Slice paper), the CPU-Opt
// chain found by Dijkstra's algorithm over the slice-merge graph
// (Section 5.2), their modelled memory and CPU costs, the online migration
// script between them (Section 5.3), and — with -explain — the compiled
// operator graphs of both chains as Build produces them.
//
// Usage:
//
//	sliceplan -windows 1,2,3,4,5,6,25,26,27,28,29,30 -rate 40 -s1 0.025 -csys 3
//	sliceplan -windows 10,20,30 -sels 1,0.5,0.5 -rate 60 -s1 0.1 -explain
//
// Windows are in seconds; -sels gives the per-query selection selectivities
// (1 = unfiltered) and defaults to all-unfiltered.
//
// With -query, the workload is a SliceQL query set instead: the text is
// compiled through the optimizer pass pipeline under -strategy, the plan
// explains itself (including the pass trace), and then runs against the
// synthetic generator:
//
//	sliceplan -strategy auto -query '
//	  q1: SELECT * FROM temps JOIN hums ON temps.loc = hums.loc WINDOW 1s;
//	  q2: SELECT * FROM temps JOIN hums ON temps.loc = hums.loc
//	      WHERE temps.value >= 0.99 WINDOW 60s;'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stateslice"
)

func main() {
	var (
		windows = flag.String("windows", "2.5,5,7.5,10,12.5,15,17.5,20,22.5,25,27.5,30", "query windows in seconds, comma-separated, ascending")
		sels    = flag.String("sels", "", "per-query selection selectivities in (0,1], comma-separated (default: all 1)")
		rate    = flag.Float64("rate", 40, "per-stream arrival rate (tuples/sec)")
		s1      = flag.Float64("s1", 0.025, "join selectivity S1")
		csys    = flag.Float64("csys", 3, "system overhead factor C_sys (comparisons per tuple per operator)")
		tupleKB = flag.Float64("tuplekb", 0.1, "tuple size Mt in KB")
		explain = flag.Bool("explain", false, "print the compiled operator graphs of both chains")

		query    = flag.String("query", "", "SliceQL query set to compile and run (replaces -windows/-sels)")
		strategy = flag.String("strategy", "auto", "build strategy for -query: auto, mem-opt, cpu-opt, pull-up, push-down, unshared")
		duration = flag.Float64("duration", 90, "run length in virtual seconds for -query")
		keys     = flag.Int64("keys", 100, "generator key domain for -query")
		seed     = flag.Int64("seed", 1, "generator seed for -query")
	)
	flag.Parse()

	if *query != "" {
		model := stateslice.CostModel{
			RateA: *rate, RateB: *rate,
			JoinSelectivity: *s1, Csys: *csys, TupleKB: *tupleKB,
		}
		runQuery(*query, *strategy, model, *rate, *duration, *keys, *seed)
		return
	}

	ws, err := parseFloats(*windows)
	check(err)
	var ss []float64
	if *sels != "" {
		ss, err = parseFloats(*sels)
		check(err)
		if len(ss) != len(ws) {
			check(fmt.Errorf("need one selectivity per window (%d windows, %d selectivities)", len(ws), len(ss)))
		}
	}
	queries := make([]stateslice.QuerySpec, len(ws))
	for i, w := range ws {
		sel := 1.0
		if ss != nil {
			sel = ss[i]
		}
		queries[i] = stateslice.QuerySpec{Window: w, Sel: sel}
	}
	params := stateslice.ChainParams{
		LambdaA: *rate, LambdaB: *rate,
		TupleKB: *tupleKB, SelJoin: *s1, Csys: *csys,
	}

	fmt.Printf("workload: %d queries, lambda=%g t/s per stream, S1=%g, Csys=%g\n\n", len(queries), *rate, *s1, *csys)

	memEnds := stateslice.MemOptEnds(queries)
	cpuRes, err := stateslice.CPUOptEnds(queries, params)
	check(err)

	memCost, err := stateslice.ChainCostOf(queries, memEnds, params)
	check(err)
	fmt.Printf("Mem-Opt chain  (%2d slices): %v\n", len(memEnds), memEnds)
	fmt.Printf("  modelled state memory: %10.1f KB   CPU: %12.0f comparisons/s\n\n", memCost.MemoryKB, memCost.CPU)

	fmt.Printf("CPU-Opt chain  (%2d slices): %v\n", len(cpuRes.Ends), cpuRes.Ends)
	fmt.Printf("  modelled state memory: %10.1f KB   CPU: %12.0f comparisons/s\n\n", cpuRes.MemoryKB, cpuRes.CPU)

	if memCost.CPU > 0 {
		fmt.Printf("CPU-Opt saves %.1f%% CPU over Mem-Opt", 100*(memCost.CPU-cpuRes.CPU)/memCost.CPU)
		if cpuRes.MemoryKB > memCost.MemoryKB {
			fmt.Printf(" at %.1f%% extra state memory", 100*(cpuRes.MemoryKB-memCost.MemoryKB)/memCost.MemoryKB)
		}
		fmt.Println(".")
	}

	steps, err := stateslice.PlanMigration(memEnds, cpuRes.Ends)
	check(err)
	if len(steps) == 0 {
		fmt.Println("The chains coincide; no migration needed.")
	} else {
		fmt.Printf("\nonline migration Mem-Opt -> CPU-Opt (%d steps):\n", len(steps))
		for _, s := range steps {
			fmt.Printf("  %s\n", s)
		}
	}

	if !*explain {
		return
	}

	// Compile both layouts into executable plans through the unified
	// Build entry point and let them explain and price themselves.
	w := stateslice.Workload{Join: stateslice.FractionMatch{S: *s1}}
	for i, q := range queries {
		var filter stateslice.Predicate
		if q.Sel < 1 {
			filter = stateslice.Threshold{S: q.Sel}
		}
		w.Queries = append(w.Queries, stateslice.Query{
			Name:   fmt.Sprintf("Q%d", i+1),
			Window: stateslice.Seconds(q.Window),
			Filter: filter,
		})
	}
	model := stateslice.CostModel{
		RateA: *rate, RateB: *rate,
		JoinSelectivity: *s1, Csys: *csys, TupleKB: *tupleKB,
	}
	fmt.Println()
	for _, s := range []stateslice.Strategy{stateslice.MemOpt, stateslice.CPUOpt} {
		p, err := stateslice.Build(w, s, stateslice.WithCostParams(model))
		check(err)
		fmt.Print(p.Explain())
		est, err := p.EstimatedCost()
		check(err)
		fmt.Printf("  estimated: %.1f KB state, %.0f comparisons/s\n\n", est.MemoryKB, est.CPU)
	}
}

// runQuery is the SliceQL path: parse -> compile through the optimizer
// pipeline -> explain -> run on the synthetic generator.
func runQuery(src, strategy string, model stateslice.CostModel, rate, duration float64, keys, seed int64) {
	s, err := stateslice.ParseStrategy(strategy)
	check(err)
	w, err := stateslice.ParseWorkload(src)
	check(err)
	p, err := stateslice.CompileQuery(src, s, stateslice.WithCostParams(model))
	check(err)
	fmt.Print(p.Explain())

	gen := stateslice.GeneratorConfig{
		RateA: rate, RateB: rate,
		Duration:  stateslice.Seconds(duration),
		KeyDomain: keys,
		Seed:      seed,
	}
	source, err := stateslice.GeneratorSource(gen)
	check(err)
	res, err := p.Run(source, stateslice.RunConfig{})
	check(err)

	fmt.Printf("\nprocessed %d tuples (%.0f virtual seconds) in %s\n",
		res.Inputs, res.VirtualDuration.ToSeconds(), res.Wall)
	for i, n := range res.SinkCounts {
		fmt.Printf("  %s: %d results\n", w.QueryName(i), n)
	}
	fmt.Printf("state memory: avg %.0f tuples, peak %d tuples\n", res.Memory.Avg, res.Memory.Max)
	fmt.Printf("CPU: %d comparisons (%d probe, %d purge)\n",
		res.Meter.Comparisons(), res.Meter.Probe, res.Meter.Purge)
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sliceplan:", err)
		os.Exit(1)
	}
}
