// Command sliceplan explores chain layouts for a query workload: it prints
// the Mem-Opt chain (Section 5.1 of the State-Slice paper), the CPU-Opt
// chain found by Dijkstra's algorithm over the slice-merge graph
// (Section 5.2), their modelled memory and CPU costs, the online migration
// script between them (Section 5.3), and — with -explain — the compiled
// operator graphs of both chains as Build produces them.
//
// Usage:
//
//	sliceplan -windows 1,2,3,4,5,6,25,26,27,28,29,30 -rate 40 -s1 0.025 -csys 3
//	sliceplan -windows 10,20,30 -sels 1,0.5,0.5 -rate 60 -s1 0.1 -explain
//
// Windows are in seconds; -sels gives the per-query selection selectivities
// (1 = unfiltered) and defaults to all-unfiltered.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stateslice"
)

func main() {
	var (
		windows = flag.String("windows", "2.5,5,7.5,10,12.5,15,17.5,20,22.5,25,27.5,30", "query windows in seconds, comma-separated, ascending")
		sels    = flag.String("sels", "", "per-query selection selectivities in (0,1], comma-separated (default: all 1)")
		rate    = flag.Float64("rate", 40, "per-stream arrival rate (tuples/sec)")
		s1      = flag.Float64("s1", 0.025, "join selectivity S1")
		csys    = flag.Float64("csys", 3, "system overhead factor C_sys (comparisons per tuple per operator)")
		tupleKB = flag.Float64("tuplekb", 0.1, "tuple size Mt in KB")
		explain = flag.Bool("explain", false, "print the compiled operator graphs of both chains")
	)
	flag.Parse()

	ws, err := parseFloats(*windows)
	check(err)
	var ss []float64
	if *sels != "" {
		ss, err = parseFloats(*sels)
		check(err)
		if len(ss) != len(ws) {
			check(fmt.Errorf("need one selectivity per window (%d windows, %d selectivities)", len(ws), len(ss)))
		}
	}
	queries := make([]stateslice.QuerySpec, len(ws))
	for i, w := range ws {
		sel := 1.0
		if ss != nil {
			sel = ss[i]
		}
		queries[i] = stateslice.QuerySpec{Window: w, Sel: sel}
	}
	params := stateslice.ChainParams{
		LambdaA: *rate, LambdaB: *rate,
		TupleKB: *tupleKB, SelJoin: *s1, Csys: *csys,
	}

	fmt.Printf("workload: %d queries, lambda=%g t/s per stream, S1=%g, Csys=%g\n\n", len(queries), *rate, *s1, *csys)

	memEnds := stateslice.MemOptEnds(queries)
	cpuRes, err := stateslice.CPUOptEnds(queries, params)
	check(err)

	memCost, err := stateslice.ChainCostOf(queries, memEnds, params)
	check(err)
	fmt.Printf("Mem-Opt chain  (%2d slices): %v\n", len(memEnds), memEnds)
	fmt.Printf("  modelled state memory: %10.1f KB   CPU: %12.0f comparisons/s\n\n", memCost.MemoryKB, memCost.CPU)

	fmt.Printf("CPU-Opt chain  (%2d slices): %v\n", len(cpuRes.Ends), cpuRes.Ends)
	fmt.Printf("  modelled state memory: %10.1f KB   CPU: %12.0f comparisons/s\n\n", cpuRes.MemoryKB, cpuRes.CPU)

	if memCost.CPU > 0 {
		fmt.Printf("CPU-Opt saves %.1f%% CPU over Mem-Opt", 100*(memCost.CPU-cpuRes.CPU)/memCost.CPU)
		if cpuRes.MemoryKB > memCost.MemoryKB {
			fmt.Printf(" at %.1f%% extra state memory", 100*(cpuRes.MemoryKB-memCost.MemoryKB)/memCost.MemoryKB)
		}
		fmt.Println(".")
	}

	steps, err := stateslice.PlanMigration(memEnds, cpuRes.Ends)
	check(err)
	if len(steps) == 0 {
		fmt.Println("The chains coincide; no migration needed.")
	} else {
		fmt.Printf("\nonline migration Mem-Opt -> CPU-Opt (%d steps):\n", len(steps))
		for _, s := range steps {
			fmt.Printf("  %s\n", s)
		}
	}

	if !*explain {
		return
	}

	// Compile both layouts into executable plans through the unified
	// Build entry point and let them explain and price themselves.
	w := stateslice.Workload{Join: stateslice.FractionMatch{S: *s1}}
	for i, q := range queries {
		var filter stateslice.Predicate
		if q.Sel < 1 {
			filter = stateslice.Threshold{S: q.Sel}
		}
		w.Queries = append(w.Queries, stateslice.Query{
			Name:   fmt.Sprintf("Q%d", i+1),
			Window: stateslice.Seconds(q.Window),
			Filter: filter,
		})
	}
	model := stateslice.CostModel{
		RateA: *rate, RateB: *rate,
		JoinSelectivity: *s1, Csys: *csys, TupleKB: *tupleKB,
	}
	fmt.Println()
	for _, s := range []stateslice.Strategy{stateslice.MemOpt, stateslice.CPUOpt} {
		p, err := stateslice.Build(w, s, stateslice.WithCostParams(model))
		check(err)
		fmt.Print(p.Explain())
		est, err := p.EstimatedCost()
		check(err)
		fmt.Printf("  estimated: %.1f KB state, %.0f comparisons/s\n\n", est.MemoryKB, est.CPU)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sliceplan:", err)
		os.Exit(1)
	}
}
