// Command slicebench regenerates the tables and figures of the State-Slice
// paper's evaluation (Section 7) as tab-separated series on stdout.
//
// Usage:
//
//	slicebench -exp fig17            # memory comparison, 6 panels
//	slicebench -exp fig18            # service rate comparison, 6 panels
//	slicebench -exp fig19            # Mem-Opt vs CPU-Opt, 5 panels
//	slicebench -exp fig11 -grid 9    # analytic savings surfaces
//	slicebench -exp table2           # chain execution trace
//	slicebench -exp plans            # compiled plans of every strategy
//	slicebench -exp all
//	slicebench -json report.json     # machine-readable perf report
//
// The -json flag runs the tracked performance suite — the Section 7.3 chain
// workload through the sequential engine at several micro-batch sizes and
// through the concurrent pipeline, plus the workload's equijoin twin through
// the engine, the pipeline and the key-range sharded executor at the -shards
// sweep, plus its band-join twin (|A.Key - B.Key| <= -band) through the
// band-partitioned sharded executor at the same sweep, plus the admission
// suite (per-Attach barrier latency and the steady-state rate of a chain
// that admitted its queries live against the same chain built whole) — and
// writes a JSON
// report (service rate, comparison counts, allocs per input tuple, state
// memory, GOMAXPROCS for cross-host comparability) to the given path ("-"
// for stdout). Committed snapshots live in
// BENCH_<pr>.json files at the repository root and track the perf trajectory
// across PRs. -cpuprofile wraps any run in a CPU profile.
//
// The measured experiments (fig17-19) run the full 90-virtual-second
// workloads of the paper by default; -duration scales them down. Service
// rate is reported twice: the paper's hardware-independent comparison-count
// metric (tuples per million comparisons) and the wall-clock rate on this
// machine. Shapes — who wins, by what factor, where the curves cross — are
// the reproduction target; see EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"stateslice"
	"stateslice/internal/bench"
	"stateslice/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig11, fig17, fig18, fig19, table2, plans, all")
		duration   = flag.Float64("duration", workload.DurationSeconds, "virtual run length in seconds")
		seed       = flag.Int64("seed", 2006, "generator seed")
		grid       = flag.Int("grid", 9, "grid resolution for fig11 surfaces")
		rateList   = flag.String("rates", "20,40,60,80", "input rates to sweep (tuples/sec)")
		jsonOut    = flag.String("json", "", "write the machine-readable perf report to this path (\"-\" for stdout) and exit")
		reps       = flag.Int("reps", 3, "repetitions per perf variant for -json (best wall clock wins)")
		shardList  = flag.String("shards", "1,2,4,8", "shard counts for the -json equijoin sweep (empty disables the sharded suite)")
		workerList = flag.String("workers", "0", "assembly-worker counts crossed with every shard count in the -json sweep (0 = the automatic default)")
		bandWidth  = flag.Int64("band", 1, "band width B of the -json band-join suite (|A.Key - B.Key| <= B; negative disables the suite)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		// check exits through stopProfile, so an error mid-run still
		// flushes a usable profile.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer func() {
			stopProfile()
			stopProfile = nil
		}()
	}

	if *jsonOut != "" {
		shards, err := parseShards(*shardList)
		check(err)
		workers, err := parseWorkers(*workerList)
		check(err)
		if *bandWidth == 0 {
			// PerfConfig treats 0 as "use the tracked default", so an
			// explicit -band 0 would silently measure B=1. B=0 is the
			// equijoin degenerate, which the equijoin suite already
			// measures with the cheaper hash partitioner.
			check(fmt.Errorf("-band 0 is the equijoin degenerate (measured by the sharded suite); use a positive width, or -band -1 to disable the band suite"))
		}
		check(perfJSON(*jsonOut, *duration, *seed, *reps, shards, workers, *bandWidth))
		return
	}

	rates, err := parseRates(*rateList)
	check(err)

	run := map[string]func(){
		"table2": func() { table2() },
		"fig11":  func() { fig11(*grid) },
		"fig17":  func() { fig17(rates, *duration, *seed) },
		"fig18":  func() { fig18(rates, *duration, *seed) },
		"fig19":  func() { fig19(rates, *duration, *seed) },
		"plans":  func() { plans(rates[0]) },
	}
	if *exp == "all" {
		for _, name := range []string{"table2", "fig11", "fig17", "fig18", "fig19", "plans"} {
			run[name]()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		check(fmt.Errorf("unknown experiment %q", *exp))
	}
	f()
}

func table2() {
	fmt.Println("== Table 2: chain execution trace (see also cmd/slicetrace) ==")
	rows, err := bench.Table2Trace(false)
	check(err)
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Println()
}

func fig11(grid int) {
	fmt.Println("== Figure 11: analytic savings of state-slice sharing, Eq. (4) ==")
	fmt.Println("series\trho\tssigma\tsaving_pct")
	for name, pts := range bench.Fig11Series(grid) {
		for _, pt := range pts {
			fmt.Printf("%s\t%.3f\t%.3f\t%.2f\n", name, pt.Rho, pt.SSigma, pt.Value)
		}
	}
	fmt.Println()
}

func fig17(rates []float64, dur float64, seed int64) {
	fmt.Println("== Figure 17: state memory (avg tuples in join states) vs input rate ==")
	fmt.Println("panel\tdist\ts1\tssigma\trate\tpullup\tstateslice\tpushdown")
	for _, p := range bench.Fig17Panels() {
		pts, err := bench.RunPanel(p, rates, dur, seed)
		check(err)
		for _, pt := range pts {
			fmt.Printf("%s\t%s\t%g\t%g\t%g\t%.0f\t%.0f\t%.0f\n",
				p.Label, p.Dist, p.S1, p.SSigma, pt.Rate,
				pt.By[bench.PullUp].AvgStateTuples,
				pt.By[bench.StateSlice].AvgStateTuples,
				pt.By[bench.PushDown].AvgStateTuples)
		}
	}
	fmt.Println()
}

func fig18(rates []float64, dur float64, seed int64) {
	fmt.Println("== Figure 18: service rate vs input rate ==")
	fmt.Println("(comp = tuples per million comparisons, the paper's CPU metric; wall = tuples/sec on this host)")
	fmt.Println("panel\tdist\ts1\tssigma\trate\tpullup_comp\tstateslice_comp\tpushdown_comp\tpullup_wall\tstateslice_wall\tpushdown_wall")
	for _, p := range bench.Fig18Panels() {
		pts, err := bench.RunPanel(p, rates, dur, seed)
		check(err)
		for _, pt := range pts {
			fmt.Printf("%s\t%s\t%g\t%g\t%g\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
				p.Label, p.Dist, p.S1, p.SSigma, pt.Rate,
				pt.By[bench.PullUp].CompRate,
				pt.By[bench.StateSlice].CompRate,
				pt.By[bench.PushDown].CompRate,
				pt.By[bench.PullUp].ServiceRate,
				pt.By[bench.StateSlice].ServiceRate,
				pt.By[bench.PushDown].ServiceRate)
		}
	}
	fmt.Println()
}

func fig19(rates []float64, dur float64, seed int64) {
	fmt.Println("== Figure 19: Mem-Opt vs CPU-Opt chain service rate ==")
	fmt.Println("(comp metric weighted with Csys=3 per-invocation overhead, matching what CPU-Opt optimizes; wall = tuples/sec)")
	fmt.Println("panel\tdist\tqueries\trate\tslices_mem\tslices_cpu\tmemopt_comp\tcpuopt_comp\tmemopt_wall\tcpuopt_wall")
	for _, p := range bench.Fig19Panels() {
		pts, err := runFig19(p, rates, dur, seed)
		check(err)
		for _, pt := range pts {
			fmt.Printf("%s\t%s\t%d\t%g\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				p.Label, p.Dist, p.Queries, pt.Rate,
				pt.Slices[bench.MemOpt], pt.Slices[bench.CPUOpt],
				pt.By[bench.MemOpt].CompRate, pt.By[bench.CPUOpt].CompRate,
				pt.By[bench.MemOpt].ServiceRate, pt.By[bench.CPUOpt].ServiceRate)
		}
	}
	fmt.Println()
}

// plans compiles the Table 3 uniform workload under every sharing strategy
// through the unified Build entry point and prints each plan's operator
// graph and modelled cost — the qualitative companion to the measured
// figures.
func plans(rate float64) {
	fmt.Println("== Compiled plans: Table 3 uniform workload under every strategy ==")
	w, err := workload.ThreeQueries(workload.Uniform, 0.5, 0.1)
	check(err)
	model := stateslice.CostModel{
		RateA: rate, RateB: rate,
		JoinSelectivity: 0.1,
		Csys:            stateslice.DefaultCsys,
		TupleKB:         stateslice.DefaultTupleKB,
	}
	for _, s := range stateslice.Strategies() {
		p, err := stateslice.Build(w, s, stateslice.WithCostParams(model))
		check(err)
		fmt.Print(p.Explain())
		if est, err := p.EstimatedCost(); err == nil {
			fmt.Printf("  modelled: %.1f KB state, %.0f comparisons/s\n", est.MemoryKB, est.CPU)
		}
		fmt.Println()
	}
}

// runFig19 sweeps one panel with the overhead-weighted metric.
func runFig19(p bench.Fig19Panel, rates []float64, dur float64, seed int64) ([]bench.Fig19Point, error) {
	w, err := workload.NQueries(p.Dist, p.Queries, 0.025)
	if err != nil {
		return nil, err
	}
	var out []bench.Fig19Point
	for _, rate := range rates {
		rc := bench.RunConfig{
			Rate: rate, DurationSec: dur, Seed: seed,
			MetricCsys: bench.DefaultCsys,
		}
		m, slices, err := bench.RunChainVariants(w, rc, 4)
		if err != nil {
			return nil, err
		}
		out = append(out, bench.Fig19Point{Rate: rate, By: m, Slices: slices})
	}
	return out, nil
}

// perfJSON runs the tracked perf suite and writes the JSON report.
func perfJSON(path string, duration float64, seed int64, reps int, shards, workers []int, band int64) error {
	rep, err := bench.RunPerf(bench.PerfConfig{
		DurationSec: duration,
		Seed:        seed,
		Reps:        reps,
		Shards:      shards,
		Workers:     workers,
		BandWidth:   band,
	})
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// parseShards parses the -shards list; an empty string yields an empty
// (suite-disabling) slice rather than RunPerf's default sweep.
func parseShards(s string) ([]int, error) {
	out := []int{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad shard count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseWorkers parses the -workers list; 0 entries select the automatic
// assembly-worker default.
func parseWorkers(s string) ([]int, error) {
	var out []int
	if strings.TrimSpace(s) == "" {
		return []int{0}, nil
	}
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad worker count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// stopProfile flushes the -cpuprofile output; check invokes it before
// exiting because os.Exit skips deferred calls.
var stopProfile func()

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicebench:", err)
		if stopProfile != nil {
			stopProfile()
		}
		os.Exit(1)
	}
}
