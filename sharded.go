package stateslice

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"stateslice/internal/optimizer"
	"stateslice/internal/plan"
	"stateslice/internal/shard"
	"stateslice/internal/stream"
)

// This file implements the WithShards execution path: the plan is compiled
// into p independent replicas of the full state-slice chain, the input is
// partitioned by the join key — hashed for key-partitionable joins,
// contiguous owner ranges with boundary replication for band joins
// (WithKeyRange) — each replica runs on the batched sequential engine on
// its own goroutine, and order-preserving merges reassemble the global
// output order (internal/shard).

// buildSharded assembles the sharded Plan of WithShards.
func buildSharded(w Workload, s Strategy, o buildOptions, model CostModel, lg *optimizer.Logical) (Plan, error) {
	if !s.sliced() {
		return nil, fmt.Errorf("stateslice: WithShards replicates a state-slice chain and applies to the chain strategies only, not %s", s)
	}
	if o.hashProbing {
		return nil, errors.New("stateslice: WithShards cannot be combined with WithHashProbing: state-slice chains use sliced joins, which are always nested-loop")
	}
	// Partitioning eligibility: key-partitionable joins hash-partition (the
	// cheaper scheme, no replication); band-partitionable joins range-
	// partition with boundary replication, which needs the key domain from
	// WithKeyRange. Anything else cannot be sharded losslessly.
	var band *shard.Band
	switch width, bandOK := stream.PartitionableByBand(w.Join); {
	case stream.PartitionableByKey(w.Join):
		if o.keyRangeSet {
			return nil, fmt.Errorf("stateslice: WithKeyRange parameterizes band partitioning, but the key-partitionable join %q is hash-partitioned and ignores the key domain; drop the option (or use a band predicate such as BandJoin)", w.Join)
		}
	case bandOK:
		if !o.keyRangeSet {
			return nil, fmt.Errorf("stateslice: the band-partitionable join %q needs WithKeyRange(min, max) so WithShards can split the key domain into contiguous owner ranges", w.Join)
		}
		band = &shard.Band{Width: width, MinKey: o.keyMin, MaxKey: o.keyMax}
		if err := band.Validate(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("stateslice: WithShards partitions by the join key and requires a key-partitionable or band-partitionable join predicate, got %q (a matching pair could be split across shards and lost)", w.Join)
	}
	cfg := chainConfig(s, o, lg)
	// The cross-shard merge sinks collect and stream results; replica
	// sinks only relay.
	cfg.Collect = false
	// Compile one probe replica now so configuration errors surface at
	// Build time, and to learn the chain's boundary layout.
	probe, err := plan.BuildStateSlice(w, cfg)
	if err != nil {
		return nil, err
	}
	name := o.name
	if name == "" {
		name = fmt.Sprintf("state-slice(%s,shards=%d)", s, o.shards)
	}
	cfg.Name = name
	// Eligible chains take the slice-merge fast path: each slice's result
	// stream crosses goroutines once instead of once per subscribing
	// query. It requires query-agnostic slice streams (unfiltered, every
	// distinct window a slice boundary — CPU-Opt merged slices route
	// results and are ineligible) and a fixed layout (not migratable).
	cfg.RawSliceResults = plan.RawSliceEligible(w, probe.Ends(), o.migratable)
	if cfg.RawSliceResults {
		// Defense in depth: the executor's slice-merge windows must align
		// with the chain's boundaries. RawSliceEligible implies this, but
		// running the executor-side check here means a drifted eligibility
		// rule fails at Build time, not when NewSession wires goroutines.
		if err := shard.ValidateSliceMergeWindows(probe.Ends(), queryWindows(w)); err != nil {
			return nil, err
		}
	}
	sp := &shardedPlan{
		name:       name,
		strategy:   s,
		w:          w,
		cfg:        cfg,
		model:      model,
		shards:     o.shards,
		workers:    o.assemblyWorkers,
		batchSize:  o.batchSize,
		band:       band,
		migratable: o.migratable,
		collect:    o.collect,
		sinks:      o.sinks,
		handler:    o.resultHandler,
		ctx:        o.ctx,
		recovery:   o.recovery,
		rebalance:  o.rebalance,
		initEnds:   probe.Ends(),
		initSlots:  initialSlots(w),
		trace:      lg.Trace,
	}
	if o.restore != nil {
		// The restored layout and roster replace the probe's: sessions
		// continue the snapshot's chain shape, not the founding one. A
		// restore/band mismatch is caught again by the executor; checking
		// the snapshot's replica layout here keeps the failure at Build.
		sp.restore = o.restore.shard
		rep0 := sp.restore.Replicas[0]
		sp.initEnds = endsToTimes(rep0.Ends())
		sp.initSlots = restoredSlots(w, rep0)
	}
	sp.ends = append([]Time(nil), sp.initEnds...)
	sp.slots = append([]plan.QuerySlot(nil), sp.initSlots...)
	return sp, nil
}

// endsToTimes converts stream.Time boundaries to the public alias slice.
func endsToTimes(ends []stream.Time) []Time {
	out := make([]Time, len(ends))
	for i, e := range ends {
		out[i] = e
	}
	return out
}

// restoredSlots reconstructs the Explain roster from a replica snapshot:
// founding slots keep their workload queries (predicates included), slots
// admitted mid-stream are re-synthesized from the snapshot, and dead slots
// stay marked detached.
func restoredSlots(w Workload, cp *plan.ChainCheckpoint) []plan.QuerySlot {
	slots := make([]plan.QuerySlot, 0, len(cp.Slots))
	for i, sl := range cp.Slots {
		q := Query{Name: sl.Name, Window: sl.Window}
		if i < len(w.Queries) {
			q = w.Queries[i]
		}
		slots = append(slots, plan.QuerySlot{Query: q, Live: sl.Live})
	}
	return slots
}

// initialSlots builds the query roster of a fresh plan or session: the
// build-time workload, every slot live.
func initialSlots(w Workload) []plan.QuerySlot {
	slots := make([]plan.QuerySlot, len(w.Queries))
	for i, q := range w.Queries {
		slots[i] = plan.QuerySlot{Query: q, Live: true}
	}
	return slots
}

// queryWindows lists the workload's query windows in query order.
func queryWindows(w Workload) []Time {
	windows := make([]Time, len(w.Queries))
	for i, q := range w.Queries {
		windows[i] = q.Window
	}
	return windows
}

// shardedPlan executes the chain as key-partitioned replicas (hash or band
// range) with an order-preserving merge. Like every Plan it is
// single-driver: Run, NewSession and Migrate are called from one goroutine.
type shardedPlan struct {
	name       string
	strategy   Strategy
	w          Workload
	cfg        plan.StateSliceConfig // replica configuration
	model      CostModel
	shards     int
	workers    int // assembly workers (0 = auto)
	batchSize  int
	band       *shard.Band // nil = hash partitioning
	migratable bool
	collect    bool
	sinks      map[int]Sink
	handler    func(QueryID, *Tuple) // WithResultHandler
	ctx        context.Context       // WithContext bound for runs and sessions
	recovery   *Restart              // WithRecovery: supervised replica restart
	rebalance  *Rebalance            // WithRebalance: automatic load-adaptive rebalancing
	restore    *shard.Checkpoint     // WithRestore: seed replicas from a snapshot

	initEnds  []Time
	initSlots []plan.QuerySlot // roster a fresh session starts from
	ends      []Time           // current layout (updated by Migrate and admission)
	// slots is the query roster the latest session has admitted — built-in
	// and attached queries, detached ones marked dead — mirroring the
	// replicas' plan.QuerySlots so Explain renders the live set without
	// crossing into executor goroutines.
	slots []plan.QuerySlot
	sess  *shardSession    // latest session, the migration and admission target
	trace []optimizer.Note // the pass pipeline's decision record
}

func (p *shardedPlan) sealed() {}

// Name implements Plan.
func (p *shardedPlan) Name() string { return p.name }

// Strategy implements Plan.
func (p *shardedPlan) Strategy() Strategy { return p.strategy }

// Ends implements Plan. Every replica carries the same boundary layout;
// Migrate keeps this copy current.
func (p *shardedPlan) Ends() []Time { return append([]Time(nil), p.ends...) }

// executor assembles a fresh executor over fresh replicas.
func (p *shardedPlan) executor(cfg RunConfig) (*shard.Executor, error) {
	if cfg.Series || cfg.WarmupFraction > 0 {
		return nil, errors.New("stateslice: sharded plans aggregate per-replica memory monitors and do not support RunConfig.Series or WarmupFraction; run without WithShards for per-arrival memory series")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = p.batchSize
	}
	var onResult func(int, *Tuple)
	if p.handler != nil || len(p.sinks) > 0 {
		handler, sinks := p.handler, p.sinks
		onResult = func(qi int, t *Tuple) {
			if handler != nil {
				handler(QueryID(qi), t)
			}
			if s, ok := sinks[qi]; ok {
				s.Emit(t)
			}
		}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = p.ctx
	}
	w, rcfg := p.w, p.cfg
	scfg := shard.Config{
		Shards:          p.shards,
		AssemblyWorkers: p.workers,
		BatchSize:       cfg.BatchSize,
		SampleEvery:     cfg.SampleEvery,
		Band:            p.band,
		Collect:         p.collect,
		OnResult:        onResult,
		Ctx:             ctx,
		SliceMerge:      rcfg.RawSliceResults,
		Name:            p.name,
	}
	if scfg.SliceMerge {
		scfg.Windows = queryWindows(w)
	}
	// The restore closure keeps workload knowledge (predicates, roles) out
	// of the shard package: the executor hands back the raw per-replica
	// snapshot and this plan rebuilds the chain around it. It serves
	// WithRestore seeding, supervised mid-run restarts and rebalance
	// rebuilds; Session.Rebalance works on demand without any option, so
	// the closure is wired unconditionally.
	scfg.Recovery = p.recovery
	scfg.Restore = p.restore
	if p.rebalance != nil {
		scfg.Rebalance = &shard.RebalancePolicy{
			Threshold:  p.rebalance.Threshold,
			CheckEvery: p.rebalance.CheckEvery,
			Sustained:  p.rebalance.Sustained,
			MinGain:    p.rebalance.MinGain,
		}
	}
	scfg.RestoreFn = func(_ int, cp *plan.ChainCheckpoint) (*plan.StateSlicePlan, error) {
		return plan.RestoreStateSlice(w, rcfg, cp)
	}
	return shard.New(scfg, func(int) (*plan.StateSlicePlan, error) {
		return plan.BuildStateSlice(w, rcfg)
	})
}

// Run implements Plan.
func (p *shardedPlan) Run(src Source, cfg RunConfig) (*Result, error) {
	e, err := p.executor(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(src)
}

// NewSession implements Plan. The session runs fresh replicas with the
// build's original slice layout; it becomes the target of Migrate.
func (p *shardedPlan) NewSession(cfg RunConfig) (Session, error) {
	e, err := p.executor(cfg)
	if err != nil {
		return nil, err
	}
	p.ends = append([]Time(nil), p.initEnds...)
	p.slots = append([]plan.QuerySlot(nil), p.initSlots...)
	p.sess = &shardSession{e: e, p: p}
	return p.sess, nil
}

// Migrate implements Plan: the re-slicing fans out to every replica at the
// current stream position — all tuples fed so far are processed first, no
// later tuple overtakes the migration on any shard.
func (p *shardedPlan) Migrate(to []Time) error {
	if !p.migratable {
		return fmt.Errorf("stateslice: build the chain with WithMigratable to migrate it: %w", ErrNotMigratable)
	}
	if p.sess == nil {
		return fmt.Errorf("stateslice: Migrate needs a session from NewSession first: %w", ErrNoSession)
	}
	ends, err := p.sess.e.Migrate(to)
	if err != nil {
		return err
	}
	p.ends = ends
	return nil
}

// EstimatedCost implements Plan. The analytic model prices the chain's
// aggregate shape: partitioning splits the same window states across
// replicas, so the state memory estimate carries over, while the
// comparison estimate is an upper bound under sharding (each replica
// probes only its own key range).
func (p *shardedPlan) EstimatedCost() (Cost, error) {
	return estimateCost(p.strategy, p.w, p.ends, p.model)
}

// Explain implements Plan.
func (p *shardedPlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q  strategy=%s  shards=%d\n", p.name, p.strategy, p.shards)
	explainSlots(&b, p.slots)
	start := Time(0)
	b.WriteString("  chain:")
	for _, e := range p.ends {
		fmt.Fprintf(&b, " (%s,%s]", fmtTime(start), fmtTime(e))
		start = e
	}
	if p.migratable {
		b.WriteString("  (migratable)")
	}
	b.WriteString("\n")
	// The hash partitioner mixes keys through splitmix64 before the
	// modulo — not a plain `hash(Key) mod p` on the raw key value — so
	// clustered or consecutive key *values* still spread across shards.
	// Per-key frequency skew is irreducible either way: one key's whole
	// state lives on one shard (see internal/shard.Partitioner). Band
	// plans use contiguous owner ranges instead, which do not mix values
	// at all — the Explain line names the scheme so the skew caveats of
	// each are attributable.
	part := fmt.Sprintf("splitmix64(Key) mod %d", p.shards)
	if p.band != nil {
		part = fmt.Sprintf("range(Key in [%d,%d]) into %d owner ranges, replicated within band %d of a boundary, owner-suppressed duplicates",
			p.band.MinKey, p.band.MaxKey, p.shards, p.band.Width)
	}
	if p.cfg.RawSliceResults {
		fmt.Fprintf(&b, "  executor: %s -> %d chain replicas (one engine goroutine each) -> %d per-slice merges + per-query assembly on %s workers\n",
			part, p.shards, len(p.ends), workersLabel(p.workers))
	} else {
		fmt.Fprintf(&b, "  executor: %s -> %d chain replicas (one engine goroutine each) -> %d order-preserving per-query mergers on %s workers\n",
			part, p.shards, len(p.slots), workersLabel(p.workers))
	}
	if p.sess != nil {
		// A live session carries the current (possibly rebalanced)
		// ownership cuts and the observed load shares; render them so
		// Explain shows what the static partitioning line above cannot —
		// where the keys actually went.
		b.WriteString("  ownership (live):\n")
		for _, os := range p.sess.e.Ownership() {
			fmt.Fprintf(&b, "    shard %d: %s  share %.1f%%\n", os.Shard, os.Range, 100*os.Share)
		}
	}
	writeTrace(&b, p.trace)
	return b.String()
}

// workersLabel renders the assembly-worker setting for Explain output; the
// automatic default resolves against GOMAXPROCS when the executor starts.
func workersLabel(n int) string {
	if n == 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", n)
}

// shardSession adapts the shard executor to the Session interface. Errors
// detected inside replicas surface on the next Feed, Consume or Migrate
// call; Finish returns the statistics of whatever completed and carries the
// first replica or driver error on Result.Err, since the Session interface
// has no error return there — a failed replica is never silently dropped.
type shardSession struct {
	e *shard.Executor
	p *shardedPlan
}

// Feed implements Session.
func (s *shardSession) Feed(t *Tuple) error { return s.e.Feed(t) }

// Consume implements Session.
func (s *shardSession) Consume(src Source) error { return s.e.Consume(src) }

// Drain implements Session.
func (s *shardSession) Drain() { s.e.Drain() }

// Attach implements Session: the admission fans out to every replica at the
// current stream position — all tuples fed so far are processed on every
// shard before the query subscribes, so no shard's suffix starts early.
func (s *shardSession) Attach(q Query) (QueryID, error) {
	if !s.p.migratable {
		return 0, fmt.Errorf("stateslice: build the chain with WithMigratable to attach or detach queries (admission reuses the migration wiring): %w", ErrNotMigratable)
	}
	qi, ends, err := s.e.Attach(q)
	if err != nil {
		return 0, err
	}
	s.p.slots = append(s.p.slots, plan.QuerySlot{Query: q, Live: true})
	s.p.ends = ends
	return QueryID(qi), nil
}

// Detach implements Session: every replica unsubscribes the query and
// garbage-collects subscriber-less trailing slices; the plan's recorded
// layout shrinks with them.
func (s *shardSession) Detach(id QueryID) error {
	if !s.p.migratable {
		return fmt.Errorf("stateslice: build the chain with WithMigratable to attach or detach queries (admission reuses the migration wiring): %w", ErrNotMigratable)
	}
	ends, err := s.e.Detach(int(id))
	if err != nil {
		return err
	}
	s.p.slots[id].Live = false
	s.p.ends = ends
	return nil
}

// Checkpoint implements Session: one barrier freezes every replica at the
// same stream position, each snapshots its chain, and the driver composes
// them with the partitioning metadata into one restorable unit.
func (s *shardSession) Checkpoint(ctx context.Context) (*Checkpoint, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	cp, err := s.e.Checkpoint()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{shard: cp}, nil
}

// Rebalance implements Session: one barrier snapshots every replica at the
// same stream position, the snapshot is redistributed under equi-depth cuts
// learned from the observed key distribution, and each replica rebuilds its
// chain from its new share before feeding resumes.
func (s *shardSession) Rebalance(ctx context.Context) (bool, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	return s.e.Rebalance()
}

// Finish implements Session. A replica failure — which also surfaces on
// Feed/Consume/Migrate as soon as it is published — is returned on
// Result.Err rather than discarded.
func (s *shardSession) Finish() *Result {
	res, err := s.e.Finish()
	res.Err = err
	return res
}

// Close implements Session: it cancels the executor's run context and waits
// — bounded by ctx — for every replica, merge and assembly goroutine to
// unwind through the ordered teardown Finish uses, even when the abort lands
// mid-Migrate or mid-Attach barrier. Unlike the other session methods, Close
// may be called from any goroutine, including concurrently with a Feed or
// Consume in progress (which it unblocks).
func (s *shardSession) Close(ctx context.Context) error { return s.e.Close(ctx) }
