package stateslice_test

// Checkpoint/restore suite: a barrier-consistent snapshot taken at feed k
// and restored into a fresh plan must continue the run exactly — the
// restored session's output concatenated onto the pre-checkpoint output is
// byte-identical to an uninterrupted run — for sequential chains, sharded
// executors on both merge topologies, band partitioning, and rosters with
// queries admitted mid-stream. The blob codec round-trips both forms and
// every shape mismatch fails loudly at Build or session creation.

import (
	"context"
	"testing"

	"stateslice"
)

// splitConsume drives a session over input[:k], checkpoints, then finishes,
// returning the checkpoint and the prefix results.
func splitConsume(t *testing.T, p stateslice.Plan, input []*stateslice.Tuple, k int) (*stateslice.Checkpoint, *stateslice.Result) {
	t.Helper()
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:k])); err != nil {
		t.Fatal(err)
	}
	cp, err := sess.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res := sess.Finish()
	if res.Err != nil {
		t.Fatalf("prefix session failed: %v", res.Err)
	}
	sess.Close(context.Background())
	return cp, res
}

// resumeConsume builds a restored plan with the extra options and drives it
// over the remaining input, returning its results.
func resumeConsume(t *testing.T, w stateslice.Workload, cp *stateslice.Checkpoint, input []*stateslice.Tuple, k int, opts ...stateslice.Option) *stateslice.Result {
	t.Helper()
	opts = append([]stateslice.Option{stateslice.WithCollect(), stateslice.WithRestore(cp)}, opts...)
	p, err := stateslice.Build(w, stateslice.MemOpt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[k:])); err != nil {
		t.Fatal(err)
	}
	res := sess.Finish()
	if res.Err != nil {
		t.Fatalf("restored session failed: %v", res.Err)
	}
	sess.Close(context.Background())
	return res
}

// concatResults appends b's per-query sequences onto a's.
func concatResults(a, b [][]*stateslice.Tuple) [][]*stateslice.Tuple {
	if len(a) != len(b) {
		return nil
	}
	out := make([][]*stateslice.Tuple, len(a))
	for i := range a {
		out[i] = append(append([]*stateslice.Tuple{}, a[i]...), b[i]...)
	}
	return out
}

// TestCheckpointRestoreSequential checkpoints a sequential chain session
// mid-stream, restores it into a fresh plan, and asserts prefix + resumed
// output is byte-identical to the uninterrupted run — for the Mem-Opt
// layout, a filtered workload, and the blob round-trip in between.
func TestCheckpointRestoreSequential(t *testing.T) {
	w := equijoinWorkload() // Q2 carries a filter: predicates must survive restore pairing
	input := keyedInput(t)
	k := len(input) / 2
	want := sequentialReference(t, w, input)

	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	cp, prefix := splitConsume(t, p, input, k)
	if cp.Sharded() || cp.Shards() != 1 {
		t.Fatalf("sequential checkpoint claims sharded form (shards=%d)", cp.Shards())
	}
	if cp.Fed() != k {
		t.Fatalf("checkpoint Fed = %d, want %d", cp.Fed(), k)
	}
	if cp.StateTuples() == 0 {
		t.Fatal("mid-stream checkpoint holds no window state; the restore check is vacuous")
	}

	// Round-trip through the blob codec before restoring: the resumed run
	// exercises the decoded checkpoint, not the in-memory one.
	blob, err := cp.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := stateslice.DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := decoded.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("checkpoint blob does not round-trip byte-identically")
	}

	resumed := resumeConsume(t, w, decoded, input, k)
	if got := renderResults(concatResults(prefix.Results, resumed.Results)); got != want {
		t.Error("prefix + restored output differs from the uninterrupted run")
	}
}

// TestCheckpointSessionContinues asserts a checkpoint is a pure snapshot:
// the session it was taken from keeps running and still produces the full
// uninterrupted output.
func TestCheckpointSessionContinues(t *testing.T) {
	w := equijoinWorkload()
	input := keyedInput(t)
	want := sequentialReference(t, w, input)
	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[len(input)/2:])); err != nil {
		t.Fatal(err)
	}
	res := sess.Finish()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := renderResults(res.Results); got != want {
		t.Error("a mid-stream checkpoint perturbed the session's own output")
	}
}

// TestCheckpointRestoreSharded runs the restore equivalence across the
// sharded matrix — (p ∈ {1,4}) × (query-merge, slice-merge) × (equijoin,
// band) — through the composite blob codec.
func TestCheckpointRestoreSharded(t *testing.T) {
	input := chaosInput(t)
	for _, tc := range recoverMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			want := sequentialReference(t, tc.w, input)
			k := len(input) / 2
			opts := append([]stateslice.Option{stateslice.WithCollect()}, tc.opts...)
			p, err := stateslice.Build(tc.w, stateslice.MemOpt, opts...)
			if err != nil {
				t.Fatal(err)
			}
			cp, prefix := splitConsume(t, p, input, k)
			if !cp.Sharded() {
				t.Fatal("sharded checkpoint claims sequential form")
			}
			if cp.Fed() != k {
				t.Fatalf("checkpoint Fed = %d, want %d", cp.Fed(), k)
			}
			blob, err := cp.Bytes()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := stateslice.DecodeCheckpoint(blob)
			if err != nil {
				t.Fatal(err)
			}
			resumed := resumeConsume(t, tc.w, decoded, input, k, tc.opts...)
			if got := renderResults(concatResults(prefix.Results, resumed.Results)); got != want {
				t.Error("prefix + restored sharded output differs from the uninterrupted run")
			}
		})
	}
}

// TestCheckpointRestoreAdmittedRoster checkpoints a session whose roster
// grew by a live Attach, restores it, and asserts the resumed run continues
// the admitted query's suffix stream exactly.
func TestCheckpointRestoreAdmittedRoster(t *testing.T) {
	defer assertGoroutinesReleased(t, goroutineBase())
	w := chaosWorkload()
	input := chaosInput(t)
	third := len(input) / 3
	q3 := stateslice.Query{Name: "Q3", Window: 4 * stateslice.Second}
	opts := []stateslice.Option{stateslice.WithCollect(), stateslice.WithShards(2), stateslice.WithMigratable()}

	// Reference: identical admission sequence, no checkpoint/restore.
	ref, err := stateslice.Build(w, stateslice.MemOpt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := ref.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := refSess.Consume(stateslice.SliceSource(input[:third])); err != nil {
		t.Fatal(err)
	}
	if _, err := refSess.Attach(q3); err != nil {
		t.Fatal(err)
	}
	if err := refSess.Consume(stateslice.SliceSource(input[third:])); err != nil {
		t.Fatal(err)
	}
	refRes := refSess.Finish()
	if refRes.Err != nil {
		t.Fatal(refRes.Err)
	}
	refSess.Close(context.Background())
	if len(refRes.Results) != 3 || len(refRes.Results[2]) == 0 {
		t.Fatal("admitted query produced no results; the roster check is vacuous")
	}
	want := renderResults(refRes.Results)

	// Checkpointed run: admit, feed to 2/3, snapshot, abandon, restore.
	p, err := stateslice.Build(w, stateslice.MemOpt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:third])); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Attach(q3); err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[third : 2*third])); err != nil {
		t.Fatal(err)
	}
	cp, err := sess.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prefix := sess.Finish()
	if prefix.Err != nil {
		t.Fatal(prefix.Err)
	}
	sess.Close(context.Background())

	resumed := resumeConsume(t, w, cp, input, 2*third,
		stateslice.WithShards(2), stateslice.WithMigratable())
	if len(resumed.Results) != 3 {
		t.Fatalf("restored roster has %d query slots, want 3 (admitted slot lost)", len(resumed.Results))
	}
	if got := renderResults(concatResults(prefix.Results, resumed.Results)); got != want {
		t.Error("restored admitted-roster output differs from the uninterrupted admission run")
	}
}

// TestCheckpointShapeValidation pins every restore-shape mismatch to a loud
// failure at Build or session creation, never a silent wrong answer.
func TestCheckpointShapeValidation(t *testing.T) {
	w := chaosWorkload()
	input := chaosInput(t)
	k := len(input) / 2

	seqPlan, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	seqCp, _ := splitConsume(t, seqPlan, input, k)

	shPlan, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect(), stateslice.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	shCp, _ := splitConsume(t, shPlan, input, k)

	for _, tc := range []struct {
		name string
		opts []stateslice.Option
	}{
		{"nil checkpoint", []stateslice.Option{stateslice.WithRestore(nil)}},
		{"sequential checkpoint into sharded plan", []stateslice.Option{stateslice.WithRestore(seqCp), stateslice.WithShards(2)}},
		{"sharded checkpoint into sequential plan", []stateslice.Option{stateslice.WithRestore(shCp)}},
		{"sharded checkpoint with wrong shard count", []stateslice.Option{stateslice.WithRestore(shCp), stateslice.WithShards(4)}},
		{"restore into concurrent pipeline", []stateslice.Option{stateslice.WithRestore(seqCp), stateslice.WithConcurrency()}},
	} {
		if _, err := stateslice.Build(w, stateslice.MemOpt, tc.opts...); err == nil {
			t.Errorf("%s: Build must fail", tc.name)
		}
	}

	// A workload mismatch (different windows) surfaces at session creation,
	// when the chain is rebuilt around the snapshot.
	other := stateslice.Workload{
		Queries: []stateslice.Query{{Name: "Q1", Window: 3 * stateslice.Second}},
		Join:    stateslice.Equijoin{},
	}
	if p, err := stateslice.Build(other, stateslice.MemOpt, stateslice.WithRestore(seqCp)); err == nil {
		if _, err := p.NewSession(stateslice.RunConfig{}); err == nil {
			t.Error("restoring into a different workload must fail")
		}
	}

	// A band-domain mismatch is caught when the executor validates the
	// snapshot's partitioning metadata.
	band := bandWorkloadAPI(1)
	bp, err := stateslice.Build(band, stateslice.MemOpt, stateslice.WithCollect(),
		stateslice.WithShards(2), stateslice.WithKeyRange(0, 11))
	if err != nil {
		t.Fatal(err)
	}
	bandCp, _ := splitConsume(t, bp, input, k)
	mismatch, err := stateslice.Build(band, stateslice.MemOpt, stateslice.WithCollect(),
		stateslice.WithRestore(bandCp), stateslice.WithShards(2), stateslice.WithKeyRange(0, 23))
	if err == nil {
		if _, err := mismatch.NewSession(stateslice.RunConfig{}); err == nil {
			t.Error("restoring with a different key domain must fail")
		}
	}

	// Garbage and truncated blobs must be rejected by the codec.
	if _, err := stateslice.DecodeCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Error("DecodeCheckpoint must reject garbage")
	}
	blob, err := shCp.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stateslice.DecodeCheckpoint(blob[:len(blob)-3]); err == nil {
		t.Error("DecodeCheckpoint must reject a truncated blob")
	}
	if _, err := stateslice.DecodeCheckpoint(append(append([]byte{}, blob...), 0xFF)); err == nil {
		t.Error("DecodeCheckpoint must reject trailing bytes")
	}

	// Checkpoint is a chain capability: non-chain strategies reject it.
	pu, err := stateslice.Build(w, stateslice.PullUp)
	if err != nil {
		t.Fatal(err)
	}
	puSess, err := pu.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := puSess.Checkpoint(context.Background()); err == nil {
		t.Error("Checkpoint on a non-chain strategy must fail")
	}
	puSess.Finish()
}
