package stateslice

import "stateslice/internal/fault"

// Typed error taxonomy of the session lifecycle. Every misuse or failure
// path across the execution stack — the sequential engine, the sharded
// executor, the concurrent pipeline, migration and admission — wraps one of
// these sentinels with fmt.Errorf("...: %w", ...), so callers classify
// failures with errors.Is instead of matching message strings:
//
//	if err := sess.Feed(t); errors.Is(err, stateslice.ErrClosed) {
//		return // the session was aborted elsewhere; stop feeding
//	}
//
// Contained crashes — a panicking operator, Source, Sink or result handler,
// or a panic inside a worker goroutine of a sharded or concurrent plan —
// surface as a *PanicError, matched with errors.As.
var (
	// ErrSessionFinished reports an operation on a session whose Finish
	// already ran: a finished session cannot be fed, drained, migrated or
	// admitted to.
	ErrSessionFinished = fault.ErrSessionFinished
	// ErrClosed reports an operation on a session aborted by Close. It is
	// also the cause carried on Result.Err when Finish runs after Close, so
	// partial statistics are never mistaken for a completed run, and the
	// error of a second Close (Close is idempotent but says so).
	ErrClosed = fault.ErrClosed
	// ErrNotQuiescing reports an operator graph that kept moving items past
	// the scheduler's pass bound — an operator cycle or a misbehaving custom
	// operator. The session fails with it instead of crashing the process.
	ErrNotQuiescing = fault.ErrNotQuiescing
	// ErrOutOfOrder reports a fed tuple that violated the global timestamp
	// order Feed requires.
	ErrOutOfOrder = fault.ErrOutOfOrder
	// ErrRestructuring reports a migration or admission that re-entered the
	// chain while another restructure was in progress (for example from a
	// sink callback fired inside a barrier).
	ErrRestructuring = fault.ErrRestructuring
	// ErrNotMigratable reports a Migrate, Attach or Detach on a plan built
	// without WithMigratable — migration and live admission reuse that
	// wiring.
	ErrNotMigratable = fault.ErrNotMigratable
	// ErrNoSession reports a Plan.Migrate with no active session driving
	// the plan; call NewSession first.
	ErrNoSession = fault.ErrNoSession
	// ErrNotSharded reports a Session.Rebalance on a plan built without
	// WithShards: rebalancing redistributes window state between shard
	// replicas, so there is nothing to rebalance on a sequential session.
	ErrNotSharded = fault.ErrNotSharded
)

// PanicError is the classified error a recovered panic surfaces as: every
// goroutine the executors spawn (shard replica runners, merge and assembly
// workers, pipeline stages) and every user-callback boundary (Source pulls,
// Sink and WithResultHandler callbacks, operator scheduling) recovers panics
// into one of these and publishes it through the session's first-error
// machinery — the session fails, the process survives. Unwrap with
// errors.As:
//
//	var pe *stateslice.PanicError
//	if errors.As(res.Err, &pe) {
//		log.Printf("contained crash in %s (shard %d): %v\n%s",
//			pe.Op, pe.Shard, pe.Value, pe.Stack)
//	}
type PanicError = fault.PanicError
