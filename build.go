package stateslice

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stateslice/internal/cost"
	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/optimizer"
	"stateslice/internal/pipeline"
	"stateslice/internal/plan"
	"stateslice/internal/workload"
)

// Plan is the unified handle every Build strategy returns: one interface
// for explaining, costing, executing and — for chain-backed plans —
// re-slicing a compiled workload. A Plan is a live operator graph with
// state: execute it once, either with Run or through one Session; build a
// fresh plan (building is cheap) for another run.
type Plan interface {
	// Name returns the plan's display name.
	Name() string
	// Strategy returns the sharing strategy the plan was built with.
	Strategy() Strategy
	// Ends returns the chain's current slice end boundaries, in chain
	// order, or nil for plans that are not state-slice chains.
	Ends() []Time
	// Explain renders a human-readable description of the compiled
	// operator graph.
	Explain() string
	// EstimatedCost evaluates the paper's analytic cost model for this
	// plan shape under the build's CostModel (WithCostParams, or
	// DefaultCostModel): state memory in KB and comparisons per second.
	// The two-query formulas Eqs. (1)-(2) bound the pull-up and
	// push-down baselines, so those strategies require a two-query
	// workload; chains and unshared plans cost any workload.
	EstimatedCost() (Cost, error)
	// Run pulls every tuple from the source through the plan and
	// returns the run statistics.
	Run(src Source, cfg RunConfig) (*Result, error)
	// NewSession prepares an incremental run: feed tuples one at a
	// time, consume sources, and migrate chain plans mid-stream.
	// Concurrent plans (WithConcurrency) do not support sessions.
	NewSession(cfg RunConfig) (Session, error)
	// Migrate re-slices a live chain to the given slice end boundaries
	// (ascending; the last must equal the current largest boundary) by
	// merging and splitting slices while the plan's session runs
	// (Section 5.3). It requires a chain strategy, WithMigratable, and
	// an active session created with NewSession.
	Migrate(to []Time) error

	// sealed keeps the implementation set closed so the interface can
	// grow without breaking callers.
	sealed()
}

// QueryID identifies a query within one plan's session lifetime: the
// 0-based workload index for queries built in at Build time, or the ID
// Session.Attach returned for queries admitted mid-stream. IDs are never
// reused — a detached query's ID stays assigned (its slot in Result's
// per-query statistics is preserved), so a stale ID can never silently
// address a different subscriber.
type QueryID int

// Session drives a plan incrementally: feed tuples one at a time (in global
// timestamp order), consume sources, and — between feeds — migrate the
// owning chain plan via Plan.Migrate or change the subscriber set via
// Attach and Detach. Sequential plans are driven by an engine-backed
// session; sharded plans (WithShards) by a session that routes each tuple
// to its key's replica. Every Session is single-shot: Finish flushes the
// plan with a final punctuation and returns the run statistics, after which
// the session cannot be fed.
//
// Sessions are not safe for concurrent use; one goroutine drives a session.
type Session interface {
	// Feed pushes one source tuple into the plan. Tuples must arrive in
	// global timestamp order.
	Feed(t *Tuple) error
	// Consume feeds the session from a source until it is exhausted. It
	// may be called several times (with sources whose timestamps continue
	// ascending) and interleaved with Feed and plan migrations.
	Consume(src Source) error
	// Drain processes everything buffered until the plan quiesces,
	// flushing any pending micro-batch (for sharded plans: blocking until
	// every replica has quiesced).
	Drain()
	// Attach admits a new query to the running plan at a feed barrier:
	// every tuple fed so far is fully processed, the query subscribes to
	// the existing slice prefix covering its window (splitting at most
	// one slice), and feeding resumes — the stream never stops, no state
	// is rebuilt, no input is replayed. From the first post-admission
	// arrival on, the query's results are byte-identical to those of the
	// same query built in from the start. Requires a chain strategy with
	// WithMigratable, a fully unfiltered workload, an unfiltered query,
	// and a window within (0, largest slice boundary]. Results stream
	// through WithResultHandler; per-query statistics appear in Finish's
	// Result under the returned ID.
	Attach(q Query) (QueryID, error)
	// Detach unsubscribes a previously built-in or attached query at a
	// feed barrier: buffered results flush in order, the query stops
	// receiving results, and slices no remaining query subscribes to are
	// garbage-collected (shrinking the chain's window states). The ID's
	// statistics — result counts, collected tuples — survive to Finish.
	// At least one live query must remain.
	Detach(id QueryID) error
	// Checkpoint takes a barrier-consistent snapshot of the running
	// session: every tuple fed so far is fully processed first (for
	// sharded sessions, on every replica, at the same global stream
	// position), the per-slice window contents, feed frontiers and query
	// roster are copied while nothing is in flight, and feeding resumes.
	// The session continues unaffected. Serialize the snapshot with
	// Checkpoint.Bytes and resume it — in this process or another — by
	// building the same workload with WithRestore. Requires a chain
	// strategy (MemOpt, CPUOpt); ctx only gates entry (a done context
	// fails fast), it cannot interrupt the barrier itself.
	Checkpoint(ctx context.Context) (*Checkpoint, error)
	// Rebalance re-cuts a sharded session's shard ownership to equi-depth
	// boundaries learned from the key distribution observed so far —
	// contiguous key ranges of near-equal observed mass under band
	// partitioning, hash-space intervals under hash partitioning — and
	// moves the affected window state between the existing replicas at a
	// feed barrier: every tuple fed so far is fully processed on every
	// replica first, the barrier snapshot is redistributed under the new
	// cuts, and feeding resumes. No later tuple overtakes the move on any
	// shard and the merged output is byte-identical across the boundary.
	// It returns true when ownership moved and false for a no-op — nothing
	// observed yet, an already balanced load, or a skew no boundary change
	// can improve (a single hot key). Requires WithShards; sequential
	// sessions fail with ErrNotSharded. ctx only gates entry (a done
	// context fails fast), it cannot interrupt the barrier itself.
	// WithRebalance arms the same move on an automatic sustained-imbalance
	// trigger.
	Rebalance(ctx context.Context) (bool, error)
	// Finish flushes the plan with a final punctuation and returns the
	// run statistics. The session cannot be fed afterwards. For sharded
	// sessions, the first replica or driver failure of the run — which
	// also surfaces on Feed/Consume as soon as it happens — is carried on
	// Result.Err; always check it before trusting a sharded session's
	// statistics.
	Finish() *Result
	// Close aborts the session without the final flush Finish performs:
	// feeding stops, every replica, merge and assembly goroutine of a
	// sharded session unwinds deadlock- and leak-free — even mid-Migrate
	// or mid-Attach barrier — and every subsequent operation fails with
	// ErrClosed. Close returns the session's first recorded failure (a
	// contained PanicError, a replica error), or nil for a clean abort;
	// ctx bounds how long Close waits for the teardown (the unwind keeps
	// finishing in the background if ctx expires first). Close is
	// idempotent: later calls return ErrClosed. Finish after Close
	// returns the partial statistics with Result.Err classified, so an
	// aborted run is never mistaken for a completed one.
	//
	// On sharded sessions (WithShards) Close alone may be called from any
	// goroutine — including concurrently with a Feed or Consume in
	// progress, which it unblocks. Sequential sessions follow the
	// single-driver rule even for Close; to abort one from outside its
	// driving goroutine, build the plan with WithContext and cancel.
	Close(ctx context.Context) error
}

// Build compiles the workload into an executable Plan under the given
// sharing strategy. It is the single entry point subsuming the deprecated
// per-strategy constructors:
//
//	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
//
// Options outside the strategy's shape (for example WithEnds on a pull-up
// plan, or WithConcurrency on a filtered workload) are rejected with an
// error rather than ignored.
func Build(w Workload, s Strategy, opts ...Option) (Plan, error) {
	var o buildOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.err != nil {
		return nil, o.err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	for qi := range o.sinks {
		if qi < 0 || qi >= len(w.Queries) {
			return nil, fmt.Errorf("stateslice: WithSink query index %d out of range (workload has %d queries)", qi, len(w.Queries))
		}
	}
	if !s.sliced() {
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{o.ends != nil, "WithEnds"},
			{o.migratable, "WithMigratable"},
			{o.disableLineage, "WithoutLineage"},
			{o.concurrent, "WithConcurrency"},
			{o.restore != nil, "WithRestore"},
			{o.recovery != nil, "WithRecovery"},
			{o.rebalance != nil, "WithRebalance"},
		} {
			if bad.set {
				return nil, fmt.Errorf("stateslice: %s applies to state-slice chains only, not the %s strategy", bad.name, s)
			}
		}
	}
	if o.recovery != nil && !o.shardsSet && !o.autoShards {
		return nil, errors.New("stateslice: WithRecovery supervises the sharded executor's replicas and requires WithShards; sequential sessions stay fail-fast")
	}
	if o.rebalance != nil && !o.shardsSet && !o.autoShards {
		return nil, errors.New("stateslice: WithRebalance redistributes state between shard replicas and requires WithShards; sequential sessions have nothing to rebalance")
	}
	if o.restore != nil {
		if err := validateRestoreShape(o); err != nil {
			return nil, err
		}
	}
	if o.ends != nil && s != MemOpt {
		return nil, fmt.Errorf("stateslice: WithEnds overrides the slice layout and is valid only with MemOpt, not %s (CPU-Opt computes its own boundaries)", s)
	}
	model := o.model
	if !o.modelSet {
		model = DefaultCostModel()
	}

	if o.concurrent && (o.shardsSet || o.autoShards) {
		return nil, errors.New("stateslice: WithConcurrency and WithShards select different executors for the same plan; choose one")
	}
	if o.autoShards && o.shardsSet {
		return nil, errors.New("stateslice: WithAutoShards and WithShards both set the shard count; choose one")
	}
	if o.assemblySet && !o.shardsSet && !o.autoShards {
		return nil, errors.New("stateslice: WithAssemblyWorkers tunes the sharded executor's merge layer and requires WithShards")
	}
	if o.keyRangeSet && !o.shardsSet && !o.autoShards {
		return nil, errors.New("stateslice: WithKeyRange parameterizes the sharded executor's band partitioner and requires WithShards")
	}

	// The optimizer pass pipeline is the compilation spine every build runs —
	// hand-built workloads and parsed SliceQL alike — so both paths make
	// identical decisions and record identical traces (DESIGN.md
	// "Compilation pipeline"). The passes decide; the builders below execute
	// and stay the validators of their own shapes.
	mode, ok := modeOf(s)
	if !ok {
		return nil, fmt.Errorf("stateslice: unknown strategy %s", s)
	}
	lg := &optimizer.Logical{
		Workload:         w,
		Params:           model.chainParams(),
		PinnedEnds:       o.ends,
		RequestedShards:  o.shards,
		AutoShards:       o.autoShards,
		KeyMin:           o.keyMin,
		KeyMax:           o.keyMax,
		KeyRangeDeclared: o.keyRangeSet,
		MaxProcs:         runtime.GOMAXPROCS(0),
		DisableLineage:   o.disableLineage,
		Concurrent:       o.concurrent,
	}
	if err := optimizer.Compile(lg, optimizer.Preset(mode)); err != nil {
		return nil, err
	}
	rs := s
	if s == Auto {
		rs = MemOpt
		if lg.Sharing == optimizer.ChainCPU {
			rs = CPUOpt
		}
	}
	if o.autoShards {
		o.shards = lg.Shards
		o.shardsSet = true
		if !lg.UseKeyRange {
			// A declared key domain only capped the inferred count here;
			// hash partitioning ignores it at run time and the sharded
			// builder rejects it, so it stops here.
			o.keyRangeSet = false
		}
	}

	if o.concurrent {
		if o.batchSet {
			return nil, errors.New("stateslice: WithBatchSize tunes the sequential engine's micro-batch; the concurrent pipeline batches by channel slab and cannot be combined with it")
		}
		return buildConcurrent(w, rs, o, model, lg)
	}
	if o.shardsSet {
		return buildSharded(w, rs, o, model, lg)
	}

	bp := &builtPlan{strategy: rs, w: w, model: model, migratable: o.migratable, batchSize: o.batchSize, ctx: o.ctx, trace: lg.Trace}
	switch rs {
	case MemOpt, CPUOpt:
		cfg := chainConfig(rs, o, lg)
		// Chains route WithResultHandler and WithSink through the plan's
		// own result hook: sinks created later by Session.Attach then get
		// the same composite, so admitted queries stream results too.
		cfg.OnResult = sequentialOnResult(o)
		var (
			sp  *plan.StateSlicePlan
			err error
		)
		if o.restore != nil {
			sp, err = plan.RestoreStateSlice(w, cfg, o.restore.chain)
			if err != nil {
				return nil, err
			}
			bp.restore = o.restore.chain
		} else {
			sp, err = plan.BuildStateSlice(w, cfg)
			if err != nil {
				return nil, err
			}
		}
		bp.chain = sp
		bp.exec = sp.Plan
	case PullUp, PushDown, Unshared:
		var (
			p   *engine.Plan
			err error
		)
		switch rs {
		case PullUp:
			p, err = plan.BuildPullUp(w, o.collect)
		case PushDown:
			p, err = plan.BuildPushDown(w, o.collect)
		default:
			p, err = plan.BuildUnshared(w, o.collect)
		}
		if err != nil {
			return nil, err
		}
		if o.name != "" {
			p.Name = o.name
		}
		bp.exec = p
	default:
		return nil, fmt.Errorf("stateslice: unknown strategy %s", rs)
	}

	if o.hashProbing {
		if err := enableHashProbing(bp.exec); err != nil {
			return nil, err
		}
	}
	if h := sequentialOnResult(o); h != nil && bp.chain == nil {
		for qi := range bp.exec.Sinks {
			qi := qi
			bp.exec.Sinks[qi].OnResult(func(t *Tuple) { h(qi, t) })
		}
	}
	return bp, nil
}

// sequentialOnResult composes the build's streaming result callbacks — the
// WithResultHandler handler first, then the query's WithSink sink — into the
// single per-query hook the sequential executors invoke. Nil when neither is
// configured.
func sequentialOnResult(o buildOptions) func(int, *Tuple) {
	if o.resultHandler == nil && len(o.sinks) == 0 {
		return nil
	}
	handler, sinks := o.resultHandler, o.sinks
	return func(qi int, t *Tuple) {
		if handler != nil {
			handler(QueryID(qi), t)
		}
		if s, ok := sinks[qi]; ok {
			s.Emit(t)
		}
	}
}

// modeOf maps a public strategy onto its optimizer preset.
func modeOf(s Strategy) (optimizer.Mode, bool) {
	switch s {
	case MemOpt:
		return optimizer.ChainMem, true
	case CPUOpt:
		return optimizer.ChainCPU, true
	case Auto:
		return optimizer.ChainAuto, true
	case PullUp:
		return optimizer.ModePullUp, true
	case PushDown:
		return optimizer.ModePushDown, true
	case Unshared:
		return optimizer.ModeUnshared, true
	default:
		return 0, false
	}
}

// chainConfig assembles the chain configuration of a MemOpt or CPUOpt build
// from the optimizer's decisions: the sharing pass's slice boundaries
// (caller-pinned, or Dijkstra-chosen for CPU-Opt; nil lets the chain builder
// derive the Mem-Opt distinct windows), lineage, migration wiring and the
// plan name. Both the sequential chain build and the sharded replica factory
// compile from it.
func chainConfig(s Strategy, o buildOptions, lg *optimizer.Logical) plan.StateSliceConfig {
	cfg := plan.StateSliceConfig{
		Ends:           lg.Ends,
		DisableLineage: o.disableLineage,
		Migratable:     o.migratable,
		Collect:        o.collect,
		Name:           o.name,
	}
	if cfg.Name == "" {
		cfg.Name = "state-slice(" + s.String() + ")"
	}
	return cfg
}

// enableHashProbing switches every regular window join of the plan to
// hash-index probing, reporting plans that contain none: sliced chains use
// SlicedBinaryJoin operators, which are never hash-probed, and silently
// "succeeding" on them hid real configuration mistakes.
func enableHashProbing(p *engine.Plan) error {
	eligible := 0
	for _, s := range p.Stateful {
		if wj, ok := s.(*operator.WindowJoin); ok {
			if _, err := wj.WithHashProbe(); err != nil {
				return err
			}
			eligible++
		}
	}
	if eligible == 0 {
		return fmt.Errorf("stateslice: plan %q contains no regular window join eligible for hash probing (state-slice chains use sliced joins, which are always nested-loop)", p.Name)
	}
	return nil
}

// builtPlan is the sequential, engine-backed Plan implementation shared by
// every strategy.
type builtPlan struct {
	strategy   Strategy
	w          Workload
	exec       *engine.Plan
	chain      *plan.StateSlicePlan // nil unless strategy.sliced()
	model      CostModel
	migratable bool
	batchSize  int                   // WithBatchSize default for runs and sessions
	ctx        context.Context       // WithContext bound for runs and sessions
	restore    *plan.ChainCheckpoint // WithRestore snapshot; sessions seed its frontier
	sess       *engine.Session       // latest session, the migration target
	trace      []optimizer.Note      // the pass pipeline's decision record
}

func (p *builtPlan) sealed() {}

// Name implements Plan.
func (p *builtPlan) Name() string { return p.exec.Name }

// Strategy implements Plan.
func (p *builtPlan) Strategy() Strategy { return p.strategy }

// Ends implements Plan.
func (p *builtPlan) Ends() []Time {
	if p.chain == nil {
		return nil
	}
	return p.chain.Ends()
}

// Run implements Plan. A restored plan runs through a session so the
// snapshot's feed frontier is seeded before the first tuple.
func (p *builtPlan) Run(src Source, cfg RunConfig) (*Result, error) {
	if p.restore != nil {
		s, err := p.NewSession(cfg)
		if err != nil {
			return nil, err
		}
		if err := s.Consume(src); err != nil {
			return nil, err
		}
		res := s.Finish()
		if res.Err != nil {
			return nil, res.Err
		}
		return res, nil
	}
	return engine.RunSource(p.exec, src, p.runConfig(cfg))
}

// NewSession implements Plan.
func (p *builtPlan) NewSession(cfg RunConfig) (Session, error) {
	s, err := engine.NewSession(p.exec, p.runConfig(cfg))
	if err != nil {
		return nil, err
	}
	if p.restore != nil {
		if err := s.SeedFrontier(p.restore.Fed, p.restore.LastTime); err != nil {
			return nil, err
		}
	}
	p.sess = s
	return &builtSession{s: s, p: p}, nil
}

// builtSession wraps the engine session driving a sequential plan with the
// admission surface: Attach and Detach delegate to the chain's feed-barrier
// protocol (internal/plan Attach/Detach).
type builtSession struct {
	s *engine.Session
	p *builtPlan
}

// Feed implements Session.
func (cs *builtSession) Feed(t *Tuple) error { return cs.s.Feed(t) }

// Consume implements Session.
func (cs *builtSession) Consume(src Source) error { return cs.s.Consume(src) }

// Drain implements Session.
func (cs *builtSession) Drain() { cs.s.Drain() }

// Checkpoint implements Session: the chain drains to quiescence inside the
// same feed-barrier protocol migration and admission use, and the snapshot
// is copied while nothing is in flight.
func (cs *builtSession) Checkpoint(ctx context.Context) (*Checkpoint, error) {
	if cs.p.chain == nil {
		return nil, fmt.Errorf("stateslice: the %s strategy does not support checkpoints; only state-slice chains snapshot their sliced state", cs.p.strategy)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	cp, err := cs.p.chain.Checkpoint(cs.s)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{chain: cp}, nil
}

// Rebalance implements Session: sequential sessions have no replicas to
// move state between, so the call is rejected with ErrNotSharded.
func (cs *builtSession) Rebalance(context.Context) (bool, error) {
	return false, fmt.Errorf("stateslice: Rebalance moves window state between shard replicas and requires WithShards: %w", ErrNotSharded)
}

// Finish implements Session.
func (cs *builtSession) Finish() *Result { return cs.s.Finish() }

// Close implements Session. Sequential sessions own no goroutines, so the
// abort is immediate: the session becomes unusable and its first recorded
// failure, if any, is returned.
func (cs *builtSession) Close(ctx context.Context) error { return cs.s.Close(ctx) }

// Attach implements Session.
func (cs *builtSession) Attach(q Query) (QueryID, error) {
	if err := cs.p.admissionReady(); err != nil {
		return 0, err
	}
	qi, err := cs.p.chain.Attach(cs.s, q)
	return QueryID(qi), err
}

// Detach implements Session.
func (cs *builtSession) Detach(id QueryID) error {
	if err := cs.p.admissionReady(); err != nil {
		return err
	}
	return cs.p.chain.Detach(cs.s, int(id))
}

// admissionReady mirrors Migrate's structural preconditions for Attach and
// Detach, which reuse the migration wiring (a union per query, splittable
// slices).
func (p *builtPlan) admissionReady() error {
	if p.chain == nil {
		return fmt.Errorf("stateslice: the %s strategy does not support query admission; only state-slice chains attach and detach queries live", p.strategy)
	}
	if !p.migratable {
		return fmt.Errorf("stateslice: build the chain with WithMigratable to attach or detach queries (admission reuses the migration wiring): %w", ErrNotMigratable)
	}
	return nil
}

// runConfig applies the build's WithBatchSize and WithContext defaults
// unless the run config sets its own.
func (p *builtPlan) runConfig(cfg RunConfig) RunConfig {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = p.batchSize
	}
	if cfg.Ctx == nil {
		cfg.Ctx = p.ctx
	}
	return cfg
}

// Migrate implements Plan: it diffs the live chain's boundaries against the
// target and applies the merges (right to left) and splits that transform
// one into the other, exactly the Section 5.3 maintenance primitives
// (plan.MigrateTo).
func (p *builtPlan) Migrate(to []Time) error {
	if p.chain == nil {
		return fmt.Errorf("stateslice: the %s strategy does not support migration; only state-slice chains re-slice online", p.strategy)
	}
	if !p.migratable {
		return fmt.Errorf("stateslice: build the chain with WithMigratable to migrate it: %w", ErrNotMigratable)
	}
	if p.sess == nil {
		return fmt.Errorf("stateslice: Migrate needs a session from NewSession first: %w", ErrNoSession)
	}
	return p.chain.MigrateTo(p.sess, to)
}

// EstimatedCost implements Plan.
func (p *builtPlan) EstimatedCost() (Cost, error) {
	return estimateCost(p.strategy, p.w, p.Ends(), p.model)
}

// Explain implements Plan.
func (p *builtPlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q  strategy=%s\n", p.Name(), p.strategy)
	if p.chain != nil {
		explainSlots(&b, p.chain.QuerySlots())
	} else {
		explainQueries(&b, p.w)
	}
	if p.chain != nil {
		start := Time(0)
		b.WriteString("  chain:")
		for _, e := range p.chain.Ends() {
			fmt.Fprintf(&b, " (%s,%s]", fmtTime(start), fmtTime(e))
			start = e
		}
		if p.migratable {
			b.WriteString("  (migratable)")
		}
		b.WriteString("\n")
	}
	b.WriteString("  operators: ")
	for i, op := range p.exec.Ops {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(op.Name())
	}
	b.WriteString("\n")
	writeTrace(&b, p.trace)
	return b.String()
}

// writeTrace appends the optimizer's pass trace to an Explain rendering.
func writeTrace(b *strings.Builder, trace []optimizer.Note) {
	if len(trace) == 0 {
		return
	}
	b.WriteString("  passes:\n")
	b.WriteString(optimizer.RenderTrace(trace))
}

// fmtTime renders a timestamp as compact seconds for Explain output.
func fmtTime(t Time) string {
	return strconv.FormatFloat(t.ToSeconds(), 'g', -1, 64) + "s"
}

// explainQueries renders the workload's query list.
func explainQueries(b *strings.Builder, w Workload) {
	for i, q := range w.Queries {
		fmt.Fprintf(b, "  %s: window %s", w.QueryName(i), fmtTime(q.Window))
		if q.HasFilter() {
			fmt.Fprintf(b, ", filter(A) %s", q.Filter)
		}
		if q.HasFilterB() {
			fmt.Fprintf(b, ", filter(B) %s", q.FilterB)
		}
		b.WriteString("\n")
	}
}

// explainSlots renders a live chain's query roster — every slot ever
// admitted, built in or attached, with detached slots marked — so Explain
// observes the effect of Session.Attach and Session.Detach.
func explainSlots(b *strings.Builder, slots []plan.QuerySlot) {
	for i, s := range slots {
		name := s.Query.Name
		if name == "" {
			name = "Q" + strconv.Itoa(i+1)
		}
		fmt.Fprintf(b, "  %s: window %s", name, fmtTime(s.Query.Window))
		if s.Query.HasFilter() {
			fmt.Fprintf(b, ", filter(A) %s", s.Query.Filter)
		}
		if s.Query.HasFilterB() {
			fmt.Fprintf(b, ", filter(B) %s", s.Query.FilterB)
		}
		if !s.Live {
			b.WriteString("  (detached)")
		}
		b.WriteString("\n")
	}
}

// estimateCost evaluates the analytic model for one plan shape.
func estimateCost(s Strategy, w Workload, ends []Time, m CostModel) (Cost, error) {
	switch s {
	case MemOpt, CPUOpt:
		secs := make([]float64, len(ends))
		for i, e := range ends {
			secs[i] = e.ToSeconds()
		}
		return cost.ChainCost(workload.Specs(w), secs, m.chainParams())
	case PullUp, PushDown:
		p, err := twoQueryParams(w, m)
		if err != nil {
			return Cost{}, err
		}
		if s == PullUp {
			return cost.PullUp(p), nil
		}
		return cost.PushDown(p), nil
	case Unshared:
		return unsharedCost(w, m), nil
	default:
		return Cost{}, fmt.Errorf("stateslice: no cost model for strategy %s", s)
	}
}

// twoQueryParams maps a two-query workload onto the Table 1 parameters of
// Eqs. (1)-(2): Q1 unfiltered with window W1, Q2 with selection selectivity
// SelSigma and window W2.
func twoQueryParams(w Workload, m CostModel) (cost.Params, error) {
	if len(w.Queries) != 2 {
		return cost.Params{}, fmt.Errorf("stateslice: the Eq. (1)/(2) cost model covers two-query workloads, got %d queries (chain strategies cost any workload)", len(w.Queries))
	}
	return cost.Params{
		LambdaA:  m.RateA,
		LambdaB:  m.RateB,
		W1:       w.Queries[0].Window.ToSeconds(),
		W2:       w.Queries[1].Window.ToSeconds(),
		TupleKB:  m.TupleKB,
		SelSigma: selectivityOf(w.Queries[1].Filter),
		SelJoin:  m.JoinSelectivity,
	}, nil
}

// unsharedCost sums the per-query costs of independent plans (Figure 2):
// each query pays its own filtered states, probing, purging and selections.
func unsharedCost(w Workload, m CostModel) Cost {
	l := (m.RateA + m.RateB) / 2
	var c Cost
	for _, q := range w.Queries {
		sA := selectivityOf(q.Filter)
		sB := selectivityOf(q.FilterB)
		win := q.Window.ToSeconds()
		c.MemoryKB += (sA + sB) * l * win * m.TupleKB
		c.CPU += 2*sA*sB*l*l*win + // probing of the private join
			(sA+sB)*l // cross-purge
		if sA < 1 {
			c.CPU += l // selection on stream A
		}
		if sB < 1 {
			c.CPU += l // selection on stream B
		}
	}
	return c
}

// selectivityOf returns a predicate's modelled selectivity (1 when absent).
func selectivityOf(p Predicate) float64 {
	if p == nil {
		return 1
	}
	return p.Selectivity()
}

// chainParams maps the public cost model onto the internal chain model.
func (m CostModel) chainParams() cost.ChainParams {
	return cost.ChainParams{
		LambdaA: m.RateA,
		LambdaB: m.RateB,
		TupleKB: m.TupleKB,
		SelJoin: m.JoinSelectivity,
		Csys:    m.Csys,
	}
}

// buildConcurrent assembles the pipeline-backed Plan of WithConcurrency.
func buildConcurrent(w Workload, s Strategy, o buildOptions, model CostModel, lg *optimizer.Logical) (Plan, error) {
	if s != MemOpt {
		return nil, fmt.Errorf("stateslice: WithConcurrency supports the MemOpt chain only, not %s", s)
	}
	if o.migratable || o.hashProbing {
		return nil, errors.New("stateslice: WithConcurrency cannot be combined with WithMigratable or WithHashProbing")
	}
	if o.ends != nil || o.disableLineage {
		return nil, errors.New("stateslice: WithConcurrency runs the distinct-window Mem-Opt layout and cannot be combined with WithEnds or WithoutLineage")
	}
	if o.resultHandler != nil {
		return nil, errors.New("stateslice: WithResultHandler delivers one ordered callback stream; the concurrent pipeline's per-query mergers fire in parallel — register a WithSink per query instead, or build without WithConcurrency")
	}
	windows := make([]Time, 0, len(w.Queries))
	for i, q := range w.Queries {
		if q.HasFilter() || q.HasFilterB() {
			return nil, fmt.Errorf("stateslice: WithConcurrency supports unfiltered queries only (query %d is filtered); use the sequential engine for pushed-down selections", i)
		}
		windows = append(windows, q.Window)
	}
	name := o.name
	if name == "" {
		name = "state-slice(mem-opt,concurrent)"
	}
	return &concurrentPlan{
		name:    name,
		w:       w,
		windows: windows,
		collect: o.collect,
		sinks:   o.sinks,
		model:   model,
		ctx:     o.ctx,
		trace:   lg.Trace,
	}, nil
}

// concurrentPlan executes the Mem-Opt chain with one goroutine per sliced
// join (internal/pipeline); it is single-shot and session-free.
type concurrentPlan struct {
	name    string
	w       Workload
	windows []Time
	collect bool
	sinks   map[int]Sink
	model   CostModel
	ctx     context.Context  // WithContext bound for Run
	trace   []optimizer.Note // the pass pipeline's decision record
}

func (p *concurrentPlan) sealed() {}

// Name implements Plan.
func (p *concurrentPlan) Name() string { return p.name }

// Strategy implements Plan.
func (p *concurrentPlan) Strategy() Strategy { return MemOpt }

// Ends implements Plan.
func (p *concurrentPlan) Ends() []Time { return p.w.DistinctWindows() }

// Run implements Plan.
func (p *concurrentPlan) Run(src Source, cfg RunConfig) (*Result, error) {
	if cfg.BatchSize != 0 {
		return nil, errors.New("stateslice: RunConfig.BatchSize tunes the sequential engine's micro-batch; the concurrent pipeline batches by channel slab and ignores it — run without BatchSize or build without WithConcurrency")
	}
	var onResult func(int, *Tuple)
	if len(p.sinks) > 0 {
		sinks := p.sinks
		onResult = func(qi int, t *Tuple) {
			if s, ok := sinks[qi]; ok {
				s.Emit(t)
			}
		}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = p.ctx
	}
	start := time.Now()
	pr, err := pipeline.RunChainSource(ctx, p.windows, p.w.Join, src, p.collect, onResult)
	if err != nil {
		return nil, err
	}
	return &Result{
		PlanName:        p.name,
		Inputs:          pr.Inputs,
		Meter:           pr.Meter,
		SinkCounts:      pr.SinkCounts,
		Results:         pr.Results,
		OrderViolations: pr.OrderViolations,
		Wall:            time.Since(start),
		VirtualDuration: pr.VirtualDuration,
	}, nil
}

// NewSession implements Plan.
func (p *concurrentPlan) NewSession(RunConfig) (Session, error) {
	return nil, errors.New("stateslice: concurrent plans run free-threaded and do not support sessions; build without WithConcurrency to feed tuples incrementally under your control (WithShards sessions run parallel too)")
}

// Migrate implements Plan.
func (p *concurrentPlan) Migrate([]Time) error {
	return errors.New("stateslice: concurrent plans do not support migration; build without WithConcurrency for online re-slicing")
}

// EstimatedCost implements Plan.
func (p *concurrentPlan) EstimatedCost() (Cost, error) {
	return estimateCost(MemOpt, p.w, p.Ends(), p.model)
}

// Explain implements Plan.
func (p *concurrentPlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q  strategy=%s  concurrent\n", p.name, MemOpt)
	explainQueries(&b, p.w)
	b.WriteString("  stages: feeder")
	start := Time(0)
	for _, e := range p.w.DistinctWindows() {
		fmt.Fprintf(&b, " -> slice(%s,%s]", fmtTime(start), fmtTime(e))
		start = e
	}
	fmt.Fprintf(&b, " ; %d order-preserving mergers, one goroutine per stage\n", len(p.w.Queries))
	writeTrace(&b, p.trace)
	return b.String()
}
