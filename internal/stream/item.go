package stream

import "fmt"

// Item is an element travelling through an operator queue: either a tuple or
// a punctuation. Punctuations carry the guarantee that no tuple with a
// timestamp at or below Punct will arrive on this queue in the future; they
// implement the punctuation semantics of Tucker et al. cited by the paper
// (reference [26]) and drive the order-preserving union operator.
type Item struct {
	// Tuple is the payload; nil for a pure punctuation.
	Tuple *Tuple
	// Punct is the punctuation timestamp. For tuple items it is unused.
	Punct Time
}

// TupleItem wraps a tuple as a queue item.
func TupleItem(t *Tuple) Item { return Item{Tuple: t} }

// PunctItem builds a punctuation item with the given timestamp.
func PunctItem(ts Time) Item { return Item{Punct: ts} }

// IsPunct reports whether the item is a punctuation.
func (it Item) IsPunct() bool { return it.Tuple == nil }

// String renders the item for traces.
func (it Item) String() string {
	if it.IsPunct() {
		return fmt.Sprintf("punct(%s)", it.Punct)
	}
	return it.Tuple.String()
}

// Queue is an unbounded FIFO of items backed by a growable ring buffer. One
// logical queue connects adjacent operators in a shared query plan; sliced
// join chains use a single logical queue carrying both purged female tuples
// and propagated male tuples, exactly as in Figure 7 of the paper.
//
// Queue is not safe for concurrent use; the single-threaded engine owns all
// queues. The concurrent executor uses channels instead.
type Queue struct {
	buf  []Item
	head int
	n    int
}

// NewQueue returns an empty queue with a small initial capacity.
func NewQueue() *Queue { return &Queue{buf: make([]Item, 16)} }

// Len returns the number of items currently queued.
func (q *Queue) Len() int { return q.n }

// Empty reports whether the queue holds no items.
func (q *Queue) Empty() bool { return q.n == 0 }

// TupleCount returns the number of tuple (non-punctuation) items queued. The
// engine's statistics monitor uses it to measure queue memory.
func (q *Queue) TupleCount() int {
	c := 0
	for i := 0; i < q.n; i++ {
		if !q.at(i).IsPunct() {
			c++
		}
	}
	return c
}

// Push appends an item at the tail.
func (q *Queue) Push(it Item) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = it
	q.n++
}

// PushTuple appends a tuple at the tail.
func (q *Queue) PushTuple(t *Tuple) { q.Push(TupleItem(t)) }

// PushPunct appends a punctuation at the tail.
func (q *Queue) PushPunct(ts Time) { q.Push(PunctItem(ts)) }

// Pop removes and returns the head item. It panics if the queue is empty;
// callers check Empty first (queues are internal plumbing, not user API).
func (q *Queue) Pop() Item {
	if q.n == 0 {
		panic("stream: Pop from empty queue")
	}
	it := q.buf[q.head]
	q.buf[q.head] = Item{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return it
}

// Peek returns the head item without removing it. It panics if empty.
func (q *Queue) Peek() Item {
	if q.n == 0 {
		panic("stream: Peek on empty queue")
	}
	return q.buf[q.head]
}

func (q *Queue) at(i int) Item { return q.buf[(q.head+i)%len(q.buf)] }

func (q *Queue) grow() {
	nb := make([]Item, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.at(i)
	}
	q.buf = nb
	q.head = 0
}

// Snapshot returns the queued items oldest-first. Traces use it to print the
// queue contents of Table 2 in the paper.
func (q *Queue) Snapshot() []Item {
	out := make([]Item, q.n)
	for i := 0; i < q.n; i++ {
		out[i] = q.at(i)
	}
	return out
}
