package stream

import "fmt"

// Item is an element travelling through an operator queue: either a tuple or
// a punctuation. Punctuations carry the guarantee that no tuple with a
// timestamp at or below Punct will arrive on this queue in the future; they
// implement the punctuation semantics of Tucker et al. cited by the paper
// (reference [26]) and drive the order-preserving union operator.
//
// Inside a sliced-join chain the item additionally carries the tuple's Role
// (male/female reference copy, Section 4.2). Keeping the role on the queue
// item instead of on a copied tuple makes the reference-copy scheme truly
// zero-copy: the splitter emits two roles of the *same* *Tuple, allocating
// nothing.
type Item struct {
	// Tuple is the payload; nil for a pure punctuation.
	Tuple *Tuple
	// Punct is the punctuation timestamp. For tuple items it is unused.
	Punct Time
	// Role marks the reference-copy role the tuple plays on this queue.
	// Plain outside sliced-join chains.
	Role Role
}

// TupleItem wraps a tuple as a queue item, carrying the tuple's own role (set
// by WithRole for callers that still materialize reference copies).
func TupleItem(t *Tuple) Item { return Item{Tuple: t, Role: t.Role} }

// RoleItem wraps a tuple as a queue item playing the given reference-copy
// role, without copying the tuple.
func RoleItem(t *Tuple, r Role) Item { return Item{Tuple: t, Role: r} }

// PunctItem builds a punctuation item with the given timestamp.
func PunctItem(ts Time) Item { return Item{Punct: ts} }

// IsPunct reports whether the item is a punctuation.
func (it Item) IsPunct() bool { return it.Tuple == nil }

// String renders the item for traces.
func (it Item) String() string {
	if it.IsPunct() {
		return fmt.Sprintf("punct(%s)", it.Punct)
	}
	return it.Tuple.String()
}

// Queue is an unbounded FIFO of items backed by a growable ring buffer. One
// logical queue connects adjacent operators in a shared query plan; sliced
// join chains use a single logical queue carrying both purged female tuples
// and propagated male tuples, exactly as in Figure 7 of the paper.
//
// The buffer length is always a power of two, so every index wrap is a mask
// instead of a modulo — Pop and Push sit on the per-item hot path of the
// scheduler.
//
// Queue is not safe for concurrent use; the single-threaded engine owns all
// queues. The concurrent executor uses channels instead.
type Queue struct {
	buf  []Item
	head int
	n    int
}

// queueInitCap is the initial ring capacity; must be a power of two.
const queueInitCap = 16

// NewQueue returns an empty queue with a small initial capacity.
func NewQueue() *Queue { return &Queue{buf: make([]Item, queueInitCap)} }

// Len returns the number of items currently queued.
func (q *Queue) Len() int { return q.n }

// Empty reports whether the queue holds no items.
func (q *Queue) Empty() bool { return q.n == 0 }

// TupleCount returns the number of tuple (non-punctuation) items queued. The
// engine's statistics monitor uses it to measure queue memory.
func (q *Queue) TupleCount() int {
	c := 0
	for i := 0; i < q.n; i++ {
		if !q.at(i).IsPunct() {
			c++
		}
	}
	return c
}

// Push appends an item at the tail.
func (q *Queue) Push(it Item) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = it
	q.n++
}

// PushTuple appends a tuple at the tail.
func (q *Queue) PushTuple(t *Tuple) { q.Push(TupleItem(t)) }

// PushPunct appends a punctuation at the tail.
func (q *Queue) PushPunct(ts Time) { q.Push(PunctItem(ts)) }

// Pop removes and returns the head item. On an empty queue it returns the
// zero Item (a punctuation at time zero) rather than panicking; callers
// check Empty first — queues are internal plumbing, and the guarded return
// keeps a misuse from crashing the process ("no fault crashes the process"
// has no carve-outs).
func (q *Queue) Pop() Item {
	if q.n == 0 {
		return Item{}
	}
	it := q.buf[q.head]
	q.buf[q.head] = Item{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return it
}

// Peek returns the head item without removing it, or the zero Item when the
// queue is empty (see Pop).
func (q *Queue) Peek() Item {
	if q.n == 0 {
		return Item{}
	}
	return q.buf[q.head]
}

func (q *Queue) at(i int) Item { return q.buf[(q.head+i)&(len(q.buf)-1)] }

// Drain removes every queued item, invoking fn on each in FIFO order, and
// returns the number drained. It clears the ring span-wise, which is cheaper
// than item-at-a-time Pop for consumers that always take everything (sinks).
// fn must not push to q.
func (q *Queue) Drain(fn func(Item)) int {
	n := q.n
	end := q.head + q.n
	if end <= len(q.buf) {
		span := q.buf[q.head:end]
		for i := range span {
			fn(span[i])
		}
		clear(span)
	} else {
		wrap := end & (len(q.buf) - 1)
		for i := range q.buf[q.head:] {
			fn(q.buf[q.head+i])
		}
		for i := range q.buf[:wrap] {
			fn(q.buf[i])
		}
		clear(q.buf[q.head:])
		clear(q.buf[:wrap])
	}
	q.head, q.n = 0, 0
	return n
}

func (q *Queue) grow() {
	nb := make([]Item, 2*len(q.buf))
	n := copy(nb, q.buf[q.head:])
	copy(nb[n:], q.buf[:q.head])
	q.buf = nb
	q.head = 0
}

// Snapshot returns the queued items oldest-first. Traces use it to print the
// queue contents of Table 2 in the paper.
func (q *Queue) Snapshot() []Item {
	out := make([]Item, q.n)
	for i := 0; i < q.n; i++ {
		out[i] = q.at(i)
	}
	return out
}
