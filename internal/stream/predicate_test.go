package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEquijoin(t *testing.T) {
	p := Equijoin{}
	a := &Tuple{Key: 7}
	if !p.Match(a, &Tuple{Key: 7}) {
		t.Error("equal keys must match")
	}
	if p.Match(a, &Tuple{Key: 8}) {
		t.Error("different keys must not match")
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestCrossProduct(t *testing.T) {
	p := CrossProduct{}
	if !p.Match(&Tuple{Key: 1}, &Tuple{Key: 2}) {
		t.Error("cross product must match every pair")
	}
}

func TestFractionMatchSelectivity(t *testing.T) {
	// Empirical selectivity over many pairs must be close to S.
	for _, s := range []float64{0.025, 0.1, 0.4} {
		p := FractionMatch{S: s}
		matches, total := 0, 0
		for a := uint64(1); a <= 300; a++ {
			for b := uint64(1000); b < 1300; b++ {
				total++
				if p.Match(&Tuple{Seq: a}, &Tuple{Seq: b}) {
					matches++
				}
			}
		}
		got := float64(matches) / float64(total)
		if math.Abs(got-s) > 0.01 {
			t.Errorf("FractionMatch(%g): empirical selectivity %.4f", s, got)
		}
	}
}

func TestFractionMatchDeterministic(t *testing.T) {
	p := FractionMatch{S: 0.3}
	a, b := &Tuple{Seq: 17}, &Tuple{Seq: 42}
	first := p.Match(a, b)
	for i := 0; i < 10; i++ {
		if p.Match(a, b) != first {
			t.Fatal("FractionMatch must be deterministic per pair")
		}
	}
}

func TestFractionMatchExtremes(t *testing.T) {
	all := FractionMatch{S: 1.0000001}
	none := FractionMatch{S: 0}
	for a := uint64(0); a < 50; a++ {
		for b := uint64(0); b < 50; b++ {
			ta, tb := &Tuple{Seq: a}, &Tuple{Seq: b}
			if !all.Match(ta, tb) {
				t.Fatalf("S>1 must match everything (a=%d b=%d)", a, b)
			}
			if none.Match(ta, tb) {
				t.Fatalf("S=0 must match nothing (a=%d b=%d)", a, b)
			}
		}
	}
}

func TestPairUniformRange(t *testing.T) {
	inRange := func(x, y uint64) bool {
		u := pairUniform(x, y)
		return u >= 0 && u < 1
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdSelectivity(t *testing.T) {
	for _, s := range []float64{0.2, 0.5, 0.8, 1} {
		p := Threshold{S: s}
		if p.Selectivity() != s {
			t.Errorf("Selectivity() = %g, want %g", p.Selectivity(), s)
		}
		// Exact boundary: Value >= 1-s.
		if !p.Eval(&Tuple{Value: 1 - s}) {
			t.Errorf("threshold %g must accept Value = 1-s", s)
		}
		if s < 1 && p.Eval(&Tuple{Value: 1 - s - 1e-9}) {
			t.Errorf("threshold %g must reject Value just below 1-s", s)
		}
	}
}

func TestThresholdNesting(t *testing.T) {
	// A tighter threshold implies every looser one; this property is what
	// makes the pushed-down disjunctions of Section 6.1 collapse.
	tight, loose := Threshold{S: 0.2}, Threshold{S: 0.8}
	prop := func(v float64) bool {
		v = math.Abs(math.Mod(v, 1))
		tp := &Tuple{Value: v}
		return !tight.Eval(tp) || loose.Eval(tp)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTruePredicate(t *testing.T) {
	p := True{}
	if !p.Eval(&Tuple{}) || p.Selectivity() != 1 {
		t.Error("True must accept everything with selectivity 1")
	}
}

func TestOrPredicate(t *testing.T) {
	or := Or{Threshold{S: 0.2}, Threshold{S: 0.5}}
	if got := or.Selectivity(); got != 0.5 {
		t.Errorf("nested Or selectivity = %g, want max = 0.5", got)
	}
	if !or.Eval(&Tuple{Value: 0.6}) {
		t.Error("Or must accept a tuple passing any member")
	}
	if or.Eval(&Tuple{Value: 0.1}) {
		t.Error("Or must reject a tuple failing all members")
	}
	empty := Or{}
	if empty.Eval(&Tuple{Value: 0.99}) {
		t.Error("empty Or is false")
	}
	if empty.String() != "false" {
		t.Errorf("empty Or string = %q", empty.String())
	}
	mixed := Or{True{}, Threshold{S: 0.5}}
	if got := mixed.Selectivity(); got != 1 {
		t.Errorf("mixed Or selectivity = %g, want capped 1", got)
	}
}
