package stream

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("new queue must be empty")
	}
	for i := 1; i <= 100; i++ {
		q.PushTuple(&Tuple{Seq: uint64(i)})
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 1; i <= 100; i++ {
		it := q.Pop()
		if it.IsPunct() || it.Tuple.Seq != uint64(i) {
			t.Fatalf("pop %d: got %v", i, it)
		}
	}
	if !q.Empty() {
		t.Fatal("queue must be empty after draining")
	}
}

func TestQueueInterleavedGrowth(t *testing.T) {
	// Exercise the ring buffer wrap-around: interleave pushes and pops so
	// head travels around the buffer during growth.
	q := NewQueue()
	next, expect := uint64(1), uint64(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.PushTuple(&Tuple{Seq: next})
			next++
		}
		for i := 0; i < 3; i++ {
			it := q.Pop()
			if it.Tuple.Seq != expect {
				t.Fatalf("round %d: got seq %d, want %d", round, it.Tuple.Seq, expect)
			}
			expect++
		}
	}
	for !q.Empty() {
		it := q.Pop()
		if it.Tuple.Seq != expect {
			t.Fatalf("drain: got seq %d, want %d", it.Tuple.Seq, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, pushed %d", expect-1, next-1)
	}
}

func TestQueueFIFOProperty(t *testing.T) {
	// Property: for any sequence of push/pop operations, pops return
	// pushed items in order.
	prop := func(ops []bool) bool {
		q := NewQueue()
		var pushed, popped uint64
		for _, push := range ops {
			if push || q.Empty() {
				pushed++
				q.PushTuple(&Tuple{Seq: pushed})
			} else {
				popped++
				if q.Pop().Tuple.Seq != popped {
					return false
				}
			}
		}
		for !q.Empty() {
			popped++
			if q.Pop().Tuple.Seq != popped {
				return false
			}
		}
		return popped == pushed
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQueuePunctuationAndCounts(t *testing.T) {
	q := NewQueue()
	q.PushTuple(&Tuple{Seq: 1})
	q.PushPunct(5 * Second)
	q.PushTuple(&Tuple{Seq: 2})
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if q.TupleCount() != 2 {
		t.Fatalf("TupleCount = %d, want 2 (punctuations are not tuples)", q.TupleCount())
	}
	if it := q.Peek(); it.IsPunct() {
		t.Fatal("first item should be the tuple")
	}
	q.Pop()
	it := q.Pop()
	if !it.IsPunct() || it.Punct != 5*Second {
		t.Fatalf("expected punct(5s), got %v", it)
	}
}

func TestQueueSnapshotOrder(t *testing.T) {
	q := NewQueue()
	for i := 1; i <= 5; i++ {
		q.PushTuple(&Tuple{Seq: uint64(i)})
	}
	q.Pop()
	q.PushTuple(&Tuple{Seq: 6})
	snap := q.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, it := range snap {
		if it.Tuple.Seq != uint64(i+2) {
			t.Fatalf("snapshot[%d] = seq %d, want %d", i, it.Tuple.Seq, i+2)
		}
	}
}

func TestQueuePopEmptyGuarded(t *testing.T) {
	q := NewQueue()
	if got := q.Pop(); got != (Item{}) {
		t.Fatalf("Pop on empty queue = %v, want the zero Item", got)
	}
	if got := q.Peek(); got != (Item{}) {
		t.Fatalf("Peek on empty queue = %v, want the zero Item", got)
	}
}

func TestItemString(t *testing.T) {
	if got := PunctItem(Second).String(); got != "punct(1.000000s)" {
		t.Errorf("punct string = %q", got)
	}
	if got := TupleItem(&Tuple{Stream: StreamB, Ord: 2}).String(); got != "b2" {
		t.Errorf("tuple item string = %q", got)
	}
}
