package stream

// SlabCap is the target number of items per batch slab of the concurrent
// executors. One slab handoff replaces SlabCap channel operations of a
// per-item scheme; see the pipeline package docs for why slab boundaries
// never affect results (FIFO order within and across slabs is the per-item
// order).
const SlabCap = 128

// Batcher accumulates items into slabs for channel handoff between
// goroutines, coalescing consecutive punctuations: on a FIFO edge punct(t1)
// followed immediately by punct(t2 >= t1) carries no extra information, so
// only the last of a run survives. Both the concurrent pipeline and the
// sharded executor batch their inter-goroutine edges with it.
//
// The zero value is ready to use. Not safe for concurrent use — a batcher
// belongs to the single goroutine that fills it.
type Batcher struct {
	buf []Item
}

// Add appends an item, merging it with a trailing punctuation run.
func (b *Batcher) Add(it Item) {
	if it.IsPunct() && len(b.buf) > 0 && b.buf[len(b.buf)-1].IsPunct() {
		b.buf[len(b.buf)-1] = it
		return
	}
	b.buf = append(b.buf, it)
}

// Full reports whether the slab reached its target size.
func (b *Batcher) Full() bool { return len(b.buf) >= SlabCap }

// Len returns the number of items currently buffered.
func (b *Batcher) Len() int { return len(b.buf) }

// Take seals and returns the current slab, leaving the batcher empty. It
// returns nil when nothing is buffered.
func (b *Batcher) Take() []Item {
	if len(b.buf) == 0 {
		return nil
	}
	out := b.buf
	b.buf = make([]Item, 0, SlabCap)
	return out
}

// TakeWith seals and returns the current slab like Take, but installs the
// spare slice (emptied, capacity kept) as the new backing array instead of
// allocating one. Executors recycle consumed slabs through it, keeping the
// steady state allocation-free; a nil spare behaves like Take's fresh
// allocation, deferred to the next Add.
func (b *Batcher) TakeWith(spare []Item) []Item {
	if len(b.buf) == 0 {
		return nil
	}
	out := b.buf
	b.buf = spare[:0]
	return out
}
