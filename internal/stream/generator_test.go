package stream

import (
	"math"
	"testing"
)

func TestGenerateValidation(t *testing.T) {
	bad := []GeneratorConfig{
		{RateA: 0, RateB: 10, Duration: Second},
		{RateA: 10, RateB: -1, Duration: Second},
		{RateA: 10, RateB: 10, Duration: 0},
		{RateA: 10, RateB: 10, Duration: Second, KeyDomain: -5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}

func TestGenerateGlobalOrderAndOrdinals(t *testing.T) {
	ts, err := Generate(GeneratorConfig{RateA: 50, RateB: 30, Duration: 30 * Second, KeyDomain: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Fatal("no tuples generated")
	}
	var ordA, ordB uint64
	for i, tp := range ts {
		if i > 0 && !ts[i-1].Before(tp) {
			t.Fatalf("tuple %d out of global order", i)
		}
		if tp.Seq != uint64(i+1) {
			t.Fatalf("Seq not dense at %d", i)
		}
		if tp.Time <= 0 || tp.Time > 30*Second {
			t.Fatalf("timestamp %s outside run duration", tp.Time)
		}
		if tp.Key < 0 || tp.Key >= 10 {
			t.Fatalf("key %d outside domain", tp.Key)
		}
		if tp.Value < 0 || tp.Value >= 1 {
			t.Fatalf("value %g outside [0,1)", tp.Value)
		}
		switch tp.Stream {
		case StreamA:
			ordA++
			if tp.Ord != ordA {
				t.Fatalf("stream A ordinal broken at seq %d", tp.Seq)
			}
		case StreamB:
			ordB++
			if tp.Ord != ordB {
				t.Fatalf("stream B ordinal broken at seq %d", tp.Seq)
			}
		}
	}
}

func TestGeneratePoissonRate(t *testing.T) {
	// Long run: empirical rate within a few percent of lambda.
	const (
		rate = 40.0
		dur  = 200 * Second
	)
	ts, err := Generate(GeneratorConfig{RateA: rate, RateB: rate, Duration: dur, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var na, nb int
	for _, tp := range ts {
		if tp.Stream == StreamA {
			na++
		} else {
			nb++
		}
	}
	wantN := rate * dur.ToSeconds()
	for name, n := range map[string]int{"A": na, "B": nb} {
		if math.Abs(float64(n)-wantN)/wantN > 0.05 {
			t.Errorf("stream %s: %d tuples, want about %.0f", name, n, wantN)
		}
	}
}

func TestGeneratePoissonInterArrivalCV(t *testing.T) {
	// Poisson inter-arrival times have coefficient of variation 1;
	// uniform arrivals have CV 0. This distinguishes the two modes.
	for _, mode := range []Arrival{Poisson, Uniform} {
		ts, err := Generate(GeneratorConfig{RateA: 50, RateB: 0.0001, Duration: 400 * Second, Seed: 3, Arrival: mode})
		if err != nil {
			t.Fatal(err)
		}
		var gaps []float64
		prev := Time(0)
		for _, tp := range ts {
			if tp.Stream != StreamA {
				continue
			}
			gaps = append(gaps, (tp.Time - prev).ToSeconds())
			prev = tp.Time
		}
		mean, varSum := 0.0, 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			varSum += (g - mean) * (g - mean)
		}
		cv := math.Sqrt(varSum/float64(len(gaps))) / mean
		switch mode {
		case Poisson:
			if cv < 0.85 || cv > 1.15 {
				t.Errorf("poisson CV = %.3f, want about 1", cv)
			}
		case Uniform:
			if cv > 0.05 {
				t.Errorf("uniform CV = %.3f, want about 0", cv)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GeneratorConfig{RateA: 20, RateB: 20, Duration: 10 * Second, KeyDomain: 5, Seed: 99}
	x, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != len(y) {
		t.Fatalf("lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i].Time != y[i].Time || x[i].Key != y[i].Key || x[i].Value != y[i].Value || x[i].Stream != y[i].Stream {
			t.Fatalf("tuple %d differs between identical-seed runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(GeneratorConfig{RateA: 20, RateB: 20, Duration: 10 * Second, Seed: 1})
	b, _ := Generate(GeneratorConfig{RateA: 20, RateB: 20, Duration: 10 * Second, Seed: 2})
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Time != b[i].Time {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestManualBuilder(t *testing.T) {
	var m ManualBuilder
	a1 := m.Add(StreamA, 1*Second)
	m.AddKeyed(StreamB, 2*Second, 7)
	m.AddValued(StreamA, 3*Second, 0.25)
	ts := m.Tuples()
	if len(ts) != 3 {
		t.Fatalf("len = %d", len(ts))
	}
	if a1.Ord != 1 || a1.String() != "a1" {
		t.Errorf("first A tuple = %v", a1)
	}
	if ts[1].Key != 7 || ts[1].Ord != 1 || ts[1].String() != "b1" {
		t.Errorf("keyed B tuple = %+v", ts[1])
	}
	if ts[2].Value != 0.25 || ts[2].Ord != 2 {
		t.Errorf("valued A tuple = %+v", ts[2])
	}
	for i := 1; i < 3; i++ {
		if !ts[i-1].Before(ts[i]) {
			t.Error("manual stream must be ordered")
		}
	}
}

func TestManualBuilderPanicsOutOfOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order manual stream must panic")
		}
	}()
	var m ManualBuilder
	m.Add(StreamA, 5*Second)
	m.Add(StreamB, 1*Second)
	m.Tuples()
}
