package stream

import "fmt"

// ID identifies one of the two input streams of a (shared) join. The paper
// calls them stream A (e.g. temperature sensors) and stream B (humidity).
type ID uint8

// The two input streams.
const (
	StreamA ID = 0
	StreamB ID = 1
)

// Other returns the opposite stream identifier.
func (id ID) Other() ID { return id ^ 1 }

// String returns "A" or "B".
func (id ID) String() string {
	if id == StreamA {
		return "A"
	}
	return "B"
}

// Role distinguishes the reference copies used by sliced binary window joins
// (Section 4.2 of the paper). A plain tuple is a source tuple before it is
// split; the male copy performs cross-purge, probe and propagate; the female
// copy fills the window states.
type Role uint8

// Tuple roles.
const (
	RolePlain Role = iota
	RoleMale
	RoleFemale
)

// String returns a short human-readable role name.
func (r Role) String() string {
	switch r {
	case RoleMale:
		return "male"
	case RoleFemale:
		return "female"
	default:
		return "plain"
	}
}

// Tuple is a stream element. Source tuples carry a join key and a selection
// attribute; joined result tuples instead reference the two source tuples
// they combine (copy-of-reference, as in the paper's CAPE implementation).
//
// Tuples are immutable once emitted by the generator; operators never modify
// a tuple in place, they wrap or reference it. The male/female copies of a
// source tuple share the same Seq and Time and differ only in Role.
type Tuple struct {
	// Time is the arrival timestamp assigned by the stream generator, or
	// max(Ta, Tb) for a joined result tuple.
	Time Time
	// Seq is a globally unique, strictly increasing sequence number that
	// breaks timestamp ties and gives the total order required by the
	// engine (Section 2: "timestamps of the tuples have a global
	// ordering").
	Seq uint64
	// Ord is the 1-based ordinal of the tuple within its own stream. It
	// names tuples in traces (a1, a2, ..., b1, ...) and drives count-based
	// window semantics, where the window holds the last N tuples.
	Ord uint64
	// Stream is the origin stream of a source tuple. Joined tuples keep
	// the stream of the probing (male) side for bookkeeping.
	Stream ID
	// Key is the equijoin attribute (e.g. LocationId in the paper's
	// motivating queries).
	Key int64
	// Value is the selection attribute (e.g. A.Value in query Q2),
	// uniformly distributed in [0,1) by the generator so that a threshold
	// predicate "Value >= 1-s" has selectivity exactly s.
	Value float64
	// Role marks male/female reference copies inside a sliced join chain.
	Role Role
	// Level is the lineage mark of Section 6.1: the index of the last
	// slice this tuple can contribute to, given the disjunction of the
	// pushed-down selection predicates. Zero means "not marked".
	Level int
	// CondMask records which per-query selection predicates the tuple
	// satisfies (bit i set means condition of query i holds). It lets the
	// plan evaluate each predicate once per tuple, as with the tuple
	// lineage of CACQ cited in Section 6.1.
	CondMask uint64
	// A and B reference the source tuples of a joined result (A from
	// stream A, B from stream B). Both are nil for source tuples.
	A, B *Tuple
}

// IsResult reports whether t is a joined result tuple.
func (t *Tuple) IsResult() bool { return t.A != nil && t.B != nil }

// WindowDiff returns |Ta - Tb| for a joined result tuple. The router
// operators dispatch results to queries by comparing this difference with the
// query window sizes.
func (t *Tuple) WindowDiff() Time { return AbsDiff(t.A.Time, t.B.Time) }

// Before reports whether t precedes u in the global stream order
// (lexicographic on Time then Seq).
func (t *Tuple) Before(u *Tuple) bool {
	if t.Time != u.Time {
		return t.Time < u.Time
	}
	return t.Seq < u.Seq
}

// WithRole returns a shallow copy of t with the given role. It implements
// the copy-of-reference scheme of Section 4.2: the copy shares Seq, Time and
// payload with the original.
func (t *Tuple) WithRole(r Role) *Tuple {
	c := *t
	c.Role = r
	return &c
}

// Joined builds the result tuple for the pair (a, b). The timestamp of the
// joined tuple is max(Ta, Tb) per Section 2, and its Seq is the Seq of the
// later tuple so that join outputs inherit the global order of the probing
// side.
func Joined(a, b *Tuple) *Tuple {
	ts := a.Time
	seq := a.Seq
	if b.Time > ts || (b.Time == ts && b.Seq > seq) {
		ts = b.Time
		seq = b.Seq
	}
	return &Tuple{Time: ts, Seq: seq, A: a, B: b}
}

// slabSize is the number of result tuples allocated per slab chunk. Large
// enough to amortize the allocation to a fraction of a malloc per result,
// small enough that a mostly-dead chunk pinned by one live result wastes
// little memory.
const slabSize = 256

// TupleSlab amortizes result-tuple allocations: joined tuples are carved out
// of chunks of slabSize tuples, so emitting a result costs 1/slabSize heap
// allocations instead of one. A chunk stays reachable while any tuple carved
// from it is; slabs therefore suit result tuples, which either flow to sinks
// together or die together. The zero value is ready to use. Not safe for
// concurrent use — give each operator (goroutine) its own slab.
type TupleSlab struct {
	chunk []Tuple
}

// Joined builds the result tuple for the pair (a, b) on the slab, with the
// same semantics as the package-level Joined.
func (s *TupleSlab) Joined(a, b *Tuple) *Tuple {
	if len(s.chunk) == 0 {
		s.chunk = make([]Tuple, slabSize)
	}
	t := &s.chunk[0]
	s.chunk = s.chunk[1:]
	ts := a.Time
	seq := a.Seq
	if b.Time > ts || (b.Time == ts && b.Seq > seq) {
		ts = b.Time
		seq = b.Seq
	}
	t.Time, t.Seq, t.A, t.B = ts, seq, a, b
	return t
}

// String renders a compact description used by traces and tests, e.g. "a3"
// for the third stream-A tuple or "(a1,b2)" for a joined result.
func (t *Tuple) String() string {
	if t == nil {
		return "<nil>"
	}
	if t.IsResult() {
		return fmt.Sprintf("(%s,%s)", t.A, t.B)
	}
	name := "a"
	if t.Stream == StreamB {
		name = "b"
	}
	return fmt.Sprintf("%s%d", name, t.Ord)
}
