package stream

import (
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"
)

// scriptedSource replays a fixed sequence of pull outcomes; a func entry may
// also panic to exercise the containment path.
type scriptedSource struct {
	steps []func() (*Tuple, error)
	calls int
}

func (s *scriptedSource) Next() (*Tuple, error) {
	if s.calls >= len(s.steps) {
		return nil, io.EOF
	}
	step := s.steps[s.calls]
	s.calls++
	return step()
}

func yield(seq uint64) func() (*Tuple, error) {
	return func() (*Tuple, error) { return &Tuple{Seq: seq}, nil }
}

func fail(err error) func() (*Tuple, error) {
	return func() (*Tuple, error) { return nil, err }
}

// noSleep replaces the backoff seam so tests record delays instead of
// sleeping through them.
func noSleep(r *RetrySource) *[]time.Duration {
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }
	return &slept
}

func TestRetryTransientRecovers(t *testing.T) {
	transient := errors.New("connection reset")
	src := &scriptedSource{steps: []func() (*Tuple, error){
		yield(1), fail(transient), fail(transient), yield(2), yield(3),
	}}
	r := NewRetrySource(src, RetryPolicy{MaxAttempts: 3})
	slept := noSleep(r)
	got, err := Collect(r)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(got) != 3 || got[0].Seq != 1 || got[1].Seq != 2 || got[2].Seq != 3 {
		t.Fatalf("collected %d tuples, want the full sequence 1..3", len(got))
	}
	if r.Retries() != 2 {
		t.Fatalf("Retries = %d, want 2", r.Retries())
	}
	if len(*slept) != 2 {
		t.Fatalf("backoff slept %d times, want 2", len(*slept))
	}
	if (*slept)[0] != DefaultRetryBaseDelay || (*slept)[1] != 2*DefaultRetryBaseDelay {
		t.Fatalf("backoff delays %v, want exponential from the base delay", *slept)
	}
}

func TestRetryBudgetExhaustedWrapsLastError(t *testing.T) {
	transient := errors.New("connection reset")
	src := &scriptedSource{steps: []func() (*Tuple, error){
		fail(transient), fail(transient), fail(transient),
	}}
	r := NewRetrySource(src, RetryPolicy{MaxAttempts: 3})
	noSleep(r)
	if _, err := r.Next(); !errors.Is(err, transient) {
		t.Fatalf("exhausted budget surfaced %v, want the last transient error wrapped", err)
	}
	// The failure sticks: the source does not silently resume.
	if _, err := r.Next(); !errors.Is(err, transient) {
		t.Fatalf("second Next after exhaustion returned %v, want the sticky error", err)
	}
	if src.calls != 3 {
		t.Fatalf("underlying source was pulled %d times, want exactly MaxAttempts", src.calls)
	}
}

func TestRetryTerminalImmediateAndSticky(t *testing.T) {
	permanent := errors.New("auth rejected")
	src := &scriptedSource{steps: []func() (*Tuple, error){
		fail(Terminal(permanent)), yield(1),
	}}
	r := NewRetrySource(src, RetryPolicy{MaxAttempts: 5})
	noSleep(r)
	if _, err := r.Next(); !errors.Is(err, permanent) || !IsTerminal(err) {
		t.Fatalf("Next = %v, want the Terminal-wrapped error", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("Retries = %d, want 0 (terminal errors never retry)", r.Retries())
	}
	if _, err := r.Next(); !errors.Is(err, permanent) {
		t.Fatalf("terminal error did not stick: %v", err)
	}
	if src.calls != 1 {
		t.Fatalf("underlying source was pulled %d times after a terminal error", src.calls)
	}
}

func TestRetryEOFIsTerminal(t *testing.T) {
	src := &scriptedSource{steps: nil}
	r := NewRetrySource(src, RetryPolicy{MaxAttempts: 5})
	noSleep(r)
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next = %v, want io.EOF untouched", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("Retries = %d; end-of-stream must not be retried", r.Retries())
	}
}

func TestRetryClassifyHook(t *testing.T) {
	flaky := errors.New("flaky")
	fatal := errors.New("fatal")
	classify := func(err error) bool { return errors.Is(err, flaky) }
	src := &scriptedSource{steps: []func() (*Tuple, error){
		fail(flaky), yield(1), fail(fatal), yield(2),
	}}
	r := NewRetrySource(src, RetryPolicy{MaxAttempts: 3, Classify: classify})
	noSleep(r)
	got, err := r.Next()
	if err != nil || got.Seq != 1 {
		t.Fatalf("Next after a classified-transient error = (%v, %v), want tuple 1", got, err)
	}
	if _, err := r.Next(); !errors.Is(err, fatal) {
		t.Fatalf("Next = %v, want the classified-terminal error immediately", err)
	}
	if src.calls != 3 {
		t.Fatalf("underlying source was pulled %d times, want 3 (no retry of the fatal error)", src.calls)
	}
}

func TestRetryPanicContainedAndRetried(t *testing.T) {
	src := &scriptedSource{steps: []func() (*Tuple, error){
		func() (*Tuple, error) { panic("pull blew up") }, yield(7),
	}}
	r := NewRetrySource(src, RetryPolicy{MaxAttempts: 2})
	noSleep(r)
	got, err := r.Next()
	if err != nil || got.Seq != 7 {
		t.Fatalf("Next after a contained panic = (%v, %v), want tuple 7", got, err)
	}
	if r.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", r.Retries())
	}
}

func TestRetryBackoffCapAndJitter(t *testing.T) {
	pol := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	r := NewRetrySource(&scriptedSource{}, pol)
	for attempt, want := range map[int]time.Duration{
		1: time.Millisecond, 2: 2 * time.Millisecond,
		3: 4 * time.Millisecond, 4: 4 * time.Millisecond, // capped
	} {
		if got := r.backoff(attempt); got != want {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	jittered := NewRetrySource(&scriptedSource{}, RetryPolicy{
		BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: 0.5,
	})
	for attempt := 1; attempt <= 4; attempt++ {
		full := r.backoff(attempt)
		d := jittered.backoff(attempt)
		if d > full || d < full/2 {
			t.Errorf("jittered backoff(%d) = %v, want within [%v, %v]", attempt, d, full/2, full)
		}
	}
}

func TestRetryTimeoutDeliversLateSuccess(t *testing.T) {
	release := make(chan struct{})
	slow := &scriptedSource{steps: []func() (*Tuple, error){
		func() (*Tuple, error) { <-release; return &Tuple{Seq: 9}, nil },
	}}
	r := NewRetrySource(slow, RetryPolicy{MaxAttempts: 3, Timeout: 5 * time.Millisecond})
	var timedOut bool
	r.sleep = func(time.Duration) {
		// Between attempts, let the abandoned pull finish so the next
		// attempt consumes its late result instead of re-pulling.
		if !timedOut {
			timedOut = true
			close(release)
		}
	}
	defer r.Close()
	got, err := r.Next()
	if err != nil || got.Seq != 9 {
		t.Fatalf("Next = (%v, %v), want the late tuple delivered", got, err)
	}
	if r.Timeouts() == 0 {
		t.Fatal("Timeouts = 0; the slow first attempt should have timed out")
	}
	if slow.calls != 1 {
		t.Fatalf("underlying source was pulled %d times; the outstanding pull must be reused", slow.calls)
	}
}

func TestRetryTimeoutBudgetExhausted(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	stuck := &scriptedSource{steps: []func() (*Tuple, error){
		func() (*Tuple, error) { <-release; return nil, io.EOF },
	}}
	r := NewRetrySource(stuck, RetryPolicy{MaxAttempts: 2, Timeout: 2 * time.Millisecond})
	noSleep(r)
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrPullTimeout) {
		t.Fatalf("Next = %v, want the pull-timeout error after an exhausted budget", err)
	}
	if r.Timeouts() != 2 {
		t.Fatalf("Timeouts = %d, want one per attempt", r.Timeouts())
	}
}

func TestRetryCloseIdempotentAndReleasesWorker(t *testing.T) {
	before := runtime.NumGoroutine()
	src := &scriptedSource{steps: []func() (*Tuple, error){yield(1)}}
	r := NewRetrySource(src, RetryPolicy{Timeout: time.Second})
	if got, err := r.Next(); err != nil || got.Seq != 1 {
		t.Fatalf("Next = (%v, %v)", got, err)
	}
	r.Close()
	r.Close() // idempotent
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("worker goroutine leaked: %d running, started with %d", now, before)
	}
}

func TestRetrySyncPathSpawnsNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	src := &scriptedSource{steps: []func() (*Tuple, error){yield(1), yield(2)}}
	r := NewRetrySource(src, RetryPolicy{}) // no Timeout: purely synchronous
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("synchronous retry spawned goroutines: %d running, started with %d", now, before)
	}
	r.Close()
}

// Ensure the error text of an exhausted budget names the attempt count, so
// operators can tune MaxAttempts from the log line alone.
func TestRetryExhaustionMessage(t *testing.T) {
	src := &scriptedSource{steps: []func() (*Tuple, error){
		fail(errors.New("x")), fail(errors.New("x")),
	}}
	r := NewRetrySource(src, RetryPolicy{MaxAttempts: 2})
	noSleep(r)
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "2 attempts") {
		t.Fatalf("error %v does not name the attempt budget", err)
	}
}
