package stream

import "fmt"

// JoinPredicate decides whether a pair of source tuples joins. The paper
// presents its techniques with equijoins but notes they apply to any join
// condition (Section 2); the engine is likewise predicate-agnostic.
//
// Implementations must be deterministic functions of the two tuples so that
// every sharing strategy produces the identical result set for the same
// input streams — the equivalence tests depend on it.
type JoinPredicate interface {
	// Match reports whether tuples a (stream A) and b (stream B) join.
	Match(a, b *Tuple) bool
	// String describes the predicate.
	String() string
}

// Equijoin matches tuples with equal Key attributes, like the
// A.LocationId = B.LocationId condition of the motivating queries. With keys
// drawn uniformly from a domain of size D the join selectivity is 1/D.
type Equijoin struct{}

// Match implements JoinPredicate.
func (Equijoin) Match(a, b *Tuple) bool { return a.Key == b.Key }

// String implements JoinPredicate.
func (Equijoin) String() string { return "A.Key = B.Key" }

// KeyPartitioner is optionally implemented by join predicates whose matches
// imply equal Key attributes. For such predicates, hash-partitioning both
// streams by Key yields fully independent sub-joins: a pair split across
// partitions can never match, so a sharded executor loses no results.
// Equijoin is recognized without implementing the interface; custom
// predicates opt in by returning true.
type KeyPartitioner interface {
	// PartitionableByKey reports whether Match(a, b) implies
	// a.Key == b.Key.
	PartitionableByKey() bool
}

// PartitionableByKey reports whether the join predicate is an equijoin on
// Tuple.Key (or declares itself key-partitionable), the precondition for
// key-range sharded execution.
func PartitionableByKey(j JoinPredicate) bool {
	if kp, ok := j.(KeyPartitioner); ok {
		return kp.PartitionableByKey()
	}
	_, ok := j.(Equijoin)
	return ok
}

// BandJoin matches tuples whose Key attributes lie within a fixed distance
// of each other: |A.Key - B.Key| <= B. Band predicates cover proximity
// queries the equijoin cannot express — "sensors within one grid cell of
// each other", "trades within a price tick" — while still bounding how far
// apart a matching pair's keys can be, which is exactly the property the
// sharded executor's contiguous range partitioner exploits (replicate
// tuples within B of a range boundary to the neighboring shard and no pair
// is ever split; see internal/shard and DESIGN.md "Sharded execution:
// ownership rules"). B = 0 degenerates to the equijoin: only equal keys
// match.
type BandJoin struct {
	// B is the maximum key distance of a matching pair; negative matches
	// nothing.
	B int64
}

// Match implements JoinPredicate.
func (j BandJoin) Match(a, b *Tuple) bool {
	if j.B < 0 {
		return false
	}
	// Unsigned distance: exact for the full int64 key range, where the
	// signed difference could overflow.
	var d uint64
	if a.Key >= b.Key {
		d = uint64(a.Key) - uint64(b.Key)
	} else {
		d = uint64(b.Key) - uint64(a.Key)
	}
	return d <= uint64(j.B)
}

// String implements JoinPredicate.
func (j BandJoin) String() string { return fmt.Sprintf("|A.Key - B.Key| <= %d", j.B) }

// PartitionableByBand implements BandPartitioner.
func (j BandJoin) PartitionableByBand() (int64, bool) { return j.B, j.B >= 0 }

// BandPartitioner is optionally implemented by join predicates whose matches
// imply a bounded key distance. For such predicates, partitioning both
// streams into contiguous key ranges and replicating each tuple to every
// range within distance B of its key keeps all matching pairs co-located on
// the owner shard of the probing tuple's key, so a sharded executor loses no
// results (and suppresses the boundary duplicates the replication creates;
// see internal/shard). BandJoin implements the interface; custom predicates
// opt in by returning their bound and true.
type BandPartitioner interface {
	// PartitionableByBand returns (B, true) when Match(a, b) implies
	// |a.Key - b.Key| <= B, and (_, false) when the predicate offers no
	// such bound.
	PartitionableByBand() (int64, bool)
}

// PartitionableByBand reports the join predicate's band bound, if it
// declares one: the precondition for band-partitioned sharded execution.
// Key-partitionable predicates (PartitionableByKey) are the B = 0 special
// case but are handled by the cheaper hash partitioner instead.
func PartitionableByBand(j JoinPredicate) (int64, bool) {
	if bp, ok := j.(BandPartitioner); ok {
		return bp.PartitionableByBand()
	}
	return 0, false
}

// CrossProduct matches every pair. Table 2 of the paper uses Cartesian
// product semantics for its execution trace.
type CrossProduct struct{}

// Match implements JoinPredicate.
func (CrossProduct) Match(a, b *Tuple) bool { return true }

// String implements JoinPredicate.
func (CrossProduct) String() string { return "true" }

// FractionMatch matches a deterministic pseudo-random fraction S of all
// pairs: P(match) = S exactly in expectation, independently for each pair.
//
// The paper's experiments fix the join selectivity S1 at values such as
// 0.025, 0.1 and 0.4 that a uniform equijoin cannot realise (it only gives
// 1/D). FractionMatch hashes the pair of sequence numbers, so the decision is
// stable across sharing strategies and runs — a substitution documented in
// DESIGN.md ("The FractionMatch substitution") that preserves the
// nested-loop probing work exactly.
type FractionMatch struct {
	// S is the join selectivity in [0,1].
	S float64
}

// Match implements JoinPredicate.
func (f FractionMatch) Match(a, b *Tuple) bool {
	return pairUniform(a.Seq, b.Seq) < f.S
}

// String implements JoinPredicate.
func (f FractionMatch) String() string { return fmt.Sprintf("match(S1=%g)", f.S) }

// pairUniform maps an unordered pair of sequence numbers to a uniform
// float64 in [0,1) using a splitmix64-style finalizer.
func pairUniform(x, y uint64) float64 {
	z := x*0x9E3779B97F4A7C15 + y*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Predicate is a selection predicate over a single tuple, such as
// "A.Value > Threshold" in query Q2 of the paper.
type Predicate interface {
	// Eval reports whether the tuple satisfies the predicate.
	Eval(t *Tuple) bool
	// Selectivity returns the fraction of generator tuples expected to
	// pass, used by the analytical cost model.
	Selectivity() float64
	// String describes the predicate.
	String() string
}

// Threshold is the predicate Value >= 1-S, which has selectivity exactly S
// for the generator's uniform [0,1) Value attribute. Threshold predicates
// are nested: a lower-selectivity threshold implies every higher one, so the
// disjunction that Section 6.1 pushes between slices is itself a Threshold.
type Threshold struct {
	// S is the selectivity in [0,1].
	S float64
}

// Eval implements Predicate.
func (p Threshold) Eval(t *Tuple) bool { return t.Value >= 1-p.S }

// Selectivity implements Predicate.
func (p Threshold) Selectivity() float64 { return p.S }

// String implements Predicate.
func (p Threshold) String() string { return fmt.Sprintf("Value >= %.3f", 1-p.S) }

// True is the always-true predicate (a query without a WHERE filter).
type True struct{}

// Eval implements Predicate.
func (True) Eval(t *Tuple) bool { return true }

// Selectivity implements Predicate.
func (True) Selectivity() float64 { return 1 }

// String implements Predicate.
func (True) String() string { return "true" }

// Or is the disjunction of predicates, used for the merged filters sigma'_i
// of Section 6.1 (cond_i OR cond_{i+1} OR ... OR cond_N).
type Or []Predicate

// Eval implements Predicate.
func (o Or) Eval(t *Tuple) bool {
	for _, p := range o {
		if p.Eval(t) {
			return true
		}
	}
	return false
}

// Selectivity implements Predicate. For nested Threshold members the
// disjunction selectivity is the maximum member selectivity; for other
// members it falls back to the union upper bound capped at 1, which the cost
// model documents as an approximation.
func (o Or) Selectivity() float64 {
	allThresh := true
	maxSel, sum := 0.0, 0.0
	for _, p := range o {
		s := p.Selectivity()
		if s > maxSel {
			maxSel = s
		}
		sum += s
		if _, ok := p.(Threshold); !ok {
			allThresh = false
		}
	}
	if allThresh {
		return maxSel
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// String implements Predicate.
func (o Or) String() string {
	s := ""
	for i, p := range o {
		if i > 0 {
			s += " OR "
		}
		s += p.String()
	}
	if s == "" {
		return "false"
	}
	return s
}
