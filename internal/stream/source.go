package stream

import "io"

// Source produces the merged input of both streams incrementally, in global
// timestamp order. It is the streaming counterpart of a pre-materialized
// []*Tuple batch: the engine and the concurrent pipeline pull one tuple at a
// time, so inputs may be unbounded (a live channel, a generator) without the
// whole workload ever residing in memory.
//
// Next returns io.EOF when the source is exhausted; any other error aborts
// the run. Tuples must carry non-decreasing timestamps, which the consuming
// session enforces.
type Source interface {
	Next() (*Tuple, error)
}

// Sized is implemented by sources that know their total tuple count up
// front; the engine uses it to size warm-up windows for memory statistics.
type Sized interface {
	Len() int
}

// SliceSource adapts a pre-materialized tuple batch to the Source interface.
type SliceSource struct {
	tuples []*Tuple
	next   int
}

// NewSliceSource wraps a batch of tuples (in global timestamp order).
func NewSliceSource(tuples []*Tuple) *SliceSource {
	return &SliceSource{tuples: tuples}
}

// Next implements Source.
func (s *SliceSource) Next() (*Tuple, error) {
	if s.next >= len(s.tuples) {
		return nil, io.EOF
	}
	t := s.tuples[s.next]
	s.next++
	return t, nil
}

// Len implements Sized.
func (s *SliceSource) Len() int { return len(s.tuples) }

// ChanSource adapts a tuple channel to the Source interface: the source is
// exhausted when the channel is closed. A nil tuple received from the
// channel is skipped, so producers may use it as a keep-alive.
type ChanSource struct {
	ch <-chan *Tuple
}

// NewChanSource wraps a channel of tuples (in global timestamp order).
func NewChanSource(ch <-chan *Tuple) *ChanSource {
	return &ChanSource{ch: ch}
}

// Next implements Source.
func (s *ChanSource) Next() (*Tuple, error) {
	for t := range s.ch {
		if t != nil {
			return t, nil
		}
	}
	return nil, io.EOF
}

// Collect drains a source into a batch — the inverse of NewSliceSource,
// useful for tests and for feeding legacy batch APIs from a source.
func Collect(src Source) ([]*Tuple, error) {
	var out []*Tuple
	for {
		t, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}
