package stream

import (
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Arrival selects the inter-arrival time distribution of the synthetic
// stream generator.
type Arrival uint8

const (
	// Poisson arrivals: exponential inter-arrival times, the pattern used
	// by the paper's experiments (Section 7.1).
	Poisson Arrival = iota
	// Uniform arrivals: deterministic spacing of exactly 1/rate, useful
	// for validating the analytical cost model without sampling noise.
	Uniform
)

// String names the arrival pattern.
func (a Arrival) String() string {
	if a == Uniform {
		return "uniform"
	}
	return "poisson"
}

// GeneratorConfig parameterises the synthetic stream generator that stands in
// for the paper's CAPE data generator.
type GeneratorConfig struct {
	// RateA and RateB are the mean arrival rates lambda_A and lambda_B in
	// tuples per (virtual) second. The paper sweeps 20..80 tuples/sec.
	RateA, RateB float64
	// Duration is the virtual length of the run; the paper runs its
	// generator for 90 seconds.
	Duration Time
	// KeyDomain is the size of the uniform equijoin key domain; tuples
	// get Key in [0, KeyDomain). Zero disables keys (Key stays 0).
	KeyDomain int64
	// Arrival selects Poisson (default) or Uniform inter-arrival times.
	Arrival Arrival
	// Seed seeds the deterministic random source so every strategy
	// processes the same input.
	Seed int64
}

// Validate reports a configuration error, if any.
func (c GeneratorConfig) Validate() error {
	if c.RateA <= 0 || c.RateB <= 0 {
		return fmt.Errorf("stream: generator rates must be positive (got A=%g, B=%g)", c.RateA, c.RateB)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("stream: generator duration must be positive (got %s)", c.Duration)
	}
	if c.KeyDomain < 0 {
		return fmt.Errorf("stream: key domain must be non-negative (got %d)", c.KeyDomain)
	}
	return nil
}

// Generate produces the merged input of both streams in global timestamp
// order, with strictly increasing Seq and per-stream ordinals starting at 1.
// It materializes the full run of a GeneratorSource; streaming consumers
// should pull from NewGeneratorSource directly instead.
func Generate(cfg GeneratorConfig) ([]*Tuple, error) {
	src, err := NewGeneratorSource(cfg)
	if err != nil {
		return nil, err
	}
	return Collect(src)
}

// GeneratorSource produces the synthetic Poisson (or uniform) workload one
// tuple at a time. It yields exactly the sequence Generate materializes for
// the same configuration, so streaming and batch runs are comparable
// tuple for tuple.
type GeneratorSource struct {
	cfg          GeneratorConfig
	rng          *rand.Rand
	nextA, nextB Time
	seq          uint64
	ordA, ordB   uint64
}

// NewGeneratorSource validates the configuration and prepares the stream.
func NewGeneratorSource(cfg GeneratorConfig) (*GeneratorSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &GeneratorSource{
		cfg:   cfg,
		rng:   rng,
		nextA: nextArrival(rng, cfg.Arrival, cfg.RateA, 0),
		nextB: nextArrival(rng, cfg.Arrival, cfg.RateB, 0),
	}, nil
}

// Next implements Source.
func (g *GeneratorSource) Next() (*Tuple, error) {
	for g.nextA <= g.cfg.Duration || g.nextB <= g.cfg.Duration {
		var (
			id ID
			ts Time
		)
		if g.nextA <= g.nextB {
			id, ts = StreamA, g.nextA
			g.nextA = nextArrival(g.rng, g.cfg.Arrival, g.cfg.RateA, g.nextA)
		} else {
			id, ts = StreamB, g.nextB
			g.nextB = nextArrival(g.rng, g.cfg.Arrival, g.cfg.RateB, g.nextB)
		}
		if ts > g.cfg.Duration {
			continue
		}
		g.seq++
		t := &Tuple{Time: ts, Seq: g.seq, Stream: id, Value: g.rng.Float64()}
		if id == StreamA {
			g.ordA++
			t.Ord = g.ordA
		} else {
			g.ordB++
			t.Ord = g.ordB
		}
		if g.cfg.KeyDomain > 0 {
			t.Key = g.rng.Int63n(g.cfg.KeyDomain)
		}
		return t, nil
	}
	return nil, io.EOF
}

// nextArrival returns the arrival time following prev for the given rate.
func nextArrival(rng *rand.Rand, a Arrival, rate float64, prev Time) Time {
	var gapSec float64
	switch a {
	case Uniform:
		gapSec = 1 / rate
	default:
		gapSec = rng.ExpFloat64() / rate
	}
	gap := Time(math.Ceil(gapSec * float64(Second)))
	if gap < 1 {
		gap = 1 // keep timestamps strictly increasing per stream
	}
	return prev + gap
}

// ManualBuilder constructs small hand-written streams for tests and traces,
// such as the a1..a4, b1, b2 sequence of Table 2 in the paper.
type ManualBuilder struct {
	seq  uint64
	ords [2]uint64
	out  []*Tuple
}

// Add appends a tuple of the given stream at the given time and returns it.
func (m *ManualBuilder) Add(id ID, at Time) *Tuple {
	m.seq++
	m.ords[id]++
	t := &Tuple{Time: at, Seq: m.seq, Stream: id, Ord: m.ords[id]}
	m.out = append(m.out, t)
	return t
}

// AddKeyed appends a tuple with an explicit join key.
func (m *ManualBuilder) AddKeyed(id ID, at Time, key int64) *Tuple {
	t := m.Add(id, at)
	t.Key = key
	return t
}

// AddValued appends a tuple with an explicit selection attribute.
func (m *ManualBuilder) AddValued(id ID, at Time, value float64) *Tuple {
	t := m.Add(id, at)
	t.Value = value
	return t
}

// Tuples returns the stream built so far, in insertion order. Callers must
// insert in timestamp order; Tuples validates and panics otherwise, because a
// mis-ordered manual stream is a test-authoring bug.
func (m *ManualBuilder) Tuples() []*Tuple {
	for i := 1; i < len(m.out); i++ {
		if m.out[i].Time < m.out[i-1].Time {
			panic(fmt.Sprintf("stream: manual stream out of order at index %d", i))
		}
	}
	return m.out
}
