package stream

import (
	"errors"
	"fmt"
	"io"
	"time"

	"stateslice/internal/fault"
)

// RetrySource wraps a Source so that transient pull failures — a flaky
// network producer, a timed-out fetch, even a panicking Next — no longer
// abort the session that consumes it. Each pull retries with exponential
// backoff and bounded jitter until the attempt budget is exhausted or the
// error classifies as terminal; io.EOF is always terminal (it is the
// end-of-stream contract, not a failure).
//
// With RetryPolicy.Timeout set, each attempt is bounded: the underlying
// Next runs on a dedicated worker goroutine and an attempt that exceeds the
// timeout counts as a transient failure. The abandoned pull keeps running —
// Go cannot interrupt it — and its eventual result is consumed by a later
// attempt, so a late success is delivered, never dropped. Without a timeout
// the retry loop is purely synchronous and spawns nothing.
//
// Like every Source, a RetrySource is driven by one goroutine.
type RetrySource struct {
	src Source
	pol RetryPolicy

	rng   uint64              // splitmix64 state for deterministic jitter
	sleep func(time.Duration) // test seam; time.Sleep by default

	// Asynchronous pull plumbing, created lazily when Timeout > 0.
	req     chan struct{}
	resp    chan pullResult
	done    chan struct{}
	pending bool // a request is outstanding on the worker (timed out earlier)

	failed error // sticky terminal error
	closed bool

	retries  uint64
	timeouts uint64
}

// RetryPolicy tunes a RetrySource. The zero value is usable: up to
// DefaultRetryAttempts synchronous attempts per pull with the default
// backoff and no per-attempt timeout.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per pull, including the
	// first. Zero or negative selects DefaultRetryAttempts.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. Zero selects DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero selects DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// Jitter is the fraction of each backoff delay that is randomized
	// away, in [0, 1]: a retry sleeps between (1-Jitter)*delay and delay.
	// Zero means deterministic full delays. The jitter stream is seeded
	// deterministically, so runs are reproducible.
	Jitter float64
	// Timeout bounds each attempt. Zero means unbounded synchronous pulls
	// (no worker goroutine is spawned).
	Timeout time.Duration
	// Classify reports whether an error is transient (retryable). When
	// nil, every error is transient except io.EOF and errors wrapped by
	// Terminal, which always classify terminal regardless of Classify.
	Classify func(error) bool
}

// Defaults of the zero RetryPolicy.
const (
	DefaultRetryAttempts  = 4
	DefaultRetryBaseDelay = time.Millisecond
	DefaultRetryMaxDelay  = 100 * time.Millisecond
)

// ErrPullTimeout is the transient error a timed-out pull attempt records;
// it surfaces (wrapped) only when the attempt budget is exhausted before
// any attempt completes.
var ErrPullTimeout = errors.New("stream: source pull timed out")

// terminalError marks an error as terminal for retry classification.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return "terminal: " + e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// Terminal wraps err so a RetrySource gives up immediately instead of
// retrying: sources return Terminal(err) for permanent failures (auth
// rejection, malformed stream) that retrying cannot fix.
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// IsTerminal reports whether err (or an error it wraps) was marked with
// Terminal.
func IsTerminal(err error) bool {
	var te *terminalError
	return errors.As(err, &te)
}

type pullResult struct {
	t   *Tuple
	err error
}

// NewRetrySource wraps src with the given retry policy.
func NewRetrySource(src Source, pol RetryPolicy) *RetrySource {
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = DefaultRetryAttempts
	}
	if pol.BaseDelay <= 0 {
		pol.BaseDelay = DefaultRetryBaseDelay
	}
	if pol.MaxDelay <= 0 {
		pol.MaxDelay = DefaultRetryMaxDelay
	}
	if pol.Jitter < 0 {
		pol.Jitter = 0
	}
	if pol.Jitter > 1 {
		pol.Jitter = 1
	}
	return &RetrySource{src: src, pol: pol, rng: 0x9e3779b97f4a7c15, sleep: time.Sleep}
}

// Next implements Source: it pulls from the wrapped source, retrying
// transient failures per the policy. A terminal error (io.EOF, a
// Terminal-wrapped error, or one the Classify hook rejects) is returned
// immediately and sticks: every later Next returns it again.
func (r *RetrySource) Next() (*Tuple, error) {
	if r.failed != nil {
		return nil, r.failed
	}
	if r.closed {
		return nil, io.EOF
	}
	var last error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.retries++
			r.sleep(r.backoff(attempt))
		}
		t, err := r.pull()
		if err == nil {
			return t, nil
		}
		if r.terminal(err) {
			r.failed = err
			return nil, err
		}
		last = err
	}
	r.failed = fmt.Errorf("stream: source retry budget exhausted after %d attempts: %w", r.pol.MaxAttempts, last)
	return nil, r.failed
}

// Retries returns how many retry attempts (beyond each pull's first) the
// source has performed.
func (r *RetrySource) Retries() uint64 { return r.retries }

// Timeouts returns how many attempts exceeded the policy timeout.
func (r *RetrySource) Timeouts() uint64 { return r.timeouts }

// Close releases the timeout worker, if one was spawned. A pull already in
// flight on the worker finishes (and is discarded) before the goroutine
// exits; Close does not wait for it. Close is idempotent and the source
// reports io.EOF afterwards.
func (r *RetrySource) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.done != nil {
		close(r.done)
	}
}

// terminal classifies an error: io.EOF and Terminal-wrapped errors are
// always terminal; otherwise the Classify hook decides (nil hook: every
// other error is transient).
func (r *RetrySource) terminal(err error) bool {
	if errors.Is(err, io.EOF) || IsTerminal(err) {
		return true
	}
	if errors.Is(err, ErrPullTimeout) {
		return false // the wrapper's own timeout is transient by definition
	}
	if r.pol.Classify != nil {
		return !r.pol.Classify(err)
	}
	return false
}

// pull performs one attempt: synchronous when no timeout is configured,
// through the worker goroutine otherwise.
func (r *RetrySource) pull() (*Tuple, error) {
	if r.pol.Timeout <= 0 {
		return r.call()
	}
	if r.req == nil {
		r.req = make(chan struct{})
		r.resp = make(chan pullResult, 1)
		r.done = make(chan struct{})
		go r.worker()
	}
	// A previous attempt may have timed out with its pull still running:
	// don't issue a second request, wait for the outstanding one — its
	// (late) result is this attempt's result.
	if !r.pending {
		r.req <- struct{}{}
		r.pending = true
	}
	timer := time.NewTimer(r.pol.Timeout)
	defer timer.Stop()
	select {
	case res := <-r.resp:
		r.pending = false
		return res.t, res.err
	case <-timer.C:
		r.timeouts++
		return nil, fmt.Errorf("attempt exceeded %v: %w", r.pol.Timeout, ErrPullTimeout)
	}
}

// call invokes the wrapped source once, containing panics into the fault
// taxonomy (same "source pull" boundary the engine's feed loop uses).
func (r *RetrySource) call() (t *Tuple, err error) {
	defer func() {
		if v := recover(); v != nil {
			t, err = nil, fault.Capture("source pull", -1, v)
		}
	}()
	return r.src.Next()
}

// worker serves pull requests for the timeout path. It holds no locks and
// owns nothing shared; the resp channel's buffer of one slot is enough
// because at most one request is ever outstanding.
func (r *RetrySource) worker() {
	for {
		select {
		case <-r.done:
			return
		case <-r.req:
			t, err := r.call()
			select {
			case r.resp <- pullResult{t: t, err: err}:
			case <-r.done:
				return
			}
		}
	}
}

// backoff computes the delay before the attempt-th attempt (attempt >= 1):
// exponential from BaseDelay, capped at MaxDelay, with up to Jitter of the
// delay removed by a deterministic splitmix64 draw.
func (r *RetrySource) backoff(attempt int) time.Duration {
	d := r.pol.BaseDelay
	for i := 1; i < attempt && d < r.pol.MaxDelay; i++ {
		d *= 2
	}
	if d > r.pol.MaxDelay {
		d = r.pol.MaxDelay
	}
	if r.pol.Jitter > 0 {
		r.rng += 0x9e3779b97f4a7c15
		z := r.rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		u := float64(z>>11) / (1 << 53)
		d = time.Duration(float64(d) * (1 - r.pol.Jitter*u))
	}
	return d
}
