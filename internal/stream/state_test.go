package stream

import (
	"testing"
	"testing/quick"
)

func TestStateInsertPopFront(t *testing.T) {
	s := NewState()
	for i := 1; i <= 40; i++ {
		s.Insert(&Tuple{Seq: uint64(i)})
	}
	if s.Len() != 40 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Front().Seq != 1 || s.Back().Seq != 40 {
		t.Fatal("Front/Back wrong")
	}
	for i := 1; i <= 40; i++ {
		if got := s.PopFront().Seq; got != uint64(i) {
			t.Fatalf("PopFront %d: got %d", i, got)
		}
	}
	if s.Front() != nil || s.Back() != nil {
		t.Fatal("Front/Back of empty state must be nil")
	}
}

func TestStateAtAndSnapshot(t *testing.T) {
	s := NewState()
	for i := 1; i <= 20; i++ {
		s.Insert(&Tuple{Seq: uint64(i)})
	}
	for i := 0; i < 6; i++ {
		s.PopFront()
	}
	for i := 21; i <= 30; i++ {
		s.Insert(&Tuple{Seq: uint64(i)}) // force wrap-around
	}
	snap := s.Snapshot()
	if len(snap) != 24 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, tp := range snap {
		if tp.Seq != uint64(i+7) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, tp.Seq, i+7)
		}
		if s.At(i) != tp {
			t.Fatalf("At(%d) disagrees with snapshot", i)
		}
	}
}

func TestStateClear(t *testing.T) {
	s := NewState().WithIndex()
	for i := 0; i < 10; i++ {
		s.Insert(&Tuple{Seq: uint64(i), Key: int64(i % 3)})
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear must empty the state")
	}
	if got := s.Bucket(0); len(got) != 0 {
		t.Fatal("Clear must reset the index")
	}
	s.Insert(&Tuple{Seq: 99, Key: 5})
	if len(s.Bucket(5)) != 1 {
		t.Fatal("state must be reusable after Clear")
	}
}

func TestStateIndexTracksMembership(t *testing.T) {
	s := NewState().WithIndex()
	if !s.Indexed() {
		t.Fatal("WithIndex must enable the index")
	}
	tuples := make([]*Tuple, 30)
	for i := range tuples {
		tuples[i] = &Tuple{Seq: uint64(i + 1), Key: int64(i % 5)}
		s.Insert(tuples[i])
	}
	if got := len(s.Bucket(2)); got != 6 {
		t.Fatalf("bucket 2 size = %d, want 6", got)
	}
	// Pop the first 10; buckets must shrink in arrival order.
	for i := 0; i < 10; i++ {
		s.PopFront()
	}
	for key := int64(0); key < 5; key++ {
		b := s.Bucket(key)
		if len(b) != 4 {
			t.Fatalf("bucket %d size = %d, want 4", key, len(b))
		}
		for _, tp := range b {
			if tp.Seq <= 10 {
				t.Fatalf("bucket %d still holds popped tuple seq %d", key, tp.Seq)
			}
		}
	}
}

func TestStateWithIndexBackfills(t *testing.T) {
	s := NewState()
	for i := 0; i < 8; i++ {
		s.Insert(&Tuple{Seq: uint64(i + 1), Key: int64(i % 2)})
	}
	s.WithIndex()
	if got := len(s.Bucket(1)); got != 4 {
		t.Fatalf("backfilled bucket size = %d, want 4", got)
	}
}

func TestStateAppendAllPreservesOrder(t *testing.T) {
	a, b := NewState(), NewState()
	for i := 1; i <= 3; i++ {
		a.Insert(&Tuple{Seq: uint64(i)})
	}
	for i := 4; i <= 6; i++ {
		b.Insert(&Tuple{Seq: uint64(i)})
	}
	a.AppendAll(b)
	if b.Len() != 0 {
		t.Fatal("AppendAll must drain the source")
	}
	if a.Len() != 6 {
		t.Fatalf("merged len = %d", a.Len())
	}
	for i := 0; i < 6; i++ {
		if a.At(i).Seq != uint64(i+1) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestStateFIFOProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		s := NewState()
		var in, out uint64
		for _, ins := range ops {
			if ins || s.Len() == 0 {
				in++
				s.Insert(&Tuple{Seq: in})
			} else {
				out++
				if s.PopFront().Seq != out {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStatePopEmptyGuarded(t *testing.T) {
	if got := NewState().PopFront(); got != nil {
		t.Fatalf("PopFront on empty state = %v, want nil", got)
	}
}
