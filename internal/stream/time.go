// Package stream provides the data-stream substrate used by the state-slice
// engine: tuples with global timestamp order, FIFO queues carrying tuples and
// punctuations, window state deques, synthetic stream generation with Poisson
// arrivals, and the join/selection predicates used by the operators.
//
// The package corresponds to the runtime layer of the CAPE system in which
// the VLDB'06 paper "State-Slice: New Paradigm of Multi-query Optimization of
// Window-based Stream Queries" was implemented. Timestamps are virtual: the
// generator assigns arrival times drawn from a Poisson process and the engine
// processes tuples in timestamp order without sleeping, so a 90-second
// experiment completes in milliseconds of wall-clock time.
package stream

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp measured in integer microseconds. All window
// sizes and tuple arrival times use this unit. The zero Time is the origin of
// every experiment.
type Time int64

// Common durations expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// MaxTime is the largest representable Time. It is used as the timestamp of
// the final punctuation that flushes all downstream operators.
const MaxTime = Time(1<<63 - 1)

// Seconds converts a floating point number of seconds into a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// ToSeconds converts t into floating point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / float64(Second) }

// Duration converts t into a time.Duration for interoperability with the
// standard library (1 Time unit == 1 microsecond).
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// String renders the time in seconds with microsecond precision.
func (t Time) String() string {
	if t == MaxTime {
		return "+inf"
	}
	return fmt.Sprintf("%.6fs", t.ToSeconds())
}

// AbsDiff returns |t - u| without overflowing for the magnitudes used by the
// engine (timestamps are non-negative and far from the int64 limits).
func AbsDiff(t, u Time) Time {
	if t > u {
		return t - u
	}
	return u - t
}
