package stream

// State is the window state of one side of a join operator: a FIFO deque of
// tuples ordered by arrival. Cross-purge removes expired tuples from the
// front; probing iterates the whole deque (nested-loop join, the cost model
// the paper uses in Section 3).
//
// The ring length is always a power of two so that index wraps are bit masks
// rather than modulo divisions, and Spans exposes the deque as at most two
// contiguous slices so the probe loop of a sliced join touches tuples with
// plain slice iteration — no per-element index arithmetic at all.
//
// When a hash index is attached (WithIndex), probes for equijoin predicates
// touch only the matching bucket, modelling the hash-join variant the paper
// cites from Kang et al. [14].
type State struct {
	buf   []*Tuple
	head  int
	n     int
	index map[int64][]*Tuple // optional equijoin index: Key -> tuples
}

// stateInitCap is the initial ring capacity; must be a power of two.
const stateInitCap = 16

// NewState returns an empty window state.
func NewState() *State { return &State{buf: make([]*Tuple, stateInitCap)} }

// WithIndex enables the hash index on the state and returns it.
func (s *State) WithIndex() *State {
	s.index = make(map[int64][]*Tuple)
	for i := 0; i < s.n; i++ {
		t := s.At(i)
		s.index[t.Key] = append(s.index[t.Key], t)
	}
	return s
}

// Indexed reports whether the state maintains a hash index.
func (s *State) Indexed() bool { return s.index != nil }

// Len returns the number of tuples held.
func (s *State) Len() int { return s.n }

// At returns the i-th oldest tuple (0 = front/oldest).
func (s *State) At(i int) *Tuple { return s.buf[(s.head+i)&(len(s.buf)-1)] }

// Spans returns the stored tuples oldest-first as at most two contiguous
// slices of the underlying ring (the second is nil unless the deque wraps).
// The slices alias the ring: they are invalidated by any mutation of the
// state and must not be retained across Insert, PopFront or Clear.
func (s *State) Spans() (a, b []*Tuple) {
	if s.n == 0 {
		return nil, nil
	}
	end := s.head + s.n
	if end <= len(s.buf) {
		return s.buf[s.head:end], nil
	}
	return s.buf[s.head:], s.buf[:end&(len(s.buf)-1)]
}

// Front returns the oldest tuple, or nil when empty.
func (s *State) Front() *Tuple {
	if s.n == 0 {
		return nil
	}
	return s.buf[s.head]
}

// Back returns the youngest tuple, or nil when empty.
func (s *State) Back() *Tuple {
	if s.n == 0 {
		return nil
	}
	return s.At(s.n - 1)
}

// Insert appends t at the back (tuples arrive in timestamp order, so the
// deque stays sorted by Time).
func (s *State) Insert(t *Tuple) {
	if s.n == len(s.buf) {
		s.grow()
	}
	s.buf[(s.head+s.n)&(len(s.buf)-1)] = t
	s.n++
	if s.index != nil {
		s.index[t.Key] = append(s.index[t.Key], t)
	}
}

// PopFront removes and returns the oldest tuple, or nil when the state is
// empty — a guarded return rather than a panic, so a caller bug degrades
// into a visible nil instead of crashing the process.
func (s *State) PopFront() *Tuple {
	if s.n == 0 {
		return nil
	}
	t := s.buf[s.head]
	s.buf[s.head] = nil
	s.head = (s.head + 1) & (len(s.buf) - 1)
	s.n--
	if s.index != nil {
		bucket := s.index[t.Key]
		// Tuples leave in arrival order, so t is the bucket head.
		if len(bucket) == 1 {
			delete(s.index, t.Key)
		} else {
			s.index[t.Key] = bucket[1:]
		}
	}
	return t
}

// Bucket returns the indexed tuples with the given key. It returns nil when
// the index is disabled.
func (s *State) Bucket(key int64) []*Tuple {
	if s.index == nil {
		return nil
	}
	return s.index[key]
}

// Snapshot returns the tuples oldest-first.
func (s *State) Snapshot() []*Tuple {
	out := make([]*Tuple, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.At(i)
	}
	return out
}

// Clear removes all tuples.
func (s *State) Clear() {
	for i := 0; i < s.n; i++ {
		s.buf[(s.head+i)&(len(s.buf)-1)] = nil
	}
	s.head, s.n = 0, 0
	if s.index != nil {
		s.index = make(map[int64][]*Tuple)
	}
}

// AppendAll moves every tuple of other to the back of s, preserving order.
// Chain migration uses it when merging two adjacent slices (Section 5.3:
// "concatenate the corresponding states").
func (s *State) AppendAll(other *State) {
	for other.Len() > 0 {
		s.Insert(other.PopFront())
	}
}

func (s *State) grow() {
	nb := make([]*Tuple, 2*len(s.buf))
	n := copy(nb, s.buf[s.head:])
	copy(nb[n:], s.buf[:s.head])
	s.buf = nb
	s.head = 0
}
