package stream

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSecondsRoundTrip(t *testing.T) {
	cases := []struct {
		sec  float64
		want Time
	}{
		{0, 0},
		{1, Second},
		{0.001, Millisecond},
		{60, Minute},
		{1.5, Second + 500*Millisecond},
	}
	for _, c := range cases {
		if got := Seconds(c.sec); got != c.want {
			t.Errorf("Seconds(%g) = %d, want %d", c.sec, got, c.want)
		}
		if got := c.want.ToSeconds(); got != c.sec {
			t.Errorf("ToSeconds(%d) = %g, want %g", c.want, got, c.sec)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := Seconds(1.5).String(); got != "1.500000s" {
		t.Errorf("String = %q", got)
	}
	if got := MaxTime.String(); got != "+inf" {
		t.Errorf("MaxTime.String() = %q, want +inf", got)
	}
}

func TestTimeDuration(t *testing.T) {
	if got := Second.Duration(); got != time.Second {
		t.Errorf("Second.Duration() = %v, want 1s", got)
	}
	if got := (3 * Millisecond).Duration(); got != 3*time.Millisecond {
		t.Errorf("3ms Duration = %v", got)
	}
}

func TestAbsDiff(t *testing.T) {
	if got := AbsDiff(5, 3); got != 2 {
		t.Errorf("AbsDiff(5,3) = %d", got)
	}
	if got := AbsDiff(3, 5); got != 2 {
		t.Errorf("AbsDiff(3,5) = %d", got)
	}
	if got := AbsDiff(7, 7); got != 0 {
		t.Errorf("AbsDiff(7,7) = %d", got)
	}
}

func TestAbsDiffProperties(t *testing.T) {
	symmetric := func(a, b int32) bool {
		x, y := Time(a), Time(b)
		d := AbsDiff(x, y)
		return d == AbsDiff(y, x) && d >= 0
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
}
