package stream

import "testing"

func TestIDOther(t *testing.T) {
	if StreamA.Other() != StreamB || StreamB.Other() != StreamA {
		t.Fatal("Other() must flip the stream id")
	}
	if StreamA.String() != "A" || StreamB.String() != "B" {
		t.Fatal("stream id names wrong")
	}
}

func TestRoleString(t *testing.T) {
	if RolePlain.String() != "plain" || RoleMale.String() != "male" || RoleFemale.String() != "female" {
		t.Fatal("role names wrong")
	}
}

func TestJoinedTimestampIsMax(t *testing.T) {
	a := &Tuple{Time: 3 * Second, Seq: 1, Stream: StreamA, Ord: 1}
	b := &Tuple{Time: 5 * Second, Seq: 2, Stream: StreamB, Ord: 1}
	j := Joined(a, b)
	if j.Time != 5*Second {
		t.Errorf("joined ts = %s, want 5s (max of inputs, Section 2)", j.Time)
	}
	if j.Seq != 2 {
		t.Errorf("joined Seq = %d, want Seq of later tuple", j.Seq)
	}
	if !j.IsResult() || j.A != a || j.B != b {
		t.Error("joined tuple must reference both sources")
	}
	if got := j.WindowDiff(); got != 2*Second {
		t.Errorf("WindowDiff = %s, want 2s", got)
	}
	// Reverse arrival order: still max.
	j2 := Joined(&Tuple{Time: 9, Seq: 7}, &Tuple{Time: 4, Seq: 3})
	if j2.Time != 9 || j2.Seq != 7 {
		t.Errorf("joined ts/seq = %d/%d, want 9/7", j2.Time, j2.Seq)
	}
}

func TestBeforeTotalOrder(t *testing.T) {
	x := &Tuple{Time: 1, Seq: 1}
	y := &Tuple{Time: 1, Seq: 2}
	z := &Tuple{Time: 2, Seq: 3}
	if !x.Before(y) || !y.Before(z) || !x.Before(z) {
		t.Error("Before must be a total order on (Time, Seq)")
	}
	if y.Before(x) || x.Before(x) {
		t.Error("Before must be strict")
	}
}

func TestWithRoleSharesIdentity(t *testing.T) {
	src := &Tuple{Time: 7, Seq: 9, Stream: StreamA, Ord: 2, Key: 42, Value: 0.5}
	m := src.WithRole(RoleMale)
	f := src.WithRole(RoleFemale)
	if m.Role != RoleMale || f.Role != RoleFemale {
		t.Fatal("roles not set")
	}
	if m.Seq != src.Seq || f.Seq != src.Seq || m.Time != src.Time {
		t.Error("copies must share Seq/Time (copy-of-reference, Section 4.2)")
	}
	if m.Key != 42 || f.Value != 0.5 {
		t.Error("copies must share payload")
	}
	if m == src || f == src {
		t.Error("WithRole must not alias the original")
	}
}

func TestTupleString(t *testing.T) {
	a := &Tuple{Time: Second, Seq: 1, Stream: StreamA, Ord: 3}
	b := &Tuple{Time: 2 * Second, Seq: 2, Stream: StreamB, Ord: 1}
	if a.String() != "a3" || b.String() != "b1" {
		t.Errorf("source names = %q, %q", a, b)
	}
	if got := Joined(a, b).String(); got != "(a3,b1)" {
		t.Errorf("joined name = %q", got)
	}
	var nilT *Tuple
	if nilT.String() != "<nil>" {
		t.Error("nil tuple String")
	}
}
