package workload

// Randomized metamorphic equivalence cases for the sharded executor: each
// seed deterministically expands into a full scenario — query count and
// window distribution, join shape, key-skew profile, shard count and
// mid-stream rebalance points — whose sharded-and-rebalanced execution must
// render byte-identically to the sequential engine. The generator lives here
// so the test corpus, the CI sweep and the benchmarks all draw from one
// definition; the assertions live in the root package tests.

import (
	"fmt"
	"math"

	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Skew names a key-skew profile of the metamorphic generator.
type Skew string

// The skew profiles: the distributions range partitioning handles worst.
const (
	// SkewUniform leaves the generator's uniform keys untouched.
	SkewUniform Skew = "uniform"
	// SkewQuadratic remaps k to floor(k^2/dom): concave, so the low keys
	// soak up most of the mass.
	SkewQuadratic Skew = "quadratic"
	// SkewBoundary collapses the keys onto a hot pair straddling the middle
	// of the domain — an owner-range boundary for every even shard count.
	SkewBoundary Skew = "boundary"
)

// MetamorphicCase is one fully-determined equivalence scenario.
type MetamorphicCase struct {
	// Seed drives both the case shape and the input generator.
	Seed uint64
	// Queries is the shared query count (even, >= 4).
	Queries int
	// Dist is the window distribution the query windows are drawn from.
	Dist Distribution
	// Band selects the band-join twin (width BandWidth) over the equijoin.
	Band bool
	// Skew is the key-skew profile applied to the generated input.
	Skew Skew
	// Shards is the replica count.
	Shards int
	// RebalanceAt lists stream positions, as fractions of the input length,
	// at which the driver calls Rebalance mid-stream.
	RebalanceAt []float64
}

// metamorphicWindowScale shrinks the paper's up-to-30s windows to test
// length: the largest window becomes 8 seconds.
const metamorphicWindowScale = 8.0 / 30.0

// metamorphicDuration is the generated stream length in seconds.
const metamorphicDuration = 20.0

// splitmix64 advances the state and returns the next mixed value (the
// standard splitmix64 generator; deterministic across platforms).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewMetamorphicCase expands a seed into its scenario. The expansion is a
// fixed splitmix64 draw chain, so a seed names the same case forever.
func NewMetamorphicCase(seed uint64) MetamorphicCase {
	s := seed
	c := MetamorphicCase{Seed: seed}
	c.Queries = 4 + 2*int(splitmix64(&s)%2) // 4 or 6
	dists := DistributionsN()
	c.Dist = dists[splitmix64(&s)%uint64(len(dists))]
	c.Band = splitmix64(&s)%2 == 0
	skews := []Skew{SkewUniform, SkewQuadratic, SkewBoundary}
	c.Skew = skews[splitmix64(&s)%uint64(len(skews))]
	shards := []int{2, 3, 8}
	c.Shards = shards[splitmix64(&s)%uint64(len(shards))]
	for i, n := 0, 1+int(splitmix64(&s)%2); i < n; i++ {
		// Fractions in [0.2, 0.8): early enough to observe skew, late
		// enough that state exists to move.
		c.RebalanceAt = append(c.RebalanceAt, 0.2+0.6*float64(splitmix64(&s)%1000)/1000)
	}
	for i := 1; i < len(c.RebalanceAt); i++ {
		if c.RebalanceAt[i] < c.RebalanceAt[i-1] {
			c.RebalanceAt[i], c.RebalanceAt[i-1] = c.RebalanceAt[i-1], c.RebalanceAt[i]
		}
	}
	return c
}

// Name renders the case compactly for subtest labels.
func (c MetamorphicCase) Name() string {
	join := "equijoin"
	if c.Band {
		join = "band"
	}
	return fmt.Sprintf("seed=%d/n=%d/%s/%s/%s/p=%d/reb=%d",
		c.Seed, c.Queries, c.Dist, join, c.Skew, c.Shards, len(c.RebalanceAt))
}

// KeyDomain returns the uniform key domain the case generates over.
func (c MetamorphicCase) KeyDomain() int64 {
	if c.Band {
		// Smaller than BandKeyDomain so a width-1 band at test rates still
		// produces a dense result stream.
		return 24
	}
	return EquijoinKeyDomain
}

// Workload builds the case's shared query workload, windows scaled to test
// length.
func (c MetamorphicCase) Workload() (plan.Workload, error) {
	ws, err := WindowsN(c.Dist, c.Queries)
	if err != nil {
		return plan.Workload{}, err
	}
	w := plan.Workload{Join: stream.Equijoin{}}
	if c.Band {
		w.Join = stream.BandJoin{B: BandWidth}
	}
	for _, sec := range ws {
		w.Queries = append(w.Queries, plan.Query{Window: stream.Seconds(sec * metamorphicWindowScale)})
	}
	return w, w.Validate()
}

// Input generates the case's skewed input stream. Both the sequential
// reference and the sharded run must consume exactly this slice.
func (c MetamorphicCase) Input() ([]*stream.Tuple, error) {
	dom := c.KeyDomain()
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 25, RateB: 25,
		Duration:  stream.Seconds(metamorphicDuration),
		KeyDomain: dom,
		Seed:      int64(c.Seed%math.MaxInt32) + 1,
	})
	if err != nil {
		return nil, err
	}
	switch c.Skew {
	case SkewQuadratic:
		for _, t := range input {
			t.Key = (t.Key * t.Key) / dom
		}
	case SkewBoundary:
		for _, t := range input {
			t.Key = dom/2 - 1 + t.Key%2
		}
	}
	return input, nil
}

// Positions resolves RebalanceAt onto concrete input indices, deduplicated
// and ascending.
func (c MetamorphicCase) Positions(inputLen int) []int {
	var out []int
	for _, f := range c.RebalanceAt {
		p := int(f * float64(inputLen))
		if p <= 0 || p >= inputLen {
			continue
		}
		if len(out) > 0 && p <= out[len(out)-1] {
			continue
		}
		out = append(out, p)
	}
	return out
}

// MetamorphicCorpus is the short deterministic corpus every `go test` run
// covers; the CI sweep extends it with further seeds. The seeds are chosen
// so the corpus spans both join shapes, all three skews and all three shard
// counts (see TestMetamorphicCorpusCoverage).
func MetamorphicCorpus() []MetamorphicCase {
	out := make([]MetamorphicCase, 0, 10)
	for seed := uint64(1); seed <= 10; seed++ {
		out = append(out, NewMetamorphicCase(seed))
	}
	return out
}
