package workload

import (
	"math"
	"reflect"
	"testing"

	"stateslice/internal/stream"
)

func TestWindows3MatchTable3(t *testing.T) {
	cases := map[Distribution][]float64{
		MostlySmall: {5, 10, 30},
		Uniform:     {10, 20, 30},
		MostlyLarge: {20, 25, 30},
	}
	for d, want := range cases {
		got, err := Windows3(d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: %v, want %v", d, got, want)
		}
	}
	if _, err := Windows3(SmallLarge); err == nil {
		t.Error("small-large has no three-query form in the paper")
	}
}

func TestWindowsNMatchTable4At12(t *testing.T) {
	cases := map[Distribution][]float64{
		Uniform:     {2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20, 22.5, 25, 27.5, 30},
		MostlySmall: {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30},
		SmallLarge:  {1, 2, 3, 4, 5, 6, 25, 26, 27, 28, 29, 30},
	}
	for d, want := range cases {
		got, err := WindowsN(d, 12)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d windows", d, len(got))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("%s[%d] = %g, want %g (Table 4)", d, i, got[i], want[i])
			}
		}
	}
}

func TestWindowsNScales(t *testing.T) {
	for _, d := range DistributionsN() {
		for _, n := range QueryCounts {
			ws, err := WindowsN(d, n)
			if err != nil {
				t.Fatalf("%s/%d: %v", d, n, err)
			}
			if len(ws) != n {
				t.Fatalf("%s/%d: got %d windows", d, n, len(ws))
			}
			for i := 1; i < n; i++ {
				if ws[i] <= ws[i-1] {
					t.Fatalf("%s/%d: windows not ascending at %d", d, n, i)
				}
			}
			if ws[n-1] != 30 {
				t.Errorf("%s/%d: largest window %g, want 30", d, n, ws[n-1])
			}
		}
	}
	if _, err := WindowsN(Uniform, 7); err == nil {
		t.Error("odd query count must fail")
	}
	if _, err := WindowsN(MostlyLarge, 12); err == nil {
		t.Error("mostly-large has no N-query form in the paper")
	}
}

func TestThreeQueries(t *testing.T) {
	w, err := ThreeQueries(Uniform, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 3 {
		t.Fatalf("got %d queries", len(w.Queries))
	}
	if w.Queries[0].HasFilter() {
		t.Error("Q1 must be unfiltered")
	}
	if !w.Queries[1].HasFilter() || !w.Queries[2].HasFilter() {
		t.Error("Q2 and Q3 must carry the selection")
	}
	if w.Queries[1].Filter.Selectivity() != 0.5 {
		t.Error("selection selectivity wrong")
	}
	if w.Queries[2].Window != 30*stream.Second {
		t.Errorf("W3 = %s", w.Queries[2].Window)
	}
	if _, err := ThreeQueries(Uniform, 0, 0.1); err == nil {
		t.Error("zero selectivity must fail")
	}
}

func TestNQueries(t *testing.T) {
	w, err := NQueries(SmallLarge, 24, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 24 {
		t.Fatalf("got %d queries", len(w.Queries))
	}
	for i, q := range w.Queries {
		if q.HasFilter() {
			t.Fatalf("query %d: Section 7.3 removes the selections", i)
		}
	}
}

func TestSpecsConversion(t *testing.T) {
	w, err := ThreeQueries(MostlySmall, 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	specs := Specs(w)
	if specs[0].Sel != 1 || specs[1].Sel != 0.2 || specs[2].Sel != 0.2 {
		t.Errorf("spec selectivities = %+v", specs)
	}
	if specs[0].Window != 5 || specs[2].Window != 30 {
		t.Errorf("spec windows = %+v", specs)
	}
	ts := EndsToTimes([]float64{2.5, 30})
	if ts[0] != 2500*stream.Millisecond || ts[1] != 30*stream.Second {
		t.Errorf("EndsToTimes = %v", ts)
	}
}
