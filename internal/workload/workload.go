// Package workload encodes the experimental workloads of Section 7 of the
// State-Slice paper: the three-query sharing scenarios of Section 7.2
// (Table 3 settings: window distributions Mostly-Small/Uniform/Mostly-Large,
// selection selectivities, join selectivities) and the N-query scenarios of
// Section 7.3 (Table 4 window distributions for 12/24/36 queries).
package workload

import (
	"fmt"

	"stateslice/internal/cost"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Distribution names a query window distribution from Tables 3 and 4.
type Distribution string

// The window distributions of the paper's experiments.
const (
	// MostlySmall clusters windows at the small end: 5, 10, 30 seconds
	// for three queries (Table 3); 1..10, 20, 30 for twelve (Table 4).
	MostlySmall Distribution = "mostly-small"
	// Uniform spaces windows evenly: 10, 20, 30 for three queries;
	// 2.5, 5, ..., 30 for twelve.
	Uniform Distribution = "uniform"
	// MostlyLarge clusters windows at the large end: 20, 25, 30 seconds
	// (Table 3, three queries only).
	MostlyLarge Distribution = "mostly-large"
	// SmallLarge is the bimodal distribution of Table 4: 1..6 and 25..30
	// for twelve queries.
	SmallLarge Distribution = "small-large"
)

// Distributions3 lists the three-query distributions of Table 3.
func Distributions3() []Distribution { return []Distribution{MostlySmall, Uniform, MostlyLarge} }

// DistributionsN lists the N-query distributions of Section 7.3.
func DistributionsN() []Distribution { return []Distribution{Uniform, MostlySmall, SmallLarge} }

// Windows3 returns the three-query window distribution of Table 3 in
// seconds.
func Windows3(d Distribution) ([]float64, error) {
	switch d {
	case MostlySmall:
		return []float64{5, 10, 30}, nil
	case Uniform:
		return []float64{10, 20, 30}, nil
	case MostlyLarge:
		return []float64{20, 25, 30}, nil
	default:
		return nil, fmt.Errorf("workload: no three-query windows for distribution %q", d)
	}
}

// WindowsN returns the N-query window distribution in seconds, generalising
// Table 4 exactly as the paper describes ("window distributions for other
// number of queries are set accordingly"): for n = 12 the values match the
// table verbatim.
func WindowsN(d Distribution, n int) ([]float64, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("workload: need an even query count of at least 4, got %d", n)
	}
	out := make([]float64, 0, n)
	switch d {
	case Uniform:
		// 30*i/n: for n=12 this is 2.5, 5, ..., 30.
		for i := 1; i <= n; i++ {
			out = append(out, 30*float64(i)/float64(n))
		}
	case MostlySmall:
		// n-2 windows evenly spaced in (0, 10], then 20 and 30: for
		// n=12 this is 1..10, 20, 30.
		for i := 1; i <= n-2; i++ {
			out = append(out, 10*float64(i)/float64(n-2))
		}
		out = append(out, 20, 30)
	case SmallLarge:
		// Half in (0, 6], half in (24, 30]: for n=12 this is 1..6 and
		// 25..30.
		h := n / 2
		for i := 1; i <= h; i++ {
			out = append(out, 6*float64(i)/float64(h))
		}
		for i := 1; i <= h; i++ {
			out = append(out, 24+6*float64(i)/float64(h))
		}
	default:
		return nil, fmt.Errorf("workload: no N-query windows for distribution %q", d)
	}
	return out, nil
}

// ThreeQueries builds the Section 7.2 workload: Q1 (A[W1] |><| B[W1]),
// Q2 (sigma(A[W2]) |><| B[W2]) and Q3 (sigma(A[W3]) |><| B[W3]) with the
// shared selection selectivity sSigma and join selectivity s1.
func ThreeQueries(d Distribution, sSigma, s1 float64) (plan.Workload, error) {
	ws, err := Windows3(d)
	if err != nil {
		return plan.Workload{}, err
	}
	if sSigma <= 0 || sSigma > 1 {
		return plan.Workload{}, fmt.Errorf("workload: selection selectivity %g outside (0,1]", sSigma)
	}
	sel := stream.Threshold{S: sSigma}
	w := plan.Workload{
		Queries: []plan.Query{
			{Window: stream.Seconds(ws[0])},
			{Window: stream.Seconds(ws[1]), Filter: sel},
			{Window: stream.Seconds(ws[2]), Filter: sel},
		},
		Join: stream.FractionMatch{S: s1},
	}
	return w, w.Validate()
}

// NQueries builds the Section 7.3 workload: n window joins without
// selections ("similar queries as in Section 7.2 with the selections
// removed") and join selectivity s1.
func NQueries(d Distribution, n int, s1 float64) (plan.Workload, error) {
	ws, err := WindowsN(d, n)
	if err != nil {
		return plan.Workload{}, err
	}
	w := plan.Workload{Join: stream.FractionMatch{S: s1}}
	for _, sec := range ws {
		w.Queries = append(w.Queries, plan.Query{Window: stream.Seconds(sec)})
	}
	return w, w.Validate()
}

// EquijoinKeyDomain is the uniform key domain whose equijoin selectivity
// (1/40 = 0.025) matches the low S1 setting of the Section 7.3 sweeps, so
// the equijoin twin of the workload produces result volumes comparable to
// the FractionMatch original.
const EquijoinKeyDomain = 40

// NQueriesEquijoin builds the equijoin twin of the Section 7.3 workload:
// the same n windows, but joined on the key attribute (the paper's
// A.LocationId = B.LocationId shape) instead of the synthetic fraction
// match. Generate the input with KeyDomain = EquijoinKeyDomain for the
// matching expected selectivity. Unlike FractionMatch, the equijoin is
// key-partitionable, which the sharded executor requires.
func NQueriesEquijoin(d Distribution, n int) (plan.Workload, error) {
	ws, err := WindowsN(d, n)
	if err != nil {
		return plan.Workload{}, err
	}
	w := plan.Workload{Join: stream.Equijoin{}}
	for _, sec := range ws {
		w.Queries = append(w.Queries, plan.Query{Window: stream.Seconds(sec)})
	}
	return w, w.Validate()
}

// BandKeyDomain is the uniform key domain of the band-join twin: with the
// default band width BandWidth, the expected selectivity
// (2*BandWidth + 1) / BandKeyDomain = 3/120 = 0.025 matches the low S1
// setting of the Section 7.3 sweeps (and the equijoin twin's 1/40), so the
// three tracked workloads produce comparable result volumes.
const BandKeyDomain = 120

// BandWidth is the tracked band width B of the band-join twin.
const BandWidth = 1

// NQueriesBand builds the band-join twin of the Section 7.3 workload: the
// same n windows, joined on |A.Key - B.Key| <= width — a proximity
// predicate no equijoin expresses. Generate the input with
// KeyDomain = BandKeyDomain; uniform keys then give an expected join
// selectivity of about (2*width + 1) / BandKeyDomain (slightly less from
// edge effects). Band predicates are not key-partitionable, but they are
// band-partitionable: the sharded executor runs them with contiguous owner
// ranges plus boundary replication (internal/shard, Config.Band).
func NQueriesBand(d Distribution, n int, width int64) (plan.Workload, error) {
	ws, err := WindowsN(d, n)
	if err != nil {
		return plan.Workload{}, err
	}
	if width < 0 {
		return plan.Workload{}, fmt.Errorf("workload: band width must be >= 0, got %d", width)
	}
	w := plan.Workload{Join: stream.BandJoin{B: width}}
	for _, sec := range ws {
		w.Queries = append(w.Queries, plan.Query{Window: stream.Seconds(sec)})
	}
	return w, w.Validate()
}

// Specs converts a plan workload into the cost model's query specs.
func Specs(w plan.Workload) []cost.QuerySpec {
	out := make([]cost.QuerySpec, len(w.Queries))
	for i, q := range w.Queries {
		sel := 1.0
		if q.HasFilter() {
			sel = q.Filter.Selectivity()
		}
		out[i] = cost.QuerySpec{Window: q.Window.ToSeconds(), Sel: sel}
	}
	return out
}

// EndsToTimes converts cost-model boundaries (seconds) to stream times.
func EndsToTimes(ends []float64) []stream.Time {
	out := make([]stream.Time, len(ends))
	for i, e := range ends {
		out[i] = stream.Seconds(e)
	}
	return out
}

// Table 1/3 parameter grids, exported so the harness and the benchmarks
// stay in sync with the paper.
var (
	// Rates is the input rate sweep of Figures 17-19, tuples/sec.
	Rates = []float64{20, 40, 60, 80}
	// SigmaSelectivities is the Low/Middle/High selection grid.
	SigmaSelectivities = []float64{0.2, 0.5, 0.8}
	// JoinSelectivities is the Low/Middle/High join grid.
	JoinSelectivities = []float64{0.025, 0.1, 0.4}
	// QueryCounts is the Figure 19 query count sweep.
	QueryCounts = []int{12, 24, 36}
	// DurationSeconds is the generator run length of Section 7.1.
	DurationSeconds = 90.0
)
