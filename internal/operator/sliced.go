package operator

import (
	"fmt"

	"stateslice/internal/stream"
)

// SlicedBinaryJoin is the sliced binary window join
// A[W_start, W_end] s|><| B[W_start, W_end] of Definition 3 in the paper,
// executed with the male/female reference-copy scheme of Figure 9: the male
// copy of each tuple cross-purges the opposite state, probes it and
// propagates itself to the next slice; the female copy fills its own state
// and moves to the next slice when purged.
//
// The operator's input is one logical queue (both streams, both roles,
// globally ordered); purged females and propagated males leave through the
// "next" port in exactly the order Lemma 1 requires. Results leave through
// the result port followed by a punctuation per male, which downstream
// unions use for order-preserving merging (Section 4.3: "the male tuple of
// the last sliced join acts as punctuation for the union operator").
type SlicedBinaryJoin struct {
	name         string
	wstart, wend stream.Time
	pred         stream.JoinPredicate
	in           *stream.Queue
	states       [2]*stream.State // female tuples per stream
	result       Port
	next         Port
	// selfPurge additionally evicts expired own-stream females when a
	// female arrives (footnote 1 of the paper: "self-purge is also
	// applicable"). It bounds state staleness when the opposite stream
	// stalls; results are unchanged because an arriving female's
	// timestamp lower-bounds every future probing male of the other
	// stream.
	selfPurge bool
	// slab amortizes the joined-result allocations of this slice.
	slab stream.TupleSlab
}

// NewSlicedBinaryJoin builds a sliced binary join for the window range
// [wstart, wend).
func NewSlicedBinaryJoin(name string, wstart, wend stream.Time, pred stream.JoinPredicate, in *stream.Queue) (*SlicedBinaryJoin, error) {
	if wstart < 0 || wend <= wstart {
		return nil, fmt.Errorf("operator %s: invalid slice range [%s, %s)", name, wstart, wend)
	}
	return &SlicedBinaryJoin{
		name:   name,
		wstart: wstart,
		wend:   wend,
		pred:   pred,
		in:     in,
		states: [2]*stream.State{stream.NewState(), stream.NewState()},
	}, nil
}

// WithSelfPurge enables same-stream purging on female arrivals and returns
// the join.
func (j *SlicedBinaryJoin) WithSelfPurge() *SlicedBinaryJoin {
	j.selfPurge = true
	return j
}

// Result exposes the Joined-Result output port.
func (j *SlicedBinaryJoin) Result() *Port { return &j.result }

// Next exposes the port feeding the next slice of the chain.
func (j *SlicedBinaryJoin) Next() *Port { return &j.next }

// In exposes the input queue (used by chain migration).
func (j *SlicedBinaryJoin) In() *stream.Queue { return j.in }

// Range returns the slice window range [start, end).
func (j *SlicedBinaryJoin) Range() (start, end stream.Time) { return j.wstart, j.wend }

// Name implements Operator.
func (j *SlicedBinaryJoin) Name() string { return j.name }

// Pending implements Operator.
func (j *SlicedBinaryJoin) Pending() bool { return !j.in.Empty() }

// StateSize implements StateSizer.
func (j *SlicedBinaryJoin) StateSize() int { return j.states[0].Len() + j.states[1].Len() }

// StateSnapshot returns the female tuples of the given stream, oldest-first.
func (j *SlicedBinaryJoin) StateSnapshot(id stream.ID) []*stream.Tuple {
	return j.states[id].Snapshot()
}

// RestoreState replaces the window state of the given stream with the given
// tuples, oldest-first — the inverse of StateSnapshot. Checkpoint restore
// fills a freshly built chain with snapshotted slice contents; the tuples
// must already be in arrival (timestamp) order, exactly as Snapshot emitted
// them.
func (j *SlicedBinaryJoin) RestoreState(id stream.ID, tuples []*stream.Tuple) {
	st := j.states[id]
	st.Clear()
	for _, t := range tuples {
		st.Insert(t)
	}
}

// Step implements Operator.
func (j *SlicedBinaryJoin) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !j.in.Empty() {
		it := j.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			j.result.Push(it)
			j.next.Push(it)
			continue
		}
		t := it.Tuple
		switch it.Role {
		case stream.RoleFemale:
			// Insert: fill this slice's window state, optionally
			// evicting own-stream females that no future male of
			// the opposite stream can reach.
			if j.selfPurge {
				purgeExpired(m, j.states[t.Stream], t.Time, j.wend, &j.next)
			}
			j.states[t.Stream].Insert(t)
		case stream.RoleMale:
			j.processMale(m, t)
		default:
			// A plain item reaching a sliced join is a wiring bug:
			// the ChainInput operator must split roles first.
			panic(fmt.Sprintf("operator %s: plain tuple %s reached a sliced join", j.name, t))
		}
	}
	return n
}

// processMale runs cross-purge, probe and propagate for a male tuple.
func (j *SlicedBinaryJoin) processMale(m *CostMeter, t *stream.Tuple) {
	opp := j.states[t.Stream.Other()]
	// 1. Cross-purge the opposite state into the next slice.
	purgeExpired(m, opp, t.Time, j.wend, &j.next)
	// 2. Probe the surviving opposite females. The two spans cover the
	// state oldest-first with plain slice iteration; they stay valid
	// because emit never mutates the state.
	sa, sb := opp.Spans()
	m.probe(len(sa) + len(sb))
	if t.Stream == stream.StreamA {
		for _, f := range sa {
			if j.pred.Match(t, f) {
				j.result.PushTuple(j.slab.Joined(t, f))
			}
		}
		for _, f := range sb {
			if j.pred.Match(t, f) {
				j.result.PushTuple(j.slab.Joined(t, f))
			}
		}
	} else {
		for _, f := range sa {
			if j.pred.Match(f, t) {
				j.result.PushTuple(j.slab.Joined(f, t))
			}
		}
		for _, f := range sb {
			if j.pred.Match(f, t) {
				j.result.PushTuple(j.slab.Joined(f, t))
			}
		}
	}
	// 3. Propagate the male to the next slice.
	j.next.Push(stream.RoleItem(t, stream.RoleMale))
	j.result.PushPunct(t.Time)
}

// ChainInput splits each plain source tuple into its female and male
// reference copies before the first sliced binary join of a chain
// (Section 4.2: "each input tuple ... will be captured as two reference
// copies before the tuple is processed by the first binary sliced window
// join"). The female is emitted first so the state-filling copy never
// overtakes its own probing copy. The roles ride on the queue items, so the
// split allocates nothing: both items reference the same *Tuple.
type ChainInput struct {
	name string
	in   *stream.Queue
	out  Port
}

// NewChainInput builds the role splitter over the input queue.
func NewChainInput(name string, in *stream.Queue) *ChainInput {
	return &ChainInput{name: name, in: in}
}

// Out exposes the output port feeding the first slice.
func (c *ChainInput) Out() *Port { return &c.out }

// Name implements Operator.
func (c *ChainInput) Name() string { return c.name }

// Pending implements Operator.
func (c *ChainInput) Pending() bool { return !c.in.Empty() }

// Step implements Operator.
func (c *ChainInput) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !c.in.Empty() {
		it := c.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			c.out.Push(it)
			continue
		}
		t := it.Tuple
		c.out.Push(stream.RoleItem(t, stream.RoleFemale))
		c.out.Push(stream.RoleItem(t, stream.RoleMale))
	}
	return n
}
