package operator

import (
	"testing"

	"stateslice/internal/stream"
)

// mkDiffResult builds a joined tuple with the given |Ta-Tb| distance.
func mkDiffResult(diff stream.Time, seq uint64) *stream.Tuple {
	a := &stream.Tuple{Time: 100 * stream.Second, Seq: seq - 1, Stream: stream.StreamA}
	b := &stream.Tuple{Time: 100*stream.Second + diff, Seq: seq, Stream: stream.StreamB}
	return stream.Joined(a, b)
}

func TestRouterDispatchByWindow(t *testing.T) {
	in := stream.NewQueue()
	r := NewRouter("r", in)
	p1, err := r.AddBranch(2 * stream.Second)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.AddBranch(5 * stream.Second)
	if err != nil {
		t.Fatal(err)
	}
	q1, q2 := p1.NewQueue(), p2.NewQueue()
	all := r.All().NewQueue()

	in.PushTuple(mkDiffResult(1*stream.Second, 2)) // within both
	in.PushTuple(mkDiffResult(2*stream.Second, 4)) // boundary: within both
	in.PushTuple(mkDiffResult(4*stream.Second, 6)) // only the 5s branch
	in.PushTuple(mkDiffResult(5*stream.Second, 8)) // boundary of the 5s branch
	r.Step(nil, -1)

	if n := len(drainPort(q1)); n != 2 {
		t.Errorf("2s branch got %d results, want 2", n)
	}
	if n := len(drainPort(q2)); n != 4 {
		t.Errorf("5s branch got %d results, want 4 (nested windows)", n)
	}
	if n := len(drainPort(all)); n != 4 {
		t.Errorf("All port got %d results, want every result", n)
	}
}

func TestRouterCostModel(t *testing.T) {
	// Eq. (1): routing costs one comparison per result for two branches;
	// the final boundary is implied (every result satisfies the largest
	// window by construction). A single branch costs nothing.
	in := stream.NewQueue()
	r := NewRouter("r", in)
	r.AddBranch(2 * stream.Second)
	r.AddBranch(5 * stream.Second)
	m := &CostMeter{}
	in.PushTuple(mkDiffResult(1*stream.Second, 2))
	in.PushTuple(mkDiffResult(4*stream.Second, 4))
	r.Step(m, -1)
	if m.Route != 2 {
		t.Errorf("route comparisons = %d, want 2 (one per result)", m.Route)
	}
	single := NewRouter("s", stream.NewQueue())
	single.AddBranch(2 * stream.Second)
	m2 := &CostMeter{}
	q := stream.NewQueue()
	single.in.Push(stream.TupleItem(mkDiffResult(stream.Second, 6)))
	_ = q
	single.Step(m2, -1)
	if m2.Route != 0 {
		t.Errorf("fanout-1 router cost = %d, want 0", m2.Route)
	}
}

func TestRouterScanStopsAtFirstMatch(t *testing.T) {
	// Three branches: a result within the smallest window costs one
	// comparison; one between the second and third costs two (the last
	// boundary is never tested).
	in := stream.NewQueue()
	r := NewRouter("r", in)
	r.AddBranch(1 * stream.Second)
	r.AddBranch(2 * stream.Second)
	r.AddBranch(3 * stream.Second)
	m := &CostMeter{}
	in.PushTuple(mkDiffResult(500*stream.Millisecond, 2)) // 1 comparison
	r.Step(m, -1)
	if m.Route != 1 {
		t.Errorf("small result cost %d, want 1", m.Route)
	}
	in.PushTuple(mkDiffResult(2500*stream.Millisecond, 4)) // 2 comparisons
	r.Step(m, -1)
	if m.Route != 3 {
		t.Errorf("large result total %d, want 3", m.Route)
	}
}

func TestRouterBranchValidation(t *testing.T) {
	r := NewRouter("r", stream.NewQueue())
	if _, err := r.AddBranch(5 * stream.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddBranch(5 * stream.Second); err == nil {
		t.Error("duplicate branch window must fail")
	}
	if _, err := r.AddBranch(2 * stream.Second); err == nil {
		t.Error("descending branch window must fail")
	}
	if got := r.Branches(); len(got) != 1 || got[0] != 5*stream.Second {
		t.Errorf("Branches() = %v", got)
	}
}

func TestRouterForwardsPunctuations(t *testing.T) {
	in := stream.NewQueue()
	r := NewRouter("r", in)
	p, _ := r.AddBranch(stream.Second)
	q := p.NewQueue()
	all := r.All().NewQueue()
	in.PushPunct(3 * stream.Second)
	r.Step(nil, -1)
	if q.Empty() || !q.Pop().IsPunct() {
		t.Error("branch must receive punctuations")
	}
	if all.Empty() || !all.Pop().IsPunct() {
		t.Error("All port must receive punctuations")
	}
}
