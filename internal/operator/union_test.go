package operator

import (
	"math/rand"
	"sort"
	"testing"

	"stateslice/internal/stream"
)

// mkResult builds a joined tuple with the given timestamp/seq identity.
func mkResult(ts stream.Time, seq uint64) *stream.Tuple {
	a := &stream.Tuple{Time: ts - 1, Seq: seq - 1, Stream: stream.StreamA}
	b := &stream.Tuple{Time: ts, Seq: seq, Stream: stream.StreamB}
	return stream.Joined(a, b)
}

func TestUnionMergesSortedInputs(t *testing.T) {
	u := NewUnion("u")
	in1, in2 := u.AddInput(), u.AddInput()
	out := u.Out().NewQueue()
	// Interleaved batches with punctuations driving progress.
	in1.PushTuple(mkResult(10, 2))
	in1.PushPunct(10)
	in2.PushTuple(mkResult(20, 4))
	in2.PushPunct(20)
	u.Step(nil, -1)
	in1.PushTuple(mkResult(30, 6))
	in1.PushPunct(40)
	in2.PushPunct(40)
	u.Step(nil, -1)
	got := drainPort(out)
	if len(got) != 3 {
		t.Fatalf("emitted %d tuples, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("output out of order at %d", i)
		}
	}
}

func TestUnionBlocksWithoutPunctuation(t *testing.T) {
	u := NewUnion("u")
	in1, in2 := u.AddInput(), u.AddInput()
	out := u.Out().NewQueue()
	in1.PushTuple(mkResult(10, 2))
	// in2 is empty and silent: the tuple cannot be released yet.
	u.Step(nil, -1)
	if out.TupleCount() != 0 {
		t.Fatal("union must hold tuples until the other input punctuates")
	}
	in2.PushPunct(15)
	u.Step(nil, -1)
	if out.TupleCount() != 1 {
		t.Fatal("punctuation at 15 releases the tuple at 10")
	}
}

func TestUnionTieBreaksByInputOrder(t *testing.T) {
	// Results of the same probing male arriving from two slices share
	// (Time, Seq); the union must emit them in input (chain) order and
	// count no merge comparisons for them.
	u := NewUnion("u")
	in1, in2 := u.AddInput(), u.AddInput()
	out := u.Out().NewQueue()
	r1, r2 := mkResult(10, 2), mkResult(10, 2)
	in2.PushTuple(r2)
	in2.PushPunct(10)
	in1.PushTuple(r1)
	in1.PushPunct(10)
	m := &CostMeter{}
	u.Step(m, -1)
	got := drainPort(out)
	if len(got) != 2 {
		t.Fatalf("emitted %d", len(got))
	}
	if got[0] != r1 || got[1] != r2 {
		t.Error("equal keys must emit in input order (chain order)")
	}
	if m.Union != 2 {
		// Two punctuations processed; the tie itself costs nothing.
		t.Errorf("union comparisons = %d, want 2 (punctuation processing only)", m.Union)
	}
}

func TestUnionRandomizedOrderPreservation(t *testing.T) {
	// Feed k sorted streams with punctuations in random interleavings;
	// the output must always be globally sorted and complete.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(4)
		u := NewUnion("u")
		ins := make([]*stream.Queue, k)
		for i := range ins {
			ins[i] = u.AddInput()
		}
		out := u.Out().NewQueue()
		var total int
		seq := uint64(2)
		// Each input gets an independent sorted series.
		series := make([][]*stream.Tuple, k)
		for i := range series {
			ts := stream.Time(0)
			n := rng.Intn(30)
			for j := 0; j < n; j++ {
				ts += stream.Time(1 + rng.Intn(5))
				seq += 2
				series[i] = append(series[i], mkResult(ts, seq))
				total++
			}
		}
		// Random round-robin feeding with interleaved Steps.
		idx := make([]int, k)
		remaining := total
		for remaining > 0 {
			for i := 0; i < k; i++ {
				take := rng.Intn(3)
				for j := 0; j < take && idx[i] < len(series[i]); j++ {
					tp := series[i][idx[i]]
					ins[i].PushTuple(tp)
					ins[i].PushPunct(tp.Time)
					idx[i]++
					remaining--
				}
			}
			u.Step(nil, -1)
		}
		for i := 0; i < k; i++ {
			ins[i].PushPunct(stream.MaxTime)
		}
		u.Step(nil, -1)
		got := drainPort(out)
		if len(got) != total {
			t.Fatalf("trial %d: emitted %d of %d tuples", trial, len(got), total)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].Time != got[j].Time {
				return got[i].Time < got[j].Time
			}
			return got[i].Seq <= got[j].Seq
		}) {
			t.Fatalf("trial %d: output not sorted", trial)
		}
	}
}

func TestUnionCloseInput(t *testing.T) {
	u := NewUnion("u")
	in1, in2 := u.AddInput(), u.AddInput()
	out := u.Out().NewQueue()
	in1.PushTuple(mkResult(10, 2))
	in2.PushTuple(mkResult(5, 4)) // residual tuple on the input being closed
	if !u.CloseInput(in2) {
		t.Fatal("CloseInput must find the registered queue")
	}
	in1.PushPunct(10)
	u.Step(nil, -1)
	got := drainPort(out)
	if len(got) != 2 {
		t.Fatalf("emitted %d tuples, want both (residual first)", len(got))
	}
	if got[0].Time != 5 || got[1].Time != 10 {
		t.Error("residual tuple of a closed input must still emit in order")
	}
	if u.CloseInput(stream.NewQueue()) {
		t.Error("closing a foreign queue must report false")
	}
}

func TestUnionForwardPunct(t *testing.T) {
	u := NewUnion("u")
	in1, in2 := u.AddInput(), u.AddInput()
	out := u.Out().NewQueue()
	in1.PushPunct(10)
	in2.PushPunct(7)
	u.Step(nil, -1)
	// The union punctuates downstream at the minimum frontier.
	var lastPunct stream.Time = -1
	for !out.Empty() {
		it := out.Pop()
		if it.IsPunct() {
			lastPunct = it.Punct
		}
	}
	if lastPunct != 7 {
		t.Errorf("forwarded punct %s, want 7us", lastPunct)
	}
	if u.Inputs() != 2 {
		t.Error("Inputs() wrong")
	}
	if u.String() == "" {
		t.Error("String() empty")
	}
}

func TestUnionBudget(t *testing.T) {
	u := NewUnion("u")
	in := u.AddInput()
	out := u.Out().NewQueue()
	for i := 0; i < 10; i++ {
		in.PushTuple(mkResult(stream.Time(10+i), uint64(20+2*i)))
	}
	in.PushPunct(100)
	if n := u.Step(nil, 4); n != 4 {
		t.Fatalf("budgeted step emitted %d, want 4", n)
	}
	u.Step(nil, -1)
	if got := drainPort(out); len(got) != 10 {
		t.Fatalf("total emitted %d, want 10", len(got))
	}
}
