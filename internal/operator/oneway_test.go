package operator

import (
	"testing"

	"stateslice/internal/stream"
)

// buildOneWayChain wires N sliced one-way joins.
func buildOneWayChain(t *testing.T, ends []stream.Time, pred stream.JoinPredicate) (*stream.Queue, []*SlicedOneWayJoin, []*stream.Queue) {
	t.Helper()
	entry := stream.NewQueue()
	var joins []*SlicedOneWayJoin
	var outs []*stream.Queue
	in := entry
	start := stream.Time(0)
	for _, end := range ends {
		j, err := NewSlicedOneWayJoin("j", start, end, pred, in)
		if err != nil {
			t.Fatal(err)
		}
		joins = append(joins, j)
		outs = append(outs, j.Result().NewQueue())
		in = j.Next().NewQueue()
		start = end
	}
	return entry, joins, outs
}

func TestOneWayChainEquivalenceTheorem1(t *testing.T) {
	// Theorem 1: the union of the sliced one-way joins equals the regular
	// one-way join A[W] |>< B: pairs with 0 < Tb - Ta <= W.
	for seed := int64(1); seed <= 5; seed++ {
		input := randomInput(t, 300, seed)
		entry, joins, outs := buildOneWayChain(t,
			[]stream.Time{2 * stream.Second, 5 * stream.Second, 6 * stream.Second}, stream.Equijoin{})
		for _, tp := range input {
			entry.PushTuple(tp)
			for _, j := range joins {
				j.Step(nil, -1)
			}
		}
		got := make(map[pairKey]int)
		for _, out := range outs {
			for _, r := range drainPort(out) {
				got[pairKey{r.A.Seq, r.B.Seq}]++
			}
		}
		// One-way reference: b probes the A window only.
		want := make(map[pairKey]int)
		for i, x := range input {
			if x.Stream != stream.StreamB {
				continue
			}
			for _, y := range input[:i] {
				if y.Stream != stream.StreamA {
					continue
				}
				if x.Time-y.Time <= 6*stream.Second && (stream.Equijoin{}).Match(y, x) {
					want[pairKey{y.Seq, x.Seq}]++
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("seed %d: pair %v count %d, want %d", seed, k, got[k], n)
			}
		}
	}
}

func TestOneWaySliceRanges(t *testing.T) {
	// Each slice emits only pairs whose distance lies in its range.
	input := randomInput(t, 200, 9)
	ends := []stream.Time{stream.Second, 4 * stream.Second}
	entry, joins, outs := buildOneWayChain(t, ends, stream.CrossProduct{})
	for _, tp := range input {
		entry.PushTuple(tp)
		for _, j := range joins {
			j.Step(nil, -1)
		}
	}
	start := stream.Time(0)
	for si, out := range outs {
		for _, r := range drainPort(out) {
			d := r.B.Time - r.A.Time
			if d <= start || d > ends[si] {
				t.Fatalf("slice %d: pair at distance %s outside (%s, %s]", si, d, start, ends[si])
			}
		}
		start = ends[si]
	}
	if s, e := joins[1].Range(); s != stream.Second || e != 4*stream.Second {
		t.Error("Range() wrong")
	}
}

func TestOneWayPurgedTuplesFlowDownstream(t *testing.T) {
	// A tuples expelled from slice 1 by cross-purge must appear in
	// slice 2's state, not vanish.
	var mb stream.ManualBuilder
	entry, joins, outs := buildOneWayChain(t,
		[]stream.Time{2 * stream.Second, 4 * stream.Second}, stream.CrossProduct{})
	entry.PushTuple(mb.Add(stream.StreamA, 1*stream.Second))
	entry.PushTuple(mb.Add(stream.StreamB, 4*stream.Second)) // purges a1 (diff 3 > 2)
	for _, j := range joins {
		j.Step(nil, -1)
	}
	if n := joins[0].StateSize(); n != 0 {
		t.Errorf("slice 1 still holds %d tuples", n)
	}
	if n := joins[1].StateSize(); n != 1 {
		t.Errorf("slice 2 holds %d tuples, want the purged a1", n)
	}
	// b1 then probed a1 at slice 2 (diff 3 in (2,4]).
	if res := drainPort(outs[1]); len(res) != 1 {
		t.Errorf("slice 2 emitted %d results, want (a1,b1)", len(res))
	}
	if res := drainPort(outs[0]); len(res) != 0 {
		t.Errorf("slice 1 emitted %d results, want none", len(res))
	}
}

func TestOneWaySelfPurge(t *testing.T) {
	var mb stream.ManualBuilder
	in := stream.NewQueue()
	j, err := NewSlicedOneWayJoin("j", 0, 2*stream.Second, stream.CrossProduct{}, in)
	if err != nil {
		t.Fatal(err)
	}
	j.WithSelfPurge()
	next := j.Next().NewQueue()
	in.PushTuple(mb.Add(stream.StreamA, 1*stream.Second))
	in.PushTuple(mb.Add(stream.StreamA, 8*stream.Second)) // self-purges a1
	j.Step(nil, -1)
	if n := j.StateSize(); n != 1 {
		t.Errorf("state holds %d, want only the fresh tuple", n)
	}
	if next.TupleCount() != 1 {
		t.Errorf("purged tuple must move to the next queue")
	}
}

func TestOneWayValidation(t *testing.T) {
	if _, err := NewSlicedOneWayJoin("j", 3, 2, stream.CrossProduct{}, stream.NewQueue()); err == nil {
		t.Error("inverted range must fail")
	}
}

func TestOneWayPunctForward(t *testing.T) {
	in := stream.NewQueue()
	j, _ := NewSlicedOneWayJoin("j", 0, stream.Second, stream.CrossProduct{}, in)
	res := j.Result().NewQueue()
	next := j.Next().NewQueue()
	in.PushPunct(9 * stream.Second)
	j.Step(nil, -1)
	if res.Empty() || !res.Pop().IsPunct() {
		t.Error("punct must reach the result queue")
	}
	if next.Empty() || !next.Pop().IsPunct() {
		t.Error("punct must flow down the chain")
	}
}
