package operator

import (
	"fmt"

	"stateslice/internal/stream"
)

// SlicedOneWayJoin is the sliced one-way window join
// A[W_start, W_end] s|>< B of Definition 1 in the paper (Figure 5): only
// stream A keeps a window state, restricted to tuples whose age relative to
// the probing B tuple lies in the slice range. Arriving A tuples are
// inserted; arriving B tuples cross-purge, probe and propagate (Figure 6).
//
// The operator has three outputs: the Joined-Result port, and the combined
// Purged-A-Tuple / Propagated-B-Tuple port ("next") that feeds the following
// join in a chain through one logical queue, as in Figure 7. When next is
// left unconnected, purged and propagated tuples are discarded — the
// behaviour of the last join of a chain.
type SlicedOneWayJoin struct {
	name         string
	wstart, wend stream.Time
	pred         stream.JoinPredicate
	in           *stream.Queue
	stateA       *stream.State
	result       Port
	next         Port
	// selfPurge additionally purges the A state on A arrivals (footnote 1
	// of the paper: "self-purge is also applicable"). Table 2's rows 9-10
	// are only reproducible with it enabled; see the slicetrace command.
	selfPurge bool
	// slab amortizes the joined-result allocations.
	slab stream.TupleSlab
}

// NewSlicedOneWayJoin builds a sliced one-way join for the window range
// [wstart, wend).
func NewSlicedOneWayJoin(name string, wstart, wend stream.Time, pred stream.JoinPredicate, in *stream.Queue) (*SlicedOneWayJoin, error) {
	if wstart < 0 || wend <= wstart {
		return nil, fmt.Errorf("operator %s: invalid slice range [%s, %s)", name, wstart, wend)
	}
	return &SlicedOneWayJoin{
		name:   name,
		wstart: wstart,
		wend:   wend,
		pred:   pred,
		in:     in,
		stateA: stream.NewState(),
	}, nil
}

// WithSelfPurge enables purging of the A state on A arrivals and returns the
// join.
func (j *SlicedOneWayJoin) WithSelfPurge() *SlicedOneWayJoin {
	j.selfPurge = true
	return j
}

// Result exposes the Joined-Result output port.
func (j *SlicedOneWayJoin) Result() *Port { return &j.result }

// Next exposes the combined purged/propagated output port feeding the next
// join of the chain.
func (j *SlicedOneWayJoin) Next() *Port { return &j.next }

// Range returns the slice window range [start, end).
func (j *SlicedOneWayJoin) Range() (start, end stream.Time) { return j.wstart, j.wend }

// StateSnapshot returns the A-state tuples oldest-first (used by traces).
func (j *SlicedOneWayJoin) StateSnapshot() []*stream.Tuple { return j.stateA.Snapshot() }

// Name implements Operator.
func (j *SlicedOneWayJoin) Name() string { return j.name }

// Pending implements Operator.
func (j *SlicedOneWayJoin) Pending() bool { return !j.in.Empty() }

// StateSize implements StateSizer.
func (j *SlicedOneWayJoin) StateSize() int { return j.stateA.Len() }

// Step implements Operator.
func (j *SlicedOneWayJoin) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !j.in.Empty() {
		it := j.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			j.result.Push(it)
			j.next.Push(it)
			continue
		}
		t := it.Tuple
		if t.Stream == stream.StreamA {
			if j.selfPurge {
				purgeExpired(m, j.stateA, t.Time, j.wend, &j.next)
			}
			j.stateA.Insert(t)
			continue
		}
		// Arriving B tuple: cross-purge, probe, propagate (Figure 6).
		purgeExpired(m, j.stateA, t.Time, j.wend, &j.next)
		sa, sb := j.stateA.Spans()
		m.probe(len(sa) + len(sb))
		for _, a := range sa {
			if j.pred.Match(a, t) {
				j.result.PushTuple(j.slab.Joined(a, t))
			}
		}
		for _, a := range sb {
			if j.pred.Match(a, t) {
				j.result.PushTuple(j.slab.Joined(a, t))
			}
		}
		j.next.PushTuple(t)
		j.result.PushPunct(t.Time)
	}
	return n
}
