package operator

import (
	"testing"

	"stateslice/internal/stream"
)

// These tests exercise the operator-level migration primitives of Section
// 5.3 (SplitAt / MergeFrom) in isolation; plan-level migration is covered in
// the plan package.

func TestSplitAtMovesNoTuplesImmediately(t *testing.T) {
	// Splitting inserts an empty-state join; the left slice's states are
	// untouched until its next cross-purge.
	input := randomInput(t, 200, 31)
	entry, joins, outs, ops := buildBinaryChain(t, []stream.Time{6 * stream.Second}, stream.CrossProduct{})
	runChain(entry, ops, input, nil)
	left := joins[0]
	before := left.StateSize()
	right, err := left.SplitAt("right", 2*stream.Second)
	if err != nil {
		t.Fatal(err)
	}
	if right.StateSize() != 0 {
		t.Error("new slice must start with empty states (Section 5.3)")
	}
	if left.StateSize() != before {
		t.Error("split must not move tuples eagerly")
	}
	if _, end := left.Range(); end != 2*stream.Second {
		t.Errorf("left end = %s, want the split point", end)
	}
	if s, e := right.Range(); s != 2*stream.Second || e != 6*stream.Second {
		t.Errorf("right range (%s,%s)", s, e)
	}
	drainPort(outs[0])
}

func TestSplitAtPreservesResults(t *testing.T) {
	// Run half the input, split, run the rest: the union of all results
	// must equal the unsplit reference with no losses or duplicates.
	input := randomInput(t, 400, 37)
	half := len(input) / 2

	entry, joins, outs, ops := buildBinaryChain(t, []stream.Time{5 * stream.Second}, stream.CrossProduct{})
	runChain(entry, ops, input[:half], nil)
	left := joins[0]
	right, err := left.SplitAt("right", 2*stream.Second)
	if err != nil {
		t.Fatal(err)
	}
	rightOut := right.Result().NewQueue()
	ops = append(ops, right)
	runChain(entry, ops, input[half:], nil)

	got := make(map[pairKey]int)
	for _, out := range append(outs, rightOut) {
		for _, r := range drainPort(out) {
			got[pairKey{r.A.Seq, r.B.Seq}]++
		}
	}
	want := bruteJoin(input, 5*stream.Second, 5*stream.Second, stream.CrossProduct{})
	if len(got) != len(want) {
		t.Fatalf("%d results across the split, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("pair %v count %d, want %d", k, got[k], n)
		}
	}
}

func TestSplitAtValidation(t *testing.T) {
	in := stream.NewQueue()
	j, _ := NewSlicedBinaryJoin("j", stream.Second, 4*stream.Second, stream.CrossProduct{}, in)
	if _, err := j.SplitAt("x", stream.Second); err == nil {
		t.Error("split at the start boundary must fail")
	}
	if _, err := j.SplitAt("x", 4*stream.Second); err == nil {
		t.Error("split at the end boundary must fail")
	}
	if _, err := j.SplitAt("x", 9*stream.Second); err == nil {
		t.Error("split outside the range must fail")
	}
}

func TestMergeFromConcatenatesStates(t *testing.T) {
	input := randomInput(t, 300, 41)
	entry, joins, outs, ops := buildBinaryChain(t,
		[]stream.Time{2 * stream.Second, 6 * stream.Second}, stream.CrossProduct{})
	runChain(entry, ops, input, nil)
	left, rightJ := joins[0], joins[1]
	wantTotal := left.StateSize() + rightJ.StateSize()
	if err := left.MergeFrom(rightJ); err != nil {
		t.Fatal(err)
	}
	if got := left.StateSize(); got != wantTotal {
		t.Errorf("merged state %d, want %d", got, wantTotal)
	}
	if _, end := left.Range(); end != 6*stream.Second {
		t.Errorf("merged end %s", end)
	}
	// State must remain age-ordered (older right-slice tuples first).
	for _, id := range []stream.ID{stream.StreamA, stream.StreamB} {
		snap := left.StateSnapshot(id)
		for i := 1; i < len(snap); i++ {
			if snap[i].Time < snap[i-1].Time {
				t.Fatalf("merged %s state out of order at %d", id, i)
			}
		}
	}
	for _, out := range outs {
		drainPort(out)
	}
}

func TestMergeFromPreservesResults(t *testing.T) {
	input := randomInput(t, 400, 43)
	half := len(input) / 2
	entry, joins, outs, ops := buildBinaryChain(t,
		[]stream.Time{2 * stream.Second, 5 * stream.Second}, stream.CrossProduct{})
	runChain(entry, ops, input[:half], nil)
	if err := joins[0].MergeFrom(joins[1]); err != nil {
		t.Fatal(err)
	}
	// Continue with the merged chain: only joins[0] remains.
	runChain(entry, []Operator{ops[0], joins[0]}, input[half:], nil)
	got := make(map[pairKey]int)
	for _, out := range outs {
		for _, r := range drainPort(out) {
			got[pairKey{r.A.Seq, r.B.Seq}]++
		}
	}
	want := bruteJoin(input, 5*stream.Second, 5*stream.Second, stream.CrossProduct{})
	if len(got) != len(want) {
		t.Fatalf("%d results across the merge, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("pair %v count %d, want %d", k, got[k], n)
		}
	}
}

func TestMergeFromRequiresEmptyQueue(t *testing.T) {
	entry, joins, _, ops := buildBinaryChain(t,
		[]stream.Time{stream.Second, 3 * stream.Second}, stream.CrossProduct{})
	var mb stream.ManualBuilder
	entry.PushTuple(mb.Add(stream.StreamA, stream.Second))
	ops[0].Step(nil, -1)
	joins[0].Step(nil, -1)
	// Force an item into the inter-slice queue without draining joins[1].
	entry.PushTuple(mb.Add(stream.StreamB, 10*stream.Second))
	ops[0].Step(nil, -1)
	joins[0].Step(nil, -1)
	if err := joins[0].MergeFrom(joins[1]); err == nil {
		t.Error("merging across a non-empty queue must fail")
	}
}

func TestMergeFromRequiresAdjacency(t *testing.T) {
	a, _ := NewSlicedBinaryJoin("a", 0, stream.Second, stream.CrossProduct{}, stream.NewQueue())
	c, _ := NewSlicedBinaryJoin("c", 2*stream.Second, 3*stream.Second, stream.CrossProduct{}, stream.NewQueue())
	if err := a.MergeFrom(c); err == nil {
		t.Error("merging non-adjacent slices must fail")
	}
}
