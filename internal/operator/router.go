package operator

import (
	"fmt"

	"stateslice/internal/stream"
)

// Router dispatches joined result tuples to query outputs by comparing the
// timestamp distance |Ta - Tb| of each result against the registered window
// sizes (Figure 3 of the paper). A result with distance d is delivered to
// every branch whose window w satisfies d <= w.
//
// Branches must be registered in ascending window order. Because the
// branches are nested (d <= w_k implies d <= w_{k+1}), the router scans
// boundaries from the smallest window and stops at the first success; the
// final boundary is never tested because every tuple reaching the router
// already satisfies the largest window. This makes the measured routing cost
// one comparison per result for two queries, exactly the routing term of
// Eq. (1), and fanout-1 routers cost nothing.
//
// Branches may additionally carry an unconditional extra set of outputs
// (AttachAll) that receive every result without any comparison — the
// downstream queries whose windows exceed the slice's end window in a merged
// chain (Figure 13(b)).
type Router struct {
	name    string
	in      *stream.Queue
	windows []stream.Time
	outs    []*Port
	all     Port
	// testLast disables the implied-last-boundary optimization: it is
	// required when results may carry distances beyond the largest branch
	// window (a slice whose end window exceeds every query window inside
	// it, as can arise from an online split at a non-window boundary).
	testLast bool
}

// NewRouter builds a router over the input queue.
func NewRouter(name string, in *stream.Queue) *Router {
	return &Router{name: name, in: in}
}

// AddBranch registers an output branch for the given window size and returns
// its port. Branches must be added in strictly ascending window order.
func (r *Router) AddBranch(w stream.Time) (*Port, error) {
	if n := len(r.windows); n > 0 && w <= r.windows[n-1] {
		return nil, fmt.Errorf("operator %s: branch windows must be strictly ascending (got %s after %s)",
			r.name, w, r.windows[n-1])
	}
	r.windows = append(r.windows, w)
	p := &Port{}
	r.outs = append(r.outs, p)
	return p, nil
}

// RequireLastCheck makes the router test the largest branch window too,
// instead of treating it as implied. Callers must enable it when routed
// results can carry a timestamp distance beyond the largest branch.
func (r *Router) RequireLastCheck() { r.testLast = true }

// All exposes the unconditional output port receiving every result.
func (r *Router) All() *Port { return &r.all }

// Branches returns the registered branch windows.
func (r *Router) Branches() []stream.Time {
	out := make([]stream.Time, len(r.windows))
	copy(out, r.windows)
	return out
}

// Name implements Operator.
func (r *Router) Name() string { return r.name }

// Pending implements Operator.
func (r *Router) Pending() bool { return !r.in.Empty() }

// Step implements Operator.
func (r *Router) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !r.in.Empty() {
		it := r.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			for _, p := range r.outs {
				p.Push(it)
			}
			r.all.Push(it)
			continue
		}
		t := it.Tuple
		d := t.WindowDiff()
		// Find the first branch accepting d. Unless RequireLastCheck
		// was set, the scan never tests the last boundary: results
		// reaching the router satisfy it by construction (the join's
		// own window equals the largest branch window).
		first := -1
		limit := len(r.windows)
		if !r.testLast {
			limit--
		}
		for k := 0; k < limit; k++ {
			m.route(1)
			if d <= r.windows[k] {
				first = k
				break
			}
		}
		if first == -1 && !r.testLast {
			first = len(r.windows) - 1 // implied last boundary
		}
		if first >= 0 {
			for k := first; k < len(r.outs); k++ {
				r.outs[k].Push(it)
			}
		}
		r.all.Push(it)
	}
	return n
}
