package operator

import (
	"fmt"

	"stateslice/internal/stream"
)

// Count-based windows: Section 2 of the paper notes that the state-slice
// techniques "can be applied to count-based window constraints in the same
// way". Here a window of size C holds the C most recent tuples of a stream,
// and a slice [Cstart, Cend) holds the tuples whose recency rank lies in
// that interval (rank 0 = newest). Instead of timestamp cross-purge, slices
// evict by capacity overflow: inserting into a full slice pushes the oldest
// tuple into the next slice's queue, so the eviction cascade plays the role
// of the purge step and the same pipelining argument (Lemma 1) applies with
// ranks substituted for timestamp distances.

// CountWindowJoin is the regular binary count-based window join: stream A
// keeps its last CA tuples, stream B its last CB.
type CountWindowJoin struct {
	name   string
	ca, cb int
	pred   stream.JoinPredicate
	in     *stream.Queue
	states [2]*stream.State
	out    Port
	slab   stream.TupleSlab
}

// NewCountWindowJoin builds a count-based window join.
func NewCountWindowJoin(name string, ca, cb int, pred stream.JoinPredicate, in *stream.Queue) (*CountWindowJoin, error) {
	if ca <= 0 || cb <= 0 {
		return nil, fmt.Errorf("operator %s: count windows must be positive (A=%d, B=%d)", name, ca, cb)
	}
	return &CountWindowJoin{
		name:   name,
		ca:     ca,
		cb:     cb,
		pred:   pred,
		in:     in,
		states: [2]*stream.State{stream.NewState(), stream.NewState()},
	}, nil
}

// Out exposes the joined-result port.
func (j *CountWindowJoin) Out() *Port { return &j.out }

// Name implements Operator.
func (j *CountWindowJoin) Name() string { return j.name }

// Pending implements Operator.
func (j *CountWindowJoin) Pending() bool { return !j.in.Empty() }

// StateSize implements StateSizer.
func (j *CountWindowJoin) StateSize() int { return j.states[0].Len() + j.states[1].Len() }

// Step implements Operator.
func (j *CountWindowJoin) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !j.in.Empty() {
		it := j.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			j.out.Push(it)
			continue
		}
		t := it.Tuple
		// Probe the opposite state first (the arriving tuple must not
		// join tuples that its own insertion would evict concurrently
		// on the other side; probing before inserting preserves the
		// "last C at arrival" semantics).
		opp := j.states[t.Stream.Other()]
		sa, sb := opp.Spans()
		m.probe(len(sa) + len(sb))
		for _, o := range sa {
			if matches(j.pred, t, o) {
				j.emit(t, o)
			}
		}
		for _, o := range sb {
			if matches(j.pred, t, o) {
				j.emit(t, o)
			}
		}
		// Insert and evict by capacity.
		own := j.states[t.Stream]
		own.Insert(t)
		cap := j.ca
		if t.Stream == stream.StreamB {
			cap = j.cb
		}
		for own.Len() > cap {
			m.purge(1)
			own.PopFront()
		}
		j.out.PushPunct(t.Time)
	}
	return n
}

func (j *CountWindowJoin) emit(t, o *stream.Tuple) {
	if t.Stream == stream.StreamA {
		j.out.PushTuple(j.slab.Joined(t, o))
	} else {
		j.out.PushTuple(j.slab.Joined(o, t))
	}
}

// SlicedCountBinaryJoin is a count-based slice [Cstart, Cend) of a binary
// join chain: each side's state holds the tuples whose recency rank within
// their stream lies in the slice interval. Female copies fill states and
// cascade out on overflow; male copies probe and propagate, mirroring the
// time-based SlicedBinaryJoin.
type SlicedCountBinaryJoin struct {
	name         string
	cstart, cend int
	pred         stream.JoinPredicate
	in           *stream.Queue
	states       [2]*stream.State
	result       Port
	next         Port
	slab         stream.TupleSlab
}

// NewSlicedCountBinaryJoin builds a sliced count-based binary join for the
// rank interval [cstart, cend).
func NewSlicedCountBinaryJoin(name string, cstart, cend int, pred stream.JoinPredicate, in *stream.Queue) (*SlicedCountBinaryJoin, error) {
	if cstart < 0 || cend <= cstart {
		return nil, fmt.Errorf("operator %s: invalid count slice [%d, %d)", name, cstart, cend)
	}
	return &SlicedCountBinaryJoin{
		name:   name,
		cstart: cstart,
		cend:   cend,
		pred:   pred,
		in:     in,
		states: [2]*stream.State{stream.NewState(), stream.NewState()},
	}, nil
}

// Result exposes the Joined-Result output port.
func (j *SlicedCountBinaryJoin) Result() *Port { return &j.result }

// Next exposes the port feeding the next slice.
func (j *SlicedCountBinaryJoin) Next() *Port { return &j.next }

// Range returns the rank interval [start, end).
func (j *SlicedCountBinaryJoin) Range() (start, end int) { return j.cstart, j.cend }

// Name implements Operator.
func (j *SlicedCountBinaryJoin) Name() string { return j.name }

// Pending implements Operator.
func (j *SlicedCountBinaryJoin) Pending() bool { return !j.in.Empty() }

// StateSize implements StateSizer.
func (j *SlicedCountBinaryJoin) StateSize() int { return j.states[0].Len() + j.states[1].Len() }

// Step implements Operator.
func (j *SlicedCountBinaryJoin) Step(m *CostMeter, max int) int {
	capacity := j.cend - j.cstart
	n := 0
	for n < budget(max) && !j.in.Empty() {
		it := j.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			j.result.Push(it)
			j.next.Push(it)
			continue
		}
		t := it.Tuple
		switch it.Role {
		case stream.RoleFemale:
			own := j.states[t.Stream]
			own.Insert(t)
			for own.Len() > capacity {
				m.purge(1)
				j.next.Push(stream.RoleItem(own.PopFront(), stream.RoleFemale))
			}
		case stream.RoleMale:
			opp := j.states[t.Stream.Other()]
			sa, sb := opp.Spans()
			m.probe(len(sa) + len(sb))
			for _, f := range sa {
				if matches(j.pred, t, f) {
					j.emitSliced(t, f)
				}
			}
			for _, f := range sb {
				if matches(j.pred, t, f) {
					j.emitSliced(t, f)
				}
			}
			j.next.Push(stream.RoleItem(t, stream.RoleMale))
			j.result.PushPunct(t.Time)
		default:
			panic(fmt.Sprintf("operator %s: plain tuple %s reached a sliced count join", j.name, t))
		}
	}
	return n
}

func (j *SlicedCountBinaryJoin) emitSliced(t, f *stream.Tuple) {
	if t.Stream == stream.StreamA {
		j.result.PushTuple(j.slab.Joined(t, f))
	} else {
		j.result.PushTuple(j.slab.Joined(f, t))
	}
}
