package operator

import "fmt"

// CostMeter tallies the comparison operations performed by the operators of
// a plan, one counter per operator category. The paper estimates CPU cost as
// "the count of comparisons per time unit" covering value comparisons and
// timestamp comparisons, which it assumes equally expensive (Section 3); the
// meter reproduces that metric so measured costs can be checked against the
// analytical formulas Eq. (1)-(3).
type CostMeter struct {
	// Probe counts join probe comparisons (one per state tuple examined
	// by nested-loop probing, or per bucket tuple with hash probing).
	Probe uint64
	// Purge counts cross-purge timestamp comparisons (one per state tuple
	// examined while purging, including the comparison that stops).
	Purge uint64
	// Route counts router boundary comparisons (|Ta-Tb| against window
	// sizes, one per boundary examined per joined result).
	Route uint64
	// Union counts order-preserving merge comparisons (one per emitted
	// tuple).
	Union uint64
	// Filter counts selection predicate evaluations, including lineage
	// mark evaluations and lineage level checks.
	Filter uint64
	// Split counts stream partitioning predicate evaluations.
	Split uint64
	// Hash counts hash computations of indexed (hash-join) probing.
	Hash uint64
	// Invocations counts operator Step item consumptions, the proxy for
	// the per-operator system overhead C_sys of Section 5.2.
	Invocations uint64
}

// The category helpers are nil-safe so operators can run without a meter in
// tests.

func (m *CostMeter) probe(n int) {
	if m != nil {
		m.Probe += uint64(n)
	}
}

func (m *CostMeter) purge(n int) {
	if m != nil {
		m.Purge += uint64(n)
	}
}

func (m *CostMeter) route(n int) {
	if m != nil {
		m.Route += uint64(n)
	}
}

func (m *CostMeter) union(n int) {
	if m != nil {
		m.Union += uint64(n)
	}
}

func (m *CostMeter) filter(n int) {
	if m != nil {
		m.Filter += uint64(n)
	}
}

func (m *CostMeter) split(n int) {
	if m != nil {
		m.Split += uint64(n)
	}
}

func (m *CostMeter) hash(n int) {
	if m != nil {
		m.Hash += uint64(n)
	}
}

func (m *CostMeter) invoke(n int) {
	if m != nil {
		m.Invocations += uint64(n)
	}
}

// Comparisons returns the total comparison count across all categories
// except Invocations (which models scheduling overhead, not comparisons).
func (m *CostMeter) Comparisons() uint64 {
	if m == nil {
		return 0
	}
	return m.Probe + m.Purge + m.Route + m.Union + m.Filter + m.Split + m.Hash
}

// Total returns comparisons plus invocation overhead weighted by csys
// (comparisons per operator invocation), the paper's C_sys system overhead
// factor.
func (m *CostMeter) Total(csys float64) float64 {
	if m == nil {
		return 0
	}
	return float64(m.Comparisons()) + csys*float64(m.Invocations)
}

// Add folds another meter's counts into m, category by category. The
// concurrent executors give every goroutine its own meter and fold them into
// the run total once all goroutines have stopped.
func (m *CostMeter) Add(o CostMeter) {
	if m == nil {
		return
	}
	m.Probe += o.Probe
	m.Purge += o.Purge
	m.Route += o.Route
	m.Union += o.Union
	m.Filter += o.Filter
	m.Split += o.Split
	m.Hash += o.Hash
	m.Invocations += o.Invocations
}

// Sub returns the per-category difference m - base. It lets the harness
// compute the cost of a time slice of an execution.
func (m *CostMeter) Sub(base CostMeter) CostMeter {
	if m == nil {
		return CostMeter{}
	}
	return CostMeter{
		Probe:       m.Probe - base.Probe,
		Purge:       m.Purge - base.Purge,
		Route:       m.Route - base.Route,
		Union:       m.Union - base.Union,
		Filter:      m.Filter - base.Filter,
		Split:       m.Split - base.Split,
		Hash:        m.Hash - base.Hash,
		Invocations: m.Invocations - base.Invocations,
	}
}

// String summarises the meter.
func (m *CostMeter) String() string {
	return fmt.Sprintf("probe=%d purge=%d route=%d union=%d filter=%d split=%d hash=%d invocations=%d",
		m.Probe, m.Purge, m.Route, m.Union, m.Filter, m.Split, m.Hash, m.Invocations)
}
