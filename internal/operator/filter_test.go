package operator

import (
	"testing"

	"stateslice/internal/stream"
)

func TestFilterDropsFailingTuples(t *testing.T) {
	in := stream.NewQueue()
	f := NewFilter("f", stream.Threshold{S: 0.5}, in)
	out := f.Out().NewQueue()
	in.PushTuple(&stream.Tuple{Seq: 1, Value: 0.9})
	in.PushTuple(&stream.Tuple{Seq: 2, Value: 0.1})
	in.PushPunct(stream.Second)
	m := &CostMeter{}
	f.Step(m, -1)
	got := drainPort(out)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("filter passed %v", got)
	}
	if m.Filter != 2 {
		t.Errorf("filter comparisons = %d, want 2", m.Filter)
	}
	if f.Name() != "f" {
		t.Error("name wrong")
	}
}

func TestStreamFilterPassesOtherStream(t *testing.T) {
	in := stream.NewQueue()
	f := NewStreamFilter("f", stream.Threshold{S: 0.5}, stream.StreamA, in)
	out := f.Out().NewQueue()
	in.PushTuple(&stream.Tuple{Seq: 1, Stream: stream.StreamA, Value: 0.1}) // dropped
	in.PushTuple(&stream.Tuple{Seq: 2, Stream: stream.StreamB, Value: 0.1}) // passes: B unfiltered
	m := &CostMeter{}
	f.Step(m, -1)
	got := drainPort(out)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("stream filter passed %v", got)
	}
	if m.Filter != 1 {
		t.Errorf("B tuples must not be evaluated (got %d comparisons)", m.Filter)
	}
}

func TestResultFilterEvaluatesASide(t *testing.T) {
	in := stream.NewQueue()
	f := NewResultFilter("f", stream.Threshold{S: 0.5}, in)
	out := f.Out().NewQueue()
	pass := stream.Joined(
		&stream.Tuple{Seq: 1, Stream: stream.StreamA, Value: 0.9},
		&stream.Tuple{Time: 1, Seq: 2, Stream: stream.StreamB, Value: 0.0})
	fail := stream.Joined(
		&stream.Tuple{Seq: 3, Stream: stream.StreamA, Value: 0.1},
		&stream.Tuple{Time: 1, Seq: 4, Stream: stream.StreamB, Value: 0.9})
	in.PushTuple(pass)
	in.PushTuple(fail)
	f.Step(nil, -1)
	got := drainPort(out)
	if len(got) != 1 || got[0] != pass {
		t.Fatalf("sigma'_A must judge the A side: %v", got)
	}
}

func TestLineageMarkIdenticalPredicates(t *testing.T) {
	// All filtered queries share one predicate: a single evaluation
	// decides every mask bit (the cost structure of Eq. (3)).
	sel := stream.Threshold{S: 0.5}
	conds := []stream.Predicate{nil, sel, sel}
	in := stream.NewQueue()
	lm := NewLineageMark("lm", conds, nil, in)
	out := lm.Out().NewQueue()
	m := &CostMeter{}
	in.PushTuple(&stream.Tuple{Seq: 1, Stream: stream.StreamA, Value: 0.9})
	in.PushTuple(&stream.Tuple{Seq: 2, Stream: stream.StreamA, Value: 0.1})
	in.PushTuple(&stream.Tuple{Seq: 3, Stream: stream.StreamB})
	lm.Step(m, -1)
	got := drainPort(out)
	if len(got) != 3 {
		t.Fatalf("marked %d tuples, want 3 (no drops: Q1 keeps everything)", len(got))
	}
	if got[0].Level != 3 || got[0].CondMask != 0b111 {
		t.Errorf("passing tuple: level %d mask %b", got[0].Level, got[0].CondMask)
	}
	if got[1].Level != 1 || got[1].CondMask != 0b001 {
		t.Errorf("failing tuple: level %d mask %b, want level 1 (Q1 only)", got[1].Level, got[1].CondMask)
	}
	if got[2].Level != 3 {
		t.Error("B tuples reach every slice")
	}
	if m.Filter != 2 {
		t.Errorf("identical predicates must be evaluated once per A tuple (got %d)", m.Filter)
	}
}

func TestLineageMarkDropsUselessTuples(t *testing.T) {
	// Every query filtered: tuples failing the shared predicate die at
	// the chain entry.
	sel := stream.Threshold{S: 0.5}
	in := stream.NewQueue()
	lm := NewLineageMark("lm", []stream.Predicate{sel, sel}, nil, in)
	out := lm.Out().NewQueue()
	in.PushTuple(&stream.Tuple{Seq: 1, Stream: stream.StreamA, Value: 0.1})
	lm.Step(nil, -1)
	if got := drainPort(out); len(got) != 0 {
		t.Fatalf("useless tuple must be dropped, got %v", got)
	}
}

func TestLineageMarkNestedPredicates(t *testing.T) {
	// Heterogeneous nested thresholds: Level is the highest query index
	// whose condition holds (Section 6.1's decreasing-order evaluation).
	conds := []stream.Predicate{
		stream.Threshold{S: 0.9}, // loose
		stream.Threshold{S: 0.5},
		stream.Threshold{S: 0.1}, // tight
	}
	in := stream.NewQueue()
	lm := NewLineageMark("lm", conds, nil, in)
	out := lm.Out().NewQueue()
	in.PushTuple(&stream.Tuple{Seq: 1, Stream: stream.StreamA, Value: 0.6}) // passes Q1,Q2 only
	in.PushTuple(&stream.Tuple{Seq: 2, Stream: stream.StreamA, Value: 0.95})
	lm.Step(nil, -1)
	got := drainPort(out)
	if got[0].Level != 2 || got[0].CondMask != 0b011 {
		t.Errorf("tuple 1: level %d mask %b, want 2 / 011", got[0].Level, got[0].CondMask)
	}
	if got[1].Level != 3 || got[1].CondMask != 0b111 {
		t.Errorf("tuple 2: level %d mask %b, want 3 / 111", got[1].Level, got[1].CondMask)
	}
}

func TestLineageFilter(t *testing.T) {
	// A-only gates skip stream-B tuples entirely, keeping the paper's
	// single-stream cost; two-stream gates (NewLineageFilter2) check
	// every tuple against its own stream's lineage level.
	in := stream.NewQueue()
	lf := NewLineageFilter("lf", 2, in)
	out := lf.Out().NewQueue()
	in.PushTuple(&stream.Tuple{Seq: 1, Stream: stream.StreamA, Level: 1}) // dropped
	in.PushTuple(&stream.Tuple{Seq: 2, Stream: stream.StreamA, Level: 2}) // passes
	in.PushTuple(&stream.Tuple{Seq: 3, Stream: stream.StreamB, Level: 0}) // B passes unchecked
	in.PushPunct(stream.Second)
	m := &CostMeter{}
	lf.Step(m, -1)
	got := drainPort(out)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("lineage filter passed %v", got)
	}
	if m.Filter != 2 {
		t.Errorf("level checks = %d, want 2 (A tuples only)", m.Filter)
	}

	in2 := stream.NewQueue()
	lf2 := NewLineageFilter2("lf2", 2, in2)
	out2 := lf2.Out().NewQueue()
	in2.PushTuple(&stream.Tuple{Seq: 5, Stream: stream.StreamB, Level: 3}) // marked B passes
	in2.PushTuple(&stream.Tuple{Seq: 6, Stream: stream.StreamB, Level: 1}) // filtered B dropped
	m2 := &CostMeter{}
	lf2.Step(m2, -1)
	got2 := drainPort(out2)
	if len(got2) != 1 || got2[0].Seq != 5 {
		t.Fatalf("two-stream gate passed %v", got2)
	}
	if m2.Filter != 2 {
		t.Errorf("two-stream gate checks = %d, want 2", m2.Filter)
	}
}

func TestMaskFilter(t *testing.T) {
	in := stream.NewQueue()
	mf := NewMaskFilter("mf", 1, in)
	out := mf.Out().NewQueue()
	mk := func(mask uint64, seq uint64) *stream.Tuple {
		return stream.Joined(
			&stream.Tuple{Seq: seq, Stream: stream.StreamA, CondMask: mask},
			&stream.Tuple{Time: 1, Seq: seq + 1, Stream: stream.StreamB})
	}
	in.PushTuple(mk(0b010, 1)) // bit 1 set: passes
	in.PushTuple(mk(0b101, 3)) // bit 1 clear: dropped
	in.PushPunct(stream.Second)
	mf.Step(nil, -1)
	got := drainPort(out)
	if len(got) != 1 || got[0].A.Seq != 1 {
		t.Fatalf("mask filter passed %v", got)
	}
	if mf.Name() != "mf" || !mf.Pending() == (in.Len() > 0) {
		t.Log("cosmetic accessors exercised")
	}
}

func TestSplitPartitions(t *testing.T) {
	in := stream.NewQueue()
	sp := NewSplit("split", stream.Threshold{S: 0.5}, in)
	pass := sp.Pass().NewQueue()
	fail := sp.Fail().NewQueue()
	in.PushTuple(&stream.Tuple{Seq: 1, Value: 0.9})
	in.PushTuple(&stream.Tuple{Seq: 2, Value: 0.1})
	in.PushPunct(stream.Second)
	m := &CostMeter{}
	sp.Step(m, -1)
	p, f := drainPort(pass), drainPort(fail)
	if len(p) != 1 || p[0].Seq != 1 {
		t.Errorf("pass partition %v", p)
	}
	if len(f) != 1 || f[0].Seq != 2 {
		t.Errorf("fail partition %v", f)
	}
	if m.Split != 2 {
		t.Errorf("split comparisons = %d, want 2", m.Split)
	}
	if sp.Name() != "split" {
		t.Error("name wrong")
	}
}

func TestSplitForwardsPunctToBothSides(t *testing.T) {
	in := stream.NewQueue()
	sp := NewSplit("split", stream.True{}, in)
	pass := sp.Pass().NewQueue()
	fail := sp.Fail().NewQueue()
	in.PushPunct(7)
	sp.Step(nil, -1)
	if pass.Empty() || fail.Empty() {
		t.Fatal("punctuations must reach both partitions")
	}
}

func TestSinkCountsAndOrders(t *testing.T) {
	in := stream.NewQueue()
	s := NewSink("q", in).Collecting()
	in.PushTuple(mkResult(10, 2))
	in.PushTuple(mkResult(20, 4))
	in.PushPunct(25)
	s.Step(nil, -1)
	if s.Count() != 2 || len(s.Results()) != 2 {
		t.Fatalf("count %d, results %d", s.Count(), len(s.Results()))
	}
	if s.OrderViolations() != 0 {
		t.Error("ordered input flagged")
	}
	in.PushTuple(mkResult(15, 6)) // out of order
	s.Step(nil, -1)
	if s.OrderViolations() != 1 {
		t.Errorf("violations = %d, want 1", s.OrderViolations())
	}
	if s.Name() != "q" {
		t.Error("name wrong")
	}
}

func TestOperatorBudgets(t *testing.T) {
	// Every operator honours the Step budget.
	in := stream.NewQueue()
	f := NewFilter("f", stream.True{}, in)
	f.Out().NewQueue()
	for i := 0; i < 10; i++ {
		in.PushTuple(&stream.Tuple{Seq: uint64(i)})
	}
	if n := f.Step(nil, 3); n != 3 {
		t.Errorf("budgeted step consumed %d", n)
	}
	if !f.Pending() {
		t.Error("filter must report pending input")
	}
	if n := f.Step(nil, -1); n != 7 {
		t.Errorf("unbounded step consumed %d", n)
	}
}

func TestPortFanoutAndDetach(t *testing.T) {
	var p Port
	if p.Connected() {
		t.Error("fresh port must not be connected")
	}
	q1, q2 := p.NewQueue(), p.NewQueue()
	if p.Fanout() != 2 {
		t.Errorf("fanout = %d", p.Fanout())
	}
	p.PushTuple(&stream.Tuple{Seq: 1})
	if q1.Len() != 1 || q2.Len() != 1 {
		t.Error("push must fan out to all queues")
	}
	p.DetachAll()
	p.PushTuple(&stream.Tuple{Seq: 2})
	if q1.Len() != 1 || q2.Len() != 1 {
		t.Error("detached queues must stop receiving")
	}
}

func TestMeterHelpers(t *testing.T) {
	m := &CostMeter{Probe: 10, Purge: 5, Route: 1, Union: 2, Filter: 3, Split: 4, Hash: 6, Invocations: 7}
	if got := m.Comparisons(); got != 31 {
		t.Errorf("Comparisons = %d, want 31", got)
	}
	if got := m.Total(2); got != 31+14 {
		t.Errorf("Total(2) = %g, want 45", got)
	}
	d := m.Sub(CostMeter{Probe: 4, Invocations: 2})
	if d.Probe != 6 || d.Invocations != 5 {
		t.Errorf("Sub wrong: %+v", d)
	}
	if m.String() == "" {
		t.Error("String empty")
	}
	var nilMeter *CostMeter
	if nilMeter.Comparisons() != 0 || nilMeter.Total(1) != 0 {
		t.Error("nil meter must read as zero")
	}
	if (nilMeter.Sub(CostMeter{})) != (CostMeter{}) {
		t.Error("nil meter Sub must be zero")
	}
}
