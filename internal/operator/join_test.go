package operator

import (
	"math/rand"
	"testing"

	"stateslice/internal/stream"
)

// drainPort pops all tuples (skipping punctuations) from a queue.
func drainPort(q *stream.Queue) []*stream.Tuple {
	var out []*stream.Tuple
	for !q.Empty() {
		it := q.Pop()
		if !it.IsPunct() {
			out = append(out, it.Tuple)
		}
	}
	return out
}

// pairKey identifies a join result.
type pairKey struct{ a, b uint64 }

func keysOf(ts []*stream.Tuple) map[pairKey]int {
	out := make(map[pairKey]int)
	for _, t := range ts {
		out[pairKey{t.A.Seq, t.B.Seq}]++
	}
	return out
}

// bruteJoin computes the closed-window reference answer.
func bruteJoin(input []*stream.Tuple, wa, wb stream.Time, pred stream.JoinPredicate) map[pairKey]int {
	out := make(map[pairKey]int)
	for i, x := range input {
		for _, y := range input[:i] {
			var a, b *stream.Tuple
			switch {
			case x.Stream == stream.StreamA && y.Stream == stream.StreamB:
				a, b = x, y
			case x.Stream == stream.StreamB && y.Stream == stream.StreamA:
				a, b = y, x
			default:
				continue
			}
			if b.Time > a.Time && b.Time-a.Time > wa {
				continue
			}
			if a.Time > b.Time && a.Time-b.Time > wb {
				continue
			}
			if pred.Match(a, b) {
				out[pairKey{a.Seq, b.Seq}]++
			}
		}
	}
	return out
}

func randomInput(t *testing.T, n int, seed int64) []*stream.Tuple {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var mb stream.ManualBuilder
	at := stream.Time(0)
	for i := 0; i < n; i++ {
		at += stream.Time(1+rng.Intn(900)) * stream.Millisecond
		id := stream.StreamA
		if rng.Intn(2) == 1 {
			id = stream.StreamB
		}
		tp := mb.Add(id, at)
		tp.Key = int64(rng.Intn(4))
		tp.Value = rng.Float64()
	}
	return mb.Tuples()
}

func TestWindowJoinMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		input := randomInput(t, 300, seed)
		in := stream.NewQueue()
		j, err := NewWindowJoin("j", 3*stream.Second, 5*stream.Second, stream.Equijoin{}, in)
		if err != nil {
			t.Fatal(err)
		}
		out := j.Out().NewQueue()
		for _, tp := range input {
			in.PushTuple(tp)
		}
		j.Step(nil, -1)
		got := keysOf(drainPort(out))
		want := bruteJoin(input, 3*stream.Second, 5*stream.Second, stream.Equijoin{})
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("seed %d: result %v count %d, want %d", seed, k, got[k], n)
			}
		}
	}
}

func TestWindowJoinAsymmetricWindows(t *testing.T) {
	// A[2s] join B[6s]: b joins a when Tb-Ta <= 2s; a joins b when
	// Ta-Tb <= 6s.
	var mb stream.ManualBuilder
	a1 := mb.Add(stream.StreamA, 1*stream.Second)
	b1 := mb.Add(stream.StreamB, 2*stream.Second)  // diff 1: within A window
	b2 := mb.Add(stream.StreamB, 4*stream.Second)  // diff 3: outside A window
	a2 := mb.Add(stream.StreamA, 9*stream.Second)  // diff to b2 = 5: within B window
	a3 := mb.Add(stream.StreamA, 11*stream.Second) // diff to b2 = 7: outside
	_ = a3
	in := stream.NewQueue()
	j, err := NewWindowJoin("j", 2*stream.Second, 6*stream.Second, stream.CrossProduct{}, in)
	if err != nil {
		t.Fatal(err)
	}
	out := j.Out().NewQueue()
	for _, tp := range mb.Tuples() {
		in.PushTuple(tp)
	}
	j.Step(nil, -1)
	got := keysOf(drainPort(out))
	want := map[pairKey]int{
		{a1.Seq, b1.Seq}: 1,
		{a2.Seq, b2.Seq}: 1,
	}
	if len(got) != len(want) {
		t.Fatalf("results %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != 1 {
			t.Fatalf("missing %v", k)
		}
	}
}

func TestWindowJoinBoundaryInclusive(t *testing.T) {
	// Distance exactly equal to the window joins (the closed-boundary
	// semantics of Figure 6 / Table 2; see the WindowJoin doc comment).
	var mb stream.ManualBuilder
	a := mb.Add(stream.StreamA, 1*stream.Second)
	b := mb.Add(stream.StreamB, 3*stream.Second) // diff exactly 2s
	in := stream.NewQueue()
	j, err := NewWindowJoin("j", 2*stream.Second, 2*stream.Second, stream.CrossProduct{}, in)
	if err != nil {
		t.Fatal(err)
	}
	out := j.Out().NewQueue()
	in.PushTuple(a)
	in.PushTuple(b)
	j.Step(nil, -1)
	res := drainPort(out)
	if len(res) != 1 {
		t.Fatalf("boundary pair must join, got %d results", len(res))
	}
	// And one microsecond beyond must not.
	var mb2 stream.ManualBuilder
	a2 := mb2.Add(stream.StreamA, 1*stream.Second)
	b2 := mb2.Add(stream.StreamB, 3*stream.Second+stream.Microsecond)
	in2 := stream.NewQueue()
	j2, err := NewWindowJoin("j", 2*stream.Second, 2*stream.Second, stream.CrossProduct{}, in2)
	if err != nil {
		t.Fatal(err)
	}
	out2 := j2.Out().NewQueue()
	in2.PushTuple(a2)
	in2.PushTuple(b2)
	j2.Step(nil, -1)
	if res := drainPort(out2); len(res) != 0 {
		t.Fatalf("pair beyond the window joined: %v", res)
	}
}

func TestWindowJoinPurges(t *testing.T) {
	in := stream.NewQueue()
	j, err := NewWindowJoin("j", 2*stream.Second, 2*stream.Second, stream.CrossProduct{}, in)
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Out().NewQueue()
	var mb stream.ManualBuilder
	for i := 1; i <= 10; i++ {
		in.PushTuple(mb.Add(stream.StreamA, stream.Time(i)*stream.Second))
		in.PushTuple(mb.Add(stream.StreamB, stream.Time(i)*stream.Second+stream.Millisecond))
		j.Step(nil, -1)
	}
	// Cross-purge bounds each state to the window: at most ~3 tuples of
	// each stream (2s window at 1 tuple/sec, closed boundary).
	if n := j.StateSize(); n > 6 {
		t.Errorf("state holds %d tuples; cross-purge failed", n)
	}
	wa, wb := j.Windows()
	if wa != 2*stream.Second || wb != 2*stream.Second {
		t.Error("Windows() wrong")
	}
}

func TestWindowJoinHashProbeEquivalent(t *testing.T) {
	input := randomInput(t, 400, 99)
	run := func(hash bool) map[pairKey]int {
		in := stream.NewQueue()
		j, err := NewWindowJoin("j", 4*stream.Second, 4*stream.Second, stream.Equijoin{}, in)
		if err != nil {
			t.Fatal(err)
		}
		if hash {
			if _, err := j.WithHashProbe(); err != nil {
				t.Fatal(err)
			}
		}
		out := j.Out().NewQueue()
		for _, tp := range input {
			in.PushTuple(tp)
		}
		j.Step(nil, -1)
		return keysOf(drainPort(out))
	}
	nl, h := run(false), run(true)
	if len(nl) != len(h) {
		t.Fatalf("hash probing changed the result: %d vs %d results", len(nl), len(h))
	}
	for k := range nl {
		if h[k] != nl[k] {
			t.Fatalf("hash probing lost result %v", k)
		}
	}
}

func TestWindowJoinHashProbeCheaper(t *testing.T) {
	input := randomInput(t, 600, 7)
	count := func(hash bool) (probe, hashOps uint64) {
		in := stream.NewQueue()
		j, _ := NewWindowJoin("j", 5*stream.Second, 5*stream.Second, stream.Equijoin{}, in)
		if hash {
			j.WithHashProbe()
		}
		_ = j.Out().NewQueue()
		m := &CostMeter{}
		for _, tp := range input {
			in.PushTuple(tp)
		}
		j.Step(m, -1)
		return m.Probe, m.Hash
	}
	nlProbe, _ := count(false)
	hProbe, hOps := count(true)
	if hProbe >= nlProbe {
		t.Errorf("hash probing examined %d tuples, nested loop %d", hProbe, nlProbe)
	}
	if hOps == 0 {
		t.Error("hash probes must be metered")
	}
}

func TestWindowJoinHashRequiresEquijoin(t *testing.T) {
	in := stream.NewQueue()
	j, _ := NewWindowJoin("j", stream.Second, stream.Second, stream.CrossProduct{}, in)
	if _, err := j.WithHashProbe(); err == nil {
		t.Error("hash probing over a non-equijoin must fail")
	}
}

func TestWindowJoinValidation(t *testing.T) {
	if _, err := NewWindowJoin("j", -1, stream.Second, stream.CrossProduct{}, stream.NewQueue()); err == nil {
		t.Error("negative window must fail")
	}
}

func TestWindowJoinForwardsPunctuations(t *testing.T) {
	in := stream.NewQueue()
	j, _ := NewWindowJoin("j", stream.Second, stream.Second, stream.CrossProduct{}, in)
	out := j.Out().NewQueue()
	in.PushPunct(5 * stream.Second)
	j.Step(nil, -1)
	if out.Empty() || !out.Pop().IsPunct() {
		t.Error("punctuation must pass through the join")
	}
}

func TestWindowJoinMeterCounts(t *testing.T) {
	// Probing a state of size k costs exactly k comparisons (nested
	// loop); purging costs one comparison per examined tuple.
	var mb stream.ManualBuilder
	in := stream.NewQueue()
	j, _ := NewWindowJoin("j", 100*stream.Second, 100*stream.Second, stream.CrossProduct{}, in)
	_ = j.Out().NewQueue()
	m := &CostMeter{}
	for i := 1; i <= 5; i++ {
		in.PushTuple(mb.Add(stream.StreamA, stream.Time(i)*stream.Second))
	}
	j.Step(m, -1)
	if m.Probe != 0 {
		t.Errorf("A-only input probed %d times (B state empty)", m.Probe)
	}
	in.PushTuple(mb.Add(stream.StreamB, 6*stream.Second))
	j.Step(m, -1)
	if m.Probe != 5 {
		t.Errorf("probe count %d, want 5 (state size)", m.Probe)
	}
	if m.Purge != 1 {
		t.Errorf("purge count %d, want 1 (front check only)", m.Purge)
	}
}
