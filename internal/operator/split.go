package operator

import "stateslice/internal/stream"

// Split partitions one input stream by a selection predicate into a passing
// and a failing substream. It is the partitioning operator of the
// selection push-down sharing strategy (Figure 4 of the paper): stream A is
// split by the condition of sigma_A so that each downstream join receives a
// disjoint part of the stream.
//
// Punctuations are forwarded to both outputs so downstream unions keep
// making progress.
type Split struct {
	name string
	pred stream.Predicate
	in   *stream.Queue
	pass Port
	fail Port
}

// NewSplit builds a split over the input queue.
func NewSplit(name string, pred stream.Predicate, in *stream.Queue) *Split {
	return &Split{name: name, pred: pred, in: in}
}

// Pass exposes the output port carrying tuples that satisfy the predicate.
func (s *Split) Pass() *Port { return &s.pass }

// Fail exposes the output port carrying tuples that do not satisfy it.
func (s *Split) Fail() *Port { return &s.fail }

// Name implements Operator.
func (s *Split) Name() string { return s.name }

// Pending implements Operator.
func (s *Split) Pending() bool { return !s.in.Empty() }

// Step implements Operator.
func (s *Split) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !s.in.Empty() {
		it := s.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			s.pass.Push(it)
			s.fail.Push(it)
			continue
		}
		m.split(1)
		if s.pred.Eval(it.Tuple) {
			s.pass.Push(it)
		} else {
			s.fail.Push(it)
		}
	}
	return n
}
