package operator

import (
	"fmt"

	"stateslice/internal/stream"
)

// This file implements the two primitive operations of online chain
// migration from Section 5.3 of the paper: splitting one sliced join into
// two adjacent slices, and merging two adjacent slices into one. Both
// operate on live SlicedBinaryJoin operators between scheduler steps.
//
// Splitting inserts an empty-state join to the right of the split slice; the
// shrunk window of the left join then purges the now-out-of-range tuples
// into the connecting queue ahead of any probing male, so no result is lost
// or duplicated ("the execution of Ji will purge tuples, due to its new
// smaller window, into the queue ... and eventually fill up the states of
// J'i correctly").
//
// Merging requires the connecting queue to be empty (the engine drains the
// downstream join first); the states are then concatenated with the older
// slice's tuples in front.

// SplitAt splits j (range [start,end)) into j = [start, mid) and a new join
// [mid, end) and returns the new join. The caller owns rewiring: j's next
// port is redirected to the new join's input queue, and the previous
// destinations of j's next port become the new join's next destinations.
func (j *SlicedBinaryJoin) SplitAt(name string, mid stream.Time) (*SlicedBinaryJoin, error) {
	if mid <= j.wstart || mid >= j.wend {
		return nil, fmt.Errorf("operator %s: split point %s outside (%s, %s)", j.name, mid, j.wstart, j.wend)
	}
	q := stream.NewQueue()
	right, err := NewSlicedBinaryJoin(name, mid, j.wend, j.pred, q)
	if err != nil {
		return nil, err
	}
	// The new join inherits j's downstream connections.
	right.next = j.next
	// j now feeds the new join and shrinks its window; its over-age
	// females migrate right on the next cross-purge.
	j.next = Port{}
	j.next.Attach(q)
	j.wend = mid
	return right, nil
}

// Rename updates the operator's display name. SplitAt and MergeFrom mutate
// the window range in place but cannot re-render the caller's naming scheme,
// so the caller renames the surviving join after the surgery.
func (j *SlicedBinaryJoin) Rename(name string) { j.name = name }

// MergeFrom absorbs the next adjacent slice `right` into j: j's window range
// becomes [j.start, right.end) and right's states are concatenated in front
// of j's (they hold strictly older tuples). The queue between j and right
// must be empty; j inherits right's downstream connections.
func (j *SlicedBinaryJoin) MergeFrom(right *SlicedBinaryJoin) error {
	if right.wstart != j.wend {
		return fmt.Errorf("operator %s: cannot merge non-adjacent slice %s (ends %s, next starts %s)",
			j.name, right.name, j.wend, right.wstart)
	}
	if !right.in.Empty() {
		return fmt.Errorf("operator %s: queue into %s not empty (%d items); drain before merging",
			j.name, right.name, right.in.Len())
	}
	for s := range j.states {
		// right holds the older tuples: append j's younger tuples
		// after them, then adopt the combined state.
		right.states[s].AppendAll(j.states[s])
		j.states[s] = right.states[s]
	}
	j.wend = right.wend
	j.next = right.next
	return nil
}
