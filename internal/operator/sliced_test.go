package operator

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stateslice/internal/stream"
)

// buildBinaryChain assembles a chain of sliced binary joins over the given
// end boundaries and returns the entry queue and the per-slice result
// queues.
func buildBinaryChain(t *testing.T, ends []stream.Time, pred stream.JoinPredicate) (*stream.Queue, []*SlicedBinaryJoin, []*stream.Queue, []Operator) {
	t.Helper()
	entry := stream.NewQueue()
	ci := NewChainInput("in", entry)
	ops := []Operator{ci}
	var joins []*SlicedBinaryJoin
	var outs []*stream.Queue
	feed := ci.Out()
	start := stream.Time(0)
	for _, end := range ends {
		j, err := NewSlicedBinaryJoin("slice", start, end, pred, feed.NewQueue())
		if err != nil {
			t.Fatal(err)
		}
		joins = append(joins, j)
		outs = append(outs, j.Result().NewQueue())
		ops = append(ops, j)
		feed = j.Next()
		start = end
	}
	return entry, joins, outs, ops
}

// runChain feeds the input and drains the operators to quiescence.
func runChain(entry *stream.Queue, ops []Operator, input []*stream.Tuple, m *CostMeter) {
	for _, tp := range input {
		entry.PushTuple(tp)
		for _, op := range ops {
			op.Step(m, -1)
		}
	}
}

func TestChainEquivalenceTheorem2(t *testing.T) {
	// Theorem 2: the union of the results of the sliced binary joins in a
	// chain equals the regular sliding window join with the full window.
	for seed := int64(1); seed <= 6; seed++ {
		input := randomInput(t, 250, seed)
		entry, _, outs, ops := buildBinaryChain(t,
			[]stream.Time{stream.Second, 3 * stream.Second, 7 * stream.Second}, stream.Equijoin{})
		runChain(entry, ops, input, nil)
		got := make(map[pairKey]int)
		for _, out := range outs {
			for _, r := range drainPort(out) {
				got[pairKey{r.A.Seq, r.B.Seq}]++
			}
		}
		want := bruteJoin(input, 7*stream.Second, 7*stream.Second, stream.Equijoin{})
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("seed %d: pair %v seen %d times, want %d (no duplicates, no losses)",
					seed, k, got[k], n)
			}
		}
	}
}

func TestChainSliceDisjointness(t *testing.T) {
	// Lemma 1's consequence: each slice emits exactly the pairs whose
	// timestamp distance falls in its window range — the states are
	// disjoint partitions of the full window.
	input := randomInput(t, 300, 42)
	ends := []stream.Time{2 * stream.Second, 5 * stream.Second}
	entry, _, outs, ops := buildBinaryChain(t, ends, stream.CrossProduct{})
	runChain(entry, ops, input, nil)
	start := stream.Time(0)
	for si, out := range outs {
		for _, r := range drainPort(out) {
			d := r.WindowDiff()
			if d <= start || d > ends[si] {
				t.Fatalf("slice %d emitted pair with distance %s outside (%s, %s]",
					si, d, start, ends[si])
			}
		}
		start = ends[si]
	}
}

func TestChainStateSizesMatchWindowWidths(t *testing.T) {
	// After a long steady run, each slice holds about
	// (lambdaA+lambdaB)*(end-start) tuples (Lemma 1 / Theorem 3).
	rng := rand.New(rand.NewSource(5))
	var mb stream.ManualBuilder
	at := stream.Time(0)
	var input []*stream.Tuple
	for i := 0; i < 4000; i++ {
		at += stream.Time(40+rng.Intn(60)) * stream.Millisecond
		id := stream.ID(i % 2)
		input = append(input, mb.Add(id, at))
	}
	totalRate := float64(len(input)) / input[len(input)-1].Time.ToSeconds() // both streams
	ends := []stream.Time{2 * stream.Second, 6 * stream.Second, 8 * stream.Second}
	entry, joins, outs, ops := buildBinaryChain(t, ends, stream.FractionMatch{S: 0})
	runChain(entry, ops, input, nil)
	for _, out := range outs {
		drainPort(out)
	}
	start := stream.Time(0)
	for si, j := range joins {
		width := (ends[si] - start).ToSeconds()
		want := totalRate * width // (lambdaA + lambdaB) * slice width
		got := float64(j.StateSize())
		if got < 0.7*want || got > 1.3*want {
			t.Errorf("slice %d: state %d tuples, want about %.0f", si, j.StateSize(), want)
		}
		start = ends[si]
	}
}

func TestChainTotalStateEqualsMonolithicJoin(t *testing.T) {
	// Theorem 3: the total state memory of the Mem-Opt chain equals the
	// state memory of the single regular join with the largest window —
	// checked exactly, tuple for tuple, at every arrival.
	input := randomInput(t, 500, 17)
	ends := []stream.Time{stream.Second, 2 * stream.Second, 4 * stream.Second}
	entry, joins, outs, ops := buildBinaryChain(t, ends, stream.FractionMatch{S: 0.1})
	inMono := stream.NewQueue()
	mono, err := NewWindowJoin("mono", 4*stream.Second, 4*stream.Second, stream.FractionMatch{S: 0.1}, inMono)
	if err != nil {
		t.Fatal(err)
	}
	_ = mono.Out().NewQueue()
	for i, tp := range input {
		entry.PushTuple(tp)
		for _, op := range ops {
			op.Step(nil, -1)
		}
		inMono.PushTuple(tp)
		mono.Step(nil, -1)
		chainTotal := 0
		for _, j := range joins {
			chainTotal += j.StateSize()
		}
		if chainTotal != mono.StateSize() {
			t.Fatalf("arrival %d: chain holds %d tuples, monolithic join %d",
				i, chainTotal, mono.StateSize())
		}
	}
	for _, out := range outs {
		drainPort(out)
	}
}

func TestChainProbeCostEqualsMonolithicJoin(t *testing.T) {
	// Section 5.1: "the probing cost of the chain of sliced joins is
	// equivalent to the probing cost of the regular window join".
	input := randomInput(t, 400, 23)
	entry, _, outs, ops := buildBinaryChain(t,
		[]stream.Time{stream.Second, 3 * stream.Second}, stream.CrossProduct{})
	mChain := &CostMeter{}
	runChain(entry, ops, input, mChain)
	for _, out := range outs {
		drainPort(out)
	}
	inMono := stream.NewQueue()
	mono, _ := NewWindowJoin("mono", 3*stream.Second, 3*stream.Second, stream.CrossProduct{}, inMono)
	_ = mono.Out().NewQueue()
	mMono := &CostMeter{}
	for _, tp := range input {
		inMono.PushTuple(tp)
		mono.Step(mMono, -1)
	}
	if mChain.Probe != mMono.Probe {
		t.Errorf("chain probes %d, monolithic %d — must be identical", mChain.Probe, mMono.Probe)
	}
}

func TestChainEquivalenceProperty(t *testing.T) {
	// Property-based version of Theorem 2 over random slice boundaries
	// and random inputs.
	prop := func(seed int64, b1, b2 uint8) bool {
		e1 := stream.Time(int(b1)%5+1) * stream.Second
		e2 := e1 + stream.Time(int(b2)%5+1)*stream.Second
		input := randomInputQuick(seed)
		entry, _, outs, ops := buildBinaryChainQuick(e1, e2)
		runChain(entry, ops, input, nil)
		got := make(map[pairKey]int)
		for _, out := range outs {
			for _, r := range drainPort(out) {
				got[pairKey{r.A.Seq, r.B.Seq}]++
			}
		}
		want := bruteJoin(input, e2, e2, stream.CrossProduct{})
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomInputQuick builds a small random stream without a testing.T.
func randomInputQuick(seed int64) []*stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	var mb stream.ManualBuilder
	at := stream.Time(0)
	for i := 0; i < 120; i++ {
		at += stream.Time(1+rng.Intn(1500)) * stream.Millisecond
		id := stream.StreamA
		if rng.Intn(2) == 1 {
			id = stream.StreamB
		}
		mb.Add(id, at)
	}
	return mb.Tuples()
}

// buildBinaryChainQuick is buildBinaryChain without a testing.T.
func buildBinaryChainQuick(e1, e2 stream.Time) (*stream.Queue, []*SlicedBinaryJoin, []*stream.Queue, []Operator) {
	entry := stream.NewQueue()
	ci := NewChainInput("in", entry)
	ops := []Operator{ci}
	var joins []*SlicedBinaryJoin
	var outs []*stream.Queue
	feed := ci.Out()
	start := stream.Time(0)
	for _, end := range []stream.Time{e1, e2} {
		j, err := NewSlicedBinaryJoin("slice", start, end, stream.CrossProduct{}, feed.NewQueue())
		if err != nil {
			panic(err)
		}
		joins = append(joins, j)
		outs = append(outs, j.Result().NewQueue())
		ops = append(ops, j)
		feed = j.Next()
		start = end
	}
	return entry, joins, outs, ops
}

func TestChainEquivalenceWithSelfPurge(t *testing.T) {
	// Footnote 1: self-purge is also applicable. Enabling it on every
	// slice must not change the result set — an arriving female's
	// timestamp lower-bounds all future males of the other stream, so a
	// self-evicted tuple is already out of range for every male that has
	// not yet passed.
	for seed := int64(1); seed <= 4; seed++ {
		input := randomInput(t, 250, seed)
		entry, joins, outs, ops := buildBinaryChain(t,
			[]stream.Time{stream.Second, 3 * stream.Second, 6 * stream.Second}, stream.Equijoin{})
		for _, j := range joins {
			j.WithSelfPurge()
		}
		runChain(entry, ops, input, nil)
		got := make(map[pairKey]int)
		for _, out := range outs {
			for _, r := range drainPort(out) {
				got[pairKey{r.A.Seq, r.B.Seq}]++
			}
		}
		want := bruteJoin(input, 6*stream.Second, 6*stream.Second, stream.Equijoin{})
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("seed %d: pair %v count %d, want %d", seed, k, got[k], n)
			}
		}
	}
}

func TestSelfPurgeBoundsStateUnderStalledStream(t *testing.T) {
	// With cross-purge only, a stalled stream B leaves expired A females
	// in the state; self-purge evicts them as newer A tuples arrive.
	var mb stream.ManualBuilder
	in := stream.NewQueue()
	j, err := NewSlicedBinaryJoin("j", 0, 2*stream.Second, stream.CrossProduct{}, in)
	if err != nil {
		t.Fatal(err)
	}
	j.WithSelfPurge()
	_ = j.Result().NewQueue()
	for i := 1; i <= 20; i++ {
		a := mb.Add(stream.StreamA, stream.Time(i)*stream.Second)
		in.PushTuple(a.WithRole(stream.RoleFemale))
		in.PushTuple(a.WithRole(stream.RoleMale))
	}
	j.Step(nil, -1)
	if n := j.StateSize(); n > 3 {
		t.Errorf("state holds %d stale tuples despite self-purge", n)
	}
}

func TestSlicedBinaryJoinValidation(t *testing.T) {
	if _, err := NewSlicedBinaryJoin("j", 5, 5, stream.CrossProduct{}, stream.NewQueue()); err == nil {
		t.Error("empty range must fail")
	}
	if _, err := NewSlicedBinaryJoin("j", -1, 5, stream.CrossProduct{}, stream.NewQueue()); err == nil {
		t.Error("negative start must fail")
	}
}

func TestSlicedBinaryJoinRejectsPlainTuples(t *testing.T) {
	in := stream.NewQueue()
	j, _ := NewSlicedBinaryJoin("j", 0, stream.Second, stream.CrossProduct{}, in)
	in.PushTuple(&stream.Tuple{Time: 1, Seq: 1, Stream: stream.StreamA})
	defer func() {
		if recover() == nil {
			t.Error("plain tuple must panic: the chain input must split roles")
		}
	}()
	j.Step(nil, -1)
}

func TestChainInputSplitsRoles(t *testing.T) {
	in := stream.NewQueue()
	ci := NewChainInput("ci", in)
	out := ci.Out().NewQueue()
	in.PushTuple(&stream.Tuple{Time: 1, Seq: 1, Stream: stream.StreamA, Ord: 1})
	in.PushPunct(2)
	ci.Step(nil, -1)
	f := out.Pop()
	m := out.Pop()
	p := out.Pop()
	if f.Role != stream.RoleFemale || m.Role != stream.RoleMale {
		t.Error("chain input must emit female then male")
	}
	if f.Tuple != m.Tuple {
		t.Error("the two role items must reference the same tuple (zero-copy split)")
	}
	if !p.IsPunct() {
		t.Error("punctuation must pass")
	}
	if !out.Empty() {
		t.Error("unexpected extra output")
	}
}

func TestSlicedJoinStateSnapshots(t *testing.T) {
	input := randomInput(t, 50, 3)
	entry, joins, outs, ops := buildBinaryChain(t, []stream.Time{10 * stream.Second}, stream.CrossProduct{})
	runChain(entry, ops, input, nil)
	drainPort(outs[0])
	j := joins[0]
	na := len(j.StateSnapshot(stream.StreamA))
	nb := len(j.StateSnapshot(stream.StreamB))
	if na+nb != j.StateSize() {
		t.Errorf("snapshots (%d+%d) disagree with StateSize %d", na, nb, j.StateSize())
	}
	if start, end := j.Range(); start != 0 || end != 10*stream.Second {
		t.Error("Range() wrong")
	}
	if j.In() == nil {
		t.Error("In() must expose the input queue")
	}
}
