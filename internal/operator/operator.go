// Package operator implements the query operators of the shared stream query
// plans studied in the State-Slice paper (VLDB 2006): regular sliding-window
// joins, sliced one-way and binary window joins, chains of sliced joins,
// selections, stream partitioning (split), routing of joined results by
// window constraints, and the order-preserving punctuated union.
//
// Operators communicate through stream.Queue FIFO queues and are driven by
// the engine package, which schedules them in topological order. Every
// comparison an operator performs is counted on a CostMeter, following the
// paper's CPU cost metric ("the count of comparisons per time unit",
// Section 3).
package operator

import "stateslice/internal/stream"

// Operator is a scheduled unit of a query plan. The engine repeatedly calls
// Step, letting the operator consume input items and push results downstream.
type Operator interface {
	// Name identifies the operator in traces and statistics.
	Name() string
	// Step processes up to max input items (max <= 0 means all pending)
	// and returns the number of items consumed. The meter may be nil.
	Step(m *CostMeter, max int) int
	// Pending reports whether the operator has buffered input left.
	Pending() bool
}

// StateSizer is implemented by stateful operators (joins). The engine's
// monitor polls it to reproduce the paper's state-memory measurements
// ("runtime memory usage in terms of the number of tuples staying in the
// states of the joins", Section 7.1).
type StateSizer interface {
	// StateSize returns the number of tuples currently held in window
	// states.
	StateSize() int
}

// Port is an output of an operator. Pushing an item delivers it to every
// connected queue (fan-out) and to every attached consumer function; a port
// with no connections discards, which is how the optional Purged-A-Tuple /
// Propagated-B-Tuple outputs of the last sliced join in a chain behave
// (Figure 5 of the paper).
//
// Function consumers (AttachFunc) receive items synchronously during the
// producer's Step, skipping a queue round-trip. They suit terminal consumers
// with no downstream of their own — sinks — where the extra scheduling hop
// bought nothing; items arrive in exactly the order a queue would have
// delivered them.
type Port struct {
	qs  []*stream.Queue
	fns []func(stream.Item)
}

// NewQueue creates a queue, connects it to the port and returns it.
func (p *Port) NewQueue() *stream.Queue {
	q := stream.NewQueue()
	p.Attach(q)
	return q
}

// Attach connects an existing queue to the port.
func (p *Port) Attach(q *stream.Queue) { p.qs = append(p.qs, q) }

// AttachFunc connects a synchronous consumer invoked for every pushed item.
func (p *Port) AttachFunc(fn func(stream.Item)) { p.fns = append(p.fns, fn) }

// DetachAll disconnects every queue and consumer from the port. Chain
// migration uses it to rewire the result path of a merged or split slice;
// the abandoned queues must be closed on their consuming unions first.
func (p *Port) DetachAll() { p.qs, p.fns = nil, nil }

// Fanout returns the number of connected queues and consumers.
func (p *Port) Fanout() int { return len(p.qs) + len(p.fns) }

// Connected reports whether at least one queue or consumer is attached.
func (p *Port) Connected() bool { return len(p.qs) > 0 || len(p.fns) > 0 }

// Push delivers the item to all connected queues and consumers.
func (p *Port) Push(it stream.Item) {
	for _, q := range p.qs {
		q.Push(it)
	}
	for _, fn := range p.fns {
		fn(it)
	}
}

// PushTuple delivers a tuple to all connected queues.
func (p *Port) PushTuple(t *stream.Tuple) { p.Push(stream.TupleItem(t)) }

// PushPunct delivers a punctuation to all connected queues.
func (p *Port) PushPunct(ts stream.Time) { p.Push(stream.PunctItem(ts)) }

// budget normalises the Step max argument: non-positive means unbounded.
func budget(max int) int {
	if max <= 0 {
		return int(^uint(0) >> 1) // MaxInt
	}
	return max
}
