package operator

import (
	"testing"

	"stateslice/internal/stream"
)

// bruteCountJoin computes the count-window reference: (a, b) joins when the
// earlier tuple is among the last C arrivals of its stream at the later
// tuple's arrival.
func bruteCountJoin(input []*stream.Tuple, ca, cb int, pred stream.JoinPredicate) map[pairKey]int {
	out := make(map[pairKey]int)
	counts := [2]uint64{}
	for _, x := range input {
		opp := x.Stream.Other()
		limit := uint64(ca)
		if opp == stream.StreamB {
			limit = uint64(cb)
		}
		for _, y := range input {
			if y.Seq >= x.Seq || y.Stream != opp {
				continue
			}
			// y is in the window if its ordinal is within the last
			// `limit` arrivals of its stream.
			if counts[opp]-y.Ord < limit {
				var a, b *stream.Tuple
				if x.Stream == stream.StreamA {
					a, b = x, y
				} else {
					a, b = y, x
				}
				if pred.Match(a, b) {
					out[pairKey{a.Seq, b.Seq}]++
				}
			}
		}
		counts[x.Stream]++
	}
	return out
}

func TestCountWindowJoinMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		input := randomInput(t, 200, seed)
		in := stream.NewQueue()
		j, err := NewCountWindowJoin("cj", 7, 4, stream.Equijoin{}, in)
		if err != nil {
			t.Fatal(err)
		}
		out := j.Out().NewQueue()
		for _, tp := range input {
			in.PushTuple(tp)
		}
		j.Step(nil, -1)
		got := keysOf(drainPort(out))
		want := bruteCountJoin(input, 7, 4, stream.Equijoin{})
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("seed %d: pair %v count %d, want %d", seed, k, got[k], n)
			}
		}
	}
}

func TestCountWindowJoinEvicts(t *testing.T) {
	in := stream.NewQueue()
	j, _ := NewCountWindowJoin("cj", 3, 3, stream.CrossProduct{}, in)
	_ = j.Out().NewQueue()
	var mb stream.ManualBuilder
	for i := 1; i <= 20; i++ {
		in.PushTuple(mb.Add(stream.StreamA, stream.Time(i)*stream.Second))
	}
	j.Step(nil, -1)
	if n := j.StateSize(); n != 3 {
		t.Errorf("state holds %d tuples, want the 3 most recent", n)
	}
}

func TestCountWindowJoinValidation(t *testing.T) {
	if _, err := NewCountWindowJoin("cj", 0, 3, stream.CrossProduct{}, stream.NewQueue()); err == nil {
		t.Error("zero count window must fail")
	}
}

// buildCountChain wires sliced count joins over rank boundaries.
func buildCountChain(t *testing.T, ends []int, pred stream.JoinPredicate) (*stream.Queue, []*SlicedCountBinaryJoin, []*stream.Queue, []Operator) {
	t.Helper()
	entry := stream.NewQueue()
	ci := NewChainInput("in", entry)
	ops := []Operator{ci}
	var joins []*SlicedCountBinaryJoin
	var outs []*stream.Queue
	feed := ci.Out()
	start := 0
	for _, end := range ends {
		j, err := NewSlicedCountBinaryJoin("cslice", start, end, pred, feed.NewQueue())
		if err != nil {
			t.Fatal(err)
		}
		joins = append(joins, j)
		outs = append(outs, j.Result().NewQueue())
		ops = append(ops, j)
		feed = j.Next()
		start = end
	}
	return entry, joins, outs, ops
}

func TestCountChainEquivalence(t *testing.T) {
	// Section 2's claim, realised: a chain of sliced count-window joins
	// computes the same result as the regular count-window join, with
	// capacity-overflow eviction replacing timestamp cross-purge.
	for seed := int64(1); seed <= 4; seed++ {
		input := randomInput(t, 240, seed)
		ends := []int{2, 5, 9}
		entry, _, outs, ops := buildCountChain(t, ends, stream.Equijoin{})
		runChain(entry, ops, input, nil)
		got := make(map[pairKey]int)
		for _, out := range outs {
			for _, r := range drainPort(out) {
				got[pairKey{r.A.Seq, r.B.Seq}]++
			}
		}
		want := bruteCountJoin(input, 9, 9, stream.Equijoin{})
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("seed %d: pair %v count %d, want %d", seed, k, got[k], n)
			}
		}
	}
}

func TestCountChainSliceCapacities(t *testing.T) {
	// Each slice's per-stream state is bounded by its rank interval.
	input := randomInput(t, 400, 11)
	ends := []int{3, 8}
	entry, joins, outs, ops := buildCountChain(t, ends, stream.CrossProduct{})
	runChain(entry, ops, input, nil)
	for _, out := range outs {
		drainPort(out)
	}
	start := 0
	for si, j := range joins {
		cap := ends[si] - start
		if got := j.StateSize(); got > 2*cap {
			t.Errorf("slice %d holds %d tuples, capacity %d per stream", si, got, cap)
		}
		if s, e := j.Range(); s != start || e != ends[si] {
			t.Errorf("slice %d range (%d,%d)", si, s, e)
		}
		start = ends[si]
	}
}

func TestSlicedCountJoinValidation(t *testing.T) {
	if _, err := NewSlicedCountBinaryJoin("c", 5, 5, stream.CrossProduct{}, stream.NewQueue()); err == nil {
		t.Error("empty rank interval must fail")
	}
	if _, err := NewSlicedCountBinaryJoin("c", -1, 5, stream.CrossProduct{}, stream.NewQueue()); err == nil {
		t.Error("negative rank must fail")
	}
}

func TestSlicedCountJoinRejectsPlainTuples(t *testing.T) {
	in := stream.NewQueue()
	j, _ := NewSlicedCountBinaryJoin("c", 0, 3, stream.CrossProduct{}, in)
	in.PushTuple(&stream.Tuple{Seq: 1, Stream: stream.StreamA})
	defer func() {
		if recover() == nil {
			t.Error("plain tuple must panic")
		}
	}()
	j.Step(nil, -1)
}

func TestCountJoinPunctsFlow(t *testing.T) {
	in := stream.NewQueue()
	j, _ := NewSlicedCountBinaryJoin("c", 0, 3, stream.CrossProduct{}, in)
	res := j.Result().NewQueue()
	next := j.Next().NewQueue()
	in.PushPunct(4)
	j.Step(nil, -1)
	if res.Empty() || next.Empty() {
		t.Error("punctuations must flow to both outputs")
	}
	cj := stream.NewQueue()
	c, _ := NewCountWindowJoin("cw", 2, 2, stream.CrossProduct{}, cj)
	out := c.Out().NewQueue()
	cj.PushPunct(4)
	c.Step(nil, -1)
	if out.Empty() || !out.Pop().IsPunct() {
		t.Error("count join must forward punctuations")
	}
}
