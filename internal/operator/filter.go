package operator

import "stateslice/internal/stream"

// Filter applies a selection predicate to the tuples of one stream, such as
// the sigma_A operator "A.Value > Threshold" of query Q2 in the paper.
// Punctuations always pass. When Stream filtering is restricted (OnlyStream
// set), tuples of the other stream pass without predicate evaluation — this
// is how the pushed-down filters between chain slices let stream-B tuples
// through while filtering stream A (Figure 10).
type Filter struct {
	name string
	pred stream.Predicate
	in   *stream.Queue
	out  Port

	// only restricts evaluation to one stream when restrict is true.
	only     stream.ID
	restrict bool

	// resultSide, when true, evaluates the predicate against the stream-A
	// source of joined result tuples (the sigma'_A filters applied to
	// join outputs in Figures 3 and 10), and predB, when non-nil, against
	// the stream-B source.
	resultSide bool
	predB      stream.Predicate
}

// NewFilter returns a filter over all tuples of the input queue.
func NewFilter(name string, pred stream.Predicate, in *stream.Queue) *Filter {
	return &Filter{name: name, pred: pred, in: in}
}

// NewStreamFilter returns a filter that evaluates pred only on tuples of
// stream id, passing the other stream through untouched.
func NewStreamFilter(name string, pred stream.Predicate, id stream.ID, in *stream.Queue) *Filter {
	return &Filter{name: name, pred: pred, in: in, only: id, restrict: true}
}

// NewResultFilter returns a filter that evaluates pred on the stream-A source
// tuple of joined results (sigma'_A in the paper's plans).
func NewResultFilter(name string, pred stream.Predicate, in *stream.Queue) *Filter {
	return &Filter{name: name, pred: pred, in: in, resultSide: true}
}

// NewResultFilter2 returns a filter over joined results evaluating predA on
// the stream-A source and predB on the stream-B source; either may be nil.
func NewResultFilter2(name string, predA, predB stream.Predicate, in *stream.Queue) *Filter {
	return &Filter{name: name, pred: predA, predB: predB, in: in, resultSide: true}
}

// Out exposes the output port for wiring.
func (f *Filter) Out() *Port { return &f.out }

// Name implements Operator.
func (f *Filter) Name() string { return f.name }

// Pending implements Operator.
func (f *Filter) Pending() bool { return !f.in.Empty() }

// Step implements Operator.
func (f *Filter) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !f.in.Empty() {
		it := f.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			f.out.Push(it)
			continue
		}
		t := it.Tuple
		if f.resultSide {
			pass := true
			if f.pred != nil {
				m.filter(1)
				pass = f.pred.Eval(t.A)
			}
			if pass && f.predB != nil {
				m.filter(1)
				pass = f.predB.Eval(t.B)
			}
			if pass {
				f.out.Push(it)
			}
			continue
		}
		if f.restrict && t.Stream != f.only {
			f.out.Push(it)
			continue
		}
		m.filter(1)
		if f.pred.Eval(t) {
			f.out.Push(it)
		}
	}
	return n
}

// LineageMark evaluates the per-query selection predicates once per
// stream-A tuple at the entry of a sliced-join chain and records the result
// as a lineage level plus a condition bitmask (Section 6.1: "evaluate the
// predicates cond_i in the decreasing order of i ... attach k to the tuple").
//
// Level is the highest query index whose condition the tuple satisfies; a
// tuple with Level = k can contribute join results only to queries up to k,
// so it "can survive until the kth sliced join and no further". CondMask bit
// i records whether cond_i holds, letting result-side edges test a condition
// with a single mask comparison instead of re-evaluating the predicate.
type LineageMark struct {
	name string
	// conds[s][i] is the selection predicate of query i (0-based) on
	// stream s. A nil or True entry means the query has no selection on
	// that stream. Marking per stream realises Section 6's remark that
	// predicates on multiple streams push down the same way.
	conds [2][]stream.Predicate
	in    *stream.Queue
	out   Port
	// identical notes, per stream, that all non-trivial predicates are
	// the same, so one evaluation decides every bit (the common case in
	// the paper's experiments, and what keeps the measured filter cost
	// equal to the single-sigma term of Eq. (3)).
	identical [2]bool
}

// NewLineageMark builds the marker for the given per-query predicates on
// streams A and B, ordered by ascending query window (the chain order).
// condsB may be nil when no query filters stream B.
func NewLineageMark(name string, condsA, condsB []stream.Predicate, in *stream.Queue) *LineageMark {
	if condsB == nil {
		condsB = make([]stream.Predicate, len(condsA))
	}
	lm := &LineageMark{name: name, in: in}
	lm.conds[stream.StreamA] = condsA
	lm.conds[stream.StreamB] = condsB
	for s, conds := range lm.conds {
		lm.identical[s] = true
		var proto stream.Predicate
		for _, c := range conds {
			if c == nil {
				continue
			}
			if _, ok := c.(stream.True); ok {
				continue
			}
			if proto == nil {
				proto = c
				continue
			}
			if c.String() != proto.String() {
				lm.identical[s] = false
			}
		}
	}
	return lm
}

// Out exposes the output port.
func (l *LineageMark) Out() *Port { return &l.out }

// Name implements Operator.
func (l *LineageMark) Name() string { return l.name }

// Pending implements Operator.
func (l *LineageMark) Pending() bool { return !l.in.Empty() }

// Step implements Operator.
func (l *LineageMark) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !l.in.Empty() {
		it := l.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			l.out.Push(it)
			continue
		}
		t := it.Tuple
		l.mark(m, t)
		if t.Level == 0 {
			// The tuple satisfies no query's condition on its own
			// stream: it cannot contribute to any result and is
			// dropped at the gate.
			continue
		}
		l.out.Push(it)
	}
	return n
}

// mark computes Level and CondMask against the tuple's own stream's
// conditions.
func (l *LineageMark) mark(m *CostMeter, t *stream.Tuple) {
	conds := l.conds[t.Stream]
	t.Level, t.CondMask = 0, 0
	if l.identical[t.Stream] {
		// One evaluation decides all queries: find the shared
		// predicate, evaluate once, then set bits for trivial
		// (no-selection) queries unconditionally.
		var shared stream.Predicate
		for _, c := range conds {
			if c != nil {
				if _, ok := c.(stream.True); !ok {
					shared = c
					break
				}
			}
		}
		pass := true
		if shared != nil {
			m.filter(1)
			pass = shared.Eval(t)
		}
		for i, c := range conds {
			trivial := c == nil
			if !trivial {
				_, trivial = c.(stream.True)
			}
			if trivial || pass {
				t.CondMask |= 1 << uint(i)
				t.Level = i + 1
			}
		}
		return
	}
	// Heterogeneous predicates: evaluate each (counted), highest index
	// first so Level is found as soon as possible.
	for i := len(conds) - 1; i >= 0; i-- {
		c := conds[i]
		pass := true
		if c != nil {
			if _, trivial := c.(stream.True); !trivial {
				m.filter(1)
				pass = c.Eval(t)
			}
		}
		if pass {
			t.CondMask |= 1 << uint(i)
			if t.Level == 0 {
				t.Level = i + 1
			}
		}
	}
}

// LineageFilter drops stream-A tuples whose lineage level says they cannot
// contribute to any query at or beyond a slice. It implements the
// pushed-down sigma'_i filters of Figure 15 with a single integer comparison
// per tuple instead of re-evaluating predicates.
type LineageFilter struct {
	name string
	// minQuery is the 1-based index of the first query served at or after
	// the guarded slice; tuples with Level < minQuery are dropped.
	minQuery int
	// checkB extends the level check to stream-B tuples; without B-side
	// selections they always pass and the comparison is skipped, keeping
	// the measured gate cost equal to the paper's single-stream model.
	checkB bool
	in     *stream.Queue
	out    Port
}

// NewLineageFilter builds the filter guarding the slice that serves queries
// minQuery..N, checking stream-A tuples only.
func NewLineageFilter(name string, minQuery int, in *stream.Queue) *LineageFilter {
	return &LineageFilter{name: name, minQuery: minQuery, in: in}
}

// NewLineageFilter2 builds the gate checking both streams' levels, for
// workloads with selections on stream B (Section 6's multi-stream
// push-down).
func NewLineageFilter2(name string, minQuery int, in *stream.Queue) *LineageFilter {
	return &LineageFilter{name: name, minQuery: minQuery, checkB: true, in: in}
}

// Out exposes the output port.
func (l *LineageFilter) Out() *Port { return &l.out }

// Name implements Operator.
func (l *LineageFilter) Name() string { return l.name }

// Pending implements Operator.
func (l *LineageFilter) Pending() bool { return !l.in.Empty() }

// Step implements Operator. Lineage levels are computed against each
// tuple's own stream's conditions, so one integer comparison covers
// predicates on either input (Section 6's multi-stream push-down).
func (l *LineageFilter) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !l.in.Empty() {
		it := l.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			l.out.Push(it)
			continue
		}
		t := it.Tuple
		if t.Stream == stream.StreamA || l.checkB {
			m.filter(1)
			if t.Level < l.minQuery {
				continue
			}
		}
		l.out.Push(it)
	}
	return n
}

// MaskFilter passes joined results whose source tuples satisfy the recorded
// condition bit of one query on the checked sides. It replaces a sigma'
// re-evaluation with mask tests when lineage marking already evaluated the
// predicates.
type MaskFilter struct {
	name           string
	query          int // 0-based query index (bit position)
	checkA, checkB bool
	in             *stream.Queue
	out            Port
}

// NewMaskFilter builds a mask filter for the given 0-based query index,
// testing the stream-A source's mask.
func NewMaskFilter(name string, query int, in *stream.Queue) *MaskFilter {
	return &MaskFilter{name: name, query: query, checkA: true, in: in}
}

// NewMaskFilter2 builds a mask filter testing the chosen sides of each
// result.
func NewMaskFilter2(name string, query int, checkA, checkB bool, in *stream.Queue) *MaskFilter {
	return &MaskFilter{name: name, query: query, checkA: checkA, checkB: checkB, in: in}
}

// Out exposes the output port.
func (f *MaskFilter) Out() *Port { return &f.out }

// Name implements Operator.
func (f *MaskFilter) Name() string { return f.name }

// Pending implements Operator.
func (f *MaskFilter) Pending() bool { return !f.in.Empty() }

// Step implements Operator.
func (f *MaskFilter) Step(m *CostMeter, max int) int {
	bit := uint64(1) << uint(f.query)
	n := 0
	for n < budget(max) && !f.in.Empty() {
		it := f.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			f.out.Push(it)
			continue
		}
		pass := true
		if f.checkA {
			m.filter(1)
			pass = it.Tuple.A.CondMask&bit != 0
		}
		if pass && f.checkB {
			m.filter(1)
			pass = it.Tuple.B.CondMask&bit != 0
		}
		if pass {
			f.out.Push(it)
		}
	}
	return n
}
