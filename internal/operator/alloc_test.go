package operator

import (
	"testing"

	"stateslice/internal/stream"
)

// Allocation regression guards for the zero-copy hot paths. The tuple split
// and the probe of a sliced join must not allocate per processed tuple: the
// male/female reference copies ride on queue items, probes iterate state
// spans in place, and joined results come from a slab (amortized to a
// fraction of an allocation each). A regression here silently multiplies GC
// pressure by the input rate, so it fails the build rather than a benchmark.

// neverMatch is a join predicate with no matches, isolating the probe loop
// from result emission.
type neverMatch struct{}

func (neverMatch) Match(a, b *stream.Tuple) bool { return false }
func (neverMatch) String() string                { return "never" }

func TestTupleSplitAllocatesNothing(t *testing.T) {
	in := stream.NewQueue()
	ci := NewChainInput("ci", in)
	out := ci.Out().NewQueue()
	tp := &stream.Tuple{Time: 1, Seq: 1, Stream: stream.StreamA, Ord: 1}
	// Warm the queues so ring growth is behind us.
	for i := 0; i < 64; i++ {
		in.PushTuple(tp)
	}
	ci.Step(nil, -1)
	for !out.Empty() {
		out.Pop()
	}
	avg := testing.AllocsPerRun(200, func() {
		in.PushTuple(tp)
		ci.Step(nil, -1)
		out.Pop()
		out.Pop()
	})
	if avg != 0 {
		t.Errorf("tuple split allocates %.2f objects per tuple, want 0 (roles must ride on queue items)", avg)
	}
}

func TestProbeAllocatesNothingPerTuple(t *testing.T) {
	in := stream.NewQueue()
	j, err := NewSlicedBinaryJoin("j", 0, 1000*stream.Second, neverMatch{}, in)
	if err != nil {
		t.Fatal(err)
	}
	// Unattached result/next ports discard, so only the probe itself runs.
	// Fill the B state with females for the male to scan.
	var mb stream.ManualBuilder
	for i := 0; i < 100; i++ {
		f := mb.Add(stream.StreamB, stream.Time(i))
		in.Push(stream.RoleItem(f, stream.RoleFemale))
	}
	j.Step(nil, -1)
	male := mb.Add(stream.StreamA, 200)
	avg := testing.AllocsPerRun(200, func() {
		in.Push(stream.RoleItem(male, stream.RoleMale))
		j.Step(nil, -1)
	})
	if avg != 0 {
		t.Errorf("probing a male over 100 females allocates %.2f objects, want 0", avg)
	}
}

func TestJoinedResultsAmortizedBySlab(t *testing.T) {
	in := stream.NewQueue()
	j, err := NewSlicedBinaryJoin("j", 0, 1000*stream.Second, stream.CrossProduct{}, in)
	if err != nil {
		t.Fatal(err)
	}
	resQ := j.Result().NewQueue()
	var mb stream.ManualBuilder
	for i := 0; i < 8; i++ {
		f := mb.Add(stream.StreamB, stream.Time(i))
		in.Push(stream.RoleItem(f, stream.RoleFemale))
	}
	j.Step(nil, -1)
	male := mb.Add(stream.StreamA, 200)
	// Every probe matches: 8 results per male. Slab chunks hold 256
	// results, so the amortized cost must stay well under one allocation
	// per result (8 results/run, 1 chunk per 32 runs).
	avg := testing.AllocsPerRun(200, func() {
		in.Push(stream.RoleItem(male, stream.RoleMale))
		j.Step(nil, -1)
		for !resQ.Empty() {
			resQ.Pop()
		}
	})
	if avg > 0.5 {
		t.Errorf("emitting 8 joined results allocates %.2f objects per male, want slab-amortized (< 0.5)", avg)
	}
}
