package operator

import (
	"fmt"

	"stateslice/internal/stream"
)

// Union is the order-preserving merge of several timestamp-sorted inputs
// (the union operator of Aurora cited as [1] by the paper). It relies on
// punctuations: each upstream join emits punct(t) after the probing tuple
// with timestamp t finishes, guaranteeing no later output with a timestamp
// at or below t (the "male tuple acts as punctuation" mechanism of
// Section 4.3). The union emits a buffered tuple as soon as every other
// input either exposes a later tuple or has punctuated past it.
//
// Ties on (Time, Seq) — results produced by the same probing tuple at
// different slices — are emitted in ascending input order, which is the
// chain order and therefore ascending window range.
type Union struct {
	name      string
	ins       []*stream.Queue
	frontiers []stream.Time
	out       Port
	// emitted tracks the last emitted punctuation so the union forwards
	// monotone punctuations of its own.
	lastPunct stream.Time
}

// NewUnion builds a union; inputs are registered with AddInput.
func NewUnion(name string) *Union { return &Union{name: name, lastPunct: -1} }

// AddInput creates, registers and returns a new input queue.
func (u *Union) AddInput() *stream.Queue {
	q := stream.NewQueue()
	u.AttachInput(q)
	return q
}

// AttachInput registers an existing queue as an input.
func (u *Union) AttachInput(q *stream.Queue) {
	u.ins = append(u.ins, q)
	u.frontiers = append(u.frontiers, -1)
}

// CloseInput marks an input as finished: no further tuples will ever be
// pushed to it. Residual queued tuples are still emitted in order, but the
// input no longer blocks merge progress. Chain migration (Section 5.3)
// closes the result edges of slices it replaces. It returns false when q is
// not an input of the union.
func (u *Union) CloseInput(q *stream.Queue) bool {
	for i, in := range u.ins {
		if in == q {
			u.frontiers[i] = stream.MaxTime
			return true
		}
	}
	return false
}

// Inputs returns the number of registered inputs.
func (u *Union) Inputs() int { return len(u.ins) }

// Out exposes the merged output port.
func (u *Union) Out() *Port { return &u.out }

// Name implements Operator.
func (u *Union) Name() string { return u.name }

// Pending implements Operator.
func (u *Union) Pending() bool {
	for _, q := range u.ins {
		if !q.Empty() {
			return true
		}
	}
	return false
}

// Step implements Operator. The budget bounds the number of tuples emitted.
//
// Cost accounting follows the paper's punctuation-driven union (Section
// 4.3): processing a punctuation costs one comparison, and so does ordering
// two candidate heads with different (Time, Seq) keys. Heads with equal keys
// are results of the same probing male gathered from adjacent slices; they
// concatenate in input (chain) order without comparisons. In the steady
// state of a sliced-join chain the merge therefore costs O(lambda) per
// second — "proportional to the input rates of streams A and B" — rather
// than one comparison per joined result.
func (u *Union) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) {
		u.absorbPunctuations(m)
		best := -1
		var bestT *stream.Tuple
		blocked := false
		for i, q := range u.ins {
			if q.Empty() {
				// An empty input constrains emission to its
				// punctuation frontier.
				continue
			}
			head := q.Peek().Tuple
			if best == -1 {
				best, bestT = i, head
				continue
			}
			if head.Time == bestT.Time && head.Seq == bestT.Seq {
				continue // same-male batch: keep chain order, no comparison
			}
			m.union(1)
			if tupleLess(head, bestT) {
				best, bestT = i, head
			}
		}
		if best == -1 {
			break // nothing buffered anywhere
		}
		// The candidate can be emitted only if every empty input has
		// punctuated at or past its timestamp.
		for i, q := range u.ins {
			if q.Empty() && u.frontiers[i] < bestT.Time {
				blocked = true
				break
			}
		}
		if blocked {
			break
		}
		u.ins[best].Pop()
		m.invoke(1)
		u.out.PushTuple(bestT)
		n++
	}
	u.absorbPunctuations(m)
	if n < budget(max) {
		// Not interrupted by the budget: everything emittable has been
		// emitted, so the minimum frontier is a safe punctuation.
		u.forwardPunct()
	}
	return n
}

// absorbPunctuations consumes leading punctuations on every input, advancing
// the per-input frontiers. Each punctuation costs one comparison.
func (u *Union) absorbPunctuations(m *CostMeter) {
	for i, q := range u.ins {
		for !q.Empty() && q.Peek().IsPunct() {
			p := q.Pop().Punct
			m.union(1)
			if p > u.frontiers[i] {
				u.frontiers[i] = p
			}
		}
	}
}

// forwardPunct emits the minimum frontier downstream when it advances, so
// unions compose (a union feeding another union or a sink keeps it flushed).
func (u *Union) forwardPunct() {
	if len(u.ins) == 0 {
		return
	}
	min := u.frontiers[0]
	for _, f := range u.frontiers[1:] {
		if f < min {
			min = f
		}
	}
	// Only the frontier bounds progress: queued tuples older than the
	// frontier have been emitted already (they would have been emittable).
	if min > u.lastPunct {
		u.lastPunct = min
		u.out.PushPunct(min)
	}
}

// tupleLess orders tuples by (Time, Seq).
func tupleLess(a, b *stream.Tuple) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

// String describes the union wiring for traces.
func (u *Union) String() string {
	return fmt.Sprintf("%s(%d inputs)", u.name, len(u.ins))
}
