package operator

import (
	"fmt"

	"stateslice/internal/stream"
)

// Union is the order-preserving merge of several timestamp-sorted inputs
// (the union operator of Aurora cited as [1] by the paper). It relies on
// punctuations: each upstream join emits punct(t) after the probing tuple
// with timestamp t finishes, guaranteeing no later output with a timestamp
// at or below t (the "male tuple acts as punctuation" mechanism of
// Section 4.3). The union emits a buffered tuple as soon as every other
// input either exposes a later tuple or has punctuated past it.
//
// Ties on (Time, Seq) — results produced by the same probing tuple at
// different slices — are emitted in ascending input order, which is the
// chain order and therefore ascending window range.
type Union struct {
	name      string
	ins       []*stream.Queue
	frontiers []stream.Time
	out       Port
	// emitted tracks the last emitted punctuation so the union forwards
	// monotone punctuations of its own.
	lastPunct stream.Time
}

// NewUnion builds a union; inputs are registered with AddInput.
func NewUnion(name string) *Union { return &Union{name: name, lastPunct: -1} }

// AddInput creates, registers and returns a new input queue.
func (u *Union) AddInput() *stream.Queue {
	q := stream.NewQueue()
	u.AttachInput(q)
	return q
}

// AttachInput registers an existing queue as an input.
func (u *Union) AttachInput(q *stream.Queue) {
	u.ins = append(u.ins, q)
	u.frontiers = append(u.frontiers, -1)
}

// CloseInput marks an input as finished: no further tuples will ever be
// pushed to it. Residual queued tuples are still emitted in order, but the
// input no longer blocks merge progress. Chain migration (Section 5.3)
// closes the result edges of slices it replaces. It returns false when q is
// not an input of the union.
func (u *Union) CloseInput(q *stream.Queue) bool {
	for i, in := range u.ins {
		if in == q {
			u.frontiers[i] = stream.MaxTime
			return true
		}
	}
	return false
}

// Inputs returns the number of registered inputs.
func (u *Union) Inputs() int { return len(u.ins) }

// InputSnapshot returns the registered input queues in merge order (closed
// inputs included). Checkpointing reads it to record the tie order of the
// live chain.
func (u *Union) InputSnapshot() []*stream.Queue {
	return append([]*stream.Queue(nil), u.ins...)
}

// Reorder permutes the registered inputs into the given order, which must
// list exactly the current inputs. Ties on (Time, Seq) follow input order,
// and on a chain that was restructured mid-stream that order reflects the
// restructure history rather than the slice layout — a chain rebuilt from a
// checkpoint calls Reorder so its unions inherit the snapshot's order
// instead of the fresh build's.
func (u *Union) Reorder(qs []*stream.Queue) error {
	if len(qs) != len(u.ins) {
		return fmt.Errorf("operator: %s: Reorder got %d inputs, union has %d", u.name, len(qs), len(u.ins))
	}
	pos := make(map[*stream.Queue]int, len(u.ins))
	for i, in := range u.ins {
		pos[in] = i
	}
	frontiers := make([]stream.Time, len(qs))
	for i, q := range qs {
		j, ok := pos[q]
		if !ok {
			return fmt.Errorf("operator: %s: Reorder input %d is not registered (or listed twice)", u.name, i)
		}
		delete(pos, q)
		frontiers[i] = u.frontiers[j]
	}
	u.ins = append(u.ins[:0:0], qs...)
	u.frontiers = frontiers
	return nil
}

// Out exposes the merged output port.
func (u *Union) Out() *Port { return &u.out }

// Name implements Operator.
func (u *Union) Name() string { return u.name }

// Pending implements Operator.
func (u *Union) Pending() bool {
	for _, q := range u.ins {
		if !q.Empty() {
			return true
		}
	}
	return false
}

// Step implements Operator. The budget bounds the number of tuples emitted.
//
// Cost accounting follows the paper's punctuation-driven union (Section
// 4.3): processing a punctuation costs one comparison, and so does ordering
// two candidate heads with different (Time, Seq) keys. Heads with equal keys
// are results of the same probing male gathered from adjacent slices; they
// concatenate in input (chain) order without comparisons. In the steady
// state of a sliced-join chain the merge therefore costs O(lambda) per
// second — "proportional to the input rates of streams A and B" — rather
// than one comparison per joined result.
//
// The merge emits run-at-a-time: one scan over the inputs selects the
// winning head and the tightest bound the other inputs impose (their minimal
// head, ties to the lowest input index, and the minimal frontier of the
// empty inputs); consecutive items of the winning input are then emitted
// with a single comparison each until one crosses that bound. The emitted
// sequence is exactly the per-tuple merge's — a run item precedes every
// other input's head, and equal keys still concatenate in input order — but
// the per-emission rescans of all inputs are gone.
func (u *Union) Step(m *CostMeter, max int) int {
	bud := budget(max)
	n := 0
	u.absorbPunctuations(m)
	for n < bud {
		// One scan: the emission candidate (minimal (Time, Seq) head,
		// ties to the lowest input index), the runner-up bounding a run,
		// and the tightest frontier of the empty inputs.
		best, openIdx := -1, -1
		var bestT, openT *stream.Tuple
		minFrontier := stream.MaxTime
		for i, q := range u.ins {
			if q.Empty() {
				// An empty input constrains emission to its
				// punctuation frontier.
				if u.frontiers[i] < minFrontier {
					minFrontier = u.frontiers[i]
				}
				continue
			}
			head := q.Peek().Tuple
			if best == -1 {
				best, bestT = i, head
				continue
			}
			if head.Time == bestT.Time && head.Seq == bestT.Seq {
				// Same-male batch: keep chain order, no comparison;
				// it still bounds a run from the best input.
				if openT == nil || tupleLess(head, openT) {
					openIdx, openT = i, head
				}
				continue
			}
			m.union(1)
			if tupleLess(head, bestT) {
				openIdx, openT = best, bestT
				best, bestT = i, head
			} else if openT == nil || tupleLess(head, openT) {
				openIdx, openT = i, head
			}
		}
		if best == -1 {
			break // nothing buffered anywhere
		}
		if bestT.Time > minFrontier {
			break // an empty input may still deliver earlier tuples
		}
		// Emit the run.
		q := u.ins[best]
		for n < bud {
			q.Pop()
			m.invoke(1)
			u.out.PushTuple(bestT)
			n++
			// Advance to the input's next tuple head, absorbing
			// interleaved punctuations (one comparison each, as in
			// absorbPunctuations).
			var head *stream.Tuple
			for !q.Empty() {
				it := q.Peek()
				if !it.IsPunct() {
					head = it.Tuple
					break
				}
				q.Pop()
				m.union(1)
				if it.Punct > u.frontiers[best] {
					u.frontiers[best] = it.Punct
				}
			}
			if head == nil || head.Time > minFrontier {
				break
			}
			if openT != nil {
				if head.Time == openT.Time && head.Seq == openT.Seq {
					if best > openIdx {
						break // the equal key at a lower input goes first
					}
					// Equal key, lower input index: chain-order
					// concatenation, no comparison.
				} else {
					m.union(1)
					if !tupleLess(head, openT) {
						break
					}
				}
			}
			bestT = head
		}
	}
	if n < bud {
		// Not interrupted by the budget: everything emittable has been
		// emitted, so the minimum frontier is a safe punctuation.
		u.forwardPunct()
	}
	return n
}

// absorbPunctuations consumes leading punctuations on every input, advancing
// the per-input frontiers. Each punctuation costs one comparison.
func (u *Union) absorbPunctuations(m *CostMeter) {
	for i, q := range u.ins {
		for !q.Empty() && q.Peek().IsPunct() {
			p := q.Pop().Punct
			m.union(1)
			if p > u.frontiers[i] {
				u.frontiers[i] = p
			}
		}
	}
}

// forwardPunct emits the minimum frontier downstream when it advances, so
// unions compose (a union feeding another union or a sink keeps it flushed).
func (u *Union) forwardPunct() {
	if len(u.ins) == 0 {
		return
	}
	min := u.frontiers[0]
	for _, f := range u.frontiers[1:] {
		if f < min {
			min = f
		}
	}
	// Only the frontier bounds progress: queued tuples older than the
	// frontier have been emitted already (they would have been emittable).
	if min > u.lastPunct {
		u.lastPunct = min
		u.out.PushPunct(min)
	}
}

// tupleLess orders tuples by (Time, Seq).
func tupleLess(a, b *stream.Tuple) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

// String describes the union wiring for traces.
func (u *Union) String() string {
	return fmt.Sprintf("%s(%d inputs)", u.name, len(u.ins))
}
