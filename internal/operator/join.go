package operator

import (
	"fmt"

	"stateslice/internal/stream"
)

// WindowJoin is the regular binary sliding-window join A[W_A] |><| B[W_B]
// executed with the cross-purge / probe / insert steps of Figure 1 in the
// paper. Its input is a single queue carrying both streams merged in global
// timestamp order; its output carries the joined results followed by a
// punctuation per processed input tuple, which downstream unions use for
// order-preserving merging.
//
// Window semantics: a pair (a, b) joins when Tb - Ta <= W_A or
// Ta - Tb <= W_B. The paper states the strict form in Section 2 but its
// operational purge rule (Figure 6: purge when the distance exceeds the
// window) and the Table 2 trace keep boundary tuples, so the closed form is
// what a chain of sliced joins computes; the monolithic join uses the same
// closed boundaries to stay exactly equivalent. With continuous Poisson
// timestamps the boundary cases have probability zero either way.
type WindowJoin struct {
	name   string
	wa, wb stream.Time
	pred   stream.JoinPredicate
	in     *stream.Queue
	states [2]*stream.State
	out    Port
	hash   bool
	// slab amortizes the joined-result allocations.
	slab stream.TupleSlab
}

// NewWindowJoin builds a regular sliding-window join. wa is the window on
// stream A's state, wb on stream B's.
func NewWindowJoin(name string, wa, wb stream.Time, pred stream.JoinPredicate, in *stream.Queue) (*WindowJoin, error) {
	if wa < 0 || wb < 0 {
		return nil, fmt.Errorf("operator %s: negative window (A=%s, B=%s)", name, wa, wb)
	}
	return &WindowJoin{
		name:   name,
		wa:     wa,
		wb:     wb,
		pred:   pred,
		in:     in,
		states: [2]*stream.State{stream.NewState(), stream.NewState()},
	}, nil
}

// WithHashProbe switches probing to the equijoin hash index, modelling the
// hash-join execution the paper cites from Kang et al. [14]. It must be
// called before any tuple is processed and requires an Equijoin predicate.
func (j *WindowJoin) WithHashProbe() (*WindowJoin, error) {
	if _, ok := j.pred.(stream.Equijoin); !ok {
		return nil, fmt.Errorf("operator %s: hash probing requires an equijoin predicate, got %s", j.name, j.pred)
	}
	j.hash = true
	j.states[0].WithIndex()
	j.states[1].WithIndex()
	return j, nil
}

// Out exposes the joined-result port.
func (j *WindowJoin) Out() *Port { return &j.out }

// Name implements Operator.
func (j *WindowJoin) Name() string { return j.name }

// Pending implements Operator.
func (j *WindowJoin) Pending() bool { return !j.in.Empty() }

// StateSize implements StateSizer.
func (j *WindowJoin) StateSize() int { return j.states[0].Len() + j.states[1].Len() }

// Windows returns the configured window sizes (A, B).
func (j *WindowJoin) Windows() (stream.Time, stream.Time) { return j.wa, j.wb }

// Step implements Operator.
func (j *WindowJoin) Step(m *CostMeter, max int) int {
	n := 0
	for n < budget(max) && !j.in.Empty() {
		it := j.in.Pop()
		n++
		m.invoke(1)
		if it.IsPunct() {
			j.out.Push(it)
			continue
		}
		j.process(m, it.Tuple)
	}
	return n
}

// process runs the three execution steps of Figure 1 for one arriving tuple.
func (j *WindowJoin) process(m *CostMeter, t *stream.Tuple) {
	opp := t.Stream.Other()
	oppWindow := j.wa
	if opp == stream.StreamB {
		oppWindow = j.wb
	}
	st := j.states[opp]
	// 1. Cross-purge: discard expired tuples of the opposite state.
	purgeExpired(m, st, t.Time, oppWindow, nil)
	// 2. Probe: emit t joined with the surviving opposite tuples.
	j.probe(m, st, t)
	// 3. Insert: add t to its own window state.
	j.states[t.Stream].Insert(t)
	// The probing tuple acts as a punctuation for downstream merges: all
	// future results carry a later timestamp.
	j.out.PushPunct(t.Time)
}

// probe emits all matches between t and the opposite state st.
func (j *WindowJoin) probe(m *CostMeter, st *stream.State, t *stream.Tuple) {
	if j.hash {
		m.hash(1)
		bucket := st.Bucket(t.Key)
		m.probe(len(bucket))
		for _, o := range bucket {
			j.emit(t, o)
		}
		return
	}
	sa, sb := st.Spans()
	m.probe(len(sa) + len(sb))
	for _, o := range sa {
		if matches(j.pred, t, o) {
			j.emit(t, o)
		}
	}
	for _, o := range sb {
		if matches(j.pred, t, o) {
			j.emit(t, o)
		}
	}
}

func (j *WindowJoin) emit(t, o *stream.Tuple) {
	if t.Stream == stream.StreamA {
		j.out.PushTuple(j.slab.Joined(t, o))
	} else {
		j.out.PushTuple(j.slab.Joined(o, t))
	}
}

// matches evaluates the join predicate with the stream-A tuple first.
func matches(pred stream.JoinPredicate, t, o *stream.Tuple) bool {
	if t.Stream == stream.StreamA {
		return pred.Match(t, o)
	}
	return pred.Match(o, t)
}

// purgeExpired removes tuples from the front of st whose age relative to now
// strictly exceeds window, sending them to next when provided (the
// Purged-Tuple queue of a sliced join, where they arrive as the female
// reference copies of the following slice) and discarding them otherwise.
// Every examined tuple, including the one that stops the scan, costs one
// timestamp comparison on the meter.
func purgeExpired(m *CostMeter, st *stream.State, now stream.Time, window stream.Time, next *Port) {
	for st.Len() > 0 {
		m.purge(1)
		front := st.Front()
		if now-front.Time <= window {
			return
		}
		st.PopFront()
		if next != nil {
			next.Push(stream.RoleItem(front, stream.RoleFemale))
		}
	}
}
