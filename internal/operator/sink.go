package operator

import "stateslice/internal/stream"

// Sink terminates a query output: it drains its input queue, counts the
// delivered result tuples and optionally collects them for inspection. It
// also verifies that results arrive in non-decreasing (Time, Seq) order,
// which the order-preserving unions must guarantee; violations are counted
// rather than fatal so tests can assert on them.
type Sink struct {
	name     string
	in       *stream.Queue
	collect  bool
	tapOnly  bool
	onResult func(*stream.Tuple)
	onItem   func(stream.Item)

	count      uint64
	results    []*stream.Tuple
	violations int
	lastTime   stream.Time
	lastSeq    uint64
	seen       bool
}

// NewSink builds a counting sink over the input queue.
func NewSink(name string, in *stream.Queue) *Sink {
	return &Sink{name: name, in: in}
}

// NewDirectSink builds a queueless sink: wire it to a producer with
// Port.AttachFunc(sink.Accept) so results are delivered synchronously during
// the producer's Step, skipping the queue round-trip. The sink still
// participates in plan scheduling but its Step is a no-op.
func NewDirectSink(name string) *Sink {
	return &Sink{name: name}
}

// Accept processes one item immediately (direct port delivery).
func (s *Sink) Accept(it stream.Item) { s.deliver(it) }

// AcceptRun processes a span of consecutive items from one ordered input in
// a single call — semantically identical to calling Accept on each item in
// order, but amortizing the per-item call indirection. Run-based merges
// deliver whole emission runs through it.
func (s *Sink) AcceptRun(items []stream.Item) {
	for _, it := range items {
		s.deliver(it)
	}
}

// Collecting makes the sink retain every result tuple and returns it.
func (s *Sink) Collecting() *Sink {
	s.collect = true
	return s
}

// OnResult installs a callback invoked for every result tuple as it is
// delivered, in delivery order, from whichever goroutine steps the sink. It
// must be set before the sink processes any tuple.
func (s *Sink) OnResult(fn func(*stream.Tuple)) *Sink {
	s.onResult = fn
	return s
}

// OnItem installs a tap invoked for every delivered item — result tuples and
// punctuations alike — before regular sink processing. Unlike OnResult it
// exposes the punctuation stream, which downstream order-preserving merges
// need for progress: the sharded executor forwards a replica's per-query
// output through this hook into the cross-replica union. It must be set
// before the sink processes any item.
func (s *Sink) OnItem(fn func(stream.Item)) *Sink {
	s.onItem = fn
	return s
}

// TapOnly makes the sink forward every item to its OnItem tap and skip its
// own counting, ordering and collection work. It fits relay positions where
// a downstream consumer repeats that bookkeeping — the sharded executor's
// replica sinks, whose streams are re-counted and re-order-checked by the
// cross-replica merge sinks — and saves the per-item cost of doing it
// twice. Requires an OnItem tap; Count, Results and OrderViolations stay
// zero.
func (s *Sink) TapOnly() *Sink {
	s.tapOnly = true
	return s
}

// Count returns the number of result tuples delivered so far.
func (s *Sink) Count() uint64 { return s.count }

// Results returns the collected tuples (nil unless Collecting was enabled).
func (s *Sink) Results() []*stream.Tuple { return s.results }

// OrderViolations returns how many results arrived out of (Time, Seq) order.
func (s *Sink) OrderViolations() int { return s.violations }

// Name implements Operator.
func (s *Sink) Name() string { return s.name }

// Pending implements Operator.
func (s *Sink) Pending() bool { return s.in != nil && !s.in.Empty() }

// Step implements Operator. Sinks always take everything offered, so the
// whole input queue is drained span-wise in one call; the budget only
// matters to callers that cap consumption explicitly. Direct sinks have no
// queue and receive everything via Accept, so their Step is a no-op.
func (s *Sink) Step(m *CostMeter, max int) int {
	if s.in == nil {
		return 0
	}
	if b := budget(max); s.in.Len() > b {
		n := 0
		for n < b && !s.in.Empty() {
			s.deliver(s.in.Pop())
			n++
		}
		return n
	}
	return s.in.Drain(s.deliver)
}

// deliver processes one queue item.
func (s *Sink) deliver(it stream.Item) {
	if s.onItem != nil {
		s.onItem(it)
		if s.tapOnly {
			return
		}
	}
	if it.IsPunct() {
		return
	}
	t := it.Tuple
	if s.seen && (t.Time < s.lastTime || (t.Time == s.lastTime && t.Seq < s.lastSeq)) {
		s.violations++
	}
	s.seen, s.lastTime, s.lastSeq = true, t.Time, t.Seq
	s.count++
	if s.collect {
		s.results = append(s.results, t)
	}
	if s.onResult != nil {
		s.onResult(t)
	}
}
