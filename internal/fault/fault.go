// Package fault is the failure-semantics vocabulary of the execution stack:
// the typed sentinel errors every misuse path returns (so callers can
// errors.Is instead of matching strings), the PanicError a contained worker
// goroutine publishes instead of crashing the process, and the test-only
// fault-injection registry the chaos suite drives.
//
// The package sits at the bottom of the import DAG — engine, plan, shard,
// pipeline and the public API all import it — so one taxonomy serves every
// layer and the public package can re-export the sentinels as aliases.
package fault

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sentinel errors of the session lifecycle and the chain's misuse paths.
// They are deliberately context-free: every return site wraps them with
// fmt.Errorf("...: %w", ...) so the message carries the layer and operation
// while errors.Is still matches.
var (
	// ErrSessionFinished: the session was finished (Finish ran) and cannot
	// be fed, drained, migrated or admitted to anymore.
	ErrSessionFinished = errors.New("session already finished")
	// ErrClosed: the session was closed (Close ran); every subsequent
	// operation fails with it, and an aborted run's Result.Err carries it
	// so partial statistics are never mistaken for a completed run.
	ErrClosed = errors.New("session closed")
	// ErrNotQuiescing: the operator graph kept moving items past the
	// scheduler's pass bound — an operator cycle or a misbehaving custom
	// operator. The session is failed rather than the process crashed.
	ErrNotQuiescing = errors.New("plan does not quiesce")
	// ErrOutOfOrder: a fed tuple violated the global timestamp order.
	ErrOutOfOrder = errors.New("tuple out of timestamp order")
	// ErrRestructuring: a migration or admission re-entered the chain while
	// another restructure was in progress (e.g. from a sink callback fired
	// inside a barrier).
	ErrRestructuring = errors.New("chain is already being restructured")
	// ErrNotMigratable: the operation needs a chain built with Migratable
	// (WithMigratable) — migration and live admission reuse that wiring.
	ErrNotMigratable = errors.New("plan was not built as migratable")
	// ErrNoSession: the operation needs an active session driving the plan.
	ErrNoSession = errors.New("no active session drives this plan")
	// ErrNotSharded: the operation (e.g. Rebalance) redistributes state
	// between shard replicas and needs a sharded session (WithShards).
	ErrNotSharded = errors.New("plan was not built with shards")
)

// PanicError is the classified error a recovered worker-goroutine or
// user-callback panic surfaces as: instead of crashing the process, the
// panic is published through the session's first-error machinery and carried
// on Close / Feed / Result.Err. Callers unwrap it with errors.As.
type PanicError struct {
	// Op names the containment boundary that recovered the panic, e.g.
	// "replica feed" or "assembly worker".
	Op string
	// Shard is the replica or worker index the panic occurred on; -1 when
	// the boundary is not sharded (sequential engine, source pull).
	Shard int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error. The stack is not rendered (it can run to
// kilobytes); log it separately from the field when debugging.
func (e *PanicError) Error() string {
	if e.Shard >= 0 {
		return fmt.Sprintf("panic in %s %d: %v", e.Op, e.Shard, e.Value)
	}
	return fmt.Sprintf("panic in %s: %v", e.Op, e.Value)
}

// Capture converts a recovered panic value into a *PanicError, snapshotting
// the current goroutine's stack. Call it from the deferred recover site so
// the stack still contains the panicking frames.
func Capture(op string, shard int, v any) *PanicError {
	buf := make([]byte, 16<<10)
	return &PanicError{Op: op, Shard: shard, Value: v, Stack: buf[:runtime.Stack(buf, false)]}
}

// Point names a fault-injection site in the execution stack. The registry
// generalizes the replica-feed test seam the shard tests grew first: any
// layer can Fire a point on its hot path for the one-atomic-load cost of
// the disarmed check, and the chaos suite Injects hooks that fail or panic
// there.
type Point uint8

const (
	// ReplicaFeed fires before a shard replica runner feeds one tuple into
	// its engine session.
	ReplicaFeed Point = iota
	// MergeApply fires before a merge worker folds one tagged result batch
	// into its query's cross-replica merge.
	MergeApply
	// AssembleApply fires before an assembly worker folds one slice batch
	// into its slice merge (the slice-merge fast path).
	AssembleApply
	// BarrierApply fires before a replica runner applies one barrier
	// command (drain, migration, attach, detach) — hooks that block here
	// hold the replica mid-barrier, which is how the chaos suite creates
	// an in-flight barrier to Close through.
	BarrierApply
	// RebalanceApply fires before a replica runner rebuilds its chain from
	// a redistributed checkpoint during a rebalance barrier — after
	// BarrierApply, before any state moves. Unlike other barrier commands,
	// an error here fails the replica: ownership has already been re-cut on
	// the driver, so a replica that cannot adopt its share is corrupt.
	RebalanceApply

	numPoints
)

// Hook is an injected fault: it receives the firing shard (or worker)
// index and may return an error — failing the site the way a session error
// would — or panic, exercising the containment path.
type Hook func(shard int) error

var (
	// armed is the disarmed-registry fast path: Fire is called per tuple
	// (ReplicaFeed) and per batch, so outside tests it must cost exactly
	// one atomic load.
	armed atomic.Bool
	mu    sync.Mutex
	hooks [numPoints]Hook
)

// Inject arms a hook at the given point and returns the function that
// removes it again. Test-only; hooks are global, so tests that inject must
// not run in parallel with each other.
func Inject(p Point, h Hook) (restore func()) {
	mu.Lock()
	hooks[p] = h
	armed.Store(true)
	mu.Unlock()
	return func() {
		mu.Lock()
		hooks[p] = nil
		still := false
		for _, h := range hooks {
			if h != nil {
				still = true
			}
		}
		armed.Store(still)
		mu.Unlock()
	}
}

// Fire runs the hook armed at p, if any. The disarmed fast path is a single
// atomic load; hook panics propagate to the caller's containment boundary
// on purpose.
func Fire(p Point, shard int) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	h := hooks[p]
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h(shard)
}
