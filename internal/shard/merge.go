package shard

import (
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// kmerge is the order-preserving merge of the per-shard output streams of
// one query. It generalizes the run-based union merge of operator.Union —
// one scan selects the input holding the minimal (Time, Seq) head and the
// tightest bound the other inputs impose (their heads, or the punctuation
// frontiers of the empty ones), then consecutive items of the winner are
// emitted as one run — but specializes it for the shard topology:
//
//   - Inputs arrive as whole slabs, so pending items live in slab slices
//     consumed by offset instead of a ring buffer: no per-item Push/Pop
//     stores, and run spans are delivered to the sink with one call
//     (Sink.AcceptRun) rather than one port push per tuple.
//   - Heads of different inputs can never tie on (Time, Seq): a joined
//     tuple inherits the Seq of its probing male, and every male's
//     surviving results leave exactly one shard — the only shard holding
//     the male under hash partitioning, the owner shard of the male's key
//     after band suppression (band.go). The union's same-key chain-order
//     concatenation degenerates to a strict comparison.
//
// The emitted sequence is exactly the union's: an item is emitted only once
// every other input either exposes a later head or has punctuated past it.
// Cost accounting mirrors the union (one Union comparison per ordering
// decision or absorbed punctuation, one invocation per emitted tuple), so
// the merge's comparison counts stay comparable with the rest of the meter.
//
// kmerge is single-threaded: its owning goroutine calls push and step;
// nothing else touches it.
type kmerge struct {
	ins []mergeInput
	// emit receives the merged stream as spans of consecutive tuple items
	// of one input, in global (Time, Seq) order, interleaved with
	// single-punctuation spans carrying the merge's output frontier (so a
	// downstream order-preserving union can consume the merged stream in
	// turn; terminal sinks simply ignore the punctuations).
	emit func([]stream.Item)
	// free recycles fully-consumed slabs back to the replica taps.
	free  chan []stream.Item
	meter operator.CostMeter
	// lastOut is the last forwarded output frontier.
	lastOut stream.Time
	// punctBuf is the reusable single-item span for frontier forwarding.
	punctBuf [1]stream.Item
}

// mergeInput buffers one shard's pending stream as a FIFO of slabs.
type mergeInput struct {
	slabs [][]stream.Item
	off   int // consumed prefix of slabs[0]
	// frontier is the punctuation guarantee: no future item at or below
	// this timestamp.
	frontier stream.Time
}

// newKmerge builds a merge over n shard inputs feeding emit.
func newKmerge(n int, emit func([]stream.Item), free chan []stream.Item) *kmerge {
	m := &kmerge{ins: make([]mergeInput, n), emit: emit, free: free, lastOut: -1}
	for i := range m.ins {
		m.ins[i].frontier = -1
	}
	return m
}

// push appends a slab to the shard's pending stream, taking ownership of
// the slice (it is recycled once consumed).
func (m *kmerge) push(shard int, items []stream.Item) {
	if len(items) == 0 {
		return
	}
	m.ins[shard].slabs = append(m.ins[shard].slabs, items)
}

// head returns the input's first pending tuple, absorbing leading
// punctuations into the frontier (one counted comparison each, as in
// Union.absorbPunctuations). It returns nil when no tuple is pending.
func (m *kmerge) head(in *mergeInput) *stream.Tuple {
	for len(in.slabs) > 0 {
		slab := in.slabs[0]
		for in.off < len(slab) {
			it := slab[in.off]
			if !it.IsPunct() {
				return it.Tuple
			}
			m.meter.Union++
			if it.Punct > in.frontier {
				in.frontier = it.Punct
			}
			in.off++
		}
		m.recycle(in)
	}
	return nil
}

// recycle returns the consumed head slab to the free list and advances to
// the next. The slab list shifts in place (it holds at most the few slabs
// in flight), keeping its capacity for reuse — re-slicing the front off
// would bleed capacity and re-allocate on every later push.
func (m *kmerge) recycle(in *mergeInput) {
	slab := in.slabs[0]
	n := copy(in.slabs, in.slabs[1:])
	in.slabs = in.slabs[:n]
	in.off = 0
	clear(slab)
	select {
	case m.free <- slab[:0]:
	default:
	}
}

// step emits every item the heads and frontiers allow, in runs, then
// forwards the merge's own output frontier when it advanced.
func (m *kmerge) step() {
	for {
		// One scan: the emission candidate (minimal (Time, Seq) head),
		// the runner-up bounding its run, the tightest frontier of the
		// inputs with nothing pending, and the merge's output frontier
		// (no future output at or below it: pending heads still to be
		// emitted cap it at head-1, empty inputs at their frontier).
		best := -1
		var bestT, openT *stream.Tuple
		minFrontier := stream.MaxTime
		outFrontier := stream.MaxTime
		for i := range m.ins {
			in := &m.ins[i]
			h := m.head(in)
			if h == nil {
				if in.frontier < minFrontier {
					minFrontier = in.frontier
				}
				if in.frontier < outFrontier {
					outFrontier = in.frontier
				}
				continue
			}
			if h.Time-1 < outFrontier {
				outFrontier = h.Time - 1
			}
			if best == -1 {
				best, bestT = i, h
				continue
			}
			m.meter.Union++
			if tupleLess(h, bestT) {
				openT = bestT
				best, bestT = i, h
			} else if openT == nil || tupleLess(h, openT) {
				openT = h
			}
		}
		if best == -1 || bestT.Time > minFrontier {
			// Nothing pending, or an empty input may still deliver
			// earlier items. Forward the advanced output frontier so a
			// downstream union keeps draining (MaxTime passes through
			// at the end of the stream and flushes it completely).
			if outFrontier > m.lastOut {
				m.lastOut = outFrontier
				m.punctBuf[0] = stream.PunctItem(outFrontier)
				m.emit(m.punctBuf[:])
			}
			return
		}
		// The selection guarantees the first run item is emittable, so
		// every pass delivers at least one item: the rescan loop
		// terminates.
		m.emitRun(&m.ins[best], openT, minFrontier)
	}
}

// emitRun delivers consecutive items of the winning input while they stay
// below the bound and at or below the frontier, as whole spans per slab
// segment, then returns for a rescan (the bound input may now win, or an
// exhausted input's frontier may block further emission).
func (m *kmerge) emitRun(in *mergeInput, openT *stream.Tuple, minFrontier stream.Time) {
	for len(in.slabs) > 0 {
		slab := in.slabs[0]
		i := in.off
		j := i
		for j < len(slab) {
			it := slab[j]
			if it.IsPunct() {
				break
			}
			t := it.Tuple
			if openT != nil {
				// One counted comparison per run item, as in the
				// union's run loop.
				m.meter.Union++
				if !tupleLess(t, openT) {
					m.deliver(in, slab, i, j)
					return
				}
			}
			if t.Time > minFrontier {
				m.deliver(in, slab, i, j)
				return
			}
			j++
		}
		if j > i {
			m.deliver(in, slab, i, j)
		}
		if j == len(slab) {
			m.recycle(in)
			continue
		}
		// A punctuation inside the slab: absorb it and continue the run.
		m.meter.Union++
		if p := slab[j].Punct; p > in.frontier {
			in.frontier = p
		}
		in.off = j + 1
	}
}

// deliver hands span [i, j) of the input's head slab to the consumer and
// advances the consumed offset.
func (m *kmerge) deliver(in *mergeInput, slab []stream.Item, i, j int) {
	if j > i {
		m.emit(slab[i:j])
		m.meter.Invocations += uint64(j - i)
	}
	in.off = j
}

// tupleLess orders tuples by (Time, Seq), as in the union merge.
func tupleLess(a, b *stream.Tuple) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}
