package shard

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"stateslice/internal/stream"
)

// Band-partitioned sharding for non-equijoin predicates with a bounded key
// distance (stream.BandPartitioner, e.g. stream.BandJoin): the key domain is
// split into P contiguous owner ranges, and every tuple is fed to its owner
// shard plus every shard whose range lies within the band width B of its key
// — the overlapped range partitioning of parallel band joins. Replication
// makes every matching pair co-resident on at least one shard; the executor
// then suppresses the boundary duplicates with the owner rule below, so the
// merged output stays byte-identical to the sequential engine.
//
// Ownership rule. A joined pair is owned by the shard that owns the *probing
// male's* key, and only that shard's copy of the result survives to the
// merge. The rule is sound and complete:
//
//   - Complete: male m (key km) is fed natively to Owner(km); every female f
//     with |kf - km| <= B satisfies km ∈ [kf-B, kf+B], so f's replication
//     span — all shards owning keys in that interval — includes Owner(km).
//     Owner(km)'s window state therefore holds every female m can match, in
//     global arrival order, and m's probe there produces exactly the
//     sequential engine's result run for m (the matching females are the
//     same set in the same relative order; extra replicated females in the
//     state fail the predicate just as they would fail it sequentially).
//   - Sound: Owner(km) is a single shard, so each pair survives exactly
//     once; copies of m probing on other shards produce duplicates that the
//     suppression filter drops before they reach a batcher.
//
// The rule also preserves the merge's no-ties invariant (see kmerge): a
// result inherits the Seq of its probing male, and after suppression every
// result of one male comes from the one shard owning that male's key, so
// heads of different merge inputs still never tie on (Time, Seq) and the
// merged sequence remains the unique global order.
//
// Skew caveat: unlike the hash partitioner, contiguous ranges do not mix key
// values — keys clustered inside one range land on one shard, and keys
// clustered at a range boundary additionally replicate to the neighbor.
// Both degrade balance, never correctness (the equivalence tests pin
// boundary-clustered keys explicitly).

// Band configures band-partitioned sharded execution. A nil *Band on Config
// selects the default hash partitioning for key-partitionable joins.
type Band struct {
	// Width is the band bound B of the join predicate: matching pairs
	// satisfy |A.Key - B.Key| <= Width. Must be >= 0.
	Width int64
	// MinKey and MaxKey bound the expected key domain, inclusive. The
	// domain is split into Shards contiguous ranges of near-equal width
	// (every range gets floor(span/Shards) or ceil(span/Shards) keys, so
	// small domains never leave trailing shards without keys); keys
	// outside the domain are clamped onto the first/last range (correct,
	// but they concentrate load there).
	MinKey, MaxKey int64
}

// Validate reports the first invalid field, if any.
func (b Band) Validate() error {
	if b.Width < 0 {
		return fmt.Errorf("shard: band width must be >= 0, got %d", b.Width)
	}
	if b.MinKey > b.MaxKey {
		return fmt.Errorf("shard: band key range [%d, %d] is empty (MinKey > MaxKey)", b.MinKey, b.MaxKey)
	}
	return nil
}

// RangePartitioner maps keys onto contiguous owner ranges and computes the
// replication span of band-partitioned execution. Owner is monotone in the
// key, which is what makes the replication span a contiguous shard interval
// and the ownership lemma above hold for clamped out-of-domain keys too.
//
// With learned cuts installed (SetCuts), the fixed near-equal-width split is
// replaced by equi-depth ranges: shard i owns keys in [cuts[i-1], cuts[i])
// with the edge shards clamping as before. The cut vector is strictly
// ascending, so Owner stays monotone and the replication span remains a
// contiguous interval — the ownership lemma holds under any cut vector.
type RangePartitioner struct {
	n   int
	min int64
	// span is the domain size MaxKey-MinKey+1; 0 encodes the full int64
	// domain (2^64 does not fit in uint64).
	span uint64
	band int64
	// cuts, when non-nil, holds n-1 strictly ascending key boundaries:
	// cuts[i] is the smallest key owned by shard i+1.
	cuts []int64
}

// NewRangePartitioner builds a partitioner splitting [b.MinKey, b.MaxKey]
// into shards contiguous ranges of near-equal width: range i covers the
// keys whose offsets fall in [i*span/shards, (i+1)*span/shards), so every
// shard owns floor(span/shards) or ceil(span/shards) keys and a domain
// smaller than the shard count still spreads over the first span shards
// instead of leaving trailing shards keyless.
func NewRangePartitioner(shards int, b Band) (RangePartitioner, error) {
	if shards < 1 {
		shards = 1
	}
	if err := b.Validate(); err != nil {
		return RangePartitioner{}, err
	}
	// Unsigned span arithmetic: MaxKey-MinKey may not fit in int64.
	span := uint64(b.MaxKey) - uint64(b.MinKey) + 1
	return RangePartitioner{n: shards, min: b.MinKey, span: span, band: b.Width}, nil
}

// Shards returns the shard count.
func (p RangePartitioner) Shards() int { return p.n }

// RangeWidth returns the nominal owner range width floor(span/shards); the
// expected replication factor of uniform keys is roughly
// 1 + 2*Width/RangeWidth for Width << RangeWidth.
func (p RangePartitioner) RangeWidth() uint64 {
	if p.span == 0 { // full int64 domain
		return math.MaxUint64/uint64(p.n) + 1
	}
	return p.span / uint64(p.n)
}

// Owner returns the shard owning the key: the index of the contiguous range
// containing it, clamped onto the edge shards for out-of-domain keys.
func (p RangePartitioner) Owner(key int64) int {
	if p.n <= 1 || key <= p.min {
		return 0
	}
	if p.cuts != nil {
		return sort.Search(len(p.cuts), func(i int) bool { return p.cuts[i] > key })
	}
	d := uint64(key) - uint64(p.min)
	if p.span == 0 { // full domain: fixed width ceil(2^64 / n)
		return int(d / (math.MaxUint64/uint64(p.n) + 1))
	}
	if d >= p.span {
		return p.n - 1
	}
	// floor(d * n / span) via the 128-bit intermediate: d < span and
	// n < 2^64 guarantee hi < span, so Div64 cannot overflow.
	hi, lo := bits.Mul64(d, uint64(p.n))
	q, _ := bits.Div64(hi, lo, p.span)
	return int(q)
}

// Replicas returns the inclusive shard interval [lo, hi] that must hold the
// key's tuple: every shard owning a key within the band width of it. The
// interval always contains Owner(key); for band width 0 it is exactly the
// owner.
func (p RangePartitioner) Replicas(key int64) (lo, hi int) {
	if p.band == 0 {
		o := p.Owner(key)
		return o, o
	}
	// Saturating key +- band: Owner clamps onto the edge shards anyway, so
	// saturation preserves the span (and monotonicity) where key+-band
	// would overflow.
	l := key - p.band
	if l > key {
		l = math.MinInt64
	}
	h := key + p.band
	if h < key {
		h = math.MaxInt64
	}
	return p.Owner(l), p.Owner(h)
}

// Cuts returns the installed key boundaries (nil when the fixed-width split
// is in effect). The slice is the partitioner's own; callers must not mutate
// it.
func (p RangePartitioner) Cuts() []int64 { return p.cuts }

// SetCuts installs learned equi-depth key boundaries, or restores the fixed
// near-equal-width split when cuts is nil. len(cuts) must be Shards()-1 and
// the values strictly ascending and above MinKey (keys <= MinKey always clamp
// onto shard 0); violations are rejected so a corrupt cut vector can never
// break the ownership lemma.
func (p *RangePartitioner) SetCuts(cuts []int64) bool {
	if cuts == nil {
		p.cuts = nil
		return true
	}
	if len(cuts) != p.n-1 {
		return false
	}
	for i, c := range cuts {
		if c <= p.min || (i > 0 && c <= cuts[i-1]) {
			return false
		}
	}
	p.cuts = cuts
	return true
}

// bandOwnerKey returns the key that decides a result item's owner shard: the
// probing male's. A joined tuple inherits the Seq of its probing male (the
// later of its two sources — the probe only ever sees earlier arrivals), so
// the male is identified without any extra bookkeeping on the tuple.
// Non-result tuples own themselves.
func bandOwnerKey(t *stream.Tuple) int64 {
	if !t.IsResult() {
		return t.Key
	}
	if t.B.Seq == t.Seq {
		return t.B.Key
	}
	return t.A.Key
}
