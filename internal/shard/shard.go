// Package shard executes a state-slice chain as P independent replicas, one
// per key range, with an order-preserving merge of the replica outputs.
//
// For key-partitionable joins (equijoins on Tuple.Key) hash-partitioning
// both input streams by key yields fully independent shard states: a pair of
// tuples split across shards can never join, and each replica computes
// exactly the results of its own key range — the same data-parallel move
// that shared-arrangement and multi-way stream-join scale-out systems use to
// spread indexed state across workers. Band joins (|A.Key - B.Key| <= B)
// use contiguous range partitioning with boundary replication instead:
// every tuple is fed to each shard whose owner range lies within B of its
// key, and the taps drop every joined pair not owned by the shard of the
// probing male's key, so the replication's boundary duplicates never reach
// the merge (Config.Band; band.go states the ownership lemma). Either way
// each replica is the unmodified batched sequential engine
// (internal/engine) driving a full copy of the chain on its own goroutine;
// no operator knows it is sharded.
//
// Ordering is restored by a run-based cross-replica merge (kmerge, the
// shard specialization of the union merge in operator/union.go), driven by
// the punctuation stream each replica's output already carries: a sliced
// join emits punct(t) after the probing male at t, so a replica's output
// frontier advances with every male it processes. Because a second male
// with the *same* timestamp may still be in flight inside a replica, the
// executor demotes forwarded punctuations to t-1, making the frontier
// strict; the final MaxTime punctuation of Finish is forwarded untouched
// and flushes the merge completely. Idle shards — inevitable under key
// skew — are kept moving by periodic input punctuation broadcasts
// (Config.PunctEvery), which the engine forwards through the chain
// (engine.Session.FeedPunct).
//
// Two merge topologies share that machinery, both parallelized across a
// pool of assembly workers (Config.AssemblyWorkers) so that no single
// goroutine has to touch every result item. The general path merges each
// query's per-shard output streams; the query mergers are distributed over
// the worker pool (by default one worker per query, so every merger runs
// concurrently); it handles every chain the engine handles — filters,
// routed slices, mid-stream migration. The slice-merge fast path
// (Config.SliceMerge, for unfiltered chains whose every window is a slice
// boundary) merges each *slice's* per-shard result stream instead and
// assembles the per-query answers engine-style: every distinct result
// crosses goroutines from the replicas once, not once per subscribing query
// — the margin that lets the sharded executor beat the single-core engine
// even on one core, where only the probe-work reduction of smaller
// per-shard states (and none of the parallelism) is available to pay for
// the merge. On the fast path the assembly itself is sharded by query:
// each worker owns a disjoint subset of the per-query unions, slice merges
// are distributed across the workers, and a worker that merges a slice
// forwards the merged spans (as recycled slabs) to the other workers whose
// queries subscribe to it — see assemble.go for the topology and its
// deadlock-freedom argument.
//
// Result streams cross goroutines as item slabs (stream.Batcher) over
// bounded channels, the same amortization the concurrent pipeline uses,
// recycled through a free list so the steady state allocates nothing.
// Within one shard a stream keeps its replica order (FIFO edges end to
// end); across shards results never tie on (Time, Seq) — a joined tuple
// inherits the Seq of its probing male, and every male's surviving results
// come from exactly one shard (its key's only shard under hash
// partitioning; its key's owner shard after band suppression) — so the
// merged sequence is the unique global (Time, Seq) order, byte-identical
// to the sequential engine's output at every shard and worker count.
//
// Replica failures are never swallowed: the first error any runner hits is
// published to the driver, surfaces on the next Feed/Consume/Migrate call,
// and is returned again by Finish. Panics inside any spawned goroutine —
// replica runners, merge workers, assembly workers — are contained the same
// way: recovered into a fault.PanicError and published as the first error,
// so one crashing operator or user callback fails the session instead of
// the process (the blast-radius property a shared chain owes its co-hosted
// queries).
//
// The executor is also cancellable: Config.Ctx bounds the whole run, and
// Close aborts it — both unwind the feed channels, replica runners, mergers
// and assemblers through the same ordered teardown Finish uses, deadlock-
// and leak-free even when the abort lands mid-barrier (see barrier and
// teardownLocked).
//
// Chain migration (Section 5.3) fans out: Migrate flushes the pending feed
// slabs, then every replica applies the same merge/split program at the
// same global stream position (plan.MigrateTo) before feeding resumes.
package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stateslice/internal/engine"
	"stateslice/internal/fault"
	"stateslice/internal/operator"
	"stateslice/internal/plan"
	rec "stateslice/internal/recover"
	"stateslice/internal/stream"
)

// DefaultPunctEvery is the default input-tuple period of punctuation
// broadcasts. Broadcasts only bound merge latency and memory on idle
// shards — correctness never depends on the period, because every male a
// shard does receive punctuates its output anyway and Finish flushes with
// MaxTime.
const DefaultPunctEvery = 256

// chanBuf is the buffer size, in slabs, of the merge channels; it only
// affects throughput, never correctness.
const chanBuf = 32

// feedSlab and feedBuf deliberately keep the feed edge fine-grained: one
// input tuple amplifies into tens of result items per query, so a shard
// running a large input lead floods the merge unions with items their
// frontiers cannot release until the lagging shards catch up (the merge
// channel itself cannot exert that backpressure — its consumer absorbs
// batches unconditionally into the union queues). Capping a runner's lead
// at (feedBuf+1)*feedSlab inputs bounds every merger queue to a small
// multiple of the result amplification instead of the whole stream.
const (
	feedSlab = 16
	feedBuf  = 4
)

// Config parameterises an Executor.
type Config struct {
	// Shards is the replica count P (>= 1). P = 1 still runs the full
	// sharded machinery — feed channels, merge layer — and measures its
	// overhead against the plain engine.
	Shards int
	// AssemblyWorkers is the number of goroutines the merge layer runs
	// (>= 1; capped at the query count). 0 selects an automatic default:
	// on the query-level merge path, one worker per query, so every
	// query's merger runs concurrently; on the slice-merge fast path,
	// min(queries, max(1, GOMAXPROCS/2), 4) — half the schedulable cores
	// (the replicas need the other half; they are ~70% of the work), and
	// never more than the parallelism the assembly stage has been
	// measured to use productively. Results are byte-identical at every
	// worker count; the knob only moves where the reassembly work runs.
	AssemblyWorkers int
	// BatchSize is the engine micro-batch size K applied to every
	// replica's session (see engine.Config.BatchSize).
	BatchSize int
	// PunctEvery is the input-tuple period of punctuation broadcasts to
	// all shards; 0 selects DefaultPunctEvery, negative disables
	// broadcasts (the final punctuation still flushes everything).
	PunctEvery int
	// SampleEvery is the per-replica monitor sampling period (see
	// engine.Config.SampleEvery).
	SampleEvery int
	// Band, when non-nil, selects contiguous range partitioning with
	// boundary replication for band-join predicates (|A.Key - B.Key| <=
	// Band.Width) instead of the default key hash: each tuple is fed to
	// every shard whose owner range lies within Band.Width of its key, and
	// the taps suppress every joined result not owned by the shard that
	// owns the probing male's key, so exactly one copy of each pair
	// reaches the merge (see band.go for the ownership lemma). nil keeps
	// hash partitioning, which requires a key-partitionable join.
	Band *Band
	// Collect makes the per-query merge sinks retain result tuples.
	Collect bool
	// OnResult, when non-nil, receives every result of query qi in that
	// query's delivery order, from the assembly worker owning the query
	// (callbacks for queries owned by different workers run
	// concurrently).
	OnResult func(qi int, t *stream.Tuple)
	// Ctx, when non-nil, bounds the whole run: once it is done, Consume
	// stops between tuples, barrier waits abandon, and blocked feed sends
	// release — the same unwind Close performs, surfacing the context's
	// cause instead of ErrClosed. nil means the run is bounded only by
	// Close/Finish.
	Ctx context.Context
	// SliceMerge selects the slice-level merge fast path: replicas are
	// built with plan.StateSliceConfig.RawSliceResults, each slice's
	// result stream crosses goroutines once, and the assembly-worker pool
	// merges the slices and assembles the per-query answers with
	// engine-style unions. Requires Windows and raw replicas; the
	// coordinator (the public build layer) selects it for eligible plans
	// (unfiltered, every window a slice boundary, not migratable).
	SliceMerge bool
	// Windows are the query windows, required by SliceMerge to derive
	// each query's contributing slices. Every window must equal one of
	// the chain's slice boundaries (ValidateSliceMergeWindows).
	Windows []stream.Time
	// Name labels the run's Result.
	Name string
	// Recovery, when non-nil, arms supervised replica restart: a replica
	// that dies with a contained crash (fault.PanicError) is rebuilt from
	// its last runner-local checkpoint and fed the delta from its replay
	// ring, up to the policy's budget, instead of failing the session.
	// Requires RestoreFn. nil keeps the fail-fast default — the first
	// replica failure aborts the run.
	Recovery *rec.Restart
	// RestoreFn rebuilds one replica's chain from a checkpoint; required by
	// Recovery and Restore. The public build layer supplies it, closing
	// over the founding workload (predicates are code and never travel in
	// a snapshot).
	RestoreFn func(shard int, cp *plan.ChainCheckpoint) (*plan.StateSlicePlan, error)
	// Restore, when non-nil, resumes the executor from a sharded
	// checkpoint instead of a fresh start: every replica is rebuilt from
	// its snapshot via RestoreFn, the engine frontiers and the driver's
	// feed counters are seeded, and feeding continues where the snapshot
	// was taken. The shard count and partitioning must match the snapshot.
	Restore *Checkpoint
	// Rebalance, when non-nil, arms the automatic rebalance trigger: the
	// feed path evaluates the per-replica delivery imbalance on the
	// policy's cadence and re-cuts ownership to learned equi-depth
	// boundaries after sustained imbalance (see rebalance.go). Requires
	// RestoreFn. Executor.Rebalance also works on demand without a policy;
	// the policy only automates the trigger.
	Rebalance *RebalancePolicy
}

// resolveWorkers returns the assembly-worker pool size for the given query
// count, applying the automatic default documented on AssemblyWorkers.
func (cfg Config) resolveWorkers(queries int) (int, error) {
	w := cfg.AssemblyWorkers
	if w < 0 {
		return 0, fmt.Errorf("shard: AssemblyWorkers must be >= 1 (or 0 for the automatic default), got %d", w)
	}
	if w == 0 {
		if cfg.SliceMerge {
			w = runtime.GOMAXPROCS(0) / 2
			if w > 4 {
				w = 4
			}
			if w < 1 {
				w = 1
			}
		} else {
			w = queries
		}
	}
	if w > queries {
		w = queries
	}
	return w, nil
}

// queryOwner maps a query index onto its owning assembly worker —
// contiguous balanced blocks. Both merge topologies use this one function,
// so their ownership layouts (and the documented OnResult concurrency
// semantics) cannot drift apart.
func queryOwner(qi, workers, queries int) int { return qi * workers / queries }

// ValidateSliceMergeWindows checks a slice-merge configuration against the
// chain's slice boundary layout: every query window must equal one of the
// boundaries, so each query's contributing slice prefix is non-empty and
// the assembly needs no routing. The public build layer runs this check at
// Build time — a misconfigured plan fails before any session or goroutine
// exists — and New repeats it before wiring anything, so the executor never
// reaches session time with windows its assembler cannot serve. It is the
// executor-side counterpart of plan.RawSliceEligible.
func ValidateSliceMergeWindows(ends, windows []stream.Time) error {
	if len(windows) == 0 {
		return errors.New("shard: SliceMerge needs the query windows")
	}
	if len(ends) == 0 {
		return errors.New("shard: SliceMerge needs a chain with at least one slice boundary")
	}
	isEnd := make(map[stream.Time]bool, len(ends))
	for _, e := range ends {
		isEnd[e] = true
	}
	for qi, w := range windows {
		if !isEnd[w] {
			return fmt.Errorf("shard: query %d window %s is not a slice boundary of the chain (first boundary %s, last %s); the slice-merge fast path requires every query window to be a boundary — use the query-level merge for this layout",
				qi, w, ends[0], ends[len(ends)-1])
		}
	}
	return nil
}

// feedMsg is one unit on a shard's feed channel: either an item slab or a
// control barrier.
type feedMsg struct {
	items []stream.Item
	ctl   *ctl
}

// ctl is a barrier command: a migration when target is non-nil, an admission
// when attach or detach is set, a checkpoint when snap is non-nil, a
// rebalance rebuild when rebuild is non-nil, otherwise a drain. The runner
// acknowledges on ack after the replica has quiesced.
type ctl struct {
	target []stream.Time
	attach *attachCmd
	detach *int
	// snap receives each replica's chain snapshot at index idx; the slots
	// are disjoint per runner and the driver reads them only after every
	// acknowledgement, so the shared backing array is race-free.
	snap []*plan.ChainCheckpoint
	// rebuild hands each runner its redistributed checkpoint at index idx;
	// the runner rebuilds its chain from it (see rebalance.go). Unlike
	// other barrier commands an error here fails the replica: ownership
	// has already been re-cut on the driver, so a replica that kept its
	// old state is corrupt.
	rebuild []*plan.ChainCheckpoint
	ack     chan error
}

// attachCmd fans one query admission out to every replica. The merger and
// its owning worker are built by the driver before the barrier, so runners
// only wire taps — they never touch driver-owned registries.
type attachCmd struct {
	q  plan.Query
	qi int // slot index every replica must produce
	m  *merger
	mw *mergeWorker
}

// taggedBatch routes a result slab to a query merger together with its
// source shard. It carries the merger itself, not an index into a registry:
// admission appends mergers while the workers run, and a pointer in the
// batch is immune to the registry growing under them.
type taggedBatch struct {
	m     *merger
	shard int
	items []stream.Item
}

// outEdge is one replica output stream — a query terminal or, on the
// slice-merge fast path, a slice result port — with its batcher and merge
// destination. Edges are runner-owned (the taps and flushResults run on the
// runner goroutine); each is allocated individually so admission can append
// edges without invalidating the pointers captured by earlier taps.
type outEdge struct {
	b *stream.Batcher
	// Query-level merge path:
	m  *merger
	mw *mergeWorker
	// Slice-merge fast path:
	slice int
	asmIn chan sliceBatch
	// Supervised-restart accounting (Config.Recovery; see recover.go).
	// emitted counts items accepted into the batcher; emittedSnap is the
	// count at the last runner-local snapshot; skip arms the replay
	// suppression after a restart: the tap drops exactly emitted -
	// emittedSnap replayed items, which by chain determinism are the items
	// the merge layer already received. All three are runner-owned.
	emitted     uint64
	emittedSnap uint64
	skip        uint64
}

// replica is one chain copy with its session and feed edge. All fields
// except feed are owned by the runner goroutine once the executor starts;
// res and err are published to the driver by the runner's exit
// (sync.WaitGroup) or a barrier acknowledgement, and the first error is
// additionally published through Executor.noteErr so the driver observes it
// mid-run.
type replica struct {
	idx  int
	sp   *plan.StateSlicePlan
	sess *engine.Session
	feed chan feedMsg
	out  []*outEdge // per-query (or per-slice) result edges, runner-owned
	res  *engine.Result
	err  error

	// meterBase banks the cost meters of sessions retired by a rebalance
	// rebuild, so Finish aggregates the whole run and the per-replica
	// probe counts stay cumulative across a move. Runner-owned mid-run;
	// the runner's exit (runWG) orders it before Finish's read.
	meterBase operator.CostMeter

	// Supervised-restart state (Config.Recovery; see recover.go), all
	// runner-owned: the last runner-local snapshot (nil = the empty initial
	// chain), the replay ring of feed slabs delivered since it, the
	// snapshot cadence counter, and the degraded flag set when a
	// post-restructure snapshot fails (the replica then falls back to
	// fail-fast).
	snapCp    *plan.ChainCheckpoint
	ring      [][]stream.Item
	sinceSnap int
	norecover bool
}

// merger merges one query's per-shard result streams in (Time, Seq) order,
// feeding the query's sink. Each merger is owned by exactly one merge
// worker; mergers owned by different workers run concurrently.
type merger struct {
	mg   *kmerge
	sink *operator.Sink
}

// mergeWorker drains the tagged result batches of a disjoint subset of the
// query mergers on its own goroutine.
type mergeWorker struct {
	in chan taggedBatch
	// mergers owned by this worker. The driver appends here (at New and on
	// every Attach) and the worker goroutine reads the slice only after in
	// is closed — the close orders every prior append before the read, so
	// no lock is needed.
	mergers []*merger
}

// Executor drives P chain replicas and their cross-replica merge layer.
// Driver calls (Feed, Consume, Drain, Migrate, Attach, Detach, Finish) are
// serialized on one driver-gate mutex, and Close may be called from any
// goroutine at any time: it cancels the executor context first — which
// in-flight Consume loops, barrier waits and blocked feed sends observe and
// release the gate on — then runs the ordered teardown under the gate.
type Executor struct {
	cfg  Config
	part Partitioner
	// rpart replaces the hash partitioner under band partitioning
	// (Config.Band); nil otherwise.
	rpart    *RangePartitioner
	workers  int
	replicas []*replica
	// mon is the load monitor feeding adaptive rebalancing (nil for a
	// single shard); driver-owned, updated inline on the feed path.
	mon *loadMonitor
	// sup supervises replica restarts (nil without Config.Recovery);
	// buildFn is the replica factory, retained so a restart before the
	// first snapshot can rebuild from scratch.
	sup     *rec.Supervisor
	buildFn func(shard int) (*plan.StateSlicePlan, error)
	// Query-level merge path (nil under SliceMerge): per-query mergers
	// distributed over the merge workers.
	mergers      []*merger
	mergeWorkers []*mergeWorker
	queryWorker  []int // query -> owning merge worker
	// Slice-level merge path (nil otherwise).
	asm   *assembler
	feedB []stream.Batcher // per-shard feed batchers, driver-owned
	// free recycles consumed result slabs from the merge layer back to the
	// replica taps; a channel-based free list stays allocation-free where
	// a sync.Pool would box every slice header.
	free    chan []stream.Item
	runWG   sync.WaitGroup
	mergeWG sync.WaitGroup

	// failed flags that a replica has published a failure; the per-tuple
	// hot path (Feed) checks only this single atomic load and takes errMu
	// — which guards asyncErr, the first such failure — exclusively on
	// the rare failure branch.
	failed   atomic.Bool
	errMu    sync.Mutex
	asyncErr error

	// ctx bounds the run: derived from Config.Ctx (or Background) with a
	// cancel cause, cancelled by Close with fault.ErrClosed. closing
	// mirrors ctx.Done as one atomic load for the per-tuple hot path
	// (context.AfterFunc sets it, so a parent cancellation is observed
	// without a per-tuple channel poll).
	ctx     context.Context
	cancel  context.CancelCauseFunc
	ctxDone <-chan struct{}
	closing atomic.Bool

	// mu is the driver gate: every driver call and Close's teardown take
	// it, so channel closes can never race channel sends. Fields below it
	// are driver state, only touched with mu held.
	mu         sync.Mutex
	fed        int
	repFed     int
	sincePunct int
	lastTime   stream.Time
	start      time.Time
	finished   bool
	torn       bool
	err        error

	// Close's single-shot rendezvous: the first Close wins closeStarted,
	// runs the teardown on its own goroutine (so a stuck replica cannot
	// wedge Close past its context), stores closeErr, then closes
	// closeDone — the store is ordered before every reader's receive.
	closeStarted atomic.Bool
	closeDone    chan struct{}
	closeErr     error
}

// New builds the replicas via the factory (called once per shard; every
// call must produce an identical chain over the same workload), wires the
// merge layer and starts the shard and assembly goroutines. The executor is
// ready to Feed on return. All configuration errors — including slice-merge
// windows that do not align with the chain's boundaries — surface here,
// before any goroutine starts.
func New(cfg Config, build func(shard int) (*plan.StateSlicePlan, error)) (*Executor, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.PunctEvery == 0 {
		cfg.PunctEvery = DefaultPunctEvery
	}
	if cfg.Name == "" {
		cfg.Name = "state-slice(sharded)"
	}
	if cfg.Recovery != nil && cfg.RestoreFn == nil {
		return nil, errors.New("shard: Recovery requires Config.RestoreFn to rebuild replicas from their checkpoints")
	}
	if cfg.Rebalance != nil {
		if cfg.RestoreFn == nil {
			return nil, errors.New("shard: Rebalance requires Config.RestoreFn to rebuild replicas from redistributed checkpoints")
		}
		p := cfg.Rebalance.withDefaults()
		cfg.Rebalance = &p
	}
	if cfg.Restore != nil {
		if err := validateRestore(cfg, cfg.Restore); err != nil {
			return nil, err
		}
	}
	e := &Executor{
		cfg:       cfg,
		part:      NewPartitioner(cfg.Shards),
		feedB:     make([]stream.Batcher, cfg.Shards),
		start:     time.Now(),
		closeDone: make(chan struct{}),
		buildFn:   build,
	}
	if cfg.Recovery != nil {
		e.sup = rec.NewSupervisor(*cfg.Recovery, cfg.Shards)
	}
	parent := cfg.Ctx
	if parent == nil {
		parent = context.Background()
	}
	e.ctx, e.cancel = context.WithCancelCause(parent)
	e.ctxDone = e.ctx.Done()
	context.AfterFunc(e.ctx, func() { e.closing.Store(true) })
	if cfg.Band != nil {
		rp, err := NewRangePartitioner(cfg.Shards, *cfg.Band)
		if err != nil {
			return nil, err
		}
		e.rpart = &rp
	}
	if cfg.Shards > 1 {
		e.mon = newLoadMonitor(cfg.Shards, cfg.Band)
	}
	if cfg.Restore != nil {
		// Re-install the snapshot's learned ownership cuts: the restored
		// replicas hold state partitioned by them, so resuming on the
		// fixed split would route keys onto shards that do not own their
		// state.
		if cuts := cfg.Restore.BandCuts; cuts != nil && (e.rpart == nil || !e.rpart.SetCuts(cuts)) {
			return nil, fmt.Errorf("shard: restore: checkpoint band cuts %v are invalid for this partitioning", cuts)
		}
		if cuts := cfg.Restore.HashCuts; cuts != nil && (e.rpart != nil || !e.part.SetCuts(cuts)) {
			return nil, fmt.Errorf("shard: restore: checkpoint hash cuts %v are invalid for this partitioning", cuts)
		}
	}
	queries := -1
	for i := 0; i < cfg.Shards; i++ {
		var sp *plan.StateSlicePlan
		var err error
		if cfg.Restore != nil {
			sp, err = cfg.RestoreFn(i, cfg.Restore.Replicas[i])
		} else {
			sp, err = build(i)
		}
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if n := len(sp.Plan.Sinks); queries == -1 {
			queries = n
		} else if n != queries {
			return nil, fmt.Errorf("shard: replica %d has %d queries, replica 0 has %d", i, n, queries)
		}
		sess, err := engine.NewSession(sp.Plan, engine.Config{
			BatchSize:   cfg.BatchSize,
			SampleEvery: cfg.SampleEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r := &replica{
			idx:  i,
			sp:   sp,
			sess: sess,
			feed: make(chan feedMsg, feedBuf),
		}
		if cfg.Restore != nil {
			snap := cfg.Restore.Replicas[i]
			if err := sess.SeedFrontier(snap.Fed, snap.LastTime); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			// The restore point doubles as the replica's first runner-local
			// snapshot, so an early crash restores from it instead of
			// replaying the whole pre-checkpoint stream it never saw.
			r.snapCp = snap
		}
		e.replicas = append(e.replicas, r)
	}
	if cfg.Restore != nil {
		e.fed = cfg.Restore.Fed
		e.repFed = cfg.Restore.RepFed
		e.sincePunct = cfg.Restore.SincePunct
		e.lastTime = cfg.Restore.LastTime
	}
	if cfg.SliceMerge {
		if len(cfg.Windows) != queries {
			return nil, fmt.Errorf("shard: SliceMerge needs the %d query windows, got %d", queries, len(cfg.Windows))
		}
		if err := ValidateSliceMergeWindows(e.replicas[0].sp.Ends(), cfg.Windows); err != nil {
			return nil, err
		}
	}
	workers, err := cfg.resolveWorkers(queries)
	if err != nil {
		return nil, err
	}
	e.workers = workers

	// Sized past the slabs that can be in flight at once (every merge
	// channel, every batcher, and the fast path's cross-worker forward
	// edges), so recycling rarely misses.
	e.free = make(chan []stream.Item, (chanBuf+2)*queries+4*chanBuf*workers)

	if cfg.SliceMerge {
		e.asm = newAssembler(cfg.Shards, workers, e.replicas[0].sp.Ends(), cfg.Windows, e.free, cfg, e.noteErr)
	} else {
		e.queryWorker = make([]int, 0, queries)
		e.mergeWorkers = make([]*mergeWorker, workers)
		for w := range e.mergeWorkers {
			e.mergeWorkers[w] = &mergeWorker{in: make(chan taggedBatch, chanBuf)}
		}
		for qi := 0; qi < queries; qi++ {
			w := queryOwner(qi, workers, queries)
			e.registerMerger(e.newMerger(qi, fmt.Sprintf("Q%d", qi+1)), w)
		}
	}

	// Tap every replica's output streams — results and punctuations —
	// into the runner-owned batchers, shipping every full slab to the
	// merge layer immediately so a result-heavy drain never grows a batch
	// past the slab size (the send may block on merge backpressure, which
	// is the intended flow control). Punctuations are demoted one tick to
	// a strict frontier (see the package docs); MaxTime passes through so
	// Finish still flushes the merge.
	//
	// On the slice-merge path the taps sit on the raw slice result ports
	// and route each slice to the assembly worker owning its merge; on
	// the query-level path, union-terminated queries hand their output
	// port to the tap outright (the replica's relay sink hop disappears;
	// migrations rewire union inputs, never the output), while
	// direct-wired terminals keep their sink in tap-only mode because the
	// terminal port may be shared between queries.
	//
	// Under band partitioning every tap additionally applies the owner
	// rule before batching: a joined result survives only on the shard
	// owning the probing male's key, so the boundary duplicates that
	// replication creates never reach the merge (band.go). Punctuations
	// always pass — duplicate-male punctuation only advances frontiers.
	for _, r := range e.replicas {
		if cfg.SliceMerge {
			for si, j := range r.sp.Slices() {
				o := &outEdge{b: new(stream.Batcher), slice: si, asmIn: e.asm.workers[e.asm.sliceOwner[si]].in}
				r.out = append(r.out, o)
				e.attachSliceTap(r, j, o)
			}
			continue
		}
		for qi, sink := range r.sp.Plan.Sinks {
			r.out = append(r.out, e.tapQuery(r, r.sp.QueryUnion(qi), sink, e.mergers[qi], e.mergeWorkers[e.queryWorker[qi]]))
		}
	}

	for _, r := range e.replicas {
		e.runWG.Add(1)
		go e.runReplica(r)
	}
	if e.asm != nil {
		e.asm.start()
	}
	for _, w := range e.mergeWorkers {
		e.mergeWG.Add(1)
		go e.runMergeWorker(w)
	}
	return e, nil
}

// foreignFn returns the band owner-rule predicate for a shard — a result
// survives only on the shard owning the probing male's key — or nil under
// hash partitioning, where no tuple is ever replicated.
func (e *Executor) foreignFn(shardIdx int) func(*stream.Tuple) bool {
	if e.rpart == nil {
		return nil
	}
	rp := e.rpart
	return func(t *stream.Tuple) bool { return rp.Owner(bandOwnerKey(t)) != shardIdx }
}

// tapQuery wires one query terminal on replica r into the merge layer and
// returns its output edge. Union-terminated queries hand their output port
// to the tap outright (the replica's relay sink hop disappears; migrations
// and admissions rewire union inputs, never the output), while direct-wired
// terminals keep their sink in tap-only mode because the terminal port may
// be shared between queries. Punctuations are demoted one tick to a strict
// frontier (MaxTime passes so Finish — and a detach flush — still complete
// the merge); under band partitioning the owner rule drops boundary
// duplicates before batching.
func (e *Executor) tapQuery(r *replica, u *operator.Union, sink *operator.Sink, m *merger, mw *mergeWorker) *outEdge {
	o := &outEdge{b: new(stream.Batcher), m: m, mw: mw}
	e.attachQueryTap(r, u, sink, o)
	return o
}

// attachQueryTap (re)wires one query output of replica r's current chain
// into edge o. Without supervision the tap is the plain two-branch closure
// the hot path has always run; with supervision it additionally maintains
// the edge's emitted count and drops the armed replay-suppression prefix
// after a restart (see recover.go).
func (e *Executor) attachQueryTap(r *replica, u *operator.Union, sink *operator.Sink, o *outEdge) {
	shardIdx := r.idx
	foreign := e.foreignFn(shardIdx)
	var tap func(stream.Item)
	if e.sup == nil {
		tap = func(it stream.Item) {
			if it.IsPunct() {
				if it.Punct < stream.MaxTime {
					it.Punct--
				}
			} else if foreign != nil && foreign(it.Tuple) {
				return
			}
			o.b.Add(it)
			if o.b.Full() {
				o.mw.in <- taggedBatch{m: o.m, shard: shardIdx, items: o.b.TakeWith(e.getSlab())}
			}
		}
	} else {
		tap = func(it stream.Item) {
			if it.IsPunct() {
				if it.Punct < stream.MaxTime {
					it.Punct--
				}
			} else if foreign != nil && foreign(it.Tuple) {
				return
			}
			if o.skip > 0 {
				o.skip--
				return
			}
			o.emitted++
			o.b.Add(it)
			if o.b.Full() {
				o.mw.in <- taggedBatch{m: o.m, shard: shardIdx, items: o.b.TakeWith(e.getSlab())}
			}
		}
	}
	if u != nil {
		u.Out().DetachAll()
		u.Out().AttachFunc(tap)
	} else {
		sink.OnItem(tap).TapOnly()
	}
}

// attachSliceTap (re)wires one raw slice result port of replica r's current
// chain into edge o — the slice-merge counterpart of attachQueryTap, with
// the same plain/counting split.
func (e *Executor) attachSliceTap(r *replica, j *operator.SlicedBinaryJoin, o *outEdge) {
	shardIdx := r.idx
	foreign := e.foreignFn(shardIdx)
	if e.sup == nil {
		j.Result().AttachFunc(func(it stream.Item) {
			if it.IsPunct() {
				if it.Punct < stream.MaxTime {
					it.Punct--
				}
			} else if foreign != nil && foreign(it.Tuple) {
				return
			}
			o.b.Add(it)
			if o.b.Full() {
				o.asmIn <- sliceBatch{slice: o.slice, shard: shardIdx, items: o.b.TakeWith(e.getSlab())}
			}
		})
		return
	}
	j.Result().AttachFunc(func(it stream.Item) {
		if it.IsPunct() {
			if it.Punct < stream.MaxTime {
				it.Punct--
			}
		} else if foreign != nil && foreign(it.Tuple) {
			return
		}
		if o.skip > 0 {
			o.skip--
			return
		}
		o.emitted++
		o.b.Add(it)
		if o.b.Full() {
			o.asmIn <- sliceBatch{slice: o.slice, shard: shardIdx, items: o.b.TakeWith(e.getSlab())}
		}
	})
}

// newMerger builds one query merger — sink, k-way merge, collection and
// result-handler wiring — for query slot qi.
func (e *Executor) newMerger(qi int, name string) *merger {
	m := &merger{sink: operator.NewDirectSink(name)}
	m.mg = newKmerge(e.cfg.Shards, m.sink.AcceptRun, e.free)
	if e.cfg.Collect {
		m.sink.Collecting()
	}
	if h := e.cfg.OnResult; h != nil {
		slot := qi
		m.sink.OnResult(func(t *stream.Tuple) { h(slot, t) })
	}
	return m
}

// registerMerger records a merger in the driver-owned registries and hands
// it to worker w. Driver-only (New and Attach); the worker goroutine reads
// its merger list only after its channel closes.
func (e *Executor) registerMerger(m *merger, w int) {
	e.mergers = append(e.mergers, m)
	e.queryWorker = append(e.queryWorker, w)
	e.mergeWorkers[w].mergers = append(e.mergeWorkers[w].mergers, m)
}

// Shards returns the replica count.
func (e *Executor) Shards() int { return e.cfg.Shards }

// ReplicatedFeeds returns the total number of per-replica tuple deliveries
// so far: equal to the fed tuple count under hash partitioning, and inflated
// by the boundary replication factor (roughly 1 + 2*Width/RangeWidth for
// uniform keys) under band partitioning. The bench harness records it so
// feed-volume inflation is visible next to the probe-comparison savings.
func (e *Executor) ReplicatedFeeds() int { return e.repFed }

// Workers returns the resolved assembly-worker pool size.
func (e *Executor) Workers() int { return e.workers }

// noteErr publishes the first replica failure so the driver observes it on
// the next Feed, Consume, Migrate or Finish call instead of the run
// silently looking clean.
func (e *Executor) noteErr(err error) {
	e.errMu.Lock()
	if e.asyncErr == nil {
		e.asyncErr = err
	}
	e.errMu.Unlock()
	e.failed.Store(true)
}

// pendingErr returns the first published replica failure, if any. The
// no-failure fast path is a single atomic load, so checking it per fed
// tuple costs the hot path nothing.
func (e *Executor) pendingErr() error {
	if !e.failed.Load() {
		return nil
	}
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.asyncErr
}

// runReplica is the shard goroutine: it feeds its session from the slab
// channel, applies barrier commands, and finishes the session when the
// channel closes. The first error — a session error or a contained panic —
// fails the replica permanently (later slabs are drained but not fed, so no
// sender ever blocks on a dead consumer) and is published to the driver.
func (e *Executor) runReplica(r *replica) {
	defer e.runWG.Done()
	for msg := range r.feed {
		if msg.ctl != nil {
			msg.ctl.ack <- e.applyCtl(r, msg.ctl)
			continue
		}
		// The closing check makes mid-stream teardown event-driven: once
		// Close (or a context cancellation, or a fail-fast abort) lands,
		// buffered slabs are drained but not fed — an aborted run never
		// reports results as complete, so feeding up to (feedBuf+1)*feedSlab
		// inputs through the whole chain would only buy teardown latency.
		if r.err == nil && !e.closing.Load() {
			if e.recoveryArmed(r) {
				e.recordSlab(r, msg.items)
			}
			if err := e.feedReplica(r, msg.items); err != nil {
				if !e.recoverReplica(r, err) {
					r.err = err
					e.noteErr(err)
				}
			} else {
				e.maybeSnapshot(r)
			}
		}
		e.flushResults(r)
	}
	if r.err == nil {
		if e.closing.Load() {
			// Aborted run: mark the session closed so Finish skips the
			// final MaxTime flush — the merge layer is being torn down,
			// not completed, and abort latency should not pay for a full
			// result flush. The ErrClosed echo on the replica's Result is
			// the abort itself, not a fault, so it is not published.
			r.sess.Close(context.Background())
		}
		res, err := e.finishReplica(r)
		r.res = res
		if err != nil && !errors.Is(err, fault.ErrClosed) {
			r.err = err
			e.noteErr(err)
		}
	}
	e.flushResults(r)
}

// feedReplica feeds one slab into the replica's session, containing a panic
// — an injected hook, or a failure the engine's own containment cannot see
// — into a classified replica error instead of crashing the process.
func (e *Executor) feedReplica(r *replica, items []stream.Item) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("shard: %w", fault.Capture("replica runner", r.idx, v))
		}
	}()
	for _, it := range items {
		if it.IsPunct() {
			err = r.sess.FeedPunct(it.Punct)
		} else {
			if err = fault.Fire(fault.ReplicaFeed, r.idx); err == nil {
				err = r.sess.Feed(it.Tuple)
			}
		}
		if err != nil {
			return fmt.Errorf("shard %d: %w", r.idx, err)
		}
	}
	return nil
}

// finishReplica finishes the replica's session inside a containment
// boundary: the final flush runs the whole operator graph and every sink
// callback one last time, and a panic there must fail the replica, not the
// process. A non-nil Result.Err (the engine's own contained failure) is
// surfaced the same way.
func (e *Executor) finishReplica(r *replica) (res *engine.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, fmt.Errorf("shard: %w", fault.Capture("replica finish", r.idx, v))
		}
	}()
	res = r.sess.Finish()
	if res.Err != nil {
		return res, fmt.Errorf("shard %d: %w", r.idx, res.Err)
	}
	return res, nil
}

// applyCtl executes one barrier command on the runner goroutine: all slabs
// sent before it have been fed, so a migration or admission happens at the
// same global stream position on every replica. Plain errors (validation
// rejections, which fail identically on every replica before any mutation)
// are returned to the driver without failing the replica, as before; a
// contained panic, by contrast, may have left the chain half-restructured,
// so it fails the replica permanently and is published.
func (e *Executor) applyCtl(r *replica, c *ctl) (err error) {
	if r.err != nil {
		return r.err
	}
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("shard: %w", fault.Capture("replica barrier", r.idx, v))
			r.err = err
			e.noteErr(err)
		}
		e.flushResults(r)
	}()
	if err := fault.Fire(fault.BarrierApply, r.idx); err != nil {
		return fmt.Errorf("shard %d: %w", r.idx, err)
	}
	switch {
	case c.attach != nil:
		err = e.applyAttach(r, c.attach)
	case c.detach != nil:
		err = r.sp.Detach(r.sess, *c.detach)
	case c.target != nil:
		if e.asm != nil {
			err = errors.New("shard: the slice-merge fast path does not support migration; build the executor without SliceMerge")
		} else {
			err = r.sp.MigrateTo(r.sess, c.target)
		}
	case c.rebuild != nil:
		if err = e.applyRebuild(r, c.rebuild[r.idx]); err != nil {
			// Ownership was re-cut on the driver before this barrier; a
			// replica that could not adopt its share is corrupt, so the
			// error is replica-fatal (unlike other barrier rejections).
			r.err = err
			e.noteErr(err)
		}
	case c.snap != nil:
		var cp *plan.ChainCheckpoint
		if cp, err = r.sp.Checkpoint(r.sess); err == nil {
			c.snap[r.idx] = cp
			if e.recoveryArmed(r) {
				// A driver checkpoint is a fresh restart point for free:
				// adopt it so the replay ring resets here too.
				e.adoptSnapshot(r, cp)
			}
		}
	default:
		r.sess.Drain()
		err = r.sess.Err()
	}
	if err == nil && (c.attach != nil || c.detach != nil || c.target != nil) {
		// The chain's shape changed; the old snapshot and ring cannot
		// reproduce the restructure, so refresh the restart point (or
		// degrade this replica to fail-fast if that is impossible).
		e.refreshSnapshot(r)
	}
	return err
}

// applyAttach admits the query on one replica and taps its fresh union into
// the merger the driver built for it. Runs on the runner goroutine, so the
// append to the runner-owned edge list is race-free.
func (e *Executor) applyAttach(r *replica, c *attachCmd) error {
	qi, err := r.sp.Attach(r.sess, c.q)
	if err != nil {
		return fmt.Errorf("shard %d: %w", r.idx, err)
	}
	if qi != c.qi {
		return fmt.Errorf("shard %d: attach produced query slot %d, expected %d (replicas diverged)", r.idx, qi, c.qi)
	}
	r.out = append(r.out, e.tapQuery(r, r.sp.QueryUnion(qi), r.sp.Sinks()[qi], c.m, c.mw))
	return nil
}

// flushResults ships every non-empty output slab to the merge layer
// (the merge workers, or the assembly workers on the fast path). Empty
// batchers are skipped before drawing a spare from the free list —
// TakeWith discards the spare when there is nothing to seal, which would
// bleed a recycled slab per idle output per flush.
func (e *Executor) flushResults(r *replica) {
	for _, o := range r.out {
		if o.b.Len() == 0 {
			continue
		}
		items := o.b.TakeWith(e.getSlab())
		if items == nil {
			continue
		}
		if o.asmIn != nil {
			o.asmIn <- sliceBatch{slice: o.slice, shard: r.idx, items: items}
		} else {
			o.mw.in <- taggedBatch{m: o.m, shard: r.idx, items: items}
		}
	}
}

// getSlab pops a recycled slab from the free list, or allocates a
// full-capacity one when none is available (an empty spare would make the
// next batch regrow through every append doubling).
func (e *Executor) getSlab() []stream.Item { return getSlab(e.free) }

// getSlab pops a recycled slab from the free list, or allocates one.
func getSlab(free chan []stream.Item) []stream.Item {
	select {
	case s := <-free:
		return s
	default:
		return make([]stream.Item, 0, stream.SlabCap)
	}
}

// recycleSlab clears a fully-consumed slab and offers it back to the free
// list, dropping it when the list is full.
func recycleSlab(free chan []stream.Item, slab []stream.Item) {
	clear(slab)
	select {
	case free <- slab[:0]:
	default:
	}
}

// runMergeWorker drains one worker's share of the query mergers: push each
// slab into its query's per-shard union input and let the merge emit
// everything the punctuation frontiers allow. Mergers of other workers run
// concurrently; a merger itself is only ever touched by its owning worker.
// A contained panic (a merge bug, or a user result handler firing inside
// step) fails the worker: it publishes the fault, then keeps draining and
// recycling incoming slabs so no replica tap ever blocks on it, and skips
// the final merge steps — its mergers' output is already corrupt.
func (e *Executor) runMergeWorker(w *mergeWorker) {
	defer e.mergeWG.Done()
	failed := false
	for tb := range w.in {
		if failed {
			recycleSlab(e.free, tb.items)
			continue
		}
		if err := e.applyMerge(tb); err != nil {
			failed = true
			e.noteErr(err)
		}
	}
	if failed {
		return
	}
	// Safe: the channel close orders every driver append to w.mergers
	// before this read.
	for _, m := range w.mergers {
		m.mg.step()
	}
}

// applyMerge folds one tagged batch into its merger inside the merge
// worker's containment boundary. Sink callbacks (Collect, OnResult) fire
// inside step, so a panicking user handler lands here too.
func (e *Executor) applyMerge(tb taggedBatch) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("shard: %w", fault.Capture("merge worker", tb.shard, v))
		}
	}()
	if err := fault.Fire(fault.MergeApply, tb.shard); err != nil {
		return fmt.Errorf("shard: merge: %w", err)
	}
	tb.m.mg.push(tb.shard, tb.items)
	tb.m.mg.step()
	return nil
}

// usable rejects a driver call on a finished, aborted or failed executor,
// with mu held. The healthy fast path costs two atomic loads (closing,
// failed) plus one non-blocking ctxDone poll per call — the poll makes an
// external cancellation deterministic (the AfterFunc flag alone could lose
// the race against a fast feed loop draining its source). A replica failure
// surfacing here for the first time aborts the run (failLocked), and an
// external cancellation surfacing here unwinds the goroutine tree in place,
// so a session abandoned right after either fail-fast error leaks nothing.
// Close-initiated teardown stays with Close's own goroutine — the surfacing
// call only reports the abort.
func (e *Executor) usable(op string) error {
	if e.finished {
		return fmt.Errorf("shard: %s: %w", op, fault.ErrSessionFinished)
	}
	aborted := e.closing.Load()
	if !aborted {
		select {
		case <-e.ctxDone:
			e.closing.Store(true)
			aborted = true
		default:
		}
	}
	if aborted {
		if e.err != nil {
			return e.err
		}
		if !e.closeStarted.Load() {
			e.teardownLocked()
		}
		return fmt.Errorf("shard: %s: %w", op, e.abortCause())
	}
	if e.err == nil {
		if err := e.pendingErr(); err != nil {
			e.failLocked(err)
		}
	}
	return e.err
}

// failLocked records the first published failure as the driver's sticky
// error and aborts the run in place: the context is cancelled with the
// failure as its cause and the goroutine tree is torn down, so a driver that
// abandons the session right after the fail-fast error leaks nothing. mu
// held; the surfacing call (Feed, Consume, Migrate, …) pays the teardown
// wait once, and every later call returns the sticky error immediately.
func (e *Executor) failLocked(err error) {
	if e.err == nil {
		e.err = err
	}
	e.cancel(err)
	e.closing.Store(true)
	e.teardownLocked()
}

// abortCause reports why the executor was aborted: fault.ErrClosed after
// Close, the context's cancellation cause otherwise.
func (e *Executor) abortCause() error {
	if err := context.Cause(e.ctx); err != nil {
		return err
	}
	return fault.ErrClosed
}

// Feed routes one source tuple to its key's shard — or, under band
// partitioning, to every shard within the band width of its key. Tuples
// must arrive in global timestamp order. A replica failure published since
// the last call surfaces here (and sticks), so a failed run cannot keep
// consuming input silently.
func (e *Executor) Feed(t *stream.Tuple) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.feed(t)
}

// feed is the Feed body, with mu held; Consume calls it directly so the
// feed loop takes the driver gate once per source, not once per tuple.
func (e *Executor) feed(t *stream.Tuple) error {
	if err := e.usable("Feed"); err != nil {
		return err
	}
	if t.Time < e.lastTime {
		return fmt.Errorf("shard: tuple %s after %s: %w", t, e.lastTime, fault.ErrOutOfOrder)
	}
	e.lastTime = t.Time
	if e.rpart != nil {
		lo, hi := e.rpart.Replicas(t.Key)
		// Each replica beyond the first gets its own copy of the tuple:
		// the chain's lineage marker writes Tuple.Level/CondMask in
		// place, so sharing one instance across replica goroutines would
		// race. The snapshot is taken before *any* delivery — once shard
		// lo holds the original, even reading t from this goroutine races
		// with its marker. Copies are value-identical, so every
		// downstream comparison (owner rule, merge order, rendered
		// results) is unaffected.
		var v stream.Tuple
		if hi > lo {
			v = *t
		}
		for s := lo; s <= hi; s++ {
			tc := t
			if s > lo {
				c := v
				tc = &c
			}
			b := &e.feedB[s]
			b.Add(stream.TupleItem(tc))
			if b.Len() >= feedSlab {
				e.send(s)
			}
		}
		e.repFed += hi - lo + 1
		if e.mon != nil {
			e.mon.observe(t.Key, lo, hi)
		}
	} else {
		s := e.part.Shard(t.Key)
		b := &e.feedB[s]
		b.Add(stream.TupleItem(t))
		if b.Len() >= feedSlab {
			e.send(s)
		}
		e.repFed++
		if e.mon != nil {
			e.mon.observe(t.Key, s, s)
		}
	}
	e.fed++
	e.sincePunct++
	if e.cfg.PunctEvery > 0 && e.sincePunct >= e.cfg.PunctEvery && t.Time > 0 {
		e.sincePunct = 0
		e.broadcast(t.Time - 1)
	}
	return e.maybeAutoRebalance()
}

// Consume feeds the executor from a source until it is exhausted, holding
// the driver gate for the whole source. An abort (Close, context done)
// surfaces between tuples through the per-tuple closing check in feed — at
// which point Consume returns and releases the gate, letting Close's
// teardown proceed. A panicking Source is contained into a sticky driver
// error instead of crashing the process.
func (e *Executor) Consume(src stream.Source) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		t, err := e.pull(src)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := e.feed(t); err != nil {
			return err
		}
	}
}

// pull draws one tuple from the source, containing a panicking Source — a
// user-callback boundary — into a sticky driver failure. mu held.
func (e *Executor) pull(src stream.Source) (t *stream.Tuple, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("shard: %w", fault.Capture("source pull", -1, v))
			e.failLocked(err)
			err = e.err
		}
	}()
	t, err = src.Next()
	if err != nil && err != io.EOF {
		err = fmt.Errorf("shard: source: %w", err)
	}
	return t, err
}

// send flushes shard s's pending feed slab. The send releases when the
// executor context is cancelled — a stuck replica must not wedge the driver
// (or Close's teardown) forever; the dropped slab is irrelevant, because an
// aborted run never reports results as complete.
func (e *Executor) send(s int) {
	if items := e.feedB[s].Take(); items != nil {
		select {
		case e.replicas[s].feed <- feedMsg{items: items}:
		case <-e.ctxDone:
		}
	}
}

// broadcast appends a punctuation to every shard's feed and flushes, so
// even shards that received no tuples learn the global frontier. The
// timestamp is strictly below every future arrival (the last fed time minus
// one tick), keeping the merge's frontiers safe under timestamp ties.
func (e *Executor) broadcast(ts stream.Time) {
	for s := range e.replicas {
		e.feedB[s].Add(stream.PunctItem(ts))
		e.send(s)
	}
}

// barrier flushes all pending slabs, issues the command to every shard and
// waits for every acknowledgement, returning the first error. Both the
// command sends and the acknowledgement waits abandon when the executor
// context is cancelled — that is what makes Close safe to call while an
// Attach or Migrate is blocked here. An abandoned barrier leaves the
// replicas at possibly divergent stream positions (some applied the
// command, some never received it), so it fails the driver permanently; the
// buffered ack channel absorbs every late acknowledgement, so mid-barrier
// runners complete and exit normally during teardown.
func (e *Executor) barrier(c ctl) error {
	acks := make(chan error, len(e.replicas))
	sent := 0
	for i := range e.replicas {
		e.send(i)
		ci := c
		ci.ack = acks
		select {
		case e.replicas[i].feed <- feedMsg{ctl: &ci}:
			sent++
		case <-e.ctxDone:
			return e.abandonBarrier()
		}
	}
	var first error
	for ; sent > 0; sent-- {
		select {
		case err := <-acks:
			if err != nil && first == nil {
				first = err
			}
		case <-e.ctxDone:
			return e.abandonBarrier()
		}
	}
	return first
}

// abandonBarrier records an aborted barrier as a sticky driver error. mu
// held (barrier is only called from driver methods).
func (e *Executor) abandonBarrier() error {
	err := fmt.Errorf("shard: barrier abandoned: %w", e.abortCause())
	if e.err == nil {
		e.err = err
	}
	return err
}

// Drain flushes the pending feed slabs and blocks until every replica has
// quiesced. Results may still be in flight toward the merge layer
// afterwards; only Finish synchronizes it.
func (e *Executor) Drain() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.finished || e.closing.Load() {
		return
	}
	if err := e.barrier(ctl{}); err != nil && e.err == nil {
		e.err = err
	}
}

// Migrate re-slices every replica to the target boundary layout at the
// current stream position (all tuples fed so far are processed first; no
// tuple overtakes the migration). It returns the chain's new boundary
// layout.
func (e *Executor) Migrate(to []stream.Time) ([]stream.Time, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usable("Migrate"); err != nil {
		return nil, err
	}
	if err := e.barrier(ctl{target: to}); err != nil {
		return nil, err
	}
	// Safe: the barrier acknowledgements order every replica mutation
	// before this read.
	return e.replicas[0].sp.Ends(), nil
}

// Attach admits one query on every replica at the current stream position —
// all tuples fed so far are processed first; no later tuple overtakes the
// admission on any shard — and wires a fresh cross-replica merger for it.
// It returns the query's slot index (stable for the executor's lifetime)
// and the chain's boundary layout after the admission, which may have
// gained one boundary from the slice split. The merge-worker pool is fixed
// at construction; the new merger joins an existing worker.
func (e *Executor) Attach(q plan.Query) (int, []stream.Time, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usable("Attach"); err != nil {
		return 0, nil, err
	}
	if e.asm != nil {
		return 0, nil, errors.New("shard: the slice-merge fast path has a fixed query set; build the plan with WithMigratable to admit queries live")
	}
	qi := len(e.mergers)
	name := q.Name
	if name == "" {
		name = fmt.Sprintf("Q%d", qi+1)
	}
	m := e.newMerger(qi, name)
	w := qi % e.workers
	if err := e.barrier(ctl{attach: &attachCmd{q: q, qi: qi, m: m, mw: e.mergeWorkers[w]}}); err != nil {
		return 0, nil, err
	}
	e.registerMerger(m, w)
	return qi, e.replicas[0].sp.Ends(), nil
}

// Detach unsubscribes query slot qi on every replica at the current stream
// position. Each replica's union flushes its residue followed by a MaxTime
// punctuation, which completes the query's cross-replica merge — the
// merger's sink keeps every result delivered before the detach and appears
// as usual in Finish. It returns the chain's boundary layout after the
// detach, which shrinks when trailing slices lost their last subscriber.
func (e *Executor) Detach(qi int) ([]stream.Time, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usable("Detach"); err != nil {
		return nil, err
	}
	if e.asm != nil {
		return nil, errors.New("shard: the slice-merge fast path has a fixed query set; build the plan with WithMigratable to admit queries live")
	}
	if qi < 0 || qi >= len(e.mergers) {
		return nil, fmt.Errorf("shard: Detach(%d): executor has %d query slots", qi, len(e.mergers))
	}
	if err := e.barrier(ctl{detach: &qi}); err != nil {
		return nil, err
	}
	return e.replicas[0].sp.Ends(), nil
}

// Finish closes the feeds, waits for every replica to flush its final
// punctuation and for the merge layer to drain, and returns the aggregated
// run statistics together with the first replica or driver error — a failed
// replica is an error, never a silently clean-looking run. The memory
// statistics sum the per-replica monitors (replicas sample at their own
// arrival counts, so the sum is an approximation of the instantaneous
// total).
func (e *Executor) Finish() (*engine.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.finished {
		e.finished = true
		e.teardownLocked()
		// Release the executor's registration in the parent context (a
		// no-op when Close or the parent cancelled first — the original
		// cause wins, which the abort classification below relies on).
		e.cancel(fault.ErrSessionFinished)
	}
	res := &engine.Result{
		PlanName:        e.cfg.Name,
		Inputs:          e.fed,
		Wall:            time.Since(e.start),
		VirtualDuration: e.lastTime,
	}
	err := e.err
	if err == nil {
		err = e.pendingErr()
	}
	for _, r := range e.replicas {
		if r.err != nil && err == nil {
			err = r.err
		}
		comp := r.meterBase.Probe
		res.Meter.Add(r.meterBase)
		if r.res != nil {
			comp += r.res.Meter.Probe
			res.Meter.Add(r.res.Meter)
			res.Memory.Samples += r.res.Memory.Samples
			res.Memory.Avg += r.res.Memory.Avg
			res.Memory.Max += r.res.Memory.Max
			res.Memory.Last += r.res.Memory.Last
		}
		res.ReplicaComparisons = append(res.ReplicaComparisons, comp)
	}
	if cause := context.Cause(e.ctx); err == nil && cause != nil && !errors.Is(cause, fault.ErrSessionFinished) {
		// An aborted run must never report its partial statistics as a
		// completed one, even when no replica recorded a fault of its own.
		err = fmt.Errorf("shard: session was aborted before Finish: %w", cause)
	}
	if e.asm != nil {
		e.asm.fold(res)
	}
	for _, m := range e.mergers {
		res.Meter.Add(m.mg.meter)
		res.SinkCounts = append(res.SinkCounts, m.sink.Count())
		res.OrderViolations += m.sink.OrderViolations()
		res.Results = append(res.Results, m.sink.Results())
	}
	if e.sup != nil {
		stats := e.sup.Stats()
		res.Recovery = &stats
	}
	res.Err = err
	return res, err
}

// teardownLocked shuts the goroutine tree down exactly once, with mu held,
// in the one order that cannot deadlock: flush and close every feed channel
// (runners drain them and exit; their result sends keep draining because
// the merge layer is still up), wait for the runners, stop the assembler,
// close the merge-worker channels, wait for the workers. Both Finish and
// Close's teardown goroutine funnel through here — torn makes the second
// caller a no-op, whichever came first.
func (e *Executor) teardownLocked() {
	if e.torn {
		return
	}
	e.torn = true
	for i := range e.replicas {
		e.send(i)
		close(e.replicas[i].feed)
	}
	e.runWG.Wait()
	if e.asm != nil {
		e.asm.stop()
	}
	for _, w := range e.mergeWorkers {
		close(w.in)
	}
	e.mergeWG.Wait()
}

// Close aborts the executor from any goroutine: it cancels the executor
// context — which in-flight Consume loops, barrier waits and blocked feed
// sends observe, releasing the driver gate — then runs the ordered teardown
// under the gate on its own goroutine and waits for it, bounded by ctx. It
// returns the first failure the run recorded (nil for a clean abort), the
// ctx error when the teardown outlives ctx (the teardown keeps unwinding in
// the background — e.g. a replica stuck in a blocking user callback cannot
// be interrupted, only outwaited), and ErrClosed on every later call.
func (e *Executor) Close(ctx context.Context) error {
	if !e.closeStarted.CompareAndSwap(false, true) {
		return fmt.Errorf("shard: Close: %w", fault.ErrClosed)
	}
	e.cancel(fault.ErrClosed)
	e.closing.Store(true)
	go func() {
		e.mu.Lock()
		e.teardownLocked()
		err := e.err
		if err == nil {
			err = e.pendingErr()
		}
		for _, r := range e.replicas {
			if err == nil && r.err != nil {
				err = r.err
			}
		}
		if errors.Is(err, fault.ErrClosed) {
			// The abort's own traces (abandoned barrier, closing checks)
			// are not faults; a clean Close returns nil.
			err = nil
		}
		e.closeErr = err
		e.mu.Unlock()
		close(e.closeDone)
	}()
	select {
	case <-e.closeDone:
		return e.closeErr
	case <-ctx.Done():
		return fmt.Errorf("shard: Close: %w", ctx.Err())
	}
}

// Run is the batch convenience wrapper: consume the source, then Finish.
func (e *Executor) Run(src stream.Source) (*engine.Result, error) {
	if err := e.Consume(src); err != nil {
		e.Finish()
		return nil, err
	}
	return e.Finish()
}
