// Package shard executes a state-slice chain as P independent replicas, one
// per key range, with an order-preserving merge of the replica outputs.
//
// The sliced chain's joins are equijoins on Tuple.Key, so hash-partitioning
// both input streams by key yields fully independent shard states: a pair of
// tuples split across shards can never join, and each replica computes
// exactly the results of its own key range — the same data-parallel move
// that shared-arrangement and multi-way stream-join scale-out systems use to
// spread indexed state across workers. Each replica is the unmodified
// batched sequential engine (internal/engine) driving a full copy of the
// chain on its own goroutine; no operator knows it is sharded.
//
// Ordering is restored by a run-based cross-replica merge (kmerge, the
// shard specialization of the union merge in operator/union.go), driven by
// the punctuation stream each replica's output already carries: a sliced
// join emits punct(t) after the probing male at t, so a replica's output
// frontier advances with every male it processes. Because a second male
// with the *same* timestamp may still be in flight inside a replica, the
// executor demotes forwarded punctuations to t-1, making the frontier
// strict; the final MaxTime punctuation of Finish is forwarded untouched
// and flushes the merge completely. Idle shards — inevitable under key
// skew — are kept moving by periodic input punctuation broadcasts
// (Config.PunctEvery), which the engine forwards through the chain
// (engine.Session.FeedPunct).
//
// Two merge topologies share that machinery. The general path merges each
// query's per-shard output streams (one merger goroutine per query); it
// handles every chain the engine handles — filters, routed slices,
// mid-stream migration. The slice-merge fast path (Config.SliceMerge, for
// unfiltered chains whose every window is a slice boundary) merges each
// *slice's* per-shard result stream instead and assembles the per-query
// answers engine-style in one goroutine: every distinct result crosses
// goroutines once, not once per subscribing query — the margin that lets
// the sharded executor beat the single-core engine even on one core, where
// only the probe-work reduction of smaller per-shard states (and none of
// the parallelism) is available to pay for the merge.
//
// Result streams cross goroutines as item slabs (stream.Batcher) over
// bounded channels, the same amortization the concurrent pipeline uses,
// recycled through a free list so the steady state allocates nothing.
// Within one shard a stream keeps its replica order (FIFO edges end to
// end); across shards results never tie on (Time, Seq) — a joined tuple
// inherits the Seq of its probing male, and every male lives on exactly
// one shard — so the merged sequence is the unique global (Time, Seq)
// order, byte-identical to the sequential engine's output at every shard
// count.
//
// Chain migration (Section 5.3) fans out: Migrate flushes the pending feed
// slabs, then every replica applies the same merge/split program at the
// same global stream position (plan.MigrateTo) before feeding resumes.
package shard

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// DefaultPunctEvery is the default input-tuple period of punctuation
// broadcasts. Broadcasts only bound merge latency and memory on idle
// shards — correctness never depends on the period, because every male a
// shard does receive punctuates its output anyway and Finish flushes with
// MaxTime.
const DefaultPunctEvery = 256

// chanBuf is the buffer size, in slabs, of the merge channels; it only
// affects throughput, never correctness.
const chanBuf = 32

// feedSlab and feedBuf deliberately keep the feed edge fine-grained: one
// input tuple amplifies into tens of result items per query, so a shard
// running a large input lead floods the merge unions with items their
// frontiers cannot release until the lagging shards catch up (the merge
// channel itself cannot exert that backpressure — its consumer absorbs
// batches unconditionally into the union queues). Capping a runner's lead
// at (feedBuf+1)*feedSlab inputs bounds every merger queue to a small
// multiple of the result amplification instead of the whole stream.
const (
	feedSlab = 16
	feedBuf  = 4
)

// Config parameterises an Executor.
type Config struct {
	// Shards is the replica count P (>= 1). P = 1 still runs the full
	// sharded machinery — feed channels, merge layer — and measures its
	// overhead against the plain engine.
	Shards int
	// BatchSize is the engine micro-batch size K applied to every
	// replica's session (see engine.Config.BatchSize).
	BatchSize int
	// PunctEvery is the input-tuple period of punctuation broadcasts to
	// all shards; 0 selects DefaultPunctEvery, negative disables
	// broadcasts (the final punctuation still flushes everything).
	PunctEvery int
	// SampleEvery is the per-replica monitor sampling period (see
	// engine.Config.SampleEvery).
	SampleEvery int
	// Collect makes the per-query merge sinks retain result tuples.
	Collect bool
	// OnResult, when non-nil, receives every result of query qi in that
	// query's delivery order, from the query's merger goroutine
	// (callbacks for different queries run concurrently; on the
	// slice-merge path all queries share the assembler goroutine).
	OnResult func(qi int, t *stream.Tuple)
	// SliceMerge selects the slice-level merge fast path: replicas are
	// built with plan.StateSliceConfig.RawSliceResults, each slice's
	// result stream crosses goroutines once, and one assembler goroutine
	// merges the slices and assembles the per-query answers with
	// engine-style unions. Requires Windows and raw replicas; the
	// coordinator (the public build layer) selects it for eligible plans
	// (unfiltered, every window a slice boundary, not migratable).
	SliceMerge bool
	// Windows are the query windows (ascending), required by SliceMerge
	// to derive each query's contributing slices.
	Windows []stream.Time
	// Name labels the run's Result.
	Name string
}

// feedMsg is one unit on a shard's feed channel: either an item slab or a
// control barrier.
type feedMsg struct {
	items []stream.Item
	ctl   *ctl
}

// ctl is a barrier command: a migration when target is non-nil, otherwise a
// drain. The runner acknowledges on ack after the replica has quiesced.
type ctl struct {
	target []stream.Time
	ack    chan error
}

// taggedBatch routes a result slab to a merger together with its source
// shard index.
type taggedBatch struct {
	shard int
	items []stream.Item
}

// replica is one chain copy with its session and feed edge. All fields
// except feed are owned by the runner goroutine once the executor starts;
// res and err are published to the driver by the runner's exit
// (sync.WaitGroup) or a barrier acknowledgement.
type replica struct {
	idx  int
	sp   *plan.StateSlicePlan
	sess *engine.Session
	feed chan feedMsg
	out  []stream.Batcher // per-query (or per-slice) result batchers, runner-owned
	res  *engine.Result
	err  error
}

// merger merges one query's per-shard result streams in (Time, Seq) order
// on its own goroutine, feeding the query's sink.
type merger struct {
	in   chan taggedBatch
	mg   *kmerge
	sink *operator.Sink
}

// Executor drives P chain replicas and their per-query merge. It is
// single-driver: Feed, Consume, Drain, Migrate and Finish must be called
// from one goroutine, like an engine session.
type Executor struct {
	cfg      Config
	part     Partitioner
	replicas []*replica
	mergers  []*merger        // query-level merge path (nil under SliceMerge)
	asm      *assembler       // slice-level merge path (nil otherwise)
	feedB    []stream.Batcher // per-shard feed batchers, driver-owned
	// free recycles consumed result slabs from the mergers back to the
	// replica taps; a channel-based free list stays allocation-free where
	// a sync.Pool would box every slice header.
	free    chan []stream.Item
	runWG   sync.WaitGroup
	mergeWG sync.WaitGroup

	fed        int
	sincePunct int
	lastTime   stream.Time
	start      time.Time
	finished   bool
	err        error
}

// New builds the replicas via the factory (called once per shard; every
// call must produce an identical chain over the same workload), wires the
// merge layer and starts the shard and merger goroutines. The executor is
// ready to Feed on return.
func New(cfg Config, build func(shard int) (*plan.StateSlicePlan, error)) (*Executor, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.PunctEvery == 0 {
		cfg.PunctEvery = DefaultPunctEvery
	}
	if cfg.Name == "" {
		cfg.Name = "state-slice(sharded)"
	}
	e := &Executor{
		cfg:   cfg,
		part:  NewPartitioner(cfg.Shards),
		feedB: make([]stream.Batcher, cfg.Shards),
		start: time.Now(),
	}
	queries := -1
	for i := 0; i < cfg.Shards; i++ {
		sp, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if n := len(sp.Plan.Sinks); queries == -1 {
			queries = n
		} else if n != queries {
			return nil, fmt.Errorf("shard: replica %d has %d queries, replica 0 has %d", i, n, queries)
		}
		sess, err := engine.NewSession(sp.Plan, engine.Config{
			BatchSize:   cfg.BatchSize,
			SampleEvery: cfg.SampleEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		outs := queries
		if cfg.SliceMerge {
			outs = len(sp.Ends())
		}
		r := &replica{
			idx:  i,
			sp:   sp,
			sess: sess,
			feed: make(chan feedMsg, feedBuf),
			out:  make([]stream.Batcher, outs),
		}
		e.replicas = append(e.replicas, r)
	}
	if cfg.SliceMerge && len(cfg.Windows) != queries {
		return nil, fmt.Errorf("shard: SliceMerge needs the %d query windows, got %d", queries, len(cfg.Windows))
	}

	// Sized past the slabs that can be in flight at once (every merge
	// channel plus every batcher), so recycling rarely misses.
	e.free = make(chan []stream.Item, (chanBuf+2)*queries)

	if cfg.SliceMerge {
		asm, err := newAssembler(cfg.Shards, e.replicas[0].sp.Ends(), cfg.Windows, e.free, cfg)
		if err != nil {
			return nil, err
		}
		e.asm = asm
	} else {
		for qi := 0; qi < queries; qi++ {
			m := &merger{
				in:   make(chan taggedBatch, chanBuf),
				sink: operator.NewDirectSink(fmt.Sprintf("Q%d", qi+1)),
			}
			m.mg = newKmerge(cfg.Shards, m.sink.AcceptRun, e.free)
			if cfg.Collect {
				m.sink.Collecting()
			}
			if cfg.OnResult != nil {
				q := qi
				m.sink.OnResult(func(t *stream.Tuple) { cfg.OnResult(q, t) })
			}
			e.mergers = append(e.mergers, m)
		}
	}

	// Tap every replica's output streams — results and punctuations —
	// into the runner-owned batchers, shipping every full slab to the
	// merge layer immediately so a result-heavy drain never grows a batch
	// past the slab size (the send may block on merge backpressure, which
	// is the intended flow control). Punctuations are demoted one tick to
	// a strict frontier (see the package docs); MaxTime passes through so
	// Finish still flushes the merge.
	//
	// On the slice-merge path the taps sit on the raw slice result ports;
	// on the query-level path, union-terminated queries hand their output
	// port to the tap outright (the replica's relay sink hop disappears;
	// migrations rewire union inputs, never the output), while
	// direct-wired terminals keep their sink in tap-only mode because the
	// terminal port may be shared between queries.
	for _, r := range e.replicas {
		shardIdx := r.idx
		if cfg.SliceMerge {
			for si, j := range r.sp.Slices() {
				b := &r.out[si]
				slice := si
				j.Result().AttachFunc(func(it stream.Item) {
					if it.IsPunct() && it.Punct < stream.MaxTime {
						it.Punct--
					}
					b.Add(it)
					if b.Full() {
						e.asm.in <- sliceBatch{slice: slice, shard: shardIdx, items: b.TakeWith(e.getSlab())}
					}
				})
			}
			continue
		}
		for qi, sink := range r.sp.Plan.Sinks {
			b := &r.out[qi]
			m := e.mergers[qi]
			tap := func(it stream.Item) {
				if it.IsPunct() && it.Punct < stream.MaxTime {
					it.Punct--
				}
				b.Add(it)
				if b.Full() {
					m.in <- taggedBatch{shard: shardIdx, items: b.TakeWith(e.getSlab())}
				}
			}
			if u := r.sp.QueryUnion(qi); u != nil {
				u.Out().DetachAll()
				u.Out().AttachFunc(tap)
			} else {
				sink.OnItem(tap).TapOnly()
			}
		}
	}

	for _, r := range e.replicas {
		e.runWG.Add(1)
		go e.runReplica(r)
	}
	if e.asm != nil {
		e.asm.wg.Add(1)
		go e.asm.run()
	}
	for _, m := range e.mergers {
		e.mergeWG.Add(1)
		go m.run(&e.mergeWG)
	}
	return e, nil
}

// Shards returns the replica count.
func (e *Executor) Shards() int { return e.cfg.Shards }

// runReplica is the shard goroutine: it feeds its session from the slab
// channel, applies barrier commands, and finishes the session when the
// channel closes.
func (e *Executor) runReplica(r *replica) {
	defer e.runWG.Done()
	for msg := range r.feed {
		if msg.ctl != nil {
			msg.ctl.ack <- e.applyCtl(r, msg.ctl)
			continue
		}
		if r.err == nil {
			for _, it := range msg.items {
				var err error
				if it.IsPunct() {
					err = r.sess.FeedPunct(it.Punct)
				} else {
					err = r.sess.Feed(it.Tuple)
				}
				if err != nil {
					r.err = fmt.Errorf("shard %d: %w", r.idx, err)
					break
				}
			}
		}
		e.flushResults(r)
	}
	if r.err == nil {
		r.res = r.sess.Finish()
	}
	e.flushResults(r)
}

// applyCtl executes one barrier command on the runner goroutine: all slabs
// sent before it have been fed, so a migration happens at the same global
// stream position on every replica.
func (e *Executor) applyCtl(r *replica, c *ctl) error {
	if r.err != nil {
		return r.err
	}
	var err error
	if c.target != nil {
		if e.asm != nil {
			err = errors.New("shard: the slice-merge fast path does not support migration; build the executor without SliceMerge")
		} else {
			err = r.sp.MigrateTo(r.sess, c.target)
		}
	} else {
		r.sess.Drain()
	}
	e.flushResults(r)
	return err
}

// flushResults ships every non-empty output slab to the merge layer
// (per-query mergers, or the slice assembler on the fast path). Empty
// batchers are skipped before drawing a spare from the free list —
// TakeWith discards the spare when there is nothing to seal, which would
// bleed a recycled slab per idle output per flush.
func (e *Executor) flushResults(r *replica) {
	for i := range r.out {
		if r.out[i].Len() == 0 {
			continue
		}
		items := r.out[i].TakeWith(e.getSlab())
		if items == nil {
			continue
		}
		if e.asm != nil {
			e.asm.in <- sliceBatch{slice: i, shard: r.idx, items: items}
		} else {
			e.mergers[i].in <- taggedBatch{shard: r.idx, items: items}
		}
	}
}

// getSlab pops a recycled slab from the free list, or allocates a
// full-capacity one when none is available (an empty spare would make the
// next batch regrow through every append doubling).
func (e *Executor) getSlab() []stream.Item {
	select {
	case s := <-e.free:
		return s
	default:
		return make([]stream.Item, 0, stream.SlabCap)
	}
}

// run is the merger goroutine: push each slab into its shard's union input
// and let the union emit everything the punctuation frontiers allow.
func (m *merger) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for tb := range m.in {
		m.mg.push(tb.shard, tb.items)
		m.mg.step()
	}
	m.mg.step()
}

// Feed routes one source tuple to its key's shard. Tuples must arrive in
// global timestamp order.
func (e *Executor) Feed(t *stream.Tuple) error {
	if e.finished {
		return errors.New("shard: Feed after Finish")
	}
	if e.err != nil {
		return e.err
	}
	if t.Time < e.lastTime {
		return fmt.Errorf("shard: tuple %s out of timestamp order (last %s)", t, e.lastTime)
	}
	e.lastTime = t.Time
	s := e.part.Shard(t.Key)
	b := &e.feedB[s]
	b.Add(stream.TupleItem(t))
	if b.Len() >= feedSlab {
		e.send(s)
	}
	e.fed++
	e.sincePunct++
	if e.cfg.PunctEvery > 0 && e.sincePunct >= e.cfg.PunctEvery && t.Time > 0 {
		e.sincePunct = 0
		e.broadcast(t.Time - 1)
	}
	return nil
}

// Consume feeds the executor from a source until it is exhausted.
func (e *Executor) Consume(src stream.Source) error {
	for {
		t, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("shard: source: %w", err)
		}
		if err := e.Feed(t); err != nil {
			return err
		}
	}
}

// send flushes shard s's pending feed slab.
func (e *Executor) send(s int) {
	if items := e.feedB[s].Take(); items != nil {
		e.replicas[s].feed <- feedMsg{items: items}
	}
}

// broadcast appends a punctuation to every shard's feed and flushes, so
// even shards that received no tuples learn the global frontier. The
// timestamp is strictly below every future arrival (the last fed time minus
// one tick), keeping the merge's frontiers safe under timestamp ties.
func (e *Executor) broadcast(ts stream.Time) {
	for s := range e.replicas {
		e.feedB[s].Add(stream.PunctItem(ts))
		e.send(s)
	}
}

// barrier flushes all pending slabs, issues the command to every shard and
// waits for every acknowledgement, returning the first error.
func (e *Executor) barrier(target []stream.Time) error {
	acks := make(chan error, len(e.replicas))
	for i := range e.replicas {
		e.send(i)
		e.replicas[i].feed <- feedMsg{ctl: &ctl{target: target, ack: acks}}
	}
	var first error
	for range e.replicas {
		if err := <-acks; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Drain flushes the pending feed slabs and blocks until every replica has
// quiesced. Results may still be in flight toward the mergers afterwards;
// only Finish synchronizes the merge layer.
func (e *Executor) Drain() {
	if e.finished {
		return
	}
	if err := e.barrier(nil); err != nil && e.err == nil {
		e.err = err
	}
}

// Migrate re-slices every replica to the target boundary layout at the
// current stream position (all tuples fed so far are processed first; no
// tuple overtakes the migration). It returns the chain's new boundary
// layout.
func (e *Executor) Migrate(to []stream.Time) ([]stream.Time, error) {
	if e.finished {
		return nil, errors.New("shard: Migrate after Finish")
	}
	if e.err != nil {
		return nil, e.err
	}
	if err := e.barrier(to); err != nil {
		return nil, err
	}
	// Safe: the barrier acknowledgements order every replica mutation
	// before this read.
	return e.replicas[0].sp.Ends(), nil
}

// Finish closes the feeds, waits for every replica to flush its final
// punctuation and for every merger to drain, and returns the aggregated run
// statistics together with the first replica or driver error. The memory
// statistics sum the per-replica monitors (replicas sample at their own
// arrival counts, so the sum is an approximation of the instantaneous
// total).
func (e *Executor) Finish() (*engine.Result, error) {
	if !e.finished {
		e.finished = true
		for i := range e.replicas {
			e.send(i)
			close(e.replicas[i].feed)
		}
		e.runWG.Wait()
		if e.asm != nil {
			close(e.asm.in)
			e.asm.wg.Wait()
		}
		for _, m := range e.mergers {
			close(m.in)
		}
		e.mergeWG.Wait()
	}
	res := &engine.Result{
		PlanName:        e.cfg.Name,
		Inputs:          e.fed,
		Wall:            time.Since(e.start),
		VirtualDuration: e.lastTime,
	}
	err := e.err
	for _, r := range e.replicas {
		if r.err != nil && err == nil {
			err = r.err
		}
		if r.res != nil {
			res.Meter.Add(r.res.Meter)
			res.Memory.Samples += r.res.Memory.Samples
			res.Memory.Avg += r.res.Memory.Avg
			res.Memory.Max += r.res.Memory.Max
			res.Memory.Last += r.res.Memory.Last
		}
	}
	if e.asm != nil {
		for _, m := range e.asm.merges {
			res.Meter.Add(m.meter)
		}
		res.Meter.Add(e.asm.meter)
		for _, s := range e.asm.sinks {
			res.SinkCounts = append(res.SinkCounts, s.Count())
			res.OrderViolations += s.OrderViolations()
			res.Results = append(res.Results, s.Results())
		}
	}
	for _, m := range e.mergers {
		res.Meter.Add(m.mg.meter)
		res.SinkCounts = append(res.SinkCounts, m.sink.Count())
		res.OrderViolations += m.sink.OrderViolations()
		res.Results = append(res.Results, m.sink.Results())
	}
	return res, err
}

// Run is the batch convenience wrapper: consume the source, then Finish.
func (e *Executor) Run(src stream.Source) (*engine.Result, error) {
	if err := e.Consume(src); err != nil {
		e.Finish()
		return nil, err
	}
	return e.Finish()
}
