package shard

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"stateslice/internal/engine"
	"stateslice/internal/fault"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Live shard rebalancing.
//
// A rebalance moves window state between the existing replicas so ownership
// follows the observed key distribution instead of the Build-time split. It
// runs entirely at feed barriers, the drain-edit-drain points where every
// queue is empty and the sliced window states are the complete execution
// state — the same property migration, admission and checkpointing exploit,
// so no in-flight work ever has to be replayed or reconciled:
//
//  1. A checkpoint barrier snapshots every replica's chain at one global
//     stream position (the fan-out Checkpoint already uses).
//  2. The driver learns equi-depth cuts from the monitor's key histogram
//     (learn.go) and redistributes the snapshot's state tuples onto the
//     replicas the new cuts assign them to — deep-copying every tuple, so
//     the rebuilt states never alias the snapshot or each other.
//  3. The new cuts are installed on the partitioner. The runners are
//     quiescent between the two barriers and the rebuild command below is
//     delivered over the feed channels, so the channel send orders the cut
//     write before every tap or feed that reads it.
//  4. A rebuild barrier hands each replica its redistributed checkpoint;
//     the runner rebuilds its chain from it (reusing the supervised-restart
//     restore path, minus the replay ring) and re-taps the merge edges.
//
// Correctness of the state move: a replica's window state is a superset of
// the sequentially retained state for its keys (its purge frontier can only
// lag the global one), and every tuple a post-rebalance probe could match is
// present on the probing male's new owner shard — under hash partitioning
// each key's whole state moves with it; under band partitioning only the
// owner's canonical copy of each tuple is kept and it is re-replicated onto
// the full span the new cuts require. Tuples a purge already dropped are
// beyond the largest window of every future arrival, so dropping their
// surviving boundary copies too never loses a result. Because replicas purge
// at their own pace, slice positions are normalized to the barrier frontier
// during the move (see redistribute) — otherwise merged states would violate
// the time-sorted order the purge-then-probe discipline depends on, and
// expired stragglers could match probes out of window. Each merged state
// list is re-sorted by (Time, Seq) — the
// global arrival order — so probes scan state in the sequential engine's
// order and merged output stays byte-identical across the boundary.
//
// The merge layer is untouched: the chain shape (slice layout, query roster)
// does not change, each male's results still come from exactly one shard
// under the new cuts, and the kmerge no-ties invariant holds as before —
// which is why rebalancing works on both merge topologies, including the
// slice-merge fast path that rejects Migrate/Attach/Detach.
//
// Failure semantics: an error applying a rebuild is replica-fatal (the
// driver has already re-cut ownership, so a replica that kept its old state
// is corrupt), and any rebuild-barrier error fails the whole session
// fail-fast. The snapshot barrier mutates nothing and keeps Checkpoint's
// plain-error semantics.

// Default trigger-policy values (see RebalancePolicy).
const (
	defaultThreshold  = 1.5
	defaultCheckEvery = 4096
	defaultSustained  = 2
	defaultMinGain    = 1.2
)

// RebalancePolicy configures the automatic rebalance trigger: every
// CheckEvery fed tuples the driver evaluates the per-replica delivery
// imbalance of the window since the last evaluation, and after Sustained
// consecutive evaluations at or above Threshold it rebalances — provided the
// learned cuts predict at least a MinGain improvement, so distributions no
// split can help (a single hot key) never thrash.
type RebalancePolicy struct {
	// Threshold is the max/mean per-replica delivery ratio that counts as
	// imbalanced; <= 0 selects 1.5.
	Threshold float64
	// CheckEvery is the fed-tuple period of imbalance evaluations; <= 0
	// selects 4096.
	CheckEvery int
	// Sustained is the number of consecutive imbalanced evaluations that
	// trigger a rebalance; <= 0 selects 2.
	Sustained int
	// MinGain is the minimum predicted improvement factor (measured
	// imbalance over predicted post-rebalance imbalance) a rebalance must
	// offer; <= 0 selects 1.2.
	MinGain float64
}

// withDefaults fills unset fields with the documented defaults.
func (p RebalancePolicy) withDefaults() RebalancePolicy {
	if p.Threshold <= 0 {
		p.Threshold = defaultThreshold
	}
	if p.CheckEvery <= 0 {
		p.CheckEvery = defaultCheckEvery
	}
	if p.Sustained <= 0 {
		p.Sustained = defaultSustained
	}
	if p.MinGain <= 0 {
		p.MinGain = defaultMinGain
	}
	return p
}

// Rebalance re-cuts shard ownership to equi-depth boundaries learned from
// the observed key distribution and moves the affected window state between
// the replicas at a feed barrier. It returns true when ownership moved and
// false for a no-op — nothing observed yet, a balanced load, or a skew no
// boundary change can improve (a single hot key). All tuples fed so far are
// processed before the move; no later tuple overtakes it on any shard; the
// merged output is byte-identical across the boundary.
func (e *Executor) Rebalance() (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usable("Rebalance"); err != nil {
		return false, err
	}
	return e.rebalanceLocked()
}

// rebalanceLocked is the Rebalance body, with mu held; the automatic trigger
// calls it directly from the feed path.
func (e *Executor) rebalanceLocked() (bool, error) {
	if e.cfg.Shards < 2 || e.mon == nil {
		return false, nil
	}
	if e.cfg.RestoreFn == nil {
		return false, errors.New("shard: Rebalance requires Config.RestoreFn to rebuild replicas from redistributed checkpoints")
	}
	bandCuts, hashCuts, ok := e.planCuts()
	if !ok {
		return false, nil
	}

	snap := make([]*plan.ChainCheckpoint, len(e.replicas))
	if err := e.barrier(ctl{snap: snap}); err != nil {
		return false, err
	}
	for i, cp := range snap {
		if cp == nil {
			err := fmt.Errorf("shard: Rebalance: replica %d produced no snapshot", i)
			e.failLocked(err)
			return false, err
		}
	}

	rebuilt, err := e.redistribute(snap, bandCuts, hashCuts)
	if err != nil {
		e.failLocked(err)
		return false, err
	}

	// Install the new cuts. The runners are quiescent between the barriers
	// and the rebuild sends below order this write before every read.
	if e.rpart != nil {
		if !e.rpart.SetCuts(bandCuts) {
			err := fmt.Errorf("shard: Rebalance: learned band cuts %v are invalid", bandCuts)
			e.failLocked(err)
			return false, err
		}
	} else if !e.part.SetCuts(hashCuts) {
		err := fmt.Errorf("shard: Rebalance: learned hash cuts %v are invalid", hashCuts)
		e.failLocked(err)
		return false, err
	}

	if err := e.barrier(ctl{rebuild: rebuilt}); err != nil {
		// Ownership has been re-cut; a replica that failed (or never
		// received) its rebuild holds state the cuts no longer describe.
		// An abandoned barrier is already sticky (abandonBarrier) and its
		// teardown belongs to Close; everything else fails fast here.
		if !e.closing.Load() {
			e.failLocked(err)
		}
		return false, err
	}
	e.mon.resetLoads()
	return true, nil
}

// planCuts learns candidate cuts from the monitor and gates them on the
// no-op guard: the measured per-replica delivery imbalance must exceed the
// histogram's predicted post-rebalance imbalance by the policy's MinGain.
func (e *Executor) planCuts() (bandCuts []int64, hashCuts []uint64, ok bool) {
	minGain := defaultMinGain
	if p := e.cfg.Rebalance; p != nil {
		minGain = p.MinGain
	}
	bandCuts, hashCuts, predicted, ok := e.mon.learnCuts(e.cfg.Shards)
	if !ok {
		return nil, nil, false
	}
	if current := imbalance(e.mon.loads); current < predicted*minGain {
		return nil, nil, false
	}
	return bandCuts, hashCuts, true
}

// maybeAutoRebalance is the feed-path trigger: with a policy armed it
// evaluates the delivery imbalance every CheckEvery fed tuples and
// rebalances after Sustained consecutive imbalanced windows. mu held.
func (e *Executor) maybeAutoRebalance() error {
	pol := e.cfg.Rebalance
	if pol == nil || e.mon == nil || e.mon.sinceCheck < pol.CheckEvery {
		return nil
	}
	if e.mon.windowImbalance() >= pol.Threshold {
		e.mon.sustained++
	} else {
		e.mon.sustained = 0
	}
	e.mon.cycle()
	if e.mon.sustained < pol.Sustained {
		return nil
	}
	e.mon.sustained = 0
	_, err := e.rebalanceLocked()
	return err
}

// redistribute builds one fresh chain checkpoint per replica from the
// barrier snapshot, with every state tuple moved to the replica(s) the new
// cuts assign it. Tuples are deep-copied: RestoreState aliases the pointers
// it is given into live window state, so the rebuilt replicas must never
// share tuple instances with each other or with a retained snapshot.
func (e *Executor) redistribute(snap []*plan.ChainCheckpoint, bandCuts []int64, hashCuts []uint64) ([]*plan.ChainCheckpoint, error) {
	p := len(snap)
	base := snap[0]
	for i, cp := range snap[1:] {
		if len(cp.Slices) != len(base.Slices) {
			return nil, fmt.Errorf("shard: Rebalance: replica %d has %d slices, replica 0 has %d", i+1, len(cp.Slices), len(base.Slices))
		}
		for si := range cp.Slices {
			if cp.Slices[si].Start != base.Slices[si].Start || cp.Slices[si].End != base.Slices[si].End {
				return nil, fmt.Errorf("shard: Rebalance: replica %d slice %d range [%s,%s) diverges from replica 0's [%s,%s)",
					i+1, si, cp.Slices[si].Start, cp.Slices[si].End, base.Slices[si].Start, base.Slices[si].End)
			}
		}
	}

	// The new ownership, evaluated on scratch copies so the live
	// partitioners stay untouched until the snapshot barrier has succeeded
	// and every checkpoint is rebuilt.
	var span func(key int64) (int, int)
	var oldOwner func(key int64) int
	if e.rpart != nil {
		np := *e.rpart
		if !np.SetCuts(bandCuts) {
			return nil, fmt.Errorf("shard: Rebalance: learned band cuts %v are invalid", bandCuts)
		}
		span = np.Replicas
		oldOwner = e.rpart.Owner
	} else {
		np := e.part
		if !np.SetCuts(hashCuts) {
			return nil, fmt.Errorf("shard: Rebalance: learned hash cuts %v are invalid", hashCuts)
		}
		span = func(key int64) (int, int) { s := np.Shard(key); return s, s }
	}

	out := make([]*plan.ChainCheckpoint, p)
	for i, cp := range snap {
		ncp := &plan.ChainCheckpoint{Name: cp.Name, Slots: cp.Slots, Fed: cp.Fed, LastTime: cp.LastTime,
			Slices: make([]plan.SliceCheckpoint, len(cp.Slices))}
		for si := range cp.Slices {
			ncp.Slices[si] = plan.SliceCheckpoint{Start: cp.Slices[si].Start, End: cp.Slices[si].End}
		}
		out[i] = ncp
	}

	// Slice positions are normalized to the barrier frontier. Replicas purge
	// at their own pace (a purge runs only when a male of an owned key
	// arrives), so the same-aged tuple can sit one slice earlier on a lagging
	// replica than on an advanced one. Merging such states verbatim lets a
	// later cross-purge funnel the straggler into the next slice BEHIND
	// younger tuples, breaking the time-sorted state order purge-then-probe
	// relies on — purge stops at the first in-window front tuple, and the
	// expired stragglers behind it would match probes out of window. Instead,
	// every tuple is placed into the slice whose age range holds it relative
	// to the drained stream time: safe, because every future male arrives at
	// now or later and would purge it at least that far before probing.
	now := e.lastTime
	normalize := func(si int, t *stream.Tuple) int {
		for si < len(base.Slices) && now-t.Time > base.Slices[si].End {
			si++
		}
		return si
	}
	place := func(src, si int, t *stream.Tuple, a bool) {
		if oldOwner != nil && oldOwner(t.Key) != src {
			// A boundary-replicated copy; the owner's canonical copy is
			// redistributed instead (if a purge already dropped it there,
			// the tuple is beyond every future arrival's largest window
			// and can never join again).
			return
		}
		if si = normalize(si, t); si == len(base.Slices) {
			// Beyond the largest window of every future arrival: the next
			// male would purge it out of the chain before any probe.
			return
		}
		lo, hi := span(t.Key)
		for s := lo; s <= hi; s++ {
			c := *t
			if a {
				out[s].Slices[si].A = append(out[s].Slices[si].A, &c)
			} else {
				out[s].Slices[si].B = append(out[s].Slices[si].B, &c)
			}
		}
	}
	for src, cp := range snap {
		for si := range cp.Slices {
			for _, t := range cp.Slices[si].A {
				place(src, si, t, true)
			}
			for _, t := range cp.Slices[si].B {
				place(src, si, t, false)
			}
		}
	}
	// Each merged list must be in global arrival order — the order probes
	// scan state in, which the byte-identity of merged results depends on.
	byArrival := func(ts []*stream.Tuple) {
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].Time != ts[j].Time {
				return ts[i].Time < ts[j].Time
			}
			return ts[i].Seq < ts[j].Seq
		})
	}
	for _, ncp := range out {
		for si := range ncp.Slices {
			byArrival(ncp.Slices[si].A)
			byArrival(ncp.Slices[si].B)
		}
	}
	return out, nil
}

// applyRebuild rebuilds one replica's chain from its redistributed
// checkpoint, on the runner goroutine inside a rebuild barrier. It mirrors
// the supervised-restart restore path (restartReplica) without the replay
// ring: the barrier guarantees the merge layer already holds everything the
// old chain emitted, so the edges resume with no suppression prefix.
func (e *Executor) applyRebuild(r *replica, cp *plan.ChainCheckpoint) error {
	if err := fault.Fire(fault.RebalanceApply, r.idx); err != nil {
		return fmt.Errorf("shard %d: rebalance: %w", r.idx, err)
	}
	// The fresh session starts a zero cost meter; bank the old session's
	// counts so Finish reports the whole run and the per-replica probe
	// counts stay cumulative across the move.
	r.meterBase.Add(*r.sess.Meter())
	sp, err := e.cfg.RestoreFn(r.idx, cp)
	if err != nil {
		return fmt.Errorf("shard %d: rebalance rebuild: %w", r.idx, err)
	}
	sess, err := engine.NewSession(sp.Plan, engine.Config{
		BatchSize:   e.cfg.BatchSize,
		SampleEvery: e.cfg.SampleEvery,
	})
	if err != nil {
		return fmt.Errorf("shard %d: rebalance session: %w", r.idx, err)
	}
	if err := sess.SeedFrontier(cp.Fed, cp.LastTime); err != nil {
		return fmt.Errorf("shard %d: rebalance: %w", r.idx, err)
	}
	r.sp, r.sess = sp, sess
	for _, o := range r.out {
		o.skip = 0
	}
	e.reattachTaps(r)
	if e.recoveryArmed(r) {
		// The redistributed checkpoint is the replica's new restart point;
		// the old snapshot and ring describe state this replica no longer
		// owns.
		e.adoptSnapshot(r, cp)
	}
	return nil
}

// OwnerShare describes one replica's current ownership for Explain: the
// owned range and its observed share of the delivered load.
type OwnerShare struct {
	// Shard is the replica index.
	Shard int
	// Range renders the owned key range (band partitioning) or hash-space
	// interval (hash partitioning).
	Range string
	// Share is the replica's fraction of all per-replica tuple deliveries
	// observed so far (0 before anything was fed).
	Share float64
}

// Ownership returns the live ownership table, one entry per replica. Safe
// to call at any time; it reflects the cuts and load counters at the moment
// of the call.
func (e *Executor) Ownership() []OwnerShare {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.cfg.Shards
	out := make([]OwnerShare, n)
	var sum uint64
	if e.mon != nil {
		for _, l := range e.mon.loads {
			sum += l
		}
	}
	for i := range out {
		out[i] = OwnerShare{Shard: i, Range: e.ownedRange(i)}
		if e.mon != nil && sum > 0 {
			out[i].Share = float64(e.mon.loads[i]) / float64(sum)
		}
	}
	return out
}

// ownedRange renders replica i's owned interval under the current cuts.
func (e *Executor) ownedRange(i int) string {
	n := e.cfg.Shards
	if e.rpart != nil {
		lo, hi := e.rpart.ownedKeys(i)
		switch {
		case i == 0 && i == n-1:
			return "all keys"
		case i == 0:
			return fmt.Sprintf("keys <= %d", hi)
		case i == n-1:
			return fmt.Sprintf("keys >= %d", lo)
		default:
			return fmt.Sprintf("keys [%d, %d]", lo, hi)
		}
	}
	if cuts := e.part.Cuts(); cuts != nil {
		lo, hi := uint64(0), uint64(0)
		if i > 0 {
			lo = cuts[i-1]
		}
		if i < n-1 {
			hi = cuts[i]
		} else {
			hi = ^uint64(0)
		}
		const pct = 100.0
		return fmt.Sprintf("hash [%.1f%%, %.1f%%)", pct*float64(lo)/float64(^uint64(0)), pct*float64(hi)/float64(^uint64(0)))
	}
	return fmt.Sprintf("splitmix64(Key) mod %d == %d", n, i)
}

// ownedKeys returns the inclusive key interval replica i owns under the
// current cuts (or the fixed-width split), clamping the edge replicas onto
// the domain bounds.
func (p *RangePartitioner) ownedKeys(i int) (lo, hi int64) {
	lo, hi = p.min, p.domainMax()
	if p.cuts != nil {
		if i > 0 {
			lo = p.cuts[i-1]
		}
		if i < p.n-1 {
			hi = p.cuts[i] - 1
		}
		return lo, hi
	}
	if i > 0 {
		lo = p.fixedLowKey(i)
	}
	if i < p.n-1 {
		hi = p.fixedLowKey(i+1) - 1
	}
	return lo, hi
}

// domainMax returns the inclusive upper bound of the partitioned domain.
func (p *RangePartitioner) domainMax() int64 {
	if p.span == 0 {
		return int64(uint64(p.min) - 1) // full int64 domain wraps to min-1
	}
	return int64(uint64(p.min) + p.span - 1)
}

// fixedLowKey returns the smallest key of fixed-width range i (i >= 1): the
// smallest offset d with floor(d*n/span) == i, which is ceil(i*span/n).
func (p *RangePartitioner) fixedLowKey(i int) int64 {
	if p.span == 0 {
		w := ^uint64(0)/uint64(p.n) + 1
		return int64(uint64(p.min) + uint64(i)*w)
	}
	hi, lo := bits.Mul64(p.span, uint64(i))
	q, rem := bits.Div64(hi, lo, uint64(p.n))
	if rem != 0 {
		q++
	}
	return int64(uint64(p.min) + q)
}
