package shard

import (
	"math/rand"
	"testing"
)

// These tests pin the equi-depth boundary learner on the distributions the
// rebalancer targets — uniform (the learned cuts must reproduce the fixed
// split), quadratic skew (the cuts must compress toward the hot end and
// predict a near-balanced assignment), boundary-clustered keys — and on the
// degenerate single-hot-key distribution, where no boundary change can help
// and the learner's prediction must make planCuts a no-op.

// observeUniform feeds every key of the monitor's band domain once per round.
func observeUniform(m *loadMonitor, rp RangePartitioner, dom int64, rounds int) {
	for r := 0; r < rounds; r++ {
		for k := int64(0); k < dom; k++ {
			lo, hi := rp.Replicas(k)
			m.observe(k, lo, hi)
		}
	}
}

func TestEquiDepthUniform(t *testing.T) {
	const dom, p = 128, 8
	band := Band{Width: 1, MinKey: 0, MaxKey: dom - 1}
	rp, err := NewRangePartitioner(p, band)
	if err != nil {
		t.Fatal(err)
	}
	m := newLoadMonitor(p, &band)
	if m.nb != dom {
		t.Fatalf("monitor over a %d-key domain uses %d buckets, want one per key", dom, m.nb)
	}
	observeUniform(m, rp, dom, 3)

	bandCuts, hashCuts, predicted, ok := m.learnCuts(p)
	if !ok || hashCuts != nil {
		t.Fatalf("learnCuts = (%v, %v, %v, %v), want band cuts", bandCuts, hashCuts, predicted, ok)
	}
	// A uniform histogram learns exactly the fixed-width split.
	for i, c := range bandCuts {
		if want := int64((i + 1) * dom / p); c != want {
			t.Errorf("uniform cut %d = %d, want the fixed-width boundary %d", i, c, want)
		}
	}
	if predicted != 1 {
		t.Errorf("uniform predicted imbalance %v, want exactly 1", predicted)
	}
}

func TestEquiDepthQuadraticSkew(t *testing.T) {
	const dom, p = 128, 8
	band := Band{Width: 1, MinKey: 0, MaxKey: dom - 1}
	rp, err := NewRangePartitioner(p, band)
	if err != nil {
		t.Fatal(err)
	}
	m := newLoadMonitor(p, &band)
	// Quadratic key remap: k -> floor(k^2/dom) piles the mass onto the low
	// keys (the remap is concave, so many source keys collapse there).
	for k := int64(0); k < dom; k++ {
		kk := (k * k) / dom
		lo, hi := rp.Replicas(kk)
		m.observe(kk, lo, hi)
	}

	bandCuts, _, predicted, ok := m.learnCuts(p)
	if !ok {
		t.Fatal("learnCuts failed on a quadratic-skew histogram")
	}
	// The first cut must sit well inside the first fixed-width range: the
	// hot low end is split fine, the cold high end coarse.
	if fixed := int64(dom / p); bandCuts[0] >= fixed {
		t.Errorf("first learned cut %d has not compressed toward the hot end (fixed-width boundary %d)", bandCuts[0], fixed)
	}
	for i := 1; i < len(bandCuts); i++ {
		if bandCuts[i] <= bandCuts[i-1] {
			t.Fatalf("learned cuts not strictly ascending: %v", bandCuts)
		}
	}
	fixedImb := imbalance(m.loads)
	if fixedImb < 1.5 {
		t.Fatalf("quadratic skew produced fixed-split delivery imbalance %.2f; the scenario is too tame to test", fixedImb)
	}
	if predicted > 1.5 {
		t.Errorf("equi-depth predicted imbalance %.2f, want near-balanced (<= 1.5)", predicted)
	}
	if predicted*defaultMinGain > fixedImb {
		t.Errorf("predicted %.2f offers < MinGain improvement over measured %.2f; planCuts would refuse a clearly profitable rebalance", predicted, fixedImb)
	}
}

func TestEquiDepthBoundaryClustered(t *testing.T) {
	const dom = 16
	band := Band{Width: 1, MinKey: 0, MaxKey: dom - 1}

	// p=2: all mass on the boundary pair (7, 8). The learned cut must fall
	// between the two hot keys, keeping the split perfectly balanced.
	rp2, err := NewRangePartitioner(2, band)
	if err != nil {
		t.Fatal(err)
	}
	m := newLoadMonitor(2, &band)
	for i := 0; i < 100; i++ {
		k := int64(7 + i%2)
		lo, hi := rp2.Replicas(k)
		m.observe(k, lo, hi)
	}
	bandCuts, _, predicted, ok := m.learnCuts(2)
	if !ok {
		t.Fatal("learnCuts failed on a boundary-clustered histogram")
	}
	if len(bandCuts) != 1 || bandCuts[0] != 8 {
		t.Errorf("boundary-clustered p=2 learned cuts %v, want [8] (one hot key per shard)", bandCuts)
	}
	if predicted != 1 {
		t.Errorf("boundary-clustered p=2 predicted imbalance %v, want exactly 1", predicted)
	}

	// p=4: two hot keys cannot occupy four shards — key granularity caps the
	// best reachable balance at max/mean = 2. The learner must still emit a
	// valid, strictly ascending cut vector and predict that cap honestly.
	m4 := newLoadMonitor(4, &band)
	for i := 0; i < 100; i++ {
		m4.observe(int64(7+i%2), 0, 0)
	}
	bandCuts, _, predicted, ok = m4.learnCuts(4)
	if !ok {
		t.Fatal("learnCuts failed for p=4")
	}
	if len(bandCuts) != 3 {
		t.Fatalf("p=4 learned %d cuts, want 3", len(bandCuts))
	}
	for i := 1; i < len(bandCuts); i++ {
		if bandCuts[i] <= bandCuts[i-1] {
			t.Fatalf("learned cuts not strictly ascending: %v", bandCuts)
		}
	}
	if bandCuts[0] != 8 {
		t.Errorf("p=4 first cut %d, want 8 (the hot keys must split apart)", bandCuts[0])
	}
	if predicted != 2 {
		t.Errorf("p=4 predicted imbalance %v, want exactly 2 (two keys over four shards)", predicted)
	}
}

// TestEquiDepthSingleHotKey pins the degenerate distribution no split can
// help: with all mass on one key, every cut vector leaves one shard with
// everything, the prediction equals the measured imbalance, and the planCuts
// MinGain guard turns the rebalance into a no-op instead of a thrash.
func TestEquiDepthSingleHotKey(t *testing.T) {
	const dom, p = 64, 4
	band := Band{Width: 1, MinKey: 0, MaxKey: dom - 1}
	rp, err := NewRangePartitioner(p, band)
	if err != nil {
		t.Fatal(err)
	}
	m := newLoadMonitor(p, &band)
	for i := 0; i < 200; i++ {
		lo, hi := rp.Replicas(13)
		m.observe(13, lo, hi)
	}
	bandCuts, _, predicted, ok := m.learnCuts(p)
	if !ok {
		t.Fatal("learnCuts failed on a single-hot-key histogram")
	}
	for i := 1; i < len(bandCuts); i++ {
		if bandCuts[i] <= bandCuts[i-1] {
			t.Fatalf("learned cuts not strictly ascending: %v", bandCuts)
		}
	}
	if predicted != float64(p) {
		t.Errorf("single hot key predicted imbalance %v, want %d (one shard keeps everything)", predicted, p)
	}
	// The no-op guard: the measured imbalance equals the prediction, so no
	// MinGain >= 1 lets the rebalance through.
	if current := imbalance(m.loads); current >= predicted*defaultMinGain {
		t.Errorf("measured imbalance %.2f >= predicted %.2f * MinGain %.2f; planCuts would thrash on an unimprovable skew",
			current, predicted, defaultMinGain)
	}
}

// TestEquiDepthDegenerate pins the inputs on which no cut vector exists.
func TestEquiDepthDegenerate(t *testing.T) {
	hist := make([]uint64, 16)
	if got := equiDepthBuckets(hist, 1); got != nil {
		t.Errorf("p=1: %v, want nil (nothing to cut)", got)
	}
	hist[3] = 10
	if got := equiDepthBuckets(hist[:4], 8); got != nil {
		t.Errorf("fewer buckets than shards: %v, want nil", got)
	}
	if got := equiDepthBuckets(make([]uint64, 16), 4); got != nil {
		t.Errorf("empty histogram: %v, want nil", got)
	}
}

// TestEquiDepthRandomizedInvariants checks the structural invariants on
// random histograms: p-1 strictly ascending cuts in [1, nb-1], and the
// per-shard weights repartition exactly the observed total.
func TestEquiDepthRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nb := 2 + rng.Intn(511)
		p := 2 + rng.Intn(15)
		if nb < p {
			nb, p = p, nb
		}
		hist := make([]uint64, nb)
		var total uint64
		for i := range hist {
			if rng.Intn(3) == 0 { // sparse, with occasional heavy spikes
				hist[i] = uint64(rng.Intn(1000))
				if rng.Intn(10) == 0 {
					hist[i] += 1 << 40
				}
				total += hist[i]
			}
		}
		if total == 0 {
			hist[nb/2] = 1
			total = 1
		}
		cuts := equiDepthBuckets(hist, p)
		if cuts == nil {
			t.Fatalf("trial %d (nb=%d p=%d): no cuts for a non-empty histogram", trial, nb, p)
		}
		if len(cuts) != p-1 {
			t.Fatalf("trial %d: %d cuts, want %d", trial, len(cuts), p-1)
		}
		prev := 0
		for _, c := range cuts {
			if c <= prev || c > nb-1 {
				t.Fatalf("trial %d (nb=%d p=%d): invalid cut vector %v", trial, nb, p, cuts)
			}
			prev = c
		}
		var sum uint64
		for _, w := range bucketShardWeights(hist, cuts) {
			sum += w
		}
		if sum != total {
			t.Fatalf("trial %d: shard weights sum to %d, want %d", trial, sum, total)
		}
	}
}
