package shard

import (
	"fmt"
	"time"

	"stateslice/internal/engine"
	"stateslice/internal/fault"
	"stateslice/internal/plan"
	rec "stateslice/internal/recover"
	"stateslice/internal/stream"
)

// Supervised replica restart (Config.Recovery).
//
// Every replica runner keeps two things the fail-fast path never needs: a
// periodic runner-local chain checkpoint, taken between feed slabs every
// SnapshotEvery inputs, and a replay ring of every feed slab delivered since
// that snapshot (the slabs are retained as-is — the feed path never recycles
// them, so the ring is zero-copy). When the replica dies with a contained
// crash (a fault.PanicError), the runner — on its own goroutine, with the
// rest of the executor running undisturbed — asks the supervisor for a
// restart budget, rebuilds the chain from the snapshot, re-taps the new
// chain into the replica's existing output edges and re-feeds the ring.
//
// Replay must not re-deliver results the merge layer already received: the
// chain is deterministic, so the items a replayed input produces on an edge
// are byte-identical to the items the pre-crash run produced. Each edge
// therefore counts the items it has shipped (emitted) and remembers the
// count at snapshot time (emittedSnap); a restart arms skip = emitted -
// emittedSnap and the tap drops exactly that many replayed items before
// resuming normal delivery. The suppression is a pure prefix count — results
// never tie on (Time, Seq) across shards, but within one edge the replayed
// prefix is identical by determinism, which is stronger than any frontier
// comparison. A restart that crashes again re-enters the same loop: emitted
// kept advancing past the suppressed prefix, so the next skip is computed
// against the same snapshot and stays exact.
//
// A successful restructure barrier (migrate, attach, detach) changes the
// chain's shape, and the replay ring cannot re-apply it — the command was
// coordinated by the driver. The runner therefore refreshes its snapshot
// immediately after every restructure; if that snapshot fails, supervision
// is disabled for the replica (norecover) and it degrades to the fail-fast
// path rather than restoring a stale shape. Replay never calls fault.Fire:
// a persistent injection would otherwise kill every restart at the same
// input, turning one chaos probe into an unconditional budget exhaustion.
//
// Barrier, merge and assembly panics stay fail-fast: a half-applied
// restructure or a corrupt merge cannot be healed by rebuilding one replica.

// recoveryArmed reports whether supervised restart is active for r.
func (e *Executor) recoveryArmed(r *replica) bool {
	return e.sup != nil && !r.norecover
}

// recordSlab appends one delivered feed slab to the replay ring and advances
// the snapshot cadence counter. Runner goroutine only.
func (e *Executor) recordSlab(r *replica, items []stream.Item) {
	r.ring = append(r.ring, items)
	r.sinceSnap += len(items)
}

// maybeSnapshot refreshes the runner-local snapshot when the cadence is due.
// A failed periodic snapshot is harmless — the ring keeps growing from the
// last good snapshot, so recovery stays exact, just with a longer replay.
func (e *Executor) maybeSnapshot(r *replica) {
	if !e.recoveryArmed(r) || r.sinceSnap < e.sup.Policy().SnapshotEvery {
		return
	}
	if cp, err := r.sp.Checkpoint(r.sess); err == nil {
		e.adoptSnapshot(r, cp)
	}
}

// adoptSnapshot installs cp as the replica's restart point: the replay ring
// resets and every edge records its emitted count, the baseline the restart
// suppression is computed against.
func (e *Executor) adoptSnapshot(r *replica, cp *plan.ChainCheckpoint) {
	r.snapCp = cp
	r.ring = nil
	r.sinceSnap = 0
	for _, o := range r.out {
		o.emittedSnap = o.emitted
	}
}

// refreshSnapshot re-snapshots after a successful restructure barrier. The
// old snapshot describes a chain shape the ring cannot reproduce, so a
// failure here disables supervision for the replica instead of risking a
// restore into the wrong shape.
func (e *Executor) refreshSnapshot(r *replica) {
	if !e.recoveryArmed(r) {
		return
	}
	cp, err := r.sp.Checkpoint(r.sess)
	if err != nil {
		r.norecover = true
		r.snapCp = nil
		r.ring = nil
		return
	}
	e.adoptSnapshot(r, cp)
}

// recoverReplica attempts supervised restarts until one succeeds, the
// supervisor refuses, or the failure class is not recoverable. It runs on
// the replica's own runner goroutine; the driver and the other replicas keep
// running throughout. Returns true when the replica is healed and caught up.
func (e *Executor) recoverReplica(r *replica, cause error) bool {
	for {
		if !e.recoveryArmed(r) || !rec.Recoverable(cause) {
			return false
		}
		backoff, ok := e.sup.Admit(r.idx)
		if !ok {
			return false
		}
		if backoff > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-e.ctxDone:
				timer.Stop()
				return false
			}
		}
		err := e.restartReplica(r)
		if err == nil {
			return true
		}
		cause = err
	}
}

// restartReplica rebuilds the replica from its last snapshot (or from
// scratch when none was taken yet), re-taps the fresh chain into the
// existing output edges with replay suppression armed, and re-feeds the
// replay ring. Any failure — including a panic during replay — is contained
// and returned so the supervisor loop can charge another attempt.
func (e *Executor) restartReplica(r *replica) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("shard: %w", fault.Capture("replica restart", r.idx, v))
		}
	}()
	start := time.Now()
	var sp *plan.StateSlicePlan
	if r.snapCp != nil {
		sp, err = e.cfg.RestoreFn(r.idx, r.snapCp)
	} else {
		sp, err = e.buildFn(r.idx)
	}
	if err != nil {
		return fmt.Errorf("shard %d: restart rebuild: %w", r.idx, err)
	}
	sess, err := engine.NewSession(sp.Plan, engine.Config{
		BatchSize:   e.cfg.BatchSize,
		SampleEvery: e.cfg.SampleEvery,
	})
	if err != nil {
		return fmt.Errorf("shard %d: restart session: %w", r.idx, err)
	}
	if r.snapCp != nil {
		if err := sess.SeedFrontier(r.snapCp.Fed, r.snapCp.LastTime); err != nil {
			return fmt.Errorf("shard %d: restart: %w", r.idx, err)
		}
	}
	r.sp, r.sess = sp, sess
	for _, o := range r.out {
		o.skip = o.emitted - o.emittedSnap
	}
	e.reattachTaps(r)
	replayed := len(r.ring)
	if err := e.replayRing(r); err != nil {
		return err
	}
	e.sup.RecordRestart(r.idx, replayed, time.Since(start))
	return nil
}

// reattachTaps wires the restarted chain's output ports into the replica's
// existing edges — same batchers, same merge destinations, so the merge
// layer never observes the restart.
func (e *Executor) reattachTaps(r *replica) {
	if e.cfg.SliceMerge {
		for si, j := range r.sp.Slices() {
			e.attachSliceTap(r, j, r.out[si])
		}
		return
	}
	for qi, sink := range r.sp.Plan.Sinks {
		e.attachQueryTap(r, r.sp.QueryUnion(qi), sink, r.out[qi])
	}
}

// replayRing re-feeds every retained slab into the restarted session. Unlike
// the live feed path it never calls fault.Fire — replay heals a crash, it
// does not re-arm the probe that caused it.
func (e *Executor) replayRing(r *replica) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("shard: %w", fault.Capture("replica replay", r.idx, v))
		}
	}()
	for _, items := range r.ring {
		for _, it := range items {
			if it.IsPunct() {
				err = r.sess.FeedPunct(it.Punct)
			} else {
				err = r.sess.Feed(it.Tuple)
			}
			if err != nil {
				return fmt.Errorf("shard %d: replay: %w", r.idx, err)
			}
		}
	}
	return nil
}

// RecoveryStats returns the supervision counters (zero when recovery is not
// configured).
func (e *Executor) RecoveryStats() rec.Stats {
	if e.sup == nil {
		return rec.Stats{}
	}
	return e.sup.Stats()
}
