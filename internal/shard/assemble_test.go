package shard

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/fault"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// These tests pin the parallel assembly stage added on top of the sharded
// executor: byte-identical results across the full (shards × assembly
// workers) matrix on every workload shape, executor-level validation of
// slice-merge windows before any goroutine starts, and the propagation of
// injected replica failures to the driver — a failed replica must never
// look like a clean run.

// workerCounts is the assembly-worker sweep of the equivalence matrix.
var workerCounts = []int{1, 2, 4}

// matrixInput is a shorter workload than testInput: the matrix multiplies
// 24 (shards × workers) combinations per topology per distribution, and
// equivalence needs coverage of the merge interleavings, not volume — the
// full-length inputs stay on the single-sweep tests.
func matrixInput(t testing.TB, seed, keyDomain int64) []*stream.Tuple {
	t.Helper()
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 40, RateB: 40,
		Duration:  8 * stream.Second,
		KeyDomain: keyDomain,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

// TestAssemblyWorkerMatrix checks equivalence with the sequential engine at
// every (shards, workers) combination on uniform, quadratically skewed and
// single-hot-key workloads, on both merge topologies.
func TestAssemblyWorkerMatrix(t *testing.T) {
	windows := []stream.Time{2 * stream.Second, 5 * stream.Second, 5 * stream.Second, 9 * stream.Second}
	w := chainWorkload(windows...)
	const dom = 16
	for _, tc := range []struct {
		name string
		key  func(int64) int64
	}{
		{"uniform", func(k int64) int64 { return k }},
		{"quadratic-skew", func(k int64) int64 { return (k * k) / dom }},
		{"single-hot-key", func(int64) int64 { return 3 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			input := matrixInput(t, 3, dom)
			for _, tp := range input {
				tp.Key = tc.key(tp.Key)
			}
			ref := engineRef(t, w, input)
			if ref.TotalOutputs() == 0 {
				t.Fatal("reference produced no results; the matrix is vacuous")
			}
			for _, p := range shardCounts {
				for _, workers := range workerCounts {
					cfg := Config{Shards: p, AssemblyWorkers: workers, PunctEvery: 64}
					res := runSlicedMerge(t, w, input, cfg)
					assertByteIdentical(t, fmt.Sprintf("fast p=%d w=%d", p, workers), res, ref)
					res = runSharded(t, w, input, cfg)
					assertByteIdentical(t, fmt.Sprintf("general p=%d w=%d", p, workers), res, ref)
				}
			}
		})
	}
}

// TestAssemblyWorkersMigrated runs the worker sweep across a mid-stream
// migration (general path only; the fast path rejects migration), against a
// sequential session migrated at the same stream position.
func TestAssemblyWorkersMigrated(t *testing.T) {
	w := chainWorkload(3*stream.Second, 8*stream.Second)
	input := testInput(t, 11, 16)
	half := len(input) / 2
	target := []stream.Time{8 * stream.Second}

	refSP, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Migratable: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := engine.NewSession(refSP.Plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range input {
		if i == half {
			if err := refSP.MigrateTo(refSess, target); err != nil {
				t.Fatal(err)
			}
		}
		if err := refSess.Feed(tp); err != nil {
			t.Fatal(err)
		}
	}
	ref := refSess.Finish()

	for _, workers := range workerCounts {
		e, err := New(Config{Shards: 4, AssemblyWorkers: workers, Collect: true},
			factory(w, plan.StateSliceConfig{Migratable: true}))
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Workers(); got != min(workers, len(w.Queries)) {
			t.Fatalf("workers=%d: executor resolved %d workers", workers, got)
		}
		if err := e.Consume(stream.NewSliceSource(input[:half])); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Migrate(target); err != nil {
			t.Fatal(err)
		}
		if err := e.Consume(stream.NewSliceSource(input[half:])); err != nil {
			t.Fatal(err)
		}
		res, err := e.Finish()
		if err != nil {
			t.Fatal(err)
		}
		assertByteIdentical(t, fmt.Sprintf("migrated w=%d", workers), res, ref)
	}
}

// TestValidateSliceMergeWindows pins the executor-level window validation:
// misaligned slice-merge windows must fail in New — at build time, before
// any replica or assembly goroutine exists — not when the assembler first
// touches them.
func TestValidateSliceMergeWindows(t *testing.T) {
	w := chainWorkload(2*stream.Second, 6*stream.Second)
	for _, tc := range []struct {
		name    string
		windows []stream.Time
	}{
		{"window below the first boundary", []stream.Time{1 * stream.Second, 6 * stream.Second}},
		{"window between boundaries", []stream.Time{2 * stream.Second, 4 * stream.Second}},
	} {
		_, err := New(Config{Shards: 2, SliceMerge: true, Windows: tc.windows},
			factory(w, plan.StateSliceConfig{RawSliceResults: true}))
		if err == nil {
			t.Errorf("%s: New must fail", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "slice boundary") {
			t.Errorf("%s: error %q does not name the boundary mismatch", tc.name, err)
		}
	}
	if err := ValidateSliceMergeWindows(nil, []stream.Time{stream.Second}); err == nil {
		t.Error("empty boundary list must fail")
	}
	if err := ValidateSliceMergeWindows([]stream.Time{stream.Second}, nil); err == nil {
		t.Error("empty window list must fail")
	}
	if _, err := New(Config{Shards: 2, SliceMerge: true, Windows: []stream.Time{6 * stream.Second}},
		factory(w, plan.StateSliceConfig{RawSliceResults: true})); err == nil {
		t.Error("window-count mismatch must fail")
	}
}

// TestReplicaErrorPropagates injects a failure into one replica mid-run and
// checks the regression fixed in this package's Finish path: the error must
// surface to the driver on a subsequent Feed, and Finish must return it —
// never a silently clean-looking result.
func TestReplicaErrorPropagates(t *testing.T) {
	for _, fast := range []bool{false, true} {
		t.Run(map[bool]string{false: "general", true: "fast"}[fast], func(t *testing.T) {
			injected := errors.New("injected replica failure")
			var fed atomic.Int64
			restore := fault.Inject(fault.ReplicaFeed, func(int) error {
				if fed.Add(1) == 40 {
					return injected
				}
				return nil
			})
			defer restore()

			w := chainWorkload(2*stream.Second, 6*stream.Second)
			input := testInput(t, 5, 16)
			cfg := Config{Shards: 4, AssemblyWorkers: 2, PunctEvery: 32}
			rcfg := plan.StateSliceConfig{}
			if fast {
				cfg.SliceMerge = true
				for _, q := range w.Queries {
					cfg.Windows = append(cfg.Windows, q.Window)
				}
				rcfg.RawSliceResults = true
			}
			e, err := New(cfg, factory(w, rcfg))
			if err != nil {
				t.Fatal(err)
			}
			var feedErr error
			for _, tp := range input {
				if feedErr = e.Feed(tp); feedErr != nil {
					break
				}
			}
			// The whole input can fit in the feed-channel buffers, so the
			// loop above may complete before any replica reaches the
			// failing tuple. Keep feeding the last timestamp until
			// backpressure forces the replicas through it and the sticky
			// error surfaces — bounded so a propagation bug still fails
			// the test instead of hanging it.
			last := input[len(input)-1]
			for i := 0; feedErr == nil && i < 1_000_000; i++ {
				feedErr = e.Feed(last)
			}
			if feedErr == nil {
				t.Error("Feed never surfaced the replica failure mid-run")
			} else if !errors.Is(feedErr, injected) {
				t.Errorf("Feed surfaced %v, want the injected failure", feedErr)
			}
			// The error must be sticky: later feeds keep failing.
			if err := e.Feed(input[len(input)-1]); err == nil {
				t.Error("Feed after a replica failure must keep failing")
			}
			res, err := e.Finish()
			if err == nil {
				t.Fatal("Finish dropped the replica failure")
			}
			if !errors.Is(err, injected) {
				t.Errorf("Finish returned %v, want the injected failure", err)
			}
			if res == nil {
				t.Fatal("Finish must still return the partial statistics")
			}
		})
	}
}

// TestReplicaErrorOnFinishOnly injects the failure into the very last
// tuple: the driver has no Feed left to observe it on, so Finish alone must
// report it.
func TestReplicaErrorOnFinishOnly(t *testing.T) {
	injected := errors.New("late replica failure")
	w := chainWorkload(2 * stream.Second)
	input := testInput(t, 9, 16)
	total := int64(len(input))
	var fed atomic.Int64
	restore := fault.Inject(fault.ReplicaFeed, func(int) error {
		if fed.Add(1) == total {
			return injected
		}
		return nil
	})
	defer restore()

	e, err := New(Config{Shards: 2}, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Consume(stream.NewSliceSource(input)); err != nil && !errors.Is(err, injected) {
		t.Fatal(err)
	}
	if _, err := e.Finish(); !errors.Is(err, injected) {
		t.Fatalf("Finish returned %v, want the late injected failure", err)
	}
}
