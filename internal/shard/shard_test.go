package shard

import (
	"fmt"
	"strings"
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// These tests pin the central claim of sharded execution: hash-partitioning
// an equijoin workload across P chain replicas and merging the replica
// outputs delivers byte-identical per-query result sequences — same tuples,
// same delivery order — as the sequential engine, at every shard count,
// under uniform and heavily skewed key distributions, with and without
// pushed-down selections, and across a mid-stream migration.

// shardCounts is the sweep under test.
var shardCounts = []int{1, 2, 4, 8}

// chainWorkload builds an equijoin workload over the given windows.
func chainWorkload(windows ...stream.Time) plan.Workload {
	w := plan.Workload{Join: stream.Equijoin{}}
	for _, win := range windows {
		w.Queries = append(w.Queries, plan.Query{Window: win})
	}
	return w
}

// testInput generates a keyed two-stream workload.
func testInput(t testing.TB, seed int64, keyDomain int64) []*stream.Tuple {
	t.Helper()
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 40, RateB: 40,
		Duration:  20 * stream.Second,
		KeyDomain: keyDomain,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

// renderResults serializes one query's result sequence byte-exactly:
// timestamp, sequence number and both source tuples of every result, in
// delivery order.
func renderResults(results []*stream.Tuple) string {
	var b strings.Builder
	for _, t := range results {
		fmt.Fprintf(&b, "%d/%d:(%d.%d,%d.%d);", t.Time, t.Seq,
			t.A.Stream, t.A.Ord, t.B.Stream, t.B.Ord)
	}
	return b.String()
}

// factory returns a replica builder over a fixed workload and chain config.
func factory(w plan.Workload, cfg plan.StateSliceConfig) func(int) (*plan.StateSlicePlan, error) {
	return func(int) (*plan.StateSlicePlan, error) {
		return plan.BuildStateSlice(w, cfg)
	}
}

// engineRef runs the workload on the sequential per-tuple engine.
func engineRef(t *testing.T, w plan.Workload, input []*stream.Tuple) *engine.Result {
	t.Helper()
	sp, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(sp.Plan, input, engine.Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderViolations != 0 {
		t.Fatalf("reference run had %d order violations", res.OrderViolations)
	}
	return res
}

// runSharded executes the workload on the sharded executor (query-level
// merge path).
func runSharded(t *testing.T, w plan.Workload, input []*stream.Tuple, cfg Config) *engine.Result {
	t.Helper()
	cfg.Collect = true
	e, err := New(cfg, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(stream.NewSliceSource(input))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runSlicedMerge executes the workload on the slice-merge fast path.
func runSlicedMerge(t *testing.T, w plan.Workload, input []*stream.Tuple, cfg Config) *engine.Result {
	t.Helper()
	cfg.Collect = true
	cfg.SliceMerge = true
	for _, q := range w.Queries {
		cfg.Windows = append(cfg.Windows, q.Window)
	}
	e, err := New(cfg, factory(w, plan.StateSliceConfig{RawSliceResults: true}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(stream.NewSliceSource(input))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertByteIdentical compares per-query result sequences and order.
func assertByteIdentical(t *testing.T, label string, got, want *engine.Result) {
	t.Helper()
	if got.OrderViolations != 0 {
		t.Errorf("%s: %d order violations", label, got.OrderViolations)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d queries, want %d", label, len(got.Results), len(want.Results))
	}
	for qi := range want.Results {
		if got.SinkCounts[qi] != want.SinkCounts[qi] {
			t.Errorf("%s: query %d delivered %d results, want %d",
				label, qi, got.SinkCounts[qi], want.SinkCounts[qi])
			continue
		}
		if g, r := renderResults(got.Results[qi]), renderResults(want.Results[qi]); g != r {
			t.Errorf("%s: query %d result sequence differs from the sequential engine", label, qi)
		}
	}
}

func TestShardedByteIdenticalUniformKeys(t *testing.T) {
	windows := []stream.Time{2 * stream.Second, 5 * stream.Second, 5 * stream.Second, 9 * stream.Second}
	w := chainWorkload(windows...)
	for seed := int64(1); seed <= 2; seed++ {
		input := testInput(t, seed, 16)
		ref := engineRef(t, w, input)
		if ref.TotalOutputs() == 0 {
			t.Fatal("reference produced no results; the equivalence check is vacuous")
		}
		for _, p := range shardCounts {
			res := runSharded(t, w, input, Config{Shards: p})
			assertByteIdentical(t, fmt.Sprintf("seed %d p=%d", seed, p), res, ref)
			res = runSlicedMerge(t, w, input, Config{Shards: p})
			assertByteIdentical(t, fmt.Sprintf("seed %d p=%d slice-merge", seed, p), res, ref)
		}
	}
}

// TestSliceMergeSkewAndBatch exercises the slice-merge fast path under the
// stressors of the query-level tests: skewed keys, a single hot key, and
// batched replicas.
func TestSliceMergeSkewAndBatch(t *testing.T) {
	w := chainWorkload(2*stream.Second, 6*stream.Second)
	const dom = 16
	input := testInput(t, 3, dom)
	for _, tp := range input {
		tp.Key = (tp.Key * tp.Key) / dom
	}
	ref := engineRef(t, w, input)
	for _, p := range shardCounts {
		res := runSlicedMerge(t, w, input, Config{Shards: p, PunctEvery: 64})
		assertByteIdentical(t, fmt.Sprintf("skew p=%d", p), res, ref)
	}

	hot := testInput(t, 4, dom)
	for _, tp := range hot {
		tp.Key = 5
	}
	hotRef := engineRef(t, w, hot)
	for _, p := range []int{2, 8} {
		res := runSlicedMerge(t, w, hot, Config{Shards: p, PunctEvery: 64})
		assertByteIdentical(t, fmt.Sprintf("hot-key p=%d", p), res, hotRef)
	}

	for _, k := range []int{7, -1} {
		res := runSlicedMerge(t, w, input, Config{Shards: 4, BatchSize: k})
		assertByteIdentical(t, fmt.Sprintf("slice-merge k=%d", k), res, ref)
	}
}

// TestRawSliceResultsValidation pins the eligibility rules of the raw
// replica mode behind the fast path.
func TestRawSliceResultsValidation(t *testing.T) {
	w := chainWorkload(2*stream.Second, 6*stream.Second)
	if _, err := plan.BuildStateSlice(w, plan.StateSliceConfig{RawSliceResults: true, Migratable: true}); err == nil {
		t.Error("RawSliceResults with Migratable must fail")
	}
	filtered := w
	filtered.Queries = append([]plan.Query(nil), w.Queries...)
	filtered.Queries[1].Filter = stream.Threshold{S: 0.5}
	if _, err := plan.BuildStateSlice(filtered, plan.StateSliceConfig{RawSliceResults: true}); err == nil {
		t.Error("RawSliceResults with filters must fail")
	}
	merged := plan.StateSliceConfig{RawSliceResults: true, Ends: []stream.Time{6 * stream.Second}}
	if _, err := plan.BuildStateSlice(w, merged); err == nil {
		t.Error("RawSliceResults with a window inside a merged slice must fail")
	}
}

// TestShardedBatchedReplicas exercises non-trivial engine micro-batches and
// a small punctuation period inside the replicas.
func TestShardedBatchedReplicas(t *testing.T) {
	w := chainWorkload(3*stream.Second, 8*stream.Second)
	input := testInput(t, 7, 16)
	ref := engineRef(t, w, input)
	for _, k := range []int{7, 64, -1} {
		res := runSharded(t, w, input, Config{Shards: 4, BatchSize: k, PunctEvery: 32})
		assertByteIdentical(t, fmt.Sprintf("k=%d", k), res, ref)
	}
}

// TestShardedSkewedKeys maps the uniform key domain through a quadratic so
// low keys dominate, plus the pathological single hot key where all state
// lives on one shard and every other replica only ever sees punctuation
// broadcasts.
func TestShardedSkewedKeys(t *testing.T) {
	w := chainWorkload(2*stream.Second, 6*stream.Second)
	const dom = 16
	for _, tc := range []struct {
		name string
		key  func(int64) int64
	}{
		{"quadratic-skew", func(k int64) int64 { return (k * k) / dom }},
		{"single-hot-key", func(int64) int64 { return 3 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			input := testInput(t, 3, dom)
			for _, tp := range input {
				tp.Key = tc.key(tp.Key)
			}
			ref := engineRef(t, w, input)
			if ref.TotalOutputs() == 0 {
				t.Fatal("reference produced no results")
			}
			for _, p := range shardCounts {
				res := runSharded(t, w, input, Config{Shards: p, PunctEvery: 64})
				assertByteIdentical(t, fmt.Sprintf("p=%d", p), res, ref)
			}
		})
	}
}

// TestShardedFilteredWorkload shards a chain with pushed-down selections on
// both streams: partitioning by key is orthogonal to the lineage machinery.
func TestShardedFilteredWorkload(t *testing.T) {
	w := plan.Workload{
		Queries: []plan.Query{
			{Window: 2 * stream.Second},
			{Window: 6 * stream.Second, Filter: stream.Threshold{S: 0.5}},
			{Window: 9 * stream.Second, Filter: stream.Threshold{S: 0.3}, FilterB: stream.Threshold{S: 0.6}},
		},
		Join: stream.Equijoin{},
	}
	input := testInput(t, 5, 8)
	ref := engineRef(t, w, input)
	if ref.TotalOutputs() == 0 {
		t.Fatal("reference produced no results")
	}
	for _, p := range []int{2, 5} {
		res := runSharded(t, w, input, Config{Shards: p})
		assertByteIdentical(t, fmt.Sprintf("filtered p=%d", p), res, ref)
	}
}

// TestShardedMigrationMidStream re-slices every replica mid-stream — merge
// to one slice, then split at a boundary the chain never had — and checks
// the results stay byte-identical to a sequential session migrated at the
// same stream position.
func TestShardedMigrationMidStream(t *testing.T) {
	w := chainWorkload(3*stream.Second, 8*stream.Second)
	input := testInput(t, 11, 16)
	half := len(input) / 2
	mig1 := []stream.Time{8 * stream.Second}
	mig2 := []stream.Time{5 * stream.Second, 8 * stream.Second}

	// Sequential reference: same migrations at the same position.
	refSP, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Migratable: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := engine.NewSession(refSP.Plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range input {
		if i == half {
			if err := refSP.MigrateTo(refSess, mig1); err != nil {
				t.Fatal(err)
			}
			if err := refSP.MigrateTo(refSess, mig2); err != nil {
				t.Fatal(err)
			}
		}
		if err := refSess.Feed(tp); err != nil {
			t.Fatal(err)
		}
	}
	ref := refSess.Finish()
	if ref.OrderViolations != 0 {
		t.Fatalf("reference migration run had %d order violations", ref.OrderViolations)
	}

	for _, p := range shardCounts {
		e, err := New(Config{Shards: p, Collect: true},
			factory(w, plan.StateSliceConfig{Migratable: true}))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Consume(stream.NewSliceSource(input[:half])); err != nil {
			t.Fatal(err)
		}
		ends, err := e.Migrate(mig1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ends) != 1 {
			t.Fatalf("p=%d: %d slices after merge migration", p, len(ends))
		}
		ends, err = e.Migrate(mig2)
		if err != nil {
			t.Fatal(err)
		}
		if len(ends) != 2 {
			t.Fatalf("p=%d: %d slices after split migration", p, len(ends))
		}
		if err := e.Consume(stream.NewSliceSource(input[half:])); err != nil {
			t.Fatal(err)
		}
		res, err := e.Finish()
		if err != nil {
			t.Fatal(err)
		}
		assertByteIdentical(t, fmt.Sprintf("migrated p=%d", p), res, ref)
	}
}

// TestShardedErrors pins the executor's validation surface.
func TestShardedErrors(t *testing.T) {
	w := chainWorkload(2 * stream.Second)
	if _, err := New(Config{Shards: 0}, factory(w, plan.StateSliceConfig{})); err == nil {
		t.Error("Shards=0 must fail")
	}
	e, err := New(Config{Shards: 2}, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	b := stream.ManualBuilder{}
	t2 := b.Add(stream.StreamA, 2*stream.Second)
	t1 := b.Add(stream.StreamB, 1*stream.Second)
	if err := e.Feed(t2); err != nil {
		t.Fatal(err)
	}
	if err := e.Feed(t1); err == nil {
		t.Error("out-of-order feed must fail")
	}
	if _, err := e.Migrate([]stream.Time{1 * stream.Second}); err == nil {
		t.Error("migrating a non-migratable replica must fail")
	}
	if _, err := e.Finish(); err != nil {
		t.Fatalf("finish after rejected feed: %v", err)
	}
	if err := e.Feed(t1); err == nil {
		t.Error("Feed after Finish must fail")
	}
}

// TestPartitionerSpreadsAndIsDeterministic checks the partitioner covers
// every shard on a modest uniform domain and never moves a key.
func TestPartitionerSpreadsAndIsDeterministic(t *testing.T) {
	p := NewPartitioner(8)
	seen := make(map[int]int)
	for k := int64(0); k < 64; k++ {
		s := p.Shard(k)
		if s < 0 || s >= 8 {
			t.Fatalf("key %d mapped to shard %d", k, s)
		}
		if s2 := p.Shard(k); s2 != s {
			t.Fatalf("key %d not deterministic: %d then %d", k, s, s2)
		}
		seen[s]++
	}
	if len(seen) != 8 {
		t.Errorf("64 uniform keys covered only %d of 8 shards", len(seen))
	}
	if NewPartitioner(1).Shard(12345) != 0 {
		t.Error("single shard must own every key")
	}
}

// TestPartitionerSpreadsClusteredKeys pins the reason the partitioner mixes
// through splitmix64 before the modulo: consecutive or clustered key values
// — the common case for auto-incremented or range-allocated keys, which a
// plain `key mod p` would send to shards round-robin within each cluster
// but pathologically for stride-p clusters — must still spread near
// uniformly across every shard. The mix is deterministic, so the bounds are
// exact, not flaky.
func TestPartitionerSpreadsClusteredKeys(t *testing.T) {
	const shards = 8
	p := NewPartitioner(shards)
	for _, tc := range []struct {
		name string
		keys func() []int64
	}{
		{"consecutive", func() []int64 {
			keys := make([]int64, 0, 4096)
			for k := int64(1_000_000); k < 1_004_096; k++ {
				keys = append(keys, k)
			}
			return keys
		}},
		{"strided clusters", func() []int64 {
			// Three far-apart clusters with stride equal to the shard
			// count — the worst case for an unmixed modulo, which would
			// map each whole cluster onto a single shard.
			var keys []int64
			for _, base := range []int64{0, 1 << 32, 7_777_777_777} {
				for i := int64(0); i < 1024; i++ {
					keys = append(keys, base+i*shards)
				}
			}
			return keys
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			keys := tc.keys()
			counts := make([]int, shards)
			for _, k := range keys {
				counts[p.Shard(k)]++
			}
			mean := float64(len(keys)) / shards
			for s, c := range counts {
				if f := float64(c); f < 0.75*mean || f > 1.25*mean {
					t.Errorf("shard %d holds %d of %d keys (mean %.0f); clustered keys must spread near uniformly",
						s, c, len(keys), mean)
				}
			}
		})
	}
}
