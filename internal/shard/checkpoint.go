package shard

import (
	"encoding/binary"
	"fmt"

	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Sharded checkpoint: a barrier-consistent snapshot of the whole executor,
// composed from one chain checkpoint per replica plus the driver's own feed
// frontier. The snapshot is taken inside the same flush-command-ack barrier
// migration and admission use, so every replica snapshots at the same global
// stream position and nothing is in flight between the driver and the
// runners.

// ShardedCheckpointVersion is the current blob version for sharded
// composite checkpoints.
const ShardedCheckpointVersion uint16 = 1

// Checkpoint is a barrier-consistent snapshot of a sharded run: the driver
// feed frontier, the partitioning shape and one chain checkpoint per
// replica. Restore it with Config.Restore on an executor built with the
// same shard count, partitioning and workload.
type Checkpoint struct {
	// Shards is the replica count the snapshot was taken with; restore
	// requires the same count (the per-replica states are partition-shaped).
	Shards int
	// Fed, RepFed, SincePunct and LastTime are the driver's feed frontier:
	// source tuples fed, per-replica deliveries, tuples since the last
	// punctuation broadcast, and the latest fed timestamp.
	Fed        int
	RepFed     int
	SincePunct int
	LastTime   stream.Time
	// Band records the range-partitioning shape, nil under hash
	// partitioning; restore requires an identical configuration.
	Band *Band
	// Replicas holds one chain snapshot per shard, in shard order.
	Replicas []*plan.ChainCheckpoint
}

// StateTuples returns the total number of window-state tuples across every
// replica — the snapshot's dominant size component.
func (cp *Checkpoint) StateTuples() int {
	n := 0
	for _, r := range cp.Replicas {
		if r != nil {
			n += r.StateTuples()
		}
	}
	return n
}

// Checkpoint takes a barrier-consistent snapshot of the whole executor: the
// pending feed slabs are flushed, every replica drains to quiescence and
// snapshots its chain at the same global stream position, and feeding
// resumes. The executor continues unaffected — the snapshot shares no
// mutable state with the live run.
func (e *Executor) Checkpoint() (*Checkpoint, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usable("Checkpoint"); err != nil {
		return nil, err
	}
	snap := make([]*plan.ChainCheckpoint, len(e.replicas))
	if err := e.barrier(ctl{snap: snap}); err != nil {
		return nil, err
	}
	for i, cp := range snap {
		if cp == nil {
			return nil, fmt.Errorf("shard: Checkpoint: replica %d produced no snapshot", i)
		}
	}
	cp := &Checkpoint{
		Shards:     e.cfg.Shards,
		Fed:        e.fed,
		RepFed:     e.repFed,
		SincePunct: e.sincePunct,
		LastTime:   e.lastTime,
		Replicas:   snap,
	}
	if e.cfg.Band != nil {
		b := *e.cfg.Band
		cp.Band = &b
	}
	return cp, nil
}

// validateRestore checks a snapshot against the executor configuration it
// is being restored into. Shape mismatches (shard count, partitioning) are
// configuration errors caught before any goroutine starts.
func validateRestore(cfg Config, cp *Checkpoint) error {
	if cp.Shards != cfg.Shards {
		return fmt.Errorf("shard: restore: checkpoint was taken with %d shards, executor has %d — per-replica states are partition-shaped and cannot be re-sharded", cp.Shards, cfg.Shards)
	}
	if len(cp.Replicas) != cp.Shards {
		return fmt.Errorf("shard: restore: checkpoint has %d replica snapshots for %d shards", len(cp.Replicas), cp.Shards)
	}
	for i, r := range cp.Replicas {
		if r == nil {
			return fmt.Errorf("shard: restore: replica %d snapshot is nil", i)
		}
	}
	switch {
	case cp.Band == nil && cfg.Band != nil:
		return fmt.Errorf("shard: restore: checkpoint was taken under hash partitioning but the executor is band-partitioned")
	case cp.Band != nil && cfg.Band == nil:
		return fmt.Errorf("shard: restore: checkpoint was taken under band partitioning but the executor is hash-partitioned")
	case cp.Band != nil && *cp.Band != *cfg.Band:
		return fmt.Errorf("shard: restore: checkpoint band %+v does not match the executor band %+v", *cp.Band, *cfg.Band)
	}
	if cfg.RestoreFn == nil {
		return fmt.Errorf("shard: restore: Config.RestoreFn is required to rebuild replicas from a checkpoint")
	}
	return nil
}

// Encode serializes the sharded checkpoint: a composite header followed by
// the concatenated chain blobs of every replica.
func (cp *Checkpoint) Encode() ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, plan.CheckpointMagic)
	buf = binary.LittleEndian.AppendUint16(buf, ShardedCheckpointVersion)
	buf = append(buf, plan.KindSharded)
	buf = binary.AppendUvarint(buf, uint64(cp.Shards))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Fed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.RepFed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.SincePunct))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.LastTime))
	if cp.Band != nil {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Band.Width))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Band.MinKey))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Band.MaxKey))
	} else {
		buf = append(buf, 0)
	}
	if len(cp.Replicas) != cp.Shards {
		return nil, fmt.Errorf("shard: checkpoint encode: %d replica snapshots for %d shards", len(cp.Replicas), cp.Shards)
	}
	for i, r := range cp.Replicas {
		if r == nil {
			return nil, fmt.Errorf("shard: checkpoint encode: replica %d snapshot is nil", i)
		}
		var err error
		if buf, err = r.AppendTo(buf); err != nil {
			return nil, fmt.Errorf("shard: checkpoint encode: replica %d: %w", i, err)
		}
	}
	return buf, nil
}

// DecodeCheckpoint decodes a sharded composite checkpoint blob.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 7 {
		return nil, fmt.Errorf("shard: checkpoint decode: truncated header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != plan.CheckpointMagic {
		return nil, fmt.Errorf("shard: checkpoint decode: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != ShardedCheckpointVersion {
		return nil, fmt.Errorf("shard: checkpoint decode: unsupported sharded blob version %d (this build reads version %d)", v, ShardedCheckpointVersion)
	}
	if k := data[6]; k != plan.KindSharded {
		return nil, fmt.Errorf("shard: checkpoint decode: expected a sharded blob, got kind %d", k)
	}
	rest := data[7:]
	shards, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("shard: checkpoint decode: truncated shard count")
	}
	rest = rest[n:]
	if len(rest) < 33 {
		return nil, fmt.Errorf("shard: checkpoint decode: truncated frontier")
	}
	cp := &Checkpoint{
		Shards:     int(shards),
		Fed:        int(binary.LittleEndian.Uint64(rest)),
		RepFed:     int(binary.LittleEndian.Uint64(rest[8:])),
		SincePunct: int(binary.LittleEndian.Uint64(rest[16:])),
		LastTime:   stream.Time(binary.LittleEndian.Uint64(rest[24:])),
	}
	hasBand := rest[32]
	rest = rest[33:]
	if hasBand == 1 {
		if len(rest) < 24 {
			return nil, fmt.Errorf("shard: checkpoint decode: truncated band shape")
		}
		cp.Band = &Band{
			Width:  int64(binary.LittleEndian.Uint64(rest)),
			MinKey: int64(binary.LittleEndian.Uint64(rest[8:])),
			MaxKey: int64(binary.LittleEndian.Uint64(rest[16:])),
		}
		rest = rest[24:]
	}
	for i := 0; i < cp.Shards; i++ {
		r, rem, err := plan.DecodeChainCheckpoint(rest)
		if err != nil {
			return nil, fmt.Errorf("shard: checkpoint decode: replica %d: %w", i, err)
		}
		cp.Replicas = append(cp.Replicas, r)
		rest = rem
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("shard: checkpoint decode: %d trailing bytes after the last replica blob", len(rest))
	}
	return cp, nil
}
