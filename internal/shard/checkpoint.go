package shard

import (
	"encoding/binary"
	"fmt"

	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Sharded checkpoint: a barrier-consistent snapshot of the whole executor,
// composed from one chain checkpoint per replica plus the driver's own feed
// frontier. The snapshot is taken inside the same flush-command-ack barrier
// migration and admission use, so every replica snapshots at the same global
// stream position and nothing is in flight between the driver and the
// runners.

// ShardedCheckpointVersion is the current blob version for sharded
// composite checkpoints. Version 2 added the learned ownership cuts
// (adaptive rebalancing); version-1 blobs decode with nil cuts — the
// fixed Build-time split, which is what version 1 always ran.
const ShardedCheckpointVersion uint16 = 2

// Checkpoint is a barrier-consistent snapshot of a sharded run: the driver
// feed frontier, the partitioning shape and one chain checkpoint per
// replica. Restore it with Config.Restore on an executor built with the
// same shard count, partitioning and workload.
type Checkpoint struct {
	// Shards is the replica count the snapshot was taken with; restore
	// requires the same count (the per-replica states are partition-shaped).
	Shards int
	// Fed, RepFed, SincePunct and LastTime are the driver's feed frontier:
	// source tuples fed, per-replica deliveries, tuples since the last
	// punctuation broadcast, and the latest fed timestamp.
	Fed        int
	RepFed     int
	SincePunct int
	LastTime   stream.Time
	// Band records the range-partitioning shape, nil under hash
	// partitioning; restore requires an identical configuration.
	Band *Band
	// BandCuts and HashCuts record the learned equi-depth ownership cuts
	// in effect when the snapshot was taken (RangePartitioner.Cuts /
	// Partitioner.Cuts) — the per-replica states are partitioned by them,
	// so restore re-installs them. nil means the fixed Build-time split.
	BandCuts []int64
	HashCuts []uint64
	// Replicas holds one chain snapshot per shard, in shard order.
	Replicas []*plan.ChainCheckpoint
}

// StateTuples returns the total number of window-state tuples across every
// replica — the snapshot's dominant size component.
func (cp *Checkpoint) StateTuples() int {
	n := 0
	for _, r := range cp.Replicas {
		if r != nil {
			n += r.StateTuples()
		}
	}
	return n
}

// Checkpoint takes a barrier-consistent snapshot of the whole executor: the
// pending feed slabs are flushed, every replica drains to quiescence and
// snapshots its chain at the same global stream position, and feeding
// resumes. The executor continues unaffected — the snapshot shares no
// mutable state with the live run.
func (e *Executor) Checkpoint() (*Checkpoint, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usable("Checkpoint"); err != nil {
		return nil, err
	}
	snap := make([]*plan.ChainCheckpoint, len(e.replicas))
	if err := e.barrier(ctl{snap: snap}); err != nil {
		return nil, err
	}
	for i, cp := range snap {
		if cp == nil {
			return nil, fmt.Errorf("shard: Checkpoint: replica %d produced no snapshot", i)
		}
	}
	cp := &Checkpoint{
		Shards:     e.cfg.Shards,
		Fed:        e.fed,
		RepFed:     e.repFed,
		SincePunct: e.sincePunct,
		LastTime:   e.lastTime,
		Replicas:   snap,
	}
	if e.cfg.Band != nil {
		b := *e.cfg.Band
		cp.Band = &b
	}
	if e.rpart != nil {
		cp.BandCuts = append([]int64(nil), e.rpart.Cuts()...)
	} else {
		cp.HashCuts = append([]uint64(nil), e.part.Cuts()...)
	}
	return cp, nil
}

// validateRestore checks a snapshot against the executor configuration it
// is being restored into. Shape mismatches (shard count, partitioning) are
// configuration errors caught before any goroutine starts.
func validateRestore(cfg Config, cp *Checkpoint) error {
	if cp.Shards != cfg.Shards {
		return fmt.Errorf("shard: restore: checkpoint was taken with %d shards, executor has %d — per-replica states are partition-shaped and cannot be re-sharded", cp.Shards, cfg.Shards)
	}
	if len(cp.Replicas) != cp.Shards {
		return fmt.Errorf("shard: restore: checkpoint has %d replica snapshots for %d shards", len(cp.Replicas), cp.Shards)
	}
	for i, r := range cp.Replicas {
		if r == nil {
			return fmt.Errorf("shard: restore: replica %d snapshot is nil", i)
		}
	}
	switch {
	case cp.Band == nil && cfg.Band != nil:
		return fmt.Errorf("shard: restore: checkpoint was taken under hash partitioning but the executor is band-partitioned")
	case cp.Band != nil && cfg.Band == nil:
		return fmt.Errorf("shard: restore: checkpoint was taken under band partitioning but the executor is hash-partitioned")
	case cp.Band != nil && *cp.Band != *cfg.Band:
		return fmt.Errorf("shard: restore: checkpoint band %+v does not match the executor band %+v", *cp.Band, *cfg.Band)
	}
	switch {
	case cp.BandCuts != nil && cfg.Band == nil:
		return fmt.Errorf("shard: restore: checkpoint carries band ownership cuts but the executor is hash-partitioned")
	case cp.HashCuts != nil && cfg.Band != nil:
		return fmt.Errorf("shard: restore: checkpoint carries hash ownership cuts but the executor is band-partitioned")
	case cp.BandCuts != nil && len(cp.BandCuts) != cp.Shards-1:
		return fmt.Errorf("shard: restore: checkpoint has %d band cuts for %d shards", len(cp.BandCuts), cp.Shards)
	case cp.HashCuts != nil && len(cp.HashCuts) != cp.Shards-1:
		return fmt.Errorf("shard: restore: checkpoint has %d hash cuts for %d shards", len(cp.HashCuts), cp.Shards)
	}
	if cfg.RestoreFn == nil {
		return fmt.Errorf("shard: restore: Config.RestoreFn is required to rebuild replicas from a checkpoint")
	}
	return nil
}

// Encode serializes the sharded checkpoint: a composite header followed by
// the concatenated chain blobs of every replica.
func (cp *Checkpoint) Encode() ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, plan.CheckpointMagic)
	buf = binary.LittleEndian.AppendUint16(buf, ShardedCheckpointVersion)
	buf = append(buf, plan.KindSharded)
	buf = binary.AppendUvarint(buf, uint64(cp.Shards))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Fed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.RepFed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.SincePunct))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.LastTime))
	if cp.Band != nil {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Band.Width))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Band.MinKey))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Band.MaxKey))
	} else {
		buf = append(buf, 0)
	}
	// Version 2: the learned ownership cuts (a zero count means the fixed
	// Build-time split was in effect — nil round-trips as nil because both
	// cut vectors are non-empty whenever they are non-nil: len = Shards-1).
	buf = binary.AppendUvarint(buf, uint64(len(cp.BandCuts)))
	for _, c := range cp.BandCuts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(cp.HashCuts)))
	for _, c := range cp.HashCuts {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	if len(cp.Replicas) != cp.Shards {
		return nil, fmt.Errorf("shard: checkpoint encode: %d replica snapshots for %d shards", len(cp.Replicas), cp.Shards)
	}
	for i, r := range cp.Replicas {
		if r == nil {
			return nil, fmt.Errorf("shard: checkpoint encode: replica %d snapshot is nil", i)
		}
		var err error
		if buf, err = r.AppendTo(buf); err != nil {
			return nil, fmt.Errorf("shard: checkpoint encode: replica %d: %w", i, err)
		}
	}
	return buf, nil
}

// DecodeCheckpoint decodes a sharded composite checkpoint blob.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 7 {
		return nil, fmt.Errorf("shard: checkpoint decode: truncated header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != plan.CheckpointMagic {
		return nil, fmt.Errorf("shard: checkpoint decode: bad magic %#x", m)
	}
	version := binary.LittleEndian.Uint16(data[4:])
	if version < 1 || version > ShardedCheckpointVersion {
		return nil, fmt.Errorf("shard: checkpoint decode: unsupported sharded blob version %d (this build reads versions 1-%d)", version, ShardedCheckpointVersion)
	}
	if k := data[6]; k != plan.KindSharded {
		return nil, fmt.Errorf("shard: checkpoint decode: expected a sharded blob, got kind %d", k)
	}
	rest := data[7:]
	shards, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("shard: checkpoint decode: truncated shard count")
	}
	rest = rest[n:]
	if len(rest) < 33 {
		return nil, fmt.Errorf("shard: checkpoint decode: truncated frontier")
	}
	cp := &Checkpoint{
		Shards:     int(shards),
		Fed:        int(binary.LittleEndian.Uint64(rest)),
		RepFed:     int(binary.LittleEndian.Uint64(rest[8:])),
		SincePunct: int(binary.LittleEndian.Uint64(rest[16:])),
		LastTime:   stream.Time(binary.LittleEndian.Uint64(rest[24:])),
	}
	hasBand := rest[32]
	rest = rest[33:]
	if hasBand == 1 {
		if len(rest) < 24 {
			return nil, fmt.Errorf("shard: checkpoint decode: truncated band shape")
		}
		cp.Band = &Band{
			Width:  int64(binary.LittleEndian.Uint64(rest)),
			MinKey: int64(binary.LittleEndian.Uint64(rest[8:])),
			MaxKey: int64(binary.LittleEndian.Uint64(rest[16:])),
		}
		rest = rest[24:]
	}
	if version >= 2 {
		// The learned ownership cuts (version-1 blobs predate rebalancing
		// and always ran the fixed split).
		readCuts := func(section string) ([]uint64, error) {
			n, w := binary.Uvarint(rest)
			if w <= 0 {
				return nil, fmt.Errorf("shard: checkpoint decode: truncated %s cut count", section)
			}
			rest = rest[w:]
			if n == 0 {
				return nil, nil
			}
			if uint64(len(rest)) < 8*n {
				return nil, fmt.Errorf("shard: checkpoint decode: truncated %s cuts", section)
			}
			cuts := make([]uint64, n)
			for i := range cuts {
				cuts[i] = binary.LittleEndian.Uint64(rest[8*i:])
			}
			rest = rest[8*n:]
			return cuts, nil
		}
		bc, err := readCuts("band")
		if err != nil {
			return nil, err
		}
		for _, c := range bc {
			cp.BandCuts = append(cp.BandCuts, int64(c))
		}
		if cp.HashCuts, err = readCuts("hash"); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cp.Shards; i++ {
		r, rem, err := plan.DecodeChainCheckpoint(rest)
		if err != nil {
			return nil, fmt.Errorf("shard: checkpoint decode: replica %d: %w", i, err)
		}
		cp.Replicas = append(cp.Replicas, r)
		rest = rem
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("shard: checkpoint decode: %d trailing bytes after the last replica blob", len(rest))
	}
	return cp, nil
}
