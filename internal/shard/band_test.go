package shard

import (
	"fmt"
	"math"
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// These tests pin band-partitioned sharding: contiguous owner ranges with
// boundary replication and merge-side duplicate suppression must deliver
// byte-identical per-query result sequences to the sequential engine for
// every shard count and band width, on both merge topologies, including the
// distributions range partitioning handles worst (skewed and
// boundary-clustered keys) and the B = 0 degenerate case that must match an
// equijoin exactly.

// bandWidths is the width sweep of the equivalence matrix: the equijoin
// degenerate, a small band, and a band wider than the whole key domain
// (every tuple replicated everywhere).
func bandWidths(domain int64) []int64 { return []int64{0, 1, 4 * domain} }

// bandWorkload builds a band-join workload over the given windows.
func bandWorkload(width int64, windows ...stream.Time) plan.Workload {
	w := plan.Workload{Join: stream.BandJoin{B: width}}
	for _, win := range windows {
		w.Queries = append(w.Queries, plan.Query{Window: win})
	}
	return w
}

// TestBandValidation pins the configuration surface of band partitioning.
func TestBandValidation(t *testing.T) {
	if err := (Band{Width: -1, MinKey: 0, MaxKey: 9}).Validate(); err == nil {
		t.Error("negative band width must fail")
	}
	if err := (Band{Width: 1, MinKey: 5, MaxKey: 4}).Validate(); err == nil {
		t.Error("empty key range must fail")
	}
	w := bandWorkload(1, 2*stream.Second)
	if _, err := New(Config{Shards: 2, Band: &Band{Width: -1, MinKey: 0, MaxKey: 9}},
		factory(w, plan.StateSliceConfig{})); err == nil {
		t.Error("New must reject an invalid band configuration")
	}
}

// TestBandRangePartitionerOwnership checks the partitioner's structural
// guarantees exhaustively on a small domain with out-of-range keys: the
// owner is monotone in the key, the replication span always contains the
// owner, and — the lemma byte-identical band sharding rests on — for every
// pair of keys within the band width, the owner shard of either key lies
// inside the replication span of the other, so the owner of a probing male
// always holds the matching partner.
func TestBandRangePartitionerOwnership(t *testing.T) {
	const dom = 40
	for _, shards := range []int{1, 2, 3, 4, 8} {
		for _, width := range []int64{0, 1, 3, 17, dom, math.MaxInt64} {
			rp, err := NewRangePartitioner(shards, Band{Width: width, MinKey: 0, MaxKey: dom - 1})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("p=%d B=%d", shards, width)
			prev := 0
			for k := int64(-10); k < dom+10; k++ {
				o := rp.Owner(k)
				if o < 0 || o >= shards {
					t.Fatalf("%s: key %d owned by shard %d", label, k, o)
				}
				if o < prev {
					t.Fatalf("%s: owner not monotone at key %d (%d after %d)", label, k, o, prev)
				}
				prev = o
				lo, hi := rp.Replicas(k)
				if lo > o || hi < o {
					t.Fatalf("%s: replication span [%d,%d] of key %d misses owner %d", label, lo, hi, k, o)
				}
				if width == 0 && (lo != o || hi != o) {
					t.Fatalf("%s: B=0 must not replicate (key %d span [%d,%d])", label, k, lo, hi)
				}
			}
			if width == math.MaxInt64 {
				if lo, hi := rp.Replicas(0); lo != 0 || hi != shards-1 {
					t.Fatalf("%s: unbounded band must replicate everywhere, got [%d,%d]", label, lo, hi)
				}
			}
			// The pair lemma, over in- and out-of-domain keys. Cap the
			// reach so the loop stays small for huge widths.
			reach := width
			if reach > dom {
				reach = dom
			}
			for ka := int64(-10); ka < dom+10; ka++ {
				lo, hi := rp.Replicas(ka)
				for kb := ka - reach; kb <= ka+reach; kb++ {
					if o := rp.Owner(kb); o < lo || o > hi {
						t.Fatalf("%s: owner %d of key %d outside replication span [%d,%d] of matching key %d",
							label, o, kb, lo, hi, ka)
					}
				}
			}
		}
	}

	// The split is balanced: every shard owns floor(dom/p) or ceil(dom/p)
	// in-domain keys, including uneven splits and domains smaller than the
	// shard count (no trailing keyless shards while earlier shards double
	// up).
	for _, tc := range []struct {
		dom    int64
		shards int
	}{
		{64, 8}, {12, 8}, {11, 4}, {5, 8}, {40, 7},
	} {
		rp, err := NewRangePartitioner(tc.shards, Band{Width: 1, MinKey: 0, MaxKey: tc.dom - 1})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, tc.shards)
		for k := int64(0); k < tc.dom; k++ {
			counts[rp.Owner(k)]++
		}
		lo, hi := int(tc.dom)/tc.shards, (int(tc.dom)+tc.shards-1)/tc.shards
		for s, c := range counts {
			if c < lo || c > hi {
				t.Errorf("dom=%d p=%d: shard %d owns %d keys, want %d..%d (balanced split)",
					tc.dom, tc.shards, s, c, lo, hi)
			}
		}
	}
}

// bandConfig returns a band executor configuration over [0, dom-1].
func bandConfig(p int, width, dom int64) Config {
	return Config{Shards: p, Band: &Band{Width: width, MinKey: 0, MaxKey: dom - 1}, PunctEvery: 64}
}

// TestBandShardedByteIdentical is the band equivalence matrix:
// p ∈ {1,2,4,8} × B ∈ {0, 1, >domain} × {uniform, quadratic-skew,
// boundary-clustered} keys, on both merge topologies, byte-identical to the
// sequential engine. Keys 7 and 8 straddle an owner-range boundary at every
// tested shard count for the 16-key domain (ranges split at multiples of
// 16/p), making the boundary-clustered case exercise maximal replication
// and suppression traffic.
func TestBandShardedByteIdentical(t *testing.T) {
	const dom = 16
	windows := []stream.Time{2 * stream.Second, 5 * stream.Second, 9 * stream.Second}
	for _, tc := range []struct {
		name string
		key  func(int64) int64
	}{
		{"uniform", func(k int64) int64 { return k }},
		{"quadratic-skew", func(k int64) int64 { return (k * k) / dom }},
		{"boundary-clustered", func(k int64) int64 { return 7 + k%2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			input := testInput(t, 9, dom)
			for _, tp := range input {
				tp.Key = tc.key(tp.Key)
			}
			for _, width := range bandWidths(dom) {
				w := bandWorkload(width, windows...)
				ref := engineRef(t, w, input)
				if width > 0 && ref.TotalOutputs() == 0 {
					t.Fatal("reference produced no results; the equivalence check is vacuous")
				}
				for _, p := range shardCounts {
					label := fmt.Sprintf("B=%d p=%d", width, p)
					res := runSharded(t, w, input, bandConfig(p, width, dom))
					assertByteIdentical(t, label, res, ref)
					res = runSlicedMerge(t, w, input, bandConfig(p, width, dom))
					assertByteIdentical(t, label+" slice-merge", res, ref)
				}
			}
		})
	}
}

// TestBandFilteredWorkload shards a band chain with pushed-down selections
// on both streams — the general merge path's main use case. Filters matter
// beyond coverage: the chain's lineage marker writes Tuple.Level/CondMask
// in place, so this test (run under -race in CI) is what pins the feed
// fan-out's copy-per-extra-replica rule — a shared tuple instance across
// replica goroutines would race exactly here.
func TestBandFilteredWorkload(t *testing.T) {
	const dom = 16
	w := plan.Workload{
		Queries: []plan.Query{
			{Window: 2 * stream.Second},
			{Window: 6 * stream.Second, Filter: stream.Threshold{S: 0.5}},
			{Window: 9 * stream.Second, Filter: stream.Threshold{S: 0.3}, FilterB: stream.Threshold{S: 0.6}},
		},
		Join: stream.BandJoin{B: 2},
	}
	input := testInput(t, 21, dom)
	ref := engineRef(t, w, input)
	if ref.TotalOutputs() == 0 {
		t.Fatal("reference produced no results")
	}
	for _, p := range shardCounts {
		res := runSharded(t, w, input, bandConfig(p, 2, dom))
		assertByteIdentical(t, fmt.Sprintf("filtered band p=%d", p), res, ref)
	}
}

// TestBandZeroMatchesEquijoin pins the degenerate band: B = 0 sharded over
// contiguous ranges must reproduce the Equijoin workload's sequential
// results exactly — same pairs, same order — even though the partitioning
// scheme (ranges vs mixed hash) assigns keys to entirely different shards.
func TestBandZeroMatchesEquijoin(t *testing.T) {
	const dom = 12
	windows := []stream.Time{3 * stream.Second, 7 * stream.Second}
	input := testInput(t, 13, dom)
	eqRef := engineRef(t, chainWorkload(windows...), input)
	if eqRef.TotalOutputs() == 0 {
		t.Fatal("equijoin reference produced no results")
	}
	w := bandWorkload(0, windows...)
	for _, p := range shardCounts {
		res := runSharded(t, w, input, bandConfig(p, 0, dom))
		assertByteIdentical(t, fmt.Sprintf("band B=0 p=%d vs equijoin", p), res, eqRef)
		res = runSlicedMerge(t, w, input, bandConfig(p, 0, dom))
		assertByteIdentical(t, fmt.Sprintf("band B=0 p=%d slice-merge vs equijoin", p), res, eqRef)
	}
}

// TestBandDuplicateSuppression pins the owner rule directly: a
// boundary-straddling workload replicates tuples to both neighboring shards
// (visible in ReplicatedFeeds), both replicas produce the straddling pairs,
// and exactly one copy of each survives to the sinks — the per-query
// sequences match the sequential engine and no pair is delivered twice.
func TestBandDuplicateSuppression(t *testing.T) {
	const (
		dom   = 16 // p=2 splits ownership at key 8
		width = 1
	)
	w := bandWorkload(width, 4*stream.Second)
	// All keys on the boundary pair (7, 8): every tuple lands within the
	// band of the p=2 range split, so every tuple is fed to both shards
	// and every joined pair is produced twice before suppression.
	input := testInput(t, 17, 2)
	for _, tp := range input {
		tp.Key += 7
	}
	ref := engineRef(t, w, input)
	if ref.TotalOutputs() == 0 {
		t.Fatal("reference produced no results")
	}

	cfg := bandConfig(2, width, dom)
	cfg.Collect = true
	e, err := New(cfg, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(stream.NewSliceSource(input))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.ReplicatedFeeds(), 2*res.Inputs; got != want {
		t.Errorf("boundary-clustered feed replicated %d tuple deliveries, want %d (every tuple on both shards)", got, want)
	}
	assertByteIdentical(t, "boundary suppression", res, ref)
	seen := make(map[string]int)
	for _, tp := range res.Results[0] {
		seen[fmt.Sprintf("%d.%d-%d.%d", tp.A.Stream, tp.A.Ord, tp.B.Stream, tp.B.Ord)]++
	}
	for pair, n := range seen {
		if n != 1 {
			t.Errorf("pair %s delivered %d times; the owner rule must keep exactly one copy", pair, n)
		}
	}

	// Hash-partitioned runs report no inflation.
	eq, err := New(Config{Shards: 2}, factory(chainWorkload(4*stream.Second), plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	eqRes, err := eq.Run(stream.NewSliceSource(input))
	if err != nil {
		t.Fatal(err)
	}
	if got := eq.ReplicatedFeeds(); got != eqRes.Inputs {
		t.Errorf("hash partitioning reported %d replicated feeds for %d inputs", got, eqRes.Inputs)
	}
}

// TestBandMigration re-slices a band-partitioned chain mid-stream: the
// replication and suppression machinery is orthogonal to slice-layout
// surgery, so the migrated run must stay byte-identical to a sequential
// session migrated at the same position.
func TestBandMigration(t *testing.T) {
	const dom = 16
	w := bandWorkload(2, 3*stream.Second, 8*stream.Second)
	input := testInput(t, 19, dom)
	half := len(input) / 2
	target := []stream.Time{8 * stream.Second}

	refSP, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Migratable: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := engine.NewSession(refSP.Plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range input {
		if i == half {
			if err := refSP.MigrateTo(refSess, target); err != nil {
				t.Fatal(err)
			}
		}
		if err := refSess.Feed(tp); err != nil {
			t.Fatal(err)
		}
	}
	ref := refSess.Finish()

	for _, p := range []int{2, 4} {
		cfg := bandConfig(p, 2, dom)
		cfg.Collect = true
		e, err := New(cfg, factory(w, plan.StateSliceConfig{Migratable: true}))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Consume(stream.NewSliceSource(input[:half])); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Migrate(target); err != nil {
			t.Fatal(err)
		}
		if err := e.Consume(stream.NewSliceSource(input[half:])); err != nil {
			t.Fatal(err)
		}
		res, err := e.Finish()
		if err != nil {
			t.Fatal(err)
		}
		assertByteIdentical(t, fmt.Sprintf("band migrated p=%d", p), res, ref)
	}
}
