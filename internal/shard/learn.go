package shard

import "math/bits"

// Equi-depth boundary learning: turn the monitor's key-frequency histogram
// into ownership cuts that give every shard a near-equal share of the
// observed mass — the classical equi-depth histogram split, applied to the
// band partitioner's key domain or the hash partitioner's 64-bit hash space.
//
// The learner is deliberately conservative: it proposes cuts, predicts the
// resulting imbalance from the same histogram, and lets the caller compare
// that prediction against the measured status quo (planCuts in
// rebalance.go). Distributions no split can help — all mass on one key —
// predict no improvement and turn the rebalance into a no-op instead of a
// thrash.

// equiDepthBuckets returns p-1 strictly ascending bucket boundaries
// c_1 < ... < c_{p-1} in [1, nb-1] (shard k owns buckets [c_k, c_{k+1}),
// with c_0 = 0 and c_p = nb) splitting hist into near-equal mass: c_k is
// the first bucket whose prefix mass reaches k/p of the total, nudged where
// needed to keep the cuts distinct. Returns nil when no valid cut vector
// exists (fewer buckets than shards) or nothing was observed.
func equiDepthBuckets(hist []uint64, p int) []int {
	nb := len(hist)
	if p < 2 || nb < p {
		return nil
	}
	var total uint64
	for _, h := range hist {
		total += h
	}
	if total == 0 {
		return nil
	}
	cuts := make([]int, p-1)
	var cum uint64
	b := 0
	for k := 1; k < p; k++ {
		// target = total*k/p without overflowing the product.
		hi, lo := bits.Mul64(total, uint64(k))
		target, _ := bits.Div64(hi, lo, uint64(p))
		for b < nb && cum < target {
			cum += hist[b]
			b++
		}
		cuts[k-1] = b
	}
	// Nudge into validity: strictly ascending within [1, nb-1], leaving
	// room for the cuts after (forward pass) and before (backward pass)
	// each position. nb >= p guarantees both passes succeed.
	for k := range cuts {
		if lo := k + 1; cuts[k] < lo {
			cuts[k] = lo
		}
		if k > 0 && cuts[k] <= cuts[k-1] {
			cuts[k] = cuts[k-1] + 1
		}
	}
	for k := len(cuts) - 1; k >= 0; k-- {
		if hi := nb - (len(cuts) - k); cuts[k] > hi {
			cuts[k] = hi
		}
	}
	return cuts
}

// bucketShardWeights returns the per-shard histogram mass under the given
// bucket boundaries.
func bucketShardWeights(hist []uint64, cuts []int) []uint64 {
	w := make([]uint64, len(cuts)+1)
	s := 0
	for b, h := range hist {
		for s < len(cuts) && b >= cuts[s] {
			s++
		}
		w[s] += h
	}
	return w
}

// learnCuts proposes equi-depth ownership cuts for p shards from the
// monitor's histogram, returning the cut vector in the partitioner's cut
// space — key cuts under band partitioning (hashCuts nil), hash cuts under
// hash partitioning (bandCuts nil) — together with the predicted post-cut
// imbalance ratio. ok is false when no valid cut vector exists.
func (m *loadMonitor) learnCuts(p int) (bandCuts []int64, hashCuts []uint64, predicted float64, ok bool) {
	bc := equiDepthBuckets(m.hist, p)
	if bc == nil {
		return nil, nil, 0, false
	}
	predicted = imbalance(bucketShardWeights(m.hist, bc))
	if m.band {
		bandCuts = make([]int64, len(bc))
		for i, b := range bc {
			// The bucket's lower-edge key: distinct buckets map onto
			// distinct keys because the bucket width is >= 1 key (nb is
			// clamped to the domain size at construction).
			bandCuts[i] = int64(uint64(m.min) + m.bucketLowOffset(b))
		}
		return bandCuts, nil, predicted, true
	}
	hashCuts = make([]uint64, len(bc))
	for i, b := range bc {
		hashCuts[i] = m.bucketLowOffset(b)
	}
	return nil, hashCuts, predicted, true
}
