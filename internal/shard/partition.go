package shard

// Partitioner maps equijoin keys onto shard indexes. Tuples with equal keys
// land on the same shard, so each shard's chain replica holds exactly the
// window state its own males probe — the disjointness that makes sharded
// execution lossless for key-partitionable joins
// (stream.PartitionableByKey).
//
// Keys are mixed through a splitmix64-style finalizer before the modulo, so
// consecutive or clustered key values still spread across shards; heavy
// frequency skew on a single key value is irreducible (that key's whole
// state must live on one shard) and caps the achievable speedup instead.
type Partitioner struct {
	n uint64
}

// NewPartitioner returns a partitioner over the given shard count (>= 1).
func NewPartitioner(shards int) Partitioner {
	if shards < 1 {
		shards = 1
	}
	return Partitioner{n: uint64(shards)}
}

// Shards returns the shard count.
func (p Partitioner) Shards() int { return int(p.n) }

// Shard returns the shard index owning the key.
func (p Partitioner) Shard(key int64) int {
	if p.n <= 1 {
		return 0
	}
	return int(mix64(uint64(key)) % p.n)
}

// mix64 is the splitmix64 finalizer, a cheap full-avalanche bijection.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
