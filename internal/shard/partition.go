package shard

import "sort"

// Partitioner maps equijoin keys onto shard indexes. Tuples with equal keys
// land on the same shard, so each shard's chain replica holds exactly the
// window state its own males probe — the disjointness that makes sharded
// execution lossless for key-partitionable joins
// (stream.PartitionableByKey).
//
// Keys are mixed through a splitmix64-style finalizer before the modulo, so
// consecutive or clustered key values still spread across shards; heavy
// frequency skew on a single key value is irreducible (that key's whole
// state must live on one shard) and caps the achievable speedup instead.
//
// With learned cuts installed (SetCuts), the modulo is replaced by an
// equi-depth split of the 64-bit hash space: shard i owns hashes in
// [cuts[i-1], cuts[i]) with cuts[-1] = 0 and cuts[n-1] = 2^64. Equal keys
// still hash identically, so key-disjointness — the property sharded
// equijoin execution relies on — is preserved under any cut vector.
type Partitioner struct {
	n uint64
	// cuts, when non-nil, holds n-1 ascending hash-space boundaries:
	// cuts[i] is the smallest hash owned by shard i+1.
	cuts []uint64
}

// NewPartitioner returns a partitioner over the given shard count (>= 1).
func NewPartitioner(shards int) Partitioner {
	if shards < 1 {
		shards = 1
	}
	return Partitioner{n: uint64(shards)}
}

// Shards returns the shard count.
func (p Partitioner) Shards() int { return int(p.n) }

// Shard returns the shard index owning the key.
func (p Partitioner) Shard(key int64) int {
	if p.n <= 1 {
		return 0
	}
	h := mix64(uint64(key))
	if p.cuts != nil {
		return sort.Search(len(p.cuts), func(i int) bool { return p.cuts[i] > h })
	}
	return int(h % p.n)
}

// Cuts returns the installed hash-space boundaries (nil when the modulo
// split is in effect). The slice is the partitioner's own; callers must not
// mutate it.
func (p Partitioner) Cuts() []uint64 { return p.cuts }

// SetCuts installs learned equi-depth hash-space boundaries, or restores the
// modulo split when cuts is nil. len(cuts) must be Shards()-1 and the values
// strictly ascending; violations are rejected so a corrupt cut vector can
// never mis-route keys.
func (p *Partitioner) SetCuts(cuts []uint64) bool {
	if cuts == nil {
		p.cuts = nil
		return true
	}
	if uint64(len(cuts)) != p.n-1 {
		return false
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return false
		}
	}
	p.cuts = cuts
	return true
}

// mix64 is the splitmix64 finalizer, a cheap full-avalanche bijection.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
