package shard

import (
	"fmt"
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Executor-level rebalancing tests: a mid-stream Rebalance must keep the
// merged output byte-identical to the sequential engine on both merge
// topologies and both partitioning schemes, must refuse to move on
// unimprovable skew, and must round-trip its learned cuts through the
// sharded checkpoint format.

// restoreFn mirrors factory for the rebuild path.
func restoreFn(w plan.Workload, cfg plan.StateSliceConfig) func(int, *plan.ChainCheckpoint) (*plan.StateSlicePlan, error) {
	return func(_ int, cp *plan.ChainCheckpoint) (*plan.StateSlicePlan, error) {
		return plan.RestoreStateSlice(w, cfg, cp)
	}
}

// runRebalanced drives input through the executor with a manual Rebalance at
// each of the given positions, returning the final result and whether any
// rebalance moved state.
func runRebalanced(t *testing.T, e *Executor, input []*stream.Tuple, at ...int) (*engine.Result, bool) {
	t.Helper()
	moved := false
	prev := 0
	for _, pos := range append(at, len(input)) {
		if err := e.Consume(stream.NewSliceSource(input[prev:pos])); err != nil {
			t.Fatal(err)
		}
		if pos == len(input) {
			break
		}
		m, err := e.Rebalance()
		if err != nil {
			t.Fatal(err)
		}
		moved = moved || m
		prev = pos
	}
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res, moved
}

// TestRebalanceBandByteIdentical rebalances a quadratic-skew band feed
// mid-stream on every shard count and both merge topologies: ownership must
// actually move (the skew is clearly improvable) and the merged output must
// stay byte-identical to the sequential engine across the boundary.
func TestRebalanceBandByteIdentical(t *testing.T) {
	const dom = 64
	w := bandWorkload(1, 2*stream.Second, 5*stream.Second, 9*stream.Second)
	input := testInput(t, 9, dom)
	for _, tp := range input {
		tp.Key = (tp.Key * tp.Key) / dom
	}
	ref := engineRef(t, w, input)
	if ref.TotalOutputs() == 0 {
		t.Fatal("reference produced no results; the equivalence check is vacuous")
	}
	for _, p := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("p=%d/query-merge", p), func(t *testing.T) {
			cfg := bandConfig(p, 1, dom)
			cfg.Collect = true
			cfg.RestoreFn = restoreFn(w, plan.StateSliceConfig{})
			e, err := New(cfg, factory(w, plan.StateSliceConfig{}))
			if err != nil {
				t.Fatal(err)
			}
			res, moved := runRebalanced(t, e, input, len(input)/3)
			if !moved {
				t.Error("rebalance refused to move state on a quadratic skew")
			}
			assertByteIdentical(t, fmt.Sprintf("rebalanced band p=%d", p), res, ref)
		})
		t.Run(fmt.Sprintf("p=%d/slice-merge", p), func(t *testing.T) {
			cfg := bandConfig(p, 1, dom)
			cfg.Collect = true
			cfg.SliceMerge = true
			for _, q := range w.Queries {
				cfg.Windows = append(cfg.Windows, q.Window)
			}
			cfg.RestoreFn = restoreFn(w, plan.StateSliceConfig{RawSliceResults: true})
			e, err := New(cfg, factory(w, plan.StateSliceConfig{RawSliceResults: true}))
			if err != nil {
				t.Fatal(err)
			}
			res, moved := runRebalanced(t, e, input, len(input)/3)
			if !moved {
				t.Error("rebalance refused to move state on a quadratic skew")
			}
			assertByteIdentical(t, fmt.Sprintf("rebalanced band p=%d slice-merge", p), res, ref)
		})
	}
}

// TestRebalanceHashByteIdentical is the equijoin variant: learned hash-space
// cuts replace the fixed mix-mod split mid-stream, with byte-identical
// merged output.
func TestRebalanceHashByteIdentical(t *testing.T) {
	const dom = 16
	w := chainWorkload(2*stream.Second, 6*stream.Second)
	input := testInput(t, 5, dom)
	for _, tp := range input {
		tp.Key = (tp.Key * tp.Key) / dom
	}
	ref := engineRef(t, w, input)
	if ref.TotalOutputs() == 0 {
		t.Fatal("reference produced no results")
	}
	for _, p := range []int{2, 4} {
		cfg := Config{Shards: p, PunctEvery: 64, Collect: true,
			RestoreFn: restoreFn(w, plan.StateSliceConfig{})}
		e, err := New(cfg, factory(w, plan.StateSliceConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		res, moved := runRebalanced(t, e, input, len(input)/3, 2*len(input)/3)
		if !moved {
			t.Errorf("p=%d: no rebalance moved state on a skewed equijoin feed", p)
		}
		assertByteIdentical(t, fmt.Sprintf("rebalanced hash p=%d", p), res, ref)
	}
}

// TestRebalanceSingleHotKeyNoOp pins the degenerate skew end to end: all
// mass on one key is maximally imbalanced yet unimprovable, so Rebalance
// must report a no-op — and keep reporting it — while the session stays
// healthy and byte-identical.
func TestRebalanceSingleHotKeyNoOp(t *testing.T) {
	const dom = 16
	w := bandWorkload(1, 3*stream.Second, 7*stream.Second)
	input := testInput(t, 13, 2)
	for _, tp := range input {
		tp.Key = 13
	}
	ref := engineRef(t, w, input)
	cfg := bandConfig(4, 1, dom)
	cfg.Collect = true
	cfg.RestoreFn = restoreFn(w, plan.StateSliceConfig{})
	e, err := New(cfg, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Consume(stream.NewSliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if moved, err := e.Rebalance(); err != nil || moved {
			t.Fatalf("Rebalance on a single hot key = (%v, %v), want a clean no-op", moved, err)
		}
	}
	if err := e.Consume(stream.NewSliceSource(input[len(input)/2:])); err != nil {
		t.Fatal(err)
	}
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, "single hot key no-op", res, ref)
}

// TestRebalanceSingleShardNoOp: one replica has nothing to rebalance.
func TestRebalanceSingleShardNoOp(t *testing.T) {
	w := chainWorkload(2 * stream.Second)
	e, err := New(Config{Shards: 1, Collect: true,
		RestoreFn: restoreFn(w, plan.StateSliceConfig{})}, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Consume(stream.NewSliceSource(testInput(t, 1, 8)[:200])); err != nil {
		t.Fatal(err)
	}
	if moved, err := e.Rebalance(); err != nil || moved {
		t.Fatalf("Rebalance on one shard = (%v, %v), want a clean no-op", moved, err)
	}
	if _, err := e.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceCheckpointRoundTrip rebalances, checkpoints, round-trips the
// blob through Encode/Decode and restores into a fresh executor: the learned
// cuts must survive the trip, and the pre-checkpoint plus post-restore
// outputs must concatenate to exactly the sequential run.
func TestRebalanceCheckpointRoundTrip(t *testing.T) {
	const dom = 16
	w := bandWorkload(1, 2*stream.Second, 5*stream.Second)
	input := testInput(t, 9, dom)
	for _, tp := range input {
		tp.Key = (tp.Key * tp.Key) / dom
	}
	ref := engineRef(t, w, input)
	half := len(input) / 2

	cfg := bandConfig(4, 1, dom)
	cfg.Collect = true
	cfg.RestoreFn = restoreFn(w, plan.StateSliceConfig{})
	e, err := New(cfg, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Consume(stream.NewSliceSource(input[:half])); err != nil {
		t.Fatal(err)
	}
	moved, err := e.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("rebalance refused to move state; the round trip would not cover learned cuts")
	}
	liveCuts := append([]int64(nil), e.rpart.Cuts()...)
	if liveCuts == nil {
		t.Fatal("no learned cuts installed after a successful rebalance")
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(dec.BandCuts) != fmt.Sprint(liveCuts) {
		t.Fatalf("band cuts %v did not round-trip (got %v)", liveCuts, dec.BandCuts)
	}
	if dec.HashCuts != nil {
		t.Fatalf("band checkpoint decoded hash cuts %v", dec.HashCuts)
	}
	resA, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}

	rcfg := bandConfig(4, 1, dom)
	rcfg.Collect = true
	rcfg.RestoreFn = restoreFn(w, plan.StateSliceConfig{})
	rcfg.Restore = dec
	re, err := New(rcfg, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(re.rpart.Cuts()); got != fmt.Sprint(liveCuts) {
		t.Fatalf("restore installed cuts %s, want %v", got, liveCuts)
	}
	if err := re.Consume(stream.NewSliceSource(input[half:])); err != nil {
		t.Fatal(err)
	}
	resB, err := re.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// resA holds everything the pre-checkpoint half emitted (Finish after
	// Checkpoint finalizes the same session); resB continues from the
	// restored frontier. Together they must be the sequential run.
	for qi := range ref.Results {
		both := append(append([]*stream.Tuple(nil), resA.Results[qi]...), resB.Results[qi]...)
		if g, r := renderResults(both), renderResults(ref.Results[qi]); g != r {
			t.Errorf("query %d: checkpoint/restore around a rebalance is not byte-identical to the sequential run", qi)
		}
	}

	// A version-1 guard: cut vectors shaped wrong for the executor fail
	// restore validation up front.
	bad := *dec
	bad.BandCuts = []int64{1}
	if _, err := New(func() Config {
		c := bandConfig(4, 1, dom)
		c.RestoreFn = restoreFn(w, plan.StateSliceConfig{})
		c.Restore = &bad
		return c
	}(), factory(w, plan.StateSliceConfig{})); err == nil {
		t.Error("restore accepted a checkpoint with a wrong-length cut vector")
	}
}

// TestRebalanceOwnership pins the live ownership table: one entry per shard,
// contiguous band ranges under the installed cuts, shares summing to 1 once
// load was observed.
func TestRebalanceOwnership(t *testing.T) {
	const dom = 16
	w := bandWorkload(1, 3*stream.Second)
	input := testInput(t, 9, dom)
	for _, tp := range input {
		tp.Key = (tp.Key * tp.Key) / dom
	}
	cfg := bandConfig(4, 1, dom)
	cfg.Collect = true
	cfg.RestoreFn = restoreFn(w, plan.StateSliceConfig{})
	e, err := New(cfg, factory(w, plan.StateSliceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Consume(stream.NewSliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}
	if moved, err := e.Rebalance(); err != nil || !moved {
		t.Fatalf("Rebalance = (%v, %v), want a move", moved, err)
	}
	if err := e.Consume(stream.NewSliceSource(input[len(input)/2:])); err != nil {
		t.Fatal(err)
	}
	own := e.Ownership()
	if len(own) != 4 {
		t.Fatalf("Ownership returned %d entries for 4 shards", len(own))
	}
	var total float64
	for i, os := range own {
		if os.Shard != i {
			t.Errorf("entry %d describes shard %d", i, os.Shard)
		}
		if os.Range == "" {
			t.Errorf("shard %d has an empty range description", i)
		}
		total += os.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("ownership shares sum to %v, want 1", total)
	}
	if _, err := e.Finish(); err != nil {
		t.Fatal(err)
	}
}
