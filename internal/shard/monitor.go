package shard

import (
	"math"
	"math/bits"
)

// Load monitoring for adaptive rebalancing (see rebalance.go).
//
// The monitor is driver-owned and updated inline on the feed path with the
// driver gate held, so it needs no synchronization of its own. It keeps two
// things: an approximate key-frequency histogram over the partitioned domain
// — the key space under band partitioning, the mixed 64-bit hash space under
// hash partitioning — from which the equi-depth learner (learn.go) derives
// new ownership cuts, and cumulative per-replica delivery counters whose
// windowed deltas measure the live imbalance the trigger policy watches.

// histBuckets is the histogram resolution. 512 buckets resolve skew far
// finer than any practical shard count while costing one cache line-sized
// array walk per rebalance decision; small band domains shrink to one bucket
// per key, making the histogram exact.
const histBuckets = 512

// loadMonitor is the per-executor load monitor. All fields are driver-owned.
type loadMonitor struct {
	// nb is the bucket count; hist[b] counts fed tuples whose key (or key
	// hash) fell into bucket b, and total is their sum.
	nb    int
	hist  []uint64
	total uint64
	// band selects key-space bucketing over the [min, min+span) domain;
	// span 0 encodes the full int64 domain. Hash bucketing mixes the key
	// first, so bucket order follows hash order, matching the hash
	// partitioner's cut space.
	band bool
	min  int64
	span uint64
	// loads counts per-replica tuple deliveries since the last rebalance
	// (band replication counts each copy); prev snapshots loads at the last
	// policy evaluation, so evaluations compare windowed deltas, not the
	// whole history. sinceCheck counts fed tuples since that evaluation and
	// sustained counts consecutive over-threshold evaluations.
	loads      []uint64
	prev       []uint64
	sinceCheck int
	sustained  int
}

// newLoadMonitor builds a monitor for p replicas; band selects key-space
// bucketing (nil selects hash-space bucketing).
func newLoadMonitor(p int, band *Band) *loadMonitor {
	m := &loadMonitor{nb: histBuckets, loads: make([]uint64, p), prev: make([]uint64, p)}
	if band != nil {
		m.band = true
		m.min = band.MinKey
		m.span = uint64(band.MaxKey) - uint64(band.MinKey) + 1
		if m.span != 0 && m.span < histBuckets {
			// One bucket per key: the histogram becomes exact and every
			// bucket boundary maps onto a distinct key cut.
			m.nb = int(m.span)
		}
	}
	m.hist = make([]uint64, m.nb)
	return m
}

// bucket maps a key onto its histogram bucket, mirroring the partitioners'
// clamping so learned cuts and live ownership agree on the domain edges.
func (m *loadMonitor) bucket(key int64) int {
	if m.band {
		if key <= m.min {
			return 0
		}
		d := uint64(key) - uint64(m.min)
		if m.span == 0 { // full domain: fixed width ceil(2^64 / nb)
			return int(d / (math.MaxUint64/uint64(m.nb) + 1))
		}
		if d >= m.span {
			return m.nb - 1
		}
		hi, lo := bits.Mul64(d, uint64(m.nb))
		q, _ := bits.Div64(hi, lo, m.span)
		return int(q)
	}
	return int(mix64(uint64(key)) / (math.MaxUint64/uint64(m.nb) + 1))
}

// bucketLowOffset returns the domain offset of bucket b's first key (band)
// or first hash (hash space) — the inverse of bucket at the bucket's lower
// edge, used to turn learned bucket boundaries into partitioner cuts.
func (m *loadMonitor) bucketLowOffset(b int) uint64 {
	if m.band && m.span != 0 {
		hi, lo := bits.Mul64(m.span, uint64(b))
		q, _ := bits.Div64(hi, lo, uint64(m.nb))
		return q
	}
	return uint64(b) * (math.MaxUint64/uint64(m.nb) + 1)
}

// observe records one fed tuple: its key-frequency bucket and its delivery
// to the inclusive replica span [lo, hi] (lo == hi under hash partitioning).
func (m *loadMonitor) observe(key int64, lo, hi int) {
	m.hist[m.bucket(key)]++
	m.total++
	for i := lo; i <= hi; i++ {
		m.loads[i]++
	}
	m.sinceCheck++
}

// imbalance returns the max/mean ratio of the given per-replica counts
// (1 when nothing was counted).
func imbalance(counts []uint64) float64 {
	var max, sum uint64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(counts)) / float64(sum)
}

// windowImbalance returns the max/mean delivery ratio of the window since
// the last policy evaluation.
func (m *loadMonitor) windowImbalance() float64 {
	d := make([]uint64, len(m.loads))
	for i := range d {
		d[i] = m.loads[i] - m.prev[i]
	}
	return imbalance(d)
}

// cycle closes the current evaluation window.
func (m *loadMonitor) cycle() {
	copy(m.prev, m.loads)
	m.sinceCheck = 0
}

// resetLoads zeroes the delivery counters after a rebalance, so the next
// evaluation measures the new ownership, not the imbalance that triggered
// the move. The histogram is kept: it describes the key distribution, which
// the rebalance did not change.
func (m *loadMonitor) resetLoads() {
	clear(m.loads)
	clear(m.prev)
	m.sinceCheck = 0
	m.sustained = 0
}
