package shard

import (
	"testing"

	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// TestMergeSteadyStateAllocs pins the allocation cost of the cross-shard
// merge path: pushing result slabs into the k-way merge and draining it
// through the query sink must not allocate once the slab free list is
// primed. The merge sits downstream of every result of every query, so a
// per-item allocation here would undo the engine's allocation-lean hot
// path.
func TestMergeSteadyStateAllocs(t *testing.T) {
	const shards, perShard = 4, 32
	sink := operator.NewDirectSink("Q")
	free := make(chan []stream.Item, 4*shards)
	m := newKmerge(shards, sink.AcceptRun, free)

	// Result tuples are preallocated and re-stamped each round; the merge
	// path under test never creates tuples, it only moves them. Slabs
	// recycle through the free list exactly as in the executor.
	a := &stream.Tuple{Stream: stream.StreamA, Ord: 1}
	b := &stream.Tuple{Stream: stream.StreamB, Ord: 1}
	pool := make([]stream.Tuple, shards*perShard)
	var now stream.Time
	var seq uint64
	round := func() {
		// Interleave timestamps across shards so the merge alternates
		// inputs, and close every shard's slab with the round's maximum
		// punctuation so each round drains completely and every slab
		// returns to the free list.
		roundMax := now + shards*perShard
		for s := 0; s < shards; s++ {
			slab := <-free
			for i := 0; i < perShard; i++ {
				seq++
				rt := &pool[s*perShard+i]
				rt.Time, rt.Seq, rt.A, rt.B = now+stream.Time(i*shards+s+1), seq, a, b
				slab = append(slab, stream.TupleItem(rt))
			}
			slab = append(slab, stream.PunctItem(roundMax))
			m.push(s, slab)
		}
		now = roundMax
		m.step()
	}
	for i := 0; i < 2*shards; i++ {
		free <- make([]stream.Item, 0, perShard+1)
	}
	round() // prime the merge

	if allocs := testing.AllocsPerRun(100, round); allocs > 0.5 {
		t.Errorf("cross-shard merge allocates %.2f times per %d items; the steady state must be allocation-free",
			allocs, shards*perShard)
	}
	if sink.Count() == 0 {
		t.Fatal("merge delivered nothing; the allocation guard is vacuous")
	}
	if sink.OrderViolations() != 0 {
		t.Fatalf("merge broke order: %d violations", sink.OrderViolations())
	}
}
