package shard

import (
	"fmt"
	"sync"

	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// assembler is the slice-merge fast path: instead of merging each query's
// per-shard output (which ships every result once per subscribing query),
// it merges each *slice's* per-shard result stream — every distinct result
// crosses goroutines exactly once — and then assembles the per-query
// answers the way the sequential engine does: the merged slice stream fans
// out into the input queues of per-query order-preserving unions feeding
// the sinks. One goroutine owns all slice merges and unions, so the
// assembly needs no further synchronization.
//
// The path requires query-agnostic slice streams — an unfiltered workload
// whose every distinct window is a slice boundary, compiled with
// plan.StateSliceConfig.RawSliceResults — exactly the restriction of the
// concurrent pipeline. Filtered, routed or migratable chains use the
// query-level merge instead (see Executor).
type assembler struct {
	in     chan sliceBatch
	merges []*kmerge // per slice
	unions []*operator.Union
	sinks  []*operator.Sink
	subs   [][]int            // slice -> indexes of subscribing unions
	meter  operator.CostMeter // union assembly costs
	wg     sync.WaitGroup
}

// sliceBatch is one slab of a slice's result stream from one shard.
type sliceBatch struct {
	slice int
	shard int
	items []stream.Item
}

// newAssembler wires the slice merges and per-query unions. ends are the
// chain's slice boundaries, windows the query windows (ascending; each must
// equal one of the ends, which RawSliceResults validated at plan build).
func newAssembler(shards int, ends, windows []stream.Time, free chan []stream.Item, cfg Config) (*assembler, error) {
	a := &assembler{
		in:     make(chan sliceBatch, 4*chanBuf),
		merges: make([]*kmerge, len(ends)),
		unions: make([]*operator.Union, len(windows)),
		sinks:  make([]*operator.Sink, len(windows)),
		subs:   make([][]int, len(ends)),
	}
	// Per-query unions over the contributing slices, engine-style: the
	// union's si-th input queue receives slice si's merged stream.
	sliceOuts := make([][]*stream.Queue, len(ends))
	for qi, w := range windows {
		u := operator.NewUnion(fmt.Sprintf("assemble-Q%d", qi+1))
		sink := operator.NewDirectSink(fmt.Sprintf("Q%d", qi+1))
		u.Out().AttachFunc(sink.Accept)
		if cfg.Collect {
			sink.Collecting()
		}
		if cfg.OnResult != nil {
			q := qi
			sink.OnResult(func(t *stream.Tuple) { cfg.OnResult(q, t) })
		}
		contributing := 0
		for si, end := range ends {
			if end > w {
				break
			}
			contributing = si + 1
		}
		if contributing == 0 {
			return nil, fmt.Errorf("shard: query window %s below the first slice boundary %s", w, ends[0])
		}
		for si := 0; si < contributing; si++ {
			sliceOuts[si] = append(sliceOuts[si], u.AddInput())
			a.subs[si] = append(a.subs[si], qi)
		}
		a.unions[qi] = u
		a.sinks[qi] = sink
	}
	for si := range ends {
		outs := sliceOuts[si]
		a.merges[si] = newKmerge(shards, func(span []stream.Item) {
			// Fan the merged span out to every subscribing query's
			// union input; the items are shared, only queue cells are
			// written.
			for _, q := range outs {
				for _, it := range span {
					q.Push(it)
				}
			}
		}, free)
	}
	return a, nil
}

// run consumes slice batches until the channel closes, stepping the slice
// merge and then the assembly unions after every batch.
func (a *assembler) run() {
	defer a.wg.Done()
	for tb := range a.in {
		a.merges[tb.slice].push(tb.shard, tb.items)
		a.merges[tb.slice].step()
		for _, qi := range a.subs[tb.slice] {
			a.unions[qi].Step(&a.meter, -1)
		}
	}
	for _, m := range a.merges {
		m.step()
	}
	for _, u := range a.unions {
		u.Step(&a.meter, -1)
	}
}
