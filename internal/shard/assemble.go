package shard

import (
	"fmt"
	"sync"

	"stateslice/internal/engine"
	"stateslice/internal/fault"
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// The slice-merge fast path: instead of merging each query's per-shard
// output (which ships every result once per subscribing query), it merges
// each *slice's* per-shard result stream — every distinct result leaves the
// replicas exactly once — and then assembles the per-query answers the way
// the sequential engine does: the merged slice stream fans out into the
// input queues of per-query order-preserving unions feeding the sinks.
//
// The assembly is sharded by query across a pool of workers so no single
// goroutine touches every item (the serial-reassembly bottleneck of
// shared-state parallelism):
//
//   - Every query — its union and sink — is owned by exactly one worker;
//     queries are split into contiguous balanced blocks.
//   - Every slice's kmerge is owned by exactly one worker, the lowest-index
//     worker owning one of the slice's subscribing queries, so the merged
//     stream is always consumed locally by at least one query.
//   - When a merged span leaves a slice owned by worker A and a subscribing
//     query lives on worker B, A copies the span into a per-(slice, B)
//     forward batcher and ships sealed slabs over B's forward channel; B
//     pushes them into its own unions' input queues. A span therefore
//     crosses worker boundaries at most workers-1 times — bounded by the
//     pool size, not by the query count.
//
// Order is preserved end to end: a slice's merged stream has exactly one
// producer (its owning worker), forward channels are FIFO, and each union
// input queue is filled by exactly one goroutine (its owner, for local
// slices, or the owner applying forwarded slabs), so every union sees each
// slice stream in merge order and restores the global (Time, Seq) order
// per query — byte-identical results at every worker count.
//
// Deadlock freedom: forward sends never block blindly. A worker that would
// block forwarding to a busy peer instead selects between the send and
// draining its own forward channel, so in any cycle of workers blocked on
// forwards at least one send has a ready receiver and the cycle unwinds;
// replica taps blocked on a worker's slice channel wait on a worker that,
// by the same argument, always makes progress. Shutdown is two-phase
// (stop): slice channels close first and every worker flushes its merges
// and forwards before announcing mergeDone; only when all workers are past
// that barrier do the forward channels close, so no forward is ever sent on
// a closed channel.
//
// The path requires query-agnostic slice streams — an unfiltered workload
// whose every distinct window is a slice boundary, compiled with
// plan.StateSliceConfig.RawSliceResults — exactly the restriction of the
// concurrent pipeline. Filtered, routed or migratable chains use the
// query-level merge instead (see Executor). New validates the windows
// against the chain's boundaries (ValidateSliceMergeWindows) before the
// assembler is built, so construction cannot fail.

// assembler coordinates the fast path's worker pool.
type assembler struct {
	workers    []*asmWorker
	merges     []*kmerge         // per slice, stepped only by the owning worker
	unions     []*operator.Union // per query, stepped only by the owning worker
	sinks      []*operator.Sink  // per query
	sliceOwner []int             // slice -> worker owning its kmerge
	mergeDone  sync.WaitGroup    // workers past the merge-flush barrier
	wg         sync.WaitGroup    // workers fully exited
	// noteErr publishes a worker's contained panic as the executor's first
	// error (Executor.noteErr).
	noteErr func(error)
}

// asmWorker is one assembly goroutine: it merges its owned slices, runs its
// owned per-query unions, and exchanges merged spans with its peers.
type asmWorker struct {
	a   *assembler
	idx int
	// in receives per-shard result slabs for the slices this worker owns.
	in chan sliceBatch
	// fwd receives merged spans of slices owned by other workers to which
	// queries of this worker subscribe.
	fwd chan fwdBatch
	// localQ and localSubs map every slice to this worker's subscribing
	// union input queues and query indexes (owned and forwarded slices
	// alike).
	localQ    [][]*stream.Queue
	localSubs [][]int
	// failed marks a worker whose containment boundary recovered a panic
	// (a merge bug, or a user sink callback firing inside a union step).
	// A failed worker publishes the fault once, then keeps draining and
	// recycling both of its channels without applying anything — its
	// unions are corrupt, and a stalled channel would block replica taps
	// and peer forwards. Only the worker goroutine touches it.
	failed bool
	// ownSlices lists the slices whose kmerge this worker owns; fwdTo and
	// fwdB give, per owned slice, the peer workers subscribing to it and
	// the outgoing span batchers.
	ownSlices []int
	fwdTo     [][]int
	fwdB      [][]*stream.Batcher
	queries   []int // owned query indexes
	free      chan []stream.Item
	meter     operator.CostMeter // union assembly costs
}

// sliceBatch is one slab of a slice's result stream from one shard.
type sliceBatch struct {
	slice int
	shard int
	items []stream.Item
}

// fwdBatch is one slab of a slice's *merged* stream, forwarded from the
// slice's owning worker to a peer whose queries subscribe to the slice.
type fwdBatch struct {
	slice int
	items []stream.Item
}

// newAssembler wires the slice merges and per-query unions across the
// worker pool. ends are the chain's slice boundaries, windows the query
// windows; New has validated them (ValidateSliceMergeWindows), so every
// window equals a boundary and each query's contributing prefix is
// non-empty.
func newAssembler(shards, workers int, ends, windows []stream.Time, free chan []stream.Item, cfg Config, noteErr func(error)) *assembler {
	queries := len(windows)
	a := &assembler{
		workers:    make([]*asmWorker, workers),
		merges:     make([]*kmerge, len(ends)),
		unions:     make([]*operator.Union, queries),
		sinks:      make([]*operator.Sink, queries),
		sliceOwner: make([]int, len(ends)),
		noteErr:    noteErr,
	}
	for wi := range a.workers {
		a.workers[wi] = &asmWorker{
			a:         a,
			idx:       wi,
			in:        make(chan sliceBatch, 4*chanBuf),
			fwd:       make(chan fwdBatch, chanBuf),
			localQ:    make([][]*stream.Queue, len(ends)),
			localSubs: make([][]int, len(ends)),
			fwdTo:     make([][]int, len(ends)),
			fwdB:      make([][]*stream.Batcher, len(ends)),
			free:      free,
		}
	}

	// Per-query unions over the contributing slices, engine-style: the
	// union's si-th input queue receives slice si's merged stream. Each
	// query lands on one worker (contiguous balanced blocks).
	for qi, w := range windows {
		wk := a.workers[queryOwner(qi, workers, queries)]
		u := operator.NewUnion(fmt.Sprintf("assemble-Q%d", qi+1))
		sink := operator.NewDirectSink(fmt.Sprintf("Q%d", qi+1))
		u.Out().AttachFunc(sink.Accept)
		if cfg.Collect {
			sink.Collecting()
		}
		if cfg.OnResult != nil {
			q := qi
			sink.OnResult(func(t *stream.Tuple) { cfg.OnResult(q, t) })
		}
		for si, end := range ends {
			if end > w {
				break
			}
			wk.localQ[si] = append(wk.localQ[si], u.AddInput())
			wk.localSubs[si] = append(wk.localSubs[si], qi)
		}
		a.unions[qi] = u
		a.sinks[qi] = sink
		wk.queries = append(wk.queries, qi)
	}

	// Slice ownership and forward edges: the lowest-index subscribing
	// worker merges the slice and forwards the merged spans to the other
	// subscribers.
	for si := range ends {
		owner := 0
		for wi, wk := range a.workers {
			if len(wk.localSubs[si]) > 0 {
				owner = wi
				break
			}
		}
		a.sliceOwner[si] = owner
		wk := a.workers[owner]
		wk.ownSlices = append(wk.ownSlices, si)
		wk.fwdB[si] = make([]*stream.Batcher, workers)
		for wi, peer := range a.workers {
			if wi != owner && len(peer.localSubs[si]) > 0 {
				wk.fwdTo[si] = append(wk.fwdTo[si], wi)
				wk.fwdB[si][wi] = &stream.Batcher{}
			}
		}
		slice := si
		a.merges[si] = newKmerge(shards, func(span []stream.Item) { wk.emit(slice, span) }, free)
	}
	return a
}

// start launches the worker goroutines.
func (a *assembler) start() {
	for _, w := range a.workers {
		a.mergeDone.Add(1)
		a.wg.Add(1)
		go w.run()
	}
}

// stop drives the two-phase shutdown after the replicas have exited: close
// the slice channels, wait for every worker to flush its merges and
// forwards, then close the forward channels and wait for the pool to drain
// completely.
func (a *assembler) stop() {
	for _, w := range a.workers {
		close(w.in)
	}
	a.mergeDone.Wait()
	for _, w := range a.workers {
		close(w.fwd)
	}
	a.wg.Wait()
}

// fold aggregates the assembly meters and per-query sink statistics into
// the run result. Callers must have stopped the pool first.
func (a *assembler) fold(res *engine.Result) {
	for _, m := range a.merges {
		res.Meter.Add(m.meter)
	}
	for _, w := range a.workers {
		res.Meter.Add(w.meter)
	}
	for _, s := range a.sinks {
		res.SinkCounts = append(res.SinkCounts, s.Count())
		res.OrderViolations += s.OrderViolations()
		res.Results = append(res.Results, s.Results())
	}
}

// run is the worker loop: phase one drains slice batches (stepping the
// owned merges) and forwarded spans together; when the slice channel
// closes, the worker flushes its merges and forward batchers, passes the
// mergeDone barrier, and keeps draining forwards until that channel closes
// too; a final union step flushes anything the last punctuations released.
func (w *asmWorker) run() {
	defer w.a.wg.Done()
	in, fwd := w.in, w.fwd
	for in != nil || fwd != nil {
		select {
		case tb, ok := <-in:
			if !ok {
				in = nil
				if !w.failed {
					w.finishMerges()
				}
				w.a.mergeDone.Done()
				continue
			}
			if w.failed {
				recycleSlab(w.free, tb.items)
				continue
			}
			w.apply(tb)
		case fb, ok := <-fwd:
			if !ok {
				fwd = nil
				continue
			}
			w.applyFwd(fb)
		}
	}
	if !w.failed {
		w.finalSteps()
	}
}

// recoverFail is the worker's containment boundary: deferred (open-coded,
// so the hot path allocates no closure) around every stage that runs merge,
// union or sink code, it converts a panic into the executor's first error
// and fails the worker.
func (w *asmWorker) recoverFail() {
	if v := recover(); v != nil {
		w.failed = true
		w.a.noteErr(fmt.Errorf("shard: %w", fault.Capture("assembly worker", w.idx, v)))
	}
}

// apply folds one per-shard slab into its slice merge, steps the merge
// (which emits locally and into the forward batchers), flushes the slice's
// forward batchers so peers never wait on a part-filled slab, and steps the
// local subscribing unions.
func (w *asmWorker) apply(tb sliceBatch) {
	defer w.recoverFail()
	if err := fault.Fire(fault.AssembleApply, w.idx); err != nil {
		w.failed = true
		w.a.noteErr(fmt.Errorf("shard: assembly: %w", err))
		recycleSlab(w.free, tb.items)
		return
	}
	m := w.a.merges[tb.slice]
	m.push(tb.shard, tb.items)
	m.step()
	w.flushFwd(tb.slice)
	for _, qi := range w.localSubs[tb.slice] {
		w.a.unions[qi].Step(&w.meter, -1)
	}
}

// applyFwd pushes a forwarded merged span into the local subscribing
// unions, recycles the slab, and steps those unions. It is also called from
// sendFwd's drain side, so the failed check lives here: a failed worker
// recycles forwards instead of applying them.
func (w *asmWorker) applyFwd(fb fwdBatch) {
	if w.failed {
		recycleSlab(w.free, fb.items)
		return
	}
	defer w.recoverFail()
	for _, q := range w.localQ[fb.slice] {
		for _, it := range fb.items {
			q.Push(it)
		}
	}
	recycleSlab(w.free, fb.items)
	for _, qi := range w.localSubs[fb.slice] {
		w.a.unions[qi].Step(&w.meter, -1)
	}
}

// finalSteps flushes the owned unions once after both channels closed,
// inside the containment boundary — the last sink callbacks fire here.
func (w *asmWorker) finalSteps() {
	defer w.recoverFail()
	for _, qi := range w.queries {
		w.a.unions[qi].Step(&w.meter, -1)
	}
}

// emit is the kmerge callback for an owned slice: deliver the merged span
// to the local subscribing union queues and copy it into the forward
// batchers of the subscribing peers, shipping sealed slabs as they fill.
func (w *asmWorker) emit(slice int, span []stream.Item) {
	for _, q := range w.localQ[slice] {
		for _, it := range span {
			q.Push(it)
		}
	}
	for _, dst := range w.fwdTo[slice] {
		b := w.fwdB[slice][dst]
		for _, it := range span {
			b.Add(it)
			if b.Full() {
				w.sendFwd(dst, slice, b)
			}
		}
	}
}

// flushFwd ships the part-filled forward batchers of one owned slice.
func (w *asmWorker) flushFwd(slice int) {
	for _, dst := range w.fwdTo[slice] {
		w.sendFwd(dst, slice, w.fwdB[slice][dst])
	}
}

// sendFwd seals the batcher and ships the slab to the peer's forward
// channel. The send races the peer's own progress, so it selects between
// delivering and draining this worker's forward channel — the move that
// keeps cycles of mutually-forwarding workers deadlock-free (see the file
// comment). The peer's channel cannot be closed here: stop closes forward
// channels only after every worker — including this one, which is still
// sending — has passed the mergeDone barrier.
func (w *asmWorker) sendFwd(dst, slice int, b *stream.Batcher) {
	// Check before drawing a spare from the free list: TakeWith discards
	// the spare when there is nothing to seal, which would bleed a
	// recycled slab (or a fresh allocation) per idle forward per flush.
	if b.Len() == 0 {
		return
	}
	msg := fwdBatch{slice: slice, items: b.TakeWith(getSlab(w.free))}
	ch := w.a.workers[dst].fwd
	for {
		select {
		case ch <- msg:
			return
		case fb := <-w.fwd:
			w.applyFwd(fb)
		}
	}
}

// finishMerges runs after the slice channel closes: every input slab has
// been applied, so a final step per owned merge emits everything the final
// frontiers allow, the forward batchers flush, and the local unions catch
// up. Contained like apply — run still passes the mergeDone barrier when a
// panic lands here, so stop's two-phase shutdown completes.
func (w *asmWorker) finishMerges() {
	defer w.recoverFail()
	for _, si := range w.ownSlices {
		w.a.merges[si].step()
		w.flushFwd(si)
		for _, qi := range w.localSubs[si] {
			w.a.unions[qi].Step(&w.meter, -1)
		}
	}
}
