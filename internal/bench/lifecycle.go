package bench

import (
	"context"
	"time"

	"stateslice/internal/plan"
	"stateslice/internal/shard"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// Lifecycle suite: the cost of aborting a live sharded session mid-stream.
// Close must unwind every replica, merge and assembly goroutine without a
// final result flush, so its latency is the price a caller pays to cancel a
// shared chain — the figure the crash-containment layer promises to keep
// small and bounded. The suite feeds half the keyed input into the sharded
// executor (slice-merge fast path, the tracked topology) and times Close on
// the live session, repeating per repetition with a fresh executor.

// LifecycleReport is the lifecycle suite of the machine-readable report.
type LifecycleReport struct {
	// Shards is the replica count of the aborted sessions.
	Shards int `json:"shards"`
	// Closes is the number of timed mid-stream Closes across repetitions.
	Closes int `json:"closes"`
	// FedInputs is the number of tuples fed before each Close.
	FedInputs int `json:"fed_inputs"`
	// CloseMeanMicros and CloseMaxMicros aggregate the wall-clock cost of
	// Close on a live mid-stream session — context cancellation, feed
	// channel close, replica unwind, merge/assembly pool shutdown — across
	// all repetitions, in microseconds.
	CloseMeanMicros float64 `json:"close_mean_micros"`
	CloseMaxMicros  float64 `json:"close_max_micros"`
}

// runLifecycleSuite measures mid-stream abort latency on the sharded
// executor at the largest tracked shard count.
func runLifecycleSuite(cfg PerfConfig) (*LifecycleReport, error) {
	w, err := workload.NQueriesEquijoin(cfg.Dist, cfg.Queries)
	if err != nil {
		return nil, err
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA:     cfg.Rate,
		RateB:     cfg.Rate,
		Duration:  stream.Seconds(cfg.DurationSec),
		KeyDomain: cfg.KeyDomain,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	shards := 1
	for _, p := range cfg.Shards {
		if p > shards {
			shards = p
		}
	}
	windows := make([]stream.Time, len(w.Queries))
	for i, q := range w.Queries {
		windows[i] = q.Window
	}
	half := len(input) / 2
	rep := &LifecycleReport{Shards: shards, FedInputs: half}
	var total, max time.Duration
	for r := 0; r < cfg.Reps; r++ {
		e, err := shard.New(shard.Config{
			Shards:      shards,
			SampleEvery: 1 << 30,
			SliceMerge:  true,
			Windows:     windows,
			Name:        "perf-lifecycle",
		}, func(int) (*plan.StateSlicePlan, error) {
			return plan.BuildStateSlice(w, plan.StateSliceConfig{Name: "perf", RawSliceResults: true})
		})
		if err != nil {
			return nil, err
		}
		for _, t := range input[:half] {
			if err := e.Feed(t); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if err := e.Close(context.Background()); err != nil {
			return nil, err
		}
		d := time.Since(start)
		total += d
		rep.Closes++
		if d > max {
			max = d
		}
	}
	if rep.Closes > 0 {
		rep.CloseMeanMicros = float64(total.Microseconds()) / float64(rep.Closes)
	}
	rep.CloseMaxMicros = float64(max.Microseconds())
	return rep, nil
}
