package bench

import (
	"fmt"
	"runtime"
	"time"

	"stateslice/internal/engine"
	"stateslice/internal/pipeline"
	"stateslice/internal/plan"
	"stateslice/internal/shard"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// This file implements the machine-readable performance report behind
// `slicebench -json`: the Section 7.3 chain workload (N unfiltered window
// joins, Mem-Opt chain) executed through the sequential engine at several
// micro-batch sizes and through the concurrent slab-batched pipeline, with
// wall-clock service rate, comparison counts, per-input allocation costs and
// state memory recorded per variant. A second suite runs the workload's
// equijoin twin — same windows, A.Key = B.Key join, key domain matched to
// the same selectivity — through the engine, the pipeline and the
// key-range sharded executor at a shard-count sweep; FractionMatch is not
// key-partitionable, so the sharded variants require the twin. A third
// suite runs the band-join twin (|A.Key - B.Key| <= B over a domain matched
// to the same selectivity) through the band-partitioned sharded executor —
// contiguous owner ranges with boundary replication — recording the
// replicated feed volume next to the shard sweep. Committed snapshots
// (BENCH_<pr>.json) track the repository's performance trajectory over
// time.

// PerfWorkload describes the workload a report was measured on.
type PerfWorkload struct {
	// Queries is the number of window-join queries (Section 7.3 sweeps
	// 12/24/36; the tracked baseline uses 12).
	Queries int `json:"queries"`
	// Dist names the window distribution (Table 4).
	Dist string `json:"dist"`
	// Join describes the join predicate.
	Join string `json:"join"`
	// JoinSelectivity is the (expected) S1 join selectivity.
	JoinSelectivity float64 `json:"join_selectivity"`
	// KeyDomain is the generator's uniform key domain; 0 when the
	// predicate ignores keys.
	KeyDomain int64 `json:"key_domain,omitempty"`
	// Rate is the per-stream arrival rate in tuples/sec.
	Rate float64 `json:"rate"`
	// DurationSec is the virtual run length in seconds.
	DurationSec float64 `json:"duration_sec"`
	// Seed seeds the shared generator.
	Seed int64 `json:"seed"`
}

// PerfRun is one measured execution variant.
type PerfRun struct {
	// Variant labels the execution path, e.g. "engine/k=1" or "pipeline".
	Variant string `json:"variant"`
	// BatchSize is the engine micro-batch size K (1 = the paper-faithful
	// tuple-at-a-time schedule; -1 = drain only at the end; 0 for the
	// pipeline, which batches by channel slab instead).
	BatchSize int `json:"batch_size"`
	// Shards is the replica count of a sharded run; 0 for unsharded
	// variants. Comparable across hosts only together with the report's
	// GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// Workers is the resolved assembly-worker pool size of a sharded run
	// (the goroutines reassembling the global output order); 0 for
	// unsharded variants. Like Shards it is only comparable together with
	// GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Band is the band width B of a band-partitioned sharded run; absent
	// for hash-partitioned and unsharded variants (note B = 0 is only
	// reachable through the equijoin suite, so omitempty is unambiguous).
	Band int64 `json:"band,omitempty"`
	// ReplicaFeeds is the total number of per-replica tuple deliveries of
	// a sharded run: Inputs under hash partitioning, inflated by the
	// boundary replication factor (~1 + 2B/rangeWidth) under band
	// partitioning. ReplicaFeeds/Inputs is the measured replication
	// factor.
	ReplicaFeeds int `json:"replica_feeds,omitempty"`
	// Inputs is the number of source tuples fed.
	Inputs int `json:"inputs"`
	// Outputs is the total number of result tuples across all queries.
	Outputs uint64 `json:"outputs"`
	// WallSeconds is the wall-clock time of the best repetition.
	WallSeconds float64 `json:"wall_seconds"`
	// ServiceRate is (inputs+outputs)/wall in tuples/sec, the paper's
	// throughput measure on this host (best repetition).
	ServiceRate float64 `json:"service_rate"`
	// Comparisons is the modelled comparison count of the run.
	Comparisons uint64 `json:"comparisons"`
	// AllocsPerInput is heap allocations per source tuple.
	AllocsPerInput float64 `json:"allocs_per_input"`
	// BytesPerInput is heap bytes allocated per source tuple.
	BytesPerInput float64 `json:"bytes_per_input"`
	// AvgStateTuples is the mean total join-state size. Reported only for
	// the per-tuple engine schedule (K=1): with K>1 the monitor samples
	// between feeds, before the deferred drain, so join states lag the
	// arrivals and the figure would understate memory (queues, not
	// states, hold the backlog). The pipeline does not sample memory
	// either.
	AvgStateTuples float64 `json:"avg_state_tuples"`
	// MaxStateTuples is the peak total join-state size (K=1 only, as
	// above).
	MaxStateTuples int `json:"max_state_tuples"`
	// OrderViolations counts out-of-order deliveries (must be zero).
	OrderViolations int `json:"order_violations"`
}

// PerfSuite is one workload with its measured execution variants.
type PerfSuite struct {
	// Workload describes the measured workload.
	Workload PerfWorkload `json:"workload"`
	// Runs holds one entry per execution variant.
	Runs []PerfRun `json:"runs"`
}

// PerfReport is the full report written by `slicebench -json`.
type PerfReport struct {
	// GoVersion and GOARCH identify the toolchain and hardware flavour the
	// numbers were taken on; wall-clock figures are host-dependent.
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS and NumCPU pin the parallelism available to the run, the
	// context without which shard-sweep figures are not comparable across
	// hosts.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Workload describes the tracked FractionMatch workload.
	Workload PerfWorkload `json:"workload"`
	// Runs holds one entry per execution variant on Workload.
	Runs []PerfRun `json:"runs"`
	// Sharded is the equijoin-twin suite with the shard-count sweep, nil
	// when the sweep was disabled.
	Sharded *PerfSuite `json:"sharded,omitempty"`
	// Band is the band-join-twin suite with the band-partitioned shard
	// sweep, nil when disabled.
	Band *PerfSuite `json:"band,omitempty"`
	// Admission is the live-admission suite: attach-barrier latency and
	// the steady-state cost of a chain that attached its queries
	// mid-stream against the same query set built in from the start. Nil
	// when the shard suites are disabled (the suite shares their equijoin
	// twin workload).
	Admission *AdmissionReport `json:"admission,omitempty"`
	// Lifecycle is the session-abort suite: the wall-clock cost of Close
	// on a live mid-stream sharded session. Nil when the shard suites are
	// disabled (the suite shares their equijoin twin workload).
	Lifecycle *LifecycleReport `json:"lifecycle,omitempty"`
	// Recovery is the self-healing suite: checkpoint latency and blob
	// size, supervised-restart cost, and the healed run's output
	// equivalence. Nil when the shard suites are disabled (the suite
	// shares their equijoin twin workload).
	Recovery *RecoveryReport `json:"recovery,omitempty"`
	// Rebalance is the adaptive-rebalancing suite: the probe imbalance of
	// a quadratic-skew band feed on the fixed split versus learned
	// equi-depth cuts, and the cost of the live move. Nil when the shard
	// or band suites are disabled (the suite shares the band twin
	// workload) or the sweep tracks fewer than two shards.
	Rebalance *RebalanceReport `json:"rebalance,omitempty"`
}

// PerfConfig parameterises RunPerf. The zero value selects the tracked
// baseline: 12 uniform queries, rate 80, 90 virtual seconds, seed 2006,
// 3 repetitions, shard sweep p ∈ {1, 2, 4, 8}.
type PerfConfig struct {
	Queries     int
	Dist        workload.Distribution
	S1          float64
	Rate        float64
	DurationSec float64
	Seed        int64
	Reps        int
	// Shards is the shard-count sweep of the equijoin suite; nil selects
	// DefaultShardCounts, an explicit empty slice disables the suite.
	Shards []int
	// Workers is the assembly-worker sweep of the equijoin suite, crossed
	// with every shard count; nil selects DefaultWorkerCounts (the
	// automatic default only). A 0 entry means "auto"; the report records
	// the resolved pool size per run either way.
	Workers []int
	// KeyDomain is the equijoin suite's uniform key domain; 0 selects
	// workload.EquijoinKeyDomain (selectivity matching S1's default).
	KeyDomain int64
	// BandWidth is the band width B of the band-join suite, measured over
	// the workload.BandKeyDomain uniform domain; 0 selects
	// workload.BandWidth (selectivity matching S1's default), negative
	// disables the band suite. The suite's shard sweep reuses Shards, so
	// an empty Shards disables it as well.
	BandWidth int64
}

// DefaultShardCounts is the tracked shard sweep.
var DefaultShardCounts = []int{1, 2, 4, 8}

// DefaultWorkerCounts is the tracked assembly-worker sweep: the automatic
// default only, so the baseline report stays one run per shard count.
var DefaultWorkerCounts = []int{0}

func (c *PerfConfig) defaults() {
	if c.Queries == 0 {
		c.Queries = 12
	}
	if c.Dist == "" {
		c.Dist = workload.Uniform
	}
	if c.S1 == 0 {
		c.S1 = 0.025
	}
	if c.Rate == 0 {
		c.Rate = 80
	}
	if c.DurationSec == 0 {
		c.DurationSec = workload.DurationSeconds
	}
	if c.Seed == 0 {
		c.Seed = 2006
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Shards == nil {
		c.Shards = DefaultShardCounts
	}
	if c.Workers == nil {
		c.Workers = DefaultWorkerCounts
	}
	if c.KeyDomain == 0 {
		c.KeyDomain = workload.EquijoinKeyDomain
	}
	if c.BandWidth == 0 {
		c.BandWidth = workload.BandWidth
	}
}

// perfBatchSizes lists the engine micro-batch sizes the report measures:
// the paper-faithful K=1 schedule, two amortized settings and the unbounded
// drain-at-finish extreme.
var perfBatchSizes = []int{1, 7, 64, -1}

// RunPerf measures every execution variant over one shared generated input
// and returns the report.
func RunPerf(cfg PerfConfig) (*PerfReport, error) {
	cfg.defaults()
	w, err := workload.NQueries(cfg.Dist, cfg.Queries, cfg.S1)
	if err != nil {
		return nil, err
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA:    cfg.Rate,
		RateB:    cfg.Rate,
		Duration: stream.Seconds(cfg.DurationSec),
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rep := &PerfReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload: PerfWorkload{
			Queries:         cfg.Queries,
			Dist:            string(cfg.Dist),
			Join:            w.Join.String(),
			JoinSelectivity: cfg.S1,
			Rate:            cfg.Rate,
			DurationSec:     cfg.DurationSec,
			Seed:            cfg.Seed,
		},
	}

	for _, k := range perfBatchSizes {
		run, err := perfEngine(w, input, k, cfg.Reps)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, *run)
	}
	run, err := perfPipeline(w, input, cfg.Reps)
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, *run)

	if len(cfg.Shards) > 0 {
		suite, err := runShardSuite(cfg)
		if err != nil {
			return nil, err
		}
		rep.Sharded = suite
		if cfg.BandWidth >= 0 {
			suite, err := runBandSuite(cfg)
			if err != nil {
				return nil, err
			}
			rep.Band = suite
		}
		adm, err := runAdmissionSuite(cfg)
		if err != nil {
			return nil, err
		}
		rep.Admission = adm
		lc, err := runLifecycleSuite(cfg)
		if err != nil {
			return nil, err
		}
		rep.Lifecycle = lc
		rc, err := runRecoverySuite(cfg)
		if err != nil {
			return nil, err
		}
		rep.Recovery = rc
		if cfg.BandWidth >= 0 {
			rb, err := runRebalanceSuite(cfg)
			if err != nil {
				return nil, err
			}
			rep.Rebalance = rb
		}
	}
	return rep, nil
}

// runShardSuite measures the equijoin twin of the workload — the same
// windows joined on A.Key = B.Key over a key domain matching the tracked
// selectivity — through the engine, the pipeline and the hash-partitioned
// sharded executor at every shard count.
func runShardSuite(cfg PerfConfig) (*PerfSuite, error) {
	w, err := workload.NQueriesEquijoin(cfg.Dist, cfg.Queries)
	if err != nil {
		return nil, err
	}
	return runTwinSuite(cfg, w, cfg.KeyDomain, 1/float64(cfg.KeyDomain), nil)
}

// runBandSuite measures the band-join twin of the workload — the same
// windows joined on |A.Key - B.Key| <= BandWidth over the
// workload.BandKeyDomain uniform domain, whose expected selectivity matches
// the tracked low S1 — through the engine, the pipeline and the
// band-partitioned sharded executor at every shard count. Band predicates
// are not key-partitionable, so this sweep exercises the contiguous range
// partitioner with boundary replication and owner-rule suppression; the
// replicated feed volume is recorded per run (PerfRun.ReplicaFeeds).
func runBandSuite(cfg PerfConfig) (*PerfSuite, error) {
	w, err := workload.NQueriesBand(cfg.Dist, cfg.Queries, cfg.BandWidth)
	if err != nil {
		return nil, err
	}
	sel := float64(2*cfg.BandWidth+1) / float64(workload.BandKeyDomain)
	band := &shard.Band{Width: cfg.BandWidth, MinKey: 0, MaxKey: workload.BandKeyDomain - 1}
	return runTwinSuite(cfg, w, workload.BandKeyDomain, sel, band)
}

// runTwinSuite is the shared sweep skeleton of the sharded twin suites: one
// keyed input, the in-suite engine and pipeline baselines (the single-core
// references the sweep is judged against; every variant must produce
// identical output counts), then the sharded executor over the shards ×
// workers grid — hash-partitioned when band is nil, band-partitioned
// otherwise.
func runTwinSuite(cfg PerfConfig, w plan.Workload, keyDomain int64, selectivity float64, band *shard.Band) (*PerfSuite, error) {
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA:     cfg.Rate,
		RateB:     cfg.Rate,
		Duration:  stream.Seconds(cfg.DurationSec),
		KeyDomain: keyDomain,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	suite := &PerfSuite{
		Workload: PerfWorkload{
			Queries:         cfg.Queries,
			Dist:            string(cfg.Dist),
			Join:            w.Join.String(),
			JoinSelectivity: selectivity,
			KeyDomain:       keyDomain,
			Rate:            cfg.Rate,
			DurationSec:     cfg.DurationSec,
			Seed:            cfg.Seed,
		},
	}
	run, err := perfEngine(w, input, 1, cfg.Reps)
	if err != nil {
		return nil, err
	}
	suite.Runs = append(suite.Runs, *run)
	run, err = perfPipeline(w, input, cfg.Reps)
	if err != nil {
		return nil, err
	}
	suite.Runs = append(suite.Runs, *run)
	for _, p := range cfg.Shards {
		for _, workers := range cfg.Workers {
			run, err := perfSharded(w, input, p, workers, cfg.Reps, band)
			if err != nil {
				return nil, err
			}
			suite.Runs = append(suite.Runs, *run)
		}
	}
	return suite, nil
}

// perfSharded measures the sharded executor at shard count p with the given
// assembly-worker setting (0 = the automatic default; the run records the
// resolved pool size), on the slice-merge fast path the public WithShards
// build selects for this workload shape (unfiltered Mem-Opt). A non-nil
// band selects the range-partitioned executor with boundary replication;
// nil keeps the key hash.
func perfSharded(w plan.Workload, input []*stream.Tuple, p, workers, reps int, band *shard.Band) (*PerfRun, error) {
	windows := make([]stream.Time, len(w.Queries))
	for i, q := range w.Queries {
		windows[i] = q.Window
	}
	run := &PerfRun{Shards: p}
	for r := 0; r < reps; r++ {
		e, err := shard.New(shard.Config{
			Shards:          p,
			AssemblyWorkers: workers,
			SampleEvery:     1 << 30, // no memory sampling on the measured path
			Band:            band,
			SliceMerge:      true,
			Windows:         windows,
			Name:            "perf-sharded",
		}, func(int) (*plan.StateSlicePlan, error) {
			return plan.BuildStateSlice(w, plan.StateSliceConfig{Name: "perf", RawSliceResults: true})
		})
		if err != nil {
			return nil, err
		}
		run.Workers = e.Workers()
		if band != nil {
			run.Band = band.Width
			run.Variant = fmt.Sprintf("band/p=%d,w=%d", p, run.Workers)
		} else {
			run.Variant = fmt.Sprintf("shards/p=%d,w=%d", p, run.Workers)
		}
		allocs, bytes, wall, res, err := measured(func() (perfResult, error) {
			er, err := e.Run(stream.NewSliceSource(input))
			if err != nil {
				return perfResult{}, err
			}
			return perfResult{
				inputs:     er.Inputs,
				outputs:    er.TotalOutputs(),
				comps:      er.Meter.Comparisons(),
				violations: er.OrderViolations,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		run.ReplicaFeeds = e.ReplicatedFeeds()
		record(run, res, allocs, bytes, wall)
	}
	return run, nil
}

// perfPipeline measures the concurrent pipeline executor.
func perfPipeline(w plan.Workload, input []*stream.Tuple, reps int) (*PerfRun, error) {
	windows := make([]stream.Time, len(w.Queries))
	for i, q := range w.Queries {
		windows[i] = q.Window
	}
	run := &PerfRun{Variant: "pipeline", BatchSize: 0}
	for r := 0; r < reps; r++ {
		allocs, bytes, wall, res, err := measured(func() (perfResult, error) {
			pr, err := pipeline.RunChain(windows, w.Join, input, false)
			if err != nil {
				return perfResult{}, err
			}
			return perfResult{
				inputs:     pr.Inputs,
				outputs:    totalCounts(pr.SinkCounts),
				comps:      pr.Meter.Comparisons(),
				violations: pr.OrderViolations,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		record(run, res, allocs, bytes, wall)
	}
	return run, nil
}

// perfEngine measures the sequential engine at micro-batch size k over the
// Mem-Opt chain.
func perfEngine(w plan.Workload, input []*stream.Tuple, k, reps int) (*PerfRun, error) {
	run := &PerfRun{Variant: fmt.Sprintf("engine/k=%s", batchLabel(k)), BatchSize: k}
	for r := 0; r < reps; r++ {
		sp, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Name: "perf"})
		if err != nil {
			return nil, err
		}
		allocs, bytes, wall, res, err := measured(func() (perfResult, error) {
			er, err := engine.Run(sp.Plan, input, engineConfig(k))
			if err != nil {
				return perfResult{}, err
			}
			pr := perfResult{
				inputs:     er.Inputs,
				outputs:    er.TotalOutputs(),
				comps:      er.Meter.Comparisons(),
				violations: er.OrderViolations,
			}
			if k == 1 {
				// State sizes are meaningful only under the
				// per-tuple schedule; see PerfRun.AvgStateTuples.
				pr.avgState = er.Memory.Avg
				pr.maxState = er.Memory.Max
			}
			return pr, nil
		})
		if err != nil {
			return nil, err
		}
		record(run, res, allocs, bytes, wall)
	}
	return run, nil
}

// batchLabel renders a micro-batch size for variant names.
func batchLabel(k int) string {
	if k < 0 {
		return "inf"
	}
	return fmt.Sprintf("%d", k)
}

// perfResult is the variant-independent outcome of one measured execution.
type perfResult struct {
	inputs     int
	outputs    uint64
	comps      uint64
	violations int
	avgState   float64
	maxState   int
}

// measured runs fn under heap-allocation accounting.
func measured(fn func() (perfResult, error)) (allocs, bytes uint64, wall time.Duration, res perfResult, err error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	res, err = fn()
	wall = time.Since(start)
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc, wall, res, err
}

// record folds one repetition into the run, keeping the fastest wall clock
// and the smallest allocation footprint (GC noise only ever inflates both).
func record(run *PerfRun, res perfResult, allocs, bytes uint64, wall time.Duration) {
	if res.inputs == 0 {
		return
	}
	rate := float64(res.inputs+int(res.outputs)) / wall.Seconds()
	if run.WallSeconds == 0 || wall.Seconds() < run.WallSeconds {
		run.WallSeconds = wall.Seconds()
		run.ServiceRate = rate
	}
	apo := float64(allocs) / float64(res.inputs)
	bpo := float64(bytes) / float64(res.inputs)
	if run.AllocsPerInput == 0 || apo < run.AllocsPerInput {
		run.AllocsPerInput = apo
		run.BytesPerInput = bpo
	}
	run.Inputs = res.inputs
	run.Outputs = res.outputs
	run.Comparisons = res.comps
	run.OrderViolations += res.violations
	run.AvgStateTuples = res.avgState
	run.MaxStateTuples = res.maxState
}

// totalCounts sums per-sink result counts.
func totalCounts(counts []uint64) uint64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// engineConfig maps a micro-batch size onto the engine configuration.
func engineConfig(k int) engine.Config {
	return engine.Config{SampleEvery: 16, BatchSize: k}
}
