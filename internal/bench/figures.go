package bench

import (
	"fmt"

	"stateslice/internal/cost"
	"stateslice/internal/workload"
)

// Fig17Panel identifies one panel of Figure 17 or 18: a window
// distribution plus the two selectivities.
type Fig17Panel struct {
	// Label is the paper's sub-figure tag, e.g. "17a".
	Label string
	// Dist is the window distribution.
	Dist workload.Distribution
	// S1 is the join selectivity.
	S1 float64
	// SSigma is the selection selectivity.
	SSigma float64
}

// String renders the panel header like the paper's captions.
func (p Fig17Panel) String() string {
	return fmt.Sprintf("%s: %s, S1=%g, Ssigma=%g", p.Label, p.Dist, p.S1, p.SSigma)
}

// Fig17Panels returns the six memory-comparison panels of Figure 17.
func Fig17Panels() []Fig17Panel {
	return []Fig17Panel{
		{"17a", workload.MostlySmall, 0.1, 0.5},
		{"17b", workload.Uniform, 0.1, 0.5},
		{"17c", workload.MostlyLarge, 0.1, 0.5},
		{"17d", workload.Uniform, 0.025, 0.2},
		{"17e", workload.Uniform, 0.025, 0.5},
		{"17f", workload.Uniform, 0.025, 0.8},
	}
}

// Fig18Panels returns the six service-rate panels of Figure 18.
func Fig18Panels() []Fig17Panel {
	return []Fig17Panel{
		{"18a", workload.MostlySmall, 0.1, 0.5},
		{"18b", workload.Uniform, 0.1, 0.5},
		{"18c", workload.MostlyLarge, 0.1, 0.5},
		{"18d", workload.Uniform, 0.025, 0.8},
		{"18e", workload.Uniform, 0.1, 0.8},
		{"18f", workload.Uniform, 0.4, 0.8},
	}
}

// PanelPoint is one (rate, per-strategy measurement) sample of a panel.
type PanelPoint struct {
	// Rate is the per-stream input rate in tuples/sec.
	Rate float64
	// By holds the measurements keyed by strategy.
	By map[Strategy]Measurement
}

// RunPanel sweeps the input rates for one Figure 17/18 panel and returns the
// per-rate measurements of the three strategies.
func RunPanel(p Fig17Panel, rates []float64, durationSec float64, seed int64) ([]PanelPoint, error) {
	w, err := workload.ThreeQueries(p.Dist, p.SSigma, p.S1)
	if err != nil {
		return nil, err
	}
	var out []PanelPoint
	for _, rate := range rates {
		rc := RunConfig{Rate: rate, DurationSec: durationSec, Seed: seed}
		m, err := RunStrategies(w, Strategies3(), rc, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: panel %s rate %g: %w", p.Label, rate, err)
		}
		out = append(out, PanelPoint{Rate: rate, By: m})
	}
	return out, nil
}

// Fig19Panel identifies one panel of Figure 19: a window distribution and a
// query count.
type Fig19Panel struct {
	// Label is the paper's sub-figure tag, e.g. "19a".
	Label string
	// Dist is the window distribution.
	Dist workload.Distribution
	// Queries is the number of registered continuous queries.
	Queries int
}

// String renders the panel header.
func (p Fig19Panel) String() string {
	return fmt.Sprintf("%s: %s, %d queries", p.Label, p.Dist, p.Queries)
}

// Fig19Panels returns the five Mem-Opt vs CPU-Opt panels of Figure 19.
func Fig19Panels() []Fig19Panel {
	return []Fig19Panel{
		{"19a", workload.Uniform, 12},
		{"19b", workload.MostlySmall, 12},
		{"19c", workload.SmallLarge, 12},
		{"19d", workload.SmallLarge, 24},
		{"19e", workload.SmallLarge, 36},
	}
}

// Fig19Point is one (rate, per-variant measurement) sample.
type Fig19Point struct {
	// Rate is the per-stream input rate in tuples/sec.
	Rate float64
	// By holds the measurements keyed by chain variant.
	By map[ChainVariant]Measurement
	// Slices counts the sliced joins per variant.
	Slices map[ChainVariant]int
}

// RunFig19Panel sweeps the input rates for one Figure 19 panel. The join
// selectivity is 0.025 and the queries carry no selections, per Section 7.3.
func RunFig19Panel(p Fig19Panel, rates []float64, durationSec float64, seed int64) ([]Fig19Point, error) {
	w, err := workload.NQueries(p.Dist, p.Queries, 0.025)
	if err != nil {
		return nil, err
	}
	var out []Fig19Point
	for _, rate := range rates {
		rc := RunConfig{Rate: rate, DurationSec: durationSec, Seed: seed}
		m, slices, err := RunChainVariants(w, rc, 4)
		if err != nil {
			return nil, fmt.Errorf("bench: panel %s rate %g: %w", p.Label, rate, err)
		}
		out = append(out, Fig19Point{Rate: rate, By: m, Slices: slices})
	}
	return out, nil
}

// Fig11Series regenerates the analytic savings surfaces of Figure 11.
// Panel (a) holds the two memory surfaces; panels (b) and (c) hold the CPU
// surfaces at the three join selectivities the paper plots.
func Fig11Series(gridN int) map[string][]cost.SurfacePoint {
	out := make(map[string][]cost.SurfacePoint)
	out["11a/mem-vs-pullup"] = cost.Surface(cost.MemVsPullUpMetric, 0.1, gridN)
	out["11a/mem-vs-pushdown"] = cost.Surface(cost.MemVsPushDownMetric, 0.1, gridN)
	for _, s1 := range workload.JoinSelectivities {
		out[fmt.Sprintf("11b/cpu-vs-pullup/S1=%g", s1)] = cost.Surface(cost.CPUVsPullUpMetric, s1, gridN)
		out[fmt.Sprintf("11c/cpu-vs-pushdown/S1=%g", s1)] = cost.Surface(cost.CPUVsPushDownMetric, s1, gridN)
	}
	return out
}
