package bench

import (
	"sync/atomic"
	"time"

	"stateslice/internal/fault"
	"stateslice/internal/plan"
	rec "stateslice/internal/recover"
	"stateslice/internal/shard"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// Recovery suite: the cost of the self-healing layer on the sharded
// executor. Three figures matter operationally: how expensive a
// barrier-consistent full-session checkpoint is (latency and blob size),
// how long a supervised replica restart takes before output flows again
// (rebuild from the runner-local snapshot plus delta replay, excluding the
// policy's backoff sleep), and whether the healed run's output still equals
// the unfaulted run's — the equivalence everything else is priced against.
// The suite feeds half the keyed equijoin input, times Checkpoint on the
// live session, injects one replica panic mid second half, and lets
// supervision heal it; an unfaulted reference run over the identical input
// pins the output count.

// RecoveryReport is the recovery suite of the machine-readable report.
type RecoveryReport struct {
	// Shards is the replica count of the supervised sessions.
	Shards int `json:"shards"`
	// SnapshotEvery is the restart policy's snapshot cadence (inputs per
	// runner-local checkpoint), the replay-ring bound.
	SnapshotEvery int `json:"snapshot_every"`
	// Checkpoints is the number of timed full-session checkpoints.
	Checkpoints int `json:"checkpoints"`
	// CheckpointBytes is the encoded blob size of a mid-stream checkpoint
	// of the whole session (all replicas, states included).
	CheckpointBytes int `json:"checkpoint_bytes"`
	// CheckpointMeanMicros and CheckpointMaxMicros aggregate the wall-clock
	// cost of Session.Checkpoint — barrier, per-replica state snapshot,
	// resume — across repetitions, in microseconds.
	CheckpointMeanMicros float64 `json:"checkpoint_mean_micros"`
	CheckpointMaxMicros  float64 `json:"checkpoint_max_micros"`
	// Restarts and ReplayedBatches total the supervised restarts and the
	// feed slabs replayed from the ring across all repetitions.
	Restarts        int `json:"restarts"`
	ReplayedBatches int `json:"replayed_batches"`
	// RestartToFirstOutputMicros is the mean wall time from a replica's
	// death to its rebuilt session accepting feeds again — chain rebuild
	// from the snapshot plus delta replay with duplicate suppression,
	// excluding backoff sleeps. Output resumes on the next fed tuple.
	RestartToFirstOutputMicros float64 `json:"restart_to_first_output_micros"`
	// UnfaultedOutputs is the reference run's result count.
	UnfaultedOutputs uint64 `json:"unfaulted_outputs"`
	// OutputsMatch reports that every healed run delivered exactly the
	// unfaulted reference's result count (false invalidates the suite).
	OutputsMatch bool `json:"outputs_match"`
}

// runRecoverySuite measures checkpoint latency and supervised-restart cost
// at the largest tracked shard count.
func runRecoverySuite(cfg PerfConfig) (*RecoveryReport, error) {
	w, err := workload.NQueriesEquijoin(cfg.Dist, cfg.Queries)
	if err != nil {
		return nil, err
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA:     cfg.Rate,
		RateB:     cfg.Rate,
		Duration:  stream.Seconds(cfg.DurationSec),
		KeyDomain: cfg.KeyDomain,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	shards := 1
	for _, p := range cfg.Shards {
		if p > shards {
			shards = p
		}
	}
	windows := make([]stream.Time, len(w.Queries))
	for i, q := range w.Queries {
		windows[i] = q.Window
	}
	pcfg := plan.StateSliceConfig{Name: "perf", RawSliceResults: true}
	policy := &rec.Restart{
		MaxRestarts:   3,
		Backoff:       time.Microsecond,
		MaxBackoff:    10 * time.Microsecond,
		SnapshotEvery: 512,
	}
	newExec := func(recovery *rec.Restart) (*shard.Executor, error) {
		return shard.New(shard.Config{
			Shards:      shards,
			SampleEvery: 1 << 30,
			SliceMerge:  true,
			Windows:     windows,
			Name:        "perf-recovery",
			Recovery:    recovery,
			RestoreFn: func(_ int, cp *plan.ChainCheckpoint) (*plan.StateSlicePlan, error) {
				return plan.RestoreStateSlice(w, pcfg, cp)
			},
		}, func(int) (*plan.StateSlicePlan, error) {
			return plan.BuildStateSlice(w, pcfg)
		})
	}

	// Unfaulted reference: same executor shape, no fault, no supervision.
	ref, err := shard.New(shard.Config{
		Shards:      shards,
		SampleEvery: 1 << 30,
		SliceMerge:  true,
		Windows:     windows,
		Name:        "perf-recovery-ref",
	}, func(int) (*plan.StateSlicePlan, error) {
		return plan.BuildStateSlice(w, pcfg)
	})
	if err != nil {
		return nil, err
	}
	refRes, err := ref.Run(stream.NewSliceSource(input))
	if err != nil {
		return nil, err
	}

	half := len(input) / 2
	rep := &RecoveryReport{
		Shards:           shards,
		SnapshotEvery:    policy.SnapshotEvery,
		UnfaultedOutputs: refRes.TotalOutputs(),
		OutputsMatch:     true,
	}
	var cpTotal, cpMax time.Duration
	var restartTime time.Duration
	for r := 0; r < cfg.Reps; r++ {
		e, err := newExec(policy)
		if err != nil {
			return nil, err
		}
		for _, t := range input[:half] {
			if err := e.Feed(t); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		cp, err := e.Checkpoint()
		if err != nil {
			return nil, err
		}
		d := time.Since(start)
		cpTotal += d
		rep.Checkpoints++
		if d > cpMax {
			cpMax = d
		}
		if rep.CheckpointBytes == 0 {
			blob, err := cp.Encode()
			if err != nil {
				return nil, err
			}
			rep.CheckpointBytes = len(blob)
		}
		// One replica panic a quarter into the second half; supervision
		// heals it and the run must end with the reference's outputs.
		var fed atomic.Int64
		trip := int64((len(input) - half) / 4)
		restore := fault.Inject(fault.ReplicaFeed, func(int) error {
			if fed.Add(1) == trip {
				panic("bench: injected replica crash")
			}
			return nil
		})
		for _, t := range input[half:] {
			if err := e.Feed(t); err != nil {
				restore()
				return nil, err
			}
		}
		restore()
		res, err := e.Finish()
		if err != nil {
			return nil, err
		}
		if res.Recovery != nil {
			rep.Restarts += res.Recovery.Restarts
			rep.ReplayedBatches += res.Recovery.ReplayedBatches
			restartTime += res.Recovery.RestartTime
		}
		if res.TotalOutputs() != rep.UnfaultedOutputs {
			rep.OutputsMatch = false
		}
	}
	if rep.Checkpoints > 0 {
		rep.CheckpointMeanMicros = float64(cpTotal.Microseconds()) / float64(rep.Checkpoints)
	}
	rep.CheckpointMaxMicros = float64(cpMax.Microseconds())
	if rep.Restarts > 0 {
		rep.RestartToFirstOutputMicros = float64(restartTime.Microseconds()) / float64(rep.Restarts)
	}
	return rep, nil
}
