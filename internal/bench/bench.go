// Package bench contains the experiment harness that regenerates every
// table and figure of the State-Slice paper's evaluation (Section 7). The
// cmd/slicebench binary and the repository's Go benchmarks are thin wrappers
// over the runners here, so the printed series and the benchmark metrics
// always agree.
package bench

import (
	"fmt"

	"stateslice/internal/chain"
	"stateslice/internal/cost"
	"stateslice/internal/engine"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// Strategy names the sharing strategies compared in Figures 17 and 18.
type Strategy string

// The strategies of Section 7.2 plus the unshared reference.
const (
	PullUp     Strategy = "selection-pullup"
	StateSlice Strategy = "state-slice-chain"
	PushDown   Strategy = "selection-pushdown"
	Unshared   Strategy = "unshared"
)

// Strategies3 lists the strategies of the Section 7.2 comparison, in the
// paper's legend order.
func Strategies3() []Strategy { return []Strategy{PullUp, StateSlice, PushDown} }

// RunConfig parameterises one engine execution of a workload.
type RunConfig struct {
	// Rate is the per-stream arrival rate lambda in tuples/sec.
	Rate float64
	// DurationSec is the virtual run length (the paper uses 90 s).
	DurationSec float64
	// Seed seeds the generator; all strategies share the same input.
	Seed int64
	// MetricCsys weighs per-invocation overhead in the comparison-based
	// service-rate proxy. The default 0 reports the paper's pure
	// comparison-count metric of Section 3 (Eq. (1)-(3) charge no
	// per-operator overhead); wall-clock service rate captures the real
	// overhead independently.
	MetricCsys float64
	// OptimizerCsys is the C_sys system-overhead factor fed to the
	// CPU-Opt chain optimizer (Section 5.2), where per-operator overhead
	// is exactly what merging slices trades against routing cost. Zero
	// selects DefaultCsys.
	OptimizerCsys float64
}

// DefaultCsys is the optimizer's system-overhead factor when none is given:
// about three comparisons' worth of work per operator invocation, covering
// queue transfers and scheduling, per the discussion in Section 5.2.
const DefaultCsys = 3.0

// Measurement is one strategy's measured statistics for one run.
type Measurement struct {
	// AvgStateTuples is the mean total join-state size in tuples, the
	// Figure 17 metric.
	AvgStateTuples float64
	// MaxStateTuples is the peak total state size.
	MaxStateTuples int
	// ServiceRate is tuples (inputs + outputs) per wall-clock second, the
	// Figure 18/19 metric on the host machine.
	ServiceRate float64
	// CompRate is tuples per million modelled comparisons, the
	// hardware-independent service-rate proxy (higher is better).
	CompRate float64
	// Comparisons is the total comparison count of the run.
	Comparisons uint64
	// Outputs is the total number of result tuples delivered.
	Outputs uint64
	// Inputs is the number of source tuples processed.
	Inputs int
}

// measure converts an engine result.
func measure(res *engine.Result, csys float64) Measurement {
	return Measurement{
		AvgStateTuples: res.Memory.Avg,
		MaxStateTuples: res.Memory.Max,
		ServiceRate:    res.ServiceRate(),
		CompRate:       res.ComparisonRate(csys),
		Comparisons:    res.Meter.Comparisons(),
		Outputs:        res.TotalOutputs(),
		Inputs:         res.Inputs,
	}
}

// generate produces the shared input for a run configuration.
func generate(rc RunConfig) ([]*stream.Tuple, error) {
	return stream.Generate(stream.GeneratorConfig{
		RateA:    rc.Rate,
		RateB:    rc.Rate,
		Duration: stream.Seconds(rc.DurationSec),
		Seed:     rc.Seed,
	})
}

// buildStrategy assembles the plan for one strategy over a workload.
func buildStrategy(s Strategy, w plan.Workload) (*engine.Plan, error) {
	switch s {
	case PullUp:
		return BuildPullUpPlan(w)
	case PushDown:
		return BuildPushDownPlan(w)
	case StateSlice:
		sp, err := plan.BuildStateSlice(w, plan.StateSliceConfig{})
		if err != nil {
			return nil, err
		}
		return sp.Plan, nil
	case Unshared:
		return plan.BuildUnshared(w, false)
	default:
		return nil, fmt.Errorf("bench: unknown strategy %q", s)
	}
}

// BuildPullUpPlan exposes the pull-up builder without result collection.
func BuildPullUpPlan(w plan.Workload) (*engine.Plan, error) { return plan.BuildPullUp(w, false) }

// BuildPushDownPlan exposes the push-down builder without result collection.
func BuildPushDownPlan(w plan.Workload) (*engine.Plan, error) { return plan.BuildPushDown(w, false) }

// RunStrategies executes the given strategies over the same generated input
// and returns per-strategy measurements. SampleEvery tunes the memory
// monitor (1 = every arrival).
func RunStrategies(w plan.Workload, strategies []Strategy, rc RunConfig, sampleEvery int) (map[Strategy]Measurement, error) {
	input, err := generate(rc)
	if err != nil {
		return nil, err
	}
	out := make(map[Strategy]Measurement, len(strategies))
	for _, s := range strategies {
		p, err := buildStrategy(s, w)
		if err != nil {
			return nil, fmt.Errorf("bench: build %s: %w", s, err)
		}
		res, err := engine.Run(p, input, engine.Config{SampleEvery: sampleEvery})
		if err != nil {
			return nil, fmt.Errorf("bench: run %s: %w", s, err)
		}
		if res.OrderViolations != 0 {
			return nil, fmt.Errorf("bench: %s delivered %d results out of order", s, res.OrderViolations)
		}
		out[s] = measure(res, rc.MetricCsys)
	}
	return out, nil
}

// ChainVariant names the two chain build-ups compared in Figure 19.
type ChainVariant string

// The Figure 19 variants.
const (
	MemOpt ChainVariant = "mem-opt"
	CPUOpt ChainVariant = "cpu-opt"
)

// RunChainVariants executes the Mem-Opt and CPU-Opt chains for a workload
// over the same input, as in Section 7.3. It returns the measurements plus
// the slice counts of both chains.
func RunChainVariants(w plan.Workload, rc RunConfig, sampleEvery int) (map[ChainVariant]Measurement, map[ChainVariant]int, error) {
	optCsys := rc.OptimizerCsys
	if optCsys == 0 {
		optCsys = DefaultCsys
	}
	specs := workload.Specs(w)
	cpuEnds, err := chain.CPUOptEnds(specs, cost.ChainParams{
		LambdaA: rc.Rate,
		LambdaB: rc.Rate,
		TupleKB: 1,
		SelJoin: joinSelectivity(w),
		Csys:    optCsys,
	})
	if err != nil {
		return nil, nil, err
	}
	variants := map[ChainVariant][]stream.Time{
		MemOpt: nil, // nil selects the Mem-Opt boundaries
		CPUOpt: workload.EndsToTimes(cpuEnds.Ends),
	}
	input, err := generate(rc)
	if err != nil {
		return nil, nil, err
	}
	meas := make(map[ChainVariant]Measurement, 2)
	slices := make(map[ChainVariant]int, 2)
	for v, ends := range variants {
		sp, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Ends: ends, Name: string(v)})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: build %s: %w", v, err)
		}
		res, err := engine.Run(sp.Plan, input, engine.Config{SampleEvery: sampleEvery})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: run %s: %w", v, err)
		}
		if res.OrderViolations != 0 {
			return nil, nil, fmt.Errorf("bench: %s delivered %d results out of order", v, res.OrderViolations)
		}
		meas[v] = measure(res, rc.MetricCsys)
		slices[v] = len(sp.Slices())
	}
	return meas, slices, nil
}

// joinSelectivity extracts the modelled join selectivity of a workload.
func joinSelectivity(w plan.Workload) float64 {
	if fm, ok := w.Join.(stream.FractionMatch); ok {
		return fm.S
	}
	return 0.1
}
