package bench

import (
	"reflect"
	"testing"
)

// TestTable2Trace verifies the execution trace of the paper's Table 2,
// row by row. Rows 1-7 are reproduced exactly as printed. The published
// rows 8-10 are internally inconsistent (a3 appears in the queue at row 9
// although J1 never ran after row 8); with self-purge enabled — the
// mechanism footnote 1 mentions — rows 9 and 10 match the paper exactly,
// and row 8 differs only by a3 having moved at arrival time instead of
// afterwards.
func TestTable2TraceCrossPurgeRows1to8(t *testing.T) {
	rows, err := Table2Trace(false)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		j1, q, j2, out []string
	}
	wants := []want{
		1: {j1: s("a1"), q: s(), j2: s(), out: s()},
		2: {j1: s("a2", "a1"), q: s(), j2: s(), out: s()},
		3: {j1: s("a3", "a2", "a1"), q: s(), j2: s(), out: s()},
		4: {j1: s("a3", "a2"), q: s("b1", "a1"), j2: s(), out: s("(a2,b1)", "(a3,b1)")},
		5: {j1: s("a3"), q: s("b2", "a2", "b1", "a1"), j2: s(), out: s("(a3,b2)")},
		6: {j1: s("a3"), q: s("b2", "a2", "b1"), j2: s("a1"), out: s()},
		7: {j1: s("a3"), q: s("b2", "a2"), j2: s("a1"), out: s("(a1,b1)")},
		8: {j1: s("a4", "a3"), q: s("b2", "a2"), j2: s("a1"), out: s()},
	}
	for tt := 1; tt <= 8; tt++ {
		row := rows[tt-1]
		w := wants[tt]
		if !reflect.DeepEqual(row.StateJ1, w.j1) {
			t.Errorf("row %d: J1 state %v, want %v", tt, row.StateJ1, w.j1)
		}
		if !reflect.DeepEqual(row.Queue, w.q) {
			t.Errorf("row %d: queue %v, want %v", tt, row.Queue, w.q)
		}
		if !reflect.DeepEqual(row.StateJ2, w.j2) {
			t.Errorf("row %d: J2 state %v, want %v", tt, row.StateJ2, w.j2)
		}
		if !reflect.DeepEqual(row.Output, w.out) {
			t.Errorf("row %d: output %v, want %v", tt, row.Output, w.out)
		}
	}
}

func TestTable2TraceSelfPurgeRows9and10(t *testing.T) {
	rows, err := Table2Trace(true)
	if err != nil {
		t.Fatal(err)
	}
	// Row 9 (paper): J2 runs, a2 inserted; queue [a3,b2]; J2 = [a2,a1].
	r9 := rows[8]
	if !reflect.DeepEqual(r9.StateJ1, s("a4")) {
		t.Errorf("row 9: J1 %v, want [a4]", r9.StateJ1)
	}
	if !reflect.DeepEqual(r9.Queue, s("a3", "b2")) {
		t.Errorf("row 9: queue %v, want [a3 b2]", r9.Queue)
	}
	if !reflect.DeepEqual(r9.StateJ2, s("a2", "a1")) {
		t.Errorf("row 9: J2 %v, want [a2 a1]", r9.StateJ2)
	}
	// Row 10 (paper): J2 processes b2, outputs (a1,b2),(a2,b2).
	r10 := rows[9]
	if !reflect.DeepEqual(r10.StateJ2, s("a2", "a1")) {
		t.Errorf("row 10: J2 %v, want [a2 a1]", r10.StateJ2)
	}
	if !reflect.DeepEqual(r10.Queue, s("a3")) {
		t.Errorf("row 10: queue %v, want [a3]", r10.Queue)
	}
	if !reflect.DeepEqual(r10.Output, s("(a1,b2)", "(a2,b2)")) {
		t.Errorf("row 10: output %v, want [(a1,b2) (a2,b2)]", r10.Output)
	}
}

func TestTable2UnionEqualsRegularJoin(t *testing.T) {
	// Section 4.1: "the union of the join results of J1 and J2 is
	// equivalent to the results of a regular sliding window join
	// A[w2] |>< B" — over this trace that is all pairs with
	// Tb - Ta <= 4s: b1 joins a1,a2,a3 and b2 joins a1..a3.
	rows, err := Table2Trace(false)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range rows {
		for _, o := range r.Output {
			if got[o] {
				t.Errorf("duplicate result %s", o)
			}
			got[o] = true
		}
	}
	want := []string{"(a1,b1)", "(a2,b1)", "(a3,b1)", "(a1,b2)", "(a2,b2)", "(a3,b2)"}
	if len(got) != len(want) {
		t.Fatalf("got %d results %v, want %d", len(got), got, len(want))
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing %s", w)
		}
	}
}

func TestTraceRowString(t *testing.T) {
	rows, err := Table2Trace(false)
	if err != nil {
		t.Fatal(err)
	}
	if str := rows[3].String(); str == "" {
		t.Error("empty row rendering")
	}
}

// s builds a string slice literal (nil-free for reflect.DeepEqual).
func s(xs ...string) []string {
	if xs == nil {
		return []string{}
	}
	return xs
}
