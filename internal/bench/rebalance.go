package bench

import (
	"time"

	"stateslice/internal/plan"
	"stateslice/internal/shard"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// Rebalance suite: the payoff and the cost of adaptive shard rebalancing.
// The band-join twin is fed a quadratic key skew (k -> floor(k^2/dom)), the
// load a fixed equi-width range split handles worst: the low shards soak up
// most of the probe work while the high shards idle. The suite runs the
// skewed feed twice at the largest tracked shard count — once on the fixed
// split, once rebalancing onto learned equi-depth cuts an eighth into the
// stream — and records the per-replica probe-comparison imbalance of both,
// the wall-clock cost of the rebalance barrier (snapshot, redistribute,
// rebuild), and whether the rebalanced run still delivered the fixed run's
// output count.

// RebalanceReport is the adaptive-rebalancing suite of the machine-readable
// report.
type RebalanceReport struct {
	// Shards is the replica count of both runs.
	Shards int `json:"shards"`
	// Inputs is the number of source tuples of the skewed feed.
	Inputs int `json:"inputs"`
	// ImbalanceBefore is the fixed split's max/mean per-replica
	// probe-comparison ratio on the skewed feed (1 = perfectly balanced).
	ImbalanceBefore float64 `json:"imbalance_before"`
	// ImbalanceAfter is the same ratio for the run that rebalanced onto
	// learned equi-depth cuts mid-stream.
	ImbalanceAfter float64 `json:"imbalance_after"`
	// RebalanceBarrierMicros is the wall-clock cost of the Rebalance call:
	// checkpoint barrier, state redistribution, replica rebuild barrier.
	RebalanceBarrierMicros float64 `json:"rebalance_barrier_micros"`
	// Moved reports that the planner actually installed new cuts (false
	// invalidates the suite: the skew scenario no-opped).
	Moved bool `json:"moved"`
	// OutputsMatch reports that the rebalanced run delivered exactly the
	// fixed run's result count (false invalidates the suite).
	OutputsMatch bool `json:"outputs_match"`
}

// runRebalanceSuite measures the skewed band feed on the fixed split and
// through a mid-stream rebalance at the largest tracked shard count.
func runRebalanceSuite(cfg PerfConfig) (*RebalanceReport, error) {
	shards := 1
	for _, p := range cfg.Shards {
		if p > shards {
			shards = p
		}
	}
	if shards < 2 {
		return nil, nil // nothing to rebalance
	}
	w, err := workload.NQueriesBand(cfg.Dist, cfg.Queries, cfg.BandWidth)
	if err != nil {
		return nil, err
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA:     cfg.Rate,
		RateB:     cfg.Rate,
		Duration:  stream.Seconds(cfg.DurationSec),
		KeyDomain: workload.BandKeyDomain,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	for _, t := range input {
		t.Key = (t.Key * t.Key) / workload.BandKeyDomain
	}
	windows := make([]stream.Time, len(w.Queries))
	for i, q := range w.Queries {
		windows[i] = q.Window
	}
	pcfg := plan.StateSliceConfig{Name: "perf", RawSliceResults: true}
	band := &shard.Band{Width: cfg.BandWidth, MinKey: 0, MaxKey: workload.BandKeyDomain - 1}
	newExec := func(name string) (*shard.Executor, error) {
		return shard.New(shard.Config{
			Shards:      shards,
			SampleEvery: 1 << 30,
			Band:        band,
			SliceMerge:  true,
			Windows:     windows,
			Name:        name,
			RestoreFn: func(_ int, cp *plan.ChainCheckpoint) (*plan.StateSlicePlan, error) {
				return plan.RestoreStateSlice(w, pcfg, cp)
			},
		}, func(int) (*plan.StateSlicePlan, error) {
			return plan.BuildStateSlice(w, pcfg)
		})
	}

	fixed, err := newExec("perf-rebalance-fixed")
	if err != nil {
		return nil, err
	}
	fixedRes, err := fixed.Run(stream.NewSliceSource(input))
	if err != nil {
		return nil, err
	}

	reb, err := newExec("perf-rebalance")
	if err != nil {
		return nil, err
	}
	eighth := len(input) / 8
	for _, t := range input[:eighth] {
		if err := reb.Feed(t); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	moved, err := reb.Rebalance()
	if err != nil {
		return nil, err
	}
	barrier := time.Since(start)
	for _, t := range input[eighth:] {
		if err := reb.Feed(t); err != nil {
			return nil, err
		}
	}
	rebRes, err := reb.Finish()
	if err != nil {
		return nil, err
	}

	return &RebalanceReport{
		Shards:                 shards,
		Inputs:                 len(input),
		ImbalanceBefore:        comparisonImbalance(fixedRes.ReplicaComparisons),
		ImbalanceAfter:         comparisonImbalance(rebRes.ReplicaComparisons),
		RebalanceBarrierMicros: float64(barrier.Microseconds()),
		Moved:                  moved,
		OutputsMatch:           rebRes.TotalOutputs() == fixedRes.TotalOutputs(),
	}, nil
}

// comparisonImbalance is the max/mean ratio of per-replica probe-comparison
// counts; 0 when no probes were recorded.
func comparisonImbalance(counts []uint64) float64 {
	var max, sum uint64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(counts)) / float64(sum)
}
