package bench

import (
	"fmt"
	"time"

	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// Admission suite: the cost of growing a live chain query by query
// (plan.Attach at a feed barrier) against the same query set built in from
// the start. The suite starts a chain with only the largest-window query of
// the equijoin twin workload, streams the first half of the input, attaches
// the remaining N-1 queries one by one — timing each barrier — and streams
// the second half. The built-in baseline runs the full N-query chain over
// the identical input and times the same second half, so the two
// steady-state figures price exactly the same post-admission work: the
// admitted chain must deliver the identical number of second-half results
// (OutputsMatch pins that), it just acquired its subscribers without a
// rebuild or replay.

// AdmissionReport is the admission suite of the machine-readable report.
type AdmissionReport struct {
	// Queries is the final query count of both variants.
	Queries int `json:"queries"`
	// Attaches is the number of timed live admissions (Queries - 1).
	Attaches int `json:"attaches"`
	// AttachMeanMicros and AttachMaxMicros aggregate the wall-clock cost
	// of one Attach barrier — drain, at most one slice split, subscriber
	// rewiring, drain — across all repetitions, in microseconds.
	AttachMeanMicros float64 `json:"attach_mean_micros"`
	AttachMaxMicros  float64 `json:"attach_max_micros"`
	// AdmittedSteadyRate and BuiltinSteadyRate are the second-half service
	// rates (tuples/sec, best repetition) of the chain that attached its
	// queries mid-stream and of the chain built with all of them.
	AdmittedSteadyRate float64 `json:"admitted_steady_rate"`
	BuiltinSteadyRate  float64 `json:"builtin_steady_rate"`
	// SteadyOutputs is the number of result tuples both variants delivered
	// over the measured second half.
	SteadyOutputs uint64 `json:"steady_outputs"`
	// OutputsMatch reports that the admitted chain's second-half output
	// count equaled the built-in chain's — the equivalence the admission
	// protocol promises (false would invalidate the comparison).
	OutputsMatch bool `json:"outputs_match"`
}

// runAdmissionSuite measures the admission suite on the sequential engine
// with the paper-faithful per-tuple schedule.
func runAdmissionSuite(cfg PerfConfig) (*AdmissionReport, error) {
	w, err := workload.NQueriesEquijoin(cfg.Dist, cfg.Queries)
	if err != nil {
		return nil, err
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA:     cfg.Rate,
		RateB:     cfg.Rate,
		Duration:  stream.Seconds(cfg.DurationSec),
		KeyDomain: cfg.KeyDomain,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	half := len(input) / 2
	base := plan.Workload{
		Queries: []plan.Query{w.Queries[len(w.Queries)-1]},
		Join:    w.Join,
	}
	rep := &AdmissionReport{Queries: len(w.Queries), Attaches: len(w.Queries) - 1}
	var attachTotal, attachMax time.Duration
	attachCount := 0
	var admittedOuts, builtinOuts uint64

	for r := 0; r < cfg.Reps; r++ {
		// Admitted variant: largest window only, then N-1 live attaches.
		sp, err := plan.BuildStateSlice(base, plan.StateSliceConfig{Name: "admit", Migratable: true})
		if err != nil {
			return nil, err
		}
		s, err := engine.NewSession(sp.Plan, engineConfig(1))
		if err != nil {
			return nil, err
		}
		if err := feedAll(s, input[:half]); err != nil {
			return nil, err
		}
		for _, q := range w.Queries[:len(w.Queries)-1] {
			start := time.Now()
			if _, err := sp.Attach(s, q); err != nil {
				return nil, fmt.Errorf("bench: admission suite: %w", err)
			}
			d := time.Since(start)
			attachTotal += d
			attachCount++
			if d > attachMax {
				attachMax = d
			}
		}
		pre := sinkTotal(sp.Sinks())
		start := time.Now()
		if err := feedAll(s, input[half:]); err != nil {
			return nil, err
		}
		s.Drain()
		wall := time.Since(start)
		admittedOuts = sinkTotal(sp.Sinks()) - pre
		if rate := steadyRate(len(input)-half, admittedOuts, wall); rate > rep.AdmittedSteadyRate {
			rep.AdmittedSteadyRate = rate
		}

		// Built-in baseline: the full chain with the identical migratable
		// wiring (one union per query), same input, same measured half.
		bp, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Name: "builtin", Migratable: true})
		if err != nil {
			return nil, err
		}
		bs, err := engine.NewSession(bp.Plan, engineConfig(1))
		if err != nil {
			return nil, err
		}
		if err := feedAll(bs, input[:half]); err != nil {
			return nil, err
		}
		pre = sinkTotal(bp.Sinks())
		start = time.Now()
		if err := feedAll(bs, input[half:]); err != nil {
			return nil, err
		}
		bs.Drain()
		wall = time.Since(start)
		builtinOuts = sinkTotal(bp.Sinks()) - pre
		if rate := steadyRate(len(input)-half, builtinOuts, wall); rate > rep.BuiltinSteadyRate {
			rep.BuiltinSteadyRate = rate
		}
	}
	if attachCount > 0 {
		rep.AttachMeanMicros = float64(attachTotal.Microseconds()) / float64(attachCount)
	}
	rep.AttachMaxMicros = float64(attachMax.Microseconds())
	rep.SteadyOutputs = builtinOuts
	rep.OutputsMatch = admittedOuts == builtinOuts
	return rep, nil
}

// feedAll feeds a batch tuple by tuple.
func feedAll(s *engine.Session, tuples []*stream.Tuple) error {
	for _, t := range tuples {
		if err := s.Feed(t); err != nil {
			return err
		}
	}
	return nil
}

// sinkTotal sums the per-sink delivery counts.
func sinkTotal(sinks []*operator.Sink) uint64 {
	var n uint64
	for _, sk := range sinks {
		n += sk.Count()
	}
	return n
}

// steadyRate is the service rate of a measured half-run.
func steadyRate(inputs int, outputs uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(inputs+int(outputs)) / wall.Seconds()
}
