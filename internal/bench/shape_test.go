package bench

import (
	"testing"

	"stateslice/internal/workload"
)

// The tests here verify the qualitative results of the paper's evaluation
// (Section 7) on scaled-down runs: who wins, by roughly what factor, and
// how the gap moves with the workload parameters. Absolute numbers differ
// from the paper (different hardware and engine), but the orderings are the
// reproduction target.

const (
	testDuration = 25.0 // virtual seconds (paper: 90; scaled for test speed)
	testSeed     = 1234
)

func testRates() []float64 { return []float64{20, 60} }

func TestFig17StateSliceMinimizesMemory(t *testing.T) {
	// Figure 17: "the state-slice sharing always achieves the minimal
	// memory consumption, with the memory savings ranging from 20% to
	// 30%" (against the worse alternative per panel).
	for _, p := range Fig17Panels() {
		pts, err := RunPanel(p, testRates(), testDuration, testSeed)
		if err != nil {
			t.Fatalf("%s: %v", p.Label, err)
		}
		for _, pt := range pts {
			sl := pt.By[StateSlice].AvgStateTuples
			pu := pt.By[PullUp].AvgStateTuples
			pd := pt.By[PushDown].AvgStateTuples
			if sl > pu || sl > pd {
				t.Errorf("%s rate %g: state-slice %f not minimal (pullup %f, pushdown %f)",
					p.Label, pt.Rate, sl, pu, pd)
			}
			worst := pu
			if pd > worst {
				worst = pd
			}
			if saving := (worst - sl) / worst; saving < 0.08 {
				t.Errorf("%s rate %g: memory saving vs worst alternative only %.1f%%",
					p.Label, pt.Rate, 100*saving)
			}
		}
	}
}

func TestFig17MemoryGrowsLinearlyWithRate(t *testing.T) {
	// States hold lambda*W tuples, so doubling the rate roughly doubles
	// the sampled state size for every strategy.
	p := Fig17Panels()[1] // uniform windows
	pts, err := RunPanel(p, []float64{20, 40}, testDuration, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies3() {
		ratio := pts[1].By[s].AvgStateTuples / pts[0].By[s].AvgStateTuples
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("%s: memory ratio at 2x rate = %.2f, want about 2", s, ratio)
		}
	}
}

func TestFig17JoinSelectivityDoesNotAffectMemory(t *testing.T) {
	// Comparing Figures 17(b) and 17(e): "S1 does not affect the memory
	// usage since the number of joined tuples is unrelated to the state
	// memory of the join."
	b := Fig17Panel{"17b", workload.Uniform, 0.1, 0.5}
	e := Fig17Panel{"17e", workload.Uniform, 0.025, 0.5}
	ptsB, err := RunPanel(b, []float64{40}, testDuration, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	ptsE, err := RunPanel(e, []float64{40}, testDuration, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies3() {
		mb, me := ptsB[0].By[s].AvgStateTuples, ptsE[0].By[s].AvgStateTuples
		if diff := (mb - me) / mb; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: memory differs with join selectivity: %f vs %f", s, mb, me)
		}
	}
}

func TestFig18StateSliceBeatsPullUp(t *testing.T) {
	// Figure 18: the state-slice chain outperforms selection pull-up on
	// every panel, by a margin that grows with the input rate and the
	// join selectivity (up to about 40%).
	for _, p := range Fig18Panels() {
		pts, err := RunPanel(p, testRates(), testDuration, testSeed)
		if err != nil {
			t.Fatalf("%s: %v", p.Label, err)
		}
		for _, pt := range pts {
			sl := pt.By[StateSlice].Comparisons
			pu := pt.By[PullUp].Comparisons
			if sl >= pu {
				t.Errorf("%s rate %g: state-slice comparisons %d not below pull-up %d",
					p.Label, pt.Rate, sl, pu)
				continue
			}
			// Eq. (4) predicts savings from about 10% (low S1, high
			// Ssigma) up to 60%; allow warm-up attenuation on the
			// short test runs.
			if saving := float64(pu-sl) / float64(pu); saving < 0.05 {
				t.Errorf("%s rate %g: CPU saving vs pull-up only %.1f%%", p.Label, pt.Rate, 100*saving)
			}
		}
	}
}

func TestFig18StateSliceVsPushDown(t *testing.T) {
	// Against push-down the paper's analytical saving is
	// Ssigma*S1/(rho(1-Ssigma)+Ssigma+Ssigma*S1+rho*S1) — small at low
	// selectivities and growing with S1 and Ssigma. The measured
	// comparison counts must match that shape: state-slice wins clearly
	// on the high-S1 panel and never loses more than a whisker on the
	// low-S1 low-Ssigma panel, where the predicted saving is under 1%.
	high := Fig17Panel{"18f", workload.Uniform, 0.4, 0.8}
	pts, err := RunPanel(high, testRates(), testDuration, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		sl := pt.By[StateSlice].Comparisons
		pd := pt.By[PushDown].Comparisons
		if sl >= pd {
			t.Errorf("high-selectivity panel rate %g: state-slice %d not below push-down %d",
				pt.Rate, sl, pd)
		} else if saving := float64(pd-sl) / float64(pd); saving < 0.1 {
			t.Errorf("high-selectivity panel rate %g: saving vs push-down only %.1f%%", pt.Rate, 100*saving)
		}
	}
	low := Fig17Panel{"17d", workload.Uniform, 0.025, 0.2}
	pts, err = RunPanel(low, testRates(), testDuration, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		sl := float64(pt.By[StateSlice].Comparisons)
		pd := float64(pt.By[PushDown].Comparisons)
		if sl > 1.03*pd {
			t.Errorf("low-selectivity panel rate %g: state-slice %0.f more than 3%% above push-down %0.f",
				pt.Rate, sl, pd)
		}
	}
}

func TestFig18GapGrowsWithRate(t *testing.T) {
	// "with increasing data input rate, more performance improvements can
	// be expected from the state-slice sharing": the routing cost of the
	// alternatives grows quadratically with lambda, the extra purging of
	// the chain only linearly.
	p := Fig18Panels()[1]
	pts, err := RunPanel(p, []float64{20, 80}, testDuration, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	savingAt := func(pt PanelPoint) float64 {
		pu := float64(pt.By[PullUp].Comparisons)
		sl := float64(pt.By[StateSlice].Comparisons)
		return (pu - sl) / pu
	}
	if s20, s80 := savingAt(pts[0]), savingAt(pts[1]); s80 < s20-0.02 {
		t.Errorf("saving shrank with rate: %.1f%% at 20 t/s vs %.1f%% at 80 t/s", 100*s20, 100*s80)
	}
}

func TestFig19CPUOptVsMemOpt(t *testing.T) {
	// Figure 19: on uniform window distributions the CPU-Opt chain is
	// (nearly) the Mem-Opt chain; on skewed distributions it merges the
	// clustered small windows, runs fewer sliced joins, and achieves a
	// higher service rate. The harness reports the overhead-weighted
	// comparison metric (MetricCsys = DefaultCsys), which stands in for
	// the paper's wall-clock service rate.
	for _, p := range []Fig19Panel{
		{"19a", workload.Uniform, 12},
		{"19b", workload.MostlySmall, 12},
		{"19c", workload.SmallLarge, 12},
	} {
		w, err := workload.NQueries(p.Dist, p.Queries, 0.025)
		if err != nil {
			t.Fatal(err)
		}
		rc := RunConfig{Rate: 20, DurationSec: testDuration, Seed: testSeed, MetricCsys: DefaultCsys}
		meas, slices, err := RunChainVariants(w, rc, 4)
		if err != nil {
			t.Fatalf("%s: %v", p.Label, err)
		}
		if slices[MemOpt] != 12 {
			t.Errorf("%s: Mem-Opt chain has %d slices, want 12", p.Label, slices[MemOpt])
		}
		if p.Dist != workload.Uniform && slices[CPUOpt] >= slices[MemOpt] {
			t.Errorf("%s: CPU-Opt should merge skewed windows (got %d slices)", p.Label, slices[CPUOpt])
		}
		if m, c := meas[MemOpt].CompRate, meas[CPUOpt].CompRate; c < 0.99*m {
			t.Errorf("%s: CPU-Opt rate %.0f below Mem-Opt %.0f", p.Label, c, m)
		}
		if p.Dist == workload.SmallLarge {
			if m, c := meas[MemOpt].CompRate, meas[CPUOpt].CompRate; c < 1.02*m {
				t.Errorf("%s: CPU-Opt should clearly beat Mem-Opt on skewed windows (%.0f vs %.0f)",
					p.Label, c, m)
			}
		}
	}
}

func TestFig19BenefitGrowsWithQueryCount(t *testing.T) {
	// Figures 19(c)-(e): "The benefit of CPU-Opt over Mem-Opt chain also
	// increases along with the number of queries."
	if testing.Short() {
		t.Skip("long sweep")
	}
	gain := func(n int) float64 {
		w, err := workload.NQueries(workload.SmallLarge, n, 0.025)
		if err != nil {
			t.Fatal(err)
		}
		rc := RunConfig{Rate: 20, DurationSec: testDuration, Seed: testSeed, MetricCsys: DefaultCsys}
		meas, _, err := RunChainVariants(w, rc, 8)
		if err != nil {
			t.Fatal(err)
		}
		return meas[CPUOpt].CompRate / meas[MemOpt].CompRate
	}
	g12, g36 := gain(12), gain(36)
	if g36 < g12 {
		t.Errorf("CPU-Opt gain fell with query count: %.3f at 12 vs %.3f at 36", g12, g36)
	}
}

func TestFig11SeriesCoverage(t *testing.T) {
	series := Fig11Series(8)
	wantKeys := []string{
		"11a/mem-vs-pullup", "11a/mem-vs-pushdown",
		"11b/cpu-vs-pullup/S1=0.025", "11b/cpu-vs-pullup/S1=0.1", "11b/cpu-vs-pullup/S1=0.4",
		"11c/cpu-vs-pushdown/S1=0.025", "11c/cpu-vs-pushdown/S1=0.1", "11c/cpu-vs-pushdown/S1=0.4",
	}
	for _, k := range wantKeys {
		pts, ok := series[k]
		if !ok {
			t.Errorf("missing series %q", k)
			continue
		}
		if len(pts) != 64 {
			t.Errorf("series %q has %d points, want 64", k, len(pts))
		}
		for _, pt := range pts {
			if pt.Value < 0 {
				t.Errorf("series %q has negative saving %.2f%% at rho=%.2f Ssigma=%.2f — "+
					"Eq. (4) savings are always positive", k, pt.Value, pt.Rho, pt.SSigma)
			}
		}
	}
}

func TestRunStrategiesUnknown(t *testing.T) {
	w, err := workload.ThreeQueries(workload.Uniform, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Rate: 10, DurationSec: 2, Seed: 1}
	if _, err := RunStrategies(w, []Strategy{"nonsense"}, rc, 1); err == nil {
		t.Error("unknown strategy must fail")
	}
}

func TestUnsharedStrategyRuns(t *testing.T) {
	w, err := workload.ThreeQueries(workload.Uniform, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Rate: 20, DurationSec: 10, Seed: 3}
	m, err := RunStrategies(w, []Strategy{Unshared, StateSlice}, rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sharing must not use more state than the unshared plans (Theorem 3
	// plus selection push-down: the chain holds a subset).
	if m[StateSlice].AvgStateTuples > m[Unshared].AvgStateTuples {
		t.Errorf("state-slice %f tuples above unshared %f",
			m[StateSlice].AvgStateTuples, m[Unshared].AvgStateTuples)
	}
	if m[StateSlice].Outputs != m[Unshared].Outputs {
		t.Errorf("outputs differ: %d vs %d", m[StateSlice].Outputs, m[Unshared].Outputs)
	}
}
