package bench

import (
	"fmt"
	"strings"

	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// TraceRow is one row of the Table 2 execution trace: the operator scheduled
// at second T, the resulting states of both sliced joins, the connecting
// queue, and the emitted join results. Lists are rendered newest-first,
// matching the paper's notation.
type TraceRow struct {
	// T is the schedule second (1-10).
	T int
	// Arrival names the tuple arriving at the start of the second, if any.
	Arrival string
	// Op is the operator that ran ("J1" or "J2").
	Op string
	// StateJ1 and StateJ2 are the A-state contents after the run.
	StateJ1, StateJ2 []string
	// Queue is the connecting queue content after the run.
	Queue []string
	// Output lists the join results emitted during the run.
	Output []string
}

// String renders the row like a Table 2 line.
func (r TraceRow) String() string {
	return fmt.Sprintf("%2d %-4s %-3s A::[0,2]=%-14s Q=%-22s A::[2,4]=%-12s out=%s",
		r.T, r.Arrival, r.Op,
		"["+strings.Join(r.StateJ1, ",")+"]",
		"["+strings.Join(r.Queue, ",")+"]",
		"["+strings.Join(r.StateJ2, ",")+"]",
		strings.Join(r.Output, " "))
}

// Table2Trace replays the execution of the paper's Table 2: a chain of two
// sliced one-way window joins A[0,2s] |>< B and A[2s,4s] |>< B under
// Cartesian-product semantics, with one tuple arriving per second
// (a1,a2,a3,b1,b2 at seconds 1-5, a4 at second 8) and one operator run per
// second (J1 at seconds 1-5 and 8, J2 at 6,7,9,10).
//
// selfPurge enables purging of the A state by arriving A tuples (footnote 1
// of the paper). The published table is internally inconsistent around row
// 8: rows 1-7 show pure cross-purge behaviour, while rows 9-10 show a3
// already moved to the queue, which only self-purge explains. With selfPurge
// set, rows 9 and 10 match the paper exactly and row 8 differs only in
// showing a3 already purged; without it, rows 1-8 match and a3 stays in J1.
func Table2Trace(selfPurge bool) ([]TraceRow, error) {
	inQ := stream.NewQueue()
	j1, err := operator.NewSlicedOneWayJoin("J1", 0, 2*stream.Second, stream.CrossProduct{}, inQ)
	if err != nil {
		return nil, err
	}
	midQ := j1.Next().NewQueue()
	j2, err := operator.NewSlicedOneWayJoin("J2", 2*stream.Second, 4*stream.Second, stream.CrossProduct{}, midQ)
	if err != nil {
		return nil, err
	}
	if selfPurge {
		j1.WithSelfPurge()
		j2.WithSelfPurge()
	}
	out1 := j1.Result().NewQueue()
	out2 := j2.Result().NewQueue()

	var mb stream.ManualBuilder
	arrivals := map[int]*stream.Tuple{
		1: mb.Add(stream.StreamA, 1*stream.Second),
		2: mb.Add(stream.StreamA, 2*stream.Second),
		3: mb.Add(stream.StreamA, 3*stream.Second),
		4: mb.Add(stream.StreamB, 4*stream.Second),
		5: mb.Add(stream.StreamB, 5*stream.Second),
		8: mb.Add(stream.StreamA, 8*stream.Second),
	}
	schedule := map[int]operator.Operator{
		1: j1, 2: j1, 3: j1, 4: j1, 5: j1,
		6: j2, 7: j2, 8: j1, 9: j2, 10: j2,
	}

	var rows []TraceRow
	meter := &operator.CostMeter{}
	for t := 1; t <= 10; t++ {
		row := TraceRow{T: t}
		if tp, ok := arrivals[t]; ok {
			row.Arrival = tp.String()
			inQ.PushTuple(tp)
		}
		op := schedule[t]
		row.Op = op.Name()
		op.Step(meter, 1) // each run processes one input tuple (Table 2)
		row.StateJ1 = newestFirst(j1.StateSnapshot())
		row.StateJ2 = newestFirst(j2.StateSnapshot())
		row.Queue = newestFirstItems(midQ.Snapshot())
		row.Output = drainResults(out1, out2)
		rows = append(rows, row)
	}
	return rows, nil
}

// newestFirst renders tuples newest-first, the paper's notation.
func newestFirst(ts []*stream.Tuple) []string {
	out := make([]string, 0, len(ts))
	for i := len(ts) - 1; i >= 0; i-- {
		out = append(out, ts[i].String())
	}
	return out
}

// newestFirstItems renders queue items newest-first, skipping punctuations.
func newestFirstItems(items []stream.Item) []string {
	out := []string{}
	for i := len(items) - 1; i >= 0; i-- {
		if !items[i].IsPunct() {
			out = append(out, items[i].Tuple.String())
		}
	}
	return out
}

// drainResults pops all joined tuples from the result queues.
func drainResults(qs ...*stream.Queue) []string {
	out := []string{}
	for _, q := range qs {
		for !q.Empty() {
			it := q.Pop()
			if !it.IsPunct() {
				out = append(out, it.Tuple.String())
			}
		}
	}
	return out
}
