package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// This file proves the central claim of the batching refactor: the engine's
// micro-batch size and the pipeline's slab batching change only *when* work
// happens, never *what* is computed. Every execution variant — the
// paper-faithful per-tuple schedule (K=1, the seed hot path), amortized
// micro-batches, the unbounded drain-at-finish extreme, and the concurrent
// slab-batched pipeline — must deliver byte-identical per-query result
// sequences with zero order violations.

// batchSizes are the micro-batch settings under test: per-tuple, a prime (so
// batch boundaries drift across both streams), a power of two, and unbounded.
var batchSizes = []int{1, 7, 64, -1}

// renderResults serializes one query's result sequence byte-exactly:
// timestamp, sequence number and both source tuples of every result, in
// delivery order.
func renderResults(results []*stream.Tuple) string {
	var b strings.Builder
	for _, t := range results {
		fmt.Fprintf(&b, "%d/%d:(%d.%d,%d.%d);", t.Time, t.Seq,
			t.A.Stream, t.A.Ord, t.B.Stream, t.B.Ord)
	}
	return b.String()
}

// runEngine executes the Mem-Opt chain on the sequential engine with the
// given micro-batch size, collecting results.
func runEngine(t *testing.T, windows []stream.Time, join stream.JoinPredicate, input []*stream.Tuple, batch int) *engine.Result {
	t.Helper()
	w := plan.Workload{Join: join}
	for _, win := range windows {
		w.Queries = append(w.Queries, plan.Query{Window: win})
	}
	sp, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(sp.Plan, input, engine.Config{BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBatchedVariantsByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		windows []stream.Time
	}{
		{"distinct-windows", []stream.Time{2 * stream.Second, 5 * stream.Second, 9 * stream.Second}},
		{"duplicate-windows", []stream.Time{3 * stream.Second, 3 * stream.Second, 8 * stream.Second}},
		{"single-window", []stream.Time{4 * stream.Second}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				input := testInput(t, seed)
				join := stream.FractionMatch{S: 0.2}

				// Reference: the paper-faithful per-tuple schedule.
				ref := runEngine(t, tc.windows, join, input, 1)
				if ref.OrderViolations != 0 {
					t.Fatalf("seed %d: reference run had %d order violations", seed, ref.OrderViolations)
				}
				want := make([]string, len(ref.Results))
				total := uint64(0)
				for qi, rs := range ref.Results {
					want[qi] = renderResults(rs)
					total += ref.SinkCounts[qi]
				}
				if total == 0 {
					t.Fatalf("seed %d: reference produced no results; the equivalence check is vacuous", seed)
				}

				// Micro-batched engine runs.
				for _, k := range batchSizes[1:] {
					res := runEngine(t, tc.windows, join, input, k)
					if res.OrderViolations != 0 {
						t.Errorf("seed %d k=%d: %d order violations", seed, k, res.OrderViolations)
					}
					for qi := range want {
						if got := renderResults(res.Results[qi]); got != want[qi] {
							t.Errorf("seed %d k=%d: query %d results differ from the per-tuple schedule", seed, k, qi)
						}
					}
				}

				// The concurrent slab-batched pipeline.
				pr, err := RunChain(tc.windows, join, input, true)
				if err != nil {
					t.Fatal(err)
				}
				if pr.OrderViolations != 0 {
					t.Errorf("seed %d pipeline: %d order violations", seed, pr.OrderViolations)
				}
				for qi := range want {
					if got := renderResults(pr.Results[qi]); got != want[qi] {
						t.Errorf("seed %d pipeline: query %d results differ from the per-tuple schedule", seed, qi)
					}
				}
			}
		})
	}
}

// TestPunctuationCoalescingPreservesFlush ensures coalesced punctuation runs
// still flush every union: an input whose results end long before MaxTime
// must deliver everything even though intermediate punctuations were merged.
func TestPunctuationCoalescingPreservesFlush(t *testing.T) {
	windows := testWindows()
	input := testInput(t, 42)
	// Truncate to force a quiet tail: the chain sees no arrivals after
	// half the stream, so delivery depends on the final punctuation alone.
	input = input[:len(input)/2]
	pr, err := RunChain(windows, stream.FractionMatch{S: 0.2}, input, true)
	if err != nil {
		t.Fatal(err)
	}
	ref := runEngine(t, windows, stream.FractionMatch{S: 0.2}, input, 1)
	for qi := range ref.Results {
		if got, want := renderResults(pr.Results[qi]), renderResults(ref.Results[qi]); got != want {
			t.Errorf("query %d: pipeline results differ after truncated stream", qi)
		}
	}
}
