// Package pipeline executes a state-slice chain concurrently: one goroutine
// per sliced window join connected by channels, per-query merger goroutines
// running the order-preserving unions, and a feeder that splits tuples into
// their male/female reference copies.
//
// The paper observes that "the properties of the pipelining sliced joins fit
// nicely in the asynchronous distributed system" (Section 9): correctness of
// the chain depends only on FIFO delivery between adjacent slices, not on
// any scheduling discipline (the state disjointness of Lemma 1 "is
// independent from operator scheduling, be it synchronous or even
// asynchronous"). This package demonstrates exactly that: the slices run
// asynchronously on separate goroutines and the result sets remain identical
// to the sequential engine's, which the tests verify.
//
// Channels carry slabs ([]stream.Item) rather than single items, so the
// per-send synchronization cost is amortized over a whole batch; consecutive
// punctuations are coalesced into the last (their guarantees are monotone on
// a FIFO edge) before a slab is sealed, and a slice with no subscribing
// queries skips its result path entirely. FIFO order within and across slabs
// is exactly the per-item order, so Lemma 1's correctness argument is
// untouched — only the number of channel operations changes.
//
// The executor covers chains without selections (the Section 7.3 workload
// shape); the sequential engine remains the reference implementation for
// plans with pushed-down filters.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"sync"

	"stateslice/internal/fault"
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// Result reports a concurrent chain run.
type Result struct {
	// Inputs is the number of source tuples fed through the chain.
	Inputs int
	// VirtualDuration is the timestamp of the last input tuple.
	VirtualDuration stream.Time
	// SinkCounts is the number of results delivered per query, indexed
	// like the windows passed to RunChain.
	SinkCounts []uint64
	// Results holds the per-query result tuples when collection was
	// requested.
	Results [][]*stream.Tuple
	// OrderViolations counts out-of-order deliveries (always zero; the
	// unions preserve order even under asynchronous scheduling).
	OrderViolations int
	// Meter aggregates the comparison counts of all stages.
	Meter operator.CostMeter
}

// pullSrc draws one tuple from the source, containing a panicking Source —
// a user-callback boundary — into a classified error.
func pullSrc(src stream.Source) (t *stream.Tuple, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("pipeline: %w", fault.Capture("source pull", -1, v))
		}
	}()
	t, err = src.Next()
	if err != nil && err != io.EOF {
		err = fmt.Errorf("pipeline: source: %w", err)
	}
	return t, err
}

// taggedBatch routes a slab of items to a merger together with its source
// slice index.
type taggedBatch struct {
	slice int
	items []stream.Item
}

// chanBuf is the buffer size, in slabs, of all inter-stage channels; it only
// affects throughput, never correctness.
const chanBuf = 32

// firstErr collects the first failure any pipeline goroutine publishes —
// the same first-error discipline the sharded executor uses.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) note(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *firstErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// RunChain executes the chain of sliced binary window joins with slice end
// boundaries equal to the distinct query windows (the Mem-Opt layout) over
// the input, concurrently. Windows must be ascending; the i-th query's
// answer is the sliding-window join with windows[i] on both streams.
func RunChain(windows []stream.Time, join stream.JoinPredicate, input []*stream.Tuple, collect bool) (*Result, error) {
	return RunChainSource(context.Background(), windows, join, stream.NewSliceSource(input), collect, nil)
}

// RunChainSource is the streaming form of RunChain: the feeder pulls tuples
// from the source one at a time, so unbounded inputs flow through the
// concurrent chain without ever being materialized. When onResult is
// non-nil it is invoked for every result of query qi in that query's
// delivery order (from the query's merger goroutine; callbacks for
// different queries run concurrently).
//
// ctx bounds the run: once it is done, the feeder stops between tuples and
// the run returns the context's cause after the stages drain (nil selects
// Background). Panics in any stage goroutine or user callback (Source,
// onResult, collection) are contained into a fault.PanicError returned as
// the run's error; a failed stage keeps draining its input and closing its
// output so the rest of the pipeline always unwinds.
func RunChainSource(ctx context.Context, windows []stream.Time, join stream.JoinPredicate, src stream.Source, collect bool, onResult func(qi int, t *stream.Tuple)) (*Result, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("pipeline: no query windows")
	}
	var ends []stream.Time
	for i, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("pipeline: window %d is not positive", i)
		}
		if i > 0 && w < windows[i-1] {
			return nil, fmt.Errorf("pipeline: windows must be ascending")
		}
		if len(ends) == 0 || w != ends[len(ends)-1] {
			ends = append(ends, w)
		}
	}
	if join == nil {
		return nil, fmt.Errorf("pipeline: no join predicate")
	}

	nSlices := len(ends)
	nQueries := len(windows)
	// sliceOf maps a query to the slice containing its window.
	sliceOf := make([]int, nQueries)
	for qi, w := range windows {
		for si, end := range ends {
			if w <= end {
				sliceOf[qi] = si
				break
			}
		}
	}

	meters := make([]*operator.CostMeter, 0, nSlices+nQueries+1)
	newMeter := func() *operator.CostMeter {
		m := &operator.CostMeter{}
		meters = append(meters, m)
		return m
	}

	var wg sync.WaitGroup
	var ferr firstErr
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()

	// Feeder: pull from the source, split each tuple into its female and
	// male reference copies — two roles of the same *Tuple, nothing is
	// copied — and punctuate the end of the stream. The pull is a
	// user-callback boundary, so a panicking Source is contained into the
	// run's error; the context is checked between tuples.
	feed := make(chan []stream.Item, chanBuf)
	var (
		inputs   int
		lastTime stream.Time
		srcErr   error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(feed)
		var b stream.Batcher
		for {
			if done != nil {
				select {
				case <-done:
					srcErr = fmt.Errorf("pipeline: %w", context.Cause(ctx))
				default:
				}
				if srcErr != nil {
					break
				}
			}
			t, err := pullSrc(src)
			if err == io.EOF {
				break
			}
			if err != nil {
				srcErr = err
				break
			}
			if t.Time < lastTime {
				srcErr = fmt.Errorf("pipeline: tuple %s after %s: %w", t, lastTime, fault.ErrOutOfOrder)
				break
			}
			inputs++
			lastTime = t.Time
			b.Add(stream.RoleItem(t, stream.RoleFemale))
			b.Add(stream.RoleItem(t, stream.RoleMale))
			if b.Full() {
				feed <- b.Take()
			}
		}
		b.Add(stream.PunctItem(stream.MaxTime))
		feed <- b.Take()
	}()

	// Mergers: one per query, running an order-preserving union over the
	// result streams of slices 0..sliceOf(q).
	mergeIn := make([]chan taggedBatch, nQueries)
	sinks := make([]*operator.Sink, nQueries)
	var mergeWG sync.WaitGroup
	for qi := 0; qi < nQueries; qi++ {
		mergeIn[qi] = make(chan taggedBatch, chanBuf)
		u := operator.NewUnion(fmt.Sprintf("union-Q%d", qi+1))
		queues := make([]*stream.Queue, sliceOf[qi]+1)
		for si := range queues {
			queues[si] = u.AddInput()
		}
		sink := operator.NewDirectSink(fmt.Sprintf("Q%d", qi+1))
		u.Out().AttachFunc(sink.Accept)
		if collect {
			sink.Collecting()
		}
		if onResult != nil {
			q := qi
			sink.OnResult(func(t *stream.Tuple) { onResult(q, t) })
		}
		sinks[qi] = sink
		m := newMeter()
		ch := mergeIn[qi]
		// step folds one batch (or, with an empty batch, just flushes the
		// union) inside the merger's containment boundary: collection and
		// onResult callbacks fire in Step, so a panicking user handler
		// lands here.
		slot := qi
		step := func(msg taggedBatch) (err error) {
			defer func() {
				if v := recover(); v != nil {
					err = fmt.Errorf("pipeline: %w", fault.Capture("query merger", slot, v))
				}
			}()
			q := queues[msg.slice]
			for _, it := range msg.items {
				q.Push(it)
			}
			u.Step(m, -1)
			return nil
		}
		mergeWG.Add(1)
		go func() {
			defer mergeWG.Done()
			failed := false
			for msg := range ch {
				if failed {
					continue
				}
				if err := step(msg); err != nil {
					failed = true
					ferr.note(err)
				}
			}
			if !failed {
				if err := step(taggedBatch{items: nil}); err != nil {
					ferr.note(err)
				}
			}
		}()
	}

	// Broadcast a slice's results to the mergers of every query it
	// serves. In the Mem-Opt layout every slice has at least one
	// subscriber, but migrated or custom layouts may leave a slice
	// unobserved — such a slice skips its whole result path.
	subscribers := make([][]int, nSlices)
	for qi := 0; qi < nQueries; qi++ {
		for si := 0; si <= sliceOf[qi]; si++ {
			subscribers[si] = append(subscribers[si], qi)
		}
	}

	// Slice stages.
	in := feed
	var stageWG sync.WaitGroup
	start := stream.Time(0)
	for si := 0; si < nSlices; si++ {
		inQ := stream.NewQueue()
		j, err := operator.NewSlicedBinaryJoin(
			fmt.Sprintf("slice[%s,%s]", start, ends[si]), start, ends[si], join, inQ)
		if err != nil {
			return nil, err
		}
		subs := subscribers[si]
		var resQ *stream.Queue
		if len(subs) > 0 {
			// A port with no queue discards, so an unobserved slice
			// pays nothing for its results.
			resQ = j.Result().NewQueue()
		}
		var nextQ *stream.Queue
		var out chan []stream.Item
		if si < nSlices-1 {
			nextQ = j.Next().NewQueue()
			out = make(chan []stream.Item, chanBuf)
		}
		m := newMeter()
		stage := si
		stageIn := in
		var nextB, resB stream.Batcher
		// work processes one input slab inside the stage's containment
		// boundary; a panicking join fails the stage without taking the
		// process (or the rest of the pipeline) down.
		work := func(slab []stream.Item) (err error) {
			defer func() {
				if v := recover(); v != nil {
					err = fmt.Errorf("pipeline: %w", fault.Capture("slice stage", stage, v))
				}
			}()
			for _, it := range slab {
				inQ.Push(it)
			}
			j.Step(m, -1)
			for nextQ != nil && !nextQ.Empty() {
				nextB.Add(nextQ.Pop())
				if nextB.Full() {
					out <- nextB.Take()
				}
			}
			for resQ != nil && !resQ.Empty() {
				resB.Add(resQ.Pop())
			}
			// Ship the results of this input slab as one batch
			// per subscriber; coalescing already collapsed the
			// per-male punctuation bursts.
			if items := resB.Take(); items != nil {
				for _, qi := range subs {
					mergeIn[qi] <- taggedBatch{slice: stage, items: items}
				}
			}
			return nil
		}
		stageWG.Add(1)
		go func() {
			defer stageWG.Done()
			if out != nil {
				defer close(out)
			}
			failed := false
			for slab := range stageIn {
				if failed {
					// Keep draining so the upstream stage (and the
					// feeder) never block on a dead consumer; the out
					// channel still closes, so downstream unwinds too.
					continue
				}
				if err := work(slab); err != nil {
					failed = true
					ferr.note(err)
				}
			}
			if !failed && out != nil {
				if items := nextB.Take(); items != nil {
					out <- items
				}
			}
		}()
		in = out
		start = ends[si]
	}

	// Close the merger channels when every stage has finished.
	go func() {
		stageWG.Wait()
		for _, ch := range mergeIn {
			close(ch)
		}
	}()

	wg.Wait()
	stageWG.Wait()
	mergeWG.Wait()
	if srcErr != nil {
		return nil, srcErr
	}
	if err := ferr.get(); err != nil {
		return nil, err
	}

	res := &Result{Inputs: inputs, VirtualDuration: lastTime}
	for _, m := range meters {
		res.Meter.Add(*m)
	}
	for _, s := range sinks {
		res.SinkCounts = append(res.SinkCounts, s.Count())
		res.OrderViolations += s.OrderViolations()
		// Indexed like SinkCounts even without collection (nil slices),
		// matching the sequential engine's Result shape.
		res.Results = append(res.Results, s.Results())
	}
	return res, nil
}
