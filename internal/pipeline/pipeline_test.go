package pipeline

import (
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

func testWindows() []stream.Time {
	return []stream.Time{2 * stream.Second, 5 * stream.Second, 9 * stream.Second}
}

func testInput(t *testing.T, seed int64) []*stream.Tuple {
	t.Helper()
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 30, RateB: 30, Duration: 30 * stream.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

// sequentialReference runs the Mem-Opt chain on the single-threaded engine.
func sequentialReference(t *testing.T, windows []stream.Time, join stream.JoinPredicate, input []*stream.Tuple) *engine.Result {
	t.Helper()
	w := plan.Workload{Join: join}
	for _, win := range windows {
		w.Queries = append(w.Queries, plan.Query{Window: win})
	}
	sp, err := plan.BuildStateSlice(w, plan.StateSliceConfig{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(sp.Plan, input, engine.Config{SampleEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConcurrentMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		windows := testWindows()
		join := stream.FractionMatch{S: 0.15}
		input := testInput(t, seed)

		conc, err := RunChain(windows, join, input, true)
		if err != nil {
			t.Fatal(err)
		}
		seq := sequentialReference(t, windows, join, input)

		if conc.OrderViolations != 0 {
			t.Errorf("seed %d: %d out-of-order deliveries under asynchronous scheduling", seed, conc.OrderViolations)
		}
		for qi := range windows {
			if conc.SinkCounts[qi] != seq.SinkCounts[qi] {
				t.Errorf("seed %d query %d: concurrent %d results, sequential %d",
					seed, qi, conc.SinkCounts[qi], seq.SinkCounts[qi])
			}
		}
		// Result sets must be identical pair for pair (Lemma 1's
		// scheduling independence).
		for qi, rs := range conc.Results {
			got := make(map[[2]uint64]bool, len(rs))
			for _, r := range rs {
				got[[2]uint64{r.A.Seq, r.B.Seq}] = true
			}
			if len(got) != len(rs) {
				t.Errorf("seed %d query %d: duplicate results", seed, qi)
			}
			if uint64(len(got)) != seq.SinkCounts[qi] {
				t.Errorf("seed %d query %d: set size %d vs %d", seed, qi, len(got), seq.SinkCounts[qi])
			}
		}
	}
}

func TestConcurrentProbeCountMatchesSequential(t *testing.T) {
	// The probing work is scheduling-independent (Section 5.1): the
	// concurrent run performs exactly the same probe comparisons.
	windows := testWindows()
	join := stream.CrossProduct{}
	input := testInput(t, 9)
	conc, err := RunChain(windows, join, input, false)
	if err != nil {
		t.Fatal(err)
	}
	seq := sequentialReference(t, windows, join, input)
	if conc.Meter.Probe != seq.Meter.Probe {
		t.Errorf("probe comparisons: concurrent %d, sequential %d", conc.Meter.Probe, seq.Meter.Probe)
	}
}

func TestConcurrentDuplicateWindows(t *testing.T) {
	// Two queries sharing a window share a slice but keep separate
	// answers.
	windows := []stream.Time{3 * stream.Second, 3 * stream.Second, 7 * stream.Second}
	input := testInput(t, 4)
	res, err := RunChain(windows, stream.FractionMatch{S: 0.2}, input, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkCounts[0] != res.SinkCounts[1] {
		t.Errorf("equal-window queries must agree: %d vs %d", res.SinkCounts[0], res.SinkCounts[1])
	}
	if res.SinkCounts[2] <= res.SinkCounts[0] {
		t.Errorf("larger window must deliver more results")
	}
}

func TestConcurrentValidation(t *testing.T) {
	input := testInput(t, 5)
	if _, err := RunChain(nil, stream.CrossProduct{}, input, false); err == nil {
		t.Error("empty windows must fail")
	}
	if _, err := RunChain([]stream.Time{0}, stream.CrossProduct{}, input, false); err == nil {
		t.Error("zero window must fail")
	}
	if _, err := RunChain([]stream.Time{5, 3}, stream.CrossProduct{}, input, false); err == nil {
		t.Error("descending windows must fail")
	}
	if _, err := RunChain([]stream.Time{5}, nil, input, false); err == nil {
		t.Error("nil join must fail")
	}
}

func TestConcurrentEmptyInput(t *testing.T) {
	res, err := RunChain(testWindows(), stream.CrossProduct{}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	for qi, c := range res.SinkCounts {
		if c != 0 {
			t.Errorf("query %d delivered %d results from an empty stream", qi, c)
		}
	}
}
