// Package engine executes shared stream query plans. It plays the role of
// the CAPE query processor in the paper's experiments (Section 7.1): it
// feeds generated tuples into a plan in global timestamp order, schedules
// the operators, collects the comparison-count CPU metric and samples the
// state memory of the stateful operators.
//
// Time is virtual: the engine never sleeps, it processes the workload as
// fast as the host allows while the tuples' own timestamps drive all window
// semantics. Service-rate experiments therefore finish a 90-virtual-second
// workload in milliseconds and report both the comparison-count cost and the
// real wall-clock throughput.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"stateslice/internal/fault"
	"stateslice/internal/operator"
	rec "stateslice/internal/recover"
	"stateslice/internal/stream"
)

// Plan is an executable operator graph plus its wiring metadata. Plans are
// assembled by the plan package; the engine only needs the operators in
// topological order and the entry queues of the two input streams.
type Plan struct {
	// Name labels the plan in results (e.g. "state-slice(mem-opt)").
	Name string
	// Ops lists every operator in topological order: all predecessors of
	// an operator appear before it. The scheduler relies on this to drain
	// the whole graph in one pass per cycle.
	Ops []operator.Operator
	// EntryA and EntryB are the queues that receive raw stream-A and
	// stream-B tuples respectively. A queue may appear in both.
	EntryA, EntryB []*stream.Queue
	// Sinks are the per-query result collectors, indexed like the query
	// workload that produced the plan.
	Sinks []*operator.Sink
	// Stateful lists the operators whose state sizes the monitor samples.
	Stateful []operator.StateSizer
}

// Validate checks the plan invariants the scheduler depends on.
func (p *Plan) Validate() error {
	if len(p.Ops) == 0 {
		return errors.New("engine: plan has no operators")
	}
	if len(p.EntryA) == 0 || len(p.EntryB) == 0 {
		return errors.New("engine: plan is missing entry queues")
	}
	if len(p.Sinks) == 0 {
		return errors.New("engine: plan has no sinks")
	}
	return nil
}

// Config tunes a run.
type Config struct {
	// SampleEvery sets the monitor sampling period in input tuples; every
	// SampleEvery-th arrival the total state size is recorded. Zero
	// defaults to 1 (sample at every arrival, the most faithful
	// reproduction of the paper's memory plots).
	SampleEvery int
	// Series, when true, retains the full state-size time series (used by
	// plot-style output); otherwise only the running aggregate is kept.
	Series bool
	// WarmupFraction excludes the initial fraction of arrivals from the
	// memory statistics, letting windows fill first. The paper's runs
	// "start with empty states for all operators" and report averages
	// over the whole run; the default 0 matches that.
	WarmupFraction float64
	// ExpectedInputs tells the monitor the total workload size for the
	// warmup computation when feeding incrementally. Run sets it
	// automatically.
	ExpectedInputs int
	// BatchSize is the micro-batch size K of the feed loop: the operator
	// graph is drained to quiescence once every K arrivals instead of
	// after every tuple, amortizing the per-tuple scheduling pass over the
	// whole batch. Results are identical for every K — operators consume
	// their FIFO queues in arrival order regardless of when the scheduler
	// runs — only latency within a batch and the timing of memory samples
	// change. 0 or 1 selects the paper-faithful tuple-at-a-time schedule
	// (Section 7.1 runs CAPE that way); negative means unbounded, draining
	// only at Finish, Drain or a migration flush.
	BatchSize int
	// Ctx, when non-nil, bounds the session's feed loops: Consume stops
	// between tuples once the context is done, returning the context's
	// error. It does not interrupt a Feed in progress (one tuple's
	// processing is never abandoned halfway).
	Ctx context.Context
}

// Result reports a finished run.
type Result struct {
	// PlanName echoes the executed plan.
	PlanName string
	// Inputs is the number of source tuples fed.
	Inputs int
	// Meter holds the comparison-count CPU metric.
	Meter operator.CostMeter
	// SinkCounts is the number of results delivered per query sink.
	SinkCounts []uint64
	// Results holds the per-query result tuples for sinks that collect
	// (nil slices otherwise), indexed like SinkCounts.
	Results [][]*stream.Tuple
	// OrderViolations sums out-of-order deliveries across sinks (must be
	// zero; unions preserve order).
	OrderViolations int
	// Memory aggregates the sampled total state size (tuples).
	Memory MemoryStats
	// ReplicaComparisons holds the per-replica probe-comparison counts of a
	// sharded run, in shard order — the load-balance signal the rebalancer
	// and its benchmarks read (max/mean is the imbalance ratio). nil for
	// sequential sessions.
	ReplicaComparisons []uint64
	// Wall is the real time the run took.
	Wall time.Duration
	// VirtualDuration is the timestamp of the last input tuple.
	VirtualDuration stream.Time
	// Recovery reports what supervised restart did during the session —
	// restarts, replayed slabs, exhausted budgets. It is nil unless the
	// session ran under the sharded executor with a recovery policy.
	Recovery *rec.Stats
	// Err classifies a run that did not complete cleanly, carried here
	// because Session.Finish has no error return: the first replica or
	// driver error of a sharded session, a sequential session's contained
	// failure (a PanicError or ErrNotQuiescing), or ErrClosed for a
	// session aborted by Close. Executions driven through Plan.Run or the
	// shard executor's own Finish/Run return the same error directly.
	Err error
}

// TotalOutputs sums the per-sink result counts.
func (r *Result) TotalOutputs() uint64 {
	var n uint64
	for _, c := range r.SinkCounts {
		n += c
	}
	return n
}

// ServiceRate returns the paper's throughput measure (total throughput over
// running time) in tuples per wall-clock second.
func (r *Result) ServiceRate() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Inputs+int(r.TotalOutputs())) / r.Wall.Seconds()
}

// ComparisonRate returns tuples processed per million comparisons, the
// hardware-independent service-rate proxy derived from the paper's CPU cost
// metric (csys weighs per-invocation scheduling overhead). Higher is better,
// like the paper's service rate.
func (r *Result) ComparisonRate(csys float64) float64 {
	total := r.Meter.Total(csys)
	if total <= 0 {
		return 0
	}
	return float64(r.Inputs+int(r.TotalOutputs())) / total * 1e6
}

// Session drives a plan incrementally: tuples are fed one at a time, the
// graph is drained to quiescence after each arrival, and the plan may be
// migrated between feeds (Section 5.3 of the paper). Run is the convenience
// wrapper that feeds a whole workload.
type Session struct {
	plan  *Plan
	cfg   Config
	meter *operator.CostMeter
	mon   *monitor
	start time.Time

	fed      int
	lastTime stream.Time
	finished bool
	closed   bool
	// err is the session's first failure — a contained operator or
	// callback panic, or a graph that stopped quiescing. It is sticky: once
	// set, every subsequent Feed, Barrier and Finish surfaces it, and
	// Result.Err carries it.
	err error
	// pending counts arrivals buffered in entry queues since the last
	// drain; Feed schedules the graph when it reaches cfg.BatchSize.
	pending int
}

// NewSession validates the plan and prepares a session.
func NewSession(p *Plan, cfg Config) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	return &Session{
		plan:  p,
		cfg:   cfg,
		meter: &operator.CostMeter{},
		mon:   newMonitor(p.Stateful, cfg),
		start: time.Now(),
	}, nil
}

// Meter exposes the session's cost meter.
func (s *Session) Meter() *operator.CostMeter { return s.meter }

// Plan returns the plan under execution (migrations mutate it in place).
func (s *Session) Plan() *Plan { return s.plan }

// usable rejects operations on a closed, finished or failed session with
// the matching typed error.
func (s *Session) usable(op string) error {
	if s.closed {
		return fmt.Errorf("engine: %s: %w", op, fault.ErrClosed)
	}
	if s.finished {
		return fmt.Errorf("engine: %s after Finish: %w", op, fault.ErrSessionFinished)
	}
	return s.err
}

// fail records the session's first failure and returns it.
func (s *Session) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}

// Err returns the session's sticky failure, if any: a contained panic
// (PanicError) or a non-quiescing graph. It also surfaces on the next Feed,
// FeedPunct or Barrier and on Result.Err.
func (s *Session) Err() error { return s.err }

// Frontier returns the session's feed frontier: how many source tuples were
// fed and the timestamp of the latest one. Checkpoints record it so a
// restored session resumes exactly where the snapshot was taken.
func (s *Session) Frontier() (fed int, last stream.Time) { return s.fed, s.lastTime }

// SeedFrontier initializes a fresh session's feed frontier from a
// checkpoint: the session behaves as if fed tuples up to timestamp last had
// already been processed, so order checking and input accounting continue
// from the snapshot instead of zero. It is valid only on an unused session
// (nothing fed yet).
func (s *Session) SeedFrontier(fed int, last stream.Time) error {
	if err := s.usable("SeedFrontier"); err != nil {
		return err
	}
	if s.fed != 0 || s.pending != 0 {
		return fmt.Errorf("engine: SeedFrontier on a session that was already fed %d tuples", s.fed)
	}
	if fed < 0 || last < 0 {
		return fmt.Errorf("engine: SeedFrontier with negative frontier (fed=%d, last=%s)", fed, last)
	}
	s.fed = fed
	s.lastTime = last
	return nil
}

// Feed pushes one source tuple into the plan's entry queues and drains the
// graph to quiescence. Tuples must arrive in global timestamp order.
func (s *Session) Feed(t *stream.Tuple) error {
	if err := s.usable("Feed"); err != nil {
		return err
	}
	if t.Time < s.lastTime {
		return fmt.Errorf("engine: tuple %s after %s: %w", t, s.lastTime, fault.ErrOutOfOrder)
	}
	s.lastTime = t.Time
	entries := s.plan.EntryA
	if t.Stream == stream.StreamB {
		entries = s.plan.EntryB
	}
	for _, q := range entries {
		q.PushTuple(t)
	}
	s.pending++
	if s.cfg.BatchSize >= 0 && s.pending >= max(s.cfg.BatchSize, 1) {
		if err := s.drain(); err != nil {
			return err
		}
	}
	s.mon.observe(s.fed, s.cfg.ExpectedInputs)
	s.fed++
	return nil
}

// FeedPunct broadcasts a punctuation into every entry queue (each shared
// queue receives it once): a promise that no future source tuple carries a
// timestamp at or below ts. The chain operators forward it downstream, so
// per-query outputs learn the frontier even while no results are produced.
// Finish's final MaxTime punctuation is the same mechanism; mid-stream
// punctuations let a consumer of several sessions — the sharded executor
// merging replica outputs — keep its order-preserving merge progressing
// past replicas that are currently idle. Like Feed, it counts toward the
// micro-batch and drains the graph on batch boundaries.
func (s *Session) FeedPunct(ts stream.Time) error {
	if err := s.usable("FeedPunct"); err != nil {
		return err
	}
	for _, q := range dedupQueues(s.plan.EntryA, s.plan.EntryB) {
		q.PushPunct(ts)
	}
	s.pending++
	if s.cfg.BatchSize >= 0 && s.pending >= max(s.cfg.BatchSize, 1) {
		if err := s.drain(); err != nil {
			return err
		}
	}
	return nil
}

// Drain runs every operator until the whole graph quiesces, flushing any
// micro-batch buffered by Feed. It is exposed so chain migration can empty
// inter-slice queues before merging. A scheduling failure — an operator (or
// a sink callback it fires) panicking, or a graph that never quiesces — is
// contained into the session's sticky error (Err) instead of crashing the
// process; it surfaces on the next Feed/Barrier and on Result.Err.
func (s *Session) Drain() { s.drain() }

// drain is Drain with the error returned directly: operator and callback
// panics are recovered into a PanicError, a graph still moving items past
// the pass bound fails with ErrNotQuiescing. Either failure is sticky.
func (s *Session) drain() (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = s.fail(fmt.Errorf("engine: plan %s: %w", s.plan.Name, fault.Capture("operator drain", -1, v)))
		}
	}()
	s.pending = 0
	for pass := 0; ; pass++ {
		moved := false
		for _, op := range s.plan.Ops {
			if op.Step(s.meter, -1) > 0 {
				moved = true
			}
		}
		if !moved {
			return nil
		}
		if pass > 4*len(s.plan.Ops)+8 {
			return s.fail(fmt.Errorf("engine: plan %s still moving after %d passes (operator cycle?): %w", s.plan.Name, pass, fault.ErrNotQuiescing))
		}
	}
}

// Barrier runs fn at a feed barrier: every tuple fed so far is fully
// processed first (including any micro-batch buffered by Feed), fn mutates
// the plan while no item is in flight between operators, and the graph is
// drained again afterwards so any items fn released — e.g. residual tuples
// flushed out of closed union inputs — reach their sinks before the next
// Feed. Chain migration and live query admission both restructure the plan
// through this protocol.
func (s *Session) Barrier(fn func() error) error {
	if err := s.usable("Barrier"); err != nil {
		return err
	}
	if err := s.drain(); err != nil {
		return err
	}
	if err := s.runBarrierFn(fn); err != nil {
		return err
	}
	return s.drain()
}

// runBarrierFn contains a panic inside the barrier's plan surgery: the
// chain's state is unknown after it, so the failure is sticky (unlike fn's
// ordinary error returns, which reject the operation and leave the chain
// usable).
func (s *Session) runBarrierFn(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = s.fail(fmt.Errorf("engine: plan %s: %w", s.plan.Name, fault.Capture("barrier", -1, v)))
		}
	}()
	return fn()
}

// Finish flushes the plan with a final punctuation and returns the run
// statistics. The session cannot be fed afterwards. A failed or closed
// session skips the final flush (its graph may be corrupt) and carries the
// classification on Result.Err — ErrClosed for a cleanly aborted session —
// so partial statistics are never mistaken for a completed run.
func (s *Session) Finish() *Result {
	if !s.finished {
		if !s.closed && s.err == nil {
			for _, q := range dedupQueues(s.plan.EntryA, s.plan.EntryB) {
				q.PushPunct(stream.MaxTime)
			}
			s.drain()
		}
		s.finished = true
	}
	resErr := s.err
	if resErr == nil && s.closed {
		resErr = fmt.Errorf("engine: session was closed before Finish: %w", fault.ErrClosed)
	}
	res := &Result{
		Err:             resErr,
		PlanName:        s.plan.Name,
		Inputs:          s.fed,
		Meter:           *s.meter,
		Memory:          s.mon.stats(),
		Wall:            time.Since(s.start),
		VirtualDuration: s.lastTime,
	}
	for _, sk := range s.plan.Sinks {
		res.SinkCounts = append(res.SinkCounts, sk.Count())
		res.OrderViolations += sk.OrderViolations()
		res.Results = append(res.Results, sk.Results())
	}
	return res
}

// Close aborts the session: it becomes unusable (every subsequent
// operation fails with ErrClosed, Finish's Result.Err is classified), and
// the first failure the session recorded — if any — is returned. Sequential
// sessions own no goroutines, so there is nothing to wait on and the
// context is not consulted; the parameter exists for symmetry with the
// sharded session's abort, which does unwind goroutines under it. Close is
// idempotent: later calls return ErrClosed.
func (s *Session) Close(context.Context) error {
	if s.closed {
		return fmt.Errorf("engine: Close: %w", fault.ErrClosed)
	}
	s.closed = true
	return s.err
}

// Consume feeds the session from a source until it is exhausted. It may be
// called several times (with sources whose timestamps continue ascending)
// and interleaved with Feed and plan migrations. When the session was built
// with Config.Ctx, Consume additionally stops between tuples once the
// context is done, returning its error; a panicking Source is contained
// into a sticky PanicError instead of crashing the process.
func (s *Session) Consume(src stream.Source) error {
	var done <-chan struct{}
	if s.cfg.Ctx != nil {
		done = s.cfg.Ctx.Done()
	}
	for {
		if done != nil {
			select {
			case <-done:
				return fmt.Errorf("engine: Consume: %w", context.Cause(s.cfg.Ctx))
			default:
			}
		}
		t, err := s.pull(src)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := s.Feed(t); err != nil {
			return err
		}
	}
}

// pull draws one tuple from the source, containing a panicking Source —
// a user-callback boundary — into a sticky session failure.
func (s *Session) pull(src stream.Source) (t *stream.Tuple, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = s.fail(fmt.Errorf("engine: %w", fault.Capture("source pull", -1, v)))
		}
	}()
	t, err = src.Next()
	if err != nil && err != io.EOF {
		err = fmt.Errorf("engine: source: %w", err)
	}
	return t, err
}

// RunSource executes the plan over a tuple source (in global timestamp
// order) and returns the run statistics. This is the engine's native feed
// loop; Run is the batch convenience wrapper over it. Sources implementing
// stream.Sized pre-size the monitor's warm-up window.
func RunSource(p *Plan, src stream.Source, cfg Config) (*Result, error) {
	if sized, ok := src.(stream.Sized); ok && cfg.ExpectedInputs == 0 {
		cfg.ExpectedInputs = sized.Len()
	}
	if cfg.WarmupFraction > 0 && cfg.ExpectedInputs <= 0 {
		return nil, errors.New("engine: WarmupFraction needs the total input size; set Config.ExpectedInputs or use a sized source")
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Consume(src); err != nil {
		return nil, err
	}
	res := s.Finish()
	if res.Err != nil {
		return nil, res.Err
	}
	return res, nil
}

// Run executes the plan over the input tuples (which must be in global
// timestamp order) and returns the run statistics.
func Run(p *Plan, input []*stream.Tuple, cfg Config) (*Result, error) {
	return RunSource(p, stream.NewSliceSource(input), cfg)
}

// dedupQueues merges the entry queue lists without duplicates, so shared
// entry queues receive one final punctuation only. It runs on every Finish
// and migration flush, so it builds its result in place with one pre-sized
// allocation per list instead of concatenating the inputs first.
func dedupQueues(a, b []*stream.Queue) []*stream.Queue {
	seen := make(map[*stream.Queue]bool, len(a)+len(b))
	out := make([]*stream.Queue, 0, len(a)+len(b))
	for _, qs := range [2][]*stream.Queue{a, b} {
		for _, q := range qs {
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	return out
}
