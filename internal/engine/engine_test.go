package engine

import (
	"testing"

	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// passthroughPlan builds a minimal plan: join both streams, count results.
func passthroughPlan(t *testing.T, w stream.Time) (*Plan, *operator.Sink) {
	t.Helper()
	in := stream.NewQueue()
	j, err := operator.NewWindowJoin("join", w, w, stream.CrossProduct{}, in)
	if err != nil {
		t.Fatal(err)
	}
	sink := operator.NewSink("q", j.Out().NewQueue()).Collecting()
	return &Plan{
		Name:     "test",
		Ops:      []operator.Operator{j, sink},
		EntryA:   []*stream.Queue{in},
		EntryB:   []*stream.Queue{in},
		Sinks:    []*operator.Sink{sink},
		Stateful: []operator.StateSizer{j},
	}, sink
}

func genInput(t *testing.T, rate float64, dur stream.Time, seed int64) []*stream.Tuple {
	t.Helper()
	in, err := stream.Generate(stream.GeneratorConfig{RateA: rate, RateB: rate, Duration: dur, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunBasics(t *testing.T) {
	p, sink := passthroughPlan(t, 2*stream.Second)
	input := genInput(t, 20, 20*stream.Second, 1)
	res, err := Run(p, input, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inputs != len(input) {
		t.Errorf("Inputs = %d, want %d", res.Inputs, len(input))
	}
	if res.TotalOutputs() == 0 || res.TotalOutputs() != sink.Count() {
		t.Errorf("outputs mismatch: %d vs %d", res.TotalOutputs(), sink.Count())
	}
	if res.OrderViolations != 0 {
		t.Error("ordered plan reported violations")
	}
	if res.Memory.Samples == 0 || res.Memory.Avg <= 0 || res.Memory.Max < int(res.Memory.Avg) {
		t.Errorf("memory stats implausible: %+v", res.Memory)
	}
	if res.Wall <= 0 {
		t.Error("wall time must be positive")
	}
	if res.VirtualDuration <= 0 || res.VirtualDuration > 20*stream.Second {
		t.Errorf("virtual duration %s", res.VirtualDuration)
	}
	if res.ServiceRate() <= 0 || res.ComparisonRate(0) <= 0 {
		t.Error("rates must be positive")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(&Plan{}, nil, Config{}); err == nil {
		t.Error("empty plan must fail")
	}
	p, _ := passthroughPlan(t, stream.Second)
	bad := []*stream.Tuple{
		{Time: 2 * stream.Second, Seq: 1, Stream: stream.StreamA},
		{Time: 1 * stream.Second, Seq: 2, Stream: stream.StreamB},
	}
	if _, err := Run(p, bad, Config{}); err == nil {
		t.Error("out-of-order input must fail")
	}
	q := stream.NewQueue()
	sink := operator.NewSink("s", q)
	noEntry := &Plan{Name: "x", Ops: []operator.Operator{sink}, Sinks: []*operator.Sink{sink}}
	if _, err := Run(noEntry, nil, Config{}); err == nil {
		t.Error("plan without entries must fail")
	}
	noSink := &Plan{Name: "x", Ops: []operator.Operator{sink}, EntryA: []*stream.Queue{q}, EntryB: []*stream.Queue{q}}
	if _, err := Run(noSink, nil, Config{}); err == nil {
		t.Error("plan without sinks must fail")
	}
}

func TestSessionFeedAfterFinish(t *testing.T) {
	p, _ := passthroughPlan(t, stream.Second)
	s, err := NewSession(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Finish()
	if err := s.Feed(&stream.Tuple{Time: 1, Seq: 1}); err == nil {
		t.Error("Feed after Finish must fail")
	}
	// Finish is idempotent.
	r1 := s.Finish()
	if r1 == nil {
		t.Error("repeated Finish must still report")
	}
}

func TestSessionAccessors(t *testing.T) {
	p, _ := passthroughPlan(t, stream.Second)
	s, err := NewSession(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan() != p {
		t.Error("Plan() must expose the executed plan")
	}
	if s.Meter() == nil {
		t.Error("Meter() must be non-nil")
	}
}

func TestMonitorSampling(t *testing.T) {
	p, _ := passthroughPlan(t, 2*stream.Second)
	input := genInput(t, 20, 20*stream.Second, 2)
	res, err := Run(p, input, Config{SampleEvery: 5, Series: true})
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := len(input) / 5
	if res.Memory.Samples < wantSamples-1 || res.Memory.Samples > wantSamples+1 {
		t.Errorf("samples = %d, want about %d", res.Memory.Samples, wantSamples)
	}
	if len(res.Memory.Series) != res.Memory.Samples {
		t.Errorf("series length %d != samples %d", len(res.Memory.Series), res.Memory.Samples)
	}
	for i := 1; i < len(res.Memory.Series); i++ {
		if res.Memory.Series[i].Arrival <= res.Memory.Series[i-1].Arrival {
			t.Fatal("series arrivals must increase")
		}
	}
}

func TestMonitorWarmup(t *testing.T) {
	p, _ := passthroughPlan(t, 5*stream.Second)
	input := genInput(t, 20, 40*stream.Second, 3)
	cold, err := Run(p, input, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := passthroughPlan(t, 5*stream.Second)
	warm, err := Run(p2, input, Config{WarmupFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Excluding the cold start raises the average state size.
	if warm.Memory.Avg <= cold.Memory.Avg {
		t.Errorf("warmup avg %f not above cold avg %f", warm.Memory.Avg, cold.Memory.Avg)
	}
}

func TestMemoryStateTracksWindow(t *testing.T) {
	// The average state of a W-second join at rate 2*lambda total is
	// about 2*lambda*W after warmup (Section 3's memory model).
	const (
		rate = 40.0
		wSec = 4.0
	)
	p, _ := passthroughPlan(t, stream.Seconds(wSec))
	input := genInput(t, rate, 60*stream.Second, 4)
	res, err := Run(p, input, Config{WarmupFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * rate * wSec
	if res.Memory.Avg < 0.85*want || res.Memory.Avg > 1.15*want {
		t.Errorf("avg state %f, want about %f", res.Memory.Avg, want)
	}
}
