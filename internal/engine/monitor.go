package engine

import "stateslice/internal/operator"

// MemoryStats aggregates the sampled total state memory of a run, measured
// in tuples as in Section 7.1 of the paper ("the number of tuples staying in
// the states of the joins").
type MemoryStats struct {
	// Samples is the number of observations taken.
	Samples int
	// Avg is the mean total state size over the sampled observations.
	Avg float64
	// Max is the peak total state size.
	Max int
	// Last is the state size at the end of the run.
	Last int
	// Series holds the per-sample sizes when Config.Series was set.
	Series []Sample
}

// Sample is one monitor observation.
type Sample struct {
	// Arrival is the index of the input tuple after which the sample was
	// taken.
	Arrival int
	// Tuples is the total state size observed.
	Tuples int
}

// monitor samples state sizes during a run, mirroring the statistics thread
// of the CAPE query processor.
type monitor struct {
	stateful []operator.StateSizer
	cfg      Config

	samples int
	sum     float64
	max     int
	last    int
	series  []Sample
}

func newMonitor(stateful []operator.StateSizer, cfg Config) *monitor {
	return &monitor{stateful: stateful, cfg: cfg}
}

// observe is called after arrival i of n has been fully processed.
func (m *monitor) observe(i, n int) {
	if len(m.stateful) == 0 {
		return
	}
	if (i+1)%m.cfg.SampleEvery != 0 {
		return
	}
	total := 0
	for _, s := range m.stateful {
		total += s.StateSize()
	}
	m.last = total
	if float64(i) < m.cfg.WarmupFraction*float64(n) {
		return
	}
	m.samples++
	m.sum += float64(total)
	if total > m.max {
		m.max = total
	}
	if m.cfg.Series {
		m.series = append(m.series, Sample{Arrival: i, Tuples: total})
	}
}

func (m *monitor) stats() MemoryStats {
	st := MemoryStats{Samples: m.samples, Max: m.max, Last: m.last, Series: m.series}
	if m.samples > 0 {
		st.Avg = m.sum / float64(m.samples)
	}
	return st
}

// compile-time interface checks for the operators the monitor samples.
var (
	_ operator.StateSizer = (*operator.WindowJoin)(nil)
	_ operator.StateSizer = (*operator.SlicedBinaryJoin)(nil)
	_ operator.StateSizer = (*operator.SlicedOneWayJoin)(nil)
	_ operator.StateSizer = (*operator.CountWindowJoin)(nil)
	_ operator.StateSizer = (*operator.SlicedCountBinaryJoin)(nil)
)
