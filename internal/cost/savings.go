package cost

// Savings holds the four relative savings of state-slice sharing over the
// two alternatives, as defined by Eq. (4) of the paper and plotted in
// Figure 11. Each value is a fraction in [0, 1): (C_other - C_slice) /
// C_other.
type Savings struct {
	// MemVsPullUp is (Cm1-Cm3)/Cm1 = (1-rho)(1-Ssigma)/2.
	MemVsPullUp float64
	// MemVsPushDown is (Cm2-Cm3)/Cm2 = rho/(1+2rho+(1-rho)Ssigma).
	MemVsPushDown float64
	// CPUVsPullUp is (Cp1-Cp3)/Cp1 =
	// ((1-rho)(1-Ssigma)+(2-rho)S1)/(1+2S1).
	CPUVsPullUp float64
	// CPUVsPushDown is (Cp2-Cp3)/Cp2 =
	// Ssigma*S1/(rho(1-Ssigma)+Ssigma+Ssigma*S1+rho*S1).
	CPUVsPushDown float64
}

// ComputeSavings evaluates Eq. (4) at window ratio rho = W1/W2, selection
// selectivity sSigma and join selectivity s1. The paper omits the
// O(lambda) terms for the CPU comparison ("its effect is small when the
// number of queries is only 2"), and these closed forms do the same.
func ComputeSavings(rho, sSigma, s1 float64) Savings {
	return Savings{
		MemVsPullUp:   (1 - rho) * (1 - sSigma) / 2,
		MemVsPushDown: rho / (1 + 2*rho + (1-rho)*sSigma),
		CPUVsPullUp:   ((1-rho)*(1-sSigma) + (2-rho)*s1) / (1 + 2*s1),
		CPUVsPushDown: sSigma * s1 / (rho*(1-sSigma) + sSigma + sSigma*s1 + rho*s1),
	}
}

// SurfacePoint is one grid sample of a Figure 11 surface.
type SurfacePoint struct {
	// Rho is the window ratio W1/W2.
	Rho float64
	// SSigma is the selection selectivity.
	SSigma float64
	// Value is the savings percentage (0-100).
	Value float64
}

// Metric selects one of the four savings for surface generation.
type Metric int

// The four Figure 11 series.
const (
	MemVsPullUpMetric Metric = iota
	MemVsPushDownMetric
	CPUVsPullUpMetric
	CPUVsPushDownMetric
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MemVsPullUpMetric:
		return "memory: state-slice over selection-pullup"
	case MemVsPushDownMetric:
		return "memory: state-slice over selection-pushdown"
	case CPUVsPullUpMetric:
		return "cpu: state-slice over selection-pullup"
	default:
		return "cpu: state-slice over selection-pushdown"
	}
}

// pick extracts the metric value as a percentage.
func (s Savings) pick(m Metric) float64 {
	switch m {
	case MemVsPullUpMetric:
		return 100 * s.MemVsPullUp
	case MemVsPushDownMetric:
		return 100 * s.MemVsPushDown
	case CPUVsPullUpMetric:
		return 100 * s.CPUVsPullUp
	default:
		return 100 * s.CPUVsPushDown
	}
}

// Surface samples a Figure 11 savings surface on an n x n open grid of
// (rho, sSigma) in (0,1) x (0,1] at join selectivity s1.
func Surface(m Metric, s1 float64, n int) []SurfacePoint {
	if n < 2 {
		n = 2
	}
	var out []SurfacePoint
	for i := 1; i <= n; i++ {
		rho := float64(i) / float64(n+1)
		for j := 1; j <= n; j++ {
			sSigma := float64(j) / float64(n)
			s := ComputeSavings(rho, sSigma, s1)
			out = append(out, SurfacePoint{Rho: rho, SSigma: sSigma, Value: s.pick(m)})
		}
	}
	return out
}

// SavingsFromCosts recomputes the savings from the full closed forms
// Eq. (1)-(3), including the O(lambda) terms Eq. (4) drops. Tests verify the
// closed forms above agree with these in the large-lambda limit.
func SavingsFromCosts(p Params) Savings {
	pu, pd, sl := PullUp(p), PushDown(p), StateSlice(p)
	return Savings{
		MemVsPullUp:   (pu.MemoryKB - sl.MemoryKB) / pu.MemoryKB,
		MemVsPushDown: (pd.MemoryKB - sl.MemoryKB) / pd.MemoryKB,
		CPUVsPullUp:   (pu.CPU - sl.CPU) / pu.CPU,
		CPUVsPushDown: (pd.CPU - sl.CPU) / pd.CPU,
	}
}
