package cost

import (
	"math"
	"testing"
)

func params() Params {
	return Params{
		LambdaA: 50, LambdaB: 50,
		W1: 10, W2: 30,
		TupleKB:  0.1,
		SelSigma: 0.5,
		SelJoin:  0.1,
	}
}

func TestParamsValidate(t *testing.T) {
	good := params()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.LambdaA = 0 },
		func(p *Params) { p.LambdaB = -3 },
		func(p *Params) { p.W1 = 0 },
		func(p *Params) { p.W2 = p.W1 - 1 },
		func(p *Params) { p.SelSigma = 1.5 },
		func(p *Params) { p.SelJoin = -0.1 },
		func(p *Params) { p.TupleKB = -1 },
	}
	for i, mutate := range bad {
		p := params()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestEq1PullUp(t *testing.T) {
	p := params()
	got := PullUp(p)
	l := 50.0
	wantMem := 2 * l * 30 * 0.1
	wantCPU := 2*l*l*30 + 2*l + 2*l*l*30*0.1 + 2*l*l*30*0.1
	if got.MemoryKB != wantMem {
		t.Errorf("Eq1 Cm = %g, want %g", got.MemoryKB, wantMem)
	}
	if got.CPU != wantCPU {
		t.Errorf("Eq1 Cp = %g, want %g", got.CPU, wantCPU)
	}
}

func TestEq2PushDown(t *testing.T) {
	p := params()
	got := PushDown(p)
	l, s := 50.0, 0.5
	wantMem := (2-s)*l*10*0.1 + (1+s)*l*30*0.1
	wantCPU := l + 2*(1-s)*l*l*10 + 2*s*l*l*30 + 3*l + 2*s*l*l*30*0.1 + 2*l*l*10*0.1
	if got.MemoryKB != wantMem {
		t.Errorf("Eq2 Cm = %g, want %g", got.MemoryKB, wantMem)
	}
	if got.CPU != wantCPU {
		t.Errorf("Eq2 Cp = %g, want %g", got.CPU, wantCPU)
	}
}

func TestEq3StateSlice(t *testing.T) {
	p := params()
	got := StateSlice(p)
	l, s := 50.0, 0.5
	wantMem := 2*l*10*0.1 + (1+s)*l*20*0.1
	wantCPU := 2*l*l*10 + l + 2*l*l*s*20 + 4*l + 2*l + 2*l*l*0.1*10
	if got.MemoryKB != wantMem {
		t.Errorf("Eq3 Cm = %g, want %g", got.MemoryKB, wantMem)
	}
	if got.CPU != wantCPU {
		t.Errorf("Eq3 Cp = %g, want %g", got.CPU, wantCPU)
	}
}

func TestStateSliceAlwaysWins(t *testing.T) {
	// The paper: "all the savings are positive ... the state-sliced
	// sharing paradigm achieves the lowest memory and CPU costs under all
	// these settings."
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, ss := range []float64{0.1, 0.5, 0.9, 1} {
			for _, s1 := range []float64{0.025, 0.1, 0.4} {
				p := Params{
					LambdaA: 1000, LambdaB: 1000,
					W1: 30 * rho, W2: 30,
					TupleKB: 0.1, SelSigma: ss, SelJoin: s1,
				}
				sl, pu, pd := StateSlice(p), PullUp(p), PushDown(p)
				if sl.MemoryKB > pu.MemoryKB+1e-9 || sl.MemoryKB > pd.MemoryKB+1e-9 {
					t.Errorf("rho=%g ss=%g s1=%g: state-slice memory %g not minimal (pullup %g, pushdown %g)",
						rho, ss, s1, sl.MemoryKB, pu.MemoryKB, pd.MemoryKB)
				}
				if sl.CPU > pu.CPU+1e-9 || sl.CPU > pd.CPU+1e-9 {
					t.Errorf("rho=%g ss=%g s1=%g: state-slice CPU %g not minimal (pullup %g, pushdown %g)",
						rho, ss, s1, sl.CPU, pu.CPU, pd.CPU)
				}
			}
		}
	}
}

func TestSavingsClosedFormsMatchCostsAtScale(t *testing.T) {
	// Eq. (4) omits the O(lambda) terms; at large lambda the closed forms
	// and the full Eq. (1)-(3) ratios converge.
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		for _, ss := range []float64{0.2, 0.6, 1} {
			for _, s1 := range []float64{0.025, 0.4} {
				p := Params{
					LambdaA: 1e6, LambdaB: 1e6,
					W1: 100 * rho, W2: 100,
					TupleKB: 1, SelSigma: ss, SelJoin: s1,
				}
				closed := ComputeSavings(rho, ss, s1)
				full := SavingsFromCosts(p)
				pairs := [][2]float64{
					{closed.MemVsPullUp, full.MemVsPullUp},
					{closed.MemVsPushDown, full.MemVsPushDown},
					{closed.CPUVsPullUp, full.CPUVsPullUp},
					{closed.CPUVsPushDown, full.CPUVsPushDown},
				}
				for i, pr := range pairs {
					if math.Abs(pr[0]-pr[1]) > 1e-6 {
						t.Errorf("rho=%g ss=%g s1=%g metric %d: closed %g vs full %g",
							rho, ss, s1, i, pr[0], pr[1])
					}
				}
			}
		}
	}
}

func TestSavingsBaseCaseNoSelection(t *testing.T) {
	// Section 4.3 base case: with Ssigma = 1 state-slice memory equals
	// pull-up memory, and the CPU saving is proportional to S1.
	s := ComputeSavings(0.5, 1, 0.1)
	if s.MemVsPullUp != 0 {
		t.Errorf("MemVsPullUp = %g, want 0 when Ssigma=1", s.MemVsPullUp)
	}
	want := (2 - 0.5) * 0.1 / (1 + 2*0.1)
	if math.Abs(s.CPUVsPullUp-want) > 1e-12 {
		t.Errorf("CPUVsPullUp = %g, want %g", s.CPUVsPullUp, want)
	}
}

func TestSavingsExtremes(t *testing.T) {
	// The paper reports savings approaching 50% memory and near-100% CPU
	// at extreme settings (Figure 11 discussion).
	s := ComputeSavings(0.01, 0.01, 0.4)
	if s.MemVsPullUp < 0.45 {
		t.Errorf("memory saving at extreme settings = %g, want close to 0.5", s.MemVsPullUp)
	}
	if s.CPUVsPullUp < 0.85 {
		t.Errorf("CPU saving at extreme settings = %g, want close to 1", s.CPUVsPullUp)
	}
}

func TestSurfaceShape(t *testing.T) {
	pts := Surface(MemVsPullUpMetric, 0.1, 10)
	if len(pts) != 100 {
		t.Fatalf("surface has %d points, want 100", len(pts))
	}
	for _, pt := range pts {
		if pt.Rho <= 0 || pt.Rho >= 1 || pt.SSigma <= 0 || pt.SSigma > 1 {
			t.Fatalf("grid point outside domain: %+v", pt)
		}
		if pt.Value < 0 || pt.Value > 100 {
			t.Fatalf("savings %g%% outside [0,100]", pt.Value)
		}
	}
	// Memory saving vs pull-up decreases in both rho and sSigma.
	s := func(rho, ss float64) float64 { return ComputeSavings(rho, ss, 0.1).MemVsPullUp }
	if !(s(0.2, 0.3) > s(0.8, 0.3)) || !(s(0.2, 0.3) > s(0.2, 0.9)) {
		t.Error("MemVsPullUp must decrease with rho and sSigma")
	}
	for _, m := range []Metric{MemVsPullUpMetric, MemVsPushDownMetric, CPUVsPullUpMetric, CPUVsPushDownMetric} {
		if m.String() == "" {
			t.Error("metric must have a name")
		}
	}
}

func TestUnsharedReference(t *testing.T) {
	// Sharing via state-slice must never cost more than running the two
	// queries separately.
	p := params()
	sl, un := StateSlice(p), Unshared(p)
	if sl.MemoryKB > un.MemoryKB {
		t.Errorf("state-slice memory %g exceeds unshared %g", sl.MemoryKB, un.MemoryKB)
	}
	if sl.CPU > un.CPU+3*p.lambda() {
		// Allow the small constant punctuation/union overhead.
		t.Errorf("state-slice CPU %g exceeds unshared %g", sl.CPU, un.CPU)
	}
}
