// Package cost implements the paper's analytical cost model: the memory and
// CPU formulas Eq. (1)-(3) for the three sharing strategies over the
// two-query motivating workload (Section 3 and 4.3), the relative savings
// Eq. (4) plotted in Figure 11, and the N-query generalisation used by the
// chain-building optimizers of Sections 5 and 6.
//
// Memory cost is state memory in KB (tuple size Mt times tuples held); CPU
// cost is the paper's metric, comparisons per second, covering join probing,
// cross-purging, routing, unioning and selection evaluation.
package cost

import "fmt"

// Params carries the system settings of Table 1 for the two-query analysis:
// queries Q1 (window W1, no selection) and Q2 (window W2 > W1, selection
// with selectivity SelSigma), joined with selectivity SelJoin.
type Params struct {
	// LambdaA and LambdaB are the stream arrival rates in tuples/sec.
	LambdaA, LambdaB float64
	// W1 and W2 are the two query windows in seconds, W1 <= W2.
	W1, W2 float64
	// TupleKB is the tuple size Mt in KB.
	TupleKB float64
	// SelSigma is the selectivity of Q2's selection on stream A.
	SelSigma float64
	// SelJoin is the join selectivity S1 (output over Cartesian product).
	SelJoin float64
}

// Validate reports a parameter error, if any.
func (p Params) Validate() error {
	if p.LambdaA <= 0 || p.LambdaB <= 0 {
		return fmt.Errorf("cost: rates must be positive (got %g, %g)", p.LambdaA, p.LambdaB)
	}
	if p.W1 <= 0 || p.W2 < p.W1 {
		return fmt.Errorf("cost: need 0 < W1 <= W2 (got %g, %g)", p.W1, p.W2)
	}
	if p.SelSigma < 0 || p.SelSigma > 1 || p.SelJoin < 0 || p.SelJoin > 1 {
		return fmt.Errorf("cost: selectivities must lie in [0,1] (got Ssigma=%g, S1=%g)", p.SelSigma, p.SelJoin)
	}
	if p.TupleKB < 0 {
		return fmt.Errorf("cost: tuple size must be non-negative (got %g)", p.TupleKB)
	}
	return nil
}

// lambda returns the symmetric rate the paper's formulas assume
// (lambda_A = lambda_B = lambda); asymmetric inputs use the mean, matching
// the paper's note that the analysis "can be extended similarly for
// unbalanced input stream rates".
func (p Params) lambda() float64 { return (p.LambdaA + p.LambdaB) / 2 }

// Cost is a (memory, CPU) pair: state memory in KB and comparisons/second.
type Cost struct {
	// MemoryKB is the state memory consumption Cm.
	MemoryKB float64
	// CPU is the comparison rate Cp.
	CPU float64
}

// PullUp evaluates Eq. (1): naive sharing with selection pull-up. One join
// with window W2 on unfiltered streams; a router splits results between the
// queries; Q2's selection runs on routed results.
func PullUp(p Params) Cost {
	l := p.lambda()
	mem := 2 * l * p.W2 * p.TupleKB
	cpu := 2*l*l*p.W2 + // join probing
		2*l + // cross-purge
		2*l*l*p.W2*p.SelJoin + // routing (one comparison per result)
		2*l*l*p.W2*p.SelJoin // selection on routed results
	return Cost{MemoryKB: mem, CPU: cpu}
}

// PushDown evaluates Eq. (2): stream partition with selection push-down.
// Stream A is split by the selection; the failing partition joins with
// window W1, the passing partition with window W2; a router and an
// order-preserving union reassemble the query answers.
func PushDown(p Params) Cost {
	l := p.lambda()
	s := p.SelSigma
	mem := (2-s)*l*p.W1*p.TupleKB + (1+s)*l*p.W2*p.TupleKB
	cpu := l + // splitting
		2*(1-s)*l*l*p.W1 + // probing of the failing-partition join
		2*s*l*l*p.W2 + // probing of the passing-partition join
		3*l + // cross-purge of both joins
		2*s*l*l*p.W2*p.SelJoin + // routing of passing-partition results
		2*l*l*p.W1*p.SelJoin // union merge of Q1's two result streams
	return Cost{MemoryKB: mem, CPU: cpu}
}

// StateSlice evaluates Eq. (3): the chain of two sliced binary window joins
// with the selection pushed between the slices (Figure 10).
func StateSlice(p Params) Cost {
	l := p.lambda()
	s := p.SelSigma
	mem := 2*l*p.W1*p.TupleKB + (1+s)*l*(p.W2-p.W1)*p.TupleKB
	cpu := 2*l*l*p.W1 + // probing of slice [0,W1)
		l + // sigma_A between the slices
		2*l*l*s*(p.W2-p.W1) + // probing of slice [W1,W2)
		4*l + // cross-purge of both slices
		2*l + // union (punctuation-driven merge)
		2*l*l*p.SelJoin*p.W1 // sigma'_A on slice-1 results for Q2
	return Cost{MemoryKB: mem, CPU: cpu}
}

// Unshared evaluates the no-sharing baseline of Figure 2 for reference: two
// independent query plans with selections pushed below the joins.
func Unshared(p Params) Cost {
	l := p.lambda()
	s := p.SelSigma
	mem := 2*l*p.W1*p.TupleKB + (1+s)*l*p.W2*p.TupleKB
	cpu := 2*l*l*p.W1 + // Q1 join probing
		l + // Q2 selection
		2*s*l*l*p.W2 + // Q2 join probing
		4*l // cross-purge of both joins
	return Cost{MemoryKB: mem, CPU: cpu}
}
