package cost

import (
	"fmt"
	"sort"
)

// QuerySpec abstracts one continuous query for the cost model: its window
// and the selectivity of its stream-A selection (1 = unfiltered). Queries
// must be sorted by ascending window, the chain order.
type QuerySpec struct {
	// Window is the query's sliding window in seconds.
	Window float64
	// Sel is the selection selectivity in (0, 1]; 1 means no selection.
	Sel float64
}

// ChainParams carries the workload-independent parameters of the N-query
// chain cost model (Sections 5 and 6).
type ChainParams struct {
	// LambdaA and LambdaB are the stream rates in tuples/sec.
	LambdaA, LambdaB float64
	// TupleKB is the tuple size Mt.
	TupleKB float64
	// SelJoin is the join selectivity S1.
	SelJoin float64
	// Csys is the per-tuple-per-operator system overhead factor of
	// Section 5.2, in comparisons (it covers queue moves and scheduling).
	Csys float64
}

// Validate reports a parameter error, if any.
func (p ChainParams) Validate() error {
	if p.LambdaA <= 0 || p.LambdaB <= 0 {
		return fmt.Errorf("cost: rates must be positive (got %g, %g)", p.LambdaA, p.LambdaB)
	}
	if p.SelJoin < 0 || p.SelJoin > 1 {
		return fmt.Errorf("cost: join selectivity %g outside [0,1]", p.SelJoin)
	}
	if p.Csys < 0 || p.TupleKB < 0 {
		return fmt.Errorf("cost: Csys and TupleKB must be non-negative")
	}
	return nil
}

// ValidateQueries checks the query list invariants.
func ValidateQueries(queries []QuerySpec) error {
	if len(queries) == 0 {
		return fmt.Errorf("cost: no queries")
	}
	for i, q := range queries {
		if q.Window <= 0 {
			return fmt.Errorf("cost: query %d has non-positive window", i)
		}
		if q.Sel <= 0 || q.Sel > 1 {
			return fmt.Errorf("cost: query %d selectivity %g outside (0,1]", i, q.Sel)
		}
		if i > 0 && q.Window < queries[i-1].Window {
			return fmt.Errorf("cost: queries must be sorted by window (index %d)", i)
		}
	}
	return nil
}

// DistinctWindows returns the ascending distinct windows of the query set —
// the Mem-Opt slice boundaries.
func DistinctWindows(queries []QuerySpec) []float64 {
	var out []float64
	for _, q := range queries {
		if len(out) == 0 || q.Window != out[len(out)-1] {
			out = append(out, q.Window)
		}
	}
	return out
}

// Survival returns the probability that a stream-A tuple is still useful for
// some query whose window exceeds start — the selectivity of the disjunction
// sigma'_i pushed before the slice starting there (Section 6.1). Threshold
// predicates nest, so the disjunction selectivity is the maximum member
// selectivity; an unfiltered query forces 1.
func Survival(queries []QuerySpec, start float64) float64 {
	max := 0.0
	for _, q := range queries {
		if q.Window > start && q.Sel > max {
			max = q.Sel
		}
	}
	if max == 0 {
		return 1 // no query beyond: slice unused, nothing filtered
	}
	return max
}

// EdgeCost returns the CPU cost per second attributable to one (possibly
// merged) slice covering the window range (start, end], the edge weight
// l_{i,j} of the Section 5.2 shortest-path formulation extended with the
// selection terms of Section 6.2. Lemma 2's independence holds: the cost
// depends only on the slice's own range and the queries at or beyond it.
func EdgeCost(queries []QuerySpec, start, end float64, p ChainParams) float64 {
	width := end - start
	pa := Survival(queries, start)
	probe := 2 * p.LambdaA * pa * p.LambdaB * width
	purge := p.LambdaA + p.LambdaB
	sys := p.Csys * (p.LambdaA + p.LambdaB)

	// Routing: results are discriminated among the distinct query windows
	// inside the slice; the last boundary is implied (Section 5.2 charges
	// (j-i) comparisons per result for a merge of slices i..j).
	inside := 0
	seen := -1.0
	for _, q := range queries {
		if q.Window > start && q.Window <= end && q.Window != seen {
			inside++
			seen = q.Window
		}
	}
	resultRate := 2 * p.LambdaA * pa * p.LambdaB * width * p.SelJoin
	route := 0.0
	if inside > 1 {
		route = resultRate * float64(inside-1)
	}

	// Result-side sigma' filters: one comparison per result per distinct
	// predicate that the slice's entry guarantee does not imply
	// (Figure 10: slice-1 results are filtered for Q2).
	filterGroups := make(map[float64]bool)
	for _, q := range queries {
		if q.Window > start && q.Sel < 1 && q.Sel < pa {
			filterGroups[q.Sel] = true
		}
	}
	sigma := resultRate * float64(len(filterGroups))

	// First-slice extras: unions for the queries served by later slices
	// (punctuation processing, Section 4.3) and the single lineage
	// evaluation of the pushed-down selections (Section 6.1).
	head := 0.0
	if start == 0 {
		unions := 0
		anyFilter := false
		for _, q := range queries {
			if q.Window > end {
				unions++
			}
			if q.Sel < 1 {
				anyFilter = true
			}
		}
		head = float64(unions) * (p.LambdaA + p.LambdaB)
		if anyFilter {
			head += p.LambdaA
		}
	}
	return probe + purge + sys + route + sigma + head
}

// SliceMemory returns the state memory in KB of one slice covering
// (start, end]: both streams' windows, the A side thinned by the pushed-down
// selection survival.
func SliceMemory(queries []QuerySpec, start, end float64, p ChainParams) float64 {
	pa := Survival(queries, start)
	return (p.LambdaA*pa + p.LambdaB) * (end - start) * p.TupleKB
}

// ChainCost evaluates the full cost model of a chain with the given slice
// end boundaries: total state memory in KB and total CPU comparisons per
// second. Ends must be ascending and cover the largest query window.
func ChainCost(queries []QuerySpec, ends []float64, p ChainParams) (Cost, error) {
	if err := ValidateQueries(queries); err != nil {
		return Cost{}, err
	}
	if err := p.Validate(); err != nil {
		return Cost{}, err
	}
	if len(ends) == 0 {
		return Cost{}, fmt.Errorf("cost: no slice boundaries")
	}
	if !sort.Float64sAreSorted(ends) {
		return Cost{}, fmt.Errorf("cost: slice boundaries must be ascending")
	}
	if last, maxW := ends[len(ends)-1], queries[len(queries)-1].Window; last != maxW {
		return Cost{}, fmt.Errorf("cost: last boundary %g must equal the largest window %g", last, maxW)
	}
	var c Cost
	start := 0.0
	for _, end := range ends {
		if end <= start {
			return Cost{}, fmt.Errorf("cost: non-increasing boundary %g", end)
		}
		c.CPU += EdgeCost(queries, start, end, p)
		c.MemoryKB += SliceMemory(queries, start, end, p)
		start = end
	}
	return c, nil
}
