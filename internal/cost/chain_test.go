package cost

import (
	"math"
	"testing"
)

func chainParams() ChainParams {
	return ChainParams{LambdaA: 50, LambdaB: 50, TupleKB: 0.1, SelJoin: 0.1, Csys: 2}
}

func twoQueries() []QuerySpec {
	return []QuerySpec{{Window: 10, Sel: 1}, {Window: 30, Sel: 0.5}}
}

func TestValidateQueries(t *testing.T) {
	if err := ValidateQueries(twoQueries()); err != nil {
		t.Fatalf("valid queries rejected: %v", err)
	}
	bad := [][]QuerySpec{
		nil,
		{{Window: 0, Sel: 1}},
		{{Window: 5, Sel: 0}},
		{{Window: 5, Sel: 1.2}},
		{{Window: 9, Sel: 1}, {Window: 5, Sel: 1}},
	}
	for i, qs := range bad {
		if err := ValidateQueries(qs); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSurvivalNestedThresholds(t *testing.T) {
	qs := []QuerySpec{
		{Window: 5, Sel: 1},
		{Window: 10, Sel: 0.8},
		{Window: 20, Sel: 0.3},
	}
	cases := []struct {
		start float64
		want  float64
	}{
		{0, 1},    // the unfiltered query keeps everything alive
		{5, 0.8},  // disjunction of 0.8 and 0.3 thresholds
		{10, 0.3}, // only the tightest query remains
		{20, 1},   // nothing beyond: slice unused
	}
	for _, c := range cases {
		if got := Survival(qs, c.start); got != c.want {
			t.Errorf("Survival(%g) = %g, want %g", c.start, got, c.want)
		}
	}
}

func TestChainCostMatchesEq3ForMemOptChain(t *testing.T) {
	// The generalized chain model evaluated on the two-query Mem-Opt
	// chain must reproduce Eq. (3) exactly (with Csys = 0; Eq. (3) has no
	// overhead term), except the per-male purge rate at the second slice,
	// which the paper rounds to the unfiltered rate as we do.
	qs := twoQueries()
	cp := chainParams()
	cp.Csys = 0
	got, err := ChainCost(qs, []float64{10, 30}, cp)
	if err != nil {
		t.Fatal(err)
	}
	want := StateSlice(Params{
		LambdaA: cp.LambdaA, LambdaB: cp.LambdaB,
		W1: 10, W2: 30, TupleKB: cp.TupleKB, SelSigma: 0.5, SelJoin: cp.SelJoin,
	})
	if math.Abs(got.MemoryKB-want.MemoryKB) > 1e-9 {
		t.Errorf("chain memory %g, Eq3 %g", got.MemoryKB, want.MemoryKB)
	}
	if math.Abs(got.CPU-want.CPU) > 1e-9 {
		t.Errorf("chain CPU %g, Eq3 %g", got.CPU, want.CPU)
	}
}

func TestChainCostMergedMatchesEq1PlusLineage(t *testing.T) {
	// Fully merging the two-query chain recreates the pull-up plan with a
	// router; the model must agree with Eq. (1) up to the single lineage
	// evaluation (lambda_A) that the chain's entry mark performs.
	qs := twoQueries()
	cp := chainParams()
	cp.Csys = 0
	got, err := ChainCost(qs, []float64{30}, cp)
	if err != nil {
		t.Fatal(err)
	}
	want := PullUp(Params{
		LambdaA: cp.LambdaA, LambdaB: cp.LambdaB,
		W1: 10, W2: 30, TupleKB: cp.TupleKB, SelSigma: 0.5, SelJoin: cp.SelJoin,
	})
	if math.Abs(got.CPU-(want.CPU+cp.LambdaA)) > 1e-9 {
		t.Errorf("merged chain CPU %g, Eq1+lambdaA %g", got.CPU, want.CPU+cp.LambdaA)
	}
	if math.Abs(got.MemoryKB-want.MemoryKB) > 1e-9 {
		t.Errorf("merged chain memory %g, Eq1 %g", got.MemoryKB, want.MemoryKB)
	}
}

func TestMemOptChainMinimizesMemory(t *testing.T) {
	// Theorem 4: the Mem-Opt chain consumes minimal state memory. Compare
	// against every coarser chain for a 4-window workload.
	qs := []QuerySpec{
		{Window: 5, Sel: 1},
		{Window: 10, Sel: 0.6},
		{Window: 20, Sel: 0.4},
		{Window: 40, Sel: 0.2},
	}
	cp := chainParams()
	memOpt, err := ChainCost(qs, DistinctWindows(qs), cp)
	if err != nil {
		t.Fatal(err)
	}
	windows := DistinctWindows(qs)
	for mask := 0; mask < 1<<3; mask++ {
		var ends []float64
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				ends = append(ends, windows[i])
			}
		}
		ends = append(ends, windows[3])
		c, err := ChainCost(qs, ends, cp)
		if err != nil {
			t.Fatal(err)
		}
		if c.MemoryKB < memOpt.MemoryKB-1e-9 {
			t.Errorf("chain %v uses %g KB, less than Mem-Opt %g", ends, c.MemoryKB, memOpt.MemoryKB)
		}
	}
}

func TestMemoryEqualWithoutSelections(t *testing.T) {
	// Section 5.2: "In case the queries do not have selections, the
	// CPU-Opt chain will consume the same amount of memory as the
	// Mem-Opt chain" — indeed any chain does.
	qs := []QuerySpec{{Window: 5, Sel: 1}, {Window: 15, Sel: 1}, {Window: 40, Sel: 1}}
	cp := chainParams()
	a, err := ChainCost(qs, []float64{5, 15, 40}, cp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChainCost(qs, []float64{40}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MemoryKB-b.MemoryKB) > 1e-9 {
		t.Errorf("memory differs without selections: %g vs %g", a.MemoryKB, b.MemoryKB)
	}
	// And it equals the single largest-window join (Theorem 3).
	want := (cp.LambdaA + cp.LambdaB) * 40 * cp.TupleKB
	if math.Abs(a.MemoryKB-want) > 1e-9 {
		t.Errorf("Mem-Opt memory %g, regular join %g", a.MemoryKB, want)
	}
}

func TestEdgeCostIndependence(t *testing.T) {
	// Lemma 2: edge costs are independent — the cost of a slice does not
	// depend on how the chain is partitioned elsewhere. EdgeCost takes
	// only the slice range, so sums must decompose.
	qs := []QuerySpec{
		{Window: 4, Sel: 1},
		{Window: 9, Sel: 0.5},
		{Window: 16, Sel: 0.5},
	}
	cp := chainParams()
	whole, err := ChainCost(qs, []float64{4, 9, 16}, cp)
	if err != nil {
		t.Fatal(err)
	}
	sum := EdgeCost(qs, 0, 4, cp) + EdgeCost(qs, 4, 9, cp) + EdgeCost(qs, 9, 16, cp)
	if math.Abs(whole.CPU-sum) > 1e-9 {
		t.Errorf("chain cost %g != edge sum %g", whole.CPU, sum)
	}
}

func TestChainCostValidation(t *testing.T) {
	qs := twoQueries()
	cp := chainParams()
	cases := [][]float64{
		nil,
		{30, 10},     // not ascending
		{10},         // last != max window
		{10, 10, 30}, // duplicate
		{-5, 30},     // negative
	}
	for i, ends := range cases {
		if _, err := ChainCost(qs, ends, cp); err == nil {
			t.Errorf("case %d (%v): expected error", i, ends)
		}
	}
	if err := (ChainParams{LambdaA: 0, LambdaB: 1}).Validate(); err == nil {
		t.Error("zero rate must fail validation")
	}
	if err := (ChainParams{LambdaA: 1, LambdaB: 1, SelJoin: 2}).Validate(); err == nil {
		t.Error("join selectivity > 1 must fail validation")
	}
	if err := (ChainParams{LambdaA: 1, LambdaB: 1, Csys: -1}).Validate(); err == nil {
		t.Error("negative Csys must fail validation")
	}
}

func TestRoutingCostGrowsWithMergedQueries(t *testing.T) {
	// Merging more query boundaries into one slice raises its routing
	// term: each result pays one more comparison per extra boundary.
	qs := []QuerySpec{
		{Window: 10, Sel: 1},
		{Window: 20, Sel: 1},
		{Window: 30, Sel: 1},
	}
	cp := chainParams()
	cp.Csys = 0
	oneQ := EdgeCost(qs, 20, 30, cp)  // one window inside: no routing
	twoQ := EdgeCost(qs, 10, 30, cp)  // two windows inside: route each result once
	threeQ := EdgeCost(qs, 0, 30, cp) // three windows: two comparisons per result
	probe := func(w float64) float64 { return 2 * cp.LambdaA * cp.LambdaB * w }
	results := func(w float64) float64 { return probe(w) * cp.SelJoin }
	if math.Abs((twoQ-probe(20))-(cp.LambdaA+cp.LambdaB)-results(20)) > 1e-9 {
		t.Errorf("two-window slice routing mismatch: %g", twoQ)
	}
	// threeQ starts at 0 and the workload has no selections, so the head
	// term adds no lineage cost and no unions remain beyond the slice.
	if math.Abs(threeQ-probe(30)-(cp.LambdaA+cp.LambdaB)-2*results(30)) > 1e-9 {
		t.Errorf("three-window slice routing mismatch: %g", threeQ)
	}
	if oneQ >= twoQ || twoQ >= threeQ {
		t.Errorf("routing cost must grow with merged boundaries: %g, %g, %g", oneQ, twoQ, threeQ)
	}
}
