package plan

import (
	"fmt"

	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// BuildPushDown assembles the stream-partition sharing plan with selection
// push-down of Section 3.2 (Figure 4): stream A is split by the shared
// selection condition; the failing partition feeds a join sized for the
// unfiltered queries, the passing partition feeds a join sized for the
// largest window; routers dispatch by window constraint and an
// order-preserving union reassembles the unfiltered queries' results from
// both joins.
//
// The strategy (from NiagaraCQ) requires the filtered queries to share one
// selection predicate — the shape of the paper's analysis and experiments;
// heterogeneous predicates would need one join per predicate partition.
// BuildPushDown returns an error for workloads outside that shape.
//
// Stream B is replicated into both joins, which is exactly the memory
// overhead Eq. (2) charges: the two B states cannot be shared because the
// sliding windows of the two joins "may not move forward simultaneously".
func BuildPushDown(w Workload, collect bool) (*engine.Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	shared, err := sharedFilter(w)
	if err != nil {
		return nil, err
	}
	p := &engine.Plan{Name: "push-down"}

	// Partition the queries.
	var unfiltered, filtered []int
	for i, q := range w.Queries {
		if q.HasFilter() {
			filtered = append(filtered, i)
		} else {
			unfiltered = append(unfiltered, i)
		}
	}
	if len(filtered) == 0 {
		// No selections anywhere: push-down degenerates to pull-up.
		pl, err := BuildPullUp(w, collect)
		if err != nil {
			return nil, err
		}
		pl.Name = "push-down"
		return pl, nil
	}

	wAll := w.MaxWindow()
	sinks := make([]*operator.Sink, len(w.Queries))
	mkSink := func(i int, port *operator.Port) {
		s := operator.NewSink(w.QueryName(i), port.NewQueue())
		if collect {
			s.Collecting()
		}
		sinks[i] = s
	}

	// Join 2 processes the sigma-passing A partition with the largest
	// window; every query consumes its output.
	join2In := stream.NewQueue()
	join2, err := operator.NewWindowJoin("join.pass", wAll, wAll, w.Join, join2In)
	if err != nil {
		return nil, fmt.Errorf("plan: push-down: %w", err)
	}
	router2 := operator.NewRouter("router.pass", join2.Out().NewQueue())
	branch2 := make(map[stream.Time]*operator.Port)
	for _, win := range w.DistinctWindows() {
		port, err := router2.AddBranch(win)
		if err != nil {
			return nil, fmt.Errorf("plan: push-down: %w", err)
		}
		branch2[win] = port
	}
	for _, i := range filtered {
		mkSink(i, branch2[w.Queries[i].Window])
	}

	if len(unfiltered) == 0 {
		// All queries filtered: the failing partition is dead and the
		// split is unnecessary — stream A is filtered directly.
		fin := stream.NewQueue()
		f := operator.NewStreamFilter("sigmaA", shared, stream.StreamA, fin)
		f.Out().Attach(join2In)
		p.EntryA = []*stream.Queue{fin}
		p.EntryB = []*stream.Queue{join2In}
		p.Ops = append(p.Ops, f, join2, router2)
		p.Stateful = append(p.Stateful, join2)
		for _, i := range filtered {
			p.Ops = append(p.Ops, sinks[i])
			p.Sinks = append(p.Sinks, sinks[i])
		}
		return p, nil
	}

	// Join 1 processes the sigma-failing A partition, sized for the
	// largest unfiltered window.
	wNF := w.Queries[unfiltered[len(unfiltered)-1]].Window
	join1In := stream.NewQueue()
	join1, err := operator.NewWindowJoin("join.fail", wNF, wNF, w.Join, join1In)
	if err != nil {
		return nil, fmt.Errorf("plan: push-down: %w", err)
	}
	router1 := operator.NewRouter("router.fail", join1.Out().NewQueue())
	branch1 := make(map[stream.Time]*operator.Port)
	var nfWindows []stream.Time
	for _, i := range unfiltered {
		win := w.Queries[i].Window
		if len(nfWindows) == 0 || nfWindows[len(nfWindows)-1] != win {
			nfWindows = append(nfWindows, win)
		}
	}
	for _, win := range nfWindows {
		port, err := router1.AddBranch(win)
		if err != nil {
			return nil, fmt.Errorf("plan: push-down: %w", err)
		}
		branch1[win] = port
	}

	// The split partitions stream A by the shared condition.
	splitIn := stream.NewQueue()
	split := operator.NewSplit("split", shared, splitIn)
	split.Pass().Attach(join2In)
	split.Fail().Attach(join1In)

	p.EntryA = []*stream.Queue{splitIn}
	p.EntryB = []*stream.Queue{join1In, join2In}
	p.Ops = append(p.Ops, split, join1, join2, router1, router2)
	p.Stateful = append(p.Stateful, join1, join2)

	// Unfiltered queries merge the failing-partition results with the
	// passing-partition results routed to their window.
	var unions []*operator.Union
	for _, i := range unfiltered {
		win := w.Queries[i].Window
		u := operator.NewUnion(w.QueryName(i) + ".union")
		branch1[win].Attach(u.AddInput())
		branch2[win].Attach(u.AddInput())
		unions = append(unions, u)
		mkSink(i, u.Out())
	}
	for _, u := range unions {
		p.Ops = append(p.Ops, u)
	}
	for i := range w.Queries {
		p.Ops = append(p.Ops, sinks[i])
		p.Sinks = append(p.Sinks, sinks[i])
	}
	return p, nil
}

// sharedFilter returns the single stream-A selection predicate shared by
// every filtered query, or an error when the workload has several distinct
// ones or filters stream B (the paper's push-down baseline partitions one
// stream; the m x n-join generalisation it mentions in Section 3.2 is out of
// scope for this baseline).
func sharedFilter(w Workload) (stream.Predicate, error) {
	var shared stream.Predicate
	for _, q := range w.Queries {
		if q.HasFilterB() {
			return nil, fmt.Errorf("plan: push-down supports selections on stream A only (query filters B with %q)", q.FilterB)
		}
		if !q.HasFilter() {
			continue
		}
		if shared == nil {
			shared = q.Filter
			continue
		}
		if q.Filter.String() != shared.String() {
			return nil, fmt.Errorf("plan: push-down requires one shared selection predicate, got %q and %q",
				shared, q.Filter)
		}
	}
	if shared == nil {
		shared = stream.True{}
	}
	return shared, nil
}
