package plan

import (
	"fmt"

	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// BuildPullUp assembles the naive shared plan with selection pull-up of
// Section 3.1 (Figure 3): a single sliding-window join with the largest
// window among all queries processes both unfiltered streams; a router
// dispatches each joined result to the queries whose window constraint it
// satisfies; the selections run last, on the routed results.
//
// The plan reproduces the cost structure of Eq. (1): the join probes pay for
// the largest window with no early filtering, the router pays one comparison
// per result, and each filtered query pays one more comparison per routed
// result.
func BuildPullUp(w Workload, collect bool) (*engine.Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &engine.Plan{Name: "pull-up"}
	wmax := w.MaxWindow()
	joinIn := stream.NewQueue()
	p.EntryA = []*stream.Queue{joinIn}
	p.EntryB = []*stream.Queue{joinIn}

	j, err := operator.NewWindowJoin("join", wmax, wmax, w.Join, joinIn)
	if err != nil {
		return nil, fmt.Errorf("plan: pull-up: %w", err)
	}
	p.Ops = append(p.Ops, j)
	p.Stateful = append(p.Stateful, j)

	r := operator.NewRouter("router", j.Out().NewQueue())
	p.Ops = append(p.Ops, r)

	// One branch per distinct window; queries sharing a window share the
	// branch. Branch k delivers results with |Ta-Tb| <= window k.
	branches := make(map[stream.Time]*operator.Port)
	for _, win := range w.DistinctWindows() {
		port, err := r.AddBranch(win)
		if err != nil {
			return nil, fmt.Errorf("plan: pull-up: %w", err)
		}
		branches[win] = port
	}
	var sinks []*operator.Sink
	for i, q := range w.Queries {
		name := w.QueryName(i)
		port := branches[q.Window]
		out := port
		if q.HasFilter() || q.HasFilterB() {
			// Selections pulled above the join: evaluate the query's
			// predicates on the sources of each routed result.
			var pa, pb stream.Predicate
			if q.HasFilter() {
				pa = q.Filter
			}
			if q.HasFilterB() {
				pb = q.FilterB
			}
			f := operator.NewResultFilter2(name+".sigma'", pa, pb, port.NewQueue())
			p.Ops = append(p.Ops, f)
			out = f.Out()
		}
		sink := operator.NewSink(name, out.NewQueue())
		if collect {
			sink.Collecting()
		}
		sinks = append(sinks, sink)
		p.Sinks = append(p.Sinks, sink)
	}
	for _, s := range sinks {
		p.Ops = append(p.Ops, s)
	}
	return p, nil
}
