package plan

import (
	"fmt"

	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// BuildUnshared assembles one independent plan per query and combines them
// into a single executable: the no-sharing baseline of Figure 2 in the
// paper. Each query gets its own selection (pushed below the join, the best
// placement for an isolated query) and its own window join with private
// states, so state memory grows with the sum of all query windows.
func BuildUnshared(w Workload, collect bool) (*engine.Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &engine.Plan{Name: "unshared"}
	for i, q := range w.Queries {
		name := w.QueryName(i)
		joinIn := stream.NewQueue()
		// Selections pushed below the join, one filter per filtered
		// stream, stacked ahead of the join in data order. Both
		// entries share the stack head so arrival order is preserved
		// into the join.
		entry := joinIn
		var stack []operator.Operator
		if q.HasFilterB() {
			fin := stream.NewQueue()
			f := operator.NewStreamFilter(name+".sigmaB", q.filterBOrTrue(), stream.StreamB, fin)
			f.Out().Attach(entry)
			stack = append([]operator.Operator{f}, stack...)
			entry = fin
		}
		if q.HasFilter() {
			fin := stream.NewQueue()
			f := operator.NewStreamFilter(name+".sigmaA", q.filterOrTrue(), stream.StreamA, fin)
			f.Out().Attach(entry)
			stack = append([]operator.Operator{f}, stack...)
			entry = fin
		}
		p.Ops = append(p.Ops, stack...)
		p.EntryA = append(p.EntryA, entry)
		p.EntryB = append(p.EntryB, entry)

		j, err := operator.NewWindowJoin(name+".join", q.Window, q.Window, w.Join, joinIn)
		if err != nil {
			return nil, fmt.Errorf("plan: unshared %s: %w", name, err)
		}
		sink := operator.NewSink(name, j.Out().NewQueue())
		if collect {
			sink.Collecting()
		}
		p.Ops = append(p.Ops, j, sink)
		p.Sinks = append(p.Sinks, sink)
		p.Stateful = append(p.Stateful, j)
	}
	return p, nil
}
