package plan

import (
	"math"
	"testing"

	"stateslice/internal/cost"
	"stateslice/internal/engine"
	"stateslice/internal/stream"
)

// These tests close the loop between the analytical cost model (Eq. (1)-(3)
// of the paper, package cost) and the measured execution: the engine's
// comparison counters and state samples must track the closed forms within
// the tolerance explained by warm-up and Poisson noise.

// eqParams is the two-query setting used throughout: Q1 = A[W1] join B[W1],
// Q2 = sigma(A[W2]) join B[W2].
func eqParams() cost.Params {
	return cost.Params{
		LambdaA: 40, LambdaB: 40,
		W1: 3, W2: 9,
		TupleKB:  1, // memory in tuples
		SelSigma: 0.5,
		SelJoin:  0.1,
	}
}

func eqWorkload(p cost.Params) Workload {
	return Workload{
		Queries: []Query{
			{Window: stream.Seconds(p.W1)},
			{Window: stream.Seconds(p.W2), Filter: stream.Threshold{S: p.SelSigma}},
		},
		Join: stream.FractionMatch{S: p.SelJoin},
	}
}

// steadyInput generates a long run so warm-up effects stay below tolerance.
func steadyInput(t *testing.T, p cost.Params, durSec float64) []*stream.Tuple {
	t.Helper()
	in, err := stream.Generate(stream.GeneratorConfig{
		RateA: p.LambdaA, RateB: p.LambdaB,
		Duration: stream.Seconds(durSec),
		Seed:     97,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// effectiveSeconds corrects for the ramp-up of a window of width w during a
// run of length d: the time-integral of min(t, w) equals d*w - w*w/2.
func effectiveSeconds(d, w float64) float64 { return d - w/2 }

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestMeasuredPullUpTracksEq1(t *testing.T) {
	p := eqParams()
	const dur = 150.0
	input := steadyInput(t, p, dur)
	pl, err := BuildPullUp(eqWorkload(p), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(pl, input, engine.Config{WarmupFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	l := p.LambdaA
	// Probe cost: 2*lambda^2*W2 per second, window ramp-up corrected.
	wantProbe := 2 * l * l * p.W2 * effectiveSeconds(dur, p.W2)
	if e := relErr(float64(res.Meter.Probe), wantProbe); e > 0.1 {
		t.Errorf("probe count %d vs Eq.(1) %e (err %.1f%%)", res.Meter.Probe, wantProbe, 100*e)
	}
	// Routing: one comparison per joined result, 2*lambda^2*W2*S1.
	wantRoute := 2 * l * l * p.W2 * p.SelJoin * effectiveSeconds(dur, p.W2)
	if e := relErr(float64(res.Meter.Route), wantRoute); e > 0.1 {
		t.Errorf("route count %d vs Eq.(1) %e (err %.1f%%)", res.Meter.Route, wantRoute, 100*e)
	}
	// Selection on routed results: same magnitude as routing.
	if e := relErr(float64(res.Meter.Filter), wantRoute); e > 0.1 {
		t.Errorf("filter count %d vs Eq.(1) %e (err %.1f%%)", res.Meter.Filter, wantRoute, 100*e)
	}
	// State memory: 2*lambda*W2 tuples.
	wantMem := 2 * l * p.W2
	if e := relErr(res.Memory.Avg, wantMem); e > 0.1 {
		t.Errorf("avg state %f vs Eq.(1) %f (err %.1f%%)", res.Memory.Avg, wantMem, 100*e)
	}
}

func TestMeasuredStateSliceTracksEq3(t *testing.T) {
	p := eqParams()
	const dur = 150.0
	input := steadyInput(t, p, dur)
	sp, err := BuildStateSlice(eqWorkload(p), StateSliceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(sp.Plan, input, engine.Config{WarmupFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	l := p.LambdaA
	// Probe: 2*lambda^2*W1 (slice 1, unfiltered) +
	// 2*lambda^2*Ssigma*(W2-W1) (slice 2, A side filtered).
	wantProbe := 2*l*l*p.W1*effectiveSeconds(dur, p.W1) +
		2*l*l*p.SelSigma*(p.W2-p.W1)*effectiveSeconds(dur, p.W2)
	if e := relErr(float64(res.Meter.Probe), wantProbe); e > 0.1 {
		t.Errorf("probe count %d vs Eq.(3) %e (err %.1f%%)", res.Meter.Probe, wantProbe, 100*e)
	}
	// No routing in the Mem-Opt chain.
	if res.Meter.Route != 0 {
		t.Errorf("route count %d, want 0", res.Meter.Route)
	}
	// sigma'_A on slice-1 results for Q2: 2*lambda^2*S1*W1 plus the
	// lineage work (lambda_A evaluations plus per-copy level checks).
	wantSigma := 2 * l * l * p.SelJoin * p.W1 * effectiveSeconds(dur, p.W1)
	lineage := l * dur * 3 // 1 eval + 2 role-copy level checks per A tuple
	if e := relErr(float64(res.Meter.Filter), wantSigma+lineage); e > 0.15 {
		t.Errorf("filter count %d vs Eq.(3) %e (err %.1f%%)",
			res.Meter.Filter, wantSigma+lineage, 100*e)
	}
	// State memory: 2*lambda*W1 + (1+Ssigma)*lambda*(W2-W1).
	wantMem := 2*l*p.W1 + (1+p.SelSigma)*l*(p.W2-p.W1)
	if e := relErr(res.Memory.Avg, wantMem); e > 0.1 {
		t.Errorf("avg state %f vs Eq.(3) %f (err %.1f%%)", res.Memory.Avg, wantMem, 100*e)
	}
}

func TestMeasuredPushDownTracksEq2(t *testing.T) {
	p := eqParams()
	const dur = 150.0
	input := steadyInput(t, p, dur)
	pl, err := BuildPushDown(eqWorkload(p), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(pl, input, engine.Config{WarmupFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	l := p.LambdaA
	s := p.SelSigma
	wantProbe := 2*(1-s)*l*l*p.W1*effectiveSeconds(dur, p.W1) +
		2*s*l*l*p.W2*effectiveSeconds(dur, p.W2)
	if e := relErr(float64(res.Meter.Probe), wantProbe); e > 0.1 {
		t.Errorf("probe count %d vs Eq.(2) %e (err %.1f%%)", res.Meter.Probe, wantProbe, 100*e)
	}
	// Split: one comparison per A tuple.
	wantSplit := l * dur
	if e := relErr(float64(res.Meter.Split), wantSplit); e > 0.1 {
		t.Errorf("split count %d vs %e", res.Meter.Split, wantSplit)
	}
	// Routing: passing-partition results, 2*Ssigma*lambda^2*W2*S1.
	wantRoute := 2 * s * l * l * p.W2 * p.SelJoin * effectiveSeconds(dur, p.W2)
	if e := relErr(float64(res.Meter.Route), wantRoute); e > 0.12 {
		t.Errorf("route count %d vs Eq.(2) %e (err %.1f%%)", res.Meter.Route, wantRoute, 100*e)
	}
	// State memory: (2-Ssigma)*lambda*W1 + (1+Ssigma)*lambda*W2.
	wantMem := (2-s)*l*p.W1 + (1+s)*l*p.W2
	if e := relErr(res.Memory.Avg, wantMem); e > 0.1 {
		t.Errorf("avg state %f vs Eq.(2) %f (err %.1f%%)", res.Memory.Avg, wantMem, 100*e)
	}
}

func TestTheorem3MeasuredMemoryEquality(t *testing.T) {
	// Theorem 3 at the engine level: without selections, the Mem-Opt
	// chain's sampled state memory equals the single largest-window
	// join's, sample for sample.
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second},
			{Window: 8 * stream.Second},
		},
		Join: stream.FractionMatch{S: 0.05},
	}
	input := steadyInput(t, cost.Params{LambdaA: 30, LambdaB: 30, W1: 1, W2: 1, SelSigma: 1, SelJoin: 1, TupleKB: 1}, 60)
	sp, err := BuildStateSlice(w, StateSliceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	chainRes, err := engine.Run(sp.Plan, input, engine.Config{Series: true})
	if err != nil {
		t.Fatal(err)
	}
	pu, err := BuildPullUp(w, false)
	if err != nil {
		t.Fatal(err)
	}
	puRes, err := engine.Run(pu, input, engine.Config{Series: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(chainRes.Memory.Series) != len(puRes.Memory.Series) {
		t.Fatal("series lengths differ")
	}
	for i := range chainRes.Memory.Series {
		if chainRes.Memory.Series[i].Tuples != puRes.Memory.Series[i].Tuples {
			t.Fatalf("sample %d: chain %d tuples, monolithic join %d — Theorem 3 violated",
				i, chainRes.Memory.Series[i].Tuples, puRes.Memory.Series[i].Tuples)
		}
	}
}
