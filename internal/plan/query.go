// Package plan assembles executable shared query plans for a workload of
// window-join continuous queries, implementing every sharing strategy the
// paper studies:
//
//   - BuildUnshared: one independent plan per query (Figure 2).
//   - BuildPullUp: naive sharing with selection pull-up — one join with the
//     largest window plus a router (Section 3.1, Figure 3).
//   - BuildPushDown: stream partition with selection push-down — split,
//     per-partition joins, router and order-preserving union (Section 3.2,
//     Figure 4).
//   - BuildStateSlice: the paper's contribution — a chain of sliced binary
//     window joins with selections pushed between the slices (Sections 4-6,
//     Figures 10, 12, 15), for any slice-boundary assignment including the
//     Mem-Opt and CPU-Opt chains, with live slice migration (Section 5.3).
//
// All builders produce engine.Plan values that compute identical per-query
// results for the same input, differing only in memory and CPU cost — that
// equivalence is what the paper's theorems establish and what the package's
// tests verify.
package plan

import (
	"errors"
	"fmt"

	"stateslice/internal/stream"
)

// Query is one continuous window-join query over streams A and B, like
//
//	SELECT * FROM A, B WHERE <join> AND <filter(A)> WINDOW <window>
//
// following the SQL-with-window syntax of the paper's motivating example.
type Query struct {
	// Name labels the query's sink; empty defaults to Q<i>.
	Name string
	// Window is the sliding-window size applied to both streams.
	Window stream.Time
	// Filter is the selection predicate on stream A (nil or stream.True
	// for none).
	Filter stream.Predicate
	// FilterB is the selection predicate on stream B. Section 6 of the
	// paper notes that "predicates on multiple streams can be pushed
	// down similarly"; the state-slice builder implements that: lineage
	// marks are computed per stream and the inter-slice gates drop
	// useless tuples of either stream.
	FilterB stream.Predicate
}

// filterOrTrue normalises the stream-A predicate.
func (q Query) filterOrTrue() stream.Predicate {
	if q.Filter == nil {
		return stream.True{}
	}
	return q.Filter
}

// filterBOrTrue normalises the stream-B predicate.
func (q Query) filterBOrTrue() stream.Predicate {
	if q.FilterB == nil {
		return stream.True{}
	}
	return q.FilterB
}

// HasFilter reports whether the query carries a non-trivial selection on
// stream A.
func (q Query) HasFilter() bool { return !trivial(q.Filter) }

// HasFilterB reports whether the query carries a non-trivial selection on
// stream B.
func (q Query) HasFilterB() bool { return !trivial(q.FilterB) }

// Workload is a set of continuous queries sharing the same join predicate
// over the same two input streams — the sharing scenario of the paper.
type Workload struct {
	// Queries must be ordered by ascending window size (the chain order).
	// Windows may repeat.
	Queries []Query
	// Join is the common join condition.
	Join stream.JoinPredicate
}

// Validate checks the workload invariants the builders rely on.
func (w Workload) Validate() error {
	if len(w.Queries) == 0 {
		return errors.New("plan: workload has no queries")
	}
	if w.Join == nil {
		return errors.New("plan: workload has no join predicate")
	}
	if len(w.Queries) > 64 {
		return fmt.Errorf("plan: at most 64 queries per workload (lineage masks are 64-bit), got %d", len(w.Queries))
	}
	for i, q := range w.Queries {
		if q.Window <= 0 {
			return fmt.Errorf("plan: query %d has non-positive window %s", i, q.Window)
		}
		if i > 0 && q.Window < w.Queries[i-1].Window {
			return fmt.Errorf("plan: queries must be sorted by ascending window (query %d)", i)
		}
	}
	return nil
}

// MaxWindow returns the largest query window.
func (w Workload) MaxWindow() stream.Time {
	return w.Queries[len(w.Queries)-1].Window
}

// DistinctWindows returns the ascending distinct query windows — the slice
// boundaries of the Mem-Opt chain (Section 5.1).
func (w Workload) DistinctWindows() []stream.Time {
	var out []stream.Time
	for _, q := range w.Queries {
		if len(out) == 0 || q.Window != out[len(out)-1] {
			out = append(out, q.Window)
		}
	}
	return out
}

// QueryName returns the display name of query i (0-based).
func (w Workload) QueryName(i int) string {
	if n := w.Queries[i].Name; n != "" {
		return n
	}
	return fmt.Sprintf("Q%d", i+1)
}

// AnyFilter reports whether any query carries a non-trivial selection on
// either stream.
func (w Workload) AnyFilter() bool {
	for _, q := range w.Queries {
		if q.HasFilter() || q.HasFilterB() {
			return true
		}
	}
	return false
}

// trivial reports whether a predicate is absent or always true.
func trivial(p stream.Predicate) bool {
	if p == nil {
		return true
	}
	_, ok := p.(stream.True)
	return ok
}

// implies reports whether predicate a logically implies predicate b, using
// the decidable fragments the engine works with: anything implies a trivial
// predicate, nested thresholds imply looser thresholds, and syntactically
// identical predicates imply each other.
func implies(a, b stream.Predicate) bool {
	if trivial(b) {
		return true
	}
	if trivial(a) {
		return false
	}
	ta, okA := a.(stream.Threshold)
	tb, okB := b.(stream.Threshold)
	if okA && okB {
		return ta.S <= tb.S
	}
	return a.String() == b.String()
}

// firstQueryBeyond returns the 0-based index of the first query whose window
// exceeds w, or len(queries) when none does.
func firstQueryBeyond(queries []Query, w stream.Time) int {
	for i, q := range queries {
		if q.Window > w {
			return i
		}
	}
	return len(queries)
}
