package plan

import (
	"encoding/binary"
	"fmt"
	"math"

	"stateslice/internal/engine"
	"stateslice/internal/fault"
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// Barrier-consistent checkpoint and restore of a sliced chain.
//
// A checkpoint captures everything a fresh chain needs to continue the run
// exactly where the snapshot was taken: the per-slice window contents (the
// paper's sliced state, which is what makes the snapshot small and
// barrier-delimited), the engine's feed frontier, the slice boundary layout
// and the query-slot roster including detached slots. It is taken inside
// the same drain-edit-drain barrier migration and admission use, so nothing
// is in flight — every queue is empty and the window states are the
// complete execution state.
//
// Predicates are code and are not serialized: restore takes the founding
// workload from the caller (validated slot-by-slot against the snapshot)
// and re-synthesizes slots admitted mid-stream, which are always unfiltered
// by the admission rules, from their recorded windows alone.

// ChainCheckpoint is the in-memory snapshot of one sliced chain.
type ChainCheckpoint struct {
	// Name is the plan name at snapshot time (informational).
	Name string
	// Slots is the query roster in slot order: every query ever admitted,
	// built in or attached, detached ones marked dead.
	Slots []SlotCheckpoint
	// Fed and LastTime are the engine session's feed frontier: how many
	// source tuples were fed and the timestamp of the latest one.
	Fed      int
	LastTime stream.Time
	// Slices holds the chain layout and per-slice window contents, in
	// chain order.
	Slices []SliceCheckpoint
}

// SlotCheckpoint records one query slot of the roster.
type SlotCheckpoint struct {
	Window stream.Time
	Name   string
	Live   bool
	// Edges lists the slice indices feeding the slot's union, in the
	// union's input order. Ties on (Time, Seq) — matches of one probing
	// tuple gathered from adjacent slices — are emitted in input order,
	// and restructures (migration, admission) leave that order reflecting
	// their history rather than the slice layout: splitting a slice keeps
	// a query's matches coming oldest-first the way the unsplit slice
	// produced them, which puts the older slice ahead of the younger one.
	// A restored chain replays this order onto its freshly wired unions so
	// its output stays byte-identical to the live chain's. Empty when the
	// slot has no union (single-terminal plans) — such chains cannot be
	// restructured, so fresh wiring is already the right order.
	Edges []int
}

// SliceCheckpoint records one slice: its range and the window states of
// both streams, oldest-first.
type SliceCheckpoint struct {
	Start, End stream.Time
	A, B       []*stream.Tuple
}

// Ends returns the snapshot's slice end boundaries, in chain order.
func (cp *ChainCheckpoint) Ends() []stream.Time {
	out := make([]stream.Time, len(cp.Slices))
	for i, s := range cp.Slices {
		out[i] = s.End
	}
	return out
}

// StateTuples returns the total number of tuples held across every slice's
// window states — the snapshot's dominant size component.
func (cp *ChainCheckpoint) StateTuples() int {
	n := 0
	for _, s := range cp.Slices {
		n += len(s.A) + len(s.B)
	}
	return n
}

// Checkpoint takes a barrier-consistent snapshot of the chain driven by s:
// the session drains to quiescence, the slice states and frontiers are
// copied while nothing is in flight, and feeding resumes. The snapshot is
// independent of the live chain (states are copied), so the session
// continues unaffected. Like migration and admission, Checkpoint cannot run
// from inside another restructuring barrier.
func (sp *StateSlicePlan) Checkpoint(s *engine.Session) (*ChainCheckpoint, error) {
	if s == nil || s.Plan() != sp.Plan {
		return nil, fmt.Errorf("plan: Checkpoint: %w", errNoSessionFor(sp))
	}
	if err := sp.beginRestructure("Checkpoint"); err != nil {
		return nil, err
	}
	defer sp.endRestructure()

	cp := &ChainCheckpoint{Name: sp.Plan.Name}
	err := s.Barrier(func() error {
		cp.Fed, cp.LastTime = s.Frontier()
		cp.Slots = make([]SlotCheckpoint, len(sp.w.Queries))
		for qi, q := range sp.w.Queries {
			cp.Slots[qi] = SlotCheckpoint{Window: q.Window, Name: q.Name, Live: sp.live[qi],
				Edges: sp.unionEdgeOrder(qi)}
		}
		cp.Slices = make([]SliceCheckpoint, len(sp.slices))
		for i, n := range sp.slices {
			if n.join.Pending() {
				// The barrier drained; a pending slice here means the
				// graph did not quiesce — refuse to snapshot torn state.
				return fmt.Errorf("plan: Checkpoint: slice %s still pending after drain: %w", n.join.Name(), errNotQuiescing())
			}
			start, end := n.join.Range()
			cp.Slices[i] = SliceCheckpoint{
				Start: start,
				End:   end,
				A:     n.join.StateSnapshot(stream.StreamA),
				B:     n.join.StateSnapshot(stream.StreamB),
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cp, nil
}

// unionEdgeOrder returns the slice indices feeding slot qi's union in the
// union's current input order. Closed inputs (left behind by restructures)
// no longer appear in any slice's edge list and are skipped: at the barrier
// they are drained and inert, so only the live inputs define future ties.
func (sp *StateSlicePlan) unionEdgeOrder(qi int) []int {
	u := sp.unions[qi]
	if u == nil {
		return nil
	}
	owner := make(map[*stream.Queue]int)
	for si, n := range sp.slices {
		for _, e := range n.edges {
			if e.union == u {
				owner[e.queue] = si
			}
		}
	}
	var order []int
	for _, q := range u.InputSnapshot() {
		if si, ok := owner[q]; ok {
			order = append(order, si)
		}
	}
	return order
}

// applyEdgeOrder permutes slot qi's freshly wired union inputs into the
// checkpoint's recorded slice order, validating that the snapshot and the
// rebuilt chain agree on which slices feed the slot.
func (sp *StateSlicePlan) applyEdgeOrder(qi int, order []int) error {
	u := sp.unions[qi]
	if u == nil {
		return fmt.Errorf("slot %d records %d union edges but the rebuilt chain wires its results straight to the sink — the checkpoint was taken from a differently shaped plan", qi, len(order))
	}
	queues := make(map[int]*stream.Queue, len(order))
	for si, n := range sp.slices {
		for _, e := range n.edges {
			if e.union == u {
				queues[si] = e.queue
			}
		}
	}
	if len(order) != len(queues) {
		return fmt.Errorf("slot %d records %d union edges but the rebuilt chain wired %d", qi, len(order), len(queues))
	}
	qs := make([]*stream.Queue, len(order))
	for i, si := range order {
		q, ok := queues[si]
		if !ok {
			return fmt.Errorf("slot %d records a union edge from slice %d, which does not feed it in the rebuilt chain", qi, si)
		}
		delete(queues, si)
		qs[i] = q
	}
	return u.Reorder(qs)
}

// RestoreStateSlice builds a fresh chain from a checkpoint: the slice
// layout, query roster and window contents continue exactly where the
// snapshot was taken. w is the founding workload the checkpointed plan was
// built from — its queries must match the snapshot's leading slots window
// for window (predicates are code and travel with the caller, not the
// blob). Slots beyond the founding set were admitted mid-stream and are
// re-synthesized from the snapshot (admission admits only unfiltered
// queries, so the window and name reconstruct them fully).
//
// The caller seeds the driving session's feed frontier with the snapshot's
// Fed/LastTime (engine.Session.SeedFrontier) before feeding resumes.
func RestoreStateSlice(w Workload, cfg StateSliceConfig, cp *ChainCheckpoint) (*StateSlicePlan, error) {
	roster, live, err := restoredRoster(w, cp)
	if err != nil {
		return nil, err
	}
	if len(cp.Slices) == 0 {
		return nil, fmt.Errorf("plan: restore: checkpoint has no slices")
	}
	ends := cp.Ends()
	prev := stream.Time(0)
	for i, s := range cp.Slices {
		if s.Start != prev || s.End <= s.Start {
			return nil, fmt.Errorf("plan: restore: slice %d range [%s,%s) is not contiguous with the chain (expected start %s)", i, s.Start, s.End, prev)
		}
		prev = s.End
	}
	cfg.Ends = ends

	allLive, ascending := true, true
	for i, sl := range cp.Slots {
		if !sl.Live {
			allLive = false
		}
		if i > 0 && sl.Window < cp.Slots[i-1].Window {
			ascending = false
		}
	}

	var sp *StateSlicePlan
	if allLive && ascending {
		sp, err = BuildStateSlice(roster, cfg)
	} else {
		// Dead or out-of-window-order slots can only come from live
		// admission, which requires a migratable, fully unfiltered chain —
		// rebuild through the relaxed path that tolerates the roster shape
		// Attach/Detach leave behind.
		sp, err = buildRestoredChain(roster, cfg, live)
	}
	if err != nil {
		return nil, fmt.Errorf("plan: restore: %w", err)
	}
	copy(sp.live, live)

	for i, slc := range cp.Slices {
		for _, t := range append(append([]*stream.Tuple{}, slc.A...), slc.B...) {
			if t == nil {
				return nil, fmt.Errorf("plan: restore: slice %d holds a nil tuple", i)
			}
		}
		sp.slices[i].join.RestoreState(stream.StreamA, slc.A)
		sp.slices[i].join.RestoreState(stream.StreamB, slc.B)
	}
	// Replay the snapshot's union input order onto the fresh wiring: tie
	// order on (Time, Seq) follows input order, and on a chain that was
	// restructured mid-stream the live order reflects that history, not the
	// ascending-slice order a fresh build produces.
	for qi, sl := range cp.Slots {
		if len(sl.Edges) == 0 {
			continue
		}
		if err := sp.applyEdgeOrder(qi, sl.Edges); err != nil {
			return nil, fmt.Errorf("plan: restore: %w", err)
		}
	}
	return sp, nil
}

// restoredRoster reconstructs the full query roster from the founding
// workload and the snapshot's slot list.
func restoredRoster(w Workload, cp *ChainCheckpoint) (Workload, []bool, error) {
	if cp == nil {
		return Workload{}, nil, fmt.Errorf("plan: restore: nil checkpoint")
	}
	if len(cp.Slots) < len(w.Queries) {
		return Workload{}, nil, fmt.Errorf("plan: restore: checkpoint has %d query slots but the workload has %d queries — the checkpoint was taken from a different plan", len(cp.Slots), len(w.Queries))
	}
	for i, q := range w.Queries {
		if q.Window != cp.Slots[i].Window {
			return Workload{}, nil, fmt.Errorf("plan: restore: query %d window %s does not match the checkpoint's slot window %s — the checkpoint was taken from a different workload", i, q.Window, cp.Slots[i].Window)
		}
	}
	if len(cp.Slots) > len(w.Queries) && w.AnyFilter() {
		return Workload{}, nil, fmt.Errorf("plan: restore: checkpoint carries %d admitted slots beyond the founding workload, but the workload is filtered — admission requires an unfiltered chain, so this checkpoint is inconsistent", len(cp.Slots)-len(w.Queries))
	}
	roster := Workload{Join: w.Join, Queries: append([]Query{}, w.Queries...)}
	for _, sl := range cp.Slots[len(w.Queries):] {
		roster.Queries = append(roster.Queries, Query{Name: sl.Name, Window: sl.Window})
	}
	live := make([]bool, len(cp.Slots))
	for i, sl := range cp.Slots {
		live[i] = sl.Live
	}
	return roster, live, nil
}

// buildRestoredChain mirrors BuildStateSlice for the roster shapes live
// admission leaves behind — slots out of window order, dead slots — which
// Workload.Validate rejects for fresh builds (the ascending order is a
// founding-workload invariant, not a roster one). It is reachable only for
// migratable, fully unfiltered chains, so the construction needs no gates,
// no lineage and wires a union per slot, exactly as Attach does.
func buildRestoredChain(w Workload, cfg StateSliceConfig, live []bool) (*StateSlicePlan, error) {
	if len(w.Queries) == 0 || w.Join == nil {
		return nil, fmt.Errorf("restored roster is empty or has no join predicate")
	}
	if len(w.Queries) > 64 {
		return nil, fmt.Errorf("restored roster has %d slots; at most 64 supported", len(w.Queries))
	}
	if w.AnyFilter() {
		return nil, fmt.Errorf("a roster with dead or out-of-order slots implies live admission, which requires an unfiltered chain")
	}
	if !cfg.Migratable {
		return nil, fmt.Errorf("a roster with dead or out-of-order slots implies live admission, which requires a migratable chain")
	}
	if cfg.RawSliceResults {
		return nil, fmt.Errorf("RawSliceResults cannot be combined with Migratable (admitted rosters)")
	}
	ends := cfg.Ends
	maxLive := stream.Time(0)
	anyLive := false
	for qi, q := range w.Queries {
		if q.Window <= 0 {
			return nil, fmt.Errorf("slot %d has non-positive window %s", qi, q.Window)
		}
		if live[qi] {
			anyLive = true
			if q.Window > maxLive {
				maxLive = q.Window
			}
		}
	}
	if !anyLive {
		return nil, fmt.Errorf("restored roster has no live query")
	}
	if last := ends[len(ends)-1]; last != maxLive {
		return nil, fmt.Errorf("last slice boundary %s must equal the largest live window %s", last, maxLive)
	}

	name := cfg.Name
	if name == "" {
		name = "state-slice"
	}
	sp := &StateSlicePlan{
		Plan: &engine.Plan{Name: name},
		w:    w,
		cfg:  cfg,
	}
	entryQ := stream.NewQueue()
	sp.Plan.EntryA = []*stream.Queue{entryQ}
	sp.Plan.EntryB = []*stream.Queue{entryQ}
	sp.chainIn = operator.NewChainInput("chain-input", entryQ)
	sp.entryOps = append(sp.entryOps, sp.chainIn)

	start := stream.Time(0)
	var feed *operator.Port = sp.chainIn.Out()
	for _, end := range ends {
		join, err := operator.NewSlicedBinaryJoin(sliceName(start, end), start, end, w.Join, feed.NewQueue())
		if err != nil {
			return nil, fmt.Errorf("state-slice: %w", err)
		}
		sp.slices = append(sp.slices, &sliceNode{join: join})
		feed = join.Next()
		start = end
	}

	sp.unions = make([]*operator.Union, len(w.Queries))
	sp.sinks = make([]*operator.Sink, len(w.Queries))
	sp.live = append([]bool{}, live...)
	for qi := range w.Queries {
		sink := sp.newQuerySink(qi)
		u := operator.NewUnion(w.QueryName(qi) + ".union")
		sp.unions[qi] = u
		u.Out().AttachFunc(sink.Accept)
		sp.sinks[qi] = sink
	}
	for si := range sp.slices {
		if err := sp.wireSliceResults(si); err != nil {
			return nil, err
		}
	}
	sp.rebuildOps()
	return sp, nil
}

// ---------------------------------------------------------------------------
// Versioned binary blob encoding.
//
// Layout (all integers little-endian fixed width, strings and counts
// uvarint-length-prefixed):
//
//	magic u32 "SLCP" | version u16 | kind u8 (0 = chain)
//	name string
//	fed u64 | lastTime i64
//	nslots uvarint { window i64 | live u8 | name string |
//	                 nedges uvarint { slice-index uvarint } }
//	nslices uvarint { start i64 | end i64 |
//	                  nA uvarint { tuple } | nB uvarint { tuple } }
//
// A tuple encodes Time, Seq, Ord, Stream, Key, Value (IEEE 754 bits),
// Role, Level and CondMask. Window states hold source tuples only (A/B
// lineage pointers nil); a non-source tuple is an encoding error, never a
// silent truncation.

// CheckpointMagic identifies a checkpoint blob.
const CheckpointMagic uint32 = 0x53_4C_43_50 // "SLCP"

// ChainCheckpointVersion is the current blob version for chain snapshots.
const ChainCheckpointVersion uint16 = 1

// Blob kinds.
const (
	// KindChain marks a sequential chain checkpoint blob.
	KindChain byte = 0
	// KindSharded marks a sharded composite checkpoint blob (composed by
	// internal/shard from chain blobs).
	KindSharded byte = 1
)

// AppendTo serializes the checkpoint, appending to buf (which may be nil).
func (cp *ChainCheckpoint) AppendTo(buf []byte) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, CheckpointMagic)
	buf = binary.LittleEndian.AppendUint16(buf, ChainCheckpointVersion)
	buf = append(buf, KindChain)
	buf = appendString(buf, cp.Name)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Fed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.LastTime))
	buf = binary.AppendUvarint(buf, uint64(len(cp.Slots)))
	for _, sl := range cp.Slots {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sl.Window))
		if sl.Live {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendString(buf, sl.Name)
		buf = binary.AppendUvarint(buf, uint64(len(sl.Edges)))
		for _, si := range sl.Edges {
			buf = binary.AppendUvarint(buf, uint64(si))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(cp.Slices)))
	for i, s := range cp.Slices {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.End))
		var err error
		if buf, err = appendTuples(buf, s.A); err != nil {
			return nil, fmt.Errorf("plan: checkpoint encode: slice %d stream A: %w", i, err)
		}
		if buf, err = appendTuples(buf, s.B); err != nil {
			return nil, fmt.Errorf("plan: checkpoint encode: slice %d stream B: %w", i, err)
		}
	}
	return buf, nil
}

// DecodeChainCheckpoint decodes one chain checkpoint blob from the front of
// data, returning the remainder (empty for a standalone blob; the sharded
// composite concatenates several).
func DecodeChainCheckpoint(data []byte) (*ChainCheckpoint, []byte, error) {
	d := &decoder{buf: data}
	if m := d.u32(); m != CheckpointMagic {
		return nil, nil, fmt.Errorf("plan: checkpoint decode: bad magic %#x", m)
	}
	if v := d.u16(); v != ChainCheckpointVersion {
		return nil, nil, fmt.Errorf("plan: checkpoint decode: unsupported chain blob version %d (this build reads version %d)", v, ChainCheckpointVersion)
	}
	if k := d.u8(); k != KindChain {
		return nil, nil, fmt.Errorf("plan: checkpoint decode: expected a chain blob, got kind %d", k)
	}
	cp := &ChainCheckpoint{}
	cp.Name = d.str()
	cp.Fed = int(d.u64())
	cp.LastTime = stream.Time(d.u64())
	nslots := d.uvarint()
	for i := uint64(0); i < nslots && d.err == nil; i++ {
		sl := SlotCheckpoint{Window: stream.Time(d.u64()), Live: d.u8() == 1}
		sl.Name = d.str()
		nedges := d.uvarint()
		if nedges > uint64(len(d.buf)) {
			d.err = fmt.Errorf("truncated blob (edge count %d exceeds remaining payload)", nedges)
			break
		}
		for j := uint64(0); j < nedges && d.err == nil; j++ {
			sl.Edges = append(sl.Edges, int(d.uvarint()))
		}
		cp.Slots = append(cp.Slots, sl)
	}
	nslices := d.uvarint()
	for i := uint64(0); i < nslices && d.err == nil; i++ {
		s := SliceCheckpoint{Start: stream.Time(d.u64()), End: stream.Time(d.u64())}
		s.A = d.tuples()
		s.B = d.tuples()
		cp.Slices = append(cp.Slices, s)
	}
	if d.err != nil {
		return nil, nil, fmt.Errorf("plan: checkpoint decode: %w", d.err)
	}
	return cp, d.buf, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendTuples appends a uvarint-counted run of source tuples.
func appendTuples(buf []byte, ts []*stream.Tuple) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		if t.A != nil || t.B != nil {
			return nil, fmt.Errorf("tuple %s is a joined result, not a source tuple; window states must hold source tuples only", t)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Time))
		buf = binary.LittleEndian.AppendUint64(buf, t.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, t.Ord)
		buf = append(buf, byte(t.Stream))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Key))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Value))
		buf = append(buf, byte(t.Role))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Level))
		buf = binary.LittleEndian.AppendUint64(buf, t.CondMask)
	}
	return buf, nil
}

// decoder is a cursor over a checkpoint blob with sticky error handling.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("truncated blob (need %d bytes, have %d)", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("truncated blob (bad uvarint)")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("truncated blob (string of %d bytes, have %d)", n, len(d.buf))
		return ""
	}
	return string(d.take(int(n)))
}

func (d *decoder) tuples() []*stream.Tuple {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// Each encoded tuple is at least 58 bytes; reject counts the remaining
	// buffer cannot possibly hold before allocating.
	if n > uint64(len(d.buf)/58+1) {
		d.err = fmt.Errorf("truncated blob (tuple count %d exceeds remaining payload)", n)
		return nil
	}
	out := make([]*stream.Tuple, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		t := &stream.Tuple{}
		t.Time = stream.Time(d.u64())
		t.Seq = d.u64()
		t.Ord = d.u64()
		t.Stream = stream.ID(d.u8())
		t.Key = int64(d.u64())
		t.Value = math.Float64frombits(d.u64())
		t.Role = stream.Role(d.u8())
		t.Level = int(d.u64())
		t.CondMask = d.u64()
		out = append(out, t)
	}
	return out
}

// errNoSessionFor wraps the no-session sentinel with the plan's name.
func errNoSessionFor(sp *StateSlicePlan) error {
	return fmt.Errorf("chain %s: %w", sp.Plan.Name, fault.ErrNoSession)
}

// errNotQuiescing returns the non-quiescence sentinel.
func errNotQuiescing() error { return fault.ErrNotQuiescing }
