package plan

import (
	"fmt"
	"strings"
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/stream"
)

// Micro-batch equivalence on plans the pipeline executor does not cover:
// chains with pushed-down selections (lineage gates and mask filters) and
// chains migrated mid-stream. The batched schedule must not change a single
// delivered result on any of them.

func renderAll(res *engine.Result) []string {
	out := make([]string, len(res.Results))
	for qi, rs := range res.Results {
		var b strings.Builder
		for _, t := range rs {
			fmt.Fprintf(&b, "%d/%d:(%d.%d,%d.%d);", t.Time, t.Seq,
				t.A.Stream, t.A.Ord, t.B.Stream, t.B.Ord)
		}
		out[qi] = b.String()
	}
	return out
}

func filteredWorkload() Workload {
	return Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second, Filter: stream.Threshold{S: 0.5}},
			{Window: 9 * stream.Second, Filter: stream.Threshold{S: 0.5}},
		},
		Join: stream.FractionMatch{S: 0.2},
	}
}

func batchInput(t *testing.T, seed int64) []*stream.Tuple {
	t.Helper()
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 30, RateB: 30, Duration: 30 * stream.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

func TestBatchedFilteredChainEquivalence(t *testing.T) {
	input := batchInput(t, 7)
	w := filteredWorkload()
	run := func(batch int) *engine.Result {
		sp, err := BuildStateSlice(w, StateSliceConfig{Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(sp.Plan, input, engine.Config{BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		if res.OrderViolations != 0 {
			t.Fatalf("batch %d: %d order violations", batch, res.OrderViolations)
		}
		return res
	}
	want := renderAll(run(1))
	if strings.Count(strings.Join(want, ""), ";") == 0 {
		t.Fatal("reference produced no results; the equivalence check is vacuous")
	}
	for _, k := range []int{7, 64, -1} {
		got := renderAll(run(k))
		for qi := range want {
			if got[qi] != want[qi] {
				t.Errorf("batch %d: query %d results differ from the per-tuple schedule", k, qi)
			}
		}
	}
}

// TestBatchedMigrationFlushes checks that a migration mid-stream drains the
// pending micro-batch first (MergeSlices requires empty inter-slice queues)
// and that the migrated batched run still matches the per-tuple one.
func TestBatchedMigrationFlushes(t *testing.T) {
	input := batchInput(t, 11)
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second},
			{Window: 9 * stream.Second},
		},
		Join: stream.FractionMatch{S: 0.2},
	}
	run := func(batch int) *engine.Result {
		sp, err := BuildStateSlice(w, StateSliceConfig{Collect: true, Migratable: true})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := engine.NewSession(sp.Plan, engine.Config{BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		for i, tp := range input {
			if err := sess.Feed(tp); err != nil {
				t.Fatal(err)
			}
			if i == len(input)/2 {
				// Merge the first two slices mid-batch.
				if err := sp.MergeSlices(sess, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		res := sess.Finish()
		if res.OrderViolations != 0 {
			t.Fatalf("batch %d: %d order violations", batch, res.OrderViolations)
		}
		return res
	}
	want := renderAll(run(1))
	for _, k := range []int{7, 64, -1} {
		got := renderAll(run(k))
		for qi := range want {
			if got[qi] != want[qi] {
				t.Errorf("batch %d: query %d results differ after mid-stream migration", k, qi)
			}
		}
	}
}
