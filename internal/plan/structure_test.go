package plan

import (
	"strings"
	"testing"

	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// Structural tests: the assembled plans must have the operator composition
// of the paper's figures, not just the right answers.

func opNames(p []operator.Operator) []string {
	out := make([]string, len(p))
	for i, op := range p {
		out[i] = op.Name()
	}
	return out
}

func countOps(p []operator.Operator, match func(operator.Operator) bool) int {
	n := 0
	for _, op := range p {
		if match(op) {
			n++
		}
	}
	return n
}

func isRouter(op operator.Operator) bool      { _, ok := op.(*operator.Router); return ok }
func isUnion(op operator.Operator) bool       { _, ok := op.(*operator.Union); return ok }
func isSlicedJoin(op operator.Operator) bool  { _, ok := op.(*operator.SlicedBinaryJoin); return ok }
func isWindowJoin(op operator.Operator) bool  { _, ok := op.(*operator.WindowJoin); return ok }
func isLineageGate(op operator.Operator) bool { _, ok := op.(*operator.LineageFilter); return ok }

func figure10Workload() Workload {
	// Q1 unfiltered small window, Q2 filtered large window — Figure 10.
	return Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 8 * stream.Second, Filter: stream.Threshold{S: 0.5}},
		},
		Join: stream.FractionMatch{S: 0.1},
	}
}

func TestFigure10Structure(t *testing.T) {
	sp, err := BuildStateSlice(figure10Workload(), StateSliceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ops := sp.Plan.Ops
	if got := countOps(ops, isSlicedJoin); got != 2 {
		t.Errorf("sliced joins = %d, want 2", got)
	}
	// Mem-Opt chains need no routers: each slice's end is a query window.
	if got := countOps(ops, isRouter); got != 0 {
		t.Errorf("routers = %d, want 0 in a Mem-Opt chain", got)
	}
	// One lineage gate between the slices (sigma_A of Figure 10).
	if got := countOps(ops, isLineageGate); got != 1 {
		t.Errorf("gates = %d, want 1", got)
	}
	// Q1 is served by slice 1 alone: no union (Figure 10 wires it
	// directly); Q2's union merges two slices.
	if got := countOps(ops, isUnion); got != 1 {
		t.Errorf("unions = %d, want 1 (only Q2 needs one)", got)
	}
	// One sigma'_A group filters slice-1 results for Q2.
	masks := countOps(ops, func(op operator.Operator) bool {
		_, ok := op.(*operator.MaskFilter)
		return ok
	})
	if masks != 1 {
		t.Errorf("result-side mask filters = %d, want 1 (grouped)", masks)
	}
}

func TestFigure12MemOptStructure(t *testing.T) {
	// N queries without selections: N slices, no gates, no routers,
	// unions for every query beyond the first slice (Figure 12).
	w := Workload{
		Queries: []Query{
			{Window: 1 * stream.Second},
			{Window: 2 * stream.Second},
			{Window: 3 * stream.Second},
			{Window: 4 * stream.Second},
		},
		Join: stream.FractionMatch{S: 0.1},
	}
	sp, err := BuildStateSlice(w, StateSliceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ops := sp.Plan.Ops
	if got := countOps(ops, isSlicedJoin); got != 4 {
		t.Errorf("sliced joins = %d, want 4", got)
	}
	if got := countOps(ops, isLineageGate); got != 0 {
		t.Errorf("gates = %d, want 0 without selections", got)
	}
	if got := countOps(ops, isUnion); got != 3 {
		t.Errorf("unions = %d, want 3 (Q2..Q4)", got)
	}
	if got := len(sp.Plan.Stateful); got != 4 {
		t.Errorf("stateful operators = %d, want the 4 slices", got)
	}
}

func TestFigure13MergedStructure(t *testing.T) {
	// Merging all slices yields one join plus a router discriminating the
	// inner windows (Figure 13(b)).
	w := Workload{
		Queries: []Query{
			{Window: 1 * stream.Second},
			{Window: 2 * stream.Second},
			{Window: 3 * stream.Second},
		},
		Join: stream.FractionMatch{S: 0.1},
	}
	sp, err := BuildStateSlice(w, StateSliceConfig{Ends: []stream.Time{3 * stream.Second}})
	if err != nil {
		t.Fatal(err)
	}
	ops := sp.Plan.Ops
	if got := countOps(ops, isSlicedJoin); got != 1 {
		t.Errorf("sliced joins = %d, want 1", got)
	}
	routers := 0
	var router *operator.Router
	for _, op := range ops {
		if r, ok := op.(*operator.Router); ok {
			routers++
			router = r
		}
	}
	if routers != 1 {
		t.Fatalf("routers = %d, want 1", routers)
	}
	if got := len(router.Branches()); got != 3 {
		t.Errorf("router branches = %d, want one per distinct window", got)
	}
	// Fully merged: every query reads a router branch, no unions needed.
	if got := countOps(ops, isUnion); got != 0 {
		t.Errorf("unions = %d, want 0 when one slice serves everything", got)
	}
}

func TestPullUpStructure(t *testing.T) {
	p, err := BuildPullUp(figure10Workload(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOps(p.Ops, isWindowJoin); got != 1 {
		t.Errorf("joins = %d, want 1 (largest window)", got)
	}
	if got := countOps(p.Ops, isRouter); got != 1 {
		t.Errorf("routers = %d, want 1", got)
	}
	j := p.Stateful[0].(*operator.WindowJoin)
	wa, wb := j.Windows()
	if wa != 8*stream.Second || wb != 8*stream.Second {
		t.Errorf("join windows (%s,%s), want the largest query window", wa, wb)
	}
	// The selection appears above the join: a result filter is present.
	found := false
	for _, name := range opNames(p.Ops) {
		if strings.Contains(name, "sigma'") {
			found = true
		}
	}
	if !found {
		t.Error("pull-up must place the selection above the join")
	}
}

func TestPushDownStructure(t *testing.T) {
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second, Filter: stream.Threshold{S: 0.5}},
			{Window: 9 * stream.Second, Filter: stream.Threshold{S: 0.5}},
		},
		Join: stream.FractionMatch{S: 0.1},
	}
	p, err := BuildPushDown(w, false)
	if err != nil {
		t.Fatal(err)
	}
	// Two joins (Section 7.2: "the shared plan will have two regular
	// joins"), one split, two routers, one union for the unfiltered Q1.
	if got := countOps(p.Ops, isWindowJoin); got != 2 {
		t.Errorf("joins = %d, want 2", got)
	}
	splits := countOps(p.Ops, func(op operator.Operator) bool {
		_, ok := op.(*operator.Split)
		return ok
	})
	if splits != 1 {
		t.Errorf("splits = %d, want 1", splits)
	}
	if got := countOps(p.Ops, isUnion); got != 1 {
		t.Errorf("unions = %d, want 1 (Q1 merges both joins)", got)
	}
	// Window sizes: the failing partition joins at the largest unfiltered
	// window, the passing partition at the overall largest.
	var sizes []stream.Time
	for _, s := range p.Stateful {
		j := s.(*operator.WindowJoin)
		wa, _ := j.Windows()
		sizes = append(sizes, wa)
	}
	if len(sizes) != 2 || sizes[0] != 2*stream.Second || sizes[1] != 9*stream.Second {
		t.Errorf("join windows = %v, want [2s 9s]", sizes)
	}
}

func TestPushDownAllFilteredSkipsSplit(t *testing.T) {
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second, Filter: stream.Threshold{S: 0.5}},
			{Window: 5 * stream.Second, Filter: stream.Threshold{S: 0.5}},
		},
		Join: stream.FractionMatch{S: 0.1},
	}
	p, err := BuildPushDown(w, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOps(p.Ops, isWindowJoin); got != 1 {
		t.Errorf("joins = %d, want 1 (failing partition is dead)", got)
	}
	splits := countOps(p.Ops, func(op operator.Operator) bool {
		_, ok := op.(*operator.Split)
		return ok
	})
	if splits != 0 {
		t.Errorf("splits = %d, want 0 (plain filter suffices)", splits)
	}
}

func TestPushDownNoFiltersFallsBackToPullUp(t *testing.T) {
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second},
		},
		Join: stream.FractionMatch{S: 0.1},
	}
	p, err := BuildPushDown(w, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOps(p.Ops, isWindowJoin); got != 1 {
		t.Errorf("joins = %d, want 1", got)
	}
	if p.Name != "push-down" {
		t.Errorf("plan name %q", p.Name)
	}
}

func TestPushDownDistinctPredicatesRejected(t *testing.T) {
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second, Filter: stream.Threshold{S: 0.5}},
			{Window: 5 * stream.Second, Filter: stream.Threshold{S: 0.2}},
		},
		Join: stream.FractionMatch{S: 0.1},
	}
	if _, err := BuildPushDown(w, false); err == nil {
		t.Error("distinct predicates must be rejected")
	}
}

func TestWorkloadValidation(t *testing.T) {
	base := figure10Workload()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	cases := []Workload{
		{},
		{Queries: []Query{{Window: stream.Second}}},
		{Queries: []Query{{Window: 0}}, Join: stream.CrossProduct{}},
		{Queries: []Query{{Window: 5 * stream.Second}, {Window: 2 * stream.Second}}, Join: stream.CrossProduct{}},
	}
	for i, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
	var many []Query
	for i := 1; i <= 65; i++ {
		many = append(many, Query{Window: stream.Time(i) * stream.Second})
	}
	if err := (Workload{Queries: many, Join: stream.CrossProduct{}}).Validate(); err == nil {
		t.Error("more than 64 queries must fail (lineage masks)")
	}
}

func TestStateSliceValidation(t *testing.T) {
	w := figure10Workload()
	bad := [][]stream.Time{
		{},
		{8 * stream.Second, 2 * stream.Second},
		{2 * stream.Second},
		{-1, 8 * stream.Second},
	}
	for i, ends := range bad {
		if _, err := BuildStateSlice(w, StateSliceConfig{Ends: ends}); err == nil {
			t.Errorf("ends case %d must fail", i)
		}
	}
	if _, err := BuildStateSlice(Workload{}, StateSliceConfig{}); err == nil {
		t.Error("invalid workload must fail")
	}
}

func TestQueryNames(t *testing.T) {
	w := Workload{
		Queries: []Query{
			{Name: "alpha", Window: stream.Second},
			{Window: 2 * stream.Second},
		},
		Join: stream.CrossProduct{},
	}
	if w.QueryName(0) != "alpha" || w.QueryName(1) != "Q2" {
		t.Errorf("names: %q, %q", w.QueryName(0), w.QueryName(1))
	}
}

func TestImplies(t *testing.T) {
	tight, loose := stream.Threshold{S: 0.2}, stream.Threshold{S: 0.8}
	if !implies(tight, loose) {
		t.Error("tight threshold implies loose")
	}
	if implies(loose, tight) {
		t.Error("loose must not imply tight")
	}
	if !implies(loose, stream.True{}) || !implies(nil, nil) {
		t.Error("anything implies trivial")
	}
	if implies(stream.True{}, tight) {
		t.Error("trivial implies only trivial")
	}
	if !implies(tight, stream.Threshold{S: 0.2}) {
		t.Error("identical predicates imply each other")
	}
}
