package plan

import (
	"fmt"
	"sort"

	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// StateSliceConfig parameterises BuildStateSlice.
type StateSliceConfig struct {
	// Ends lists the slice end-window boundaries in ascending order; the
	// last entry must equal the workload's largest window. Nil selects
	// the Mem-Opt chain: one slice per distinct query window (Section
	// 5.1). A subset of the distinct windows yields a merged chain, e.g.
	// the CPU-Opt output of Section 5.2; queries whose windows fall
	// strictly inside a merged slice are served by a router (Figure 13).
	Ends []stream.Time
	// DisableLineage switches the pushed-down selections from lineage
	// marking (Section 6.1, one predicate evaluation per tuple plus
	// integer checks) to plain re-evaluation at every slice gate and
	// result edge — the ablation baseline.
	DisableLineage bool
	// Migratable forces uniform wiring (a union per query) so slices can
	// be merged and split while the plan runs (Section 5.3).
	Migratable bool
	// Collect makes every sink retain its result tuples.
	Collect bool
	// RawSliceResults leaves every slice's Joined-Result port bare
	// instead of wiring routers, filters and per-query unions: the caller
	// attaches its own consumers (via Slices()[i].Result()) and assembles
	// the per-query answers itself. The sharded executor uses it to ship
	// each slice's result stream across goroutines once, rather than once
	// per subscribing query. Valid only when every slice's result stream
	// is query-agnostic — an unfiltered workload whose every distinct
	// window is a slice boundary (no routers, no result filters) — and
	// incompatible with Migratable; Build reports violations. The plan's
	// sinks exist but receive nothing.
	RawSliceResults bool
	// OnResult, when set, is invoked for every result tuple of every
	// query — built in or attached later — as it reaches the query's
	// sink, with the query's slot index. It runs on the goroutine driving
	// the session.
	OnResult func(qi int, t *stream.Tuple)
	// Name overrides the plan name; empty defaults to "state-slice".
	Name string
}

// StateSlicePlan is an executable state-slice chain plan plus the structure
// needed for online migration.
type StateSlicePlan struct {
	// Plan is the executable graph; its Ops list is rebuilt in place by
	// migrations, so sessions keep observing the current shape.
	Plan *engine.Plan

	w        Workload
	cfg      StateSliceConfig
	entryOps []operator.Operator
	chainIn  *operator.ChainInput
	slices   []*sliceNode
	unions   []*operator.Union // per query slot; nil when wired directly to the sink
	sinks    []*operator.Sink

	// live marks which query slots subscribe to the chain. Build admits
	// every workload query; Attach appends slots, Detach clears them.
	// Slots are never removed — a detached query's union and sink stay in
	// the operator list (inert once flushed) so slot indices, and the
	// QueryIDs derived from them, stay stable for the plan's lifetime.
	live []bool
	// restructuring guards the chain against reentrant surgery: a sink
	// callback fired from inside a migration or admission barrier cannot
	// start a second restructuring of the same chain.
	restructuring bool
}

// sliceNode bundles one sliced join with its input gate and result wiring.
type sliceNode struct {
	join    *operator.SlicedBinaryJoin
	gate    operator.Operator // lineage or predicate filter feeding the slice; nil if none
	router  *operator.Router  // nil when the slice needs no routing
	filters []operator.Operator
	edges   []edge // union input queues fed by this slice (for closing on migration)
}

// edge is one result connection from a slice into a query union.
type edge struct {
	union *operator.Union
	queue *stream.Queue
}

// BuildStateSlice assembles the paper's state-slice sharing plan for the
// workload: a chain of sliced binary window joins over the given slice
// boundaries, selections pushed between the slices, per-slice routers where
// query windows fall inside a merged slice, and order-preserving unions
// assembling each query's answer (Figures 10, 12, 13, 15).
func BuildStateSlice(w Workload, cfg StateSliceConfig) (*StateSlicePlan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	ends := cfg.Ends
	if ends == nil {
		ends = w.DistinctWindows()
	}
	if err := validateEnds(w, ends); err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = "state-slice"
	}
	if cfg.RawSliceResults {
		if err := validateRawSliceResults(w, ends, cfg); err != nil {
			return nil, err
		}
	}
	sp := &StateSlicePlan{
		Plan: &engine.Plan{Name: name},
		w:    w,
		cfg:  cfg,
	}

	// Entry: one shared queue so both streams reach the chain in global
	// order, then lineage marking (or an entry filter) and the
	// male/female splitter.
	entryQ := stream.NewQueue()
	sp.Plan.EntryA = []*stream.Queue{entryQ}
	sp.Plan.EntryB = []*stream.Queue{entryQ}
	chainFeed := entryQ
	if w.AnyFilter() {
		if !cfg.DisableLineage {
			condsA := make([]stream.Predicate, len(w.Queries))
			condsB := make([]stream.Predicate, len(w.Queries))
			for i, q := range w.Queries {
				condsA[i] = q.filterOrTrue()
				condsB[i] = q.filterBOrTrue()
			}
			mark := operator.NewLineageMark("lineage", condsA, condsB, entryQ)
			sp.entryOps = append(sp.entryOps, mark)
			chainFeed = mark.Out().NewQueue()
		} else {
			for _, side := range []stream.ID{stream.StreamA, stream.StreamB} {
				d := sp.disjunction(0, side)
				if trivial(d) {
					continue
				}
				f := operator.NewStreamFilter("sigma'1."+side.String(), d, side, chainFeed)
				sp.entryOps = append(sp.entryOps, f)
				chainFeed = f.Out().NewQueue()
			}
		}
	}
	sp.chainIn = operator.NewChainInput("chain-input", chainFeed)
	sp.entryOps = append(sp.entryOps, sp.chainIn)

	// The chain of sliced joins with gates between slices.
	start := stream.Time(0)
	var feed *operator.Port = sp.chainIn.Out()
	for si, end := range ends {
		node := &sliceNode{}
		var in *stream.Queue
		if si > 0 && sp.needsGate(start) {
			in = stream.NewQueue()
			node.gate = sp.newGate(start, feed.NewQueue(), in)
		} else {
			in = feed.NewQueue()
		}
		join, err := operator.NewSlicedBinaryJoin(sliceName(start, end), start, end, w.Join, in)
		if err != nil {
			return nil, fmt.Errorf("plan: state-slice: %w", err)
		}
		node.join = join
		sp.slices = append(sp.slices, node)
		feed = join.Next()
		start = end
	}

	// Per-query terminals: a union when several slices contribute (or
	// always, for migratable plans), the result port itself otherwise.
	// Sinks consume their source synchronously (no queue hop): a sink is
	// a terminal with no downstream, so queueing its input only deferred
	// identical work to another scheduling pass.
	sp.unions = make([]*operator.Union, len(w.Queries))
	sp.sinks = make([]*operator.Sink, len(w.Queries))
	sp.live = make([]bool, len(w.Queries))
	for qi, q := range w.Queries {
		sp.live[qi] = true
		contributing := sp.sliceOf(q.Window) + 1
		sink := sp.newQuerySink(qi)
		if !cfg.RawSliceResults && (cfg.Migratable || contributing > 1) {
			u := operator.NewUnion(w.QueryName(qi) + ".union")
			sp.unions[qi] = u
			u.Out().AttachFunc(sink.Accept)
		}
		// Otherwise a single slice contributes and wireSliceResults
		// attaches the sink to its (possibly filtered) result port.
		sp.sinks[qi] = sink
	}

	if !cfg.RawSliceResults {
		for si := range sp.slices {
			if err := sp.wireSliceResults(si); err != nil {
				return nil, err
			}
		}
	}
	sp.rebuildOps()
	return sp, nil
}

// newQuerySink builds the terminal sink of query slot qi, applying the
// plan-wide collection and result-handler settings.
func (sp *StateSlicePlan) newQuerySink(qi int) *operator.Sink {
	sink := operator.NewDirectSink(sp.w.QueryName(qi))
	if sp.cfg.Collect {
		sink.Collecting()
	}
	if h := sp.cfg.OnResult; h != nil {
		sink.OnResult(func(t *stream.Tuple) { h(qi, t) })
	}
	return sink
}

// RawSliceEligible reports whether a chain over the given slice boundaries
// qualifies for RawSliceResults — the single source of truth the sharded
// build consults before selecting its slice-merge fast path, so the
// eligibility predicate and the build-time validation cannot drift apart.
func RawSliceEligible(w Workload, ends []stream.Time, migratable bool) bool {
	return validateRawSliceResults(w, ends, StateSliceConfig{Migratable: migratable}) == nil
}

// validateRawSliceResults checks that every slice's result stream is
// query-agnostic, the precondition for exposing raw slice ports.
func validateRawSliceResults(w Workload, ends []stream.Time, cfg StateSliceConfig) error {
	if cfg.Migratable {
		return fmt.Errorf("plan: RawSliceResults leaves the per-query unions unbuilt, which migration rewires; the two cannot be combined")
	}
	if w.AnyFilter() {
		return fmt.Errorf("plan: RawSliceResults requires an unfiltered workload (result-side selections make slice streams query-specific)")
	}
	isEnd := make(map[stream.Time]bool, len(ends))
	for _, e := range ends {
		isEnd[e] = true
	}
	for _, win := range w.DistinctWindows() {
		if !isEnd[win] {
			return fmt.Errorf("plan: RawSliceResults requires every distinct query window to be a slice boundary (window %s falls inside a slice and would need a router)", win)
		}
	}
	return nil
}

// validateEnds checks the slice boundary list.
func validateEnds(w Workload, ends []stream.Time) error {
	if len(ends) == 0 {
		return fmt.Errorf("plan: state-slice needs at least one slice boundary")
	}
	prev := stream.Time(0)
	for i, e := range ends {
		if e <= prev {
			return fmt.Errorf("plan: slice boundaries must be positive and strictly ascending (index %d: %s after %s)", i, e, prev)
		}
		prev = e
	}
	if last := ends[len(ends)-1]; last != w.MaxWindow() {
		return fmt.Errorf("plan: last slice boundary %s must equal the largest query window %s", last, w.MaxWindow())
	}
	return nil
}

// sliceName renders the canonical slice label used in plans and traces.
func sliceName(start, end stream.Time) string {
	return fmt.Sprintf("slice[%s,%s]", start, end)
}

// Slices returns the live sliced joins of the chain, in chain order.
func (sp *StateSlicePlan) Slices() []*operator.SlicedBinaryJoin {
	out := make([]*operator.SlicedBinaryJoin, len(sp.slices))
	for i, n := range sp.slices {
		out[i] = n.join
	}
	return out
}

// Ends returns the current slice end boundaries, in chain order.
func (sp *StateSlicePlan) Ends() []stream.Time {
	out := make([]stream.Time, len(sp.slices))
	for i, n := range sp.slices {
		_, out[i] = n.join.Range()
	}
	return out
}

// Sinks returns the per-query sinks (indexed like the workload queries).
func (sp *StateSlicePlan) Sinks() []*operator.Sink { return sp.sinks }

// QuerySlot describes one query slot of the live chain: the query as
// admitted and whether the slot still subscribes to results. Detached slots
// stay in place (Live false) so slot indices remain stable.
type QuerySlot struct {
	Query Query
	Live  bool
}

// QuerySlots returns the chain's query slots — built-in and attached, in
// slot order — reflecting every admission applied so far. Explain renders
// from this, not from the build-time workload, so attach/detach (and the
// query set a migration serves) stay observable.
func (sp *StateSlicePlan) QuerySlots() []QuerySlot {
	out := make([]QuerySlot, len(sp.w.Queries))
	for qi, q := range sp.w.Queries {
		out[qi] = QuerySlot{Query: q, Live: sp.live[qi]}
	}
	return out
}

// QueryUnion returns the order-preserving union assembling query qi's
// answer, or nil when a single slice feeds the sink directly (possible only
// for non-migratable chains). The union's output port is the query's
// terminal: consumers that replace the sink — the sharded executor taps the
// port straight into its cross-replica merge — may detach it and attach
// their own function. Migrations rewire the union's inputs, never its
// output, so a replacement consumer survives re-slicing.
func (sp *StateSlicePlan) QueryUnion(qi int) *operator.Union { return sp.unions[qi] }

// sliceOf returns the index of the slice whose range contains window w.
func (sp *StateSlicePlan) sliceOf(w stream.Time) int {
	for i, n := range sp.slices {
		if _, end := n.join.Range(); w <= end {
			return i
		}
	}
	return len(sp.slices) - 1
}

// disjunction returns OR(cond_k) on the given stream for queries k >= minQ,
// the sigma'_i filter of Section 6.1.
func (sp *StateSlicePlan) disjunction(minQ int, side stream.ID) stream.Predicate {
	var or stream.Or
	for _, q := range sp.w.Queries[minQ:] {
		cond := q.filterOrTrue()
		if side == stream.StreamB {
			cond = q.filterBOrTrue()
		}
		if trivial(cond) {
			return stream.True{}
		}
		or = append(or, cond)
	}
	if len(or) == 1 {
		return or[0]
	}
	return or
}

// needsGate reports whether a selection gate is worthwhile before a slice
// starting at the given window: the pushed-down disjunction of the remaining
// queries' predicates on either stream must be non-trivial (Section 6.1).
func (sp *StateSlicePlan) needsGate(start stream.Time) bool {
	if !sp.w.AnyFilter() {
		return false
	}
	minQ := firstQueryBeyond(sp.w.Queries, start)
	return !trivial(sp.disjunction(minQ, stream.StreamA)) ||
		!trivial(sp.disjunction(minQ, stream.StreamB))
}

// newGate constructs the inter-slice filter guarding the slice that starts
// at the given window: it reads from in and forwards surviving items into
// out. Callers must have checked needsGate.
func (sp *StateSlicePlan) newGate(start stream.Time, in, out *stream.Queue) operator.Operator {
	minQ := firstQueryBeyond(sp.w.Queries, start)
	if sp.cfg.DisableLineage {
		// Chain one stream filter per side with a non-trivial
		// disjunction; a trivial side passes through the other filter
		// untouched anyway.
		dA := sp.disjunction(minQ, stream.StreamA)
		dB := sp.disjunction(minQ, stream.StreamB)
		switch {
		case trivial(dB):
			f := operator.NewStreamFilter(fmt.Sprintf("sigma'>%s", start), dA, stream.StreamA, in)
			f.Out().Attach(out)
			return f
		case trivial(dA):
			f := operator.NewStreamFilter(fmt.Sprintf("sigma'>%s.B", start), dB, stream.StreamB, in)
			f.Out().Attach(out)
			return f
		default:
			fa := operator.NewStreamFilter(fmt.Sprintf("sigma'>%s", start), dA, stream.StreamA, in)
			fb := operator.NewStreamFilter(fmt.Sprintf("sigma'>%s.B", start), dB, stream.StreamB, fa.Out().NewQueue())
			fb.Out().Attach(out)
			return chainedGate{fa, fb}
		}
	}
	name := fmt.Sprintf("lineage>%s", start)
	var lf *operator.LineageFilter
	if trivial(sp.disjunction(minQ, stream.StreamB)) {
		lf = operator.NewLineageFilter(name, minQ+1, in)
	} else {
		lf = operator.NewLineageFilter2(name, minQ+1, in)
	}
	lf.Out().Attach(out)
	return lf
}

// chainedGate runs two stacked filters as one gate operator.
type chainedGate struct {
	first, second operator.Operator
}

// Name implements Operator.
func (g chainedGate) Name() string { return g.first.Name() + "+" + g.second.Name() }

// Pending implements Operator.
func (g chainedGate) Pending() bool { return g.first.Pending() || g.second.Pending() }

// Step implements Operator.
func (g chainedGate) Step(m *operator.CostMeter, max int) int {
	n := g.first.Step(m, max)
	g.second.Step(m, -1)
	return n
}

// wireSliceResults (re)builds the result path of slice si: router (when the
// slice serves several distinct query windows), per-edge selection filters
// grouped by predicate, and the connections into the per-query unions or
// sinks. The slice's previous wiring must have been detached already. The
// served set is computed per slot — live queries whose window exceeds the
// slice start — not positionally, because admission appends slots out of
// window order and detach leaves dead slots in place. A wiring failure
// propagates as an error (Build and the restructuring operations all have
// error returns) rather than crashing the process.
func (sp *StateSlicePlan) wireSliceResults(si int) error {
	node := sp.slices[si]
	node.router = nil
	node.filters = nil
	node.edges = nil
	start, end := node.join.Range()
	served := sp.servedAt(start)

	// Partition the served queries: windows inside (start, end] need
	// routing when more than one distinct window lands there; windows
	// beyond end accept every result of this slice. Router branches must
	// ascend, and served slots carry no window order, so the inside
	// windows are sorted and deduplicated explicitly.
	type target struct {
		qi   int
		port *operator.Port
	}
	var targets []target
	insideW := []stream.Time{}
	for _, qi := range served {
		w := sp.w.Queries[qi].Window
		if w <= end {
			insideW = append(insideW, w)
		}
	}
	sort.Slice(insideW, func(a, b int) bool { return insideW[a] < insideW[b] })
	insideW = dedupeTimes(insideW)
	// Routing is needed when the slice serves several distinct windows,
	// or when its end window exceeds every inside window (possible after
	// an online split at a non-window boundary): results between the
	// largest inside window and the slice end belong only to the queries
	// beyond the slice.
	needRouter := len(insideW) > 1 ||
		(len(insideW) == 1 && insideW[0] != end)
	if needRouter {
		r := operator.NewRouter(node.join.Name()+".router", node.join.Result().NewQueue())
		node.router = r
		if insideW[len(insideW)-1] != end {
			r.RequireLastCheck()
		}
		ports := make(map[stream.Time]*operator.Port, len(insideW))
		for _, w := range insideW {
			port, err := r.AddBranch(w)
			if err != nil {
				// Windows are deduplicated and ascending, so this
				// indicates a plan builder bug — but it surfaces as a
				// build/restructure error, not a process crash.
				return fmt.Errorf("plan: %s: %w", r.Name(), err)
			}
			ports[w] = port
		}
		for _, qi := range served {
			w := sp.w.Queries[qi].Window
			if w <= end {
				targets = append(targets, target{qi, ports[w]})
			} else {
				targets = append(targets, target{qi, r.All()})
			}
		}
	} else {
		for _, qi := range served {
			targets = append(targets, target{qi, node.join.Result()})
		}
	}

	// Group edges sharing a source port and an identical filter
	// requirement behind a single filter operator, so the measured filter
	// cost matches the sigma'_A terms of Eq. (3).
	type groupKey struct {
		port *operator.Port
		pred string
	}
	groups := make(map[groupKey]*operator.Port)
	for _, tg := range targets {
		q := sp.w.Queries[tg.qi]
		out := tg.port
		needA := q.HasFilter() && !sp.impliedAtSlice(start, tg.qi, stream.StreamA)
		needB := q.HasFilterB() && !sp.impliedAtSlice(start, tg.qi, stream.StreamB)
		if needA || needB {
			keyStr := ""
			if needA {
				keyStr = q.Filter.String()
			}
			if needB {
				keyStr += "|" + q.FilterB.String()
			}
			key := groupKey{tg.port, keyStr}
			if g, ok := groups[key]; ok {
				out = g
			} else {
				fname := fmt.Sprintf("%s.sigma'(%s)", node.join.Name(), sp.w.QueryName(tg.qi))
				var f operator.Operator
				var fout *operator.Port
				if sp.cfg.DisableLineage {
					var pa, pb stream.Predicate
					if needA {
						pa = q.Filter
					}
					if needB {
						pb = q.FilterB
					}
					rf := operator.NewResultFilter2(fname, pa, pb, tg.port.NewQueue())
					f, fout = rf, rf.Out()
				} else {
					mf := operator.NewMaskFilter2(fname, tg.qi, needA, needB, tg.port.NewQueue())
					f, fout = mf, mf.Out()
				}
				node.filters = append(node.filters, f)
				groups[key] = fout
				out = fout
			}
		}
		sp.connect(node, tg.qi, out)
	}
	return nil
}

// connect attaches one query terminal to a result source port.
func (sp *StateSlicePlan) connect(node *sliceNode, qi int, src *operator.Port) {
	if u := sp.unions[qi]; u != nil {
		q := u.AddInput()
		src.Attach(q)
		node.edges = append(node.edges, edge{union: u, queue: q})
		return
	}
	src.AttachFunc(sp.sinks[qi].Accept)
}

// impliedAtSlice reports whether every tuple of the given stream admitted
// into the slice starting at the given boundary already satisfies query qi's
// selection on that stream, making a result-side filter redundant (the
// Figure 10 situation, where only the first slice's results need sigma'_A).
func (sp *StateSlicePlan) impliedAtSlice(start stream.Time, qi int, side stream.ID) bool {
	pick := func(q Query) stream.Predicate {
		if side == stream.StreamB {
			return q.filterBOrTrue()
		}
		return q.filterOrTrue()
	}
	want := pick(sp.w.Queries[qi])
	for _, k := range sp.servedAt(start) {
		if !implies(pick(sp.w.Queries[k]), want) {
			return false
		}
	}
	return true
}

// servedAt lists the live query slots subscribed to results of a slice
// starting at the given boundary, in slot order.
func (sp *StateSlicePlan) servedAt(start stream.Time) []int {
	var out []int
	for qi, q := range sp.w.Queries {
		if sp.live[qi] && q.Window > start {
			out = append(out, qi)
		}
	}
	return out
}

// dedupeTimes removes adjacent duplicates from a sorted time slice.
func dedupeTimes(ts []stream.Time) []stream.Time {
	out := ts[:0]
	for _, t := range ts {
		if len(out) == 0 || out[len(out)-1] != t {
			out = append(out, t)
		}
	}
	return out
}

// rebuildOps regenerates the topological operator list after construction or
// migration.
func (sp *StateSlicePlan) rebuildOps() {
	ops := append([]operator.Operator{}, sp.entryOps...)
	var stateful []operator.StateSizer
	for _, n := range sp.slices {
		if n.gate != nil {
			ops = append(ops, n.gate)
		}
		ops = append(ops, n.join)
		stateful = append(stateful, n.join)
		if n.router != nil {
			ops = append(ops, n.router)
		}
		ops = append(ops, n.filters...)
	}
	for _, u := range sp.unions {
		if u != nil {
			ops = append(ops, u)
		}
	}
	for _, s := range sp.sinks {
		ops = append(ops, s)
	}
	sp.Plan.Ops = ops
	sp.Plan.Stateful = stateful
	sp.Plan.Sinks = sp.sinks
}
