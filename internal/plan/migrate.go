package plan

import (
	"fmt"

	"stateslice/internal/engine"
	"stateslice/internal/fault"
	"stateslice/internal/stream"
)

// Online migration of the state-slicing chain (Section 5.3 of the paper).
// The chain is maintained with two primitive operations — merging two
// adjacent sliced joins and splitting one sliced join — applied between
// scheduler steps of a live session. Both reuse the existing window states:
// merging concatenates them, splitting lets the shrunk left slice purge its
// now-out-of-range tuples into the new right slice ahead of any probing
// male, so no result is lost or duplicated during the transition.
//
// The overhead is constant plan surgery plus, for merges, draining the
// queue between the two slices, matching the paper's analysis ("the system
// suspending time during join splitting is neglectable, while during join
// merging it is bounded by the execution time needed to empty the queue
// in-between").

// MergeSlices merges slice i and slice i+1 (0-based chain positions) of a
// live migratable plan driven by the session. The merged slice serves the
// union of both slices' queries, acquiring a router when their windows
// differ (Figure 13(b)).
func (sp *StateSlicePlan) MergeSlices(s *engine.Session, i int) error {
	if err := sp.migratable(s); err != nil {
		return err
	}
	if err := sp.beginRestructure("MergeSlices"); err != nil {
		return err
	}
	defer sp.endRestructure()
	return sp.mergeSlices(s, i)
}

// mergeSlices is the MergeSlices body, shared with MigrateTo, which holds
// the restructuring guard across its whole merge/split sequence.
func (sp *StateSlicePlan) mergeSlices(s *engine.Session, i int) error {
	if i < 0 || i+1 >= len(sp.slices) {
		return fmt.Errorf("plan: MergeSlices(%d): chain has %d slices", i, len(sp.slices))
	}
	// Empty the inter-slice queue (and everything else) first; a drain
	// failure (contained operator panic, non-quiescing graph) aborts the
	// surgery before any wiring is touched.
	s.Drain()
	if err := s.Err(); err != nil {
		return fmt.Errorf("plan: MergeSlices(%d): %w", i, err)
	}
	left, right := sp.slices[i], sp.slices[i+1]
	if err := left.join.MergeFrom(right.join); err != nil {
		return fmt.Errorf("plan: MergeSlices(%d): %w", i, err)
	}
	left.join.Rename(sliceName(left.join.Range()))
	sp.closeEdges(left)
	sp.closeEdges(right)
	left.join.Result().DetachAll()
	sp.slices = append(sp.slices[:i+1], sp.slices[i+2:]...)
	if err := sp.wireSliceResults(i); err != nil {
		return err
	}
	sp.rebuildOps()
	return nil
}

// SplitSlice splits slice i of a live migratable plan at window boundary
// mid, inserting a new slice [mid, end) to its right with initially empty
// states; the left slice's next cross-purges migrate the out-of-range
// tuples into it.
func (sp *StateSlicePlan) SplitSlice(s *engine.Session, i int, mid stream.Time) error {
	if err := sp.migratable(s); err != nil {
		return err
	}
	if err := sp.beginRestructure("SplitSlice"); err != nil {
		return err
	}
	defer sp.endRestructure()
	return sp.splitSlice(s, i, mid)
}

// splitSlice is the SplitSlice body, shared with MigrateTo and with
// admission (Attach splits at most one slice), which hold the restructuring
// guard across their whole sequence.
func (sp *StateSlicePlan) splitSlice(s *engine.Session, i int, mid stream.Time) error {
	if i < 0 || i >= len(sp.slices) {
		return fmt.Errorf("plan: SplitSlice(%d): chain has %d slices", i, len(sp.slices))
	}
	s.Drain()
	if err := s.Err(); err != nil {
		return fmt.Errorf("plan: SplitSlice(%d): %w", i, err)
	}
	left := sp.slices[i]
	_, end := left.join.Range()
	rightJoin, err := left.join.SplitAt(sliceName(mid, end), mid)
	if err != nil {
		return fmt.Errorf("plan: SplitSlice(%d): %w", i, err)
	}
	left.join.Rename(sliceName(left.join.Range()))
	rightNode := &sliceNode{join: rightJoin}
	// Interpose the selection gate between the two new slices when the
	// remaining queries warrant one. SplitAt wired left.next directly to
	// the right join's input queue; reroute that path through the gate.
	if sp.needsGate(mid) {
		left.join.Next().DetachAll()
		rightNode.gate = sp.newGate(mid, left.join.Next().NewQueue(), rightJoin.In())
	}
	sp.closeEdges(left)
	left.join.Result().DetachAll()
	sp.slices = append(sp.slices[:i+1], append([]*sliceNode{rightNode}, sp.slices[i+1:]...)...)
	if err := sp.wireSliceResults(i); err != nil {
		return err
	}
	if err := sp.wireSliceResults(i + 1); err != nil {
		return err
	}
	sp.rebuildOps()
	return nil
}

// MigrateTo re-slices the live chain to the given slice end boundaries
// (ascending; the last must equal the chain's current largest boundary) by
// diffing the target against the current layout and applying the merges
// (right to left, so the chain never grows beyond max(len(cur), len(to))
// slices mid-migration) and splits that transform one into the other —
// exactly the Section 5.3 maintenance primitives. It is the whole-layout
// form of MergeSlices/SplitSlice used by Plan.Migrate; the sharded executor
// fans it out to every chain replica.
func (sp *StateSlicePlan) MigrateTo(s *engine.Session, to []stream.Time) error {
	if err := sp.migratable(s); err != nil {
		return err
	}
	if err := sp.beginRestructure("MigrateTo"); err != nil {
		return err
	}
	defer sp.endRestructure()
	if len(to) == 0 {
		return fmt.Errorf("plan: migration target needs at least one slice boundary")
	}
	prev := stream.Time(0)
	for i, b := range to {
		if b <= prev {
			return fmt.Errorf("plan: migration boundaries must be positive and strictly ascending (index %d: %s after %s)", i, b, prev)
		}
		prev = b
	}
	cur := sp.Ends()
	if last, want := to[len(to)-1], cur[len(cur)-1]; last != want {
		return fmt.Errorf("plan: final migration boundary %s must equal the chain's largest boundary %s", last, want)
	}
	target := make(map[stream.Time]bool, len(to))
	for _, b := range to {
		target[b] = true
	}
	// Merges first, right to left.
	for {
		cur = sp.Ends()
		idx := -1
		for i := len(cur) - 2; i >= 0; i-- {
			if !target[cur[i]] {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		if err := sp.mergeSlices(s, idx); err != nil {
			return err
		}
	}
	// Then splits, introducing the boundaries the chain lacks.
	for _, b := range to[:len(to)-1] {
		cur = sp.Ends()
		have := false
		idx := -1
		start := stream.Time(0)
		for i, e := range cur {
			if e == b {
				have = true
				break
			}
			if start < b && b < e {
				idx = i
				break
			}
			start = e
		}
		if have {
			continue
		}
		if idx < 0 {
			return fmt.Errorf("plan: no slice contains migration boundary %s (chain ends %v)", b, cur)
		}
		if err := sp.splitSlice(s, idx, b); err != nil {
			return err
		}
	}
	return nil
}

// beginRestructure takes the chain's restructuring guard, rejecting
// reentrant surgery: a sink callback fired from inside a live migration or
// admission barrier observes the chain mid-restructure and must not start a
// second one.
func (sp *StateSlicePlan) beginRestructure(op string) error {
	if sp.restructuring {
		return fmt.Errorf("plan: %s: chain %s: %w (a migration or admission is in progress; calling back into the chain from a result sink during a barrier is not allowed)", op, sp.Plan.Name, fault.ErrRestructuring)
	}
	sp.restructuring = true
	return nil
}

// endRestructure releases the restructuring guard.
func (sp *StateSlicePlan) endRestructure() { sp.restructuring = false }

// migratable validates migration preconditions.
func (sp *StateSlicePlan) migratable(s *engine.Session) error {
	if !sp.cfg.Migratable {
		return fmt.Errorf("plan: %s: %w (build with Migratable set)", sp.Plan.Name, fault.ErrNotMigratable)
	}
	if s == nil || s.Plan() != sp.Plan {
		return fmt.Errorf("plan: %s: %w", sp.Plan.Name, fault.ErrNoSession)
	}
	return nil
}

// closeEdges closes every union input fed by the node, so stale queues stop
// blocking merge progress while their residual tuples still drain in order.
func (sp *StateSlicePlan) closeEdges(n *sliceNode) {
	for _, e := range n.edges {
		e.union.CloseInput(e.queue)
	}
	n.edges = nil
}
