package plan

import (
	"fmt"

	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/stream"
)

// Live query admission: attaching and detaching queries on a running chain.
//
// The paper freezes the query set when the chain is built; this file makes
// the subscriber set dynamic, the way Shared Arrangements serve new queries
// against a live shared index. Both operations run at a feed barrier
// (engine.Session.Barrier): every tuple fed so far is fully processed, the
// chain is restructured while nothing is in flight, and the graph is
// drained again so residual tuples released by closed union inputs reach
// their sinks — the stream itself never stops, no state is rebuilt and no
// input is replayed.
//
// Attach subscribes a query with window W to the existing slice prefix
// covering W, splitting at most one slice when W falls strictly inside one
// (the live variant of the Section 5.3 split; the states already hold every
// tuple the new query's window needs, which is why results on the
// post-admission suffix are byte-identical to a chain built with the query
// from the start). Detach clears the slot's live mark, closes its union
// inputs — the union then forwards a MaxTime punctuation that flushes any
// buffered results in order — and garbage-collects trailing slices left
// with no subscribers.
//
// Admission is restricted to fully unfiltered workloads: pushed-down
// selections specialize the inter-slice gates and lineage masks to the
// build-time query set, so changing the set under them would require
// re-marking tuples already in the window states. Unfiltered chains carry
// no gates, making the slice prefix query-agnostic — the property admission
// relies on.

// Attach admits query q into the live chain driven by s and returns its
// slot index. The chain must be migratable (admission reuses the migration
// wiring: a union per query, splittable slices) and fully unfiltered, and
// q must be unfiltered with a window in (0, max boundary]. Slot indices are
// never reused, so the index identifies the query for Detach and in
// per-slot results for the plan's lifetime.
func (sp *StateSlicePlan) Attach(s *engine.Session, q Query) (int, error) {
	if err := sp.migratable(s); err != nil {
		return 0, fmt.Errorf("plan: Attach: %w", err)
	}
	if err := sp.admissible(q); err != nil {
		return 0, fmt.Errorf("plan: Attach: %w", err)
	}
	ends := sp.Ends()
	if last := ends[len(ends)-1]; q.Window > last {
		return 0, fmt.Errorf("plan: Attach: window %s exceeds the chain's largest boundary %s; the slice states cover no history beyond it, so an attached query there could not produce the same results as one built in from the start", q.Window, last)
	}
	if err := sp.beginRestructure("Attach"); err != nil {
		return 0, err
	}
	defer sp.endRestructure()

	qi := len(sp.w.Queries)
	err := s.Barrier(func() error {
		// Make q.Window a slice boundary, splitting the one slice it
		// falls strictly inside (if any). The left part keeps the window
		// states; its next cross-purges migrate out-of-range tuples
		// right, exactly as in a migration split.
		if si := sp.boundaryIndex(q.Window); si < 0 {
			if err := sp.splitSlice(s, sp.sliceOf(q.Window), q.Window); err != nil {
				return err
			}
		}
		// Append the slot — union, sink, live mark — and resubscribe
		// every slice the new query reads from. Rewiring closes the
		// slices' current union inputs and re-adds fresh ones for the
		// full served set; closed inputs drain any residue in order
		// during the barrier's final drain.
		sp.w.Queries = append(sp.w.Queries, q)
		sp.live = append(sp.live, true)
		sink := sp.newQuerySink(qi)
		u := operator.NewUnion(sp.w.QueryName(qi) + ".union")
		u.Out().AttachFunc(sink.Accept)
		sp.unions = append(sp.unions, u)
		sp.sinks = append(sp.sinks, sink)
		for si := range sp.slices {
			if start, _ := sp.slices[si].join.Range(); start < q.Window {
				if err := sp.rewireSlice(si); err != nil {
					return err
				}
			}
		}
		sp.rebuildOps()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return qi, nil
}

// Detach unsubscribes query slot qi from the live chain driven by s. The
// slot's union inputs are closed — flushing buffered results in order,
// followed by a final MaxTime punctuation — and trailing slices left with
// no subscribing query are garbage-collected, shrinking the chain (and its
// window states) to the largest remaining live window. The slot itself
// stays, inert, so indices remain stable; its sink keeps the counts and
// results delivered before the detach. At least one live query must remain.
func (sp *StateSlicePlan) Detach(s *engine.Session, qi int) error {
	if err := sp.migratable(s); err != nil {
		return fmt.Errorf("plan: Detach: %w", err)
	}
	if sp.w.AnyFilter() {
		return fmt.Errorf("plan: Detach: admission requires a fully unfiltered workload (pushed-down selections specialize the chain to the build-time query set)")
	}
	if qi < 0 || qi >= len(sp.live) {
		return fmt.Errorf("plan: Detach(%d): chain has %d query slots", qi, len(sp.live))
	}
	if !sp.live[qi] {
		return fmt.Errorf("plan: Detach(%d): query %s is already detached", qi, sp.w.QueryName(qi))
	}
	maxLive := stream.Time(0)
	for k, q := range sp.w.Queries {
		if k != qi && sp.live[k] && q.Window > maxLive {
			maxLive = q.Window
		}
	}
	if maxLive == 0 {
		return fmt.Errorf("plan: Detach(%d): detaching %s would leave the chain with no live query; finish the session instead", qi, sp.w.QueryName(qi))
	}
	if err := sp.beginRestructure("Detach"); err != nil {
		return err
	}
	defer sp.endRestructure()

	win := sp.w.Queries[qi].Window
	return s.Barrier(func() error {
		sp.live[qi] = false
		// Garbage-collect trailing slices no live query subscribes to:
		// disconnect them from the kept prefix (the last kept slice's
		// propagate port then discards, like any chain tail) and close
		// their union edges so the affected unions can flush.
		keep := len(sp.slices)
		for keep > 1 {
			if start, _ := sp.slices[keep-1].join.Range(); start >= maxLive {
				keep--
			} else {
				break
			}
		}
		if keep < len(sp.slices) {
			sp.slices[keep-1].join.Next().DetachAll()
			for _, n := range sp.slices[keep:] {
				sp.closeEdges(n)
				n.join.Result().DetachAll()
				n.join.Next().DetachAll()
			}
			sp.slices = sp.slices[:keep]
		}
		// Resubscribe the kept slices that served the detached query;
		// rewiring drops its union inputs (and any router branch or
		// result edge only it used). With every input closed, the
		// union's frontier reaches MaxTime and the barrier's final
		// drain flushes it through the sink.
		for si := range sp.slices {
			if start, _ := sp.slices[si].join.Range(); start < win {
				if err := sp.rewireSlice(si); err != nil {
					return err
				}
			}
		}
		sp.rebuildOps()
		return nil
	})
}

// admissible validates that query q may be attached to this chain.
func (sp *StateSlicePlan) admissible(q Query) error {
	if sp.w.AnyFilter() {
		return fmt.Errorf("admission requires a fully unfiltered workload (pushed-down selections specialize the chain to the build-time query set)")
	}
	if q.HasFilter() || q.HasFilterB() {
		return fmt.Errorf("attached queries must be unfiltered (the slice states were not lineage-marked for a new predicate)")
	}
	if q.Window <= 0 {
		return fmt.Errorf("attached query has non-positive window %s", q.Window)
	}
	return nil
}

// boundaryIndex returns the index of the slice ending exactly at w, or -1
// when w is not a slice boundary.
func (sp *StateSlicePlan) boundaryIndex(w stream.Time) int {
	for i, n := range sp.slices {
		if _, end := n.join.Range(); end == w {
			return i
		}
	}
	return -1
}

// rewireSlice rebuilds slice si's result path for the current served set:
// existing union inputs are closed (their residue drains in order), the
// result port is stripped, and wireSliceResults reattaches routers, filters
// and union edges for the live subscribers.
func (sp *StateSlicePlan) rewireSlice(si int) error {
	node := sp.slices[si]
	sp.closeEdges(node)
	node.join.Result().DetachAll()
	return sp.wireSliceResults(si)
}
