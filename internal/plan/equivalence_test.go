package plan

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/stream"
)

// pair identifies one joined result by its source sequence numbers.
type pair struct{ a, b uint64 }

// oracle computes the exact per-query result sets by brute force: every
// (a, b) pair with |Ta - Tb| <= W_q, a passing the query's filter and the
// pair passing the join predicate.
func oracle(w Workload, input []*stream.Tuple) []map[pair]bool {
	var as, bs []*stream.Tuple
	for _, t := range input {
		if t.Stream == stream.StreamA {
			as = append(as, t)
		} else {
			bs = append(bs, t)
		}
	}
	out := make([]map[pair]bool, len(w.Queries))
	for qi, q := range w.Queries {
		out[qi] = make(map[pair]bool)
		for _, a := range as {
			if q.HasFilter() && !q.Filter.Eval(a) {
				continue
			}
			for _, b := range bs {
				if q.HasFilterB() && !q.FilterB.Eval(b) {
					continue
				}
				if stream.AbsDiff(a.Time, b.Time) > q.Window {
					continue
				}
				if w.Join.Match(a, b) {
					out[qi][pair{a.Seq, b.Seq}] = true
				}
			}
		}
	}
	return out
}

// sinkPairs extracts the delivered result set of one sink.
func sinkPairs(t *testing.T, res *engine.Result, collected []*stream.Tuple) map[pair]bool {
	t.Helper()
	out := make(map[pair]bool, len(collected))
	for _, r := range collected {
		if !r.IsResult() {
			t.Fatalf("sink holds non-result tuple %v", r)
		}
		p := pair{r.A.Seq, r.B.Seq}
		if out[p] {
			t.Fatalf("duplicate result (%d,%d)", p.a, p.b)
		}
		out[p] = true
	}
	return out
}

// diffSets reports a readable difference between result sets.
func diffSets(want, got map[pair]bool) string {
	var missing, extra []pair
	for p := range want {
		if !got[p] {
			missing = append(missing, p)
		}
	}
	for p := range got {
		if !want[p] {
			extra = append(extra, p)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].a < missing[j].a })
	sort.Slice(extra, func(i, j int) bool { return extra[i].a < extra[j].a })
	const cap = 8
	if len(missing) > cap {
		missing = missing[:cap]
	}
	if len(extra) > cap {
		extra = extra[:cap]
	}
	return fmt.Sprintf("missing=%v extra=%v", missing, extra)
}

// strategies enumerates every plan builder variant under test for a
// workload. The key property (Theorems 1-4 of the paper): all of them
// deliver exactly the oracle result set per query.
func strategies(t *testing.T, w Workload) map[string]*engine.Plan {
	t.Helper()
	out := make(map[string]*engine.Plan)
	unshared, err := BuildUnshared(w, true)
	if err != nil {
		t.Fatalf("unshared: %v", err)
	}
	out["unshared"] = unshared
	pullup, err := BuildPullUp(w, true)
	if err != nil {
		t.Fatalf("pull-up: %v", err)
	}
	out["pull-up"] = pullup
	if _, err := sharedFilter(w); err == nil {
		pushdown, err := BuildPushDown(w, true)
		if err != nil {
			t.Fatalf("push-down: %v", err)
		}
		out["push-down"] = pushdown
	}
	memopt, err := BuildStateSlice(w, StateSliceConfig{Collect: true, Name: "mem-opt"})
	if err != nil {
		t.Fatalf("mem-opt: %v", err)
	}
	out["mem-opt"] = memopt.Plan

	noLineage, err := BuildStateSlice(w, StateSliceConfig{Collect: true, DisableLineage: true, Name: "no-lineage"})
	if err != nil {
		t.Fatalf("no-lineage: %v", err)
	}
	out["no-lineage"] = noLineage.Plan

	// Fully merged chain: a single slice covering (0, Wmax] — the
	// state-slice plan degenerates towards pull-up with routing.
	merged, err := BuildStateSlice(w, StateSliceConfig{
		Ends:    []stream.Time{w.MaxWindow()},
		Collect: true,
		Name:    "merged-1",
	})
	if err != nil {
		t.Fatalf("merged-1: %v", err)
	}
	out["merged-1"] = merged.Plan

	// A partially merged chain: keep the first boundary, merge the rest.
	if dw := w.DistinctWindows(); len(dw) > 2 {
		ends := []stream.Time{dw[0], dw[len(dw)-1]}
		partial, err := BuildStateSlice(w, StateSliceConfig{Ends: ends, Collect: true, Name: "merged-2"})
		if err != nil {
			t.Fatalf("merged-2: %v", err)
		}
		out["merged-2"] = partial.Plan
	}
	// A chain with a slice boundary that is not any query's window: legal
	// (it can arise from online splits) and must not change any answer.
	if dw := w.DistinctWindows(); len(dw) >= 2 {
		off := dw[0] + (dw[len(dw)-1]-dw[0])/3
		ends := []stream.Time{dw[0], off, dw[len(dw)-1]}
		if off > dw[0] && off < dw[len(dw)-1] {
			misaligned, err := BuildStateSlice(w, StateSliceConfig{Ends: ends, Collect: true, Name: "offset-ends"})
			if err != nil {
				t.Fatalf("offset-ends: %v", err)
			}
			out["offset-ends"] = misaligned.Plan
		}
	}
	// Migratable wiring (always-union) must not change results either.
	mig, err := BuildStateSlice(w, StateSliceConfig{Collect: true, Migratable: true, Name: "migratable"})
	if err != nil {
		t.Fatalf("migratable: %v", err)
	}
	out["migratable"] = mig.Plan
	return out
}

// runEquivalence feeds the same input to every strategy and checks the
// results against the oracle.
func runEquivalence(t *testing.T, w Workload, input []*stream.Tuple) {
	t.Helper()
	want := oracle(w, input)
	for name, p := range strategies(t, w) {
		res, err := engine.Run(p, input, engine.Config{})
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if res.OrderViolations != 0 {
			t.Errorf("%s: %d out-of-order deliveries", name, res.OrderViolations)
		}
		for qi, sink := range p.Sinks {
			got := sinkPairs(t, res, sink.Results())
			if len(got) != len(want[qi]) {
				t.Errorf("%s %s: %d results, oracle %d: %s",
					name, w.QueryName(qi), len(got), len(want[qi]), diffSets(want[qi], got))
				continue
			}
			for pr := range want[qi] {
				if !got[pr] {
					t.Errorf("%s %s: missing (%d,%d)", name, w.QueryName(qi), pr.a, pr.b)
					break
				}
			}
		}
	}
}

func TestEquivalenceMotivatingExample(t *testing.T) {
	// The paper's Q1/Q2: same join, windows 1min vs 60min scaled down,
	// Q2 filtered.
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 8 * stream.Second, Filter: stream.Threshold{S: 0.5}},
		},
		Join: stream.FractionMatch{S: 0.2},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 30, RateB: 30, Duration: 40 * stream.Second, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, w, input)
}

func TestEquivalenceThreeQueries(t *testing.T) {
	// The experiment workload of Section 7.2: Q1 unfiltered, Q2 and Q3
	// share a selection, three windows.
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second, Filter: stream.Threshold{S: 0.5}},
			{Window: 9 * stream.Second, Filter: stream.Threshold{S: 0.5}},
		},
		Join: stream.FractionMatch{S: 0.1},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 45 * stream.Second, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, w, input)
}

func TestEquivalenceNoFilters(t *testing.T) {
	w := Workload{
		Queries: []Query{
			{Window: 1 * stream.Second},
			{Window: 3 * stream.Second},
			{Window: 6 * stream.Second},
			{Window: 10 * stream.Second},
		},
		Join: stream.FractionMatch{S: 0.15},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 20, RateB: 20, Duration: 50 * stream.Second, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, w, input)
}

func TestEquivalenceAllFiltered(t *testing.T) {
	// Every query filtered with the same predicate: the chain's entry
	// gate drops failing tuples outright.
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second, Filter: stream.Threshold{S: 0.3}},
			{Window: 6 * stream.Second, Filter: stream.Threshold{S: 0.3}},
		},
		Join: stream.FractionMatch{S: 0.3},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 40 * stream.Second, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, w, input)
}

func TestEquivalenceNestedThresholds(t *testing.T) {
	// Heterogeneous nested predicates: push-down is skipped (needs one
	// shared predicate) but every other strategy must agree.
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second, Filter: stream.Threshold{S: 0.8}},
			{Window: 4 * stream.Second, Filter: stream.Threshold{S: 0.5}},
			{Window: 7 * stream.Second, Filter: stream.Threshold{S: 0.2}},
		},
		Join: stream.FractionMatch{S: 0.25},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 40 * stream.Second, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, w, input)
}

func TestEquivalenceEqualWindows(t *testing.T) {
	// Duplicate windows share slices and router branches.
	w := Workload{
		Queries: []Query{
			{Window: 3 * stream.Second},
			{Window: 3 * stream.Second, Filter: stream.Threshold{S: 0.4}},
			{Window: 8 * stream.Second, Filter: stream.Threshold{S: 0.4}},
		},
		Join: stream.FractionMatch{S: 0.2},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 20, RateB: 20, Duration: 40 * stream.Second, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, w, input)
}

func TestEquivalenceEquijoin(t *testing.T) {
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 7 * stream.Second, Filter: stream.Threshold{S: 0.5}},
		},
		Join: stream.Equijoin{},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 30, RateB: 30, Duration: 40 * stream.Second, KeyDomain: 8, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, w, input)
}

func TestEquivalenceBothStreamsFiltered(t *testing.T) {
	// Section 6: predicates on multiple streams push down similarly. Q2
	// filters both inputs, Q3 only stream B.
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second, Filter: stream.Threshold{S: 0.5}, FilterB: stream.Threshold{S: 0.6}},
			{Window: 9 * stream.Second, FilterB: stream.Threshold{S: 0.3}},
		},
		Join: stream.FractionMatch{S: 0.2},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 40 * stream.Second, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, w, input)
}

func TestEquivalenceBSideMigration(t *testing.T) {
	// Migration with B-side selections in play.
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second, FilterB: stream.Threshold{S: 0.5}},
			{Window: 6 * stream.Second, FilterB: stream.Threshold{S: 0.5}},
		},
		Join: stream.FractionMatch{S: 0.25},
	}
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 35 * stream.Second, Seed: 72,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := BuildStateSlice(w, StateSliceConfig{Migratable: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	res := runWithMigrations(t, sp, input, map[int]func(*engine.Session) error{
		len(input) / 3:     func(s *engine.Session) error { return sp.MergeSlices(s, 0) },
		2 * len(input) / 3: func(s *engine.Session) error { return sp.SplitSlice(s, 0, 2*stream.Second) },
	})
	checkAgainstOracle(t, w, sp, res, input)
}

func TestPushDownRejectsBSideFilters(t *testing.T) {
	w := Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second, FilterB: stream.Threshold{S: 0.5}},
		},
		Join: stream.FractionMatch{S: 0.2},
	}
	if _, err := BuildPushDown(w, false); err == nil {
		t.Error("push-down must reject B-side selections (single-stream partition baseline)")
	}
}

func TestEquivalenceRandomWorkloads(t *testing.T) {
	// Randomised property test: random windows, filters and selectivities
	// across many seeds; every strategy equals the oracle.
	if testing.Short() {
		t.Skip("long randomised equivalence sweep")
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 12; trial++ {
		nq := 2 + rng.Intn(4)
		var qs []Query
		win := stream.Time(0)
		shared := stream.Threshold{S: 0.2 + 0.6*rng.Float64()}
		for i := 0; i < nq; i++ {
			win += stream.Time(1+rng.Intn(4)) * stream.Second
			q := Query{Window: win}
			if rng.Float64() < 0.6 {
				q.Filter = shared
			}
			qs = append(qs, q)
		}
		w := Workload{Queries: qs, Join: stream.FractionMatch{S: 0.05 + 0.3*rng.Float64()}}
		input, err := stream.Generate(stream.GeneratorConfig{
			RateA:    10 + 20*rng.Float64(),
			RateB:    10 + 20*rng.Float64(),
			Duration: 30 * stream.Second,
			Seed:     rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			runEquivalence(t, w, input)
		})
	}
}
