package plan

import (
	"testing"

	"stateslice/internal/engine"
	"stateslice/internal/stream"
)

// migrationWorkload is the three-query workload used across migration tests.
func migrationWorkload(filtered bool) Workload {
	var f stream.Predicate
	if filtered {
		f = stream.Threshold{S: 0.5}
	}
	return Workload{
		Queries: []Query{
			{Window: 2 * stream.Second},
			{Window: 5 * stream.Second, Filter: f},
			{Window: 9 * stream.Second, Filter: f},
		},
		Join: stream.FractionMatch{S: 0.2},
	}
}

func migrationInput(t *testing.T, seed int64) []*stream.Tuple {
	t.Helper()
	input, err := stream.Generate(stream.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 40 * stream.Second, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

// runWithMigrations feeds the input, invoking each migration at its arrival
// index, and returns the result with collected sinks.
func runWithMigrations(t *testing.T, sp *StateSlicePlan, input []*stream.Tuple, at map[int]func(*engine.Session) error) *engine.Result {
	t.Helper()
	s, err := engine.NewSession(sp.Plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range input {
		if mig, ok := at[i]; ok {
			if err := mig(s); err != nil {
				t.Fatalf("migration at tuple %d: %v", i, err)
			}
		}
		if err := s.Feed(tp); err != nil {
			t.Fatal(err)
		}
	}
	return s.Finish()
}

// checkAgainstOracle verifies per-query result sets and ordering.
func checkAgainstOracle(t *testing.T, w Workload, sp *StateSlicePlan, res *engine.Result, input []*stream.Tuple) {
	t.Helper()
	if res.OrderViolations != 0 {
		t.Errorf("%d out-of-order deliveries", res.OrderViolations)
	}
	want := oracle(w, input)
	for qi, sink := range sp.Sinks() {
		got := sinkPairs(t, res, sink.Results())
		if len(got) != len(want[qi]) {
			t.Errorf("%s: %d results, oracle %d: %s",
				w.QueryName(qi), len(got), len(want[qi]), diffSets(want[qi], got))
			continue
		}
		for pr := range want[qi] {
			if !got[pr] {
				t.Errorf("%s: missing (%d,%d)", w.QueryName(qi), pr.a, pr.b)
				break
			}
		}
	}
}

func TestMergeSlicesMidStream(t *testing.T) {
	for _, filtered := range []bool{false, true} {
		name := "plain"
		if filtered {
			name = "filtered"
		}
		t.Run(name, func(t *testing.T) {
			w := migrationWorkload(filtered)
			input := migrationInput(t, 71)
			sp, err := BuildStateSlice(w, StateSliceConfig{Migratable: true, Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			res := runWithMigrations(t, sp, input, map[int]func(*engine.Session) error{
				len(input) / 2: func(s *engine.Session) error { return sp.MergeSlices(s, 0) },
			})
			if got := len(sp.Slices()); got != 2 {
				t.Fatalf("expected 2 slices after merge, got %d", got)
			}
			checkAgainstOracle(t, w, sp, res, input)
		})
	}
}

func TestSplitSliceMidStream(t *testing.T) {
	for _, filtered := range []bool{false, true} {
		name := "plain"
		if filtered {
			name = "filtered"
		}
		t.Run(name, func(t *testing.T) {
			w := migrationWorkload(filtered)
			input := migrationInput(t, 73)
			// Start from the fully merged single slice and split it
			// back to the Mem-Opt boundaries mid-stream.
			sp, err := BuildStateSlice(w, StateSliceConfig{
				Ends:       []stream.Time{w.MaxWindow()},
				Migratable: true,
				Collect:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := runWithMigrations(t, sp, input, map[int]func(*engine.Session) error{
				len(input) / 3: func(s *engine.Session) error {
					return sp.SplitSlice(s, 0, 2*stream.Second)
				},
				2 * len(input) / 3: func(s *engine.Session) error {
					return sp.SplitSlice(s, 1, 5*stream.Second)
				},
			})
			if got := len(sp.Slices()); got != 3 {
				t.Fatalf("expected 3 slices after splits, got %d", got)
			}
			checkAgainstOracle(t, w, sp, res, input)
		})
	}
}

func TestSplitAtNonWindowBoundary(t *testing.T) {
	// Splitting at a boundary that is not any query's window (as chain
	// maintenance may do) must not corrupt any answer: results between
	// the largest inside window and the slice end belong only to the
	// longer-window queries, which requires the router's explicit
	// last-boundary check.
	w := migrationWorkload(false)
	input := migrationInput(t, 89)
	sp, err := BuildStateSlice(w, StateSliceConfig{Migratable: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	res := runWithMigrations(t, sp, input, map[int]func(*engine.Session) error{
		len(input) / 3: func(s *engine.Session) error {
			// Split the last slice (5s,9s] at 7s: no query window
			// at 7s.
			return sp.SplitSlice(s, 2, 7*stream.Second)
		},
		2 * len(input) / 3: func(s *engine.Session) error {
			// And the middle slice (2s,5s] at 3.5s.
			return sp.SplitSlice(s, 1, 3500*stream.Millisecond)
		},
	})
	if got := len(sp.Slices()); got != 5 {
		t.Fatalf("expected 5 slices, got %d", got)
	}
	checkAgainstOracle(t, w, sp, res, input)
}

func TestMergeThenSplitRoundTrip(t *testing.T) {
	w := migrationWorkload(true)
	input := migrationInput(t, 79)
	sp, err := BuildStateSlice(w, StateSliceConfig{Migratable: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	res := runWithMigrations(t, sp, input, map[int]func(*engine.Session) error{
		len(input) / 4: func(s *engine.Session) error { return sp.MergeSlices(s, 1) },
		len(input) / 2: func(s *engine.Session) error { return sp.MergeSlices(s, 0) },
		3 * len(input) / 4: func(s *engine.Session) error {
			if err := sp.SplitSlice(s, 0, 2*stream.Second); err != nil {
				return err
			}
			return sp.SplitSlice(s, 1, 5*stream.Second)
		},
	})
	ends := sp.Ends()
	if len(ends) != 3 || ends[0] != 2*stream.Second || ends[1] != 5*stream.Second {
		t.Fatalf("unexpected final boundaries %v", ends)
	}
	checkAgainstOracle(t, w, sp, res, input)
}

func TestQueryLeavesSystem(t *testing.T) {
	// Section 5.3's motivating case: query Q2 leaves, its slice is merged
	// into the next one. The remaining queries keep exact answers; the
	// departed query simply stops receiving results (its sink stays).
	w := migrationWorkload(false)
	input := migrationInput(t, 83)
	sp, err := BuildStateSlice(w, StateSliceConfig{Migratable: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	res := runWithMigrations(t, sp, input, map[int]func(*engine.Session) error{
		len(input) / 2: func(s *engine.Session) error { return sp.MergeSlices(s, 1) },
	})
	// Q1 and Q3 must still be exact; Q2 was still registered, so it too
	// remains exact (merging alone never changes answers).
	checkAgainstOracle(t, w, sp, res, input)
}

func TestMigrationPreconditions(t *testing.T) {
	w := migrationWorkload(false)
	sp, err := BuildStateSlice(w, StateSliceConfig{Migratable: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := engine.NewSession(sp.Plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.MergeSlices(s, 5); err == nil {
		t.Error("out-of-range merge must fail")
	}
	if err := sp.MergeSlices(s, -1); err == nil {
		t.Error("negative merge index must fail")
	}
	if err := sp.SplitSlice(s, 0, 10*stream.Second); err == nil {
		t.Error("split point outside the slice must fail")
	}
	static, err := BuildStateSlice(w, StateSliceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := engine.NewSession(static.Plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := static.MergeSlices(s2, 0); err == nil {
		t.Error("non-migratable plan must refuse migration")
	}
	if err := sp.MergeSlices(s2, 0); err == nil {
		t.Error("foreign session must be rejected")
	}
}
