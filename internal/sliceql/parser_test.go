package sliceql

import (
	"strings"
	"testing"

	"stateslice/internal/stream"
)

func TestParseQuerySet(t *testing.T) {
	src := `
-- the paper's motivating example
Q1: SELECT * FROM temps JOIN hums ON temps.key = hums.key WINDOW 1s;
Q2: SELECT * FROM temps JOIN hums ON temps.key = hums.key
    WHERE temps.value >= 0.99
    WINDOW 60s;
`
	qs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Stmts) != 2 {
		t.Fatalf("parsed %d statements, want 2", len(qs.Stmts))
	}
	q1, q2 := qs.Stmts[0], qs.Stmts[1]
	if q1.Name != "Q1" || q2.Name != "Q2" {
		t.Errorf("names %q, %q", q1.Name, q2.Name)
	}
	if q1.StreamA != "temps" || q1.StreamB != "hums" {
		t.Errorf("streams %q, %q", q1.StreamA, q1.StreamB)
	}
	if q1.Join.Kind != JoinEqui {
		t.Errorf("join kind %v", q1.Join.Kind)
	}
	if q1.Window.Micros != 1e6 || q2.Window.Micros != 60e6 {
		t.Errorf("windows %d, %d", q1.Window.Micros, q2.Window.Micros)
	}
	if len(q2.Where) != 1 || q2.Where[0].Threshold != 0.99 {
		t.Errorf("where %+v", q2.Where)
	}
	if q1.Pos.Line != 3 || q1.Pos.Col != 1 {
		t.Errorf("Q1 position %v, want 3:1", q1.Pos)
	}
}

func TestParseBandAndKeys(t *testing.T) {
	qs, err := Parse(`SELECT * FROM a JOIN b ON BAND(a.key, b.key, 2) WINDOW 500ms KEYS -10..119`)
	if err != nil {
		t.Fatal(err)
	}
	st := qs.Stmts[0]
	if st.Join.Kind != JoinBand || st.Join.Band != 2 {
		t.Errorf("band join %+v", st.Join)
	}
	if st.Window.Micros != 5e5 {
		t.Errorf("window %d", st.Window.Micros)
	}
	if st.Keys == nil || st.Keys.Min != -10 || st.Keys.Max != 119 {
		t.Errorf("keys %+v", st.Keys)
	}
}

func TestParseDurations(t *testing.T) {
	for src, want := range map[string]int64{
		"WINDOW 250us": 250,
		"WINDOW 1.5ms": 1500,
		"WINDOW 2.5s":  2_500_000,
		"WINDOW 1 min": 60_000_000,
		"WINDOW 3 sec": 3_000_000,
	} {
		qs, err := Parse("SELECT * FROM a JOIN b ON a.k = b.k " + src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := qs.Stmts[0].Window.Micros; got != want {
			t.Errorf("%s parsed to %d us, want %d", src, got, want)
		}
	}
}

// TestParseErrors pins that malformed inputs produce positioned errors with
// actionable messages — the front-end's contract with interactive users.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		pos  string // "line:col" prefix of the expected error
		want string // substring of the message
	}{
		{"", "1:1", "empty query set"},
		{"SELECT", "1:7", "expected '*'"},
		{"SELECT * FROM a", "1:16", "expected JOIN"},
		{"SELECT * FROM a JOIN b ON a.k = b.k", "1:36", "expected WINDOW"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW", "1:43", "expected number"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 5", "1:45", "duration unit"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 5 fortnights", "1:46", "unknown duration unit"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 0s", "1:44", "must be positive"},
		{"SELECT * FROM a JOIN b ON a.k < b.k WINDOW 1s", "1:31", "unexpected character"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WHERE a.value > 0.5 WINDOW 1s", "1:51", "'>='"},
		{"SELECT * FROM a JOIN b ON BAND(a.k, b.k) WINDOW 1s", "1:40", "expected ','"},
		{"SELECT * FROM a JOIN b ON BAND(a.k, b.k, -1) WINDOW 1s", "1:42", "non-negative"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s KEYS 9..3", "1:52", "min <= max"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s KEYS 1.5..3", "1:52", "must be an integer"},
		{"SELECT * FROM select JOIN b ON a.k = b.k WINDOW 1s", "1:15", "reserved keyword"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s garbage", "1:47", "expected ';'"},
		{"q: q: SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s", "1:4", "expected SELECT"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: no error, want %q", c.src, c.want)
			continue
		}
		e, ok := err.(*Error)
		if !ok {
			t.Errorf("%q: error type %T, want *Error", c.src, err)
			continue
		}
		if got := e.Pos.String(); got != c.pos {
			t.Errorf("%q: error at %s, want %s (%v)", c.src, got, c.pos, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

func TestBind(t *testing.T) {
	qs, err := Parse(`
short: SELECT * FROM A JOIN B ON A.key = B.key WINDOW 60s;
long:  SELECT * FROM A JOIN B ON A.key = B.key
       WHERE A.value >= 0.6 AND B.value >= 0.2 WINDOW 2s;
`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(qs)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted into chain order: the 2s query first.
	if got := b.Workload.Queries[0].Name; got != "long" {
		t.Errorf("first query after sorting is %q, want the small window", got)
	}
	if err := b.Workload.Validate(); err != nil {
		t.Fatal(err)
	}
	q := b.Workload.Queries[0]
	th, ok := q.Filter.(stream.Threshold)
	if !ok || th.S < 0.399 || th.S > 0.401 {
		t.Errorf("stream-A predicate %#v, want Threshold{S:0.4}", q.Filter)
	}
	thB, ok := q.FilterB.(stream.Threshold)
	if !ok || thB.S < 0.799 || thB.S > 0.801 {
		t.Errorf("stream-B predicate %#v, want Threshold{S:0.8}", q.FilterB)
	}
	if _, ok := b.Workload.Join.(stream.Equijoin); !ok {
		t.Errorf("join %#v, want Equijoin", b.Workload.Join)
	}
	if b.Keys != nil {
		t.Errorf("no KEYS declared, got %+v", b.Keys)
	}
}

func TestBindErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"SELECT * FROM a JOIN a ON a.k = a.k WINDOW 1s", "must differ"},
		{"SELECT * FROM a JOIN b ON b.k = a.k WINDOW 1s", "must reference the FROM stream"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s;\nSELECT * FROM x JOIN y ON x.k = y.k WINDOW 2s", "same stream pair"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s;\nSELECT * FROM a JOIN b ON BAND(a.k, b.k, 1) WINDOW 2s", "share one join"},
		{"SELECT * FROM a JOIN b ON BAND(a.k, b.k, 1) WINDOW 1s;\nSELECT * FROM a JOIN b ON BAND(a.k, b.k, 2) WINDOW 2s", "band width"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s;\nSELECT * FROM a JOIN b ON a.j = b.k WINDOW 2s", "same columns"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WHERE c.value >= 0.5 WINDOW 1s", "unknown stream"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WHERE a.key >= 0.5 WINDOW 1s", "value attribute"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WHERE a.value >= 1 WINDOW 1s", "selectivity"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WHERE a.value >= 0.5 AND a.value >= 0.7 WINDOW 1s", "duplicate selection"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s KEYS 0..9;\nSELECT * FROM a JOIN b ON a.k = b.k WINDOW 2s KEYS 0..10", "conflicting KEYS"},
	}
	for _, c := range cases {
		qs, err := Parse(c.src)
		if err != nil {
			t.Errorf("%q: parse error %v", c.src, err)
			continue
		}
		_, err = Bind(qs)
		if err == nil {
			t.Errorf("%q: no bind error, want %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.want)
		}
		if _, ok := err.(*Error); !ok {
			t.Errorf("%q: error type %T, want *Error", c.src, err)
		}
	}
}

func TestBindMergesKeys(t *testing.T) {
	qs, err := Parse(`
SELECT * FROM a JOIN b ON BAND(a.k, b.k, 1) WINDOW 1s KEYS 0..119;
SELECT * FROM a JOIN b ON BAND(a.k, b.k, 1) WINDOW 2s KEYS 0..119;
`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(qs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Keys == nil || b.Keys.Min != 0 || b.Keys.Max != 119 {
		t.Fatalf("merged keys %+v", b.Keys)
	}
	bj, ok := b.Workload.Join.(stream.BandJoin)
	if !ok || bj.B != 1 {
		t.Fatalf("join %#v", b.Workload.Join)
	}
}
