package sliceql

import (
	"sort"
	"strings"

	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Bound is a query set resolved against the engine's stream model: the
// workload the optimizer pipeline compiles, plus the front-end declarations
// that parameterize its shard-inference pass.
type Bound struct {
	// Workload is the resolved query set, sorted by ascending window (the
	// chain order Workload.Validate requires); equal windows keep their
	// source order.
	Workload plan.Workload
	// Keys is the declared inclusive key domain, nil when no statement
	// carries a KEYS clause.
	Keys *KeyRange
	// StreamA and StreamB are the declared stream names, for diagnostics.
	StreamA, StreamB string
}

// Bind resolves a parsed query set: stream references are checked against
// the FROM/JOIN declarations, every statement must share one join (the
// sharing scenario the engine compiles), WHERE comparisons become threshold
// predicates on the value attribute, and KEYS declarations are merged.
// Errors carry the position of the offending clause.
func Bind(qs *QuerySet) (*Bound, error) {
	if qs == nil || len(qs.Stmts) == 0 {
		return nil, errf(Pos{Line: 1, Col: 1}, "empty query set")
	}
	b := &Bound{StreamA: qs.Stmts[0].StreamA, StreamB: qs.Stmts[0].StreamB}
	ref := qs.Stmts[0]
	for _, st := range qs.Stmts {
		if err := checkStreams(st); err != nil {
			return nil, err
		}
		if !strings.EqualFold(st.StreamA, ref.StreamA) || !strings.EqualFold(st.StreamB, ref.StreamB) {
			return nil, errf(st.Pos, "every query must read the same stream pair: got %s JOIN %s, the first statement reads %s JOIN %s",
				st.StreamA, st.StreamB, ref.StreamA, ref.StreamB)
		}
		if err := checkSameJoin(st, ref); err != nil {
			return nil, err
		}
		q, err := bindQuery(st)
		if err != nil {
			return nil, err
		}
		b.Workload.Queries = append(b.Workload.Queries, q)
		if st.Keys != nil {
			if b.Keys == nil {
				b.Keys = st.Keys
			} else if b.Keys.Min != st.Keys.Min || b.Keys.Max != st.Keys.Max {
				return nil, errf(st.Keys.Pos, "conflicting KEYS declarations: %d..%d here, %d..%d earlier (declare one key domain for the query set)",
					st.Keys.Min, st.Keys.Max, b.Keys.Min, b.Keys.Max)
			}
		}
	}
	switch ref.Join.Kind {
	case JoinBand:
		b.Workload.Join = stream.BandJoin{B: ref.Join.Band}
	default:
		b.Workload.Join = stream.Equijoin{}
	}
	// Chain order: ascending windows, stable so equal windows keep their
	// source order and labeled names travel with their queries.
	sort.SliceStable(b.Workload.Queries, func(i, j int) bool {
		return b.Workload.Queries[i].Window < b.Workload.Queries[j].Window
	})
	return b, nil
}

// BindStmt resolves one parsed statement in isolation into a plan query —
// the admission path, where a single query joins an already-running plan and
// the query set's cross-statement checks do not apply.
func BindStmt(st *Stmt) (plan.Query, error) {
	if err := checkStreams(st); err != nil {
		return plan.Query{}, err
	}
	return bindQuery(st)
}

// checkStreams validates a statement's stream declarations and ON sides.
func checkStreams(st *Stmt) error {
	if strings.EqualFold(st.StreamA, st.StreamB) {
		return errf(st.Pos, "FROM and JOIN streams must differ, both are %q (self-joins are out of the sharing model)", st.StreamA)
	}
	if !strings.EqualFold(st.Join.Left.Stream, st.StreamA) {
		return errf(st.Join.Left.Pos, "ON left side %s must reference the FROM stream %s", st.Join.Left, st.StreamA)
	}
	if !strings.EqualFold(st.Join.Right.Stream, st.StreamB) {
		return errf(st.Join.Right.Pos, "ON right side %s must reference the JOIN stream %s", st.Join.Right, st.StreamB)
	}
	return nil
}

// checkSameJoin enforces one shared join across the query set — the
// workload model shares a single join predicate; a second join shape would
// need an independent plan.
func checkSameJoin(st, ref *Stmt) error {
	j, r := st.Join, ref.Join
	if j.Kind != r.Kind {
		return errf(j.Pos, "every query must share one join: this one is a %s join, the first statement's is %s", j.Kind, r.Kind)
	}
	if j.Kind == JoinBand && j.Band != r.Band {
		return errf(j.Pos, "every query must share one join: band width %d here, %d in the first statement", j.Band, r.Band)
	}
	if !strings.EqualFold(j.Left.Column, r.Left.Column) || !strings.EqualFold(j.Right.Column, r.Right.Column) {
		return errf(j.Pos, "every query must join the same columns: %s, %s here vs %s, %s in the first statement",
			j.Left, j.Right, r.Left, r.Right)
	}
	return nil
}

// bindQuery resolves one statement into a plan query.
func bindQuery(st *Stmt) (plan.Query, error) {
	q := plan.Query{Name: st.Name, Window: stream.Time(st.Window.Micros)}
	for _, c := range st.Where {
		pred, onA, err := bindCmp(st, c)
		if err != nil {
			return plan.Query{}, err
		}
		if onA {
			if q.Filter != nil {
				return plan.Query{}, errf(c.Pos, "duplicate selection on stream %s (combine thresholds into one comparison)", st.StreamA)
			}
			q.Filter = pred
		} else {
			if q.FilterB != nil {
				return plan.Query{}, errf(c.Pos, "duplicate selection on stream %s (combine thresholds into one comparison)", st.StreamB)
			}
			q.FilterB = pred
		}
	}
	return q, nil
}

// bindCmp resolves one WHERE comparison into a threshold predicate and the
// stream it selects on (true = stream A).
func bindCmp(st *Stmt, c Cmp) (stream.Predicate, bool, error) {
	var onA bool
	switch {
	case strings.EqualFold(c.Col.Stream, st.StreamA):
		onA = true
	case strings.EqualFold(c.Col.Stream, st.StreamB):
		onA = false
	default:
		return nil, false, errf(c.Col.Pos, "unknown stream %q in WHERE (the query reads %s and %s)", c.Col.Stream, st.StreamA, st.StreamB)
	}
	if !strings.EqualFold(c.Col.Column, "value") {
		return nil, false, errf(c.Col.Pos, "selections apply to the value attribute only, got %s (the engine's selection fragment is thresholds on value)", c.Col)
	}
	// Value is uniform on [0,1): "value >= x" is the engine's Threshold
	// predicate with selectivity S = 1-x, which the cost model needs in
	// (0, 1].
	s := 1 - c.Threshold
	if s <= 0 || s > 1 {
		return nil, false, errf(c.Pos, "threshold %g yields selectivity %g outside (0,1]; value is uniform on [0,1), so thresholds must lie in [0,1)", c.Threshold, s)
	}
	return stream.Threshold{S: s}, onA, nil
}
