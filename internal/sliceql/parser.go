package sliceql

import (
	"math"
	"strconv"
	"strings"
)

// Parse scans and parses a SliceQL query set into its AST. The parse stops
// at the first syntax error, returned as an *Error carrying the 1-based
// line:column of the offending token; no input makes Parse panic.
func Parse(src string) (*QuerySet, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.prime(); err != nil {
		return nil, err
	}
	qs := &QuerySet{}
	for {
		// Tolerate stray separators between statements.
		for p.cur.kind == tokSemi {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if p.cur.kind == tokEOF {
			break
		}
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		qs.Stmts = append(qs.Stmts, st)
		switch p.cur.kind {
		case tokSemi, tokEOF:
		default:
			return nil, errf(p.cur.pos, "expected ';' or end of input after the statement, got %s", p.cur.describe())
		}
	}
	if len(qs.Stmts) == 0 {
		return nil, errf(p.cur.pos, "empty query set: expected at least one SELECT statement")
	}
	return qs, nil
}

// parser is a recursive-descent parser with two tokens of lookahead (the
// second distinguishes a "name:" label from the SELECT keyword).
type parser struct {
	lx       *lexer
	cur, nxt token
}

// prime fills both lookahead slots.
func (p *parser) prime() error {
	var err error
	if p.cur, err = p.lx.next(); err != nil {
		return err
	}
	p.nxt, err = p.lx.next()
	return err
}

// next advances the lookahead window by one token.
func (p *parser) next() error {
	p.cur = p.nxt
	var err error
	p.nxt, err = p.lx.next()
	return err
}

// expectKeyword consumes the given case-insensitive keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.cur.isKeyword(kw) {
		return errf(p.cur.pos, "expected %s, got %s", strings.ToUpper(kw), p.cur.describe())
	}
	return p.next()
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokKind) (token, error) {
	if p.cur.kind != kind {
		return token{}, errf(p.cur.pos, "expected %s, got %s", kind, p.cur.describe())
	}
	t := p.cur
	return t, p.next()
}

// ident consumes an identifier that is not a reserved keyword, described as
// what for error messages.
func (p *parser) ident(what string) (token, error) {
	if p.cur.kind != tokIdent {
		return token{}, errf(p.cur.pos, "expected %s, got %s", what, p.cur.describe())
	}
	for _, kw := range reservedKeywords {
		if strings.EqualFold(p.cur.text, kw) {
			return token{}, errf(p.cur.pos, "expected %s, got reserved keyword %s", what, strings.ToUpper(kw))
		}
	}
	t := p.cur
	return t, p.next()
}

// reservedKeywords cannot name streams or labels: accepting them would make
// a missing clause parse as a name and move the error somewhere misleading.
var reservedKeywords = []string{
	"select", "from", "join", "on", "where", "window", "keys", "and", "band",
}

// stmt parses one query statement (the leading label included).
func (p *parser) stmt() (*Stmt, error) {
	st := &Stmt{Pos: p.cur.pos}
	// Optional "name:" label.
	if p.cur.kind == tokIdent && p.nxt.kind == tokColon && !p.cur.isKeyword("select") {
		name, err := p.ident("query name")
		if err != nil {
			return nil, err
		}
		st.Name = name.text
		if err := p.next(); err != nil { // consume ':'
			return nil, err
		}
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokStar); err != nil {
		return nil, errf(p.cur.pos, "expected '*' after SELECT (SliceQL projects whole joined tuples), got %s", p.cur.describe())
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	a, err := p.ident("stream name")
	if err != nil {
		return nil, err
	}
	st.StreamA = a.text
	if err := p.expectKeyword("join"); err != nil {
		return nil, err
	}
	b, err := p.ident("stream name")
	if err != nil {
		return nil, err
	}
	st.StreamB = b.text
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	if st.Join, err = p.joinClause(); err != nil {
		return nil, err
	}
	if p.cur.isKeyword("where") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if st.Where, err = p.whereClause(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("window"); err != nil {
		return nil, err
	}
	if st.Window, err = p.duration(); err != nil {
		return nil, err
	}
	if p.cur.isKeyword("keys") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if st.Keys, err = p.keyRange(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// joinClause parses "a.col = b.col" or "BAND(a.col, b.col, width)".
func (p *parser) joinClause() (JoinClause, error) {
	jc := JoinClause{Pos: p.cur.pos}
	if p.cur.isKeyword("band") {
		jc.Kind = JoinBand
		if err := p.next(); err != nil {
			return jc, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return jc, err
		}
		var err error
		if jc.Left, err = p.colRef(); err != nil {
			return jc, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return jc, err
		}
		if jc.Right, err = p.colRef(); err != nil {
			return jc, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return jc, err
		}
		width, err := p.intLiteral("band width")
		if err != nil {
			return jc, err
		}
		if width.val < 0 {
			return jc, errf(width.pos, "band width must be non-negative, got %d", width.val)
		}
		jc.Band = width.val
		if _, err := p.expect(tokRParen); err != nil {
			return jc, err
		}
		return jc, nil
	}
	var err error
	if jc.Left, err = p.colRef(); err != nil {
		return jc, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return jc, err
	}
	jc.Right, err = p.colRef()
	return jc, err
}

// whereClause parses "col >= x [AND col >= x]...".
func (p *parser) whereClause() ([]Cmp, error) {
	var cmps []Cmp
	for {
		c := Cmp{Pos: p.cur.pos}
		var err error
		if c.Col, err = p.colRef(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokGE); err != nil {
			return nil, errf(p.cur.pos, "expected '>=' after %s (SliceQL selections are threshold comparisons), got %s", c.Col, p.cur.describe())
		}
		lit, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		if c.Threshold, err = parseFloatLit(lit); err != nil {
			return nil, err
		}
		cmps = append(cmps, c)
		if !p.cur.isKeyword("and") {
			return cmps, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
}

// colRef parses "stream.column".
func (p *parser) colRef() (ColRef, error) {
	s, err := p.ident("stream-qualified column (like A.key)")
	if err != nil {
		return ColRef{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return ColRef{}, err
	}
	col, err := p.ident("column name")
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Pos: s.pos, Stream: s.text, Column: col.text}, nil
}

// duration parses "<number> <unit>", unit one of us, ms, s, sec, m, min.
func (p *parser) duration() (Duration, error) {
	lit, err := p.expect(tokNumber)
	if err != nil {
		return Duration{}, err
	}
	v, err := parseFloatLit(lit)
	if err != nil {
		return Duration{}, err
	}
	unit, err := p.expect(tokIdent)
	if err != nil {
		return Duration{}, errf(p.cur.pos, "expected a duration unit (us, ms, s, min) after %s, got %s", lit.text, p.cur.describe())
	}
	var mult float64
	switch strings.ToLower(unit.text) {
	case "us":
		mult = 1
	case "ms":
		mult = 1e3
	case "s", "sec":
		mult = 1e6
	case "m", "min":
		mult = 6e7
	default:
		return Duration{}, errf(unit.pos, "unknown duration unit %q (want us, ms, s or min)", unit.text)
	}
	micros := v * mult
	if !(micros > 0) {
		return Duration{}, errf(lit.pos, "window duration must be positive, got %s%s", lit.text, unit.text)
	}
	if micros > math.MaxInt64/4 {
		return Duration{}, errf(lit.pos, "window duration %s%s overflows the engine's microsecond clock", lit.text, unit.text)
	}
	return Duration{Pos: lit.pos, Micros: int64(math.Round(micros))}, nil
}

// keyRange parses "<int>..<int>" after KEYS.
func (p *parser) keyRange() (*KeyRange, error) {
	lo, err := p.intLiteral("key domain minimum")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDotDot); err != nil {
		return nil, err
	}
	hi, err := p.intLiteral("key domain maximum")
	if err != nil {
		return nil, err
	}
	if lo.val > hi.val {
		return nil, errf(lo.pos, "key domain needs min <= max, got %d..%d", lo.val, hi.val)
	}
	return &KeyRange{Pos: lo.pos, Min: lo.val, Max: hi.val}, nil
}

// intLit is a parsed integer literal with its position.
type intLit struct {
	val int64
	pos Pos
}

// intLiteral consumes an integer number token.
func (p *parser) intLiteral(what string) (intLit, error) {
	if p.cur.kind != tokNumber {
		return intLit{}, errf(p.cur.pos, "expected %s, got %s", what, p.cur.describe())
	}
	lit := p.cur
	if err := p.next(); err != nil {
		return intLit{}, err
	}
	if strings.Contains(lit.text, ".") {
		return intLit{}, errf(lit.pos, "%s must be an integer, got %s", what, lit.text)
	}
	v, err := strconv.ParseInt(lit.text, 10, 64)
	if err != nil {
		return intLit{}, errf(lit.pos, "%s %q out of range", what, lit.text)
	}
	return intLit{val: v, pos: lit.pos}, nil
}

// parseFloatLit converts a number token, rejecting out-of-range literals.
func parseFloatLit(t token) (float64, error) {
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, errf(t.pos, "number %q out of range", t.text)
	}
	return v, nil
}
