package sliceql

import (
	"strings"
	"testing"
)

// FuzzParse pins the front-end's no-panic contract: any byte sequence either
// parses (and then binds or fails with a positioned error) or is rejected
// with a *sliceql.Error — never a panic, never an unpositioned failure. CI
// runs a short -fuzz smoke on top of the seeded corpus below.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		";",
		"SELECT * FROM a JOIN b ON a.key = b.key WINDOW 1s",
		"Q1: SELECT * FROM A JOIN B ON A.key = B.key WINDOW 1s;\nQ2: SELECT * FROM A JOIN B ON A.key = B.key WHERE A.value >= 0.99 WINDOW 60s;",
		"SELECT * FROM a JOIN b ON BAND(a.key, b.key, 2) WINDOW 500ms KEYS -10..119",
		"SELECT * FROM a JOIN b ON a.k = b.k WHERE a.value >= 0.5 AND b.value >= 0.25 WINDOW 2.5s",
		"-- comment only",
		"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 99999999999999999999 min",
		"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s KEYS 0..9223372036854775807",
		"select*from a join b on a.k=b.k window 1 s;;;",
		"\xff\xfe",
		"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s KEYS 1.5..2",
		"q: q: SELECT",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		qs, err := Parse(src)
		if err != nil {
			requirePositioned(t, src, err)
			return
		}
		if len(qs.Stmts) == 0 {
			t.Fatalf("Parse(%q) returned an empty set without error", src)
		}
		if _, err := Bind(qs); err != nil {
			requirePositioned(t, src, err)
		}
	})
}

func requirePositioned(t *testing.T, src string, err error) {
	t.Helper()
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("Parse/Bind(%q): error %v has type %T, want *Error", src, err, err)
	}
	if e.Pos.Line < 1 || e.Pos.Col < 1 {
		t.Fatalf("Parse/Bind(%q): unpositioned error %v", src, err)
	}
	if !strings.HasPrefix(err.Error(), "sliceql:") {
		t.Fatalf("Parse/Bind(%q): error %q lacks the sliceql: prefix", src, err)
	}
}
