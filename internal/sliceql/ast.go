// Package sliceql implements SliceQL, the small declarative front-end of the
// state-slice engine: a named set of continuous window-join queries over two
// streams, written as text instead of Go Workload literals, like
//
//	Q1: SELECT * FROM A JOIN B ON A.key = B.key WINDOW 1s;
//	Q2: SELECT * FROM A JOIN B ON A.key = B.key
//	    WHERE A.value >= 0.99 WINDOW 60s;
//
// One statement per query:
//
//	[name:] SELECT * FROM <streamA> JOIN <streamB>
//	        ON <a>.<col> = <b>.<col> | BAND(<a>.<col>, <b>.<col>, <width>)
//	        [WHERE <stream>.value >= <x> [AND ...]]
//	        WINDOW <duration>
//	        [KEYS <min>..<max>]
//
// Keywords are case-insensitive; statements are separated by semicolons;
// "--" starts a comment running to the end of the line. ON names the shared
// join: equality on the key attribute, or BAND for the proximity join
// |a.key - b.key| <= width. WHERE supports threshold selections on the value
// attribute (the engine's selection fragment). WINDOW takes a duration with
// unit us, ms, s or min. KEYS declares the inclusive key domain of the input
// streams — the declaration the optimizer's shard-inference pass turns into
// contiguous owner ranges for band-partitioned execution.
//
// Parse produces a positioned AST and never panics on malformed input (a
// fuzz target pins that); Bind resolves the AST against the engine's stream
// model into a plan.Workload plus the declared key domain. Both report
// *sliceql.Error values carrying the 1-based line:column of the offending
// token.
package sliceql

import "fmt"

// Pos is a 1-based source position.
type Pos struct {
	// Line and Col locate the first character of the offending or
	// defining token, both 1-based.
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is the error type of Parse and Bind: a message anchored to a source
// position.
type Error struct {
	// Pos locates the error in the query text.
	Pos Pos
	// Msg describes what was expected or rejected.
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("sliceql:%s: %s", e.Pos, e.Msg) }

// errf builds a positioned error.
func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// QuerySet is a parsed SliceQL source: one statement per continuous query,
// in source order.
type QuerySet struct {
	// Stmts are the parsed statements.
	Stmts []*Stmt
}

// Stmt is one parsed query statement.
type Stmt struct {
	// Pos is the statement's starting position.
	Pos Pos
	// Name is the optional "name:" label; empty defaults to Q<i> at Bind.
	Name string
	// StreamA and StreamB are the FROM and JOIN stream names.
	StreamA, StreamB string
	// Join is the ON clause.
	Join JoinClause
	// Where lists the WHERE comparisons, in source order.
	Where []Cmp
	// Window is the WINDOW duration.
	Window Duration
	// Keys is the optional KEYS domain declaration, nil when absent.
	Keys *KeyRange
}

// JoinKind discriminates the ON clause forms.
type JoinKind int

const (
	// JoinEqui is the equality join a.col = b.col.
	JoinEqui JoinKind = iota
	// JoinBand is the proximity join BAND(a.col, b.col, width).
	JoinBand
)

// String names the join kind.
func (k JoinKind) String() string {
	if k == JoinBand {
		return "band"
	}
	return "equi"
}

// JoinClause is the parsed ON clause.
type JoinClause struct {
	// Pos is the clause's starting position.
	Pos Pos
	// Kind selects equality or band.
	Kind JoinKind
	// Left and Right are the joined columns (left from the FROM stream,
	// right from the JOIN stream; Bind enforces the sides).
	Left, Right ColRef
	// Band is the band width in key units (JoinBand only).
	Band int64
}

// ColRef is a stream-qualified column reference.
type ColRef struct {
	// Pos is the reference's starting position.
	Pos Pos
	// Stream and Column are the two identifiers of "stream.column".
	Stream, Column string
}

// String renders the reference as written.
func (c ColRef) String() string { return c.Stream + "." + c.Column }

// Cmp is one WHERE comparison "stream.value >= threshold".
type Cmp struct {
	// Pos is the comparison's starting position.
	Pos Pos
	// Col is the compared column.
	Col ColRef
	// Threshold is the literal right-hand side.
	Threshold float64
}

// Duration is a parsed window duration.
type Duration struct {
	// Pos is the duration's starting position.
	Pos Pos
	// Micros is the duration in microseconds, the engine's base unit.
	Micros int64
}

// KeyRange is a parsed KEYS min..max domain declaration.
type KeyRange struct {
	// Pos is the declaration's starting position.
	Pos Pos
	// Min and Max bound the inclusive key domain.
	Min, Max int64
}
