package sliceql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates the token classes of the SliceQL lexer.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // integer or decimal literal, possibly negative
	tokDot
	tokDotDot
	tokComma
	tokColon
	tokSemi
	tokLParen
	tokRParen
	tokEq
	tokGE
	tokStar
)

// String names the token kind for error messages.
func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokDot:
		return "'.'"
	case tokDotDot:
		return "'..'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokSemi:
		return "';'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEq:
		return "'='"
	case tokGE:
		return "'>='"
	case tokStar:
		return "'*'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexed token with its source position and text.
type token struct {
	kind tokKind
	text string
	pos  Pos
}

// describe renders a token for "got ..." error messages.
func (t token) describe() string {
	if t.kind == tokIdent || t.kind == tokNumber {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

// lexer scans SliceQL source into tokens. It is a plain byte scanner —
// SliceQL keywords and identifiers are ASCII; other Unicode is rejected with
// a positioned error rather than a panic.
type lexer struct {
	src       string
	off       int
	line, col int
}

// newLexer positions a lexer at the start of src.
func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// pos is the position of the next unread byte.
func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

// advance consumes one byte, tracking line/column.
func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// peek returns the next byte without consuming it, or 0 at EOF.
func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

// peek2 returns the byte after next, or 0.
func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

// skipSpace consumes whitespace and "--" comments.
func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		begin := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[begin:l.off], pos: start}, nil
	case isDigit(c), c == '-' && isDigit(l.peek2()):
		return l.lexNumber(start)
	}
	switch c {
	case '.':
		l.advance()
		if l.peek() == '.' {
			l.advance()
			return token{kind: tokDotDot, text: "..", pos: start}, nil
		}
		return token{kind: tokDot, text: ".", pos: start}, nil
	case ',':
		l.advance()
		return token{kind: tokComma, text: ",", pos: start}, nil
	case ':':
		l.advance()
		return token{kind: tokColon, text: ":", pos: start}, nil
	case ';':
		l.advance()
		return token{kind: tokSemi, text: ";", pos: start}, nil
	case '(':
		l.advance()
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		l.advance()
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '=':
		l.advance()
		return token{kind: tokEq, text: "=", pos: start}, nil
	case '*':
		l.advance()
		return token{kind: tokStar, text: "*", pos: start}, nil
	case '>':
		l.advance()
		if l.peek() != '=' {
			return token{}, errf(start, "unexpected '>' (SliceQL selections are threshold comparisons, written '>=')")
		}
		l.advance()
		return token{kind: tokGE, text: ">=", pos: start}, nil
	}
	if c < 0x80 && unicode.IsPrint(rune(c)) {
		return token{}, errf(start, "unexpected character %q", string(rune(c)))
	}
	return token{}, errf(start, "unexpected byte 0x%02x", c)
}

// lexNumber scans an optionally-negative integer or decimal literal. A
// trailing lone '.' is left for the next token ("0..9" lexes as 0 .. 9).
func (l *lexer) lexNumber(start Pos) (token, error) {
	begin := l.off
	if l.peek() == '-' {
		l.advance()
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	return token{kind: tokNumber, text: l.src[begin:l.off], pos: start}, nil
}

// isKeyword reports whether the identifier token equals the keyword,
// case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
