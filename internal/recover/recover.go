// Package recover implements the supervised-restart policy of the sharded
// executor: when a replica dies with a contained crash (a fault.PanicError,
// not a build or usage error), the supervisor decides whether the replica
// may be rebuilt from its last checkpoint and how long to back off first.
// Exhausting the restart budget degrades to the executor's fail-fast
// teardown — supervision never hides a fault, it bounds how many times the
// same replica may be healed before the session gives up.
//
// The package holds policy and accounting only; the mechanics of rebuilding
// a replica (checkpoint restore, replay ring, merge dedup) live in
// internal/shard, which imports this package under the alias rec.
package recover

import (
	"errors"
	"sync"
	"time"

	"stateslice/internal/fault"
)

// Defaults of the zero Restart policy.
const (
	// DefaultMaxRestarts bounds restarts per replica for a session.
	DefaultMaxRestarts = 3
	// DefaultBackoff is the delay before the first restart of a replica;
	// it doubles per consecutive restart of the same replica.
	DefaultBackoff = time.Millisecond
	// DefaultMaxBackoff caps the per-restart delay.
	DefaultMaxBackoff = 100 * time.Millisecond
	// DefaultSnapshotEvery is how many fed inputs a replica processes
	// between periodic checkpoint snapshots. It bounds the replay ring: at
	// most this many inputs (rounded up to feed slabs) are replayed on a
	// restart.
	DefaultSnapshotEvery = 2048
)

// Restart is the supervised-restart policy WithRecovery selects: a replica
// that dies with a contained PanicError is quarantined, rebuilt from its
// last checkpoint and fed the delta from the replay ring, up to MaxRestarts
// times per replica with exponential backoff between attempts. The zero
// value selects every default.
type Restart struct {
	// MaxRestarts bounds how many times one replica may be restarted in a
	// session; exceeding it degrades to fail-fast teardown. Zero or
	// negative selects DefaultMaxRestarts.
	MaxRestarts int
	// Backoff is the delay before the first restart of a replica,
	// doubling per consecutive restart. Zero or negative selects
	// DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the delay. Zero or negative selects
	// DefaultMaxBackoff.
	MaxBackoff time.Duration
	// SnapshotEvery is how many fed inputs pass between a replica's
	// periodic checkpoint snapshots — the replay-ring bound. Zero or
	// negative selects DefaultSnapshotEvery.
	SnapshotEvery int
}

// WithDefaults returns the policy with zero fields replaced by defaults.
func (p Restart) WithDefaults() Restart {
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = DefaultMaxRestarts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.MaxBackoff < p.Backoff {
		p.MaxBackoff = p.Backoff
	}
	if p.SnapshotEvery <= 0 {
		p.SnapshotEvery = DefaultSnapshotEvery
	}
	return p
}

// Recoverable reports whether a replica failure is eligible for supervised
// restart: contained crashes (PanicError) are; build, usage and order
// errors are not — restarting cannot fix a misuse, and masking it would
// hide the bug.
func Recoverable(err error) bool {
	var pe *fault.PanicError
	return errors.As(err, &pe)
}

// Stats aggregates what supervision did during a session.
type Stats struct {
	// Restarts counts successful replica restarts.
	Restarts int
	// ReplayedBatches counts feed slabs replayed across all restarts.
	ReplayedBatches int
	// Exhausted counts replicas whose restart budget ran out (the session
	// then failed fast).
	Exhausted int
	// RestartTime is the cumulative wall time spent rebuilding replicas,
	// excluding backoff sleeps.
	RestartTime time.Duration
}

// Supervisor tracks the per-replica restart budget and backoff state. It is
// shared between the driver (which reads Stats) and the replica runner
// goroutines (which admit and record restarts), so every method is
// mutex-guarded.
type Supervisor struct {
	pol Restart

	mu       sync.Mutex
	restarts []int // per replica, total this session
	stats    Stats
}

// NewSupervisor builds a supervisor for the given replica count.
func NewSupervisor(pol Restart, shards int) *Supervisor {
	return &Supervisor{pol: pol.WithDefaults(), restarts: make([]int, shards)}
}

// Policy returns the effective (defaulted) policy.
func (s *Supervisor) Policy() Restart { return s.pol }

// Admit asks whether the given replica may restart once more. It returns
// the backoff to sleep before the attempt and true, or false when the
// replica's budget is exhausted (the caller then fails fast). Admit charges
// the budget immediately, so a restart that itself crashes cannot retry for
// free.
func (s *Supervisor) Admit(shard int) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.restarts[shard]
	if n >= s.pol.MaxRestarts {
		s.stats.Exhausted++
		return 0, false
	}
	s.restarts[shard] = n + 1
	d := s.pol.Backoff
	for i := 0; i < n && d < s.pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.pol.MaxBackoff {
		d = s.pol.MaxBackoff
	}
	return d, true
}

// RecordRestart accounts one successful restart: how many feed slabs were
// replayed and how long the rebuild took (excluding backoff).
func (s *Supervisor) RecordRestart(shard, replayedBatches int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Restarts++
	s.stats.ReplayedBatches += replayedBatches
	s.stats.RestartTime += d
}

// Stats returns a snapshot of the supervision counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Restarts returns how many times the given replica restarted.
func (s *Supervisor) Restarts(shard int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts[shard]
}
