package chain

import (
	"fmt"
	"sort"
)

// MigrationOp is the kind of a chain-maintenance step (Section 5.3): the
// chain migrates between configurations through merges and splits of
// adjacent sliced joins.
type MigrationOp int

// The two primitive operations.
const (
	// MergeOp removes a slice boundary by merging the slice ending there
	// with its right neighbour.
	MergeOp MigrationOp = iota
	// SplitOp introduces a slice boundary by splitting the slice whose
	// range contains it.
	SplitOp
)

// String names the operation.
func (op MigrationOp) String() string {
	if op == MergeOp {
		return "merge"
	}
	return "split"
}

// MigrationStep is one primitive chain-maintenance operation, identified by
// the window boundary it removes (merge) or introduces (split).
type MigrationStep struct {
	// Op selects merge or split.
	Op MigrationOp
	// Boundary is the affected slice end window, in seconds.
	Boundary float64
}

// String renders the step.
func (s MigrationStep) String() string {
	return fmt.Sprintf("%s@%gs", s.Op, s.Boundary)
}

// PlanMigration computes the minimal sequence of merge and split steps that
// transforms a chain with boundaries `from` into one with boundaries `to`.
// Both lists must be strictly ascending and share the final boundary (the
// largest query window does not change). Merges are emitted before splits so
// intermediate chains never hold more slices than max(len(from), len(to)).
func PlanMigration(from, to []float64) ([]MigrationStep, error) {
	if err := checkBoundaries(from); err != nil {
		return nil, fmt.Errorf("chain: from: %w", err)
	}
	if err := checkBoundaries(to); err != nil {
		return nil, fmt.Errorf("chain: to: %w", err)
	}
	if from[len(from)-1] != to[len(to)-1] {
		return nil, fmt.Errorf("chain: final boundaries differ (%g vs %g)", from[len(from)-1], to[len(to)-1])
	}
	inTo := make(map[float64]bool, len(to))
	for _, b := range to {
		inTo[b] = true
	}
	inFrom := make(map[float64]bool, len(from))
	for _, b := range from {
		inFrom[b] = true
	}
	var steps []MigrationStep
	// Remove boundaries right-to-left so every merge index stays valid on
	// a live chain regardless of application order.
	for i := len(from) - 2; i >= 0; i-- {
		if !inTo[from[i]] {
			steps = append(steps, MigrationStep{Op: MergeOp, Boundary: from[i]})
		}
	}
	for _, b := range to[:len(to)-1] {
		if !inFrom[b] {
			steps = append(steps, MigrationStep{Op: SplitOp, Boundary: b})
		}
	}
	return steps, nil
}

// checkBoundaries validates an ascending boundary list.
func checkBoundaries(bs []float64) error {
	if len(bs) == 0 {
		return fmt.Errorf("empty boundary list")
	}
	if !sort.Float64sAreSorted(bs) {
		return fmt.Errorf("boundaries must be ascending: %v", bs)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] == bs[i-1] {
			return fmt.Errorf("duplicate boundary %g", bs[i])
		}
	}
	if bs[0] <= 0 {
		return fmt.Errorf("boundaries must be positive: %v", bs)
	}
	return nil
}
