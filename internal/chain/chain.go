// Package chain implements the chain build-up algorithms of Sections 5 and 6
// of the State-Slice paper: the Mem-Opt chain (one slice per distinct query
// window, Theorem 3/4: minimal state memory) and the CPU-Opt chain (merge
// adjacent slices to trade routing cost against purge and scheduling
// overhead, found as a shortest path over the slice-merge DAG with
// Dijkstra's algorithm, Section 5.2).
//
// Three solvers compute the CPU-Opt chain — Dijkstra (the paper's choice), a
// topological-order dynamic program, and exhaustive enumeration — and the
// tests require them to agree, mirroring the paper's optimality proof.
package chain

import (
	"container/heap"
	"fmt"
	"math"

	"stateslice/internal/cost"
)

// MemOptEnds returns the slice boundaries of the Mem-Opt chain: every
// distinct query window, in ascending order (Section 5.1).
func MemOptEnds(queries []cost.QuerySpec) []float64 {
	return cost.DistinctWindows(queries)
}

// Result describes an optimized chain.
type Result struct {
	// Ends are the slice end boundaries in ascending order.
	Ends []float64
	// CPU is the modelled CPU cost (comparisons/second) of the chain.
	CPU float64
	// MemoryKB is the modelled state memory of the chain.
	MemoryKB float64
}

// CPUOptEnds finds the slice boundaries minimising the modelled CPU cost
// using Dijkstra's algorithm over the directed acyclic slice-merge graph of
// Figure 14: node i represents window boundary w_i (w_0 = 0), edge (i, j)
// a merged slice covering (w_i, w_j], weighted by cost.EdgeCost. The run is
// O(N^2) in the number of distinct windows, as the paper states.
func CPUOptEnds(queries []cost.QuerySpec, p cost.ChainParams) (*Result, error) {
	if err := cost.ValidateQueries(queries); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bounds := append([]float64{0}, cost.DistinctWindows(queries)...)
	n := len(bounds)

	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[0] = 0
	pq := &nodeHeap{{node: 0, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == n-1 {
			break
		}
		for v := u + 1; v < n; v++ {
			w := cost.EdgeCost(queries, bounds[u], bounds[v], p)
			if d := dist[u] + w; d < dist[v] {
				dist[v] = d
				prev[v] = u
				heap.Push(pq, nodeItem{node: v, dist: d})
			}
		}
	}
	if math.IsInf(dist[n-1], 1) {
		return nil, fmt.Errorf("chain: no path through the slice graph (internal error)")
	}
	var ends []float64
	for v := n - 1; v > 0; v = prev[v] {
		ends = append(ends, bounds[v])
	}
	reverse(ends)
	res := &Result{Ends: ends, CPU: dist[n-1]}
	mem, err := memoryOf(queries, ends, p)
	if err != nil {
		return nil, err
	}
	res.MemoryKB = mem
	return res, nil
}

// CPUOptEndsDP solves the same problem with a dynamic program over the
// topologically ordered boundary nodes — the O(N^2) formulation the
// principle of optimality (Lemma 2) justifies. It exists as an independent
// oracle for the Dijkstra implementation.
func CPUOptEndsDP(queries []cost.QuerySpec, p cost.ChainParams) (*Result, error) {
	if err := cost.ValidateQueries(queries); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bounds := append([]float64{0}, cost.DistinctWindows(queries)...)
	n := len(bounds)
	dist := make([]float64, n)
	prev := make([]int, n)
	for v := 1; v < n; v++ {
		dist[v] = math.Inf(1)
		prev[v] = -1
		for u := 0; u < v; u++ {
			if d := dist[u] + cost.EdgeCost(queries, bounds[u], bounds[v], p); d < dist[v] {
				dist[v] = d
				prev[v] = u
			}
		}
	}
	var ends []float64
	for v := n - 1; v > 0; v = prev[v] {
		ends = append(ends, bounds[v])
	}
	reverse(ends)
	res := &Result{Ends: ends, CPU: dist[n-1]}
	mem, err := memoryOf(queries, ends, p)
	if err != nil {
		return nil, err
	}
	res.MemoryKB = mem
	return res, nil
}

// BruteForceCPUOpt enumerates every possible chain (every subset of the
// distinct windows that contains the largest) and returns the cheapest. It
// is exponential and exists as the optimality oracle for tests, in the
// spirit of the paper's optimality proofs. It refuses more than 20 distinct
// windows.
func BruteForceCPUOpt(queries []cost.QuerySpec, p cost.ChainParams) (*Result, error) {
	if err := cost.ValidateQueries(queries); err != nil {
		return nil, err
	}
	windows := cost.DistinctWindows(queries)
	m := len(windows) - 1 // optional boundaries (the last is mandatory)
	if m > 20 {
		return nil, fmt.Errorf("chain: brute force limited to 20 distinct windows, got %d", m+1)
	}
	best := &Result{CPU: math.Inf(1)}
	for mask := 0; mask < 1<<m; mask++ {
		var ends []float64
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				ends = append(ends, windows[i])
			}
		}
		ends = append(ends, windows[m])
		c, err := cost.ChainCost(queries, ends, p)
		if err != nil {
			return nil, err
		}
		if c.CPU < best.CPU {
			best = &Result{Ends: ends, CPU: c.CPU, MemoryKB: c.MemoryKB}
		}
	}
	return best, nil
}

// memoryOf evaluates the chain memory model for a boundary list.
func memoryOf(queries []cost.QuerySpec, ends []float64, p cost.ChainParams) (float64, error) {
	c, err := cost.ChainCost(queries, ends, p)
	if err != nil {
		return 0, err
	}
	return c.MemoryKB, nil
}

func reverse(xs []float64) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// nodeItem and nodeHeap implement the Dijkstra priority queue.
type nodeItem struct {
	node int
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
