package chain

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"stateslice/internal/cost"
)

func cp() cost.ChainParams {
	return cost.ChainParams{LambdaA: 50, LambdaB: 50, TupleKB: 0.1, SelJoin: 0.025, Csys: 3}
}

func TestMemOptEnds(t *testing.T) {
	qs := []cost.QuerySpec{
		{Window: 5, Sel: 1}, {Window: 5, Sel: 0.5}, {Window: 10, Sel: 1}, {Window: 30, Sel: 1},
	}
	got := MemOptEnds(qs)
	want := []float64{5, 10, 30}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MemOptEnds = %v, want %v", got, want)
	}
}

func TestCPUOptAgainstBruteForce(t *testing.T) {
	// The optimality claim of Section 5.2: Dijkstra over the slice-merge
	// DAG finds the minimum-CPU chain. Compare all three solvers on
	// randomized workloads.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		var qs []cost.QuerySpec
		w := 0.0
		for i := 0; i < n; i++ {
			w += 0.5 + 10*rng.Float64()
			sel := 1.0
			if rng.Float64() < 0.5 {
				sel = 0.05 + 0.9*rng.Float64()
			}
			qs = append(qs, cost.QuerySpec{Window: w, Sel: sel})
		}
		p := cost.ChainParams{
			LambdaA: 5 + 100*rng.Float64(),
			LambdaB: 5 + 100*rng.Float64(),
			TupleKB: 0.1,
			SelJoin: rng.Float64() * 0.5,
			Csys:    rng.Float64() * 10,
		}
		dij, err := CPUOptEnds(qs, p)
		if err != nil {
			t.Fatalf("trial %d: dijkstra: %v", trial, err)
		}
		dp, err := CPUOptEndsDP(qs, p)
		if err != nil {
			t.Fatalf("trial %d: dp: %v", trial, err)
		}
		bf, err := BruteForceCPUOpt(qs, p)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		if math.Abs(dij.CPU-bf.CPU) > 1e-6*math.Max(1, bf.CPU) {
			t.Errorf("trial %d: dijkstra cost %g != brute force %g (ends %v vs %v)",
				trial, dij.CPU, bf.CPU, dij.Ends, bf.Ends)
		}
		if math.Abs(dp.CPU-bf.CPU) > 1e-6*math.Max(1, bf.CPU) {
			t.Errorf("trial %d: dp cost %g != brute force %g", trial, dp.CPU, bf.CPU)
		}
		// The chain cost of the returned ends must equal the reported
		// optimum (the path reconstruction is consistent).
		chk, err := cost.ChainCost(qs, dij.Ends, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(chk.CPU-dij.CPU) > 1e-6*math.Max(1, dij.CPU) {
			t.Errorf("trial %d: reconstructed chain costs %g, reported %g", trial, chk.CPU, dij.CPU)
		}
	}
}

func TestCPUOptNeverWorseThanMemOptOrFullMerge(t *testing.T) {
	qs := []cost.QuerySpec{
		{Window: 1, Sel: 1}, {Window: 2, Sel: 1}, {Window: 3, Sel: 1},
		{Window: 25, Sel: 1}, {Window: 27, Sel: 1}, {Window: 30, Sel: 1},
	}
	p := cp()
	opt, err := CPUOptEnds(qs, p)
	if err != nil {
		t.Fatal(err)
	}
	memOpt, err := cost.ChainCost(qs, MemOptEnds(qs), p)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := cost.ChainCost(qs, []float64{30}, p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CPU > memOpt.CPU+1e-9 {
		t.Errorf("CPU-Opt %g worse than Mem-Opt %g", opt.CPU, memOpt.CPU)
	}
	if opt.CPU > merged.CPU+1e-9 {
		t.Errorf("CPU-Opt %g worse than full merge %g", opt.CPU, merged.CPU)
	}
}

func TestCPUOptMergesSkewedWindows(t *testing.T) {
	// Section 7.3: for skewed window distributions with low join
	// selectivity, CPU-Opt merges the clustered small windows; for
	// high-routing-cost settings it keeps them sliced. With a large
	// Csys and tiny S1, tightly clustered windows must merge.
	qs := []cost.QuerySpec{
		{Window: 1, Sel: 1}, {Window: 1.1, Sel: 1}, {Window: 1.2, Sel: 1},
		{Window: 30, Sel: 1},
	}
	p := cp()
	p.Csys = 20
	p.SelJoin = 0.001
	opt, err := CPUOptEnds(qs, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Ends) >= 4 {
		t.Errorf("expected merging of clustered windows, got ends %v", opt.Ends)
	}
	// With zero overhead and huge join selectivity, routing dominates:
	// the chain must stay fully sliced.
	p.Csys = 0
	p.SelJoin = 1
	opt, err = CPUOptEnds(qs, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Ends) != 4 {
		t.Errorf("expected fully sliced chain, got ends %v", opt.Ends)
	}
}

func TestCPUOptValidation(t *testing.T) {
	if _, err := CPUOptEnds(nil, cp()); err == nil {
		t.Error("empty workload must fail")
	}
	bad := cp()
	bad.LambdaA = 0
	if _, err := CPUOptEnds([]cost.QuerySpec{{Window: 1, Sel: 1}}, bad); err == nil {
		t.Error("invalid params must fail")
	}
	if _, err := BruteForceCPUOpt(nil, cp()); err == nil {
		t.Error("brute force with empty workload must fail")
	}
	var many []cost.QuerySpec
	for i := 1; i <= 25; i++ {
		many = append(many, cost.QuerySpec{Window: float64(i), Sel: 1})
	}
	if _, err := BruteForceCPUOpt(many, cp()); err == nil {
		t.Error("brute force must refuse huge workloads")
	}
}

func TestPlanMigration(t *testing.T) {
	steps, err := PlanMigration([]float64{5, 10, 20, 30}, []float64{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := []MigrationStep{{MergeOp, 20}, {MergeOp, 5}}
	if !reflect.DeepEqual(steps, want) {
		t.Errorf("steps = %v, want %v", steps, want)
	}
	steps, err = PlanMigration([]float64{30}, []float64{5, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	want = []MigrationStep{{SplitOp, 5}, {SplitOp, 10}}
	if !reflect.DeepEqual(steps, want) {
		t.Errorf("steps = %v, want %v", steps, want)
	}
	steps, err = PlanMigration([]float64{5, 30}, []float64{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	want = []MigrationStep{{MergeOp, 5}, {SplitOp, 10}}
	if !reflect.DeepEqual(steps, want) {
		t.Errorf("steps = %v, want %v", steps, want)
	}
	if got, _ := PlanMigration([]float64{5, 30}, []float64{5, 30}); len(got) != 0 {
		t.Errorf("identity migration must be empty, got %v", got)
	}
}

func TestPlanMigrationValidation(t *testing.T) {
	cases := [][2][]float64{
		{{}, {10}},
		{{10}, {}},
		{{10, 5}, {10}},
		{{5, 5, 10}, {10}},
		{{-1, 10}, {10}},
		{{5, 10}, {5, 20}}, // final boundaries differ
	}
	for i, c := range cases {
		if _, err := PlanMigration(c[0], c[1]); err == nil {
			t.Errorf("case %d (%v -> %v): expected error", i, c[0], c[1])
		}
	}
}

func TestMigrationOpString(t *testing.T) {
	if MergeOp.String() != "merge" || SplitOp.String() != "split" {
		t.Error("op names wrong")
	}
	if s := (MigrationStep{SplitOp, 2.5}).String(); s != "split@2.5s" {
		t.Errorf("step string = %q", s)
	}
}
