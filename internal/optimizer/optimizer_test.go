package optimizer

import (
	"strings"
	"testing"

	"stateslice/internal/chain"
	"stateslice/internal/cost"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// testParams is a cost model where merging matters: high Csys makes extra
// slices expensive, so CPU-Opt and Mem-Opt genuinely diverge on some
// workloads.
var testParams = cost.ChainParams{LambdaA: 50, LambdaB: 50, TupleKB: 0.1, SelJoin: 0.1, Csys: 4}

func twoQueryWorkload() plan.Workload {
	return plan.Workload{
		Queries: []plan.Query{
			{Window: stream.Seconds(1)},
			{Window: stream.Seconds(60), Filter: stream.Threshold{S: 0.01}},
		},
		Join: stream.Equijoin{},
	}
}

func compile(t *testing.T, l *Logical, mode Mode) *Logical {
	t.Helper()
	if err := Compile(l, Preset(mode)); err != nil {
		t.Fatalf("Compile(%s): %v", mode, err)
	}
	return l
}

func TestPassOrder(t *testing.T) {
	l := compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams}, ChainMem)
	var order []string
	for _, n := range l.Trace {
		if len(order) == 0 || order[len(order)-1] != n.Pass {
			order = append(order, n.Pass)
		}
	}
	want := []string{"normalize", "placement", "sharing", "shards", "lower"}
	if len(order) != len(want) {
		t.Fatalf("pass order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pass order %v, want %v", order, want)
		}
	}
}

func TestChainMemDefaults(t *testing.T) {
	l := compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams}, ChainMem)
	if l.Sharing != ChainMem {
		t.Errorf("sharing %s, want mem-opt", l.Sharing)
	}
	if l.Ends != nil {
		t.Errorf("mem-opt without pinned ends keeps Ends nil (the builder derives distinct windows), got %v", l.Ends)
	}
	if l.ChainCost == nil || l.ChainCost.CPU <= 0 {
		t.Errorf("chain cost not modelled: %+v", l.ChainCost)
	}
	if l.Shards != 0 {
		t.Errorf("no shards requested, got %d", l.Shards)
	}
}

func TestChainCPUEndsMatchDijkstra(t *testing.T) {
	w := twoQueryWorkload()
	l := compile(t, &Logical{Workload: w, Params: testParams}, ChainCPU)
	res, err := chain.CPUOptEnds(workload.Specs(w), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Ends) != len(res.Ends) {
		t.Fatalf("ends %v, Dijkstra found %v", l.Ends, res.Ends)
	}
	for i, e := range res.Ends {
		if l.Ends[i] != stream.Seconds(e) {
			t.Fatalf("ends %v, Dijkstra found %v", l.Ends, res.Ends)
		}
	}
	if l.ChainCost == nil || l.ChainCost.CPU != res.CPU {
		t.Errorf("chain cost %+v, want CPU %g", l.ChainCost, res.CPU)
	}
}

// TestChainAutoPicksCheaper pins the Auto contract: the resolved sharing is
// whichever layout the model prices cheaper in CPU, with ties to Mem-Opt.
func TestChainAutoPicksCheaper(t *testing.T) {
	// Many close windows under a high Csys: merging wins, CPU-Opt diverges
	// from Mem-Opt.
	var w plan.Workload
	w.Join = stream.Equijoin{}
	for i := 1; i <= 8; i++ {
		w.Queries = append(w.Queries, plan.Query{Window: stream.Seconds(float64(i))})
	}
	specs := workload.Specs(w)
	memCost, err := cost.ChainCost(specs, chain.MemOptEnds(specs), testParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chain.CPUOptEnds(specs, testParams)
	if err != nil {
		t.Fatal(err)
	}
	wantMode := ChainMem
	if res.CPU < memCost.CPU {
		wantMode = ChainCPU
	}
	l := compile(t, &Logical{Workload: w, Params: testParams}, ChainAuto)
	if l.Sharing != wantMode {
		t.Errorf("auto resolved to %s; model prices mem-opt at %g, cpu-opt at %g", l.Sharing, memCost.CPU, res.CPU)
	}
	if l.Sharing == ChainAuto {
		t.Error("auto must resolve to a concrete layout")
	}
	if !traceContains(l, "sharing", "auto picked") {
		t.Errorf("trace does not record the auto choice:\n%s", RenderTrace(l.Trace))
	}
}

func TestPinnedEnds(t *testing.T) {
	pin := []stream.Time{stream.Seconds(1), stream.Seconds(60)}
	l := compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams, PinnedEnds: pin}, ChainMem)
	if len(l.Ends) != 2 || l.Ends[0] != pin[0] || l.Ends[1] != pin[1] {
		t.Errorf("ends %v, want the pinned %v", l.Ends, pin)
	}
	if !traceContains(l, "sharing", "pinned") {
		t.Errorf("trace does not mention pinning:\n%s", RenderTrace(l.Trace))
	}
}

func TestPlacementSurvival(t *testing.T) {
	l := compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams}, ChainMem)
	// Q1 (1s) is unfiltered, so survival at chain entry is 1; past 1s only
	// the filtered Q2 remains, so survival drops to its selectivity.
	if !traceContains(l, "placement", "σ'(0s)=1") || !traceContains(l, "placement", "σ'(1s)=0.01") {
		t.Errorf("survival trace wrong:\n%s", RenderTrace(l.Trace))
	}
	if !traceContains(l, "placement", "lineage-marked") {
		t.Errorf("placement does not record lineage:\n%s", RenderTrace(l.Trace))
	}
	l = compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams, DisableLineage: true}, ChainMem)
	if !traceContains(l, "placement", "lineage disabled") {
		t.Errorf("placement does not record the lineage ablation:\n%s", RenderTrace(l.Trace))
	}
}

func TestBaselineModes(t *testing.T) {
	for mode, want := range map[Mode]string{
		ModePullUp:   "pull-up baseline",
		ModePushDown: "push-down baseline",
		ModeUnshared: "one independent plan per query",
	} {
		l := compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams}, mode)
		if l.Sharing != mode {
			t.Errorf("%s: sharing %s", mode, l.Sharing)
		}
		if l.Ends != nil {
			t.Errorf("%s: baselines have no chain, got ends %v", mode, l.Ends)
		}
		if !traceContains(l, "sharing", want) {
			t.Errorf("%s: trace lacks %q:\n%s", mode, want, RenderTrace(l.Trace))
		}
	}
}

func TestShardsHash(t *testing.T) {
	l := compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams, RequestedShards: 4}, ChainMem)
	if l.Shards != 4 || l.UseKeyRange {
		t.Errorf("shards %d, useKeyRange %v; want 4 hash-partitioned", l.Shards, l.UseKeyRange)
	}
	if !traceContains(l, "shards", "hash-partitioned") {
		t.Errorf("trace lacks the partitioner:\n%s", RenderTrace(l.Trace))
	}
}

func TestShardsBandRange(t *testing.T) {
	w := twoQueryWorkload()
	w.Join = stream.BandJoin{B: 2}
	l := compile(t, &Logical{
		Workload: w, Params: testParams,
		RequestedShards: 3, KeyMin: -10, KeyMax: 119, KeyRangeDeclared: true,
	}, ChainMem)
	if l.Shards != 3 || !l.UseKeyRange {
		t.Errorf("shards %d, useKeyRange %v; want 3 range-partitioned", l.Shards, l.UseKeyRange)
	}
	if !traceContains(l, "shards", "-10..119") || !traceContains(l, "shards", "band-2") {
		t.Errorf("trace lacks the range detail:\n%s", RenderTrace(l.Trace))
	}
}

func TestAutoShards(t *testing.T) {
	cases := []struct {
		name     string
		join     stream.JoinPredicate
		min, max int64
		declared bool
		procs    int
		want     int
	}{
		{"procs-bound", stream.Equijoin{}, 0, 0, false, 8, 8},
		{"ceiling-16", stream.Equijoin{}, 0, 0, false, 64, 16},
		{"domain-caps-equi", stream.Equijoin{}, 0, 3, true, 8, 4},
		{"band-divides-by-4B", stream.BandJoin{B: 1}, 0, 119, true, 64, 16}, // 120/4 = 30 > 16
		{"band-small-domain", stream.BandJoin{B: 5}, 0, 39, true, 8, 2},     // 40/20 = 2
		{"band-at-least-one", stream.BandJoin{B: 50}, 0, 9, true, 8, 1},
	}
	for _, c := range cases {
		w := twoQueryWorkload()
		w.Join = c.join
		l := compile(t, &Logical{
			Workload: w, Params: testParams, AutoShards: true,
			KeyMin: c.min, KeyMax: c.max, KeyRangeDeclared: c.declared, MaxProcs: c.procs,
		}, ChainMem)
		if l.Shards != c.want {
			t.Errorf("%s: inferred p=%d, want %d", c.name, l.Shards, c.want)
		}
	}
}

func TestNormalizeRejectsInvalid(t *testing.T) {
	w := plan.Workload{
		Queries: []plan.Query{{Window: stream.Seconds(60)}, {Window: stream.Seconds(1)}},
		Join:    stream.Equijoin{},
	}
	err := Compile(&Logical{Workload: w, Params: testParams}, Preset(ChainMem))
	if err == nil || !strings.Contains(err.Error(), "normalize pass") {
		t.Fatalf("unsorted workload error %v, want a normalize-pass failure", err)
	}
}

func TestLowerTargets(t *testing.T) {
	l := compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams}, ChainMem)
	if !traceContains(l, "lower", "sequential engine") {
		t.Errorf("lower trace:\n%s", RenderTrace(l.Trace))
	}
	l = compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams, RequestedShards: 4}, ChainMem)
	if !traceContains(l, "lower", "sharded executor (p=4)") {
		t.Errorf("lower trace:\n%s", RenderTrace(l.Trace))
	}
	l = compile(t, &Logical{Workload: twoQueryWorkload(), Params: testParams, Concurrent: true}, ChainMem)
	if !traceContains(l, "lower", "concurrent slice pipeline") {
		t.Errorf("lower trace:\n%s", RenderTrace(l.Trace))
	}
}

func TestModeStrings(t *testing.T) {
	for mode, want := range map[Mode]string{
		ChainMem: "mem-opt", ChainCPU: "cpu-opt", ChainAuto: "auto",
		ModePullUp: "pull-up", ModePushDown: "push-down", ModeUnshared: "unshared",
	} {
		if got := mode.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

func traceContains(l *Logical, pass, substr string) bool {
	for _, n := range l.Trace {
		if n.Pass == pass && strings.Contains(n.Detail, substr) {
			return true
		}
	}
	return false
}
