package optimizer

import (
	"fmt"
	"strconv"
	"strings"

	"stateslice/internal/chain"
	"stateslice/internal/cost"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// normalizePass checks the workload invariants every later pass assumes
// (ascending windows, one join, at most 64 queries) and records the query-set
// shape the decisions are about.
func normalizePass() Pass {
	return Pass{Name: "normalize", Run: func(l *Logical) error {
		if err := l.Workload.Validate(); err != nil {
			return err
		}
		filtered := 0
		for _, q := range l.Workload.Queries {
			if q.HasFilter() || q.HasFilterB() {
				filtered++
			}
		}
		l.note("normalize", "%d queries over one shared join [%s], %d distinct windows, %d with selections",
			len(l.Workload.Queries), l.Workload.Join, len(l.Workload.DistinctWindows()), filtered)
		return nil
	}}
}

// placementPass decides where each selection predicate runs relative to the
// shared join — the Section 6 rewrite. For chains the selections move below
// the join into the slice boundaries (the paper's push-down with lineage);
// the baselines place them where their sharing shape dictates.
func placementPass(mode Mode) Pass {
	return Pass{Name: "placement", Run: func(l *Logical) error {
		if !l.Workload.AnyFilter() {
			l.note("placement", "no selections to place (all queries unfiltered)")
			return nil
		}
		switch {
		case mode.Chain():
			if l.DisableLineage {
				l.note("placement", "selections pushed below the shared join, re-evaluated per slice (lineage disabled)")
			} else {
				l.note("placement", "selections pushed below the shared join, lineage-marked once at chain entry")
			}
			specs := workload.Specs(l.Workload)
			dw := cost.DistinctWindows(specs)
			starts := append([]float64{0}, dw[:len(dw)-1]...)
			parts := make([]string, len(starts))
			for i, s := range starts {
				parts[i] = fmt.Sprintf("σ'(%s)=%s", fmtSeconds(s), fmtFloat(cost.Survival(specs, s)))
			}
			l.note("placement", "pushed-down survival by slice start: %s", strings.Join(parts, ", "))
		case mode == ModePullUp:
			l.note("placement", "selections pulled above the shared join (evaluated on join results)")
		case mode == ModePushDown:
			l.note("placement", "shared selection applied below the join on the full input streams")
		default:
			l.note("placement", "each query keeps its private selections (no sharing)")
		}
		return nil
	}}
}

// sharingPass picks the slice layout of a chain mode by driving the cost
// model: Mem-Opt's distinct windows, CPU-Opt's Dijkstra merge, or — for
// ChainAuto — whichever of the two the model prices cheaper in comparisons.
// Caller-pinned boundaries short-circuit the choice; the chain builder, not
// this pass, validates them, so pinning keeps its original error text.
func sharingPass(mode Mode) Pass {
	return Pass{Name: "sharing", Run: func(l *Logical) error {
		specs := workload.Specs(l.Workload)
		if len(l.PinnedEnds) > 0 {
			l.Sharing = ChainMem
			l.Ends = l.PinnedEnds
			l.note("sharing", "slice boundaries pinned by the caller: %s", fmtTimes(l.PinnedEnds))
			if c, err := cost.ChainCost(specs, timesToSeconds(l.PinnedEnds), l.Params); err == nil {
				l.ChainCost = &c
				l.note("sharing", "modelled chain cost: %s", fmtCost(c))
			}
			return nil
		}
		memEnds := chain.MemOptEnds(specs)
		memCost, memErr := cost.ChainCost(specs, memEnds, l.Params)
		switch mode {
		case ChainMem:
			l.Sharing = ChainMem
			l.note("sharing", "mem-opt: one slice per distinct window (%d slices: %s)", len(memEnds), fmtFloats(memEnds))
			if memErr == nil {
				l.ChainCost = &memCost
				l.note("sharing", "modelled chain cost: %s", fmtCost(memCost))
			}
		case ChainCPU:
			res, err := chain.CPUOptEnds(specs, l.Params)
			if err != nil {
				return err
			}
			l.Sharing = ChainCPU
			l.Ends = workload.EndsToTimes(res.Ends)
			c := cost.Cost{CPU: res.CPU, MemoryKB: res.MemoryKB}
			l.ChainCost = &c
			l.note("sharing", "cpu-opt: Dijkstra merged %d distinct windows into %d slices (%s)", len(memEnds), len(res.Ends), fmtFloats(res.Ends))
			l.note("sharing", "modelled chain cost: %s", fmtCost(c))
		case ChainAuto:
			if memErr != nil {
				return memErr
			}
			res, err := chain.CPUOptEnds(specs, l.Params)
			if err != nil {
				return err
			}
			l.note("sharing", "auto: mem-opt CPU %s (%d slices) vs cpu-opt CPU %s (%d slices)",
				fmtFloat(memCost.CPU), len(memEnds), fmtFloat(res.CPU), len(res.Ends))
			if res.CPU < memCost.CPU {
				l.Sharing = ChainCPU
				l.Ends = workload.EndsToTimes(res.Ends)
				c := cost.Cost{CPU: res.CPU, MemoryKB: res.MemoryKB}
				l.ChainCost = &c
				l.note("sharing", "auto picked cpu-opt (cheaper modelled CPU); chain: %s", fmtFloats(res.Ends))
			} else {
				l.Sharing = ChainMem
				l.ChainCost = &memCost
				l.note("sharing", "auto picked mem-opt (modelled CPU no worse; ties favor the smaller state)")
			}
		default:
			return fmt.Errorf("mode %s is not a chain", mode)
		}
		return nil
	}}
}

// noSharingPass records the baseline sharing decision the mode names; there
// is nothing to optimize, but the trace keeps the same shape as a chain's so
// Explain output stays uniform across strategies.
func noSharingPass(mode Mode) Pass {
	return Pass{Name: "sharing", Run: func(l *Logical) error {
		l.Sharing = mode
		switch mode {
		case ModePullUp:
			l.note("sharing", "pull-up baseline: one shared join sized to the largest window")
		case ModePushDown:
			l.note("sharing", "push-down baseline: shared selection feeding per-partition joins")
		case ModeUnshared:
			l.note("sharing", "unshared: one independent plan per query, no state sharing")
		default:
			return fmt.Errorf("mode %s is a chain", mode)
		}
		return nil
	}}
}

// shardsPass resolves the shard count and key range: an explicit request
// wins, AutoShards infers a count from the host parallelism and the declared
// key domain, and the partitioning scheme follows from the join's
// capabilities (hash for key-partitionable joins, contiguous ranges with
// boundary replication for band joins). The pass records intent only — the
// sharded builder stays the validator, so rejected combinations keep their
// original error text.
func shardsPass() Pass {
	return Pass{Name: "shards", Run: func(l *Logical) error {
		if l.Concurrent {
			l.note("shards", "concurrent pipeline: one goroutine per slice, no key partitioning")
			return nil
		}
		p := l.RequestedShards
		if p == 0 && l.AutoShards {
			p = l.inferShards()
			l.note("shards", "auto-inferred shard count p=%d (host parallelism %d, ceiling 16, key-domain cap when declared)", p, l.MaxProcs)
		}
		if p == 0 {
			l.note("shards", "sequential: no shards requested")
			return nil
		}
		l.Shards = p
		band, isBand := stream.PartitionableByBand(l.Workload.Join)
		switch {
		case stream.PartitionableByKey(l.Workload.Join):
			l.note("shards", "p=%d replicas, hash-partitioned by key", p)
			if l.KeyRangeDeclared {
				l.note("shards", "declared key domain %d..%d informs the shard count only; hash partitioning ignores it at run time", l.KeyMin, l.KeyMax)
			}
		case isBand && l.KeyRangeDeclared:
			l.UseKeyRange = true
			l.note("shards", "p=%d replicas, contiguous ranges over keys %d..%d with band-%d boundary replication", p, l.KeyMin, l.KeyMax, band)
		case isBand:
			l.note("shards", "band join lacks a declared key domain (KEYS / WithKeyRange); the sharded build will reject it")
		default:
			l.note("shards", "join is not partitionable; the sharded build will reject it")
		}
		return nil
	}}
}

// inferShards resolves AutoShards: the host parallelism, capped at 16 (the
// assembly layer's fan-in sweet spot) and by the declared key domain — a
// band join needs about 4B keys per shard before boundary replication stops
// dominating, an equijoin just needs one key per shard.
func (l *Logical) inferShards() int {
	p := l.MaxProcs
	if p < 1 {
		p = 1
	}
	if p > 16 {
		p = 16
	}
	if !l.KeyRangeDeclared {
		return p
	}
	width := l.KeyMax - l.KeyMin + 1
	if width <= 0 {
		return p // domain spans nearly the whole int64 line; no effective cap
	}
	limit := width
	if b, ok := stream.PartitionableByBand(l.Workload.Join); ok && !stream.PartitionableByKey(l.Workload.Join) {
		denom := 4 * b
		if denom < 1 {
			denom = 1
		}
		limit = width / denom
		if limit < 1 {
			limit = 1
		}
	}
	if limit < int64(p) {
		p = int(limit)
	}
	return p
}

// lowerPass records the physical lowering target the decisions add up to:
// which executor runs the resolved sharing shape.
func lowerPass() Pass {
	return Pass{Name: "lower", Run: func(l *Logical) error {
		target := "sequential engine"
		switch {
		case l.Concurrent:
			target = "concurrent slice pipeline"
		case l.Shards > 0:
			target = fmt.Sprintf("sharded executor (p=%d)", l.Shards)
		}
		l.note("lower", "physical plan: %s via the %s", l.Sharing, target)
		return nil
	}}
}

// RenderTrace formats a pass trace as indented lines for Explain output.
func RenderTrace(notes []Note) string {
	var b strings.Builder
	for _, n := range notes {
		fmt.Fprintf(&b, "    %-10s %s\n", n.Pass+":", n.Detail)
	}
	return b.String()
}

// fmtSeconds renders a boundary in seconds, compactly.
func fmtSeconds(s float64) string { return fmtFloat(s) + "s" }

// fmtFloat renders a float to six significant digits — traces are for
// reading, not round-tripping, and full precision turns 1-0.99 into
// 0.010000000000000009.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// fmtFloats renders a boundary list in seconds.
func fmtFloats(ends []float64) string {
	parts := make([]string, len(ends))
	for i, e := range ends {
		parts[i] = fmtSeconds(e)
	}
	return strings.Join(parts, ", ")
}

// fmtTimes renders a stream-time boundary list in seconds.
func fmtTimes(ends []stream.Time) string {
	return fmtFloats(timesToSeconds(ends))
}

// timesToSeconds converts stream times to cost-model seconds.
func timesToSeconds(ends []stream.Time) []float64 {
	out := make([]float64, len(ends))
	for i, e := range ends {
		out[i] = e.ToSeconds()
	}
	return out
}

// fmtCost renders a modelled cost.
func fmtCost(c cost.Cost) string {
	return fmt.Sprintf("%s comparisons/s, %s KB state", fmtFloat(c.CPU), fmtFloat(c.MemoryKB))
}
