// Package optimizer compiles a logical workload into the physical recipe a
// Build call executes, through an explicit pipeline of named passes over one
// logical-plan IR — the spine both the Go API (hand-built Workload values)
// and the SliceQL front-end (parsed query sets) share:
//
//	normalize          check the chain-order invariants, summarize the set
//	placement          decide where each selection runs (pushdown between
//	                   slices with lineage, pulled above the join, shared
//	                   below it, or private per query)
//	sharing            pick the slice layout cost-wise: Mem-Opt distinct
//	                   windows, CPU-Opt Dijkstra merge, or the cheaper of
//	                   the two (ChainAuto) — driving internal/cost and
//	                   internal/chain directly
//	shards             resolve the shard count and key range from the
//	                   explicit request or the declared key domain
//	lower              record the physical lowering target
//
// Every pass appends Notes to the Logical's Trace; Plan.Explain renders the
// trace, so what each pass decided — pushdown placements, the sharing choice
// with its cost estimate, the inferred shard count and key range — is
// inspectable on every compiled plan. A Strategy in the public API is
// nothing but a preset pass list (Preset); parsed and hand-built workloads
// therefore compile through identical code and produce identical traces.
package optimizer

import (
	"fmt"

	"stateslice/internal/cost"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Mode selects the preset pass list — the optimizer-side image of the public
// Strategy enum, plus ChainAuto, the cost-chosen chain the enum cannot
// express.
type Mode int

const (
	// ChainMem pins the memory-optimal chain: one slice per distinct
	// window.
	ChainMem Mode = iota
	// ChainCPU pins the CPU-optimal chain: slices merged by Dijkstra's
	// algorithm over the slice-merge graph.
	ChainCPU
	// ChainAuto lets the sharing pass pick whichever chain the cost model
	// prices cheaper in comparisons (ties go to Mem-Opt, the smaller
	// state).
	ChainAuto
	// ModePullUp is the naive shared baseline with selection pull-up.
	ModePullUp
	// ModePushDown is the stream-partition baseline with selection
	// push-down.
	ModePushDown
	// ModeUnshared is one independent plan per query.
	ModeUnshared
)

// String names the mode as the trace renders it.
func (m Mode) String() string {
	switch m {
	case ChainMem:
		return "mem-opt"
	case ChainCPU:
		return "cpu-opt"
	case ChainAuto:
		return "auto"
	case ModePullUp:
		return "pull-up"
	case ModePushDown:
		return "push-down"
	case ModeUnshared:
		return "unshared"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Chain reports whether the mode compiles to a state-slice chain.
func (m Mode) Chain() bool { return m == ChainMem || m == ChainCPU || m == ChainAuto }

// Logical is the IR the passes rewrite: the normalized workload, the
// front-end declarations and build requests that parameterize the decisions,
// and the decision fields the passes fill in. One Logical value flows
// through one Compile call.
type Logical struct {
	// Workload is the query set, already in chain order (ascending
	// windows) — normalize rejects anything else.
	Workload plan.Workload
	// Params is the analytic cost model driving the sharing pass.
	Params cost.ChainParams

	// PinnedEnds pins explicit slice boundaries (WithEnds); valid only
	// with ChainMem, where it overrides the distinct-window layout.
	PinnedEnds []stream.Time
	// RequestedShards is the explicit shard request (WithShards); 0 means
	// none requested.
	RequestedShards int
	// AutoShards asks the shards pass to infer the count from the
	// declared key domain and the host's parallelism.
	AutoShards bool
	// KeyMin and KeyMax declare the inclusive key domain (KEYS or
	// WithKeyRange); meaningful when KeyRangeDeclared.
	KeyMin, KeyMax int64
	// KeyRangeDeclared reports whether a key domain was declared.
	KeyRangeDeclared bool
	// MaxProcs is the host parallelism AutoShards resolves against
	// (usually runtime.GOMAXPROCS(0)); it is a field so tests pin it.
	MaxProcs int
	// DisableLineage selects the re-evaluation ablation instead of
	// lineage marks for pushed-down selections (WithoutLineage).
	DisableLineage bool
	// Concurrent selects the one-goroutine-per-slice pipeline executor
	// (WithConcurrency).
	Concurrent bool

	// Sharing is the resolved sharing decision: ChainMem or ChainCPU for
	// chain modes (never ChainAuto after the sharing pass), the baseline
	// mode otherwise.
	Sharing Mode
	// Ends are the chosen slice boundaries of a chain plan (nil for
	// baselines, and nil for ChainMem without pinned ends, whose
	// distinct-window layout the chain builder derives itself).
	Ends []stream.Time
	// ChainCost is the modelled cost of the chosen chain layout, when the
	// sharing pass could price it.
	ChainCost *cost.Cost
	// Shards is the resolved shard count; 0 means sequential (or the
	// concurrent pipeline when Concurrent is set).
	Shards int
	// UseKeyRange reports whether lowering passes the declared key range
	// to the band partitioner.
	UseKeyRange bool

	// Trace accumulates one or more notes per executed pass.
	Trace []Note
}

// Note is one trace line: which pass, what it decided.
type Note struct {
	// Pass is the pass name.
	Pass string
	// Detail is the single-line decision record.
	Detail string
}

// note appends a trace note.
func (l *Logical) note(pass, format string, args ...any) {
	l.Trace = append(l.Trace, Note{Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Pass is one named rewrite over the logical IR.
type Pass struct {
	// Name labels the pass in traces and errors.
	Name string
	// Run rewrites the IR, appending trace notes.
	Run func(*Logical) error
}

// Preset returns the pass list of a mode — the compilation pipeline the
// public Strategy enum is a name for.
func Preset(m Mode) []Pass {
	passes := []Pass{normalizePass(), placementPass(m)}
	if m.Chain() {
		passes = append(passes, sharingPass(m))
	} else {
		passes = append(passes, noSharingPass(m))
	}
	passes = append(passes, shardsPass(), lowerPass())
	return passes
}

// Compile runs the pass list over the IR in order, stopping at the first
// failing pass.
func Compile(l *Logical, passes []Pass) error {
	for _, p := range passes {
		if err := p.Run(l); err != nil {
			return fmt.Errorf("optimizer: %s pass: %w", p.Name, err)
		}
	}
	return nil
}
