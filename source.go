package stateslice

import "stateslice/internal/stream"

// Source produces input tuples incrementally, in global timestamp order.
// Plans consume sources one tuple at a time, so inputs may be unbounded —
// a live channel, an incremental generator — without the whole workload
// ever being materialized. Next returns io.EOF when the source is
// exhausted.
type Source = stream.Source

// SliceSource adapts a pre-materialized batch to the Source interface.
func SliceSource(tuples []*Tuple) Source { return stream.NewSliceSource(tuples) }

// ChannelSource adapts a tuple channel to the Source interface; the source
// ends when the channel is closed. Nil tuples are skipped, so producers may
// send them as keep-alives.
func ChannelSource(ch <-chan *Tuple) Source { return stream.NewChanSource(ch) }

// GeneratorSource streams the synthetic Poisson workload one tuple at a
// time. It yields exactly the sequence Generate materializes for the same
// configuration, so streaming and batch runs are comparable tuple for
// tuple.
func GeneratorSource(cfg GeneratorConfig) (Source, error) { return stream.NewGeneratorSource(cfg) }

// CollectSource drains a source into a batch — handy for feeding several
// plans the same input or for bridging to the deprecated batch APIs.
func CollectSource(src Source) ([]*Tuple, error) { return stream.Collect(src) }

// RetrySource wraps a Source so transient pull failures — a flaky network
// producer, a timed-out fetch, even a panicking Next — retry with
// exponential backoff and bounded jitter instead of aborting the consuming
// session. io.EOF and Terminal-wrapped errors end the stream immediately;
// with RetryPolicy.Timeout set, each attempt is bounded and a late success
// is still delivered, never dropped. See NewRetrySource.
type RetrySource = stream.RetrySource

// RetryPolicy tunes a RetrySource: attempt budget, backoff shape, jitter,
// per-attempt timeout, and the transient-vs-terminal classifier. The zero
// value is usable.
type RetryPolicy = stream.RetryPolicy

// ErrPullTimeout is the transient error a timed-out pull attempt records; it
// surfaces (wrapped) only when the attempt budget is exhausted before any
// attempt completes.
var ErrPullTimeout = stream.ErrPullTimeout

// NewRetrySource wraps src with the given retry policy.
func NewRetrySource(src Source, pol RetryPolicy) *RetrySource {
	return stream.NewRetrySource(src, pol)
}

// Terminal wraps err so a RetrySource gives up immediately instead of
// retrying: sources return Terminal(err) for permanent failures (auth
// rejection, malformed stream) that retrying cannot fix.
func Terminal(err error) error { return stream.Terminal(err) }

// IsTerminal reports whether err (or an error it wraps) was marked with
// Terminal.
func IsTerminal(err error) bool { return stream.IsTerminal(err) }

// Sink receives one query's result tuples as they are produced, in that
// query's delivery order. Register sinks at build time with WithSink. For
// sequential plans the callback runs on the goroutine driving the session;
// under WithConcurrency it runs on the query's merger goroutine, so sinks
// of different queries may fire concurrently.
type Sink interface {
	Emit(t *Tuple)
}

// SinkFunc adapts a plain function to the Sink interface.
type SinkFunc func(*Tuple)

// Emit implements Sink.
func (f SinkFunc) Emit(t *Tuple) { f(t) }
