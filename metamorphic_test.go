package stateslice_test

// Randomized metamorphic equivalence harness: every seeded case from
// internal/workload expands into a query set, join shape, skew profile,
// shard count and rebalance schedule, and the sharded-and-rebalanced session
// must render byte-identically to the sequential engine on the same input.
// `go test` always runs the deterministic corpus; CI extends it with a
// longer seeded sweep via METAMORPHIC_SEEDS=lo-hi.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"stateslice"
	"stateslice/internal/workload"
)

// runMetamorphicCase asserts the equivalence property for one case.
func runMetamorphicCase(t *testing.T, c workload.MetamorphicCase) {
	t.Helper()
	w, err := c.Workload()
	if err != nil {
		t.Fatal(err)
	}
	input, err := c.Input()
	if err != nil {
		t.Fatal(err)
	}
	ref := sequentialReference(t, w, input)

	opts := []stateslice.Option{stateslice.WithShards(c.Shards), stateslice.WithCollect()}
	if c.Band {
		opts = append(opts, stateslice.WithKeyRange(0, c.KeyDomain()-1))
	}
	p, err := stateslice.Build(w, stateslice.MemOpt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())

	prev := 0
	for _, pos := range append(c.Positions(len(input)), len(input)) {
		if err := sess.Consume(stateslice.SliceSource(input[prev:pos])); err != nil {
			t.Fatal(err)
		}
		if pos == len(input) {
			break
		}
		// moved may be false — a balanced or unimprovable distribution is a
		// legal no-op; the equivalence property must hold either way.
		if _, err := sess.Rebalance(context.Background()); err != nil {
			t.Fatalf("Rebalance at %d: %v", pos, err)
		}
		prev = pos
	}
	res := sess.Finish()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := renderResults(res.Results); got != ref {
		t.Errorf("case %s: sharded+rebalanced output differs from the sequential engine", c.Name())
	}
}

// TestMetamorphicRebalanceEquivalence runs the deterministic corpus.
func TestMetamorphicRebalanceEquivalence(t *testing.T) {
	for _, c := range workload.MetamorphicCorpus() {
		t.Run(c.Name(), func(t *testing.T) { runMetamorphicCase(t, c) })
	}
}

// TestMetamorphicSweep runs the extended seeded sweep when METAMORPHIC_SEEDS
// is set to an inclusive "lo-hi" seed range (the CI long leg).
func TestMetamorphicSweep(t *testing.T) {
	spec := os.Getenv("METAMORPHIC_SEEDS")
	if spec == "" {
		t.Skip("METAMORPHIC_SEEDS not set; the corpus test covers the deterministic seeds")
	}
	var lo, hi uint64
	if _, err := fmt.Sscanf(spec, "%d-%d", &lo, &hi); err != nil || hi < lo {
		t.Fatalf("METAMORPHIC_SEEDS=%q, want an inclusive range like 11-40", spec)
	}
	for seed := lo; seed <= hi; seed++ {
		c := workload.NewMetamorphicCase(seed)
		t.Run(c.Name(), func(t *testing.T) { runMetamorphicCase(t, c) })
	}
}

// TestMetamorphicCorpusCoverage pins the deterministic corpus's span: both
// join shapes, every skew profile and every shard count must appear, so a
// generator change that collapses the corpus is caught here rather than by
// silently weaker equivalence coverage.
func TestMetamorphicCorpusCoverage(t *testing.T) {
	joins := map[bool]bool{}
	skews := map[workload.Skew]bool{}
	shards := map[int]bool{}
	rebalances := 0
	for _, c := range workload.MetamorphicCorpus() {
		joins[c.Band] = true
		skews[c.Skew] = true
		shards[c.Shards] = true
		rebalances += len(c.RebalanceAt)
		if len(c.RebalanceAt) == 0 {
			t.Errorf("case %s schedules no rebalance", c.Name())
		}
	}
	if len(joins) != 2 {
		t.Error("corpus misses a join shape")
	}
	if len(skews) != 3 {
		t.Errorf("corpus covers skews %v, want all three", skews)
	}
	if len(shards) != 3 {
		t.Errorf("corpus covers shard counts %v, want {2,3,8}", shards)
	}
	if rebalances < len(workload.MetamorphicCorpus()) {
		t.Error("corpus schedules fewer rebalances than cases")
	}
}
