// Package stateslice is a Go implementation of the State-Slice paradigm for
// multi-query optimization of window-based stream queries (Wang,
// Rundensteiner, Ganguly, Bhatnagar — VLDB 2006).
//
// A workload of continuous window-join queries over two streams — possibly
// with different window sizes and different selections — is executed by one
// shared plan: the join state is sliced into fine-grained window ranges, the
// slices are pipelined into a chain of sliced binary window joins, and
// selections are pushed between the slices. Two provably optimal chain
// layouts are provided: the Mem-Opt chain (minimal state memory, one slice
// per distinct window) and the CPU-Opt chain (minimal comparison cost, found
// by Dijkstra's algorithm over the slice-merge graph). Chains migrate online
// by splitting and merging slices while the stream is running.
//
// The package also implements the two sharing baselines the paper compares
// against — naive sharing with selection pull-up, and stream partition with
// selection push-down — plus an unshared reference, all over the same
// execution engine, so the memory and CPU trade-offs of the paper's
// evaluation can be reproduced (see EXPERIMENTS.md).
//
// # Quick start
//
//	w := stateslice.Workload{
//		Queries: []stateslice.Query{
//			{Window: 1 * stateslice.Minute},
//			{Window: 60 * stateslice.Minute, Filter: stateslice.Threshold{S: 0.01}},
//		},
//		Join: stateslice.Equijoin{},
//	}
//	sp, err := stateslice.MemOptPlan(w, stateslice.ChainConfig{Collect: true})
//	...
//	input, err := stateslice.Generate(stateslice.GeneratorConfig{
//		RateA: 50, RateB: 50, Duration: 90 * stateslice.Second, KeyDomain: 100,
//	})
//	...
//	res, err := stateslice.Run(sp.Plan, input, stateslice.RunConfig{})
//
// See examples/ for runnable programs.
package stateslice

import (
	"fmt"

	"stateslice/internal/chain"
	"stateslice/internal/cost"
	"stateslice/internal/engine"
	"stateslice/internal/operator"
	"stateslice/internal/pipeline"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
	"stateslice/internal/workload"
)

// Core stream types.
type (
	// Time is a virtual timestamp in microseconds.
	Time = stream.Time
	// Tuple is a stream element.
	Tuple = stream.Tuple
	// GeneratorConfig parameterises the synthetic Poisson stream
	// generator.
	GeneratorConfig = stream.GeneratorConfig
	// Predicate is a single-tuple selection predicate.
	Predicate = stream.Predicate
	// JoinPredicate decides whether a pair of tuples joins.
	JoinPredicate = stream.JoinPredicate
	// Threshold is the selection "Value >= 1-S" with selectivity S.
	Threshold = stream.Threshold
	// Equijoin matches tuples with equal keys.
	Equijoin = stream.Equijoin
	// CrossProduct matches every pair.
	CrossProduct = stream.CrossProduct
	// FractionMatch matches a deterministic fraction S of pairs.
	FractionMatch = stream.FractionMatch
)

// Time units.
const (
	// Microsecond is the base time unit.
	Microsecond = stream.Microsecond
	// Millisecond is 1000 microseconds.
	Millisecond = stream.Millisecond
	// Second is the unit of the paper's window sizes.
	Second = stream.Second
	// Minute is 60 seconds.
	Minute = stream.Minute
)

// Stream identifiers.
const (
	// StreamA is the first input stream (carries the selection
	// attribute).
	StreamA = stream.StreamA
	// StreamB is the second input stream.
	StreamB = stream.StreamB
)

// Seconds converts floating-point seconds to a Time.
func Seconds(s float64) Time { return stream.Seconds(s) }

// Generate produces the merged input of both streams in timestamp order.
func Generate(cfg GeneratorConfig) ([]*Tuple, error) { return stream.Generate(cfg) }

// Query and plan types.
type (
	// Query is one continuous window-join query.
	Query = plan.Query
	// Workload is a set of queries sharing one join over two streams.
	Workload = plan.Workload
	// Plan is an executable operator graph.
	Plan = engine.Plan
	// ChainPlan is an executable state-slice chain with online
	// migration support (MergeSlices / SplitSlice).
	ChainPlan = plan.StateSlicePlan
	// ChainConfig tunes the state-slice plan builder.
	ChainConfig = plan.StateSliceConfig
	// RunConfig tunes an engine run.
	RunConfig = engine.Config
	// Result reports a finished run.
	Result = engine.Result
	// Session drives a plan tuple by tuple and supports online
	// migration between feeds.
	Session = engine.Session
	// MemoryStats aggregates sampled state sizes.
	MemoryStats = engine.MemoryStats
)

// MemOptPlan builds the memory-optimal state-slice chain for the workload:
// one sliced join per distinct query window (Section 5.1 of the paper;
// Theorems 3 and 4 prove memory optimality with and without selections).
func MemOptPlan(w Workload, cfg ChainConfig) (*ChainPlan, error) {
	cfg.Ends = nil
	if cfg.Name == "" {
		cfg.Name = "state-slice(mem-opt)"
	}
	return plan.BuildStateSlice(w, cfg)
}

// CPUOptParams carries the cost-model inputs of the CPU-optimal chain
// build-up (Section 5.2).
type CPUOptParams struct {
	// RateA and RateB are the expected stream rates in tuples/sec.
	RateA, RateB float64
	// JoinSelectivity is S1; zero defaults to 0.1.
	JoinSelectivity float64
	// Csys is the per-tuple-per-operator overhead factor; zero defaults
	// to 3 comparisons.
	Csys float64
}

// CPUOptPlan builds the CPU-optimal state-slice chain: adjacent slices are
// merged whenever the saved purge and scheduling overhead outweighs the
// added routing cost, solved as a shortest path with Dijkstra's algorithm
// (Section 5.2; Section 6.2 with selections).
func CPUOptPlan(w Workload, p CPUOptParams, cfg ChainConfig) (*ChainPlan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if p.JoinSelectivity == 0 {
		p.JoinSelectivity = 0.1
	}
	if p.Csys == 0 {
		p.Csys = 3
	}
	res, err := chain.CPUOptEnds(workload.Specs(w), cost.ChainParams{
		LambdaA: p.RateA,
		LambdaB: p.RateB,
		TupleKB: 1,
		SelJoin: p.JoinSelectivity,
		Csys:    p.Csys,
	})
	if err != nil {
		return nil, err
	}
	cfg.Ends = workload.EndsToTimes(res.Ends)
	if cfg.Name == "" {
		cfg.Name = "state-slice(cpu-opt)"
	}
	return plan.BuildStateSlice(w, cfg)
}

// ChainPlanWithEnds builds a state-slice chain with explicit slice
// boundaries (ascending, the last equal to the largest query window).
func ChainPlanWithEnds(w Workload, ends []Time, cfg ChainConfig) (*ChainPlan, error) {
	cfg.Ends = ends
	return plan.BuildStateSlice(w, cfg)
}

// PullUpPlan builds the naive shared plan with selection pull-up
// (Section 3.1): one largest-window join plus a router.
func PullUpPlan(w Workload, collect bool) (*Plan, error) { return plan.BuildPullUp(w, collect) }

// PushDownPlan builds the stream-partition plan with selection push-down
// (Section 3.2): split, per-partition joins, router and union.
func PushDownPlan(w Workload, collect bool) (*Plan, error) { return plan.BuildPushDown(w, collect) }

// UnsharedPlan builds one independent plan per query (Figure 2).
func UnsharedPlan(w Workload, collect bool) (*Plan, error) { return plan.BuildUnshared(w, collect) }

// Run executes a plan over the input tuples.
func Run(p *Plan, input []*Tuple, cfg RunConfig) (*Result, error) { return engine.Run(p, input, cfg) }

// ConcurrentResult reports a concurrent chain execution.
type ConcurrentResult = pipeline.Result

// RunChainConcurrent executes the workload's Mem-Opt chain with one
// goroutine per sliced join connected by channels — the asynchronous
// scheduling regime whose correctness Lemma 1 guarantees and Section 9 of
// the paper points at for distributed execution. Results are identical to
// the sequential engine's; the workload must not carry selections (use the
// sequential engine for filtered chains).
func RunChainConcurrent(w Workload, input []*Tuple, collect bool) (*ConcurrentResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	var windows []Time
	for i, q := range w.Queries {
		if q.HasFilter() || q.HasFilterB() {
			return nil, fmt.Errorf("stateslice: concurrent chains support unfiltered queries only (query %d is filtered)", i)
		}
		windows = append(windows, q.Window)
	}
	return pipeline.RunChain(windows, w.Join, input, collect)
}

// EnableHashProbing switches every regular window join in the plan from
// nested-loop probing (the paper's cost model) to hash-index probing, the
// variant the paper cites from Kang et al. [14]. It must be called before
// the plan processes any tuple and requires an equijoin predicate.
func EnableHashProbing(p *Plan) error {
	for _, s := range p.Stateful {
		if wj, ok := s.(*operator.WindowJoin); ok {
			if _, err := wj.WithHashProbe(); err != nil {
				return err
			}
		}
	}
	return nil
}

// NewSession prepares an incremental run; use it to Feed tuples one at a
// time and migrate chain plans mid-stream.
func NewSession(p *Plan, cfg RunConfig) (*Session, error) { return engine.NewSession(p, cfg) }

// Cost model (Section 3, 4.3, 5, 6 of the paper).
type (
	// CostParams carries the two-query cost model settings (Table 1).
	CostParams = cost.Params
	// Cost is a (state memory, comparisons/sec) pair.
	Cost = cost.Cost
	// Savings holds the Eq. (4) relative savings of state-slice sharing.
	Savings = cost.Savings
	// QuerySpec abstracts a query for the N-query chain cost model.
	QuerySpec = cost.QuerySpec
	// ChainParams carries the N-query chain model settings.
	ChainParams = cost.ChainParams
	// ChainResult describes an optimized chain layout.
	ChainResult = chain.Result
	// MigrationStep is one merge or split of an online chain migration.
	MigrationStep = chain.MigrationStep
)

// PullUpCost evaluates Eq. (1) of the paper.
func PullUpCost(p CostParams) Cost { return cost.PullUp(p) }

// PushDownCost evaluates Eq. (2).
func PushDownCost(p CostParams) Cost { return cost.PushDown(p) }

// StateSliceCost evaluates Eq. (3).
func StateSliceCost(p CostParams) Cost { return cost.StateSlice(p) }

// ComputeSavings evaluates Eq. (4) at window ratio rho = W1/W2.
func ComputeSavings(rho, sSigma, s1 float64) Savings { return cost.ComputeSavings(rho, sSigma, s1) }

// MemOptEnds returns the Mem-Opt slice boundaries for a query set.
func MemOptEnds(queries []QuerySpec) []float64 { return chain.MemOptEnds(queries) }

// CPUOptEnds returns the CPU-Opt slice boundaries, cost and memory for a
// query set under the chain cost model.
func CPUOptEnds(queries []QuerySpec, p ChainParams) (*ChainResult, error) {
	return chain.CPUOptEnds(queries, p)
}

// ChainCostOf evaluates the chain cost model for an explicit slice boundary
// layout: total state memory (KB) and comparisons per second.
func ChainCostOf(queries []QuerySpec, ends []float64, p ChainParams) (Cost, error) {
	return cost.ChainCost(queries, ends, p)
}

// PlanMigration computes the merge/split steps that turn one chain boundary
// layout into another (Section 5.3).
func PlanMigration(from, to []float64) ([]MigrationStep, error) {
	return chain.PlanMigration(from, to)
}
